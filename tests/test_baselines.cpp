#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "profile/paper_profiles.h"
#include "sim/replay.h"

namespace sompi {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  static SetupConfig fast_setup() {
    SetupConfig s;
    s.failure.samples = 500;
    return s;
  }

  double baseline_h(const AppProfile& app) const {
    return OnDemandSelector(&catalog_, &est_).baseline(app).t_h;
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/4.0,
                                   /*step_hours=*/0.25, /*seed=*/55);
  BaselineFactory factory_{&catalog_, &est_, fast_setup()};
};

TEST_F(BaselineTest, OnDemandOnlyPlanHasNoGroups) {
  const AppProfile bt = paper_profile("BT");
  const Plan plan = factory_.on_demand_only(bt, baseline_h(bt) * 1.5);
  EXPECT_FALSE(plan.uses_spot());
  EXPECT_NEAR(plan.expected.cost_usd, plan.od.full_cost_usd(), 1e-9);
  EXPECT_TRUE(plan.od.feasible);
}

TEST_F(BaselineTest, MaratheReplicatesCc2AcrossZones) {
  const AppProfile bt = paper_profile("BT");
  const Plan plan = factory_.marathe(bt, market_, baseline_h(bt) * 1.5, /*optimize_type=*/false);
  ASSERT_EQ(plan.groups.size(), 2u);  // dual redundancy by default
  const double cc2_od = catalog_.type(catalog_.type_index("cc2.8xlarge")).ondemand_usd_h;
  for (const auto& g : plan.groups) {
    EXPECT_EQ(catalog_.type(g.spec.type_index).name, "cc2.8xlarge");
    EXPECT_DOUBLE_EQ(g.bid_usd, cc2_od);
    EXPECT_LT(g.f_steps, g.t_steps);  // checkpoints enabled (Young/Daly)
  }
  EXPECT_NE(plan.groups[0].spec.zone_index, plan.groups[1].spec.zone_index);

  // The degree is configurable: all three zones when asked.
  const BaselineFactory wide(&catalog_, &est_, fast_setup(), /*marathe_replicas=*/3);
  const Plan plan3 = wide.marathe(bt, market_, baseline_h(bt) * 1.5, false);
  EXPECT_EQ(plan3.groups.size(), 3u);
}

TEST_F(BaselineTest, MaratheOptNeverCostsMoreThanMarathe) {
  for (const char* app_name : {"BT", "FT", "BTIO"}) {
    const AppProfile app = paper_profile(app_name);
    const double deadline = baseline_h(app) * 1.5;
    const Plan fixed = factory_.marathe(app, market_, deadline, false);
    const Plan opt = factory_.marathe(app, market_, deadline, true);
    EXPECT_LE(opt.expected.cost_usd, fixed.expected.cost_usd + 1e-9) << app_name;
  }
}

TEST_F(BaselineTest, MaratheOptPicksCheaperTypeForComputeUnderLooseDeadline) {
  // §5.3.1: "the monetary cost of Marathe is 36% larger than Marathe-Opt"
  // under loose deadlines because cc2.8xlarge is not cost-efficient for
  // compute-bound work.
  const AppProfile bt = paper_profile("BT");
  const Plan opt = factory_.marathe(bt, market_, baseline_h(bt) * 1.5, true);
  ASSERT_TRUE(opt.uses_spot());
  EXPECT_NE(catalog_.type(opt.groups[0].spec.type_index).name, "cc2.8xlarge");
}

TEST_F(BaselineTest, MaratheOptEqualsMaratheUnderTightDeadlineForComm) {
  // §5.3.1: for communication-intensive apps both select cc2.8xlarge.
  const AppProfile ft = paper_profile("FT");
  const Plan opt = factory_.marathe(ft, market_, baseline_h(ft) * 1.05, true);
  ASSERT_TRUE(opt.uses_spot());
  EXPECT_EQ(catalog_.type(opt.groups[0].spec.type_index).name, "cc2.8xlarge");
}

TEST_F(BaselineTest, SpotInfNeverDiesInReplay) {
  const AppProfile bt = paper_profile("BT");
  const Plan plan = factory_.spot_inf(bt, market_, baseline_h(bt) * 1.5);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_GE(plan.groups[0].bid_usd, 999.0);
  EXPECT_EQ(plan.groups[0].f_steps, plan.groups[0].t_steps);  // no checkpoints

  const ReplayEngine engine(&market_);
  for (double start : {24.0, 40.0, 60.0}) {
    const ReplayResult r = engine.replay(plan, start);
    EXPECT_TRUE(r.completed_on_spot) << start;
    EXPECT_FALSE(r.groups[0].killed);
  }
}

TEST_F(BaselineTest, SpotAvgBidsTheHistoricalMean) {
  const AppProfile bt = paper_profile("BT");
  const Plan plan = factory_.spot_avg(bt, market_, baseline_h(bt) * 1.5);
  ASSERT_EQ(plan.groups.size(), 1u);
  const SpotTrace& trace = market_.trace(plan.groups[0].spec);
  EXPECT_NEAR(plan.groups[0].bid_usd, trace.mean_below(trace.max_price()), 1e-12);
}

TEST_F(BaselineTest, SpotPlansRespectDeadlineEligibility) {
  // The chosen group must itself be able to finish before the deadline.
  const AppProfile ft = paper_profile("FT");
  const double deadline = baseline_h(ft) * 1.2;
  for (const Plan& plan : {factory_.spot_inf(ft, market_, deadline),
                           factory_.spot_avg(ft, market_, deadline)}) {
    ASSERT_EQ(plan.groups.size(), 1u);
    const double t_h =
        est_.hours(ft, catalog_.type(plan.groups[0].spec.type_index));
    EXPECT_LE(t_h, deadline);
  }
}

TEST_F(BaselineTest, MaratheMissesDeadlineForIoApp) {
  // §5.3.1 BTIO: cc2.8xlarge is so bad at I/O that a tight deadline cannot
  // be met by Marathe's fixed choice — its expected time overshoots.
  const AppProfile btio = paper_profile("BTIO");
  const double deadline = baseline_h(btio) * 1.05;
  const Plan plan = factory_.marathe(btio, market_, deadline, false);
  EXPECT_FALSE(plan.spot_feasible);
}

}  // namespace
}  // namespace sompi
