#include "core/ondemand.h"

#include <gtest/gtest.h>

#include "profile/paper_profiles.h"

namespace sompi {
namespace {

class OnDemandTest : public ::testing::Test {
 protected:
  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  OnDemandSelector selector_{&catalog_, &est_};
};

TEST_F(OnDemandTest, BaselineIsFastestType) {
  const AppProfile bt = paper_profile("BT");
  const OnDemandChoice base = selector_.baseline(bt);
  EXPECT_EQ(catalog_.type(base.type_index).name, "cc2.8xlarge");
  for (std::size_t d = 0; d < catalog_.types().size(); ++d)
    EXPECT_LE(base.t_h, selector_.describe(d, bt).t_h + 1e-12);
}

TEST_F(OnDemandTest, BaselineForIoAppIsM1Medium) {
  const OnDemandChoice base = selector_.baseline(paper_profile("BTIO"));
  EXPECT_EQ(catalog_.type(base.type_index).name, "m1.medium");
}

TEST_F(OnDemandTest, TightDeadlineForcesFastTier) {
  const AppProfile bt = paper_profile("BT");
  const double baseline_h = selector_.baseline(bt).t_h;
  // Deadline 1.05× baseline with 20% slack: only cc2.8xlarge fits.
  const OnDemandChoice d = selector_.select(bt, baseline_h * 1.05, 0.0);
  EXPECT_TRUE(d.feasible);
  EXPECT_EQ(catalog_.type(d.type_index).name, "cc2.8xlarge");
}

TEST_F(OnDemandTest, LooseDeadlinePicksCheaperTier) {
  const AppProfile bt = paper_profile("BT");
  const double baseline_h = selector_.baseline(bt).t_h;
  const OnDemandChoice tight = selector_.select(bt, baseline_h * 1.05, 0.0);
  const OnDemandChoice loose = selector_.select(bt, baseline_h * 1.6, 0.0);
  EXPECT_TRUE(loose.feasible);
  EXPECT_LE(loose.full_cost_usd(), tight.full_cost_usd());
  EXPECT_NE(catalog_.type(loose.type_index).name, "cc2.8xlarge");
}

TEST_F(OnDemandTest, SlackShrinksTheBudget) {
  const AppProfile bt = paper_profile("BT");
  const double baseline_h = selector_.baseline(bt).t_h;
  // With the deadline exactly at baseline, any positive slack makes every
  // tier infeasible.
  const OnDemandChoice d = selector_.select(bt, baseline_h, 0.2);
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(catalog_.type(d.type_index).name, "cc2.8xlarge");  // fastest fallback
}

TEST_F(OnDemandTest, CostIsRateTimesRuntime) {
  const AppProfile ft = paper_profile("FT");
  const OnDemandChoice d = selector_.describe(catalog_.type_index("c3.xlarge"), ft);
  EXPECT_EQ(d.instances, 32);
  EXPECT_NEAR(d.rate_usd_h, 0.210 * 32, 1e-12);
  EXPECT_NEAR(d.full_cost_usd(), d.rate_usd_h * d.t_h, 1e-12);
}

TEST_F(OnDemandTest, RejectsBadArguments) {
  const AppProfile bt = paper_profile("BT");
  EXPECT_THROW(selector_.select(bt, 0.0, 0.2), PreconditionError);
  EXPECT_THROW(selector_.select(bt, 10.0, 1.0), PreconditionError);
}

}  // namespace
}  // namespace sompi
