#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/error.h"
#include "common/table.h"

namespace sompi {
namespace {

TEST(Table, AlignsColumns) {
  Table t("demo");
  t.header({"a", "long-header"});
  t.row({"wide-cell", "x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("demo\n"), std::string::npos);
  EXPECT_NE(out.find("a          long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell  x"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), PreconditionError);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1.0, 0), "1");
}

TEST(Csv, RoundTrip) {
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{"1", "2"}, {"3", "4"}};
  const CsvTable parsed = parse_csv(to_csv(t));
  EXPECT_EQ(parsed.header, t.header);
  EXPECT_EQ(parsed.rows, t.rows);
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  const CsvTable t = parse_csv("# comment\nx,y\n\n1,2\n");
  EXPECT_EQ(t.header.size(), 2u);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(Csv, RejectsRaggedRows) {
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), IoError);
}

TEST(Csv, ColumnLookup) {
  const CsvTable t = parse_csv("time,price\n0,1.5\n");
  EXPECT_EQ(t.column("price"), 1u);
  EXPECT_THROW(t.column("missing"), PreconditionError);
}

TEST(Csv, LenientSkipsRaggedRowsWithCounter) {
  CsvParseStats stats;
  const CsvTable t =
      parse_csv_lenient("a,b\n1,2\n1,2,3\ntruncated\n3,4\n", &stats);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "4");
  EXPECT_EQ(stats.rows_parsed, 2u);
  EXPECT_EQ(stats.ragged_skipped, 2u);  // over-wide row + truncated line
}

TEST(Csv, LenientWithoutStatsStillSkips) {
  const CsvTable t = parse_csv_lenient("a,b\nonly-one-cell\n1,2\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(Csv, NumberAcceptsFullCellFiniteDoublesOnly) {
  double v = -1.0;
  EXPECT_TRUE(csv_number("1.25", &v));
  EXPECT_DOUBLE_EQ(v, 1.25);
  EXPECT_TRUE(csv_number("3e2", &v));
  EXPECT_DOUBLE_EQ(v, 300.0);
  EXPECT_FALSE(csv_number("", nullptr));
  EXPECT_FALSE(csv_number("1.2x", nullptr));   // trailing junk
  EXPECT_FALSE(csv_number("abc", nullptr));
  EXPECT_FALSE(csv_number("nan", nullptr));    // non-finite
  EXPECT_FALSE(csv_number("inf", nullptr));
}

TEST(Csv, FileRoundTrip) {
  CsvTable t;
  t.header = {"k"};
  t.rows = {{"v"}};
  const std::string path = ::testing::TempDir() + "/sompi_csv_test.csv";
  write_csv_file(path, t);
  const CsvTable back = read_csv_file(path);
  EXPECT_EQ(back.rows, t.rows);
  EXPECT_THROW(read_csv_file("/nonexistent/nope.csv"), IoError);
}

}  // namespace
}  // namespace sompi
