// Property-based scenario fuzzer over the fault-injection subsystem.
//
// Generates seeded chaos scenarios (see src/faultinject/scenario.h for the
// scenario kinds and their invariants) and checks that every invariant holds
// under every generated failure schedule. Each failing seed prints a
// one-line repro command; the first few seeds are re-run serially and their
// digests compared against the pooled run, which checks the determinism
// contract (same seed → byte-identical outcome at any thread count) on
// every invocation.
//
//   fuzz_scenarios [--seeds N] [--seed-start S] [--threads T] [--seed X]
//
// --seed X runs exactly one seed, verbosely — the repro mode.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "faultinject/scenario.h"

namespace {

[[noreturn]] void usage_error(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--seed-start S] [--threads T] [--seed X]\n",
               argv0);
  std::exit(2);
}

std::uint64_t parse_u64(const char* argv0, const char* text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') usage_error(argv0);
  return static_cast<std::uint64_t>(v);
}

void print_failure(const sompi::fi::ScenarioOutcome& outcome) {
  std::printf("FAIL seed=%llu kind=%s: %s\n",
              static_cast<unsigned long long>(outcome.seed), outcome.kind.c_str(),
              outcome.detail.c_str());
  std::printf("  repro: fuzz_scenarios --seed %llu\n",
              static_cast<unsigned long long>(outcome.seed));
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 200;
  std::uint64_t seed_start = 1;
  unsigned threads = 0;  // 0 = hardware concurrency
  bool single = false;
  std::uint64_t single_seed = 0;

  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(argv[0]);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      seeds = parse_u64(argv[0], arg_value());
    } else if (std::strcmp(argv[i], "--seed-start") == 0) {
      seed_start = parse_u64(argv[0], arg_value());
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<unsigned>(parse_u64(argv[0], arg_value()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      single = true;
      single_seed = parse_u64(argv[0], arg_value());
    } else {
      usage_error(argv[0]);
    }
  }

  if (single) {
    const sompi::fi::ScenarioOutcome outcome = sompi::fi::run_scenario(single_seed);
    std::printf("seed=%llu kind=%s digest=%016llx %s\n",
                static_cast<unsigned long long>(outcome.seed), outcome.kind.c_str(),
                static_cast<unsigned long long>(outcome.digest),
                outcome.failed ? "FAIL" : "ok");
    if (outcome.failed) {
      print_failure(outcome);
      return 1;
    }
    return 0;
  }

  if (seeds == 0) usage_error(argv[0]);
  std::printf("fuzz_scenarios: seed range [%llu, %llu) — %llu seeds, threads=%u\n",
              static_cast<unsigned long long>(seed_start),
              static_cast<unsigned long long>(seed_start + seeds),
              static_cast<unsigned long long>(seeds), threads);
  std::fflush(stdout);

  std::vector<sompi::fi::ScenarioOutcome> outcomes(seeds);
  sompi::parallel_for(seeds, threads, [&](std::size_t i) {
    outcomes[i] = sompi::fi::run_scenario(seed_start + i);
  });

  int failures = 0;
  std::map<std::string, std::uint64_t> per_kind;
  for (const auto& outcome : outcomes) {
    ++per_kind[outcome.kind];
    if (outcome.failed) {
      ++failures;
      print_failure(outcome);
    }
  }

  // Determinism self-check: the pooled digests must match a serial re-run.
  const std::uint64_t recheck = std::min<std::uint64_t>(seeds, 8);
  for (std::uint64_t i = 0; i < recheck; ++i) {
    const sompi::fi::ScenarioOutcome serial = sompi::fi::run_scenario(seed_start + i);
    if (serial.digest != outcomes[i].digest) {
      ++failures;
      std::printf("FAIL seed=%llu kind=%s: outcome digest differs between pooled and "
                  "serial runs (%016llx vs %016llx)\n",
                  static_cast<unsigned long long>(serial.seed), serial.kind.c_str(),
                  static_cast<unsigned long long>(outcomes[i].digest),
                  static_cast<unsigned long long>(serial.digest));
      std::printf("  repro: fuzz_scenarios --seed %llu\n",
                  static_cast<unsigned long long>(serial.seed));
    }
  }

  std::printf("fuzz_scenarios:");
  for (const auto& [kind, count] : per_kind)
    std::printf(" %s=%llu", kind.c_str(), static_cast<unsigned long long>(count));
  std::printf(" failures=%d\n", failures);
  return failures == 0 ? 0 : 1;
}
