// Unit tests for bench/bench_util.h — the nearest-rank percentile the
// latency benches report, and the JSON emitter's string escaping. The
// linear-interpolation percentile in common/stats.h is the right estimator
// for smooth distributions; for tail latency over small N it invents values
// between the two largest observations, so the benches use nearest-rank
// instead.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.h"
#include "common/error.h"

namespace sompi::bench {
namespace {

TEST(PercentileNearestRank, ReturnsAnActualObservation) {
  const std::vector<double> values = {5.0, 1.0, 4.0, 2.0, 3.0};
  // ceil(0.99 * 5) = 5 → the maximum, not an interpolated blend.
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(values, 0.99), 5.0);
  // ceil(0.50 * 5) = 3 → the median.
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(values, 0.50), 3.0);
  // ceil(0.20 * 5) = 1 → the minimum.
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(values, 0.20), 1.0);
}

TEST(PercentileNearestRank, SmallSampleTailIsTheMaximum) {
  // The motivating case: p99 of N < 100 samples must report the largest
  // observation (ceil(0.99·N) = N whenever N < 100) — an actual measured
  // worst case, not a blend of the two largest.
  std::vector<double> values;
  for (int n = 1; n < 100; ++n) {
    values.push_back(static_cast<double>(n));
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(values, 0.99),
                     static_cast<double>(n))
        << "N=" << n;
  }
  // At N = 100 the estimator starts trimming the tail: the 99th smallest.
  values.push_back(100.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(values, 0.99), 99.0);
}

TEST(PercentileNearestRank, BoundaryQuantiles) {
  const std::vector<double> values = {10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(values, 1.0), 30.0);
}

TEST(PercentileNearestRank, SingleObservation) {
  const std::vector<double> values = {42.0};
  for (double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(percentile_nearest_rank(values, q), 42.0);
}

TEST(PercentileNearestRank, EvenCountMedianIsLowerOfTheTwo) {
  // Nearest-rank never averages: ceil(0.5 * 4) = 2 → the 2nd smallest.
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(values, 0.5), 2.0);
}

TEST(PercentileNearestRank, RejectsBadInput) {
  EXPECT_THROW(percentile_nearest_rank({}, 0.5), PreconditionError);
  EXPECT_THROW(percentile_nearest_rank({1.0}, -0.1), PreconditionError);
  EXPECT_THROW(percentile_nearest_rank({1.0}, 1.1), PreconditionError);
}

TEST(PercentileNearestRank, InputVectorIsNotMutated) {
  const std::vector<double> values = {3.0, 1.0, 2.0};
  const std::vector<double> copy = values;
  (void)percentile_nearest_rank(values, 0.5);
  EXPECT_EQ(values, copy);
}

TEST(JsonEscape, PassesPlainStringsThrough) {
  EXPECT_EQ(json_escape("wire_shards_8"), "wire_shards_8");
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("p50 ms / req"), "p50 ms / req");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("bad \"magic\""), "bad \\\"magic\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("cr\rbs\bff\f"), "cr\\rbs\\bff\\f");
  EXPECT_EQ(json_escape(std::string("nul\x01!")), "nul\\u0001!");
}

TEST(JsonEscape, WriteJsonEmitsEscapedNamesAndCounterKeys) {
  // The motivating leak: corruption-class counter names and error-frame
  // messages carry quotes/newlines; they must land in BENCH_*.json as valid
  // JSON, not as raw bytes that break the parser.
  const std::string path = ::testing::TempDir() + "bench_util_escape.json";
  JsonResult r;
  r.name = "reject \"crc_mismatch\"\n";
  r.iters = 1;
  r.counters = {{"bad \"magic\"", 2.0}, {"tab\tkey", 3.0}};
  write_json(path, {r});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("\"reject \\\"crc_mismatch\\\"\\n\""), std::string::npos);
  EXPECT_NE(text.find("\"bad \\\"magic\\\"\": 2.000000"), std::string::npos);
  EXPECT_NE(text.find("\"tab\\tkey\": 3.000000"), std::string::npos);
  // No raw newline inside any string: every line of the file must be a
  // structural line, so the record count equals results.size() + 2.
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sompi::bench
