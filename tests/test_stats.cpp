#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace sompi {
namespace {

TEST(OnlineStats, MatchesNaiveComputation) {
  const std::vector<double> xs{3.0, -1.0, 4.0, 1.5, 9.25, -2.0};
  OnlineStats s;
  for (double x : xs) s.add(x);

  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);

  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.25);
}

TEST(OnlineStats, EmptyAndSingleton) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_THROW(s.min(), PreconditionError);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(5);
  OnlineStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(Percentile, KnownValues) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.1), 1.4);  // linear interpolation
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW(percentile({}, 0.5), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 1.5), PreconditionError);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.density(2), 0.2);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, L1DistanceBounds) {
  Histogram a(0, 1, 4), b(0, 1, 4);
  a.add(0.1);
  b.add(0.9);
  EXPECT_DOUBLE_EQ(Histogram::l1_distance(a, b), 2.0);  // disjoint
  Histogram c(0, 1, 4), d(0, 1, 4);
  c.add(0.1);
  d.add(0.15);
  EXPECT_DOUBLE_EQ(Histogram::l1_distance(c, d), 0.0);  // same bin
}

TEST(Histogram, L1RequiresSameBinning) {
  Histogram a(0, 1, 4), b(0, 1, 5);
  EXPECT_THROW(Histogram::l1_distance(a, b), PreconditionError);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0, 1, 3);
  h.add(0.5);
  const std::string art = h.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
}

TEST(Summary, MatchesComponents) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
}

}  // namespace
}  // namespace sompi
