#include "trace/market.h"

#include <gtest/gtest.h>

namespace sompi {
namespace {

class MarketTest : public ::testing::Test {
 protected:
  Catalog catalog_ = paper_catalog();
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/5.0,
                                   /*step_hours=*/0.25, /*seed=*/42);
};

TEST_F(MarketTest, OneTracePerGroup) {
  EXPECT_EQ(market_.group_count(), catalog_.types().size() * catalog_.zones().size());
  const auto steps = static_cast<std::size_t>(5.0 * 24.0 / 0.25);
  for (const auto& g : catalog_.all_groups()) EXPECT_EQ(market_.trace(g).steps(), steps);
}

TEST_F(MarketTest, GroupsAreIndependentStreams) {
  const auto& a = market_.trace({0, 0});
  const auto& b = market_.trace({0, 1});
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.steps(); ++i)
    if (a.price(i) == b.price(i)) ++same;
  EXPECT_LT(static_cast<double>(same) / a.steps(), 0.01);
}

TEST_F(MarketTest, DeterministicForSeed) {
  const Market again = generate_market(catalog_, paper_market_profile(catalog_), 5.0, 0.25, 42);
  const auto& a = market_.trace({2, 1});
  const auto& b = again.trace({2, 1});
  for (std::size_t i = 0; i < a.steps(); ++i) ASSERT_DOUBLE_EQ(a.price(i), b.price(i));
}

TEST_F(MarketTest, PaperProfileShapes) {
  // us-east-1a m1.medium is spiky, us-east-1b is quiet across the board
  // (Figure 1's zoo). Both classes spike to extreme multiples of the base
  // (Figure 1a shows ~$10 on an $0.087 type); they differ in frequency.
  // Rare-event rates need a long horizon to separate cleanly.
  const Market longer =
      generate_market(catalog_, paper_market_profile(catalog_), /*days=*/40.0, 0.25, 42);
  const auto medium = catalog_.type_index("m1.medium");
  const SpotTrace& spiky = longer.trace({medium, 0});
  const SpotTrace& quiet = longer.trace({medium, 1});
  const double base = base_spot_price(catalog_.type(medium));
  EXPECT_GT(spiky.max_price(), 20.0 * base);
  EXPECT_GT(quiet.availability(2.0 * base), spiky.availability(2.0 * base));
  // The quiet zone spends clearly more time at the calm level.
  EXPECT_GT(quiet.availability(1.2 * base), 0.9);
}

TEST_F(MarketTest, BaseSpotPriceUsesDiscount) {
  const auto& small = catalog_.type(catalog_.type_index("m1.small"));
  EXPECT_NEAR(base_spot_price(small), small.ondemand_usd_h * small.spot_discount, 1e-12);
}

TEST_F(MarketTest, SpotBaseBelowOnDemand) {
  for (const auto& type : catalog_.types()) {
    EXPECT_LT(base_spot_price(type), type.ondemand_usd_h) << type.name;
  }
}

TEST_F(MarketTest, TailAndWindowViews) {
  const Market tail = market_.tail_hours(24.0);
  for (const auto& g : catalog_.all_groups())
    EXPECT_EQ(tail.trace(g).steps(), static_cast<std::size_t>(24.0 / 0.25));
  const Market win = market_.window(10, 20);
  EXPECT_EQ(win.trace({0, 0}).steps(), 20u);
  EXPECT_DOUBLE_EQ(win.trace({0, 0}).price(0), market_.trace({0, 0}).price(10));
}

TEST_F(MarketTest, RandomProfileIsSeedStable) {
  Rng a(5), b(5);
  EXPECT_EQ(random_market_profile(catalog_, a), random_market_profile(catalog_, b));
}

}  // namespace
}  // namespace sompi
