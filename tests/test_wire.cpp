// Differential battery for the wire protocol and RPC serving front end
// (src/net, DESIGN.md §15).
//
// Codec: every message type round-trips byte-identically (a decoded request
// re-canonicalizes to the IDENTICAL cache key; a decoded plan reproduces
// plan_fingerprint() byte for byte), and each corruption class rejects with
// exactly one counter bump of exactly its class — never a crash, never a
// dead connection. Serving: responses correlate by request id (not arrival
// order), overload sheds explicitly at the wire door, malformed requests
// fail the request not the connection, shutdown answers everything accepted
// (the drain-on-shutdown completeness law), and a router-aware client keeps
// the tier's forwarding counter at exactly zero while a spray client pays
// the tax. The multi-client chaos stress lives in test_wire_stress.cpp.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/pipe.h"
#include "net/server.h"
#include "profile/paper_profiles.h"
#include "service/request.h"
#include "service/sharded/sharded_service.h"

namespace sompi::net {
namespace {

PlanRequest sample_request(double deadline_h) {
  PlanRequest r;
  r.app = paper_profile("BT");
  r.deadline_h = deadline_h;
  return r;
}

// ---------------------------------------------------------------------------
// Primitives.

TEST(WireCodec, Crc32MatchesTheStandardCheckValue) {
  // The universal CRC-32/IEEE check vector.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(WireCodec, PrimitivesRoundTripAndAreLittleEndian) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.f64(0.1);  // inexact in decimal — must travel by bit pattern
  w.str("hello");

  // Spot-check the canonical layout: u16 low byte first.
  EXPECT_EQ(static_cast<unsigned char>(w.bytes()[1]), 0xEFu);
  EXPECT_EQ(static_cast<unsigned char>(w.bytes()[2]), 0xBEu);

  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xABu);
  EXPECT_EQ(r.u16(), 0xBEEFu);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  const double f = r.f64();
  std::uint64_t got_bits = 0, want_bits = 0;
  const double want = 0.1;
  std::memcpy(&got_bits, &f, sizeof f);
  std::memcpy(&want_bits, &want, sizeof want);
  EXPECT_EQ(got_bits, want_bits);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(WireCodec, NegativeZeroSurvivesByBitPattern) {
  WireWriter w;
  w.f64(-0.0);
  WireReader r(w.bytes());
  const double v = r.f64();
  EXPECT_TRUE(std::signbit(v));
  EXPECT_TRUE(r.done());
}

TEST(WireCodec, ReaderLatchesFalseInsteadOfReadingOutOfBounds) {
  WireReader r(std::string_view("\x01\x02", 2));
  EXPECT_EQ(r.u32(), 0u);  // needs 4 bytes, has 2
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // every later read is a zero, never UB
  EXPECT_FALSE(r.done());

  // A length prefix larger than the remaining bytes latches too.
  WireReader s(std::string_view("\x10\x00\x00\x00ab", 6));
  EXPECT_EQ(s.str(), "");
  EXPECT_FALSE(s.ok());
}

// ---------------------------------------------------------------------------
// Message round trips.

TEST(WireCodec, PlanRequestRoundTripsToTheIdenticalCacheKey) {
  PlanRequest request = sample_request(17.25);
  request.allowed_types = {"m1.xlarge", "c1.medium", "m1.xlarge"};
  request.allowed_zones = {"us-east-1b", "us-east-1a"};

  PlanRequest decoded;
  ASSERT_TRUE(decode_plan_request(encode_plan_request(request), &decoded));
  EXPECT_EQ(decoded.app.name, request.app.name);
  EXPECT_EQ(decoded.allowed_types, request.allowed_types);
  EXPECT_EQ(decoded.allowed_zones, request.allowed_zones);
  // The contract the plan cache depends on: canonicalizing the decoded
  // request yields the byte-identical key (doubles travelled bit-exact).
  EXPECT_EQ(canonical_key(canonicalized(decoded)), canonical_key(canonicalized(request)));
}

TEST(WireCodec, StatsResponseRoundTripsEveryCounter) {
  WireTierStats stats;
  stats.epoch = 1;
  stats.requests = 2;
  stats.hits = 3;
  stats.solves = 4;
  stats.dedup_joins = 5;
  stats.sheds = 6;
  stats.routed = 7;
  stats.sprayed = 8;
  stats.forwarded = 9;
  stats.duplicate_solves = 10;
  stats.replan_count = 11;
  stats.connections = 12;
  stats.frames_received = 13;
  stats.responses_sent = 14;
  stats.wire_sheds = 15;
  stats.wire_errors = 16;
  stats.frames_rejected = 17;

  WireTierStats decoded;
  ASSERT_TRUE(decode_stats_response(encode_stats_response(stats), &decoded));
  EXPECT_EQ(decoded, stats);
}

TEST(WireCodec, ErrorAndStatsRequestRoundTrip) {
  std::string message;
  ASSERT_TRUE(decode_error_response(encode_error_response("queue on fire"), &message));
  EXPECT_EQ(message, "queue on fire");
  EXPECT_TRUE(decode_stats_request(encode_stats_request()));
  EXPECT_FALSE(decode_stats_request("unexpected"));
}

TEST(WireCodec, ShedResponseRoundTripsWithoutAPlan) {
  PlanResponse shed;
  shed.outcome = PlanOutcome::kShed;
  shed.epoch = 42;
  PlanResponse decoded;
  ASSERT_TRUE(decode_plan_response(encode_plan_response(shed), &decoded));
  EXPECT_EQ(decoded.outcome, PlanOutcome::kShed);
  EXPECT_EQ(decoded.epoch, 42u);
  EXPECT_EQ(decoded.plan, nullptr);
}

// ---------------------------------------------------------------------------
// Framing through arbitrary chunk splits.

TEST(WireCodec, DecoderYieldsFramesThroughArbitraryChunkSplits) {
  std::string stream;
  stream += encode_frame(MsgType::kPlanRequest, 7, "alpha");
  stream += encode_frame(MsgType::kStatsRequest, 8, "");
  stream += encode_frame(MsgType::kErrorResponse, 9, std::string(300, 'z'));

  FrameDecoder decoder;
  std::vector<WireFrame> frames;
  std::size_t chunk = 1;
  for (std::size_t at = 0; at < stream.size(); at += chunk, chunk = chunk % 7 + 1) {
    decoder.feed(stream.substr(at, chunk));
    while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  }
  decoder.finish();

  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, MsgType::kPlanRequest);
  EXPECT_EQ(frames[0].request_id, 7u);
  EXPECT_EQ(frames[0].payload, "alpha");
  EXPECT_EQ(frames[1].type, MsgType::kStatsRequest);
  EXPECT_EQ(frames[1].payload, "");
  EXPECT_EQ(frames[2].request_id, 9u);
  EXPECT_EQ(frames[2].payload, std::string(300, 'z'));
  EXPECT_EQ(decoder.stats().rejects(), 0u);
  EXPECT_EQ(decoder.stats().frames_decoded, 3u);
  EXPECT_EQ(decoder.stats().bytes_consumed, stream.size());
}

// ---------------------------------------------------------------------------
// Corruption classes: one test per class, each asserting EXACTLY one reject
// of exactly its class — the "one reject increments exactly one counter"
// contract of WireCodecStats.

TEST(WireCorruption, FlippedPayloadBitIsOneCrcMismatch) {
  std::string frame = encode_frame(MsgType::kPlanRequest, 5, std::string(40, 'x'));
  frame[kWireHeaderBytes + 11] ^= 0x04;

  FrameDecoder decoder;
  decoder.feed(frame);
  EXPECT_FALSE(decoder.next().has_value());
  decoder.finish();
  EXPECT_EQ(decoder.stats().crc_mismatch, 1u);
  EXPECT_EQ(decoder.stats().rejects(), 1u);
  EXPECT_EQ(decoder.stats().frames_decoded, 0u);
}

TEST(WireCorruption, FlippedMagicIsOneBadMagic) {
  std::string frame = encode_frame(MsgType::kErrorResponse, 6, "boom");
  frame[0] ^= 0xFF;

  FrameDecoder decoder;
  decoder.feed(frame);
  EXPECT_FALSE(decoder.next().has_value());
  decoder.finish();
  EXPECT_EQ(decoder.stats().bad_magic, 1u);
  EXPECT_EQ(decoder.stats().rejects(), 1u);
  EXPECT_EQ(decoder.stats().frames_decoded, 0u);
}

TEST(WireCorruption, TruncatedStreamIsOneShortFrame) {
  const std::string frame = encode_frame(MsgType::kPlanResponse, 7, "partial");
  FrameDecoder decoder;
  decoder.feed(frame.substr(0, frame.size() - 3));
  EXPECT_FALSE(decoder.next().has_value());
  decoder.finish();
  EXPECT_EQ(decoder.stats().short_frame, 1u);
  EXPECT_EQ(decoder.stats().rejects(), 1u);
}

TEST(WireCorruption, SplicedGarbageResyncsToTheIntactFrame) {
  const std::string frame = encode_frame(MsgType::kPlanRequest, 77, "survivor");
  // The nastiest prefix: the first bytes OF THE MAGIC itself ("WI"), so the
  // stream opens with a false magic prefix and the real magic lands
  // mid-buffer — and feed byte-by-byte, so the decoder must resync through
  // a magic that is split across feed() boundaries.
  const std::string spliced = frame.substr(0, 2) + frame;

  FrameDecoder decoder;
  std::vector<WireFrame> frames;
  for (const char byte : spliced) {
    decoder.feed(std::string_view(&byte, 1));
    while (auto f = decoder.next()) frames.push_back(std::move(*f));
  }
  decoder.finish();

  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].request_id, 77u);
  EXPECT_EQ(frames[0].payload, "survivor");
  // One lost-sync run = one bad_magic, however many bytes and feeds it took.
  EXPECT_EQ(decoder.stats().bad_magic, 1u);
  EXPECT_EQ(decoder.stats().rejects(), 1u);
}

TEST(WireCorruption, OverlongDeclarationRejectsBeforeBuffering) {
  FrameDecoder decoder(FrameDecoder::Config{.max_payload_bytes = 64});
  decoder.feed(encode_frame(MsgType::kPlanRequest, 8, std::string(65, 'p')));
  EXPECT_FALSE(decoder.next().has_value());
  decoder.finish();
  EXPECT_EQ(decoder.stats().overlong_frame, 1u);
  EXPECT_EQ(decoder.stats().rejects(), 1u);
}

TEST(WireCorruption, UnknownVersionRejectsTheFrameNotTheStream) {
  FrameDecoder decoder;
  decoder.feed(encode_frame_raw(/*version=*/7, /*type=*/1, 9, "future"));
  decoder.feed(encode_frame(MsgType::kStatsRequest, 10, ""));
  const auto survivor = decoder.next();
  decoder.finish();
  // The versioned reject consumed exactly its own frame; the next one lives.
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->request_id, 10u);
  EXPECT_EQ(decoder.stats().unknown_version, 1u);
  EXPECT_EQ(decoder.stats().rejects(), 1u);
}

TEST(WireCorruption, UnknownTypeRejectsOnlyWithAValidCrc) {
  FrameDecoder decoder;
  decoder.feed(encode_frame_raw(kWireVersion, /*type=*/99, 11, ""));
  EXPECT_FALSE(decoder.next().has_value());
  decoder.finish();
  // unknown_type requires a CRC-valid frame — a corrupt frame with a weird
  // type byte is a crc_mismatch, not an unknown_type (tested above).
  EXPECT_EQ(decoder.stats().unknown_type, 1u);
  EXPECT_EQ(decoder.stats().rejects(), 1u);
}

TEST(WireCorruption, MalformedPayloadIsTheCallersSingleReject) {
  FrameDecoder decoder;
  decoder.feed(encode_frame(MsgType::kPlanRequest, 12, "\x01"));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());  // framing-valid: the codec hands it over
  PlanRequest request;
  EXPECT_FALSE(decode_plan_request(frame->payload, &request));
  decoder.note_bad_payload();
  decoder.finish();
  EXPECT_EQ(decoder.stats().bad_payload, 1u);
  EXPECT_EQ(decoder.stats().rejects(), 1u);
}

TEST(WireCorruption, TrailingJunkAfterAPayloadFailsItsParse) {
  const std::string good = encode_plan_request(sample_request(12.0));
  PlanRequest request;
  ASSERT_TRUE(decode_plan_request(good, &request));
  EXPECT_FALSE(decode_plan_request(good + "x", &request));
}

TEST(WireCorruption, GarbageStormNeverCrashesAndDecodesNothing) {
  // 4 KiB of deterministic pseudo-random bytes: no frame, no crash, every
  // byte consumed and accounted.
  std::string garbage(4096, '\0');
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (char& byte : garbage) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    byte = static_cast<char>(x & 0xFF);
  }
  FrameDecoder decoder;
  for (std::size_t at = 0; at < garbage.size(); at += 37) {
    decoder.feed(garbage.substr(at, 37));
    while (decoder.next().has_value()) {
    }
  }
  decoder.finish();
  EXPECT_EQ(decoder.stats().frames_decoded, 0u);
  EXPECT_GE(decoder.stats().rejects(), 1u);
  EXPECT_EQ(decoder.stats().bytes_consumed, garbage.size());
}

// ---------------------------------------------------------------------------
// DuplexPipe: stream semantics, half-close, chaos-free determinism.

TEST(WirePipe, StreamsBytesInOrderAcrossArbitraryReads) {
  DuplexPipe pipe({});
  ASSERT_TRUE(pipe.a().write("hello "));
  ASSERT_TRUE(pipe.a().write("world"));
  std::string got;
  while (got.size() < 11) {
    const std::string chunk = pipe.b().read(3);  // caps force re-chunking
    ASSERT_FALSE(chunk.empty());
    got += chunk;
  }
  EXPECT_EQ(got, "hello world");

  // Full duplex: the other direction is independent.
  ASSERT_TRUE(pipe.b().write("pong"));
  EXPECT_EQ(pipe.a().read(64), "pong");
}

TEST(WirePipe, CloseFailsWritesAndDrainsReadsToEof) {
  DuplexPipe pipe({});
  ASSERT_TRUE(pipe.a().write("last words"));
  pipe.a().close();
  EXPECT_FALSE(pipe.a().write("too late"));
  // The peer drains what was buffered, then sees EOF ("").
  std::string got;
  for (;;) {
    const std::string chunk = pipe.b().read(4);
    if (chunk.empty()) break;
    got += chunk;
  }
  EXPECT_EQ(got, "last words");
  EXPECT_FALSE(pipe.b().write("into the void"));
}

TEST(WirePipe, ShutdownReadIsAHalfClose) {
  DuplexPipe pipe({});
  ASSERT_TRUE(pipe.b().write("buffered before shutdown"));
  pipe.a().shutdown_read();
  // a still drains what b wrote first, then EOF; b's new writes fail.
  std::string got;
  for (;;) {
    const std::string chunk = pipe.a().read(64);
    if (chunk.empty()) break;
    got += chunk;
  }
  EXPECT_EQ(got, "buffered before shutdown");
  EXPECT_FALSE(pipe.b().write("after"));
  // The OTHER direction stays open: a can still write, b still reads.
  ASSERT_TRUE(pipe.a().write("reply"));
  EXPECT_EQ(pipe.b().read(64), "reply");
}

// ---------------------------------------------------------------------------
// Serving end to end.

class WireServing : public ::testing::Test {
 protected:
  static ServiceConfig fast_config() {
    ServiceConfig c;
    c.cache = {.shards = 4, .capacity = 64};
    c.max_concurrent_solves = 2;
    c.max_queued_solves = 64;
    c.opt.max_candidates = 3;
    c.opt.max_groups = 2;
    c.opt.setup.log_levels = 3;
    c.opt.setup.failure.samples = 400;
    c.opt.ratio_bins = 32;
    return c;
  }

  ShardedConfig tier_config(std::size_t shards) const {
    ShardedConfig c;
    c.shards = shards;
    c.vnodes = 32;
    c.salt = 0xD15EA5EULL;
    c.service = fast_config();
    return c;
  }

  PlanRequest request(double factor) const {
    PlanRequest r;
    r.app = paper_profile("BT");
    r.deadline_h = baseline_h_ * factor;
    return r;
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/3.0,
                                   /*step_hours=*/0.25, /*seed=*/42);
  double baseline_h_ = OnDemandSelector(&catalog_, &est_).baseline(paper_profile("BT")).t_h;
};

TEST_F(WireServing, PlansServedOverTheWireMatchTheInProcessOracle) {
  const std::vector<double> factors = {1.3, 1.5, 1.3, 1.7, 1.5, 1.9};
  for (const std::size_t shards : {1u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedPlanService oracle(&catalog_, &est_, market_, tier_config(1));
    ShardedPlanService tier(&catalog_, &est_, market_, tier_config(shards));
    PlanServerLoop server(&tier, {});
    PlanClient client(&server, ClientMode::kRouted);

    for (std::size_t i = 0; i < factors.size(); ++i) {
      if (i == 3) {
        // Mid-stream epoch bump, identically into both fan-outs.
        const std::vector<PriceUpdate> updates = {PriceUpdate{{0, 0}, {0.021, 0.027}}};
        oracle.fanout().ingest(updates);
        tier.fanout().ingest(updates);
      }
      const PlanResponse got = client.plan(request(factors[i]));
      const PlanResponse want = oracle.serve(request(factors[i]));
      EXPECT_EQ(got.outcome, want.outcome) << "step " << i;
      EXPECT_EQ(got.epoch, want.epoch) << "step " << i;
      ASSERT_NE(got.plan, nullptr) << "step " << i;
      ASSERT_NE(want.plan, nullptr) << "step " << i;
      // The headline invariant: the wire is invisible, byte for byte.
      EXPECT_EQ(plan_fingerprint(*got.plan), plan_fingerprint(*want.plan)) << "step " << i;
    }
    EXPECT_EQ(client.codec_stats().rejects(), 0u);
  }
}

TEST_F(WireServing, ResponsesCorrelateByRequestIdNotArrivalOrder) {
  const PlanRequest slow_request = request(1.3);
  const PlanRequest fast_request = request(1.7);
  const std::string slow_key = canonical_key(canonicalized(slow_request));

  std::mutex latch_mutex;
  std::condition_variable latch_cv;
  bool release = false;
  ShardedConfig config = tier_config(2);
  config.service.solve_hook = [&](const std::string& key, std::uint64_t) {
    if (key != slow_key) return;
    std::unique_lock<std::mutex> lock(latch_mutex);
    latch_cv.wait(lock, [&] { return release; });
  };

  ShardedPlanService tier(&catalog_, &est_, market_, config);
  PlanServerLoop server(&tier, {.workers = 2});
  PlanClient client(&server, ClientMode::kRouted);

  const std::uint64_t slow_id = client.submit(slow_request);
  const std::uint64_t fast_id = client.submit(fast_request);

  // The LATER submission completes first — its solve isn't latched.
  std::vector<ClientCompletion> first;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (first.empty() && std::chrono::steady_clock::now() < deadline) {
    first = client.harvest();
    if (first.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(latch_mutex);
    release = true;
  }
  latch_cv.notify_all();
  client.drain();
  std::vector<ClientCompletion> rest = client.harvest();

  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(rest.size(), 1u);
  // Out-of-order arrival, correct correlation: each id carries ITS plan.
  EXPECT_EQ(first[0].request_id, fast_id);
  EXPECT_EQ(rest[0].request_id, slow_id);
  ASSERT_NE(first[0].response.plan, nullptr);
  ASSERT_NE(rest[0].response.plan, nullptr);
  const PlanResponse want_slow = tier.serve(slow_request);
  const PlanResponse want_fast = tier.serve(fast_request);
  EXPECT_EQ(plan_fingerprint(*first[0].response.plan), plan_fingerprint(*want_fast.plan));
  EXPECT_EQ(plan_fingerprint(*rest[0].response.plan), plan_fingerprint(*want_slow.plan));
}

TEST_F(WireServing, OverloadShedsExplicitlyAtTheWireDoor) {
  const PlanRequest slow_request = request(1.4);
  const std::string slow_key = canonical_key(canonicalized(slow_request));

  std::mutex latch_mutex;
  std::condition_variable latch_cv;
  bool release = false;
  std::atomic<bool> solving{false};
  ShardedConfig config = tier_config(1);
  config.service.solve_hook = [&](const std::string& key, std::uint64_t) {
    if (key != slow_key) return;
    solving.store(true);
    std::unique_lock<std::mutex> lock(latch_mutex);
    latch_cv.wait(lock, [&] { return release; });
  };

  ShardedPlanService tier(&catalog_, &est_, market_, config);
  PlanServerLoop server(&tier, {.workers = 1, .max_in_flight = 1});
  PlanClient client(&server, ClientMode::kRouted);

  const std::uint64_t slow_id = client.submit(slow_request);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!solving.load() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(solving.load());

  // The budget (1) is fully occupied by the latched solve: the next request
  // is shed AT THE WIRE, immediately, with an explicit kShed response.
  const std::uint64_t shed_id = client.submit(request(1.8));
  std::vector<ClientCompletion> shed;
  while (shed.empty() && std::chrono::steady_clock::now() < deadline) {
    shed = client.harvest();
    if (shed.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(latch_mutex);
    release = true;
  }
  latch_cv.notify_all();
  client.drain();
  const std::vector<ClientCompletion> rest = client.harvest();

  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].request_id, shed_id);
  EXPECT_TRUE(shed[0].error.empty());  // a shed is data, not an error
  EXPECT_EQ(shed[0].response.outcome, PlanOutcome::kShed);
  EXPECT_EQ(shed[0].response.plan, nullptr);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].request_id, slow_id);
  ASSERT_NE(rest[0].response.plan, nullptr);
  EXPECT_EQ(server.stats().wire_sheds, 1u);
}

TEST_F(WireServing, InvalidRequestFailsTheRequestNotTheConnection) {
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(2));
  PlanServerLoop server(&tier, {});
  PlanClient client(&server, ClientMode::kRouted);

  PlanRequest bad = request(1.5);
  bad.allowed_types = {"no-such-type"};  // validation throws inside serve()
  EXPECT_THROW((void)client.plan(bad), std::runtime_error);
  EXPECT_GE(server.stats().wire_errors, 1u);

  // The connection survived: the next request on this client succeeds.
  const PlanResponse good = client.plan(request(1.5));
  ASSERT_NE(good.plan, nullptr);
}

TEST_F(WireServing, ShutdownAnswersEverythingAcceptedBeforeClosing) {
  ShardedPlanService oracle(&catalog_, &est_, market_, tier_config(1));
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(2));
  auto server = std::make_unique<PlanServerLoop>(&tier, ServerConfig{});
  PlanClient client(server.get(), ClientMode::kRouted);

  const std::vector<double> factors = {1.3, 1.4, 1.5, 1.6, 1.7, 1.8};
  std::map<std::uint64_t, std::string> want;
  for (const double factor : factors) {
    const std::uint64_t id = client.submit(request(factor));
    want[id] = plan_fingerprint(*oracle.serve(request(factor)).plan);
  }
  // Every frame above is already buffered in its pipe (submit's write is
  // synchronous), so the drain law says all six get real answers.
  server->shutdown();
  client.drain();
  const std::vector<ClientCompletion> done = client.harvest();

  ASSERT_EQ(done.size(), factors.size());
  std::set<std::uint64_t> seen;
  for (const ClientCompletion& completion : done) {
    EXPECT_TRUE(seen.insert(completion.request_id).second) << "completed twice";
    ASSERT_EQ(want.count(completion.request_id), 1u);
    EXPECT_TRUE(completion.error.empty()) << completion.error;
    ASSERT_NE(completion.response.plan, nullptr);
    EXPECT_EQ(plan_fingerprint(*completion.response.plan), want[completion.request_id]);
  }
}

TEST_F(WireServing, RoutedClientNeverForwards) {
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(8));
  PlanServerLoop server(&tier, {});
  PlanClient client(&server, ClientMode::kRouted);

  const std::vector<double> factors = {1.30, 1.35, 1.40, 1.45, 1.50,
                                       1.55, 1.60, 1.65, 1.70, 1.75};
  for (const double factor : factors) ASSERT_NE(client.plan(request(factor)).plan, nullptr);

  // Every request landed on its ring home: zero forwards, zero rejects.
  const WireTierStats stats = server.stats();
  EXPECT_EQ(stats.requests, factors.size());
  EXPECT_EQ(stats.sprayed, factors.size());  // wire requests enter via serve_on
  EXPECT_EQ(stats.forwarded, 0u);
  EXPECT_EQ(stats.duplicate_solves, 0u);
  EXPECT_EQ(stats.frames_rejected, 0u);
  EXPECT_EQ(stats.wire_errors, 0u);
  EXPECT_EQ(client.codec_stats().rejects(), 0u);
}

TEST_F(WireServing, SprayClientPaysExactlyTheMisrouteTax) {
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(8));
  PlanServerLoop server(&tier, {});
  PlanClient client(&server, ClientMode::kSpray);

  const std::vector<double> factors = {1.30, 1.35, 1.40, 1.45, 1.50,
                                       1.55, 1.60, 1.65, 1.70, 1.75};
  std::uint64_t expected_forwards = 0;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    // Spray sends request i down connection i % shards; the tier forwards
    // it iff that is not the key's ring home.
    if (tier.home_shard(request(factors[i])) != i % tier.shard_count()) ++expected_forwards;
    ASSERT_NE(client.plan(request(factors[i])).plan, nullptr);
  }
  ASSERT_GT(expected_forwards, 0u);  // distinct keys over 8 shards: some miss

  const WireTierStats stats = server.stats();
  EXPECT_EQ(stats.requests, factors.size());
  EXPECT_EQ(stats.forwarded, expected_forwards);
  // The forward is a detour, not a re-solve: the one-solve economy holds.
  EXPECT_EQ(stats.duplicate_solves, 0u);
}

TEST_F(WireServing, StatsRoundTripMatchesTheServersLocalView) {
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(4));
  PlanServerLoop server(&tier, {});
  PlanClient client(&server, ClientMode::kRouted);
  for (const double factor : {1.3, 1.5, 1.3}) (void)client.plan(request(factor));

  const WireTierStats got = client.server_stats();
  const WireTierStats want = server.stats();
  EXPECT_EQ(got.requests, want.requests);
  EXPECT_EQ(got.hits, want.hits);
  EXPECT_EQ(got.solves, want.solves);
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.forwarded, want.forwarded);
  EXPECT_EQ(got.connections, want.connections);
  EXPECT_EQ(got.frames_received, want.frames_received);
  EXPECT_EQ(got.frames_rejected, 0u);
  // The server counts a response before its bytes can reach the peer, so
  // the three plan responses this client already observed must all be in
  // the snapshot — and the stats response itself is not (the snapshot is
  // encoded before it is written). Exactly 3, deterministically.
  EXPECT_EQ(got.responses_sent, 3u);
  EXPECT_GE(want.responses_sent, got.responses_sent);
}

}  // namespace
}  // namespace sompi::net
