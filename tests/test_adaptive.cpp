#include "core/adaptive.h"

#include <gtest/gtest.h>

#include "baselines/ablations.h"
#include "profile/paper_profiles.h"
#include "sim/monte_carlo.h"
#include "sim/replay.h"

namespace sompi {
namespace {

class AdaptiveTest : public ::testing::Test {
 protected:
  static AdaptiveConfig fast_config() {
    AdaptiveConfig c;
    c.window_h = 8.0;
    c.lookback_h = 24.0;
    c.opt.max_candidates = 4;
    c.opt.setup.log_levels = 4;
    c.opt.setup.failure.samples = 400;
    c.opt.ratio_bins = 64;
    c.opt.max_groups = 2;
    return c;
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/10.0,
                                   /*step_hours=*/0.25, /*seed=*/31);
  OnDemandSelector selector_{&catalog_, &est_};
  AppProfile bt_ = paper_profile("BT");
};

TEST_F(AdaptiveTest, CompletesWithinDeadlineOnRealMarket) {
  const AdaptiveEngine engine(&catalog_, &est_, fast_config());
  MarketReplayOracle oracle(&market_);
  const double deadline = selector_.baseline(bt_).t_h * 1.5;
  const AdaptiveResult r = engine.run(bt_, oracle, /*start_h=*/48.0, deadline);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.met_deadline) << r.hours << " vs " << deadline;
  EXPECT_GT(r.windows, 0);
  EXPECT_GT(r.cost_usd, 0.0);
}

TEST_F(AdaptiveTest, CheaperThanPureOnDemand) {
  const AdaptiveEngine engine(&catalog_, &est_, fast_config());
  MarketReplayOracle oracle(&market_);
  const double deadline = selector_.baseline(bt_).t_h * 1.5;
  const AdaptiveResult r = engine.run(bt_, oracle, 48.0, deadline);
  const double od_cost = selector_.select(bt_, deadline, 0.0).full_cost_usd();
  EXPECT_LT(r.cost_usd, od_cost);
}

TEST_F(AdaptiveTest, TightDeadlineTriggersOnDemandGuard) {
  // A deadline a hair above the baseline runtime leaves no spot plan whose
  // expected time fits: Algorithm 1's guard finishes the run on demand.
  const AdaptiveEngine engine(&catalog_, &est_, fast_config());
  MarketReplayOracle oracle(&market_);
  const double deadline = selector_.baseline(bt_).t_h * 1.005;
  const AdaptiveResult r = engine.run(bt_, oracle, 48.0, deadline);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.fell_back_to_ondemand);
  EXPECT_TRUE(r.met_deadline);
}

TEST_F(AdaptiveTest, HostileMarketStillCompletes) {
  // Spot pinned far above on-demand: the engine must deliver the run on
  // demand without blowing the deadline.
  std::vector<SpotTrace> traces;
  for (std::size_t i = 0; i < catalog_.types().size() * catalog_.zones().size(); ++i)
    traces.emplace_back(0.25, std::vector<double>(10 * 96, 50.0));
  const Market hostile(&catalog_, std::move(traces));

  const AdaptiveEngine engine(&catalog_, &est_, fast_config());
  MarketReplayOracle oracle(&hostile);
  const double deadline = selector_.baseline(bt_).t_h * 1.4;
  const AdaptiveResult r = engine.run(bt_, oracle, 48.0, deadline);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.fell_back_to_ondemand);
  EXPECT_TRUE(r.met_deadline);
}

TEST_F(AdaptiveTest, MaintenanceOffReusesInitialPlan) {
  AdaptiveConfig no_mt = fast_config();
  no_mt.update_maintenance = false;
  const AdaptiveEngine engine(&catalog_, &est_, no_mt);
  MarketReplayOracle oracle(&market_);
  const double deadline = selector_.baseline(bt_).t_h * 1.5;
  const AdaptiveResult r = engine.run(bt_, oracle, 48.0, deadline);
  EXPECT_TRUE(r.completed);
  // Only the first window pays optimization cost.
  const AdaptiveEngine with_mt(&catalog_, &est_, fast_config());
  const AdaptiveResult r_mt = with_mt.run(bt_, oracle, 48.0, deadline);
  if (r_mt.windows > 1) EXPECT_GT(r_mt.model_evaluations, r.model_evaluations);
}

TEST_F(AdaptiveTest, MonteCarloAdaptiveStats) {
  MonteCarloConfig mc;
  mc.runs = 8;
  mc.lookback_h = 24.0;
  mc.reserve_h = 60.0;
  const MonteCarloRunner runner(&market_, {}, mc);
  const AdaptiveEngine engine(&catalog_, &est_, fast_config());
  const double deadline = selector_.baseline(bt_).t_h * 1.5;
  const MonteCarloStats stats = runner.run_adaptive(engine, bt_, deadline);
  EXPECT_EQ(stats.runs, 8u);
  EXPECT_GT(stats.cost.mean, 0.0);
  EXPECT_LE(stats.deadline_miss_rate, 0.25);
}

TEST_F(AdaptiveTest, MonteCarloPlannedReplansPerStart) {
  MonteCarloConfig mc;
  mc.runs = 5;
  mc.reserve_h = 60.0;
  const MonteCarloRunner runner(&market_, {}, mc);
  const double deadline = selector_.baseline(bt_).t_h * 1.4;
  std::size_t planner_calls = 0;
  const MonteCarloStats stats = runner.run_planned(
      [&](const Market& history, double dl) {
        ++planner_calls;
        // History must never be empty and must predate execution.
        EXPECT_GT(history.trace({0, 0}).steps(), 0u);
        OptimizerConfig cfg = fast_config().opt;
        const SompiOptimizer opt(&catalog_, &est_, cfg);
        return opt.optimize(bt_, history, dl);
      },
      deadline);
  EXPECT_EQ(planner_calls, 5u);
  EXPECT_EQ(stats.runs, 5u);
}

TEST_F(AdaptiveTest, AblationConfigsDiffer) {
  EXPECT_EQ(without_replication_config().max_groups, 1);
  EXPECT_EQ(without_checkpoint_config().phi_mode, PhiMode::kDisabled);
  EXPECT_EQ(all_unable_config().max_groups, 1);
  EXPECT_EQ(all_unable_config().phi_mode, PhiMode::kDisabled);
  EXPECT_FALSE(without_maintenance_config().update_maintenance);
  EXPECT_TRUE(sompi_adaptive_config().update_maintenance);
}

}  // namespace
}  // namespace sompi
