// Differential oracle for the optimizer fast path (DESIGN.md "Optimizer
// fast path"): the incremental evaluator must match the retained naive
// evaluator to 0 ULP on every Expectation field, the admissible bounds must
// never exceed a real cost, and branch-and-bound search must return plans
// fingerprint-identical to exhaustive enumeration at any thread count.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "common/combinatorics.h"
#include "core/cost_model.h"
#include "core/optimizer.h"
#include "profile/paper_profiles.h"
#include "service/request.h"

namespace sompi {
namespace {

// --- Randomized micro-market helpers (deterministic seeds). ---

SpotTrace random_trace(std::uint64_t seed, std::size_t steps = 600) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> level(0.02, 1.2);
  std::uniform_real_distribution<double> jitter(-0.015, 0.015);
  std::vector<double> prices;
  prices.reserve(steps);
  double base = level(rng);
  for (std::size_t i = 0; i < steps; ++i) {
    if (rng() % 37 == 0) base = level(rng);  // regime change
    prices.push_back(std::max(0.0, base + jitter(rng)));
  }
  return SpotTrace(0.25, std::move(prices));
}

GroupSetup random_group(std::uint64_t seed, std::size_t bid_levels = 5) {
  std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ull);
  const SpotTrace trace = random_trace(seed);
  FailureEstimationConfig fe;
  fe.samples = 600;
  fe.horizon_steps = 120;
  return GroupSetup{
      .spec = {0, 0},
      .instances = 1 + static_cast<int>(rng() % 8),
      .t_steps = 8 + static_cast<int>(rng() % 25),
      .o_steps = 0.1 + static_cast<double>(rng() % 5) * 0.1,
      .r_steps = 0.2 + static_cast<double>(rng() % 5) * 0.15,
      .failure = FailureModel(trace, logarithmic_bid_grid(trace.max_price(), bid_levels),
                              fe),
  };
}

OnDemandChoice make_od() {
  OnDemandChoice od;
  od.type_index = 0;
  od.t_h = 9.0;
  od.instances = 4;
  od.rate_usd_h = 6.5;
  od.feasible = true;
  return od;
}

/// Synthetic bid-tied intervals: any F map exercises the tables; using an
/// arbitrary one (instead of a real φ) keeps the oracle independent of the
/// checkpoint planner.
std::vector<std::vector<int>> synthetic_f_of(const std::vector<GroupSetup>& groups,
                                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<int>> f_of(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    f_of[g].resize(groups[g].failure.bid_count());
    for (int& f : f_of[g])
      f = 1 + static_cast<int>(rng() % static_cast<unsigned>(groups[g].t_steps));
  }
  return f_of;
}

void expect_bit_equal(const Expectation& a, const Expectation& b, const char* what) {
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  EXPECT_EQ(bits(a.cost_usd), bits(b.cost_usd)) << what << " cost";
  EXPECT_EQ(bits(a.time_h), bits(b.time_h)) << what << " time";
  EXPECT_EQ(bits(a.spot_cost_usd), bits(b.spot_cost_usd)) << what << " spot cost";
  EXPECT_EQ(bits(a.od_cost_usd), bits(b.od_cost_usd)) << what << " od cost";
  EXPECT_EQ(bits(a.spot_time_h), bits(b.spot_time_h)) << what << " spot time";
  EXPECT_EQ(bits(a.od_time_h), bits(b.od_time_h)) << what << " od time";
  EXPECT_EQ(bits(a.p_complete_on_spot), bits(b.p_complete_on_spot)) << what << " pspot";
  EXPECT_EQ(bits(a.e_min_ratio), bits(b.e_min_ratio)) << what << " ratio";
}

TEST(SubsetEvaluatorOracle, MatchesNaiveEvaluatorToZeroUlp) {
  const CostModel::Config cfg{.step_hours = 0.25, .ratio_bins = 48};
  for (std::uint64_t seed : {11ull, 42ull, 1729ull, 9001ull}) {
    std::vector<GroupSetup> groups;
    for (std::uint64_t g = 0; g < 4; ++g) groups.push_back(random_group(seed * 13 + g));
    const OnDemandChoice od = make_od();
    const auto f_of = synthetic_f_of(groups, seed);
    const CostTables tables(groups, od, cfg, f_of);

    // Every subset of sizes 1..3, full lex tuple walk, against a fresh
    // naive evaluation of the SAME decisions at every step.
    for (std::size_t k = 1; k <= 3; ++k) {
      for_each_combination(groups.size(), k, [&](const std::vector<std::size_t>& subset) {
        SubsetEvaluator ev(tables, subset);
        std::vector<const GroupSetup*> view;
        std::vector<std::size_t> radices;
        for (std::size_t g : subset) {
          view.push_back(&groups[g]);
          radices.push_back(groups[g].failure.bid_count());
        }
        const CostModel naive(view, od, cfg);
        std::vector<GroupDecision> decisions(k);
        for_each_tuple_lex(radices, [&](const std::vector<std::size_t>& bids,
                                        std::size_t changed) {
          ev.note_change(changed);
          const Expectation& fast = ev.evaluate(bids);
          for (std::size_t i = 0; i < k; ++i)
            decisions[i] = {bids[i], f_of[subset[i]][bids[i]]};
          const Expectation ref = naive.evaluate(decisions);
          expect_bit_equal(fast, ref, "incremental vs naive");
        });
      });
    }
  }
}

TEST(SubsetEvaluatorOracle, StaleStateIsNeverReused) {
  // Adversarial change pattern: evaluate sparse tuples (skipping around with
  // explicit note_change) and verify against the naive model — catches any
  // prefix-cache invalidation bug that a dense lex walk would mask.
  const CostModel::Config cfg{.step_hours = 0.25, .ratio_bins = 32};
  std::vector<GroupSetup> groups;
  for (std::uint64_t g = 0; g < 3; ++g) groups.push_back(random_group(777 + g));
  const OnDemandChoice od = make_od();
  const auto f_of = synthetic_f_of(groups, 777);
  const CostTables tables(groups, od, cfg, f_of);

  const std::vector<std::size_t> subset{0, 1, 2};
  SubsetEvaluator ev(tables, subset);
  const CostModel naive({&groups[0], &groups[1], &groups[2]}, od, cfg);

  std::mt19937_64 rng(31337);
  std::vector<std::size_t> bids(3, 0);
  for (int step = 0; step < 200; ++step) {
    const std::size_t change = rng() % 3;
    for (std::size_t i = change; i < 3; ++i)
      bids[i] = rng() % groups[i].failure.bid_count();
    ev.note_change(change);
    const Expectation& fast = ev.evaluate(bids);
    std::vector<GroupDecision> decisions(3);
    for (std::size_t i = 0; i < 3; ++i) decisions[i] = {bids[i], f_of[i][bids[i]]};
    expect_bit_equal(fast, naive.evaluate(decisions), "random-walk");
  }
}

TEST(SubsetEvaluatorOracle, AgreesWithJointExactOnTinyCases) {
  // The incremental evaluator inherits the decomposition's accuracy: on
  // instances small enough for the literal joint sum, it must agree within
  // the decomposition's documented tolerances.
  const CostModel::Config cfg{.step_hours = 0.25, .ratio_bins = 512};
  std::vector<GroupSetup> groups;
  for (std::uint64_t g = 0; g < 2; ++g) {
    GroupSetup grp = random_group(55 + g, /*bid_levels=*/3);
    grp.t_steps = 6;  // keep the joint grid tractable
    groups.push_back(std::move(grp));
  }
  const OnDemandChoice od = make_od();
  const auto f_of = synthetic_f_of(groups, 55);
  const CostTables tables(groups, od, cfg, f_of);

  const std::vector<std::size_t> subset{0, 1};
  SubsetEvaluator ev(tables, subset);
  const CostModel naive({&groups[0], &groups[1]}, od, cfg);
  std::vector<std::size_t> radices{groups[0].failure.bid_count(),
                                   groups[1].failure.bid_count()};
  for_each_tuple_lex(radices, [&](const std::vector<std::size_t>& bids,
                                  std::size_t changed) {
    ev.note_change(changed);
    const Expectation& fast = ev.evaluate(bids);
    const std::vector<GroupDecision> d{{bids[0], f_of[0][bids[0]]},
                                       {bids[1], f_of[1][bids[1]]}};
    const Expectation exact = naive.evaluate_joint_exact(d);
    EXPECT_NEAR(fast.spot_cost_usd, exact.spot_cost_usd, 1e-9);
    EXPECT_NEAR(fast.p_complete_on_spot, exact.p_complete_on_spot, 1e-9);
    EXPECT_NEAR(fast.od_cost_usd, exact.od_cost_usd, exact.od_cost_usd * 0.02 + 0.05);
    EXPECT_NEAR(fast.spot_time_h, exact.spot_time_h, 0.25 + 1e-9);
  });
}

TEST(SubsetEvaluatorOracle, BoundsAreAdmissible) {
  const CostModel::Config cfg{.step_hours = 0.25, .ratio_bins = 48};
  for (std::uint64_t seed : {3ull, 8128ull}) {
    std::vector<GroupSetup> groups;
    for (std::uint64_t g = 0; g < 3; ++g) groups.push_back(random_group(seed * 7 + g));
    const OnDemandChoice od = make_od();
    const auto f_of = synthetic_f_of(groups, seed);
    const CostTables tables(groups, od, cfg, f_of);

    const std::vector<std::size_t> subset{0, 1, 2};
    SubsetEvaluator ev(tables, subset);
    std::vector<std::size_t> radices;
    for (std::size_t g : subset) radices.push_back(groups[g].failure.bid_count());
    for_each_tuple_lex(radices, [&](const std::vector<std::size_t>& bids,
                                    std::size_t changed) {
      ev.note_change(changed);
      const double cost = ev.evaluate(bids).cost_usd;
      // Not approximately: the bounds are constructed to hold bitwise.
      EXPECT_LE(ev.subset_cost_bound(), cost);
      for (std::size_t level = 0; level < subset.size(); ++level)
        EXPECT_LE(ev.cost_lower_bound(bids, level), cost) << "level " << level;
    });
  }
}

// --- End-to-end plan identity across engines, pruning, and threads. ---

class EnginePlanIdentity : public ::testing::Test {
 protected:
  static OptimizerConfig base_config() {
    OptimizerConfig c;
    c.max_candidates = 4;
    c.max_groups = 2;
    c.setup.log_levels = 4;
    c.setup.failure.samples = 400;
    c.ratio_bins = 48;
    return c;
  }

  Plan run(OptimizerConfig cfg, const AppProfile& app, double factor) const {
    const SompiOptimizer opt(&catalog_, &est_, cfg);
    const OnDemandSelector selector(&catalog_, &est_);
    return opt.optimize(app, market_, selector.baseline(app).t_h * factor);
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/3.0,
                                   /*step_hours=*/0.25, /*seed=*/123);
};

TEST_F(EnginePlanIdentity, PrunedIncrementalMatchesReferenceAtAnyThreadCount) {
  const struct {
    const char* app;
    double factor;
  } cases[] = {{"BT", 2.0}, {"SP", 1.5}, {"FT", 1.15}, {"LU", 1.3}};
  for (const auto& c : cases) {
    const AppProfile app = paper_profile(c.app);

    OptimizerConfig ref_cfg = base_config();
    ref_cfg.engine = SearchEngine::kReference;
    const Plan reference = run(ref_cfg, app, c.factor);
    const std::string want = plan_fingerprint(reference);

    for (bool prune : {false, true}) {
      for (unsigned threads : {1u, 8u}) {
        OptimizerConfig cfg = base_config();
        cfg.engine = SearchEngine::kIncremental;
        cfg.prune = prune;
        cfg.threads = threads;
        const Plan fast = run(cfg, app, c.factor);
        EXPECT_EQ(plan_fingerprint(fast), want)
            << c.app << " prune=" << prune << " threads=" << threads;
        // The fingerprint covers model_evaluations; assert it explicitly
        // anyway so a failure names the field.
        EXPECT_EQ(fast.model_evaluations, reference.model_evaluations)
            << c.app << " prune=" << prune << " threads=" << threads;
      }
    }
  }
}

TEST_F(EnginePlanIdentity, StatsAccountForEveryTuple) {
  const AppProfile bt = paper_profile("BT");

  OptimizerConfig ref_cfg = base_config();
  ref_cfg.engine = SearchEngine::kReference;
  const Plan reference = run(ref_cfg, bt, 2.0);
  // The reference scan performs exactly the logical evaluation count.
  EXPECT_EQ(reference.stats.evaluations, reference.model_evaluations);
  EXPECT_GT(reference.stats.tuples_visited, 0u);
  EXPECT_EQ(reference.stats.tuples_pruned, 0u);
  EXPECT_EQ(reference.stats.subsets_pruned, 0u);

  OptimizerConfig noprune_cfg = base_config();
  noprune_cfg.prune = false;
  const Plan unpruned = run(noprune_cfg, bt, 2.0);
  // Without pruning the incremental engine evaluates the same tuple set.
  EXPECT_EQ(unpruned.stats.evaluations, reference.model_evaluations);
  EXPECT_EQ(unpruned.stats.tuples_pruned, 0u);
  EXPECT_EQ(unpruned.stats.subsets_searched, reference.stats.subsets_searched);

  const Plan pruned = run(base_config(), bt, 2.0);
  // Pruning only ever removes work, and every enumerated tuple is either
  // visited or pruned.
  EXPECT_LE(pruned.stats.evaluations, unpruned.stats.evaluations);
  EXPECT_EQ(pruned.stats.tuples_visited + pruned.stats.tuples_pruned,
            unpruned.stats.tuples_visited);
  EXPECT_GT(pruned.stats.tuples_pruned, 0u);
}

}  // namespace
}  // namespace sompi
