#include "trace/generator.h"

#include <gtest/gtest.h>

namespace sompi {
namespace {

TEST(Generator, DeterministicForSeed) {
  const RegimeParams params = regime_params_for(VolatilityClass::kModerate, 0.05);
  Rng a(7), b(7);
  const SpotTrace ta = generate_trace(params, 500, 0.25, a);
  const SpotTrace tb = generate_trace(params, 500, 0.25, b);
  ASSERT_EQ(ta.steps(), tb.steps());
  for (std::size_t i = 0; i < ta.steps(); ++i) EXPECT_DOUBLE_EQ(ta.price(i), tb.price(i));
}

TEST(Generator, PricesPositive) {
  const RegimeParams params = regime_params_for(VolatilityClass::kSpiky, 0.02);
  Rng rng(1);
  const SpotTrace t = generate_trace(params, 2000, 0.25, rng);
  EXPECT_GT(t.min_price(), 0.0);
}

TEST(Generator, QuietStaysNearBase) {
  const double base = 0.05;
  const RegimeParams params = regime_params_for(VolatilityClass::kQuiet, base);
  Rng rng(3);
  const SpotTrace t = generate_trace(params, 4000, 0.25, rng);
  // The overwhelming majority of steps sit within a few percent of base.
  std::size_t near = 0;
  for (std::size_t i = 0; i < t.steps(); ++i)
    if (std::abs(t.price(i) - base) < 0.1 * base) ++near;
  EXPECT_GT(static_cast<double>(near) / t.steps(), 0.9);
}

TEST(Generator, SpikyExceedsOnDemandScale) {
  // Figure 1a: m1.medium spot spikes far above its base.
  const double base = 0.015;
  const RegimeParams params = regime_params_for(VolatilityClass::kSpiky, base);
  Rng rng(5);
  const SpotTrace t = generate_trace(params, 8000, 0.25, rng);
  EXPECT_GT(t.max_price(), 8.0 * base);
}

TEST(Generator, SpikyFailsMoreOftenThanQuietAtSameBid) {
  const double base = 0.05;
  Rng r1(9), r2(9);
  const SpotTrace quiet =
      generate_trace(regime_params_for(VolatilityClass::kQuiet, base), 8000, 0.25, r1);
  const SpotTrace spiky =
      generate_trace(regime_params_for(VolatilityClass::kSpiky, base), 8000, 0.25, r2);
  const double bid = 2.0 * base;
  EXPECT_GT(quiet.availability(bid), spiky.availability(bid));
}

TEST(Generator, StationaryDistributionSumsToOne) {
  const RegimeParams params = regime_params_for(VolatilityClass::kModerate, 0.05);
  const RegimeStationary pi = stationary_distribution(params);
  EXPECT_NEAR(pi.calm + pi.volatile_ + pi.spike, 1.0, 1e-12);
  EXPECT_GT(pi.calm, pi.spike);  // calm dominates by construction
}

TEST(Generator, EmpiricalRegimeSharesMatchStationary) {
  // The fraction of steps far above base approximates the spike share.
  const double base = 0.05;
  const RegimeParams params = regime_params_for(VolatilityClass::kSpiky, base);
  const RegimeStationary pi = stationary_distribution(params);
  Rng rng(11);
  const SpotTrace t = generate_trace(params, 60000, 0.25, rng);
  std::size_t spikes = 0;
  for (std::size_t i = 0; i < t.steps(); ++i)
    if (t.price(i) > params.volatile_cap * base * 1.2) ++spikes;
  const double share = static_cast<double>(spikes) / t.steps();
  EXPECT_NEAR(share, pi.spike, 0.5 * pi.spike + 0.005);
}

TEST(Generator, ShortHorizonDistributionIsStable) {
  // Figure 2's property: consecutive same-length windows have very similar
  // price histograms.
  const RegimeParams params = regime_params_for(VolatilityClass::kModerate, 0.05);
  Rng rng(13);
  const SpotTrace t = generate_trace(params, 4 * 96, 0.25, rng);  // 4 "days"
  const double hi = t.max_price() * 1.01;
  double max_l1 = 0.0;
  for (int day = 0; day + 1 < 4; ++day) {
    Histogram a(0.0, hi, 20), b(0.0, hi, 20);
    for (std::size_t i = 0; i < 96; ++i) {
      a.add(t.price(static_cast<std::size_t>(day) * 96 + i));
      b.add(t.price(static_cast<std::size_t>(day + 1) * 96 + i));
    }
    max_l1 = std::max(max_l1, Histogram::l1_distance(a, b));
  }
  EXPECT_LT(max_l1, 0.6);  // far from the disjoint value of 2.0
}

TEST(Generator, RejectsBadParams) {
  const RegimeParams params = regime_params_for(VolatilityClass::kQuiet, 0.05);
  Rng rng(1);
  EXPECT_THROW(generate_trace(params, 0, 0.25, rng), PreconditionError);
  EXPECT_THROW(generate_trace(params, 10, 0.0, rng), PreconditionError);
  EXPECT_THROW(regime_params_for(VolatilityClass::kQuiet, 0.0), PreconditionError);
}

}  // namespace
}  // namespace sompi
