#include "profile/estimator.h"

#include <gtest/gtest.h>

#include "profile/paper_profiles.h"

namespace sompi {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  double hours(const AppProfile& app, const char* type) const {
    return est_.hours(app, catalog_.type(catalog_.type_index(type)));
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
};

TEST_F(ProfileTest, AllPaperWorkloadsPresent) {
  const auto all = paper_profiles();
  ASSERT_EQ(all.size(), 6u);
  for (const char* name : {"BT", "SP", "LU", "FT", "IS", "BTIO"})
    EXPECT_NO_THROW(paper_profile(name));
  EXPECT_THROW(paper_profile("CG"), PreconditionError);
}

TEST_F(ProfileTest, ComputeAppsFastestOnCc2) {
  // §5.3.1: cc2.8xlarge is the most powerful type for comp-intensive apps.
  for (const char* name : {"BT", "SP", "LU"}) {
    const AppProfile app = paper_profile(name);
    const double cc2 = hours(app, "cc2.8xlarge");
    for (const char* other : {"m1.small", "m1.medium", "c3.xlarge"})
      EXPECT_LT(cc2, hours(app, other)) << name << " vs " << other;
  }
}

TEST_F(ProfileTest, ComputeAppsDeadlineLadder) {
  // Fig 7a: as the deadline loosens, c3.xlarge, then m1.medium, then
  // m1.small become eligible — their runtimes must be spread in (1, 1.5)×
  // the cc2.8xlarge baseline.
  for (const char* name : {"BT", "SP", "LU"}) {
    const AppProfile app = paper_profile(name);
    const double base = hours(app, "cc2.8xlarge");
    const double c3 = hours(app, "c3.xlarge") / base;
    const double medium = hours(app, "m1.medium") / base;
    const double small = hours(app, "m1.small") / base;
    EXPECT_LT(c3, medium);
    EXPECT_LT(medium, small);
    EXPECT_LT(small, 1.5) << name;
    EXPECT_GT(c3, 1.05) << name;
  }
}

TEST_F(ProfileTest, CommAppsOnlyCc2Competitive) {
  // §5.3.1: for FT/IS the m1 family is hopeless (network-bound) and
  // cc2.8xlarge is fastest.
  for (const char* name : {"FT", "IS"}) {
    const AppProfile app = paper_profile(name);
    const double cc2 = hours(app, "cc2.8xlarge");
    EXPECT_LT(cc2, hours(app, "c3.xlarge"));
    EXPECT_GT(hours(app, "m1.small") / cc2, 1.8) << name;
    EXPECT_GT(hours(app, "m1.medium") / cc2, 1.5) << name;
  }
}

TEST_F(ProfileTest, BtioFastestOnM1Medium) {
  // §5.3.1: "m1.small and m1.medium have lower costs and higher performance
  // [than cc2.8xlarge] for IO-intensive applications."
  const AppProfile app = paper_profile("BTIO");
  const double medium = hours(app, "m1.medium");
  EXPECT_LT(medium, hours(app, "cc2.8xlarge"));
  EXPECT_LT(hours(app, "m1.small"), hours(app, "cc2.8xlarge"));
  EXPECT_LT(medium, hours(app, "c3.xlarge"));
}

TEST_F(ProfileTest, BreakdownComponentsPositiveAndSum) {
  const AppProfile app = paper_profile("BT");
  const auto b = est_.estimate(app, catalog_.type(catalog_.type_index("c3.xlarge")));
  EXPECT_GT(b.cpu_h, 0.0);
  EXPECT_GT(b.net_h, 0.0);
  EXPECT_GT(b.io_h, 0.0);
  EXPECT_NEAR(b.total_h(), b.cpu_h + b.net_h + b.io_h, 1e-12);
}

TEST_F(ProfileTest, InterInstanceFraction) {
  EXPECT_DOUBLE_EQ(ExecTimeEstimator::inter_instance_fraction(1, 128), 1.0);
  EXPECT_NEAR(ExecTimeEstimator::inter_instance_fraction(32, 128), 96.0 / 127.0, 1e-12);
  // Whole job on one instance: all traffic is shared-memory.
  EXPECT_DOUBLE_EQ(ExecTimeEstimator::inter_instance_fraction(32, 32), 0.0);
  EXPECT_DOUBLE_EQ(ExecTimeEstimator::inter_instance_fraction(32, 16), 0.0);
}

TEST_F(ProfileTest, CheckpointCostsScaleWithState) {
  AppProfile app = paper_profile("BT");
  const auto& type = catalog_.type(catalog_.type_index("c3.xlarge"));
  const auto small_state = est_.checkpoint_costs(app, type);
  app.state_gb *= 4.0;
  const auto big_state = est_.checkpoint_costs(app, type);
  EXPECT_GT(big_state.checkpoint_h, small_state.checkpoint_h);
  EXPECT_GT(big_state.recovery_h, small_state.recovery_h);
  EXPECT_GT(small_state.checkpoint_h, 0.0);
}

TEST_F(ProfileTest, ScaleProfileIsLinear) {
  const AppProfile app = paper_profile("LU");
  const AppProfile half = scale_profile(app, 0.5);
  EXPECT_DOUBLE_EQ(half.instr_gi, app.instr_gi * 0.5);
  EXPECT_DOUBLE_EQ(half.comm_gb, app.comm_gb * 0.5);
  EXPECT_DOUBLE_EQ(half.io_seq_gb, app.io_seq_gb * 0.5);
  EXPECT_DOUBLE_EQ(half.state_gb, app.state_gb);  // working set unchanged
  EXPECT_EQ(half.processes, app.processes);
  EXPECT_THROW(scale_profile(app, 0.0), PreconditionError);
  EXPECT_THROW(scale_profile(app, 1.5), PreconditionError);
}

TEST_F(ProfileTest, LammpsBecomesCommBoundAtScale) {
  // §5.3.1 LAMMPS: small N → comp-intensive (cheap m1 types viable);
  // large N → comm-intensive (only cc2.8xlarge viable).
  const AppProfile at32 = lammps_profile(32);
  const AppProfile at128 = lammps_profile(128);
  EXPECT_EQ(at32.category, AppCategory::kComputation);
  EXPECT_EQ(at128.category, AppCategory::kCommunication);

  const double r32 = hours(at32, "m1.small") / hours(at32, "cc2.8xlarge");
  const double r128 = hours(at128, "m1.small") / hours(at128, "cc2.8xlarge");
  EXPECT_LT(r32, 1.5);   // eligible under a loose deadline
  EXPECT_GT(r128, 1.8);  // hopeless
}

TEST_F(ProfileTest, CategoryLabels) {
  EXPECT_EQ(category_label(AppCategory::kComputation), "comp");
  EXPECT_EQ(category_label(AppCategory::kCommunication), "comm");
  EXPECT_EQ(category_label(AppCategory::kIo), "io");
}

TEST_F(ProfileTest, BaselineTimesAreLongJobs) {
  // The paper extends NPB runs to long jobs; baselines should span several
  // hours so hour-scale checkpoint intervals make sense.
  for (const auto& app : paper_profiles()) {
    double best = 1e9;
    for (const auto& type : catalog_.types()) best = std::min(best, est_.hours(app, type));
    EXPECT_GT(best, 4.0) << app.name;
    EXPECT_LT(best, 48.0) << app.name;
  }
}

}  // namespace
}  // namespace sompi
