#include "apps/fft.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace sompi::apps {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  sompi::Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return x;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, n * 3 + 1);
  const auto expected = dft_reference(x, false);
  fft_inplace(x, false);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), expected[i].real(), 1e-9 * static_cast<double>(n)) << i;
    EXPECT_NEAR(x[i].imag(), expected[i].imag(), 1e-9 * static_cast<double>(n)) << i;
  }
}

TEST_P(FftSizes, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, n * 7 + 5);
  auto x = original;
  fft_inplace(x, false);
  fft_inplace(x, true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(x[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, n * 13 + 9);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  fft_inplace(x, false);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n), 1e-8 * time_energy * n);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes, ::testing::Values(1, 2, 4, 8, 16, 64, 256));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> x(8, Complex(0, 0));
  x[0] = Complex(1, 0);
  fft_inplace(x, false);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantGivesDcOnly) {
  std::vector<Complex> x(8, Complex(2, 0));
  fft_inplace(x, false);
  EXPECT_NEAR(x[0].real(), 16.0, 1e-12);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-12);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(6);
  EXPECT_THROW(fft_inplace(x, false), sompi::PreconditionError);
  std::vector<Complex> empty;
  EXPECT_THROW(fft_inplace(empty, false), sompi::PreconditionError);
}

}  // namespace
}  // namespace sompi::apps
