#include "checkpoint/incremental.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "minimpi/runtime.h"

namespace sompi {
namespace {

std::vector<std::byte> make_state(std::size_t bytes, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> s(bytes);
  for (auto& b : s) b = static_cast<std::byte>(rng.uniform_index(256));
  return s;
}

TEST(Incremental, HasSnapshotProbesTheCommitMarker) {
  MemoryStore store;
  mpi::Runtime::run(2, [&](mpi::Comm& comm) {
    IncrementalCheckpointer ck(&store, "inc0", /*block_size=*/256);
    EXPECT_FALSE(ck.has_snapshot(comm));
    ck.save(comm, make_state(600, 3 + comm.rank()));
    EXPECT_TRUE(ck.has_snapshot(comm));
    if (comm.rank() == 0) EXPECT_TRUE(ck.has_snapshot());
  });
}

TEST(Incremental, FirstSaveUploadsEverything) {
  MemoryStore store;
  mpi::Runtime::run(2, [&](mpi::Comm& comm) {
    IncrementalCheckpointer ck(&store, "inc1", /*block_size=*/256);
    const auto state = make_state(1000, 5 + comm.rank());
    EXPECT_EQ(ck.save(comm, state), 0);
    EXPECT_EQ(ck.bytes_uploaded(), ck.bytes_logical());
    const auto back = ck.load_latest(comm);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, state);
  });
}

TEST(Incremental, UnchangedBlocksAreNotReuploaded) {
  MemoryStore store;
  mpi::Runtime::run(2, [&](mpi::Comm& comm) {
    IncrementalCheckpointer ck(&store, "inc2", 256);
    auto state = make_state(1024, 7 + comm.rank());  // 4 blocks
    ck.save(comm, state);
    const auto after_first = ck.bytes_uploaded();

    // Mutate exactly one block.
    state[300] = static_cast<std::byte>(~std::to_integer<unsigned>(state[300]));
    ck.save(comm, state);
    EXPECT_EQ(ck.bytes_uploaded() - after_first, 256u);  // one block only

    const auto back = ck.load_latest(comm);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, state);  // mixed-version reconstruction is exact
  });
}

TEST(Incremental, IdenticalSaveUploadsNothing) {
  MemoryStore store;
  mpi::Runtime::run(1, [&](mpi::Comm& comm) {
    IncrementalCheckpointer ck(&store, "inc3", 128);
    const auto state = make_state(1000, 9);
    ck.save(comm, state);
    const auto once = ck.bytes_uploaded();
    ck.save(comm, state);
    EXPECT_EQ(ck.bytes_uploaded(), once);
    const auto back = ck.load_latest(comm);
    EXPECT_EQ(*back, state);
  });
}

TEST(Incremental, GrowingStateForcesFullUpload) {
  MemoryStore store;
  mpi::Runtime::run(1, [&](mpi::Comm& comm) {
    IncrementalCheckpointer ck(&store, "inc4", 128);
    ck.save(comm, make_state(512, 3));
    const auto before = ck.bytes_uploaded();
    const auto bigger = make_state(1024, 3);
    ck.save(comm, bigger);
    // Block count changed: no hash reuse possible.
    EXPECT_EQ(ck.bytes_uploaded() - before, 1024u);
    EXPECT_EQ(*ck.load_latest(comm), bigger);
  });
}

TEST(Incremental, RestartedProcessReuploadsButRestoresCorrectly) {
  MemoryStore store;
  const auto v0 = make_state(768, 13);
  auto v1 = v0;
  v1[10] = std::byte{0xAA};

  mpi::Runtime::run(2, [&](mpi::Comm& comm) {
    IncrementalCheckpointer ck(&store, "inc5", 256);
    ck.save(comm, v0);
  });
  // Fresh object (new process after a kill): no in-memory hashes.
  mpi::Runtime::run(2, [&](mpi::Comm& comm) {
    IncrementalCheckpointer ck(&store, "inc5", 256);
    const auto restored = ck.load_latest(comm);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(*restored, v0);
    ck.save(comm, v1);
    EXPECT_EQ(ck.bytes_uploaded(), 768u);  // full re-upload, by design
    EXPECT_EQ(*ck.load_latest(comm), v1);
  });
}

TEST(Incremental, UncommittedSnapshotIgnored) {
  MemoryStore store;
  // A torn save: blocks + manifest but no COMMIT.
  mpi::Runtime::run(1, [&](mpi::Comm& comm) {
    IncrementalCheckpointer ck(&store, "inc6", 128);
    EXPECT_FALSE(ck.load_latest(comm).has_value());
    ck.save(comm, make_state(300, 1));
  });
  store.remove("inc6/v0/COMMIT");
  mpi::Runtime::run(1, [&](mpi::Comm& comm) {
    IncrementalCheckpointer ck(&store, "inc6", 128);
    EXPECT_FALSE(ck.load_latest(comm).has_value());
  });
}

TEST(Incremental, DeltaChainAcrossManyVersions) {
  // A long chain of single-block mutations reconstructs exactly and uploads
  // ~one block per version.
  MemoryStore store;
  mpi::Runtime::run(1, [&](mpi::Comm& comm) {
    IncrementalCheckpointer ck(&store, "inc7", 64);
    auto state = make_state(64 * 8, 21);
    ck.save(comm, state);
    for (int v = 1; v <= 10; ++v) {
      state[static_cast<std::size_t>((v * 64) % state.size())] ^= std::byte{0xFF};
      const auto before = ck.bytes_uploaded();
      ck.save(comm, state);
      EXPECT_EQ(ck.bytes_uploaded() - before, 64u) << "version " << v;
      EXPECT_EQ(*ck.load_latest(comm), state);
    }
  });
}

TEST(Incremental, RejectsBadConfig) {
  MemoryStore store;
  EXPECT_THROW(IncrementalCheckpointer(&store, "a/b"), PreconditionError);
  EXPECT_THROW(IncrementalCheckpointer(&store, ""), PreconditionError);
  EXPECT_THROW(IncrementalCheckpointer(&store, "ok", 16), PreconditionError);
}

}  // namespace
}  // namespace sompi
