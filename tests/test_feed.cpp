// Feed-pipeline tests: queue semantics, source determinism, the per-group
// resolution frontier, windowed re-estimation, epoch publication into the
// serving layer, and the determinism gate (producer count and chaos are
// invisible in the committed bits). Concurrent suites are named FeedStress*
// so the TSan CI slice picks them up.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive.h"
#include "faultinject/fault_plan.h"
#include "faultinject/injector.h"
#include "feed/board_oracle.h"
#include "feed/pipeline.h"
#include "feed/tick_queue.h"
#include "feed/tick_source.h"
#include "profile/paper_profiles.h"
#include "service/plan_service.h"
#include "sim/replay.h"
#include "trace/market.h"

namespace sompi {
namespace {

using feed::ChaosTickSource;
using feed::CsvTickSource;
using feed::FeedConfig;
using feed::FeedPipeline;
using feed::FeedStats;
using feed::ReplayTickSource;
using feed::SyntheticTickSource;
using feed::Tick;
using feed::TickQueue;
using feed::VectorTickSource;

std::vector<Tick> drain(feed::TickSource& source) {
  std::vector<Tick> out;
  while (std::optional<Tick> t = source.next()) out.push_back(*t);
  return out;
}

// --- TickQueue --------------------------------------------------------------

TEST(TickQueue, FifoAndCloseSemantics) {
  TickQueue q(8);
  for (std::uint64_t i = 0; i < 3; ++i) {
    Tick t;
    t.seq = i;
    ASSERT_TRUE(q.push(t));
  }
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto t = q.pop();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->seq, i);
  }
  q.close();
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.push(Tick{}));
  const TickQueue::Stats s = q.stats();
  EXPECT_EQ(s.pushed, 3u);
  EXPECT_EQ(s.popped, 3u);
  EXPECT_EQ(s.rejected_closed, 1u);
}

TEST(TickQueue, TryPushShedsAtCapacity) {
  TickQueue q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(Tick{}));
  EXPECT_FALSE(q.try_push(Tick{}));  // explicit backpressure, no blocking
  const TickQueue::Stats s = q.stats();
  EXPECT_EQ(s.pushed, 4u);
  EXPECT_EQ(s.rejected_full, 1u);
  EXPECT_EQ(s.max_depth, 4u);
  EXPECT_EQ(q.depth(), 4u);
}

TEST(FeedStressQueue, BlockingProducerDrainsThroughTinyQueue) {
  // Capacity 2 forces the producer to block; memory stays bounded while all
  // ticks still arrive in FIFO order.
  TickQueue q(2);
  constexpr std::uint64_t kTicks = 500;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTicks; ++i) {
      Tick t;
      t.seq = i;
      ASSERT_TRUE(q.push(t));
    }
    q.close();
  });
  std::uint64_t expect = 0;
  while (const auto t = q.pop()) {
    EXPECT_EQ(t->seq, expect);
    ++expect;
  }
  producer.join();
  EXPECT_EQ(expect, kTicks);
  const TickQueue::Stats s = q.stats();
  EXPECT_EQ(s.pushed, kTicks);
  EXPECT_EQ(s.popped, kTicks);
  EXPECT_LE(s.max_depth, 2u);
}

// --- Sources ----------------------------------------------------------------

TEST(TickSource, ReplayShardsReproduceTheUnshardedStream) {
  const Catalog catalog = paper_catalog();
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), 0.5, 0.25, 11);
  ReplayTickSource all(&market, {}, 10, 8);
  const std::vector<Tick> whole = drain(all);
  const std::size_t groups = catalog.all_groups().size();
  ASSERT_EQ(whole.size(), groups * 8);

  // Shard by group: the union of per-shard streams must be exactly the
  // unsharded stream (same seqs, same prices), just re-partitioned.
  std::vector<Tick> sharded;
  for (const CircleGroupSpec& g : catalog.all_groups()) {
    ReplayTickSource shard(&market, {g}, 10, 8);
    for (const Tick& t : drain(shard)) sharded.push_back(t);
  }
  ASSERT_EQ(sharded.size(), whole.size());
  std::vector<std::uint64_t> seq_a, seq_b;
  for (const Tick& t : whole) seq_a.push_back(t.seq);
  for (const Tick& t : sharded) seq_b.push_back(t.seq);
  std::sort(seq_a.begin(), seq_a.end());
  std::sort(seq_b.begin(), seq_b.end());
  EXPECT_EQ(seq_a, seq_b);
  for (const Tick& t : whole)
    EXPECT_EQ(t.price, market.trace(t.group).price(t.step));
}

TEST(TickSource, SyntheticWalksAreShardingIndependent) {
  const Catalog catalog = paper_catalog();
  SyntheticTickSource::Config cfg;
  cfg.seed = 99;
  cfg.steps = 16;
  SyntheticTickSource all(&catalog, {}, cfg);
  const std::vector<Tick> whole = drain(all);

  const CircleGroupSpec pick = catalog.all_groups()[4];
  SyntheticTickSource solo(&catalog, {pick}, cfg);
  const std::vector<Tick> single = drain(solo);
  ASSERT_EQ(single.size(), 16u);
  std::size_t matched = 0;
  for (const Tick& t : whole) {
    if (!(t.group == pick)) continue;
    EXPECT_EQ(t.seq, single[matched].seq);
    EXPECT_EQ(t.price, single[matched].price);
    ++matched;
  }
  EXPECT_EQ(matched, 16u);
  for (const Tick& t : whole) EXPECT_GE(t.price, 0.0);
}

TEST(TickSource, CsvSkipsEachCorruptionClassWithCounters) {
  const Catalog catalog = paper_catalog();
  const std::string text =
      "step,type,zone,price\n"
      "0,m1.small,us-east-1a,0.02\n"
      "1,m1.small,us-east-1a,0.021\n"
      "1,m1.small,us-east-1a,0.5\n"          // duplicate (step, group)
      "2,m1.small\n"                          // truncated row
      "2,m1.small,us-east-1a,oops\n"          // non-numeric price
      "x,m1.small,us-east-1a,0.02\n"          // non-numeric step
      "2,m9.huge,us-east-1a,0.02\n"           // unknown type
      "2,m1.small,mars-1a,0.02\n"             // unknown zone
      "2,m1.small,us-east-1a,-0.5\n"          // negative price
      "2,m1.small,us-east-1b,0.03\n";
  CsvTickSource source(&catalog, text);
  const CsvTickSource::Stats s = source.stats();
  EXPECT_EQ(s.ragged_skipped, 1u);
  EXPECT_EQ(s.bad_number, 3u);        // bad price, bad step, negative price
  EXPECT_EQ(s.unknown_group, 2u);
  EXPECT_EQ(s.duplicate_skipped, 1u);
  EXPECT_EQ(s.ticks_emitted, 3u);
  const std::vector<Tick> ticks = drain(source);
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_EQ(ticks[0].step, 0u);
  EXPECT_DOUBLE_EQ(ticks[1].price, 0.021);
  EXPECT_EQ(ticks[2].group.zone_index, catalog.zone_index("us-east-1b"));
}

TEST(TickSource, ChaosQuietPlanIsIdentity) {
  const Catalog catalog = paper_catalog();
  const Market market =
      generate_market(catalog, paper_market_profile(catalog), 0.5, 0.25, 3);
  fi::FaultInjector injector(fi::FaultPlan::quiet(1));
  ReplayTickSource inner(&market, {}, 0, 4);
  ChaosTickSource chaos(&inner, &injector);
  ReplayTickSource reference(&market, {}, 0, 4);
  const std::vector<Tick> a = drain(chaos);
  const std::vector<Tick> b = drain(reference);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].price, b[i].price);
  }
  EXPECT_EQ(chaos.stats().dropped, 0u);
}

TEST(TickSource, ChaosClassesActOnTheStream) {
  std::vector<Tick> ticks(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ticks[i].seq = i;
    ticks[i].step = i;
    ticks[i].price = 1.0 + static_cast<double>(i);
  }
  {  // dup: every tick emitted twice, same canonical seq
    fi::FaultPlan plan = fi::FaultPlan::quiet(2);
    plan.p_tick_dup = 1.0;
    fi::FaultInjector injector(plan);
    VectorTickSource inner(ticks);
    ChaosTickSource chaos(&inner, &injector);
    const std::vector<Tick> out = drain(chaos);
    ASSERT_EQ(out.size(), 8u);
    for (std::size_t i = 0; i < out.size(); i += 2) EXPECT_EQ(out[i].seq, out[i + 1].seq);
    EXPECT_EQ(chaos.stats().duplicated, 4u);
  }
  {  // drop: nothing survives, everything counted
    fi::FaultPlan plan = fi::FaultPlan::quiet(2);
    plan.p_tick_drop = 1.0;
    fi::FaultInjector injector(plan);
    VectorTickSource inner(ticks);
    ChaosTickSource chaos(&inner, &injector);
    EXPECT_TRUE(drain(chaos).empty());
    EXPECT_EQ(chaos.stats().dropped, 4u);
  }
  {  // late: the one-slot hold swaps adjacent survivors
    fi::FaultPlan plan = fi::FaultPlan::quiet(2);
    plan.p_tick_late = 1.0;
    fi::FaultInjector injector(plan);
    VectorTickSource inner(ticks);
    ChaosTickSource chaos(&inner, &injector);
    const std::vector<Tick> out = drain(chaos);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].seq, 1u);  // t0 held, released after t1
    EXPECT_EQ(out[1].seq, 0u);
    EXPECT_EQ(out[2].seq, 3u);
    EXPECT_EQ(out[3].seq, 2u);
    EXPECT_EQ(chaos.stats().delayed, 2u);
  }
}

// --- Pipeline: resolution frontier on a hand-built single-group market. ----

struct TinyWorld {
  Catalog catalog{{InstanceType{.name = "t1", .ondemand_usd_h = 1.0}},
                  {Zone{"z1"}}};
  MarketBoard board{Market(&catalog, {SpotTrace(1.0, {1.0, 2.0})})};

  Tick tick(std::uint64_t step, double price) const {
    Tick t;
    t.group = CircleGroupSpec{0, 0};
    t.step = step;
    t.seq = step;  // one group: canonical seq == step
    t.price = price;
    return t;
  }

  FeedConfig config() const {
    FeedConfig c;
    c.window_steps = 4;
    c.publish_every = 2;
    c.late_horizon = 3;
    c.estimate = false;
    return c;
  }
};

TEST(FeedPipeline, GapFillsAfterTheLateHorizon) {
  TinyWorld w;
  FeedPipeline pipe(&w.board, w.config());
  pipe.offer(w.tick(2, 3.0));  // next step after the primed board
  pipe.offer(w.tick(4, 5.0));  // skips step 3
  EXPECT_EQ(pipe.frontier_step(), 3u);  // step 3 still within the horizon
  pipe.offer(w.tick(5, 6.0));  // know = 6 ≥ 3 + 3 → step 3 is declared lost
  EXPECT_EQ(pipe.frontier_step(), 6u);
  pipe.flush();
  const FeedStats s = pipe.stats();
  EXPECT_EQ(s.ticks_ingested, 3u);
  EXPECT_EQ(s.committed_values, 3u);
  EXPECT_EQ(s.gaps_filled, 1u);
  EXPECT_EQ(s.committed_steps, 4u);
  EXPECT_EQ(s.late_dropped, 0u);
  const MarketSnapshot snap = w.board.snapshot();
  const std::vector<double> want = {1.0, 2.0, 3.0, 3.0, 5.0, 6.0};  // gap carries 3.0
  ASSERT_EQ(snap.market->trace({0, 0}).steps(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(snap.market->trace({0, 0}).price(i), want[i]) << "step " << i;
}

TEST(FeedPipeline, DropsStragglersAndDuplicates) {
  TinyWorld w;
  FeedPipeline pipe(&w.board, w.config());
  pipe.offer(w.tick(2, 3.0));
  pipe.offer(w.tick(3, 4.0));
  pipe.offer(w.tick(2, 9.0));   // step 2 already resolved → late
  pipe.offer(w.tick(10, 1.0));  // parked pending
  pipe.offer(w.tick(10, 2.0));  // duplicate of a pending step
  pipe.flush();
  const FeedStats s = pipe.stats();
  EXPECT_EQ(s.late_dropped, 1u);
  EXPECT_EQ(s.duplicates_dropped, 1u);
  EXPECT_EQ(s.ticks_ingested,
            s.committed_values + s.duplicates_dropped + s.late_dropped);
  EXPECT_EQ(s.committed_values + s.gaps_filled, s.committed_steps * 1u);
  // flush force-resolved the pending run: steps 4..9 gap-filled, 10 real.
  EXPECT_EQ(s.committed_steps, 9u);
  EXPECT_EQ(s.gaps_filled, 6u);
  // Delta publication withholds the all-gap batches {4,5}, {6,7}, {8,9}
  // (this is the one-group market, so each is a full suppression — no epoch
  // bump), publishing only {2,3} and the final partial batch {10}: the gap
  // carry-forward never reaches the board.
  EXPECT_EQ(s.epochs_published, 2u);
  EXPECT_EQ(s.batches_suppressed, 3u);
  EXPECT_EQ(s.columns_withheld, 3u);
  const MarketSnapshot snap = w.board.snapshot();
  ASSERT_EQ(snap.market->trace({0, 0}).steps(), 5u);  // 1, 2, 3, 4, then 10's value
  EXPECT_EQ(snap.market->trace({0, 0}).price(4), 1.0);
  EXPECT_EQ(snap.market->trace({0, 0}).price(3), 4.0);
}

TEST(FeedPipeline, PublishesEpochBatchesAndReEstimates) {
  const Catalog catalog = paper_catalog();
  const Market full =
      generate_market(catalog, paper_market_profile(catalog), 1.0, 0.25, 21);
  const std::size_t len = full.trace({0, 0}).steps();
  const std::size_t visible = len / 2;
  MarketBoard board(full.window(0, visible));
  const std::uint64_t epoch0 = board.epoch();

  FeedConfig cfg;
  cfg.window_steps = 32;
  cfg.publish_every = 8;
  cfg.estimation.samples = 64;
  cfg.estimation.horizon_steps = 16;
  FeedPipeline pipe(&board, cfg);
  ReplayTickSource source(&full, {}, visible, len - visible);
  pipe.ingest(source);
  pipe.flush();

  const FeedStats s = pipe.stats();
  const std::size_t tail = len - visible;
  EXPECT_EQ(s.committed_steps, tail);
  EXPECT_EQ(s.gaps_filled, 0u);
  const std::size_t batches = (tail + cfg.publish_every - 1) / cfg.publish_every;
  EXPECT_EQ(s.epochs_published, batches);
  EXPECT_EQ(board.epoch(), epoch0 + batches);

  const auto log = pipe.publish_log();
  ASSERT_EQ(log.size(), batches);
  EXPECT_EQ(log.back().end_step, len);
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_EQ(log[i].epoch, log[i - 1].epoch + 1);

  // The published market bit-matches the recorded one.
  const MarketSnapshot snap = board.snapshot();
  for (const CircleGroupSpec& g : catalog.all_groups())
    for (std::size_t i = 0; i < len; ++i)
      ASSERT_EQ(snap.market->trace(g).price(i), full.trace(g).price(i));

  // Re-estimation ran for every group at the final epoch, over the window.
  const feed::FeedEstimates est = pipe.latest_estimates();
  EXPECT_EQ(est.epoch, board.epoch());
  EXPECT_EQ(est.window_end_step, len);
  ASSERT_EQ(est.groups.size(), catalog.all_groups().size());
  EXPECT_EQ(s.estimates_computed, batches * est.groups.size());
  for (const feed::GroupEstimate& e : est.groups) {
    const SpotTrace win = snap.market->trace(e.group).window(len - cfg.window_steps,
                                                             cfg.window_steps);
    EXPECT_EQ(e.window_max_price, win.max_price());
    ASSERT_EQ(e.bids.size(), e.expected_price.size());
    ASSERT_EQ(e.bids.size(), e.mtbf_steps.size());
    for (std::size_t b = 0; b < e.bids.size(); ++b)
      EXPECT_EQ(e.expected_price[b], win.mean_below(e.bids[b]));
  }
}

// --- Determinism gate: producer count and queueing are invisible. -----------

TEST(FeedStressPipeline, MultiProducerRunIsBitIdenticalToSync) {
  const Catalog catalog = paper_catalog();
  const Market full =
      generate_market(catalog, paper_market_profile(catalog), 1.0, 0.25, 33);
  const std::size_t len = full.trace({0, 0}).steps();
  const std::size_t visible = len / 2;

  FeedConfig cfg;
  cfg.window_steps = 24;
  cfg.publish_every = 8;
  cfg.queue_capacity = 16;  // small: force real backpressure
  cfg.estimation.samples = 64;
  cfg.estimation.horizon_steps = 16;

  MarketBoard board_sync(full.window(0, visible));
  FeedPipeline sync(&board_sync, cfg);
  ReplayTickSource source(&full, {}, visible, len - visible);
  sync.ingest(source);
  sync.flush();

  for (const std::size_t producers : {1u, 8u}) {
    MarketBoard board(full.window(0, visible));
    FeedPipeline pipe(&board, cfg);
    pipe.start();
    const std::vector<CircleGroupSpec> all = catalog.all_groups();
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        std::vector<CircleGroupSpec> mine;
        for (std::size_t g = p; g < all.size(); g += producers) mine.push_back(all[g]);
        ReplayTickSource shard(&full, mine, visible, len - visible);
        pipe.pump(shard);
      });
    }
    for (auto& t : threads) t.join();
    pipe.stop();
    pipe.flush();
    EXPECT_EQ(pipe.commit_digest(), sync.commit_digest()) << producers << " producers";
    EXPECT_EQ(pipe.stats().committed_steps, sync.stats().committed_steps);
    EXPECT_EQ(pipe.stats().gaps_filled, 0u);
    EXPECT_EQ(pipe.queue_stats().pushed, pipe.stats().ticks_ingested);
  }
}

TEST(FeedStressPipeline, ChaosDecoratedShardsStayDeterministic) {
  // Same post-chaos streams, 1 producer vs 4 producers: identical digests.
  const Catalog catalog = paper_catalog();
  const Market full =
      generate_market(catalog, paper_market_profile(catalog), 1.0, 0.25, 55);
  const std::size_t len = full.trace({0, 0}).steps();
  const std::size_t visible = len / 2;
  fi::FaultPlan plan = fi::FaultPlan::quiet(1234);
  plan.p_tick_drop = 0.1;
  plan.p_tick_dup = 0.1;
  plan.p_tick_late = 0.15;

  FeedConfig cfg;
  cfg.window_steps = 24;
  cfg.publish_every = 8;
  cfg.estimate = false;
  const std::vector<CircleGroupSpec> all = catalog.all_groups();

  std::uint64_t first_digest = 0;
  for (const std::size_t producers : {1u, 4u}) {
    MarketBoard board(full.window(0, visible));
    FeedPipeline pipe(&board, cfg);
    fi::FaultInjector injector(plan);
    pipe.start();
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (std::size_t g = p; g < all.size(); g += producers) {
          ReplayTickSource inner(&full, {all[g]}, visible, len - visible);
          ChaosTickSource chaos(&inner, &injector);
          pipe.pump(chaos);
        }
      });
    }
    for (auto& t : threads) t.join();
    pipe.stop();
    pipe.flush();
    const FeedStats s = pipe.stats();
    EXPECT_EQ(s.ticks_ingested,
              s.committed_values + s.duplicates_dropped + s.late_dropped);
    EXPECT_EQ(s.committed_values + s.gaps_filled, s.committed_steps * all.size());
    if (producers == 1)
      first_digest = pipe.commit_digest();
    else
      EXPECT_EQ(pipe.commit_digest(), first_digest);
  }
}

// --- Serving-layer integration ---------------------------------------------

OptimizerConfig tiny_opt() {
  OptimizerConfig opt;
  opt.max_candidates = 2;
  opt.max_groups = 1;
  opt.setup.log_levels = 2;
  opt.setup.failure.samples = 200;
  opt.ratio_bins = 16;
  return opt;
}

TEST(FeedService, EpochPublicationInvalidatesThePlanCache) {
  const Catalog catalog = paper_catalog();
  const ExecTimeEstimator estimator;
  const Market full =
      generate_market(catalog, paper_market_profile(catalog), 1.5, 0.25, 44);
  const std::size_t len = full.trace({0, 0}).steps();
  const std::size_t visible = (2 * len) / 3;
  MarketBoard board(full.window(0, visible));

  ServiceConfig scfg;
  scfg.opt = tiny_opt();
  PlanService service(&catalog, &estimator, &board, scfg);
  const OnDemandSelector selector(&catalog, &estimator);
  PlanRequest request;
  request.app = paper_profile("BT");
  request.deadline_h = selector.baseline(request.app).t_h * 2.0;

  const PlanResponse first = service.serve(request);
  ASSERT_NE(first.plan, nullptr);
  EXPECT_EQ(service.serve(request).outcome, PlanOutcome::kHit);

  // Stream the hidden tail through the feed: each publish bumps the epoch,
  // so the cached plan silently stops matching — no explicit invalidation.
  FeedConfig fcfg;
  fcfg.publish_every = 8;
  fcfg.estimate = false;
  FeedPipeline pipe(&board, fcfg);
  ReplayTickSource source(&full, {}, visible, len - visible);
  pipe.ingest(source);
  pipe.flush();
  ASSERT_GT(board.epoch(), first.epoch);

  const MarketSnapshot now = board.snapshot();
  const PlanResponse after = service.serve(request);
  ASSERT_NE(after.plan, nullptr);
  EXPECT_EQ(after.outcome, PlanOutcome::kSolved);  // the hit would be stale
  EXPECT_EQ(after.epoch, now.epoch);
  const Plan fresh = service.solve(canonicalized(request), *now.market);
  EXPECT_EQ(plan_fingerprint(*after.plan), plan_fingerprint(fresh));
}

TEST(FeedService, FeedDrivenAdaptiveMatchesTraceReplayBitwise) {
  // The end-to-end determinism claim: an adaptive run whose history comes
  // from a live feed (board + window hook) is bit-identical to the same run
  // over the pre-recorded market.
  const Catalog catalog = paper_catalog();
  const ExecTimeEstimator estimator;
  const AppProfile app = paper_profile("BT");
  const OnDemandSelector selector(&catalog, &estimator);
  const double deadline_h = selector.baseline(app).t_h * 1.5;

  // Size the recorded market so the run can never ask for history past the
  // recording's end (the feed oracle REQUIREs the feed committed that far).
  const double step_h = 0.25;
  const double start_h = 24.0;
  const double days = (start_h + deadline_h) / 24.0 + 1.0;
  const Market full =
      generate_market(catalog, paper_market_profile(catalog), days, step_h, 66);
  const std::size_t len = full.trace({0, 0}).steps();
  const std::size_t visible = static_cast<std::size_t>(start_h / step_h);

  AdaptiveConfig acfg;
  acfg.window_h = 8.0;
  acfg.lookback_h = 24.0;
  acfg.opt = tiny_opt();

  // Reference: pure trace replay over the full recorded market.
  MarketReplayOracle reference(&full);
  const AdaptiveEngine ref_engine(&catalog, &estimator, acfg);
  const AdaptiveResult want = ref_engine.run(app, reference, start_h, deadline_h);

  // Feed-driven: the board sees only the prefix; the window hook advances
  // the pipeline to `now` before each re-estimation. publish_every = 1 so
  // the board is current up to the commit frontier.
  MarketBoard board(full.window(0, visible));
  FeedConfig fcfg;
  fcfg.publish_every = 1;
  fcfg.estimate = false;
  FeedPipeline pipe(&board, fcfg);
  ReplayTickSource source(&full, {}, visible, len - visible);
  AdaptiveConfig feed_cfg = acfg;
  feed_cfg.window_hook = [&](int, double now_h) {
    const auto need = static_cast<std::uint64_t>(now_h / step_h);
    while (pipe.frontier_step() < need) {
      const std::optional<Tick> t = source.next();
      if (!t) break;
      pipe.offer(*t);
    }
  };
  MarketReplayOracle inner(&full);  // windows still execute on the recording
  feed::FeedHistoryOracle oracle(&board, &inner);
  const AdaptiveEngine feed_engine(&catalog, &estimator, feed_cfg);
  const AdaptiveResult got = feed_engine.run(app, oracle, start_h, deadline_h);

  EXPECT_EQ(got.cost_usd, want.cost_usd);
  EXPECT_EQ(got.hours, want.hours);
  EXPECT_EQ(got.windows, want.windows);
  EXPECT_EQ(got.completed, want.completed);
  EXPECT_EQ(got.fell_back_to_ondemand, want.fell_back_to_ondemand);
  EXPECT_EQ(got.model_evaluations, want.model_evaluations);
}

}  // namespace
}  // namespace sompi
