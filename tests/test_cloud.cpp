#include "cloud/catalog.h"

#include <gtest/gtest.h>

#include "cloud/billing.h"

namespace sompi {
namespace {

TEST(Catalog, PaperCatalogContents) {
  const Catalog c = paper_catalog();
  EXPECT_EQ(c.types().size(), 5u);
  EXPECT_EQ(c.zones().size(), 3u);
  EXPECT_EQ(c.type(c.type_index("cc2.8xlarge")).cores, 32);
  EXPECT_DOUBLE_EQ(c.type(c.type_index("m1.small")).ondemand_usd_h, 0.044);
  EXPECT_THROW(c.type_index("t2.micro"), PreconditionError);
  EXPECT_THROW(c.zone_index("eu-west-1a"), PreconditionError);
}

TEST(Catalog, PaperSpeedOrdering) {
  // Per-core speed: cc2.8xlarge > c3.xlarge > m1.medium > m1.small (§5.3
  // calibration) — the Fig 7a deadline-eligibility ladder depends on it.
  const Catalog c = paper_catalog();
  const auto g = [&](const char* n) { return c.type(c.type_index(n)).gips_per_core; };
  EXPECT_GT(g("cc2.8xlarge"), g("c3.xlarge"));
  EXPECT_GT(g("c3.xlarge"), g("m1.medium"));
  EXPECT_GT(g("m1.medium"), g("m1.small"));
}

TEST(Catalog, PaperSpotRunningCostOrdering) {
  // 128-rank cluster burn rate at CALM spot prices:
  // m1.small < m1.medium < c3.xlarge < cc2.8xlarge.
  const Catalog c = paper_catalog();
  const auto rate = [&](const char* n) {
    const auto idx = c.type_index(n);
    return c.type(idx).ondemand_usd_h * c.type(idx).spot_discount *
           c.instances_for(idx, 128);
  };
  EXPECT_LT(rate("m1.small"), rate("m1.medium"));
  EXPECT_LT(rate("m1.medium"), rate("c3.xlarge"));
  EXPECT_LT(rate("c3.xlarge"), rate("cc2.8xlarge"));
}

TEST(Catalog, InstancesForRoundsUp) {
  const Catalog c = paper_catalog();
  EXPECT_EQ(c.instances_for(c.type_index("m1.small"), 128), 128);
  EXPECT_EQ(c.instances_for(c.type_index("cc2.8xlarge"), 128), 4);
  EXPECT_EQ(c.instances_for(c.type_index("c3.xlarge"), 5), 2);
  EXPECT_EQ(c.instances_for(c.type_index("c3.xlarge"), 1), 1);
}

TEST(Catalog, GroupEnumeration) {
  const Catalog c = paper_catalog();
  const auto groups = c.all_groups();
  EXPECT_EQ(groups.size(), 15u);
  EXPECT_EQ(c.group_name(groups.front()), "m1.small@us-east-1a");
}

TEST(Billing, Proportional) {
  EXPECT_DOUBLE_EQ(billed_cost(BillingModel::kProportional, 0.5, 2.5, 4), 5.0);
  EXPECT_DOUBLE_EQ(billed_cost(BillingModel::kProportional, 0.5, 0.0, 4), 0.0);
}

TEST(Billing, HourlyRoundUp) {
  EXPECT_DOUBLE_EQ(billed_cost(BillingModel::kHourlyRoundUp, 1.0, 2.1, 1), 3.0);
  EXPECT_DOUBLE_EQ(billed_cost(BillingModel::kHourlyRoundUp, 1.0, 3.0, 1), 3.0);
}

TEST(Billing, ProviderKillRefundsPartialHour) {
  EXPECT_DOUBLE_EQ(
      billed_cost(BillingModel::kHourlyProviderKillFree, 1.0, 2.7, 1, /*provider_killed=*/true),
      2.0);
  EXPECT_DOUBLE_EQ(billed_cost(BillingModel::kHourlyProviderKillFree, 1.0, 2.7, 1,
                               /*provider_killed=*/false),
                   3.0);
}

TEST(Billing, RejectsNegativeInputs) {
  EXPECT_THROW(billed_cost(BillingModel::kProportional, -1.0, 1.0, 1), PreconditionError);
  EXPECT_THROW(billed_cost(BillingModel::kProportional, 1.0, -1.0, 1), PreconditionError);
}

}  // namespace
}  // namespace sompi
