// Tests for the extension kernels CG and EP (the paper evaluates the six
// NPB workloads; these extend the library's kernel coverage).
#include <gtest/gtest.h>

#include "apps/cg.h"
#include "apps/ep.h"
#include "minimpi/runtime.h"

namespace sompi::apps {
namespace {

using mpi::Runtime;

class ExtraWorlds : public ::testing::TestWithParam<int> {};

TEST_P(ExtraWorlds, CgMatchesReference) {
  const int p = GetParam();
  CgConfig cfg;
  cfg.n = 24;
  cfg.iterations = 30;
  const double expected = cg_reference(cfg);
  const auto r = Runtime::run(p, [&](mpi::Comm& comm) {
    const AppResult res = cg_run(comm, cfg);
    EXPECT_NEAR(res.checksum, expected, 1e-8 * std::abs(expected) + 1e-12);
  });
  EXPECT_TRUE(r.completed);
}

TEST_P(ExtraWorlds, EpMatchesReference) {
  const int p = GetParam();
  EpConfig cfg;
  cfg.pairs_per_rank = 2048;
  cfg.batches = 4;
  const double expected = ep_reference(cfg, p);
  const auto r = Runtime::run(p, [&](mpi::Comm& comm) {
    const AppResult res = ep_run(comm, cfg);
    EXPECT_NEAR(res.checksum, expected, 1e-9 * std::abs(expected) + 1e-9);
  });
  EXPECT_TRUE(r.completed);
}

INSTANTIATE_TEST_SUITE_P(Worlds, ExtraWorlds, ::testing::Values(1, 2, 3, 5, 8));

TEST(CgExtra, ResidualActuallyDecreases) {
  CgConfig few;
  few.n = 20;
  few.iterations = 2;
  CgConfig many = few;
  many.iterations = 40;
  // More CG iterations move the solution norm toward the true solution; the
  // difference between successive counts must shrink (convergence).
  const double x2 = cg_reference(few);
  const double x40 = cg_reference(many);
  CgConfig more = many;
  more.iterations = 41;
  const double x41 = cg_reference(more);
  EXPECT_GT(std::abs(x40 - x2), std::abs(x41 - x40));
}

TEST(CgExtra, KilledRunResumesToSameChecksum) {
  CgConfig cfg;
  cfg.n = 16;
  cfg.iterations = 24;
  cfg.checkpoint_every = 4;
  const double expected = cg_reference(cfg);

  MemoryStore store;
  const auto killed = Runtime::run_with_kill(
      4,
      [&](mpi::Comm& comm) {
        Checkpointer ck(&store, "cg");
        (void)cg_run(comm, cfg, &ck);
      },
      4 * 13);
  EXPECT_TRUE(killed.killed);

  const auto resumed = Runtime::run(4, [&](mpi::Comm& comm) {
    Checkpointer ck(&store, "cg");
    const AppResult res = cg_run(comm, cfg, &ck);
    EXPECT_TRUE(res.resumed);
    EXPECT_NEAR(res.checksum, expected, 1e-8 * std::abs(expected) + 1e-12);
  });
  EXPECT_TRUE(resumed.completed);
}

TEST(EpExtra, KilledRunResumesToSameChecksum) {
  EpConfig cfg;
  cfg.pairs_per_rank = 1024;
  cfg.batches = 8;
  cfg.checkpoint_every = 2;
  const double expected = ep_reference(cfg, 2);

  MemoryStore store;
  const auto killed = Runtime::run_with_kill(
      2,
      [&](mpi::Comm& comm) {
        Checkpointer ck(&store, "ep");
        (void)ep_run(comm, cfg, &ck);
      },
      2 * 5);
  EXPECT_TRUE(killed.killed);

  const auto resumed = Runtime::run(2, [&](mpi::Comm& comm) {
    Checkpointer ck(&store, "ep");
    const AppResult res = ep_run(comm, cfg, &ck);
    EXPECT_TRUE(res.resumed);
    EXPECT_LT(res.iterations_run, cfg.batches);
    EXPECT_NEAR(res.checksum, expected, 1e-9 * std::abs(expected) + 1e-9);
  });
  EXPECT_TRUE(resumed.completed);
}

TEST(EpExtra, GaussianMomentsPlausible) {
  // The Gaussian sums over many samples concentrate near zero relative to
  // the sample count.
  EpConfig cfg;
  cfg.pairs_per_rank = 1 << 15;
  cfg.batches = 2;
  double checksum = 0.0;
  Runtime::run(2, [&](mpi::Comm& comm) {
    const AppResult res = ep_run(comm, cfg);
    if (comm.rank() == 0) checksum = res.checksum;
  });
  // |sum_x + 2 sum_y| / N should be small (≈ 3/sqrt(N) scale).
  const double n = 2.0 * cfg.pairs_per_rank * cfg.batches;
  EXPECT_LT(std::abs(checksum) / n, 0.1);
}

TEST(EpExtra, CommunicationIsLight) {
  // EP's defining property: traffic per rank is tiny next to the work done.
  EpConfig cfg;
  cfg.pairs_per_rank = 4096;
  cfg.batches = 4;
  const auto r = Runtime::run(4, [&](mpi::Comm& comm) { (void)ep_run(comm, cfg); });
  ASSERT_TRUE(r.completed);
  // Each batch: 12 allreduce values → a few hundred bytes per rank total.
  EXPECT_LT(r.total_stats().bytes_sent, 40000u);
}

}  // namespace
}  // namespace sompi::apps
