#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace sompi {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

// --- Seed-stability goldens --------------------------------------------------
// Exact sequences for fixed seeds, captured from the reference implementation.
// Any platform or refactor drift in xoshiro256**, the SplitMix64 seeding, the
// rejection sampler, or the Box–Muller transform breaks reproducibility of
// every experiment in the repo — these goldens catch it immediately.

TEST(RngGolden, RawOutputMatchesKnownSequence) {
  Rng r(42);
  const std::uint64_t expected[] = {
      1546998764402558742ULL,  6990951692964543102ULL,  12544586762248559009ULL,
      17057574109182124193ULL, 18295552978065317476ULL, 14199186830065750584ULL,
      13267978908934200754ULL, 15679888225317814407ULL,
  };
  for (std::uint64_t e : expected) EXPECT_EQ(r(), e);

  Rng d;  // default seed = 0x9E3779B97F4A7C15
  const std::uint64_t expected_default[] = {
      4768932952251265552ULL, 16168679545894742312ULL, 6487188721686299062ULL,
      86499648889209533ULL,
  };
  for (std::uint64_t e : expected_default) EXPECT_EQ(d(), e);
}

TEST(RngGolden, SplitMix64MatchesReferenceVector) {
  std::uint64_t state = 0;
  const std::uint64_t expected[] = {
      16294208416658607535ULL, 7960286522194355700ULL, 487617019471545679ULL,
      17909611376780542444ULL,
  };
  for (std::uint64_t e : expected) EXPECT_EQ(splitmix64(state), e);
}

TEST(RngGolden, UniformIndexRejectionSamplingIsStable) {
  // Covers the rejection path: the sequence depends on exactly how many raw
  // draws each call consumes, so any change to the threshold logic shifts it.
  Rng r(7);
  const std::uint64_t expected10[] = {4, 4, 8, 4, 4, 1, 6, 6, 8, 9};
  for (std::uint64_t e : expected10) EXPECT_EQ(r.uniform_index(10), e);

  Rng big(123);
  const std::uint64_t expected_big[] = {571221054, 513289293, 130136654,
                                        807993844, 671173952, 654409057};
  for (std::uint64_t e : expected_big) EXPECT_EQ(big.uniform_index(1000000007ULL), e);
}

TEST(RngGolden, UniformDoublesAreStable) {
  Rng r(5);
  const double expected[] = {0.28841122817023568, 0.60208233313201065,
                             0.64954673055102219, 0.82155025770641721,
                             0.51671391390763999, 0.78452395188688107};
  for (double e : expected) EXPECT_DOUBLE_EQ(r.uniform(), e);
}

TEST(RngGolden, NormalBoxMullerIsStable) {
  // Depends on libm's log/cos as well as our transform; drift here means
  // normal-driven traces are no longer reproducible across platforms.
  Rng r(99);
  const double expected[] = {-1.3357837283988609,  0.85903068514983594,
                             0.19029370097646225,  1.4929248051068393,
                             -0.49924810917931955, 0.36187554548590356};
  for (double e : expected) EXPECT_NEAR(r.normal(), e, 1e-12);
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.5);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(99);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) { EXPECT_THROW(Rng(1).uniform_index(0), PreconditionError); }

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(15);
  std::vector<double> counts(3, 0.0);
  const int n = 90000;
  for (int i = 0; i < n; ++i) counts[rng.categorical({1.0, 2.0, 3.0})] += 1.0;
  EXPECT_NEAR(counts[0] / n, 1.0 / 6.0, 0.01);
  EXPECT_NEAR(counts[1] / n, 2.0 / 6.0, 0.01);
  EXPECT_NEAR(counts[2] / n, 3.0 / 6.0, 0.01);
}

TEST(Rng, CategoricalRejectsAllZero) {
  EXPECT_THROW(Rng(1).categorical({0.0, 0.0}), PreconditionError);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  // The child stream should not reproduce the parent stream.
  Rng parent2(21);
  (void)parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child() == parent()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(33), b(33);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(44);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace sompi
