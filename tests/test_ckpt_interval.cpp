#include "core/ckpt_interval.h"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/generator.h"

namespace sompi {
namespace {

FailureEstimationConfig fe_config() {
  FailureEstimationConfig c;
  c.samples = 4000;
  c.horizon_steps = 100;
  return c;
}

GroupSetup make_group(const SpotTrace& trace, double bid, int t_steps, double o_steps) {
  return GroupSetup{
      .spec = {0, 0},
      .instances = 4,
      .t_steps = t_steps,
      .o_steps = o_steps,
      .r_steps = 2.0 * o_steps,
      .failure = FailureModel(trace, {bid}, fe_config()),
  };
}

OnDemandChoice make_od() {
  OnDemandChoice od;
  od.t_h = 10.0;
  od.instances = 4;
  od.rate_usd_h = 8.0;
  od.feasible = true;
  return od;
}

SpotTrace bursty_trace() {
  std::vector<double> prices;
  for (int rep = 0; rep < 100; ++rep) {
    for (int i = 0; i < 18; ++i) prices.push_back(0.05);
    for (int i = 0; i < 2; ++i) prices.push_back(1.0);
  }
  return SpotTrace(0.25, std::move(prices));
}

TEST(CheckpointPlanner, YoungDalyMatchesFormula) {
  const SpotTrace trace = bursty_trace();
  const GroupSetup g = make_group(trace, 0.5, 40, 0.5);
  const double mtbf = g.failure.mtbf(0);
  const int expected = std::clamp<int>(std::lround(std::sqrt(2.0 * 0.5 * mtbf)), 1, 40);
  EXPECT_EQ(CheckpointPlanner::young_daly(g, 0), expected);
}

TEST(CheckpointPlanner, YoungDalyFreeCheckpointsMeansEveryStep) {
  const GroupSetup g = make_group(bursty_trace(), 0.5, 40, 0.0);
  EXPECT_EQ(CheckpointPlanner::young_daly(g, 0), 1);
}

TEST(CheckpointPlanner, DisabledModeReturnsT) {
  CheckpointPlanner::Config cfg;
  cfg.mode = PhiMode::kDisabled;
  const CheckpointPlanner phi(cfg);
  const GroupSetup g = make_group(bursty_trace(), 0.5, 33, 0.5);
  EXPECT_EQ(phi.choose(g, 0, make_od()), 33);
}

TEST(CheckpointPlanner, CandidateGridCoversEndpoints) {
  CheckpointPlanner::Config cfg;
  const CheckpointPlanner phi(cfg);
  const auto grid = phi.candidate_intervals(40, 7);
  EXPECT_EQ(grid.front(), 1);
  EXPECT_EQ(grid.back(), 40);
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  EXPECT_TRUE(std::adjacent_find(grid.begin(), grid.end()) == grid.end());  // unique
  EXPECT_NE(std::find(grid.begin(), grid.end(), 7), grid.end());            // young included
}

TEST(CheckpointPlanner, NumericNeverWorseThanYoungOrEndpoints) {
  // Theorem-1 property at the per-group level: φ(P) minimizes J among the
  // candidates, so it is at least as good as Young/Daly, F=1, and F=T.
  const SpotTrace trace = bursty_trace();
  const OnDemandChoice od = make_od();
  CheckpointPlanner::Config cfg;
  const CheckpointPlanner phi(cfg);
  for (double bid : {0.2, 0.5}) {
    for (int t : {10, 40, 80}) {
      const GroupSetup g = make_group(trace, bid, t, 0.4);
      const int chosen = phi.choose(g, 0, od);
      const double j_chosen = phi.objective(g, 0, chosen, od);
      EXPECT_LE(j_chosen, phi.objective(g, 0, CheckpointPlanner::young_daly(g, 0), od) + 1e-9);
      EXPECT_LE(j_chosen, phi.objective(g, 0, 1, od) + 1e-9);
      EXPECT_LE(j_chosen, phi.objective(g, 0, t, od) + 1e-9);
    }
  }
}

TEST(CheckpointPlanner, BurstyMarketWantsCheckpoints) {
  // With regular kills mid-run, some checkpointing must beat none.
  const GroupSetup g = make_group(bursty_trace(), 0.5, 40, 0.2);
  CheckpointPlanner::Config cfg;
  const CheckpointPlanner phi(cfg);
  const int chosen = phi.choose(g, 0, make_od());
  EXPECT_LT(chosen, 40);
  EXPECT_LT(phi.objective(g, 0, chosen, make_od()), phi.objective(g, 0, 40, make_od()));
}

TEST(CheckpointPlanner, SafeMarketAvoidsDenseCheckpoints) {
  // A group that never dies should not checkpoint after every step —
  // overhead only adds spot cost.
  const SpotTrace calm(0.25, std::vector<double>(1000, 0.05));
  const GroupSetup g = make_group(calm, 0.5, 40, 0.5);
  CheckpointPlanner::Config cfg;
  const CheckpointPlanner phi(cfg);
  EXPECT_GT(phi.choose(g, 0, make_od()), 10);
}

}  // namespace
}  // namespace sompi
