#include "apps/band_solver.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sompi::apps {
namespace {

/// Dense Gaussian elimination with partial pivoting — the oracle.
std::vector<double> dense_solve(std::vector<std::vector<double>> a, std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= m * a[col][c];
      b[r] -= m * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i][c] * x[c];
    x[i] = s / a[i][i];
  }
  return x;
}

TEST(Tridiagonal, SingleElement) {
  std::vector<double> a{0}, b{4.0}, c{0}, d{8.0};
  solve_tridiagonal(a, b, c, d);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
}

TEST(Tridiagonal, KnownSmallSystem) {
  // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] → x = [1; 2; 3].
  std::vector<double> a{0, 1, 1}, b{2, 2, 2}, c{1, 1, 0}, d{4, 8, 8};
  solve_tridiagonal(a, b, c, d);
  EXPECT_NEAR(d[0], 1.0, 1e-12);
  EXPECT_NEAR(d[1], 2.0, 1e-12);
  EXPECT_NEAR(d[2], 3.0, 1e-12);
}

class BandSolverRandom : public ::testing::TestWithParam<int> {};

TEST_P(BandSolverRandom, TridiagonalMatchesDense) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 1);
  std::vector<double> a(n), b(n), c(n), d(n);
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    a[i] = i > 0 ? rng.uniform(-1.0, 1.0) : 0.0;
    c[i] = i + 1 < n ? rng.uniform(-1.0, 1.0) : 0.0;
    b[i] = 3.0 + rng.uniform(0.0, 1.0);  // diagonally dominant
    d[i] = rng.uniform(-5.0, 5.0);
    if (i > 0) dense[i][i - 1] = a[i];
    dense[i][i] = b[i];
    if (i + 1 < n) dense[i][i + 1] = c[i];
  }
  const auto expected = dense_solve(dense, d);
  solve_tridiagonal(a, b, c, d);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(d[i], expected[i], 1e-9) << i;
}

TEST_P(BandSolverRandom, PentadiagonalMatchesDense) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 57 + 2);
  std::vector<double> e(n), a(n), b(n), c(n), f(n), d(n);
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    e[i] = i > 1 ? rng.uniform(-0.5, 0.5) : 0.0;
    a[i] = i > 0 ? rng.uniform(-1.0, 1.0) : 0.0;
    c[i] = i + 1 < n ? rng.uniform(-1.0, 1.0) : 0.0;
    f[i] = i + 2 < n ? rng.uniform(-0.5, 0.5) : 0.0;
    b[i] = 5.0 + rng.uniform(0.0, 1.0);  // strongly dominant: no pivoting needed
    d[i] = rng.uniform(-5.0, 5.0);
    if (i > 1) dense[i][i - 2] = e[i];
    if (i > 0) dense[i][i - 1] = a[i];
    dense[i][i] = b[i];
    if (i + 1 < n) dense[i][i + 1] = c[i];
    if (i + 2 < n) dense[i][i + 2] = f[i];
  }
  const auto expected = dense_solve(dense, d);
  solve_pentadiagonal(e, a, b, c, f, d);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(d[i], expected[i], 1e-9) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BandSolverRandom, ::testing::Values(1, 2, 3, 4, 5, 8, 17, 64));

TEST(Tridiagonal, RejectsMismatchedSizes) {
  std::vector<double> a{0, 1}, b{2, 2}, c{1, 0}, d{1};
  EXPECT_THROW(solve_tridiagonal(a, b, c, d), PreconditionError);
}

TEST(Pentadiagonal, SingleAndPairElement) {
  {
    std::vector<double> e{0}, a{0}, b{5}, c{0}, f{0}, d{10};
    solve_pentadiagonal(e, a, b, c, f, d);
    EXPECT_DOUBLE_EQ(d[0], 2.0);
  }
  {
    // [3 1; 1 3] x = [5; 7] → x = [1; 2].
    std::vector<double> e{0, 0}, a{0, 1}, b{3, 3}, c{1, 0}, f{0, 0}, d{5, 7};
    solve_pentadiagonal(e, a, b, c, f, d);
    EXPECT_NEAR(d[0], 1.0, 1e-12);
    EXPECT_NEAR(d[1], 2.0, 1e-12);
  }
}

}  // namespace
}  // namespace sompi::apps
