#include <gtest/gtest.h>

#include "apps/bt.h"
#include "apps/ft.h"
#include "apps/grid_ops.h"
#include "apps/is.h"
#include "apps/lu.h"
#include "apps/md.h"
#include "apps/sp.h"
#include "minimpi/runtime.h"

namespace sompi::apps {
namespace {

using mpi::Runtime;

// --- Distributed results match the sequential references ---------------------

class WorldSizes : public ::testing::TestWithParam<int> {};

TEST_P(WorldSizes, LuMatchesReference) {
  const int p = GetParam();
  LuConfig cfg;
  cfg.nx = 24;
  cfg.ny = 24;
  cfg.iterations = 30;
  const double expected = lu_reference(cfg);
  const auto r = Runtime::run(p, [&](mpi::Comm& comm) {
    const AppResult res = lu_run(comm, cfg);
    EXPECT_NEAR(res.checksum, expected, 1e-10 * std::abs(expected) + 1e-12);
    EXPECT_EQ(res.iterations_run, cfg.iterations);
    EXPECT_FALSE(res.resumed);
  });
  EXPECT_TRUE(r.completed);
}

TEST_P(WorldSizes, BtMatchesReference) {
  const int p = GetParam();
  BtConfig cfg;
  cfg.n = 24;
  cfg.iterations = 10;
  if (cfg.n % p != 0) GTEST_SKIP();
  const double expected = bt_reference(cfg);
  const auto r = Runtime::run(p, [&](mpi::Comm& comm) {
    const AppResult res = bt_run(comm, cfg);
    EXPECT_NEAR(res.checksum, expected, 1e-10 * std::abs(expected) + 1e-12);
  });
  EXPECT_TRUE(r.completed);
}

TEST_P(WorldSizes, SpMatchesReference) {
  const int p = GetParam();
  SpConfig cfg;
  cfg.n = 24;
  cfg.iterations = 10;
  if (cfg.n % p != 0) GTEST_SKIP();
  const double expected = sp_reference(cfg);
  const auto r = Runtime::run(p, [&](mpi::Comm& comm) {
    const AppResult res = sp_run(comm, cfg);
    EXPECT_NEAR(res.checksum, expected, 1e-10 * std::abs(expected) + 1e-12);
  });
  EXPECT_TRUE(r.completed);
}

TEST_P(WorldSizes, FtMatchesReference) {
  const int p = GetParam();
  FtConfig cfg;
  cfg.n = 16;
  cfg.iterations = 5;
  if (cfg.n % p != 0) GTEST_SKIP();
  const double expected = ft_reference(cfg);
  const auto r = Runtime::run(p, [&](mpi::Comm& comm) {
    const AppResult res = ft_run(comm, cfg);
    EXPECT_NEAR(res.checksum, expected, 1e-8 * std::abs(expected) + 1e-12);
  });
  EXPECT_TRUE(r.completed);
}

TEST_P(WorldSizes, IsMatchesReference) {
  const int p = GetParam();
  IsConfig cfg;
  cfg.keys_per_rank = 512;
  cfg.iterations = 4;
  const double expected = is_reference(cfg, p);
  const auto r = Runtime::run(p, [&](mpi::Comm& comm) {
    const AppResult res = is_run(comm, cfg);
    EXPECT_NEAR(res.checksum, expected, 1e-9 * std::abs(expected) + 1e-9);
  });
  EXPECT_TRUE(r.completed);
}

TEST_P(WorldSizes, MdMatchesReference) {
  const int p = GetParam();
  MdConfig cfg;
  cfg.cells = 12;
  cfg.iterations = 15;
  if (cfg.cells % p != 0) GTEST_SKIP();
  // Slabs must stay wider than the cutoff.
  if (cfg.cells * cfg.spacing / p < cfg.cutoff) GTEST_SKIP();
  const double expected = md_reference(cfg);
  const auto r = Runtime::run(p, [&](mpi::Comm& comm) {
    const AppResult res = md_run(comm, cfg);
    EXPECT_NEAR(res.checksum, expected, 1e-6 * std::abs(expected) + 1e-8);
  });
  EXPECT_TRUE(r.completed);
}

INSTANTIATE_TEST_SUITE_P(Worlds, WorldSizes, ::testing::Values(1, 2, 3, 4, 6, 8));

// --- Distributed transpose ----------------------------------------------------

TEST(Transpose, DoubleTransposeIsIdentity) {
  for (int p : {1, 2, 4}) {
    const int n = 8;
    Runtime::run(p, [&](mpi::Comm& comm) {
      const int m = n / comm.size();
      std::vector<double> block(static_cast<std::size_t>(m) * n);
      for (int l = 0; l < m; ++l)
        for (int c = 0; c < n; ++c)
          block[static_cast<std::size_t>(l * n + c)] =
              (comm.rank() * m + l) * 100.0 + c;
      const auto twice = transpose_block(comm, transpose_block(comm, block, n), n);
      EXPECT_EQ(twice, block);
    });
  }
}

TEST(Transpose, MatchesLocalTranspose) {
  const int n = 6;
  const int p = 3;
  // Build the full matrix, transpose locally, compare against blocks.
  std::vector<double> full(n * n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) full[static_cast<std::size_t>(r * n + c)] = r * 10.0 + c;
  Runtime::run(p, [&](mpi::Comm& comm) {
    const int m = n / p;
    std::vector<double> block(full.begin() + static_cast<std::ptrdiff_t>(comm.rank()) * m * n,
                              full.begin() + static_cast<std::ptrdiff_t>(comm.rank() + 1) * m * n);
    const auto t = transpose_block(comm, block, n);
    for (int l = 0; l < m; ++l)
      for (int c = 0; c < n; ++c)
        EXPECT_DOUBLE_EQ(t[static_cast<std::size_t>(l * n + c)],
                         full[static_cast<std::size_t>(c * n + comm.rank() * m + l)]);
  });
}

// --- Checkpoint / kill / restart round trips ----------------------------------

TEST(AppCheckpoint, LuKilledRunResumesToSameChecksum) {
  LuConfig cfg;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.iterations = 40;
  cfg.checkpoint_every = 5;
  const double expected = lu_reference(cfg);

  MemoryStore store;
  // First attempt: killed mid-run (4 ranks × ~25 ticks each ≈ die at it 25).
  const auto killed = Runtime::run_with_kill(
      4,
      [&](mpi::Comm& comm) {
        Checkpointer ck(&store, "lu");
        (void)lu_run(comm, cfg, &ck);
      },
      4 * 25);
  EXPECT_TRUE(killed.killed);
  EXPECT_GT(store.bytes_stored(), 0u);

  // Restart: resumes from the last committed snapshot and finishes.
  const auto resumed = Runtime::run(4, [&](mpi::Comm& comm) {
    Checkpointer ck(&store, "lu");
    const AppResult res = lu_run(comm, cfg, &ck);
    EXPECT_TRUE(res.resumed);
    EXPECT_LT(res.iterations_run, cfg.iterations);  // did NOT redo everything
    EXPECT_NEAR(res.checksum, expected, 1e-10 * std::abs(expected) + 1e-12);
  });
  EXPECT_TRUE(resumed.completed);
}

TEST(AppCheckpoint, BtKilledRunResumesToSameChecksum) {
  BtConfig cfg;
  cfg.n = 16;
  cfg.iterations = 16;
  cfg.checkpoint_every = 4;
  const double expected = bt_reference(cfg);

  MemoryStore store;
  const auto killed = Runtime::run_with_kill(
      4,
      [&](mpi::Comm& comm) {
        Checkpointer ck(&store, "bt");
        (void)bt_run(comm, cfg, &ck);
      },
      4 * 10);
  EXPECT_TRUE(killed.killed);

  const auto resumed = Runtime::run(4, [&](mpi::Comm& comm) {
    Checkpointer ck(&store, "bt");
    const AppResult res = bt_run(comm, cfg, &ck);
    EXPECT_TRUE(res.resumed);
    EXPECT_NEAR(res.checksum, expected, 1e-10 * std::abs(expected) + 1e-12);
  });
  EXPECT_TRUE(resumed.completed);
}

TEST(AppCheckpoint, MdDoubleKillStillConverges) {
  // Two consecutive kills, then a clean finish — exercises repeated
  // restore-from-latest.
  MdConfig cfg;
  cfg.cells = 8;
  cfg.iterations = 30;
  cfg.checkpoint_every = 5;
  const double expected = md_reference(cfg);

  MemoryStore store;
  // Budgets are ticks within EACH attempt; the second attempt resumes near
  // iteration 10, so a small budget still kills it mid-run.
  for (const std::uint64_t kill_at : {2 * 12, 2 * 8}) {
    const auto killed = Runtime::run_with_kill(
        2,
        [&](mpi::Comm& comm) {
          Checkpointer ck(&store, "md");
          (void)md_run(comm, cfg, &ck);
        },
        kill_at);
    EXPECT_TRUE(killed.killed);
  }
  const auto done = Runtime::run(2, [&](mpi::Comm& comm) {
    Checkpointer ck(&store, "md");
    const AppResult res = md_run(comm, cfg, &ck);
    EXPECT_TRUE(res.resumed);
    EXPECT_NEAR(res.checksum, expected, 1e-6 * std::abs(expected) + 1e-8);
  });
  EXPECT_TRUE(done.completed);
}

TEST(AppCheckpoint, CheckpointedRunMatchesUncheckpointed) {
  // Checkpointing must not perturb the numerics.
  SpConfig cfg;
  cfg.n = 12;
  cfg.iterations = 9;
  MemoryStore store;
  double with_ck = 0.0, without_ck = 0.0;
  Runtime::run(3, [&](mpi::Comm& comm) {
    SpConfig c2 = cfg;
    c2.checkpoint_every = 2;
    Checkpointer ck(&store, "sp");
    const AppResult res = sp_run(comm, c2, &ck);
    if (comm.rank() == 0) with_ck = res.checksum;
    EXPECT_EQ(res.checkpoints_saved, 4);  // after iterations 2, 4, 6, 8
  });
  Runtime::run(3, [&](mpi::Comm& comm) {
    const AppResult res = sp_run(comm, cfg);
    if (comm.rank() == 0) without_ck = res.checksum;
  });
  EXPECT_DOUBLE_EQ(with_ck, without_ck);
}

// --- BTIO ---------------------------------------------------------------------

TEST(Btio, DumpsSnapshotsToStore) {
  BtConfig cfg;
  cfg.n = 12;
  cfg.iterations = 9;
  cfg.io_every = 3;
  MemoryStore io;
  const auto r = Runtime::run(3, [&](mpi::Comm& comm) {
    (void)bt_run(comm, cfg, nullptr, &io);
  });
  EXPECT_TRUE(r.completed);
  // 3 snapshots × 3 ranks.
  EXPECT_EQ(io.list("btio/").size(), 9u);
  EXPECT_TRUE(io.exists("btio/it9/rank2"));
  // BTIO mode without a store is a usage error.
  const auto bad = Runtime::run(1, [&](mpi::Comm& comm) {
    EXPECT_THROW((void)bt_run(comm, cfg, nullptr, nullptr), PreconditionError);
  });
  EXPECT_TRUE(bad.completed);
}

TEST(Btio, ChecksumUnaffectedByIo) {
  BtConfig plain;
  plain.n = 12;
  plain.iterations = 6;
  BtConfig io_cfg = plain;
  io_cfg.io_every = 2;
  MemoryStore io;
  double a = 0.0, b = 0.0;
  Runtime::run(2, [&](mpi::Comm& comm) {
    const auto res = bt_run(comm, plain);
    if (comm.rank() == 0) a = res.checksum;
  });
  Runtime::run(2, [&](mpi::Comm& comm) {
    const auto res = bt_run(comm, io_cfg, nullptr, &io);
    if (comm.rank() == 0) b = res.checksum;
  });
  EXPECT_DOUBLE_EQ(a, b);
}

// --- Misc kernel properties ----------------------------------------------------

TEST(Md, EnergyApproximatelyConserved) {
  MdConfig cfg;
  cfg.cells = 10;
  cfg.iterations = 5;
  const double early = md_reference(cfg);
  cfg.iterations = 60;
  const double late = md_reference(cfg);
  // Symplectic integrator: energy drift stays small.
  EXPECT_NEAR(late, early, 0.05 * std::abs(early) + 0.05);
}

TEST(Is, DetectsKeysAcrossFullRange) {
  IsConfig cfg;
  cfg.keys_per_rank = 2048;
  cfg.iterations = 1;
  cfg.key_range = 1u << 10;
  // Non-trivial digest and no sortedness violation.
  const auto r = Runtime::run(4, [&](mpi::Comm& comm) {
    const AppResult res = is_run(comm, cfg);
    EXPECT_GT(res.checksum, 0.0);
  });
  EXPECT_TRUE(r.completed);
}

TEST(Apps, ConfigValidation) {
  const auto r = Runtime::run(2, [](mpi::Comm& comm) {
    LuConfig lu;
    lu.ny = 1;  // fewer rows than ranks
    EXPECT_THROW((void)lu_run(comm, lu), PreconditionError);
    BtConfig bt;
    bt.n = 9;  // not divisible by world size 2
    EXPECT_THROW((void)bt_run(comm, bt), PreconditionError);
    FtConfig ft;
    ft.n = 12;  // not a power of two
    EXPECT_THROW((void)ft_run(comm, ft), PreconditionError);
    MdConfig md;
    md.cells = 3;  // not divisible
    EXPECT_THROW((void)md_run(comm, md), PreconditionError);
  });
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace sompi::apps
