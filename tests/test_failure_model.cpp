#include "core/failure_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "trace/generator.h"

namespace sompi {
namespace {

FailureEstimationConfig config(std::size_t samples = 4000, std::size_t horizon = 50) {
  FailureEstimationConfig c;
  c.samples = samples;
  c.horizon_steps = horizon;
  return c;
}

TEST(FailureModel, ConstantPriceNeverFailsAboveIt) {
  const SpotTrace trace(0.25, std::vector<double>(100, 0.05));
  const FailureModel fm(trace, {0.04, 0.06}, config());
  // Bid below the price: instant out-of-bid, always.
  EXPECT_DOUBLE_EQ(fm.survival(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(fm.pmf(0, 0), 1.0);
  // Bid above the price: immortal.
  EXPECT_DOUBLE_EQ(fm.survival(1, 50), 1.0);
  EXPECT_DOUBLE_EQ(fm.expected_lifetime(1, 20.0), 20.0);
}

TEST(FailureModel, SurvivalMonotoneInTimeAndBid) {
  Rng rng(3);
  const SpotTrace trace =
      generate_trace(regime_params_for(VolatilityClass::kSpiky, 0.05), 4000, 0.25, rng);
  const FailureModel fm(trace, logarithmic_bid_grid(trace.max_price(), 7), config());
  for (std::size_t b = 0; b < fm.bid_count(); ++b) {
    EXPECT_DOUBLE_EQ(fm.survival(b, 0), 1.0);
    for (std::size_t t = 1; t <= fm.horizon(); ++t)
      EXPECT_LE(fm.survival(b, t), fm.survival(b, t - 1) + 1e-12);
  }
  for (std::size_t b = 1; b < fm.bid_count(); ++b)
    for (std::size_t t = 0; t <= fm.horizon(); t += 7)
      EXPECT_GE(fm.survival(b, t), fm.survival(b - 1, t) - 1e-12) << "bid " << b << " t " << t;
}

TEST(FailureModel, PmfSumsToOne) {
  Rng rng(4);
  const SpotTrace trace =
      generate_trace(regime_params_for(VolatilityClass::kModerate, 0.05), 4000, 0.25, rng);
  const FailureModel fm(trace, logarithmic_bid_grid(trace.max_price(), 6), config());
  for (std::size_t b = 0; b < fm.bid_count(); ++b) {
    double total = 0.0;
    for (std::size_t t = 0; t <= fm.horizon(); ++t) total += fm.pmf(b, t);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(FailureModel, KnownPeriodicTrace) {
  // Price pattern: 9 low steps then 1 spike, repeating. With a bid between,
  // a run starting at a uniformly random offset first-passes at the next
  // spike: P[fp = k] = 1/10 for k in 0..9.
  std::vector<double> prices;
  for (int rep = 0; rep < 50; ++rep) {
    for (int i = 0; i < 9; ++i) prices.push_back(0.05);
    prices.push_back(1.0);
  }
  const SpotTrace trace(0.25, std::move(prices));
  const FailureModel fm(trace, {0.5}, config(20000, 30));
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(fm.pmf(0, k), 0.1, 0.02) << k;
  EXPECT_NEAR(fm.survival(0, 10), 0.0, 1e-12);
  // MTBF of a uniform{0..9} failure time is 4.5.
  EXPECT_NEAR(fm.mtbf(0), 4.5, 0.15);
  // E[min(fp, 5)] = (0+1+2+3+4)/10 + 5·(5/10) = 3.5.
  EXPECT_NEAR(fm.expected_lifetime(0, 5.0), 3.5, 0.1);
}

TEST(FailureModel, ExpectedPriceIsMeanBelowBid) {
  const SpotTrace trace(0.25, {0.02, 0.04, 0.06, 0.08, 1.0});
  const FailureModel fm(trace, {0.05, 2.0}, config(100, 5));
  EXPECT_DOUBLE_EQ(fm.expected_price(0), 0.03);
  EXPECT_DOUBLE_EQ(fm.expected_price(1), trace.mean_below(2.0));
  EXPECT_DOUBLE_EQ(fm.max_price(), 1.0);
}

TEST(FailureModel, FractionalLifetimeInterpolates) {
  const SpotTrace trace(0.25, std::vector<double>(100, 0.05));
  const FailureModel fm(trace, {0.06}, config(100, 50));
  EXPECT_DOUBLE_EQ(fm.expected_lifetime(0, 3.5), 3.5);
  EXPECT_DOUBLE_EQ(fm.survival_at(0, 2.3), 1.0);
}

TEST(FailureModel, EstimationIsDeterministicForSeed) {
  Rng rng(5);
  const SpotTrace trace =
      generate_trace(regime_params_for(VolatilityClass::kSpiky, 0.03), 2000, 0.25, rng);
  const FailureModel a(trace, {0.05, 0.1}, config());
  const FailureModel b(trace, {0.05, 0.1}, config());
  for (std::size_t t = 0; t <= a.horizon(); ++t) {
    EXPECT_DOUBLE_EQ(a.survival(0, t), b.survival(0, t));
    EXPECT_DOUBLE_EQ(a.survival(1, t), b.survival(1, t));
  }
}

TEST(FailureModel, TrainTestStability) {
  // §5.4.1: the failure-rate function estimated on 3 days predicts the 4th
  // day well. Train on the first 3/4, test on the last 1/4 of one long
  // stationary trace and compare survival curves.
  Rng rng(6);
  const SpotTrace trace =
      generate_trace(regime_params_for(VolatilityClass::kModerate, 0.05), 4 * 96 * 4, 0.25, rng);
  const SpotTrace train = trace.window(0, 3 * 96 * 4);
  const SpotTrace test = trace.window(3 * 96 * 4, 96 * 4);
  const auto bids = logarithmic_bid_grid(train.max_price(), 5);
  const FailureModel fm_train(train, bids, config(6000, 40));
  const FailureModel fm_test(test, bids, config(6000, 40));
  double max_diff = 0.0;
  for (std::size_t b = 0; b < bids.size(); ++b)
    for (std::size_t t = 0; t <= 40; t += 5)
      max_diff = std::max(max_diff, std::abs(fm_train.survival(b, t) - fm_test.survival(b, t)));
  EXPECT_LT(max_diff, 0.25);
}

TEST(BidGrids, LogarithmicShape) {
  const auto grid = logarithmic_bid_grid(8.0, 4);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_DOUBLE_EQ(grid[0], 1.0);
  EXPECT_DOUBLE_EQ(grid[1], 2.0);
  EXPECT_DOUBLE_EQ(grid[2], 4.0);
  EXPECT_DOUBLE_EQ(grid[3], 8.0);
}

TEST(BidGrids, UniformShape) {
  const auto grid = uniform_bid_grid(10.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0], 2.0);
  EXPECT_DOUBLE_EQ(grid[4], 10.0);
}

TEST(FailureModel, RejectsBadInputs) {
  const SpotTrace trace(0.25, {0.05});
  EXPECT_THROW(FailureModel(trace, {}, config()), PreconditionError);
  EXPECT_THROW(FailureModel(trace, {0.2, 0.1}, config()), PreconditionError);  // unsorted
  EXPECT_THROW(FailureModel(trace, {0.0}, config()), PreconditionError);       // zero bid
}

}  // namespace
}  // namespace sompi
