// PlanCache / PlanService edge cases called out in the fault-injection PR:
// eviction behaviour at the degenerate capacity of one, the stale-sweep
// horizon clamp racing a mid-request epoch bump, and service-level
// canonicalization of equivalent-but-reordered constraint lists.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "profile/paper_profiles.h"
#include "service/plan_service.h"

namespace sompi {
namespace {

std::shared_ptr<const Plan> tagged_plan(const std::string& app) {
  Plan p;
  p.app = app;
  return std::make_shared<const Plan>(std::move(p));
}

// ---------------------------------------------------------------------------
// PlanCache at capacity 1: every insert of a new key evicts the resident.

TEST(PlanCacheEdges, CapacityOneEvictsOnEveryNewKey) {
  PlanCache cache({.shards = 1, .capacity = 1});
  cache.insert("a", 1, tagged_plan("A"));
  ASSERT_NE(cache.lookup("a", 1), nullptr);
  EXPECT_EQ(cache.size(), 1u);

  cache.insert("b", 1, tagged_plan("B"));
  EXPECT_EQ(cache.lookup("a", 1), nullptr);  // evicted, not merely demoted
  ASSERT_NE(cache.lookup("b", 1), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheEdges, CapacityOneReinsertReplacesWithoutEviction) {
  PlanCache cache({.shards = 1, .capacity = 1});
  cache.insert("a", 1, tagged_plan("old"));
  cache.insert("a", 1, tagged_plan("new"));
  const auto hit = cache.lookup("a", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->app, "new");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheEdges, CapacityOneSameKeyDifferentEpochsStillEvicts) {
  // (key, epoch) is the cache key, so the same request at a new epoch is a
  // new entry and must push out the old one at capacity 1.
  PlanCache cache({.shards = 1, .capacity = 1});
  cache.insert("a", 1, tagged_plan("e1"));
  cache.insert("a", 2, tagged_plan("e2"));
  EXPECT_EQ(cache.lookup("a", 1), nullptr);
  ASSERT_NE(cache.lookup("a", 2), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheEdges, LookupRefreshesLruPosition) {
  PlanCache cache({.shards = 1, .capacity = 2});
  cache.insert("a", 1, tagged_plan("A"));
  cache.insert("b", 1, tagged_plan("B"));
  ASSERT_NE(cache.lookup("a", 1), nullptr);  // "a" becomes most recent
  cache.insert("c", 1, tagged_plan("C"));
  EXPECT_NE(cache.lookup("a", 1), nullptr);  // survived thanks to the refresh
  EXPECT_EQ(cache.lookup("b", 1), nullptr);  // LRU victim
  EXPECT_NE(cache.lookup("c", 1), nullptr);
}

// ---------------------------------------------------------------------------
// The capacity budget is GLOBAL across the lock shards. The old per-shard
// even split broke hit/miss classification whenever keys skewed across the
// internal shards — fatal behind a shard router, which hands each cache a
// pre-filtered (hence skewed-looking) key subset.

TEST(PlanCacheEdges, RouterCorrelatedKeySetStillGetsFullCapacity) {
  // Adversarial skew: 64 keys that all land in ONE std::hash bucket mod 8 —
  // exactly what a naive outer router using the same formula would produce.
  // Under the per-shard split (64/8 = 8 per shard) at most a handful would
  // survive; under the global budget all 64 must be resident and hit.
  std::vector<std::string> keys;
  for (std::uint64_t i = 0; keys.size() < 64; ++i) {
    std::string k = "req-" + std::to_string(i);
    if (std::hash<std::string>{}(k) % 8 == 3) keys.push_back(std::move(k));
  }

  PlanCache cache({.shards = 8, .capacity = 64});
  for (const std::string& k : keys) cache.insert(k, 1, tagged_plan(k));

  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  for (const std::string& k : keys) {
    const auto hit = cache.lookup(k, 1);
    ASSERT_NE(hit, nullptr) << "fitting key evicted: " << k;
    EXPECT_EQ(hit->app, k);
  }
}

TEST(PlanCacheEdges, GlobalBudgetStillEvictsWhenActuallyOverCapacity) {
  // The fix must not disable eviction: 3x the budget of uniformly spread
  // keys has to settle near the budget (soft by at most shards-1 entries,
  // since an insert only evicts from its own shard's tail).
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kCapacity = 32;
  PlanCache cache({.shards = kShards, .capacity = kCapacity});
  for (std::size_t i = 0; i < 3 * kCapacity; ++i)
    cache.insert("key-" + std::to_string(i), 1, tagged_plan("p"));

  EXPECT_LE(cache.size(), kCapacity + kShards - 1);
  EXPECT_GE(cache.size(), kCapacity / 2);  // eviction is pressure-driven, not a purge
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.insertions, 3 * kCapacity);
  EXPECT_EQ(cache.size() + s.evictions + s.stale_dropped, s.insertions);
}

// ---------------------------------------------------------------------------
// Service-level edges. Same fixture shape as test_service.cpp (tiny
// optimizer so each solve is fast).

class PlanCacheServiceEdges : public ::testing::Test {
 protected:
  static ServiceConfig fast_config() {
    ServiceConfig c;
    c.cache = {.shards = 4, .capacity = 64};
    c.max_concurrent_solves = 2;
    c.max_queued_solves = 8;
    c.opt.max_candidates = 3;
    c.opt.max_groups = 2;
    c.opt.setup.log_levels = 3;
    c.opt.setup.failure.samples = 400;
    c.opt.ratio_bins = 32;
    return c;
  }

  PlanRequest request(double factor = 1.5) const {
    PlanRequest r;
    r.app = paper_profile("BT");
    r.deadline_h = baseline_h_ * factor;
    return r;
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/3.0,
                                   /*step_hours=*/0.25, /*seed=*/42);
  MarketBoard board_{market_};
  double baseline_h_ = OnDemandSelector(&catalog_, &est_).baseline(paper_profile("BT")).t_h;
};

TEST_F(PlanCacheServiceEdges, SweepHorizonClampRacesAnEpochBump) {
  // A live serve holding a pre-bump snapshot must floor the sweep horizon:
  // until it completes, invalidate_stale() may not reclaim entries at its
  // epoch, or "one solve per (request, epoch)" would break mid-request.
  ServiceConfig cfg = fast_config();
  std::atomic<bool> armed{false};
  std::atomic<bool> in_solve{false};
  std::atomic<bool> release{false};
  cfg.solve_hook = [&](const std::string&, std::uint64_t) {
    if (!armed.load()) return;
    in_solve.store(true);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!release.load() && std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
  };
  PlanService service(&catalog_, &est_, &board_, cfg);

  // Populate the cache at epoch 1.
  ASSERT_EQ(service.serve(request(1.5)).outcome, PlanOutcome::kSolved);
  ASSERT_EQ(service.stats().cache_entries, 1u);

  // A second, different request snapshots epoch 1 and blocks in its solve.
  armed.store(true);
  PlanResponse slow_response;
  std::thread slow([&] { slow_response = service.serve(request(2.0)); });
  while (!in_solve.load()) std::this_thread::yield();

  // The market moves mid-solve. The sweep must clamp to the live epoch-1
  // registration and reclaim nothing.
  board_.ingest({});
  EXPECT_EQ(service.invalidate_stale(), 0u);
  EXPECT_EQ(service.stats().cache_entries, 1u);

  release.store(true);
  slow.join();
  ASSERT_EQ(slow_response.outcome, PlanOutcome::kSolved);
  EXPECT_EQ(slow_response.epoch, 1u);  // served against its snapshot

  // With no live registrations the clamp lifts: both epoch-1 entries go.
  EXPECT_EQ(service.invalidate_stale(), 2u);
  EXPECT_EQ(service.stats().cache_entries, 0u);
}

TEST_F(PlanCacheServiceEdges, ReorderedConstraintListsHitTheSameEntry) {
  PlanService service(&catalog_, &est_, &board_, fast_config());

  PlanRequest first = request(3.0);
  first.allowed_types = {"m1.small", "c3.xlarge", "m1.small"};
  first.allowed_zones = {"us-east-1c", "us-east-1a"};
  const PlanResponse solved = service.serve(first);
  ASSERT_EQ(solved.outcome, PlanOutcome::kSolved);

  // Same constraint *sets*, different order and duplication: must
  // canonicalize onto the cached entry, not trigger a second solve.
  PlanRequest second = request(3.0);
  second.allowed_types = {"c3.xlarge", "m1.small"};
  second.allowed_zones = {"us-east-1a", "us-east-1c", "us-east-1a"};
  const PlanResponse hit = service.serve(second);
  ASSERT_EQ(hit.outcome, PlanOutcome::kHit);
  EXPECT_EQ(plan_fingerprint(*hit.plan), plan_fingerprint(*solved.plan));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solves, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
}

}  // namespace
}  // namespace sompi
