// Multi-level redundancy-encoded checkpointing (ISSUE 6): the differential /
// property battery.
//
//   * Differential oracle — the degenerate configuration (no cache level,
//     empty policy list) must be bit-identical to the pre-multilevel stack:
//     same storage keys, same S3-sim request counters, 0-ULP-identical
//     billing, and byte-identical optimizer plan fingerprints at one and at
//     eight worker threads.
//   * Redundancy properties — for every group size and every single-rank
//     loss (and every partner-recoverable pair loss) the decode returns the
//     exact original bytes; a torn or corrupted shard is never
//     decodable-but-wrong.
//   * Recovery ladder — single-rank cache loss rebuilds from peers without a
//     single billed S3-sim GET; whole-cache loss falls through to remote;
//     a killed flush leaves the remote level uncommitted; a stale cache
//     snapshot can never shadow a newer flushed one (the key-namespace
//     regression this PR fixes).
#include "checkpoint/multilevel.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "checkpoint/checkpointer.h"
#include "checkpoint/compress.h"
#include "checkpoint/redundancy.h"
#include "checkpoint/state_buffer.h"
#include "checkpoint/storage.h"
#include "cloud/billing.h"
#include "cloud/catalog.h"
#include "common/rng.h"
#include "core/ondemand.h"
#include "core/optimizer.h"
#include "faultinject/fault_plan.h"
#include "faultinject/injector.h"
#include "minimpi/runtime.h"
#include "profile/estimator.h"
#include "profile/paper_profiles.h"
#include "service/request.h"
#include "trace/market.h"

namespace sompi {
namespace {

std::vector<std::byte> blob_of(const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

/// Deterministic per-(seed, rank) payload with runs (compressible) and noise.
std::vector<std::byte> rank_blob(std::uint64_t seed, int rank, std::size_t len) {
  std::vector<std::byte> b(len);
  Rng rng(seed ^ (static_cast<std::uint64_t>(rank) * 0x9E3779B97F4A7C15ULL));
  std::size_t i = 0;
  while (i < len) {
    if (rng.bernoulli(0.5)) {  // a run
      const std::byte v{static_cast<unsigned char>(rng.uniform_index(256))};
      const std::size_t n = std::min(len - i, 1 + rng.uniform_index(40));
      for (std::size_t j = 0; j < n; ++j) b[i++] = v;
    } else {
      b[i++] = std::byte{static_cast<unsigned char>(rng.uniform_index(256))};
    }
  }
  return b;
}

// --- Differential oracle: degenerate config is bit-identical -----------------

TEST(MultiLevelDegenerate, DelegatesBitIdenticallyToFlatCheckpointer) {
  S3Sim flat_store;
  S3Sim ml_store;
  Checkpointer flat(&flat_store, "run");
  MultiLevelCheckpointer ml(&ml_store, "run");  // default config: no cache level
  ASSERT_TRUE(ml.degenerate());

  const int ranks = 3;
  std::vector<std::vector<std::byte>> flat_loads(ranks), ml_loads(ranks);
  const mpi::RunResult result = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
    for (int iter = 0; iter < 3; ++iter) {
      StateWriter w;
      w.write<std::int32_t>(iter);
      w.write<std::int32_t>(comm.rank());
      const auto bytes = w.take();
      const int vf = flat.save(comm, bytes);
      const int vm = ml.save(comm, bytes);
      EXPECT_EQ(vf, vm);
    }
    flat_loads[comm.rank()] = *flat.load_latest(comm);
    ml_loads[comm.rank()] = *ml.load_latest(comm);
  });
  ASSERT_TRUE(result.completed);

  for (int r = 0; r < ranks; ++r) EXPECT_EQ(flat_loads[r], ml_loads[r]);
  EXPECT_EQ(flat.latest_version(), ml.latest_version());
  EXPECT_EQ(flat.has_snapshot(), ml.has_snapshot());

  // Identical keys → identical S3-sim traffic → identical billing, 0 ULP.
  EXPECT_EQ(flat_store.list(""), ml_store.list(""));
  EXPECT_EQ(flat_store.put_count(), ml_store.put_count());
  EXPECT_EQ(flat_store.get_count(), ml_store.get_count());
  EXPECT_EQ(flat_store.bytes_uploaded(), ml_store.bytes_uploaded());
  EXPECT_EQ(flat_store.bytes_downloaded(), ml_store.bytes_downloaded());
  EXPECT_EQ(flat_store.cost_usd(24.0), ml_store.cost_usd(24.0));

  // The degenerate hierarchy reports no multi-level activity at all.
  EXPECT_EQ(ml.flush_stats().flushes_started, 0u);
  EXPECT_EQ(ml.recovery_stats().cache_loads, 0u);
  EXPECT_EQ(ml.compression_cost_usd(BillingModel::kProportional, 1.0), 0.0);
}

TEST(MultiLevelDegenerate, EmptyPolicyListPlansBitIdenticalAcrossThreads) {
  const Catalog catalog = paper_catalog();
  const ExecTimeEstimator estimator;
  Rng rng(20260806);
  const Market market =
      generate_market(catalog, random_market_profile(catalog, rng), 1.5, 0.25, 97);
  const AppProfile app = paper_profile("BT");
  const double deadline_h =
      OnDemandSelector(&catalog, &estimator).baseline(app).t_h * 1.4;

  OptimizerConfig base;
  base.max_candidates = 4;
  base.max_groups = 2;
  base.setup.log_levels = 3;
  base.setup.failure.samples = 400;
  base.ratio_bins = 32;

  std::vector<std::string> fingerprints;
  for (const unsigned threads : {1u, 8u}) {
    for (const bool explicit_s3 : {false, true}) {
      OptimizerConfig config = base;
      config.threads = threads;
      if (explicit_s3) config.ckpt_policies = {CkptPolicy::single_s3()};
      const SompiOptimizer optimizer(&catalog, &estimator, config);
      fingerprints.push_back(plan_fingerprint(optimizer.optimize(app, market, deadline_h)));
    }
  }
  // Empty policy list == explicit {s3}, at 1 thread and at 8 — one
  // byte-identical fingerprint for all four runs.
  for (std::size_t i = 1; i < fingerprints.size(); ++i)
    EXPECT_EQ(fingerprints[0], fingerprints[i]) << "variant " << i;
  EXPECT_EQ(fingerprints[0].find("ckpt="), std::string::npos)
      << "degenerate plans must not mention a checkpoint policy";
}

TEST(MultiLevelOptimizer, PolicySupersetNeverCostsMoreAndRecordsPolicy) {
  const Catalog catalog = paper_catalog();
  const ExecTimeEstimator estimator;
  Rng rng(7);
  const Market market =
      generate_market(catalog, random_market_profile(catalog, rng), 1.5, 0.25, 7);
  const AppProfile app = paper_profile("SP");
  const double deadline_h =
      OnDemandSelector(&catalog, &estimator).baseline(app).t_h * 1.5;

  OptimizerConfig config;
  config.max_candidates = 3;
  config.max_groups = 2;
  config.setup.log_levels = 3;
  config.setup.failure.samples = 400;
  config.ratio_bins = 32;
  const SompiOptimizer single(&catalog, &estimator, config);
  config.ckpt_policies = {CkptPolicy::single_s3(), CkptPolicy::cache_s3(),
                          CkptPolicy::cache_xor_s3()};
  const SompiOptimizer multi(&catalog, &estimator, config);

  const Plan ps = single.optimize(app, market, deadline_h);
  const Plan pm = multi.optimize(app, market, deadline_h);
  // Exact search over a superset of the choice set: never worse.
  EXPECT_LE(pm.expected.cost_usd, ps.expected.cost_usd);
  for (const GroupPlan& g : pm.groups) {
    EXPECT_TRUE(g.ckpt_policy == "s3" || g.ckpt_policy == "cache+s3" ||
                g.ckpt_policy == "cache+xor+s3")
        << g.ckpt_policy;
  }
  // Both engines agree on the enlarged choice set.
  config.engine = SearchEngine::kReference;
  const SompiOptimizer reference(&catalog, &estimator, config);
  EXPECT_EQ(plan_fingerprint(pm), plan_fingerprint(reference.optimize(app, market, deadline_h)));
}

// --- Redundancy properties ---------------------------------------------------

std::vector<std::vector<std::byte>> group_blobs(std::uint64_t seed, std::size_t k) {
  // Deliberately unequal lengths (including an empty blob at k >= 4).
  std::vector<std::vector<std::byte>> blobs(k);
  Rng rng(seed);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t len = (i == 3) ? 0 : 1 + rng.uniform_index(200);
    blobs[i] = rank_blob(seed, static_cast<int>(i), len);
  }
  return blobs;
}

TEST(RedundancyProperty, EverySingleRankLossRoundTripsExactBytes) {
  for (const RedundancyScheme scheme : {RedundancyScheme::kPartner, RedundancyScheme::kXor}) {
    for (std::size_t k = 2; k <= 6; ++k) {
      const auto blobs = group_blobs(0xB10B5EED + k, k);
      const auto shards = redundancy_encode(scheme, blobs);
      ASSERT_EQ(shards.size(), k);
      for (std::size_t lost = 0; lost < k; ++lost) {
        std::vector<std::optional<std::vector<std::byte>>> b(blobs.begin(), blobs.end());
        std::vector<std::optional<std::vector<std::byte>>> s(shards.begin(), shards.end());
        b[lost] = std::nullopt;  // the node loses its blob AND its own shard
        s[lost] = std::nullopt;
        const auto rebuilt = redundancy_decode(scheme, b, s, lost);
        ASSERT_TRUE(rebuilt.has_value())
            << redundancy_scheme_label(scheme) << " k=" << k << " lost=" << lost;
        EXPECT_EQ(*rebuilt, blobs[lost])
            << redundancy_scheme_label(scheme) << " k=" << k << " lost=" << lost;
      }
    }
  }
}

TEST(RedundancyProperty, PartnerRecoversNonAdjacentPairLossExactly) {
  for (std::size_t k = 4; k <= 6; ++k) {
    const auto blobs = group_blobs(0xAB12 + k, k);
    const auto shards = redundancy_encode(RedundancyScheme::kPartner, blobs);
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t c = a + 2; c < k; ++c) {
        if (a == 0 && c == k - 1) continue;  // wrap-adjacent
        std::vector<std::optional<std::vector<std::byte>>> b(blobs.begin(), blobs.end());
        std::vector<std::optional<std::vector<std::byte>>> s(shards.begin(), shards.end());
        b[a] = b[c] = std::nullopt;
        s[a] = s[c] = std::nullopt;
        for (const std::size_t lost : {a, c}) {
          const auto rebuilt = redundancy_decode(RedundancyScheme::kPartner, b, s, lost);
          ASSERT_TRUE(rebuilt.has_value()) << "k=" << k << " pair (" << a << "," << c << ")";
          EXPECT_EQ(*rebuilt, blobs[lost]);
        }
      }
    }
  }
}

TEST(RedundancyProperty, AdjacentPairLossIsDetectedNotMisdecoded) {
  const std::size_t k = 4;
  const auto blobs = group_blobs(0xADA4, k);
  for (const RedundancyScheme scheme : {RedundancyScheme::kPartner, RedundancyScheme::kXor}) {
    const auto shards = redundancy_encode(scheme, blobs);
    std::vector<std::optional<std::vector<std::byte>>> b(blobs.begin(), blobs.end());
    std::vector<std::optional<std::vector<std::byte>>> s(shards.begin(), shards.end());
    // Adjacent pair: rank 1's partner copy lives in shard 2, which died too.
    b[1] = b[2] = std::nullopt;
    s[1] = s[2] = std::nullopt;
    const auto r1 = redundancy_decode(scheme, b, s, 1);
    const auto r2 = redundancy_decode(scheme, b, s, 2);
    // A two-rank loss is beyond both schemes' guarantee for at least one of
    // the pair: whatever happens, the decoder must never return wrong bytes.
    if (r1.has_value()) EXPECT_EQ(*r1, blobs[1]);
    if (r2.has_value()) EXPECT_EQ(*r2, blobs[2]);
    EXPECT_FALSE(r1.has_value() && r2.has_value())
        << redundancy_scheme_label(scheme) << ": adjacent pair fully decoded";
  }
}

TEST(RedundancyProperty, TornOrCorruptShardsNeverDecodableButWrong) {
  // FaultyStore tears an upload by truncating it; byte flips model bit rot.
  // Under either corruption the decode must fail or return exact bytes.
  for (const RedundancyScheme scheme : {RedundancyScheme::kPartner, RedundancyScheme::kXor}) {
    for (std::size_t k = 2; k <= 5; ++k) {
      const auto blobs = group_blobs(0x70A9 + k, k);
      const auto shards = redundancy_encode(scheme, blobs);
      const std::size_t lost = k - 1;
      std::vector<std::optional<std::vector<std::byte>>> b(blobs.begin(), blobs.end());
      b[lost] = std::nullopt;
      // Torn: every truncation length of every surviving shard.
      for (std::size_t victim = 0; victim < k; ++victim) {
        if (victim == lost) continue;
        for (std::size_t cut = 0; cut < shards[victim].size();
             cut += 1 + shards[victim].size() / 17) {
          std::vector<std::optional<std::vector<std::byte>>> s(shards.begin(), shards.end());
          s[lost] = std::nullopt;
          s[victim] = std::vector<std::byte>(shards[victim].begin(),
                                             shards[victim].begin() + cut);
          const auto rebuilt = redundancy_decode(scheme, b, s, lost);
          if (rebuilt.has_value()) EXPECT_EQ(*rebuilt, blobs[lost]);
        }
        // Flipped byte somewhere in the payload half of the shard.
        std::vector<std::optional<std::vector<std::byte>>> s(shards.begin(), shards.end());
        s[lost] = std::nullopt;
        auto corrupt = shards[victim];
        if (!corrupt.empty()) {
          corrupt[corrupt.size() / 2] ^= std::byte{0x5A};
          s[victim] = corrupt;
          const auto rebuilt = redundancy_decode(scheme, b, s, lost);
          if (rebuilt.has_value()) EXPECT_EQ(*rebuilt, blobs[lost]);
        }
      }
    }
  }
}

// --- Compression -------------------------------------------------------------

TEST(Compression, RoundTripsAndRejectsTruncation) {
  const std::vector<std::vector<std::byte>> cases = {
      {},
      blob_of("a"),
      blob_of("aaaaaaaaaaaaaaaaaaaaaaaa"),
      blob_of("abcabcabc no runs here 123"),
      rank_blob(0xC0DEC, 0, 4096),
      std::vector<std::byte>(1000, std::byte{0}),
  };
  for (const auto& original : cases) {
    const auto packed = compress_bytes(CompressionMode::kRle, original);
    const auto unpacked = decompress_bytes(CompressionMode::kRle, packed);
    ASSERT_TRUE(unpacked.has_value());
    EXPECT_EQ(*unpacked, original);
    for (std::size_t cut = 0; cut < packed.size(); cut += 1 + packed.size() / 13) {
      const auto torn = decompress_bytes(
          CompressionMode::kRle,
          std::span<const std::byte>(packed.data(), cut));
      if (torn.has_value()) EXPECT_EQ(*torn, original);  // only the full frame
    }
    // kNone is byte-transparent: no frame, no transformation.
    EXPECT_EQ(compress_bytes(CompressionMode::kNone, original), original);
    EXPECT_EQ(*decompress_bytes(CompressionMode::kNone, original), original);
  }
  const auto zeros = std::vector<std::byte>(1000, std::byte{0});
  EXPECT_LT(compress_bytes(CompressionMode::kRle, zeros).size(), 50u);
}

TEST(Compression, CpuSecondsAreAPureFunctionOfSizeAndBilled) {
  CompressionSpec spec;
  spec.mode = CompressionMode::kRle;
  spec.cpu_seconds_per_gb = 2.0;
  constexpr std::size_t kGiB = 1024ull * 1024ull * 1024ull;
  EXPECT_EQ(compression_cpu_seconds(spec, 0), 0.0);
  EXPECT_EQ(compression_cpu_seconds(spec, kGiB), 2.0);
  EXPECT_EQ(compression_cpu_seconds(spec, kGiB / 2), 1.0);
  spec.mode = CompressionMode::kNone;
  EXPECT_EQ(compression_cpu_seconds(spec, kGiB), 0.0);
}

// --- The recovery ladder -----------------------------------------------------

struct Hierarchy {
  MemoryStore cache;
  S3Sim remote;
};

std::vector<std::byte> state_at(int iter, int rank) {
  StateWriter w;
  w.write<std::int32_t>(iter);
  w.write<std::int32_t>(rank * 17 + iter);
  auto payload = rank_blob(0x5A5A + iter, rank, 300);
  w.write_vec(std::vector<std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(payload.data()),
      reinterpret_cast<const std::uint8_t*>(payload.data()) + payload.size()));
  return w.take();
}

/// Runs `iters` checkpointed iterations through `ml` on a fresh world.
void run_saves(MultiLevelCheckpointer& ml, int ranks, int iters) {
  const mpi::RunResult result = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
    for (int iter = 1; iter <= iters; ++iter)
      (void)ml.save(comm, state_at(iter, comm.rank()));
  });
  ASSERT_TRUE(result.completed);
}

/// Loads on a fresh world and checks every rank got `want_iter`'s bytes.
void expect_restore(MultiLevelCheckpointer& ml, int ranks, int want_iter) {
  const mpi::RunResult result = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
    const auto blob = ml.load_latest(comm);
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(*blob, state_at(want_iter, comm.rank())) << "rank " << comm.rank();
  });
  ASSERT_TRUE(result.completed);
}

TEST(MultiLevelCkpt, SingleRankCacheLossRebuildsFromPeersWithoutRemoteGets) {
  for (const RedundancyScheme scheme : {RedundancyScheme::kPartner, RedundancyScheme::kXor}) {
    Hierarchy h;
    MultiLevelConfig config;
    config.cache = &h.cache;
    config.redundancy = scheme;
    MultiLevelCheckpointer ml(&h.remote, "run", config);
    const int ranks = 4;
    run_saves(ml, ranks, 2);

    // The node holding rank 2's cache dies: blob and shard both gone.
    h.cache.remove("run/l0/v1/rank2");
    h.cache.remove("run/l1/v1/shard2");

    const std::uint64_t gets_before = h.remote.get_count();
    expect_restore(ml, ranks, 2);
    EXPECT_EQ(h.remote.get_count(), gets_before)
        << redundancy_scheme_label(scheme) << ": peer rebuild touched billed S3-sim GETs";
    const RecoveryStats stats = ml.recovery_stats();
    EXPECT_EQ(stats.peer_rebuilds, 1u);
    EXPECT_EQ(stats.cache_loads, 3u);
    EXPECT_EQ(stats.remote_loads, 0u);
  }
}

TEST(MultiLevelCkpt, WholeCacheLossFallsThroughToRemote) {
  Hierarchy h;
  MultiLevelConfig config;
  config.cache = &h.cache;
  config.redundancy = RedundancyScheme::kXor;
  config.compression.mode = CompressionMode::kRle;  // exercise the flush codec
  MultiLevelCheckpointer ml(&h.remote, "run", config);
  const int ranks = 3;
  run_saves(ml, ranks, 3);

  for (const std::string& key : h.cache.list("")) h.cache.remove(key);
  const std::uint64_t gets_before = h.remote.get_count();
  expect_restore(ml, ranks, 3);
  EXPECT_EQ(h.remote.get_count(), gets_before + ranks);  // one GET per rank
  EXPECT_EQ(ml.recovery_stats().remote_loads, static_cast<std::uint64_t>(ranks));
}

TEST(MultiLevelCkpt, KilledFlushLeavesRemoteUncommittedAndCacheServes) {
  fi::FaultPlan plan = fi::FaultPlan::quiet(1);
  plan.p_flush_kill = 1.0;  // every flush dies mid-upload
  fi::FaultInjector injector(plan);

  Hierarchy h;
  MultiLevelConfig config;
  config.cache = &h.cache;
  config.redundancy = RedundancyScheme::kPartner;
  MultiLevelCheckpointer ml(&h.remote, "run", config, &injector);
  const int ranks = 3;
  run_saves(ml, ranks, 2);

  const FlushStats fs = ml.flush_stats();
  EXPECT_EQ(fs.flushes_killed, 2u);
  EXPECT_EQ(fs.flushes_completed, 0u);
  EXPECT_TRUE(h.remote.list("run/v1/COMMIT").empty())
      << "a killed flush must never commit remotely";
  // The cache level still serves the newest snapshot, no remote GETs.
  const std::uint64_t gets_before = h.remote.get_count();
  expect_restore(ml, ranks, 2);
  EXPECT_EQ(h.remote.get_count(), gets_before);
}

// The latent bug this PR fixes: per-level key namespaces. With every level
// sharing one flat namespace, a stale cache-only snapshot whose version was
// scanned first could shadow a NEWER version that had already been flushed
// to remote but wiped from the cache. The interleaved flush/kill schedule
// below constructs exactly that store state; the versioned, per-level
// namespaces plus version-first candidate order must return the newer one.
TEST(MultiLevelCkpt, StaleCacheSnapshotCannotShadowNewerFlushedOne) {
  fi::FaultPlan plan = fi::FaultPlan::quiet(2);
  fi::FaultInjector killer([&] {
    fi::FaultPlan p = plan;
    p.p_flush_kill = 1.0;
    return p;
  }());

  Hierarchy h;
  MultiLevelConfig config;
  config.cache = &h.cache;
  config.redundancy = RedundancyScheme::kPartner;
  const int ranks = 3;

  // v0: flush killed → committed in cache only (the stale survivor).
  {
    MultiLevelCheckpointer ml(&h.remote, "run", config, &killer);
    const mpi::RunResult r = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
      (void)ml.save(comm, state_at(1, comm.rank()));
    });
    ASSERT_TRUE(r.completed);
    ASSERT_EQ(ml.flush_stats().flushes_killed, 1u);
  }
  // v1: a genuinely newer iteration whose flush completes → committed in
  // cache AND remote.
  MultiLevelCheckpointer ml(&h.remote, "run", config);
  const mpi::RunResult r2 = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
    (void)ml.save(comm, state_at(7, comm.rank()));
  });
  ASSERT_TRUE(r2.completed);

  // The node group is replaced: the newest version's cache entries vanish,
  // the stale v0 cache snapshot survives.
  const int newest = ml.latest_version();
  for (const std::string& key :
       h.cache.list("run/l0/v" + std::to_string(newest) + "/"))
    h.cache.remove(key);
  for (const std::string& key :
       h.cache.list("run/l1/v" + std::to_string(newest) + "/"))
    h.cache.remove(key);

  // Restore MUST resolve the newer flushed snapshot, not the stale cache one.
  expect_restore(ml, ranks, 7);
  EXPECT_EQ(ml.recovery_stats().remote_loads, static_cast<std::uint64_t>(ranks));
}

TEST(MultiLevelCkpt, AsyncFlushDrainsAndIsReadableByFlatCheckpointer) {
  Hierarchy h;
  MultiLevelConfig config;
  config.cache = &h.cache;
  config.redundancy = RedundancyScheme::kXor;
  config.async_flush = true;
  MultiLevelCheckpointer ml(&h.remote, "run", config);
  const int ranks = 4;
  run_saves(ml, ranks, 3);
  ml.wait_flush();

  const FlushStats fs = ml.flush_stats();
  EXPECT_EQ(fs.flushes_started, 3u);
  EXPECT_EQ(fs.flushes_completed, 3u);
  EXPECT_EQ(fs.flushes_killed, 0u);

  // Flushed snapshots use the flat Checkpointer's exact key scheme, so a
  // plain (pre-multilevel) restore path can read them.
  Checkpointer flat(&h.remote, "run");
  EXPECT_EQ(flat.latest_version(), ml.latest_version());
  const mpi::RunResult result = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
    const auto blob = flat.load_latest(comm);
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(*blob, state_at(3, comm.rank()));
  });
  ASSERT_TRUE(result.completed);
}

TEST(MultiLevelCkpt, CompressionCpuIsBilledThroughBillingModel) {
  Hierarchy h;
  MultiLevelConfig config;
  config.cache = &h.cache;
  config.compression.mode = CompressionMode::kRle;
  config.compression.cpu_seconds_per_gb = 3600.0;  // 1 instance-hour per GB
  MultiLevelCheckpointer ml(&h.remote, "run", config);
  const int ranks = 2;
  run_saves(ml, ranks, 1);

  const FlushStats fs = ml.flush_stats();
  ASSERT_GT(fs.bytes_before_compression, 0u);
  const double hours = fs.compression_cpu_seconds / 3600.0;
  EXPECT_GT(hours, 0.0);
  EXPECT_EQ(ml.compression_cost_usd(BillingModel::kProportional, 2.0, ranks),
            billed_cost(BillingModel::kProportional, 2.0, hours, ranks));
  // RLE on the run-heavy payload actually shrinks the flushed bytes.
  EXPECT_LT(fs.bytes_flushed, fs.bytes_before_compression);
}

}  // namespace
}  // namespace sompi
