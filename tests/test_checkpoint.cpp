#include "checkpoint/checkpointer.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include "checkpoint/state_buffer.h"
#include "minimpi/runtime.h"

namespace sompi {
namespace {

std::vector<std::byte> blob_of(const std::string& s) {
  std::vector<std::byte> b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::string string_of(const std::vector<std::byte>& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

// --- Storage backends --------------------------------------------------------

template <typename T>
std::unique_ptr<StorageBackend> make_store();

template <>
std::unique_ptr<StorageBackend> make_store<MemoryStore>() {
  return std::make_unique<MemoryStore>();
}
template <>
std::unique_ptr<StorageBackend> make_store<S3Sim>() {
  return std::make_unique<S3Sim>();
}
template <>
std::unique_ptr<StorageBackend> make_store<DiskStore>() {
  return std::make_unique<DiskStore>(::testing::TempDir() + "/sompi_store_" +
                                     std::to_string(::getpid()) + "_" +
                                     ::testing::UnitTest::GetInstance()
                                         ->current_test_info()
                                         ->name());
}

template <typename T>
class StorageTest : public ::testing::Test {};

using StorageTypes = ::testing::Types<MemoryStore, S3Sim, DiskStore>;
TYPED_TEST_SUITE(StorageTest, StorageTypes);

TYPED_TEST(StorageTest, PutGetOverwriteRemove) {
  auto store = make_store<TypeParam>();
  EXPECT_FALSE(store->get("a").has_value());
  store->put("a", blob_of("hello"));
  EXPECT_EQ(string_of(*store->get("a")), "hello");
  store->put("a", blob_of("world!"));
  EXPECT_EQ(string_of(*store->get("a")), "world!");
  EXPECT_TRUE(store->exists("a"));
  store->remove("a");
  EXPECT_FALSE(store->exists("a"));
  store->remove("a");  // idempotent
}

TYPED_TEST(StorageTest, ListByPrefix) {
  auto store = make_store<TypeParam>();
  store->put("run/v0/rank0", blob_of("x"));
  store->put("run/v0/rank1", blob_of("y"));
  store->put("run/v1/rank0", blob_of("z"));
  store->put("other/key", blob_of("w"));
  const auto keys = store->list("run/v0/");
  EXPECT_EQ(keys, (std::vector<std::string>{"run/v0/rank0", "run/v0/rank1"}));
  EXPECT_EQ(store->list("run/").size(), 3u);
  EXPECT_TRUE(store->list("absent/").empty());
}

TYPED_TEST(StorageTest, BytesStored) {
  auto store = make_store<TypeParam>();
  store->put("k1", blob_of("12345"));
  store->put("k2", blob_of("678"));
  EXPECT_EQ(store->bytes_stored(), 8u);
}

TYPED_TEST(StorageTest, ExistsMatchesGetWithoutReadingData) {
  auto store = make_store<TypeParam>();
  EXPECT_FALSE(store->exists("probe"));
  store->put("probe", blob_of("payload"));
  EXPECT_TRUE(store->exists("probe"));
  store->remove("probe");
  EXPECT_FALSE(store->exists("probe"));
}

TEST(S3SimTest, ExistsIsBilledLikeAGetButTransfersNoBytes) {
  S3Sim s3;
  s3.put("a", blob_of(std::string(1000, 'x')));
  EXPECT_TRUE(s3.exists("a"));
  EXPECT_FALSE(s3.exists("missing"));
  EXPECT_EQ(s3.get_count(), 2u);        // HEAD-style probes are requests...
  EXPECT_EQ(s3.bytes_downloaded(), 0u); // ...but not transfers
}

TEST(S3SimTest, CostAccounting) {
  S3Sim s3;
  s3.put("a", blob_of(std::string(1000, 'x')));
  (void)s3.get("a");
  (void)s3.get("missing");
  EXPECT_EQ(s3.put_count(), 1u);
  EXPECT_EQ(s3.get_count(), 2u);
  EXPECT_EQ(s3.bytes_uploaded(), 1000u);
  EXPECT_EQ(s3.bytes_downloaded(), 1000u);
  // Storage term: 1e-6 GB × $0.03/GB-month × (720h/720h) plus request fees.
  const double expected = 1e-6 * 0.03 + 1.0 / 1000 * 0.005 + 2.0 / 10000 * 0.004;
  EXPECT_NEAR(s3.cost_usd(30.0 * 24.0), expected, 1e-12);
  // The paper's claim: checkpoint storage is ignorable next to compute.
  EXPECT_LT(s3.cost_usd(24.0), 0.01);
}

// --- StateBuffer --------------------------------------------------------------

TEST(StateBuffer, RoundTripMixedFields) {
  StateWriter w;
  w.write<int>(42);
  w.write<double>(3.25);
  w.write_vec(std::vector<float>{1.f, 2.f, 3.f});
  w.write_vec(std::vector<std::uint8_t>{});
  const auto blob = w.take();

  StateReader r(blob);
  EXPECT_EQ(r.read<int>(), 42);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read_vec<float>(), (std::vector<float>{1.f, 2.f, 3.f}));
  EXPECT_TRUE(r.read_vec<std::uint8_t>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(StateBuffer, UnderrunThrows) {
  StateWriter w;
  w.write<int>(1);
  const auto blob = w.take();
  StateReader r(blob);
  EXPECT_THROW(r.read<double>(), PreconditionError);
}

// --- Coordinated checkpointing -------------------------------------------------

TEST(Checkpointer, SaveRestoreRoundTrip) {
  MemoryStore store;
  mpi::Runtime::run(4, [&store](mpi::Comm& comm) {
    Checkpointer ck(&store, "job1");
    EXPECT_FALSE(ck.load_latest(comm).has_value());
    StateWriter w;
    w.write<int>(comm.rank() * 11);
    const int v = ck.save(comm, w.take());
    EXPECT_EQ(v, 0);
    const auto blob = ck.load_latest(comm);
    ASSERT_TRUE(blob.has_value());
    StateReader r(*blob);
    EXPECT_EQ(r.read<int>(), comm.rank() * 11);
  });
}

TEST(Checkpointer, HasSnapshotProbesWithoutDownloading) {
  S3Sim store;
  mpi::Runtime::run(2, [&store](mpi::Comm& comm) {
    Checkpointer ck(&store, "probe");
    EXPECT_FALSE(ck.has_snapshot(comm));  // cold start: no load attempted
    StateWriter w;
    w.write<int>(comm.rank());
    ck.save(comm, w.take());
    EXPECT_TRUE(ck.has_snapshot(comm));
    if (comm.rank() == 0) EXPECT_TRUE(ck.has_snapshot());
  });
  // Both probes (cold and warm) together moved zero payload bytes.
  EXPECT_EQ(store.bytes_downloaded(), 0u);
}

TEST(Checkpointer, UncommittedSnapshotHasNoSnapshot) {
  MemoryStore store;
  store.put("torn/v0/rank0", blob_of("state"));  // blob without a COMMIT marker
  const Checkpointer ck(&store, "torn");
  EXPECT_FALSE(ck.has_snapshot());
}

TEST(Checkpointer, VersionsIncreaseAndLatestWins) {
  MemoryStore store;
  mpi::Runtime::run(2, [&store](mpi::Comm& comm) {
    Checkpointer ck(&store, "job2");
    for (int i = 0; i < 3; ++i) {
      StateWriter w;
      w.write<int>(i * 100 + comm.rank());
      EXPECT_EQ(ck.save(comm, w.take()), i);
    }
    const auto blob = ck.load_latest(comm);
    StateReader r(*blob);
    EXPECT_EQ(r.read<int>(), 200 + comm.rank());
  });
  EXPECT_EQ(Checkpointer(&store, "job2").latest_version(), 2);
}

TEST(Checkpointer, SurvivesProcessRestart) {
  // A fresh Checkpointer over the same store discovers prior versions —
  // exactly what happens when a killed circle group restarts.
  MemoryStore store;
  mpi::Runtime::run(2, [&store](mpi::Comm& comm) {
    Checkpointer ck(&store, "job3");
    StateWriter w;
    w.write<double>(1.5 + comm.rank());
    ck.save(comm, w.take());
  });
  mpi::Runtime::run(2, [&store](mpi::Comm& comm) {
    Checkpointer ck(&store, "job3");
    const auto blob = ck.load_latest(comm);
    StateReader r(*blob);
    EXPECT_DOUBLE_EQ(r.read<double>(), 1.5 + comm.rank());
  });
}

TEST(Checkpointer, UncommittedSnapshotIsInvisible) {
  // Simulate a kill between the blob uploads and the commit marker: the
  // blobs exist but no COMMIT — restore must ignore them.
  MemoryStore store;
  store.put("job4/v0/rank0", blob_of("torn"));
  store.put("job4/v0/rank1", blob_of("torn"));
  mpi::Runtime::run(2, [&store](mpi::Comm& comm) {
    Checkpointer ck(&store, "job4");
    EXPECT_FALSE(ck.load_latest(comm).has_value());
    // And the next save must not collide with the torn version... it may
    // reuse v0 (never committed), which is fine — commit makes it whole.
    StateWriter w;
    w.write<int>(7);
    ck.save(comm, w.take());
    ASSERT_TRUE(ck.load_latest(comm).has_value());
  });
}

TEST(Checkpointer, CommittedVersionMissingBlobThrows) {
  MemoryStore store;
  const std::byte mark{1};
  store.put("job5/v0/COMMIT", std::span<const std::byte>(&mark, 1));
  mpi::Runtime::run(1, [&store](mpi::Comm& comm) {
    Checkpointer ck(&store, "job5");
    EXPECT_THROW((void)ck.load_latest(comm), IoError);
  });
}

TEST(Checkpointer, GarbageCollectKeepsOnlyLatest) {
  MemoryStore store;
  mpi::Runtime::run(2, [&store](mpi::Comm& comm) {
    Checkpointer ck(&store, "job6");
    for (int i = 0; i < 3; ++i) {
      StateWriter w;
      w.write<int>(i);
      ck.save(comm, w.take());
    }
    comm.barrier();
    if (comm.rank() == 0) ck.garbage_collect();
    comm.barrier();
    const auto blob = ck.load_latest(comm);
    StateReader r(*blob);
    EXPECT_EQ(r.read<int>(), 2);
  });
  EXPECT_TRUE(store.list("job6/v0/").empty());
  EXPECT_TRUE(store.list("job6/v1/").empty());
  EXPECT_EQ(store.list("job6/v2/").size(), 3u);  // 2 ranks + COMMIT
}

TEST(Checkpointer, RejectsBadRunIds) {
  MemoryStore store;
  EXPECT_THROW(Checkpointer(&store, ""), PreconditionError);
  EXPECT_THROW(Checkpointer(&store, "a/b"), PreconditionError);
}

TEST(Checkpointer, ShareOneStoreAcrossRuns) {
  MemoryStore store;
  mpi::Runtime::run(1, [&store](mpi::Comm& comm) {
    Checkpointer a(&store, "jobA"), b(&store, "jobB");
    StateWriter wa, wb;
    wa.write<int>(1);
    wb.write<int>(2);
    a.save(comm, wa.take());
    b.save(comm, wb.take());
    const auto blob_a = a.load_latest(comm);
    const auto blob_b = b.load_latest(comm);
    StateReader ra(*blob_a), rb(*blob_b);
    EXPECT_EQ(ra.read<int>(), 1);
    EXPECT_EQ(rb.read<int>(), 2);
  });
}

}  // namespace
}  // namespace sompi
