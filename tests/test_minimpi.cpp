#include "minimpi/runtime.h"

#include <gtest/gtest.h>

#include <atomic>

namespace sompi::mpi {
namespace {

TEST(MiniMpi, PointToPointRoundTrip) {
  const RunResult r = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 7, 42);
      EXPECT_EQ(comm.recv<int>(1, 8), 43);
    } else {
      EXPECT_EQ(comm.recv<int>(0, 7), 42);
      comm.send<int>(0, 8, 43);
    }
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpi, VectorMessages) {
  const RunResult r = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_vec<double>(1, 1, std::vector<double>{1.5, 2.5, 3.5});
    } else {
      const auto v = comm.recv_vec<double>(0, 1);
      ASSERT_EQ(v.size(), 3u);
      EXPECT_DOUBLE_EQ(v[2], 3.5);
    }
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpi, WildcardsMatchAnything) {
  const RunResult r = Runtime::run(3, [](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send<int>(0, comm.rank() * 10, comm.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        const Message m = comm.recv_message(kAnySource, kAnyTag);
        EXPECT_EQ(m.tag, m.source * 10);
        sum += m.source;
      }
      EXPECT_EQ(sum, 3);
    }
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpi, NonOvertakingSameSourceSameTag) {
  const RunResult r = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send<int>(1, 5, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(comm.recv<int>(0, 5), i);
    }
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpi, TagSelectionOutOfOrder) {
  const RunResult r = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 1, 100);
      comm.send<int>(1, 2, 200);
    } else {
      // Receive tag 2 first even though tag 1 arrived earlier.
      EXPECT_EQ(comm.recv<int>(0, 2), 200);
      EXPECT_EQ(comm.recv<int>(0, 1), 100);
    }
  });
  EXPECT_TRUE(r.completed);
}

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, Barrier) {
  const int n = GetParam();
  std::atomic<int> arrived{0};
  const RunResult r = Runtime::run(n, [&](Comm& comm) {
    arrived.fetch_add(1);
    comm.barrier();
    // Everyone must have arrived before anyone passes.
    EXPECT_EQ(arrived.load(), n);
  });
  EXPECT_TRUE(r.completed);
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; ++root) {
    const RunResult r = Runtime::run(n, [root](Comm& comm) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root, 17, 29};
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[0], root);
      EXPECT_EQ(data[2], 29);
    });
    EXPECT_TRUE(r.completed) << "root " << root;
  }
}

TEST_P(CollectiveTest, ReduceAndAllreduce) {
  const int n = GetParam();
  const RunResult r = Runtime::run(n, [n](Comm& comm) {
    const int sum = comm.reduce(comm.rank() + 1, ReduceOp::kSum, 0);
    if (comm.rank() == 0) EXPECT_EQ(sum, n * (n + 1) / 2);
    EXPECT_EQ(comm.allreduce(comm.rank(), ReduceOp::kMax), n - 1);
    EXPECT_EQ(comm.allreduce(comm.rank(), ReduceOp::kMin), 0);
    EXPECT_DOUBLE_EQ(comm.allreduce(0.5, ReduceOp::kSum), 0.5 * n);
  });
  EXPECT_TRUE(r.completed);
}

TEST_P(CollectiveTest, GatherAndAllgather) {
  const int n = GetParam();
  const RunResult r = Runtime::run(n, [n](Comm& comm) {
    const auto at_root = comm.gather(comm.rank() * 3, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(static_cast<int>(at_root.size()), n);
      for (int i = 0; i < n; ++i) EXPECT_EQ(at_root[static_cast<std::size_t>(i)], i * 3);
    } else {
      EXPECT_TRUE(at_root.empty());
    }
    const auto everywhere = comm.allgather(comm.rank() + 100);
    ASSERT_EQ(static_cast<int>(everywhere.size()), n);
    for (int i = 0; i < n; ++i) EXPECT_EQ(everywhere[static_cast<std::size_t>(i)], i + 100);
  });
  EXPECT_TRUE(r.completed);
}

TEST_P(CollectiveTest, AlltoallPersonalized) {
  const int n = GetParam();
  const RunResult r = Runtime::run(n, [n](Comm& comm) {
    // Rank r sends {r, d} to rank d.
    std::vector<std::vector<int>> send(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) send[static_cast<std::size_t>(d)] = {comm.rank(), d};
    const auto recv = comm.alltoall(send);
    ASSERT_EQ(static_cast<int>(recv.size()), n);
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(s)].size(), 2u);
      EXPECT_EQ(recv[static_cast<std::size_t>(s)][0], s);
      EXPECT_EQ(recv[static_cast<std::size_t>(s)][1], comm.rank());
    }
  });
  EXPECT_TRUE(r.completed);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveTest, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(MiniMpi, StatsCountTraffic) {
  const RunResult r = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) comm.send_vec<double>(1, 1, std::vector<double>(10, 1.0));
    if (comm.rank() == 1) (void)comm.recv_vec<double>(0, 1);
  });
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.stats[0].messages_sent, 1u);
  EXPECT_EQ(r.stats[0].bytes_sent, 80u);
  EXPECT_EQ(r.stats[1].bytes_received, 80u);
  EXPECT_EQ(r.total_stats().bytes_sent, 80u);
}

TEST(MiniMpi, AsyncKillUnblocksEveryRank) {
  Runtime rt(4);
  rt.launch([](Comm& comm) {
    if (comm.rank() == 0) {
      // Blocks forever: nobody ever sends tag 99.
      (void)comm.recv<int>(kAnySource, 99);
    } else {
      comm.barrier();  // blocks: rank 0 never reaches the barrier
    }
  });
  rt.kill();
  const RunResult r = rt.join();
  EXPECT_TRUE(r.killed);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.errors.empty());
}

TEST(MiniMpi, TickArmedKillFiresDeterministically) {
  // 4 ranks × 25 iterations = 100 ticks; arm at 40 → killed mid-run.
  const RunResult r = Runtime::run_with_kill(
      4,
      [](Comm& comm) {
        for (int i = 0; i < 25; ++i) {
          comm.tick();
          comm.barrier();
        }
      },
      40);
  EXPECT_TRUE(r.killed);
}

TEST(MiniMpi, TickBudgetLargerThanRunCompletes) {
  const RunResult r = Runtime::run_with_kill(
      2,
      [](Comm& comm) {
        for (int i = 0; i < 5; ++i) comm.tick();
      },
      1000);
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpi, RankErrorFailsFastWithoutDeadlock) {
  const RunResult r = Runtime::run(3, [](Comm& comm) {
    if (comm.rank() == 2) throw std::runtime_error("boom");
    comm.barrier();  // would deadlock forever without fail-fast
  });
  EXPECT_FALSE(r.completed);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("rank 2: boom"), std::string::npos);
}

TEST(MiniMpi, DestructorReapsRunningWorld) {
  // A Runtime destroyed while ranks are blocked must not hang or leak.
  {
    Runtime rt(2);
    rt.launch([](Comm& comm) { (void)comm.recv<int>(kAnySource, 1); });
  }
  SUCCEED();
}

TEST(MiniMpi, SendValidatesArguments) {
  const RunResult r = Runtime::run(1, [](Comm& comm) {
    EXPECT_THROW(comm.send<int>(5, 0, 1), PreconditionError);
    EXPECT_THROW(comm.send<int>(0, -3, 1), PreconditionError);
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpi, ProbeSeesQueuedMessage) {
  const RunResult r = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 4, 9);
      comm.barrier();
    } else {
      comm.barrier();
      EXPECT_TRUE(comm.probe(0, 4));
      EXPECT_FALSE(comm.probe(0, 5));
      (void)comm.recv<int>(0, 4);
      EXPECT_FALSE(comm.probe(0, 4));
    }
  });
  EXPECT_TRUE(r.completed);
}

}  // namespace
}  // namespace sompi::mpi
