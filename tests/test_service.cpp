// Unit tests for the plan-serving subsystem (src/service): request
// canonicalization, the MarketBoard's epoching, the sharded LRU plan cache,
// and the PlanService's hit/solve/join/shed behaviour — including the
// determinism contract that a cache hit is bit-identical (plan_fingerprint)
// to a fresh solve at the same epoch. The multi-threaded TSan stress lives
// in test_service_stress.cpp.
#include "service/plan_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.h"
#include "profile/paper_profiles.h"

namespace sompi {
namespace {

// ---------------------------------------------------------------------------
// Canonical keys.

PlanRequest bt_request(double deadline_h) {
  PlanRequest r;
  r.app = paper_profile("BT");
  r.deadline_h = deadline_h;
  return r;
}

TEST(CanonicalKey, ConstraintOrderAndDuplicatesDoNotMatter) {
  PlanRequest a = bt_request(30.0);
  a.allowed_types = {"m1.small", "c3.xlarge", "m1.small"};
  a.allowed_zones = {"us-east-1c", "us-east-1a"};
  PlanRequest b = bt_request(30.0);
  b.allowed_types = {"c3.xlarge", "m1.small"};
  b.allowed_zones = {"us-east-1a", "us-east-1c", "us-east-1a"};
  EXPECT_EQ(canonical_key(canonicalized(a)), canonical_key(canonicalized(b)));
}

TEST(CanonicalKey, DistinguishesDeadlineByBitPattern) {
  const double d = 30.0;
  const auto key_lo = canonical_key(canonicalized(bt_request(d)));
  const auto key_hi =
      canonical_key(canonicalized(bt_request(std::nextafter(d, 31.0))));
  EXPECT_NE(key_lo, key_hi);
}

TEST(CanonicalKey, DistinguishesConstraintSets) {
  PlanRequest a = bt_request(30.0);
  PlanRequest b = bt_request(30.0);
  b.allowed_zones = {"us-east-1a"};
  EXPECT_NE(canonical_key(canonicalized(a)), canonical_key(canonicalized(b)));
}

TEST(CanonicalKey, RejectsNonPositiveDeadline) {
  EXPECT_THROW(canonicalized(bt_request(0.0)), PreconditionError);
  EXPECT_THROW(canonicalized(bt_request(-1.0)), PreconditionError);
}

// ---------------------------------------------------------------------------
// MarketBoard.

class MarketBoardTest : public ::testing::Test {
 protected:
  Catalog catalog_ = paper_catalog();
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/2.0,
                                   /*step_hours=*/0.25, /*seed=*/11);
};

TEST_F(MarketBoardTest, EpochStartsAtOneAndIsMonotonic) {
  MarketBoard board(market_);
  EXPECT_EQ(board.epoch(), 1u);
  EXPECT_EQ(board.ingest({}), 2u);
  EXPECT_EQ(board.publish(market_), 3u);
  EXPECT_EQ(board.snapshot().epoch, 3u);
}

TEST_F(MarketBoardTest, IngestAppendsPricesToTheNamedGroup) {
  MarketBoard board(market_);
  const CircleGroupSpec group{0, 0};
  const std::size_t before = board.snapshot().market->trace(group).steps();

  board.ingest({PriceUpdate{group, {0.011, 0.022, 0.033}}});

  const MarketSnapshot snap = board.snapshot();
  const SpotTrace& after = snap.market->trace(group);
  ASSERT_EQ(after.steps(), before + 3);
  EXPECT_DOUBLE_EQ(after.price(before + 2), 0.033);
}

TEST_F(MarketBoardTest, SnapshotsAreImmutableAcrossIngest) {
  MarketBoard board(market_);
  const MarketSnapshot old = board.snapshot();
  const std::size_t old_steps = old.market->trace({0, 0}).steps();

  board.ingest({PriceUpdate{{0, 0}, {0.5}}});

  EXPECT_EQ(old.market->trace({0, 0}).steps(), old_steps);  // frozen world
  EXPECT_EQ(board.snapshot().market->trace({0, 0}).steps(), old_steps + 1);
  EXPECT_GT(board.snapshot().epoch, old.epoch);
}

// ---------------------------------------------------------------------------
// PlanCache.

std::shared_ptr<const Plan> dummy_plan(const std::string& app) {
  Plan p;
  p.app = app;
  return std::make_shared<const Plan>(std::move(p));
}

TEST(PlanCacheTest, HitRequiresMatchingEpoch) {
  PlanCache cache({.shards = 2, .capacity = 8});
  cache.insert("k", 1, dummy_plan("a"));
  ASSERT_NE(cache.lookup("k", 1), nullptr);
  EXPECT_EQ(cache.lookup("k", 2), nullptr);
  EXPECT_EQ(cache.lookup("other", 1), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  // One shard so the eviction order is fully observable.
  PlanCache cache({.shards = 1, .capacity = 2});
  cache.insert("a", 1, dummy_plan("a"));
  cache.insert("b", 1, dummy_plan("b"));
  ASSERT_NE(cache.lookup("a", 1), nullptr);  // refresh "a": "b" is now LRU
  cache.insert("c", 1, dummy_plan("c"));
  EXPECT_NE(cache.lookup("a", 1), nullptr);
  EXPECT_EQ(cache.lookup("b", 1), nullptr);
  EXPECT_NE(cache.lookup("c", 1), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, EraseOlderThanDropsDeadEpochsOnly) {
  PlanCache cache({.shards = 4, .capacity = 64});
  cache.insert("a", 1, dummy_plan("a"));
  cache.insert("b", 2, dummy_plan("b"));
  cache.insert("c", 3, dummy_plan("c"));
  EXPECT_EQ(cache.erase_older_than(3), 2u);
  EXPECT_EQ(cache.lookup("a", 1), nullptr);
  EXPECT_EQ(cache.lookup("b", 2), nullptr);
  EXPECT_NE(cache.lookup("c", 3), nullptr);
}

TEST(PlanCacheTest, ReinsertReplacesTheValue) {
  PlanCache cache({.shards = 1, .capacity = 4});
  cache.insert("k", 1, dummy_plan("old"));
  cache.insert("k", 1, dummy_plan("new"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup("k", 1)->app, "new");
}

// ---------------------------------------------------------------------------
// PlanService.

class PlanServiceTest : public ::testing::Test {
 protected:
  static ServiceConfig fast_config() {
    ServiceConfig c;
    c.cache = {.shards = 4, .capacity = 64};
    c.max_concurrent_solves = 2;
    c.max_queued_solves = 8;
    c.opt.max_candidates = 3;
    c.opt.max_groups = 2;
    c.opt.setup.log_levels = 3;
    c.opt.setup.failure.samples = 400;
    c.opt.ratio_bins = 32;
    return c;
  }

  PlanRequest request(double factor = 1.5) const {
    PlanRequest r;
    r.app = paper_profile("BT");
    r.deadline_h = baseline_h_ * factor;
    return r;
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/3.0,
                                   /*step_hours=*/0.25, /*seed=*/42);
  MarketBoard board_{market_};
  double baseline_h_ = OnDemandSelector(&catalog_, &est_).baseline(paper_profile("BT")).t_h;
};

TEST_F(PlanServiceTest, CacheHitIsBitIdenticalToAFreshSolve) {
  PlanService service(&catalog_, &est_, &board_, fast_config());

  const PlanResponse first = service.serve(request());
  ASSERT_EQ(first.outcome, PlanOutcome::kSolved);
  ASSERT_NE(first.plan, nullptr);
  EXPECT_EQ(first.epoch, 1u);

  const PlanResponse second = service.serve(request());
  ASSERT_EQ(second.outcome, PlanOutcome::kHit);

  // The contract: hit ≡ fresh solve at the same epoch, bit for bit.
  const Plan fresh =
      service.solve(canonicalized(request()), *board_.snapshot().market);
  EXPECT_EQ(plan_fingerprint(*second.plan), plan_fingerprint(fresh));
  EXPECT_EQ(plan_fingerprint(*first.plan), plan_fingerprint(*second.plan));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.solves, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_GT(stats.solve_seconds_total, 0.0);
  EXPECT_GT(stats.solve_p99_ms, 0.0);
}

TEST_F(PlanServiceTest, EpochBumpInvalidatesAndForcesResolve) {
  PlanService service(&catalog_, &est_, &board_, fast_config());
  ASSERT_EQ(service.serve(request()).outcome, PlanOutcome::kSolved);

  // A market move obsoletes the cached plan even though the request is
  // byte-identical.
  board_.ingest({PriceUpdate{{0, 0}, {0.9, 0.9, 0.9, 0.9}}});
  const PlanResponse after = service.serve(request());
  EXPECT_EQ(after.outcome, PlanOutcome::kSolved);
  EXPECT_EQ(after.epoch, 2u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solves, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.stale_evicted, 1u);  // the epoch-1 entry was swept
  EXPECT_EQ(stats.cache_entries, 1u);
}

TEST_F(PlanServiceTest, InvalidateStaleReclaimsEagerly) {
  PlanService service(&catalog_, &est_, &board_, fast_config());
  ASSERT_EQ(service.serve(request()).outcome, PlanOutcome::kSolved);
  board_.ingest({});
  EXPECT_EQ(service.invalidate_stale(), 1u);
  EXPECT_EQ(service.stats().cache_entries, 0u);
}

TEST_F(PlanServiceTest, ConstrainedRequestStaysInsideItsCatalogSlice) {
  PlanService service(&catalog_, &est_, &board_, fast_config());
  PlanRequest r = request(/*factor=*/3.0);
  r.allowed_types = {"cc2.8xlarge"};
  r.allowed_zones = {"us-east-1b"};

  const PlanResponse response = service.serve(r);
  ASSERT_EQ(response.outcome, PlanOutcome::kSolved);
  const std::size_t type = catalog_.type_index("cc2.8xlarge");
  const std::size_t zone = catalog_.zone_index("us-east-1b");
  EXPECT_EQ(response.plan->od.type_index, type);
  for (const GroupPlan& g : response.plan->groups) {
    EXPECT_EQ(g.spec.type_index, type);
    EXPECT_EQ(g.spec.zone_index, zone);
  }
}

TEST_F(PlanServiceTest, UnknownConstraintNameFailsFast) {
  PlanService service(&catalog_, &est_, &board_, fast_config());
  PlanRequest r = request();
  r.allowed_types = {"p5.48xlarge"};
  EXPECT_THROW(service.serve(r), PreconditionError);
  EXPECT_EQ(service.stats().solves, 0u);
}

TEST_F(PlanServiceTest, SingleFlightCollapsesConcurrentIdenticalRequests) {
  constexpr int kThreads = 4;
  ServiceConfig cfg = fast_config();
  std::atomic<int> solves_started{0};
  PlanService* service_ptr = nullptr;
  // Hold the one solve open until every other thread has joined the flight,
  // so the dedup path (not fast sequential hits) is what's exercised.
  cfg.solve_hook = [&](const std::string&, std::uint64_t) {
    solves_started.fetch_add(1);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (service_ptr->stats().dedup_joins < kThreads - 1 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
  };
  PlanService service(&catalog_, &est_, &board_, cfg);
  service_ptr = &service;

  std::vector<PlanResponse> responses(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] { responses[t] = service.serve(request()); });
  for (auto& th : threads) th.join();

  EXPECT_EQ(solves_started.load(), 1);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solves, 1u);
  EXPECT_EQ(stats.dedup_joins, static_cast<std::uint64_t>(kThreads - 1));
  int solved = 0, joined = 0;
  for (const PlanResponse& r : responses) {
    ASSERT_NE(r.plan, nullptr);
    EXPECT_EQ(plan_fingerprint(*r.plan), plan_fingerprint(*responses[0].plan));
    solved += r.outcome == PlanOutcome::kSolved;
    joined += r.outcome == PlanOutcome::kJoined;
  }
  EXPECT_EQ(solved, 1);
  EXPECT_EQ(joined, kThreads - 1);
}

TEST_F(PlanServiceTest, OverloadShedsInsteadOfQueueingUnboundedly) {
  ServiceConfig cfg = fast_config();
  cfg.max_concurrent_solves = 1;
  cfg.max_queued_solves = 0;
  std::atomic<bool> release{false};
  std::atomic<bool> solving{false};
  cfg.solve_hook = [&](const std::string&, std::uint64_t) {
    solving.store(true);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!release.load() && std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
  };
  PlanService service(&catalog_, &est_, &board_, cfg);

  std::thread owner([&] { service.serve(request(1.5)); });
  while (!solving.load()) std::this_thread::yield();

  // Different request: cannot join the in-flight solve, the one solve slot
  // is busy, and the queue allows nobody — explicit shed.
  const PlanResponse shed = service.serve(request(2.0));
  EXPECT_EQ(shed.outcome, PlanOutcome::kShed);
  EXPECT_EQ(shed.plan, nullptr);
  EXPECT_THROW(service.plan_or_throw(request(2.5)), OverloadError);

  release.store(true);
  owner.join();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sheds, 2u);
  EXPECT_EQ(stats.solves, 1u);

  // Capacity freed: the formerly-shed request now solves fine.
  EXPECT_EQ(service.serve(request(2.0)).outcome, PlanOutcome::kSolved);
}

TEST_F(PlanServiceTest, SolveFailurePropagatesToOwnerAndIsNotCached) {
  ServiceConfig cfg = fast_config();
  std::atomic<int> attempts{0};
  cfg.solve_hook = [&](const std::string&, std::uint64_t) {
    if (attempts.fetch_add(1) == 0) throw IoError("market feed hiccup");
  };
  PlanService service(&catalog_, &est_, &board_, cfg);

  EXPECT_THROW(service.serve(request()), IoError);
  EXPECT_EQ(service.stats().solves, 0u);
  EXPECT_EQ(service.stats().cache_entries, 0u);

  // Failures are not cached: the retry solves.
  EXPECT_EQ(service.serve(request()).outcome, PlanOutcome::kSolved);
}

TEST_F(PlanServiceTest, DistinctRequestsGetDistinctCacheEntries) {
  PlanService service(&catalog_, &est_, &board_, fast_config());
  ASSERT_EQ(service.serve(request(1.5)).outcome, PlanOutcome::kSolved);
  ASSERT_EQ(service.serve(request(2.0)).outcome, PlanOutcome::kSolved);
  EXPECT_EQ(service.serve(request(1.5)).outcome, PlanOutcome::kHit);
  EXPECT_EQ(service.serve(request(2.0)).outcome, PlanOutcome::kHit);
  EXPECT_EQ(service.stats().cache_entries, 2u);
}

}  // namespace
}  // namespace sompi
