// Tests for the mini-MPI extensions: nonblocking requests, sendrecv,
// scatter and sub-communicators (split) — plus fault-injection coverage:
// a kill-at-every-tick sweep over a short CG run and the single-shot
// semantics of the FailureController fire path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "apps/cg.h"
#include "checkpoint/storage.h"
#include "minimpi/runtime.h"

namespace sompi::mpi {
namespace {

TEST(MiniMpiExt, IrecvMatchesLater) {
  const RunResult r = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      Request req = comm.irecv(0, 5);
      comm.barrier();  // the send happens after we posted the irecv
      const Message m = req.wait();
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 5);
      EXPECT_EQ(m.payload.size(), 3u);
    } else {
      comm.barrier();
      const std::byte data[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
      comm.send_bytes(1, 5, data);
    }
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpiExt, RequestTestIsNonBlocking) {
  const RunResult r = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Request req = comm.irecv(1, 9);
      // The sender blocks on the barrier below until we pass it, so nothing
      // can have been sent yet and test() is deterministically false.
      EXPECT_FALSE(req.test());
      comm.barrier();
      // Now the message is in flight or queued; poll for it.
      while (!req.test()) {}
      const Message m = req.wait();  // already completed: returns the cache
      EXPECT_EQ(m.payload.size(), 8u);
    } else {
      comm.barrier();
      comm.send_vec<double>(0, 9, std::vector<double>{4.5});
    }
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpiExt, IsendCompletesImmediately) {
  const RunResult r = Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::byte data[1] = {std::byte{7}};
      Request req = comm.isend_bytes(1, 3, data);
      EXPECT_TRUE(req.test());
      EXPECT_FALSE(req.is_receive());
    } else {
      EXPECT_EQ(comm.recv_bytes(0, 3).size(), 1u);
    }
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpiExt, SendrecvExchangesWithoutDeadlock) {
  const RunResult r = Runtime::run(4, [](Comm& comm) {
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    const int payload = comm.rank() * 10;
    const Message m = comm.sendrecv_bytes(
        right, 7, std::as_bytes(std::span<const int, 1>(&payload, 1)), left, 7);
    int got = 0;
    std::memcpy(&got, m.payload.data(), sizeof got);
    EXPECT_EQ(got, left * 10);
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpiExt, ScatterDistributesChunks) {
  const RunResult r = Runtime::run(3, [](Comm& comm) {
    std::vector<std::vector<int>> chunks;
    if (comm.rank() == 1) {
      chunks = {{0, 0}, {1}, {2, 2, 2}};
    }
    const auto mine = comm.scatter(chunks, /*root=*/1);
    EXPECT_EQ(static_cast<int>(mine.size()), comm.rank() == 0 ? 2 : comm.rank() == 1 ? 1 : 3);
    for (int v : mine) EXPECT_EQ(v, comm.rank());
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpiExt, SplitByParity) {
  const RunResult r = Runtime::run(6, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, /*key=*/comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collectives stay inside the color group.
    const int sum = sub.allreduce(comm.rank(), ReduceOp::kSum);
    EXPECT_EQ(sum, comm.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
    // Point-to-point uses sub-ranks.
    if (sub.rank() == 0) sub.send<int>(sub.size() - 1, 11, comm.rank());
    if (sub.rank() == sub.size() - 1) {
      const int from_head = sub.recv<int>(0, 11);
      EXPECT_EQ(from_head, comm.rank() % 2);
    }
    sub.barrier();
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpiExt, SplitKeyControlsOrdering) {
  const RunResult r = Runtime::run(4, [](Comm& comm) {
    // Reverse the ordering with descending keys.
    Comm sub = comm.split(0, /*key=*/comm.size() - comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpiExt, ParentAndChildTrafficDoNotCross) {
  const RunResult r = Runtime::run(4, [](Comm& comm) {
    Comm sub = comm.split(comm.rank() < 2 ? 0 : 1, comm.rank());
    // Same (source, tag) pair on parent and child communicators.
    if (comm.rank() == 0) {
      comm.send<int>(1, 42, 100);  // parent: world 0 → world 1
      sub.send<int>(1, 42, 200);   // child: sub 0 → sub 1 (world 1)
    }
    if (comm.rank() == 1) {
      // The child receive must see the child message even though the parent
      // message from the same world rank with the same user tag also sits
      // in the mailbox.
      EXPECT_EQ(sub.recv<int>(0, 42), 200);
      EXPECT_EQ(comm.recv<int>(0, 42), 100);
    }
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpiExt, NestedSplit) {
  const RunResult r = Runtime::run(8, [](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    const int peer_sum = quarter.allreduce(comm.rank(), ReduceOp::kSum);
    // Partners are adjacent world ranks: {0,1}, {2,3}, ...
    EXPECT_EQ(peer_sum, (comm.rank() / 2) * 4 + 1);
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpiExt, SplitRejectsNegativeColorAndAnyTag) {
  const RunResult r = Runtime::run(2, [](Comm& comm) {
    EXPECT_THROW((void)comm.split(-1, 0), PreconditionError);
    comm.barrier();
    Comm sub = comm.split(0, comm.rank());
    EXPECT_THROW((void)sub.recv_message(kAnySource, kAnyTag), PreconditionError);
  });
  EXPECT_TRUE(r.completed);
}

TEST(MiniMpiExt, GridRowColumnCommunicators) {
  // The classic 2D-grid use: row and column communicators over 2×3 ranks.
  const RunResult r = Runtime::run(6, [](Comm& comm) {
    const int row = comm.rank() / 3;
    const int col = comm.rank() % 3;
    Comm row_comm = comm.split(row, col);
    Comm col_comm = comm.split(col, row);
    EXPECT_EQ(row_comm.size(), 3);
    EXPECT_EQ(col_comm.size(), 2);
    EXPECT_EQ(row_comm.rank(), col);
    EXPECT_EQ(col_comm.rank(), row);
    const int row_sum = row_comm.allreduce(comm.rank(), ReduceOp::kSum);
    const int col_sum = col_comm.allreduce(comm.rank(), ReduceOp::kSum);
    EXPECT_EQ(row_sum, row == 0 ? 0 + 1 + 2 : 3 + 4 + 5);
    EXPECT_EQ(col_sum, col + (col + 3));
  });
  EXPECT_TRUE(r.completed);
}

// --- Fault-injection coverage ------------------------------------------------

TEST(FaultInjection, KillAtEveryTickOfShortCgRun) {
  // Arm the tick budget at EVERY tick index a short CG run can reach. Each
  // armed attempt must end in a clean coordinated kill — no hang, no
  // deadlock, every rank unwound by KilledError — and a restart from the
  // same store must converge to the sequential reference (no
  // partial-checkpoint corruption from dying mid-protocol).
  constexpr int kWorld = 2;
  apps::CgConfig cfg;
  cfg.n = 8;
  cfg.iterations = 6;
  cfg.checkpoint_every = 2;
  const double expected = apps::cg_reference(cfg);

  bool saw_clean_completion = false;
  // Ticks are summed over all ranks (one per iteration per rank), so the
  // sweep upper bound is world × iterations plus slack; the loop stops at
  // the first budget the run never reaches.
  const auto max_budget = static_cast<std::uint64_t>(kWorld * cfg.iterations + 4);
  for (std::uint64_t kill_at = 1; kill_at <= max_budget; ++kill_at) {
    MemoryStore store;
    const RunResult killed = Runtime::run_with_kill(
        kWorld,
        [&](Comm& comm) {
          Checkpointer ck(&store, "cg");
          (void)apps::cg_run(comm, cfg, &ck);
        },
        kill_at);
    if (killed.completed) {
      // Budget beyond the run's total ticks: the kill never fired. All
      // later budgets complete too; the sweep covered every tick index.
      saw_clean_completion = true;
      EXPECT_FALSE(killed.killed);
      EXPECT_GE(kill_at, static_cast<std::uint64_t>(cfg.iterations)) << "died too early";
      break;
    }
    EXPECT_TRUE(killed.killed) << "kill_at=" << kill_at;
    EXPECT_TRUE(killed.errors.empty()) << "kill_at=" << kill_at << ": " << killed.errors[0];

    // Restart: whatever snapshot (if any) was committed must be consistent.
    const RunResult resumed = Runtime::run(kWorld, [&](Comm& comm) {
      Checkpointer ck(&store, "cg");
      const apps::AppResult res = apps::cg_run(comm, cfg, &ck);
      EXPECT_NEAR(res.checksum, expected, 1e-9 * std::abs(expected) + 1e-12)
          << "kill_at=" << kill_at;
    });
    EXPECT_TRUE(resumed.completed) << "kill_at=" << kill_at;
  }
  EXPECT_TRUE(saw_clean_completion) << "sweep never out-ran the tick budget";
}

TEST(FailureController, TickBudgetFiresSingleShot) {
  FailureController fc;
  EXPECT_FALSE(fc.fired());
  fc.arm_after_ticks(3);
  fc.on_tick();
  fc.on_tick();
  EXPECT_FALSE(fc.fired());
  EXPECT_FALSE(fc.killed());
  fc.on_tick();
  EXPECT_TRUE(fc.fired());
  EXPECT_TRUE(fc.killed());
  // Re-arming resets the latch; a direct kill() never sets it.
  fc.arm_after_ticks(0);
  EXPECT_FALSE(fc.fired());
  fc.on_tick();
  EXPECT_FALSE(fc.fired());  // disarmed: ticks don't fire
  fc.kill();
  EXPECT_FALSE(fc.fired());
  EXPECT_TRUE(fc.killed());
}

TEST(FailureController, ConcurrentTicksFireExactlyOnce) {
  // The pre-fix window: two threads both observe ticks_ + 1 >= budget and
  // double-fire kill(). The compare-exchange latch makes the fire path
  // single-shot; under TSan this test also proves the path is race-free.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kTicksPerThread = 2000;
  for (int round = 0; round < 20; ++round) {
    FailureController fc;
    // A budget near the total tick count maximizes threshold contention.
    fc.arm_after_ticks(kThreads * kTicksPerThread / 2);
    std::atomic<int> go{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        go.fetch_add(1);
        while (go.load() < kThreads) {}  // start together
        for (std::uint64_t i = 0; i < kTicksPerThread; ++i) fc.on_tick();
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_TRUE(fc.fired());
    EXPECT_TRUE(fc.killed());
  }
}

}  // namespace
}  // namespace sompi::mpi
