// Tests for the worst-case deadline guard (DESIGN.md §6b): under pressure
// the optimizer must buy safety with dense checkpoints or genuine
// replication; without the guard it gambles.
#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.h"
#include "core/schedule.h"
#include "profile/paper_profiles.h"

namespace sompi {
namespace {

class GuardTest : public ::testing::Test {
 protected:
  static OptimizerConfig fast(bool guard) {
    OptimizerConfig c;
    c.max_candidates = 6;
    c.setup.log_levels = 5;
    c.setup.failure.samples = 800;
    c.ratio_bins = 64;
    c.worst_case_guard = guard;
    return c;
  }

  /// Worst-case completion time of one planned group, as the guard sees it.
  static double group_worst_h(const GroupPlan& g, double step_h, double od_t_h) {
    const GroupSchedule sched(g.t_steps, g.f_steps, g.o_steps, g.r_steps);
    double worst = sched.wall_duration() * step_h;
    for (int t = 0; t < static_cast<int>(std::ceil(sched.wall_duration())); ++t)
      worst = std::max(worst, t * step_h + sched.ratio_at(t) * od_t_h);
    return worst;
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), 10.0, 0.25, 17);
  OnDemandSelector selector_{&catalog_, &est_};
};

TEST_F(GuardTest, EveryGuardedPlanIsWorstCaseSafeOrReplicated) {
  const SompiOptimizer opt(&catalog_, &est_, fast(true));
  for (const char* name : {"BT", "LU", "FT", "BTIO"}) {
    const AppProfile app = paper_profile(name);
    for (const double factor : {1.1, 1.3, 1.5}) {
      const double deadline = selector_.baseline(app).t_h * factor;
      const Plan plan = opt.optimize(app, market_, deadline);
      if (!plan.uses_spot()) continue;
      double worst = 0.0;
      for (const auto& g : plan.groups)
        worst = std::max(worst, group_worst_h(g, plan.step_hours, plan.od.t_h));
      const bool worst_case_safe = worst <= deadline + 1e-9;
      const bool replicated = plan.groups.size() >= 2;
      EXPECT_TRUE(worst_case_safe || replicated)
          << name << " @" << factor << ": worst " << worst << " vs " << deadline;
    }
  }
}

TEST_F(GuardTest, SingleGroupPlansCheckpointDenselyUnderPressure) {
  // When the guard admits a single group, its checkpoint interval must be
  // small enough that no kill instant can blow the deadline.
  const SompiOptimizer opt(&catalog_, &est_, fast(true));
  const AppProfile bt = paper_profile("BT");
  const Plan plan = opt.optimize(bt, market_, selector_.baseline(bt).t_h * 1.5);
  ASSERT_TRUE(plan.uses_spot());
  if (plan.groups.size() == 1) {
    const auto& g = plan.groups[0];
    EXPECT_LT(g.f_steps, g.t_steps);  // checkpoints are on
    EXPECT_LE(group_worst_h(g, plan.step_hours, plan.od.t_h),
              plan.deadline_h + 1e-9);
  }
}

TEST_F(GuardTest, UnguardedOptimizerMayPickUnsafePlans) {
  // Without the guard, the pure-expectation optimizer accepts plans whose
  // worst case exceeds the deadline (the All-Unable behaviour).
  OptimizerConfig cfg = fast(false);
  cfg.max_groups = 1;
  cfg.phi_mode = PhiMode::kDisabled;  // no checkpoints at all
  const SompiOptimizer opt(&catalog_, &est_, cfg);
  const AppProfile bt = paper_profile("BT");
  const double deadline = selector_.baseline(bt).t_h * 1.5;
  const Plan plan = opt.optimize(bt, market_, deadline);
  ASSERT_TRUE(plan.uses_spot());
  const auto& g = plan.groups[0];
  EXPECT_EQ(g.f_steps, g.t_steps);  // checkpointing really disabled
  EXPECT_GT(group_worst_h(g, plan.step_hours, plan.od.t_h), deadline);
}

TEST_F(GuardTest, BidsNeverExceedOnDemandPrice) {
  // The rational bid cap (DESIGN.md 6a): on-demand is a guaranteed
  // alternative, so no plan bids above it.
  const SompiOptimizer opt(&catalog_, &est_, fast(true));
  for (const char* name : {"BT", "FT"}) {
    const AppProfile app = paper_profile(name);
    const Plan plan = opt.optimize(app, market_, selector_.baseline(app).t_h * 1.5);
    for (const auto& g : plan.groups)
      EXPECT_LE(g.bid_usd, catalog_.type(g.spec.type_index).ondemand_usd_h + 1e-12)
          << g.name;
  }
}

TEST_F(GuardTest, GuardedNeverCostsMoreThanOnDemand) {
  const SompiOptimizer opt(&catalog_, &est_, fast(true));
  for (const char* name : {"BT", "SP", "FT", "IS", "BTIO", "LU"}) {
    const AppProfile app = paper_profile(name);
    const Plan plan = opt.optimize(app, market_, selector_.baseline(app).t_h * 1.5);
    EXPECT_LE(plan.expected.cost_usd, plan.od.full_cost_usd() + 1e-9) << name;
  }
}

}  // namespace
}  // namespace sompi
