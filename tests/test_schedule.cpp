#include "core/schedule.h"

#include <gtest/gtest.h>

#include <tuple>

namespace sompi {
namespace {

TEST(Schedule, NoCheckpointsWhenFEqualsT) {
  const GroupSchedule s(10, 10, 0.5, 1.0);
  EXPECT_EQ(s.checkpoints_full_run(), 0);
  EXPECT_DOUBLE_EQ(s.wall_duration(), 10.0);
  EXPECT_EQ(s.saved_by(9.9), 0);
  EXPECT_DOUBLE_EQ(s.ratio_at(5.0), 1.0);   // nothing saved: full redo
  EXPECT_DOUBLE_EQ(s.ratio_at(10.0), 0.0);  // completed
}

TEST(Schedule, CheckpointCountAndWall) {
  // T=10, F=3 → cycles at 3,6,9 then tail: checkpoints after 3, 6, 9 but
  // ceil(10/3)=4 cycles → 3 checkpoints; wall = 10 + 3·0.5.
  const GroupSchedule s(10, 3, 0.5, 1.0);
  EXPECT_EQ(s.checkpoints_full_run(), 3);
  EXPECT_DOUBLE_EQ(s.wall_duration(), 11.5);
}

TEST(Schedule, ExactDivisionSkipsFinalCheckpoint) {
  // T=9, F=3: the third "checkpoint" would coincide with completion.
  const GroupSchedule s(9, 3, 0.5, 1.0);
  EXPECT_EQ(s.checkpoints_full_run(), 2);
  EXPECT_DOUBLE_EQ(s.wall_duration(), 10.0);
}

TEST(Schedule, SavedByTracksCycles) {
  const GroupSchedule s(10, 3, 0.5, 1.0);  // cycle length 3.5
  EXPECT_EQ(s.saved_by(0.0), 0);
  EXPECT_EQ(s.saved_by(3.4), 0);   // first dump finishes at 3.5
  EXPECT_EQ(s.saved_by(3.5), 3);
  EXPECT_EQ(s.saved_by(6.9), 3);
  EXPECT_EQ(s.saved_by(7.0), 6);
  EXPECT_EQ(s.saved_by(10.5), 9);
  EXPECT_EQ(s.saved_by(100.0), 9);  // capped at full-run checkpoints
}

TEST(Schedule, ProgressWithinCycle) {
  const GroupSchedule s(10, 3, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(s.progress_by(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.progress_by(2.0), 2.0);   // mid first productive phase
  EXPECT_DOUBLE_EQ(s.progress_by(3.2), 3.0);   // inside the first dump
  EXPECT_DOUBLE_EQ(s.progress_by(4.0), 3.5);   // second productive phase
  EXPECT_DOUBLE_EQ(s.progress_by(11.5), 10.0); // complete
}

TEST(Schedule, RatioIncludesRecoveryOnlyWithSavedWork) {
  const GroupSchedule s(10, 3, 0.5, 1.0);
  // Before any checkpoint: redo everything, no recovery needed.
  EXPECT_DOUBLE_EQ(s.ratio_at(2.0), 1.0);
  // After the first checkpoint (saved 3): (10-3+1)/10.
  EXPECT_DOUBLE_EQ(s.ratio_at(4.0), 0.8);
  // After the third checkpoint (saved 9): (10-9+1)/10.
  EXPECT_DOUBLE_EQ(s.ratio_at(11.0), 0.2);
  EXPECT_DOUBLE_EQ(s.ratio_at(11.5), 0.0);
}

TEST(Schedule, RejectsInvalidParameters) {
  EXPECT_THROW(GroupSchedule(0, 1, 0.0, 0.0), PreconditionError);
  EXPECT_THROW(GroupSchedule(5, 0, 0.0, 0.0), PreconditionError);
  EXPECT_THROW(GroupSchedule(5, 6, 0.0, 0.0), PreconditionError);
  EXPECT_THROW(GroupSchedule(5, 2, -0.1, 0.0), PreconditionError);
  EXPECT_THROW(GroupSchedule(5, 2, 0.0, -0.1), PreconditionError);
}

// ---- Property sweep over (T, F, O) ------------------------------------------

class ScheduleProperty : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(ScheduleProperty, Invariants) {
  const auto [t, f, o] = GetParam();
  if (f > t) GTEST_SKIP();
  const GroupSchedule s(t, f, o, 0.8);

  EXPECT_GE(s.wall_duration(), static_cast<double>(t));
  EXPECT_EQ(s.saved_by(0.0), 0);
  EXPECT_DOUBLE_EQ(s.progress_by(s.wall_duration()), static_cast<double>(t));
  EXPECT_DOUBLE_EQ(s.ratio_at(s.wall_duration()), 0.0);

  double prev_saved = 0.0;
  double prev_progress = 0.0;
  for (double x = 0.0; x <= s.wall_duration() + 1.0; x += 0.31) {
    const double saved = s.saved_by(x);
    const double progress = s.progress_by(x);
    // Monotonicity and ordering: saved <= progress <= T.
    EXPECT_GE(saved, prev_saved);
    EXPECT_GE(progress, prev_progress - 1e-12);
    EXPECT_LE(saved, progress + 1e-12);
    EXPECT_LE(progress, static_cast<double>(t));
    // Ratio stays in [0, 1].
    EXPECT_GE(s.ratio_at(x), 0.0);
    EXPECT_LE(s.ratio_at(x), 1.0);
    prev_saved = saved;
    prev_progress = progress;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleProperty,
    ::testing::Combine(::testing::Values(1, 2, 7, 24, 100),   // T
                       ::testing::Values(1, 2, 5, 24),        // F
                       ::testing::Values(0.0, 0.05, 0.5, 2.0)  // O
                       ));

}  // namespace
}  // namespace sompi
