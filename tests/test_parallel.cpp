// Determinism-first tests for the parallel execution engine: pool-level unit
// tests for src/common/thread_pool.h, plus bit-for-bit equality of optimizer
// plans, Monte Carlo summaries, and failure-model estimates across
// threads ∈ {1, 2, 8}. Bit-reproducibility is the whole value proposition
// (common/rng.h): a parallel sweep that drifts with the schedule is useless
// as an experiment substrate.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/failure_model.h"
#include "core/optimizer.h"
#include "profile/paper_profiles.h"
#include "sim/monte_carlo.h"
#include "trace/generator.h"

namespace sompi {
namespace {

// ---------------------------------------------------------------------------
// Pool-level unit tests.

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.for_each_index(hits.size(), 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.for_each_index(0, 4, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleElementRangeRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  const auto caller = std::this_thread::get_id();
  pool.for_each_index(1, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);  // n == 1 short-circuits
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ZeroWorkerPoolDrainsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  int sum = 0;  // single-threaded by construction
  pool.for_each_index(100, 8, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.for_each_index(4, 4, [&](std::size_t) {
    pool.for_each_index(64, 4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 4 * 64);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  try {
    pool.for_each_index(100, 4, [&](std::size_t i) {
      if (i == 37) throw std::runtime_error("boom");
      ran.fetch_add(1);
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Short-circuit: unclaimed indices are skipped, so not all 99 need run.
  EXPECT_LT(ran.load(), 100);
}

TEST(ThreadPool, ExceptionInNestedBodyPropagatesOutward) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.for_each_index(3, 4,
                                   [&](std::size_t) {
                                     pool.for_each_index(16, 4, [&](std::size_t j) {
                                       if (j == 5) throw std::logic_error("inner");
                                     });
                                   }),
               std::logic_error);
}

TEST(ThreadPool, ConcurrentCallersShareThePool) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c)
    callers.emplace_back(
        [&] { pool.for_each_index(200, 3, [&](std::size_t) { total.fetch_add(1); }); });
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * 200);
}

TEST(ParallelHelpers, ResolveThreads) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ParallelHelpers, ParallelForSerialWhenThreadsIsOne) {
  // threads == 1 must never touch the pool: same thread, in order.
  std::vector<std::size_t> order;
  const auto caller = std::this_thread::get_id();
  parallel_for(50, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelHelpers, ReduceIsBitIdenticalAcrossThreadCounts) {
  // Floating-point sums depend on grouping; parallel_reduce fixes the
  // grouping by (n, grain), so any thread count gives the same bits.
  const auto sum_with = [](unsigned threads) {
    return parallel_reduce(
        10000, threads, 0.0, [](std::size_t i) { return 1.0 / static_cast<double>(i + 1); },
        [](double a, double b) { return a + b; }, /*grain=*/64);
  };
  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));
  EXPECT_EQ(serial, sum_with(8));
  EXPECT_NEAR(serial, 9.7876060, 1e-5);  // harmonic(10000) sanity
}

TEST(ParallelHelpers, ReduceEmptyAndSingleRanges) {
  const auto map = [](std::size_t i) { return static_cast<int>(i) + 1; };
  const auto add = [](int a, int b) { return a + b; };
  EXPECT_EQ(parallel_reduce(0, 8, 100, map, add), 100);
  EXPECT_EQ(parallel_reduce(1, 8, 0, map, add), 1);
}

TEST(ParallelHelpers, ReduceNonCommutativeCombineKeepsChunkOrder) {
  // Concatenation is associative but not commutative: order must be exact.
  const auto concat = [](std::string a, std::string b) { return a + b; };
  const auto digit = [](std::size_t i) { return std::string(1, char('0' + i % 10)); };
  const std::string serial =
      parallel_reduce(26, 1, std::string(), digit, concat, /*grain=*/4);
  EXPECT_EQ(serial, "01234567890123456789012345");
  EXPECT_EQ(parallel_reduce(26, 8, std::string(), digit, concat, /*grain=*/4), serial);
}

// ---------------------------------------------------------------------------
// Determinism layer: same seed ⇒ same bits at any thread count, across the
// three parallelized hot paths.

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static OptimizerConfig fast_config(unsigned threads) {
    OptimizerConfig c;
    c.max_candidates = 5;
    c.setup.log_levels = 5;
    c.setup.failure.samples = 800;
    c.setup.failure.threads = threads;
    c.ratio_bins = 64;
    c.threads = threads;
    return c;
  }

  static void expect_identical(const Plan& a, const Plan& b) {
    EXPECT_EQ(a.spot_feasible, b.spot_feasible);
    EXPECT_EQ(a.model_evaluations, b.model_evaluations);
    EXPECT_EQ(a.expected.cost_usd, b.expected.cost_usd);
    EXPECT_EQ(a.expected.time_h, b.expected.time_h);
    ASSERT_EQ(a.groups.size(), b.groups.size());
    for (std::size_t g = 0; g < a.groups.size(); ++g) {
      EXPECT_EQ(a.groups[g].name, b.groups[g].name);
      EXPECT_EQ(a.groups[g].instances, b.groups[g].instances);
      EXPECT_EQ(a.groups[g].bid_usd, b.groups[g].bid_usd);
      EXPECT_EQ(a.groups[g].f_steps, b.groups[g].f_steps);
      EXPECT_EQ(a.groups[g].t_steps, b.groups[g].t_steps);
    }
    EXPECT_EQ(a.od.t_h, b.od.t_h);
  }

  static void expect_identical(const Summary& a, const Summary& b) {
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p95, b.p95);
    EXPECT_EQ(a.max, b.max);
  }

  static void expect_identical(const MonteCarloStats& a, const MonteCarloStats& b) {
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.deadline_miss_rate, b.deadline_miss_rate);
    EXPECT_EQ(a.od_fallback_rate, b.od_fallback_rate);
    expect_identical(a.cost, b.cost);
    expect_identical(a.time, b.time);
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/10.0,
                                   /*step_hours=*/0.25, /*seed=*/77);
  AppProfile bt_ = paper_profile("BT");
  double deadline_ = OnDemandSelector(&catalog_, &est_).baseline(bt_).t_h * 1.5;
};

TEST_F(ParallelDeterminismTest, OptimizerPlanIsBitIdenticalAcrossThreadCounts) {
  const SompiOptimizer serial(&catalog_, &est_, fast_config(1));
  const Plan p1 = serial.optimize(bt_, market_, deadline_);
  ASSERT_TRUE(p1.spot_feasible);
  for (const unsigned threads : {2u, 8u}) {
    const SompiOptimizer parallel(&catalog_, &est_, fast_config(threads));
    const Plan pt = parallel.optimize(bt_, market_, deadline_);
    expect_identical(p1, pt);
  }
}

TEST_F(ParallelDeterminismTest, MonteCarloRunPlanIsBitIdenticalAcrossThreadCounts) {
  const SompiOptimizer opt(&catalog_, &est_, fast_config(1));
  const Plan plan = opt.optimize(bt_, market_, deadline_);

  const auto stats_with = [&](unsigned threads) {
    MonteCarloConfig mc;
    mc.runs = 24;
    mc.reserve_h = 96.0;
    mc.threads = threads;
    return MonteCarloRunner(&market_, {}, mc).run_plan(plan, deadline_);
  };
  const MonteCarloStats s1 = stats_with(1);
  EXPECT_EQ(s1.runs, 24u);
  expect_identical(s1, stats_with(2));
  expect_identical(s1, stats_with(8));
}

TEST_F(ParallelDeterminismTest, MonteCarloPlannedIsBitIdenticalAcrossThreadCounts) {
  // Re-plans per start point: exercises a thread-safe planner (the optimizer
  // is const and self-contained per call) under the parallel harness.
  const SompiOptimizer opt(&catalog_, &est_, fast_config(1));
  const auto stats_with = [&](unsigned threads) {
    MonteCarloConfig mc;
    mc.runs = 6;
    mc.reserve_h = 96.0;
    mc.threads = threads;
    return MonteCarloRunner(&market_, {}, mc)
        .run_planned([&](const Market& h, double dl) { return opt.optimize(bt_, h, dl); },
                     deadline_);
  };
  const MonteCarloStats s1 = stats_with(1);
  expect_identical(s1, stats_with(2));
  expect_identical(s1, stats_with(8));
}

TEST_F(ParallelDeterminismTest, MonteCarloAdaptiveIsBitIdenticalAcrossThreadCounts) {
  AdaptiveConfig cfg;
  cfg.opt = fast_config(1);
  cfg.window_h = 20.0;
  const AdaptiveEngine engine(&catalog_, &est_, cfg);
  const auto stats_with = [&](unsigned threads) {
    MonteCarloConfig mc;
    mc.runs = 4;
    mc.reserve_h = 96.0;
    mc.threads = threads;
    return MonteCarloRunner(&market_, {}, mc).run_adaptive(engine, bt_, deadline_);
  };
  const MonteCarloStats s1 = stats_with(1);
  expect_identical(s1, stats_with(2));
  expect_identical(s1, stats_with(8));
}

TEST(ParallelFailureModel, EstimatesAreBitIdenticalAcrossThreadCounts) {
  const RegimeParams params = regime_params_for(VolatilityClass::kModerate, 0.05);
  Rng rng(2024);
  const SpotTrace trace = generate_trace(params, 40000, 0.25, rng);
  const std::vector<double> bids = logarithmic_bid_grid(trace.max_price(), 6);

  const auto model_with = [&](unsigned threads) {
    FailureEstimationConfig cfg;
    cfg.samples = 3000;
    cfg.horizon_steps = 200;
    cfg.threads = threads;
    return FailureModel(trace, bids, cfg);
  };
  const FailureModel m1 = model_with(1);
  for (const unsigned threads : {2u, 8u}) {
    const FailureModel mt = model_with(threads);
    for (std::size_t b = 0; b < bids.size(); ++b) {
      EXPECT_EQ(m1.expected_price(b), mt.expected_price(b));
      EXPECT_EQ(m1.mtbf(b), mt.mtbf(b));
      for (std::size_t t = 0; t <= m1.horizon(); ++t)
        EXPECT_EQ(m1.survival(b, t), mt.survival(b, t))
            << "b=" << b << " t=" << t << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace sompi
