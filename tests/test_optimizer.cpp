#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "profile/paper_profiles.h"

namespace sompi {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  static OptimizerConfig fast_config() {
    OptimizerConfig c;
    c.max_candidates = 5;
    c.setup.log_levels = 5;
    c.setup.failure.samples = 800;
    c.ratio_bins = 64;
    return c;
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/4.0,
                                   /*step_hours=*/0.25, /*seed=*/77);
  OnDemandSelector selector_{&catalog_, &est_};
};

TEST_F(OptimizerTest, HybridPlanBeatsOnDemandOnCalmMarket) {
  const SompiOptimizer opt(&catalog_, &est_, fast_config());
  const AppProfile bt = paper_profile("BT");
  const double deadline = selector_.baseline(bt).t_h * 1.5;
  const Plan plan = opt.optimize(bt, market_, deadline);

  EXPECT_TRUE(plan.spot_feasible);
  EXPECT_TRUE(plan.uses_spot());
  EXPECT_LE(plan.expected.time_h, deadline + 1e-9);
  EXPECT_LT(plan.expected.cost_usd, plan.od.full_cost_usd());
  EXPECT_GT(plan.model_evaluations, 0u);
  EXPECT_DOUBLE_EQ(plan.state_gb, bt.state_gb);
}

TEST_F(OptimizerTest, PlanGroupsRespectConfigBounds) {
  OptimizerConfig cfg = fast_config();
  cfg.max_groups = 2;
  const SompiOptimizer opt(&catalog_, &est_, cfg);
  const AppProfile bt = paper_profile("BT");
  const Plan plan = opt.optimize(bt, market_, selector_.baseline(bt).t_h * 1.5);
  EXPECT_LE(plan.groups.size(), 2u);
  for (const auto& g : plan.groups) {
    EXPECT_GE(g.f_steps, 1);
    EXPECT_LE(g.f_steps, g.t_steps);
    EXPECT_GT(g.bid_usd, 0.0);
    EXPECT_GE(g.instances, 1);
  }
}

TEST_F(OptimizerTest, ImpossibleDeadlineFallsBackToFastestOnDemand) {
  const SompiOptimizer opt(&catalog_, &est_, fast_config());
  const AppProfile bt = paper_profile("BT");
  // Far below the baseline runtime: nothing fits.
  const Plan plan = opt.optimize(bt, market_, selector_.baseline(bt).t_h * 0.2);
  EXPECT_FALSE(plan.spot_feasible);
  EXPECT_FALSE(plan.uses_spot());
  EXPECT_EQ(catalog_.type(plan.od.type_index).name, "cc2.8xlarge");
}

TEST_F(OptimizerTest, HostileMarketPrefersOnDemand) {
  // All spot prices pinned above on-demand: the optimizer should refuse the
  // spot market entirely.
  std::vector<SpotTrace> traces;
  for (std::size_t i = 0; i < catalog_.types().size() * catalog_.zones().size(); ++i) {
    const auto& type = catalog_.types()[i / catalog_.zones().size()];
    traces.emplace_back(0.25, std::vector<double>(400, type.ondemand_usd_h * 3.0));
  }
  const Market hostile(&catalog_, std::move(traces));

  const SompiOptimizer opt(&catalog_, &est_, fast_config());
  const AppProfile bt = paper_profile("BT");
  const double deadline = selector_.baseline(bt).t_h * 1.5;
  const Plan plan = opt.optimize(bt, hostile, deadline);
  EXPECT_FALSE(plan.uses_spot());
  EXPECT_NEAR(plan.expected.cost_usd, plan.od.full_cost_usd(), 1e-9);
}

TEST_F(OptimizerTest, LooseDeadlineNoMoreExpensiveThanTight) {
  const SompiOptimizer opt(&catalog_, &est_, fast_config());
  const AppProfile bt = paper_profile("BT");
  const double base = selector_.baseline(bt).t_h;
  const Plan tight = opt.optimize(bt, market_, base * 1.05);
  const Plan loose = opt.optimize(bt, market_, base * 1.5);
  EXPECT_LE(loose.expected.cost_usd, tight.expected.cost_usd + 1e-9);
}

TEST_F(OptimizerTest, DeterministicForSameInputs) {
  const SompiOptimizer opt(&catalog_, &est_, fast_config());
  const AppProfile lu = paper_profile("LU");
  const double deadline = selector_.baseline(lu).t_h * 1.3;
  const Plan a = opt.optimize(lu, market_, deadline);
  const Plan b = opt.optimize(lu, market_, deadline);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].name, b.groups[i].name);
    EXPECT_DOUBLE_EQ(a.groups[i].bid_usd, b.groups[i].bid_usd);
    EXPECT_EQ(a.groups[i].f_steps, b.groups[i].f_steps);
  }
  EXPECT_DOUBLE_EQ(a.expected.cost_usd, b.expected.cost_usd);
}

TEST_F(OptimizerTest, LogSearchCloseToUniformGridOptimum) {
  // §4.2.2: the logarithmic search preserves solution quality while
  // shrinking the space. Compare against a 16-point uniform grid.
  OptimizerConfig log_cfg = fast_config();
  OptimizerConfig uni_cfg = fast_config();
  uni_cfg.setup.bid_grid = BidGridKind::kUniform;
  uni_cfg.setup.uniform_points = 16;

  const AppProfile bt = paper_profile("BT");
  const double deadline = selector_.baseline(bt).t_h * 1.5;
  const Plan log_plan = SompiOptimizer(&catalog_, &est_, log_cfg).optimize(bt, market_, deadline);
  const Plan uni_plan = SompiOptimizer(&catalog_, &est_, uni_cfg).optimize(bt, market_, deadline);

  EXPECT_LT(log_plan.model_evaluations, uni_plan.model_evaluations);
  // Within 15% of the denser search's cost.
  EXPECT_LT(log_plan.expected.cost_usd, uni_plan.expected.cost_usd * 1.15 + 1e-9);
}

TEST_F(OptimizerTest, PlanCarriesSearchStats) {
  // The debug log used to be the only place evaluation counts surfaced;
  // Plan::stats now reports the engine's actual work to callers.
  const SompiOptimizer opt(&catalog_, &est_, fast_config());
  const AppProfile bt = paper_profile("BT");
  const Plan plan = opt.optimize(bt, market_, selector_.baseline(bt).t_h * 1.5);

  EXPECT_GT(plan.stats.evaluations, 0u);
  EXPECT_GT(plan.stats.tuples_visited, 0u);
  EXPECT_GT(plan.stats.subsets_searched, 0u);
  // Default engine prunes, so it performs at most the logical count.
  EXPECT_LE(plan.stats.evaluations, plan.model_evaluations);

  // Disabling pruning restores the exhaustive work profile exactly.
  OptimizerConfig noprune = fast_config();
  noprune.prune = false;
  const Plan full = SompiOptimizer(&catalog_, &est_, noprune)
                        .optimize(bt, market_, selector_.baseline(bt).t_h * 1.5);
  EXPECT_EQ(full.stats.evaluations, full.model_evaluations);
  EXPECT_EQ(full.stats.tuples_pruned, 0u);
  EXPECT_EQ(full.stats.subsets_pruned, 0u);
  EXPECT_EQ(full.model_evaluations, plan.model_evaluations);
}

TEST_F(OptimizerTest, ReferenceEngineProducesIdenticalPlans) {
  OptimizerConfig ref = fast_config();
  ref.engine = SearchEngine::kReference;
  const AppProfile lu = paper_profile("LU");
  const double deadline = selector_.baseline(lu).t_h * 1.3;
  const Plan a = SompiOptimizer(&catalog_, &est_, fast_config()).optimize(lu, market_, deadline);
  const Plan b = SompiOptimizer(&catalog_, &est_, ref).optimize(lu, market_, deadline);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].name, b.groups[i].name);
    EXPECT_DOUBLE_EQ(a.groups[i].bid_usd, b.groups[i].bid_usd);
    EXPECT_EQ(a.groups[i].f_steps, b.groups[i].f_steps);
  }
  EXPECT_DOUBLE_EQ(a.expected.cost_usd, b.expected.cost_usd);
  EXPECT_EQ(a.model_evaluations, b.model_evaluations);
}

TEST_F(OptimizerTest, CommAppConvergesOnCc2) {
  // §5.3.1: for communication-intensive workloads every sensible plan uses
  // cc2.8xlarge groups.
  const SompiOptimizer opt(&catalog_, &est_, fast_config());
  const AppProfile ft = paper_profile("FT");
  const Plan plan = opt.optimize(ft, market_, selector_.baseline(ft).t_h * 1.5);
  ASSERT_TRUE(plan.uses_spot());
  for (const auto& g : plan.groups)
    EXPECT_EQ(catalog_.type(g.spec.type_index).name, "cc2.8xlarge") << g.name;
}

}  // namespace
}  // namespace sompi
