#include "trace/analytic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/failure_model.h"

namespace sompi {
namespace {

RegimeParams test_params() {
  RegimeParams p = regime_params_for(VolatilityClass::kModerate, 0.05);
  return p;
}

TEST(Analytic, SurvivalBasicProperties) {
  const RegimeParams p = test_params();
  const AnalyticFirstPassage a(p, 10.0 * p.base_usd);
  EXPECT_DOUBLE_EQ(a.survival(0), 1.0);
  double prev = 1.0;
  double total_pmf = 0.0;
  for (std::size_t t = 1; t <= 200; ++t) {
    const double s = a.survival(t);
    EXPECT_LE(s, prev + 1e-12);
    EXPECT_GE(s, 0.0);
    total_pmf += a.pmf(t - 1);
    prev = s;
  }
  EXPECT_NEAR(total_pmf + a.survival(200), 1.0, 1e-9);
}

TEST(Analytic, BidAboveAllSpikesNeverFails) {
  const RegimeParams p = test_params();
  const AnalyticFirstPassage a(p, (p.spike_hi + 1.0) * p.base_usd);
  EXPECT_DOUBLE_EQ(a.spike_exceed_probability(), 0.0);
  EXPECT_NEAR(a.survival(500), 1.0, 1e-12);  // 500 matrix steps of rounding
}

TEST(Analytic, HigherBidSurvivesLonger) {
  const RegimeParams p = test_params();
  const AnalyticFirstPassage low(p, p.spike_lo * 1.2 * p.base_usd);
  const AnalyticFirstPassage high(p, p.spike_hi * 0.8 * p.base_usd);
  EXPECT_GT(high.spike_exceed_probability(), 0.0);
  EXPECT_LT(high.spike_exceed_probability(), low.spike_exceed_probability());
  for (std::size_t t = 10; t <= 100; t += 30)
    EXPECT_GE(high.survival(t), low.survival(t) - 1e-12);
}

TEST(Analytic, SpikeExceedProbabilityIsUniformLaw) {
  const RegimeParams p = test_params();
  const double mid = 0.5 * (p.spike_lo + p.spike_hi) * p.base_usd;
  const AnalyticFirstPassage a(p, mid);
  EXPECT_NEAR(a.spike_exceed_probability(), 0.5, 1e-12);
}

TEST(Analytic, MatchesEmpiricalEstimatorOnGeneratedTrace) {
  // The empirical histogram estimator of §4.4 samples the very process the
  // analytic model solves: they must agree within Monte-Carlo noise.
  const RegimeParams p = test_params();
  Rng rng(20144);
  const SpotTrace trace = generate_trace(p, 120000, 0.25, rng);

  const double bid = 0.6 * p.spike_hi * p.base_usd;
  FailureEstimationConfig cfg;
  cfg.samples = 40000;
  cfg.horizon_steps = 160;
  const FailureModel empirical(trace, {bid}, cfg);
  const AnalyticFirstPassage analytic(p, bid);

  for (std::size_t t : {10u, 40u, 80u, 160u}) {
    EXPECT_NEAR(empirical.survival(0, t), analytic.survival(t), 0.035) << "t=" << t;
  }
  EXPECT_NEAR(empirical.mtbf(0), analytic.mtbf(160), 12.0);
}

TEST(Analytic, DifferentialOracleSweepTightensWithSamples) {
  // Differential oracle: the empirical survival curves of §4.4 are estimated
  // from the very process AnalyticFirstPassage solves in closed form, so
  // over a grid of bids above the volatile cap the max absolute error must
  // (a) stay under a Monte-Carlo tolerance and (b) tighten as `samples`
  // grows — a sample-size-independent bias would violate (b) immediately
  // (the regression this test exists to catch).
  const RegimeParams p = test_params();
  Rng rng(31415);
  const SpotTrace trace = generate_trace(p, 150000, 0.25, rng);

  const double lo = p.volatile_cap * p.base_usd;   // analytic validity floor
  const double hi = p.spike_hi * p.base_usd;       // above: never fails
  const std::vector<double> bids = {1.05 * lo, 0.5 * (lo + 0.4 * hi), 0.4 * hi,
                                    0.6 * hi, 0.85 * hi};
  for (std::size_t b = 1; b < bids.size(); ++b) ASSERT_GT(bids[b], bids[b - 1]);

  const std::size_t horizon = 160;
  const auto max_abs_error = [&](std::size_t samples) {
    FailureEstimationConfig cfg;
    cfg.samples = samples;
    cfg.horizon_steps = horizon;
    const FailureModel empirical(trace, bids, cfg);
    double worst = 0.0;
    for (std::size_t b = 0; b < bids.size(); ++b) {
      const AnalyticFirstPassage analytic(p, bids[b]);
      for (std::size_t t = 5; t <= horizon; t += 5)
        worst = std::max(worst, std::abs(empirical.survival(b, t) - analytic.survival(t)));
    }
    return worst;
  };

  // ~1/sqrt(G) Monte-Carlo scaling, with headroom for the shared-trace
  // correlation between start points.
  const double err_small = max_abs_error(4000);
  const double err_large = max_abs_error(40000);
  EXPECT_LT(err_small, 0.06);
  EXPECT_LT(err_large, 0.03);
  // More samples must not make the estimator worse (bias regression guard).
  EXPECT_LE(err_large, err_small + 0.01);
}

TEST(Analytic, RejectsBidInsideVolatileBand) {
  const RegimeParams p = test_params();
  EXPECT_THROW(AnalyticFirstPassage(p, 0.5 * p.volatile_cap * p.base_usd), PreconditionError);
}

TEST(Analytic, QuietChainSurvivesLongerThanSpiky) {
  const RegimeParams quiet = regime_params_for(VolatilityClass::kQuiet, 0.05);
  const RegimeParams spiky = regime_params_for(VolatilityClass::kSpiky, 0.05);
  // A bid that clears both volatile bands but sits below both spike floors.
  const double bid = 20.0 * 0.05;
  const AnalyticFirstPassage q(quiet, bid);
  const AnalyticFirstPassage s(spiky, bid);
  EXPECT_GT(q.survival(100), s.survival(100));
}

}  // namespace
}  // namespace sompi
