#include "sim/live.h"

#include <gtest/gtest.h>

#include "apps/lu.h"

namespace sompi {
namespace {

class LiveTest : public ::testing::Test {
 protected:
  Market make_market(std::vector<std::vector<double>> group_prices) {
    std::vector<SpotTrace> traces;
    for (std::size_t i = 0; i < catalog_.types().size() * catalog_.zones().size(); ++i) {
      if (i < group_prices.size() && !group_prices[i].empty()) {
        traces.emplace_back(0.25, group_prices[i]);
      } else {
        traces.emplace_back(0.25, std::vector<double>(400, 0.02));
      }
    }
    return Market(&catalog_, std::move(traces));
  }

  static Plan live_plan() {
    Plan plan;
    plan.app = "LU";
    plan.step_hours = 0.25;
    plan.od.t_h = 8.0;
    plan.od.instances = 2;
    plan.od.rate_usd_h = 4.0;
    plan.od.feasible = true;
    return plan;
  }

  static GroupPlan group(std::size_t type, std::size_t zone, int t_steps, int f_steps,
                         double bid) {
    GroupPlan g;
    g.spec = {type, zone};
    g.name = "g" + std::to_string(type) + std::to_string(zone);
    g.instances = 2;
    g.t_steps = t_steps;
    g.o_steps = 0.1;
    g.r_steps = 0.2;
    g.bid_usd = bid;
    g.f_steps = f_steps;
    return g;
  }

  LiveExecutor::AppRunner lu_runner(int iterations) {
    cfg_.nx = 16;
    cfg_.ny = 16;
    cfg_.iterations = iterations;
    return [this](mpi::Comm& comm, CoordinatedCheckpointing* ck, int checkpoint_every) {
      apps::LuConfig cfg = cfg_;
      cfg.checkpoint_every = checkpoint_every;
      return apps::lu_run(comm, cfg, ck);
    };
  }

  Catalog catalog_ = paper_catalog();
  apps::LuConfig cfg_;
};

TEST_F(LiveTest, CalmMarketCompletesOnSpotWithCorrectResult) {
  const Market market = make_market({});
  const LiveExecutor exec(&market);
  Plan plan = live_plan();
  plan.groups.push_back(group(0, 0, /*T=*/20, /*F=*/5, /*bid=*/0.1));

  MemoryStore store;
  const LiveRunResult r =
      exec.execute(plan, /*start_h=*/0.0, /*world=*/4, /*iters=*/40, lu_runner(40), store);
  EXPECT_TRUE(r.completed_on_spot);
  EXPECT_FALSE(r.recovered_on_demand);
  EXPECT_NEAR(r.checksum, apps::lu_reference(cfg_), 1e-9);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_TRUE(r.groups[0].completed);
}

TEST_F(LiveTest, KilledGroupRecoversOnDemandFromCheckpoint) {
  // Group (0,0): low for 10 steps then spiked → killed halfway.
  std::vector<double> prices(10, 0.02);
  prices.resize(400, 9.0);
  const Market market = make_market({{prices}});
  const LiveExecutor exec(&market);
  Plan plan = live_plan();
  plan.groups.push_back(group(0, 0, /*T=*/20, /*F=*/4, /*bid=*/0.1));

  MemoryStore store;
  const LiveRunResult r = exec.execute(plan, 0.0, 4, 40, lu_runner(40), store);
  EXPECT_FALSE(r.completed_on_spot);
  EXPECT_TRUE(r.recovered_on_demand);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_TRUE(r.groups[0].killed);
  EXPECT_GT(r.groups[0].checkpoints_saved, 0);
  // The recovered result is numerically identical to an undisturbed run.
  EXPECT_NEAR(r.checksum, apps::lu_reference(cfg_), 1e-9);
  // Recovery resumed from a checkpoint rather than redoing all 40
  // iterations: total executed iterations stay below kill+full.
  EXPECT_LT(r.total_iterations_run, 40);
}

TEST_F(LiveTest, SecondReplicaWinsWhenFirstDies) {
  // Group (0,0) dies immediately; group (0,1) is calm.
  const Market market = make_market({std::vector<double>(400, 9.0)});
  const LiveExecutor exec(&market);
  Plan plan = live_plan();
  plan.groups.push_back(group(0, 0, 20, 5, 0.1));
  plan.groups.push_back(group(0, 1, 20, 5, 0.1));

  MemoryStore store;
  const LiveRunResult r = exec.execute(plan, 0.0, 4, 40, lu_runner(40), store);
  EXPECT_TRUE(r.completed_on_spot);
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_TRUE(r.groups[0].killed);
  EXPECT_TRUE(r.groups[1].completed);
  EXPECT_NEAR(r.checksum, apps::lu_reference(cfg_), 1e-9);
}

TEST_F(LiveTest, RequiresSpotPlan) {
  const Market market = make_market({});
  const LiveExecutor exec(&market);
  MemoryStore store;
  EXPECT_THROW(exec.execute(live_plan(), 0.0, 2, 10, lu_runner(10), store),
               PreconditionError);
}

}  // namespace
}  // namespace sompi
