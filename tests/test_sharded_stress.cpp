// TSan-targeted stress for the sharded plan-serving tier: 8 shards hammered
// by 8 worker threads mixing ring-routed and sprayed requests while a bumper
// thread churns the epoch through the fan-out's versioned barrier — plus a
// chaos variant that wipes shard caches mid-flight, and the async batch
// API's harvest-completeness law under backpressure and shed pressure.
//
// The assertions encode the tier's hard guarantees:
//   1. no lost wakeups — every request and every batch ticket terminates
//      (the test hangs, and CI times out, otherwise);
//   2. exactly ONE solve per (canonical request, epoch) tier-wide, counted
//      at the built-in solve ledger, across sprayed landings and epoch
//      bumps racing the sweeps (waived only under cache-wipe chaos);
//   3. every plan handed out is bit-identical (plan_fingerprint) to a fresh
//      solve against the market that was current at the plan's epoch — wipe
//      chaos included;
//   4. every batch ticket is harvested exactly once, whatever mix of hits,
//      solves, joins and sheds its request produced.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "profile/paper_profiles.h"
#include "service/sharded/batch.h"
#include "service/sharded/sharded_service.h"

namespace sompi {
namespace {

class ShardedStressTest : public ::testing::Test {
 protected:
  static constexpr int kShards = 8;
  static constexpr int kWorkers = 8;
  static constexpr int kItersPerWorker = 12;
  static constexpr int kEpochBumps = 4;
  static constexpr int kDistinctRequests = 4;

  ShardedConfig stress_config() {
    ShardedConfig c;
    c.shards = kShards;
    c.vnodes = 16;
    c.salt = 0xBADC0FFEEULL;
    c.service.cache = {.shards = 4, .capacity = 256};
    c.service.max_concurrent_solves = 4;
    c.service.max_queued_solves = 64;  // roomy: sheds would hide dedup coverage
    c.service.opt.max_candidates = 2;
    c.service.opt.max_groups = 2;
    c.service.opt.setup.log_levels = 2;
    c.service.opt.setup.failure.samples = 200;
    c.service.opt.ratio_bins = 16;
    return c;
  }

  PlanRequest request(int which) const {
    PlanRequest r;
    r.app = paper_profile("BT");
    r.deadline_h = baseline_h_ * (1.5 + 0.25 * which);
    return r;
  }

  // Shared body of the clean and chaos variants: mixed serve/serve_on load
  // from kWorkers threads under epoch churn, then the post-mortem fingerprint
  // audit against the recorded per-epoch worlds. `wiper` (optional) runs
  // between bumps on the bumper thread.
  void run_churn(ShardedPlanService& tier, const std::function<void(int)>& wiper,
                 bool expect_one_solve_economy) {
    std::mutex worlds_mutex;
    std::map<std::uint64_t, std::shared_ptr<const Market>> worlds;
    worlds[1] = tier.board(0).snapshot().market;

    std::atomic<int> remaining_workers{kWorkers};
    std::thread bumper([&] {
      for (int b = 0; b < kEpochBumps && remaining_workers.load() > 0; ++b) {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        const double price = 0.02 + 0.01 * b;
        const std::uint64_t epoch =
            tier.fanout().ingest({PriceUpdate{{0, 0}, {price, price}},
                                  PriceUpdate{{1, 1}, {price * 2.0, price * 2.0}}});
        {
          std::lock_guard<std::mutex> lock(worlds_mutex);
          worlds[epoch] = tier.board(0).snapshot().market;
        }
        if (wiper) wiper(b);
      }
    });

    struct Observed {
      PlanRequest request;
      PlanResponse response;
    };
    std::vector<std::vector<Observed>> per_worker(kWorkers);
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        std::uint64_t lcg = 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(w + 1);
        for (int i = 0; i < kItersPerWorker; ++i) {
          lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
          const int which = static_cast<int>((lcg >> 33) % kDistinctRequests);
          const PlanRequest r = request(which);
          // Alternate the tier's two front doors: ring-routed serve() and a
          // sprayed landing on an arbitrary shard (the cross-shard path).
          const PlanResponse response =
              (i % 2 == 0) ? tier.serve(r)
                           : tier.serve_on(static_cast<std::size_t>((lcg >> 17) % kShards), r);
          ASSERT_NE(response.plan, nullptr);  // roomy queues: no sheds expected
          per_worker[w].push_back({r, response});
        }
        remaining_workers.fetch_add(-1);
      });
    }
    for (auto& th : workers) th.join();
    bumper.join();

    // Guarantee 3: post-mortem fingerprint audit. Deduplicate (key, epoch)
    // before the fresh re-solves — the fingerprint is a pure function of
    // them, chaos or not.
    std::map<std::pair<std::string, std::uint64_t>, std::string> seen;
    for (const auto& observations : per_worker) {
      for (const Observed& o : observations) {
        const PlanRequest canon = canonicalized(o.request);
        const auto id = std::make_pair(canonical_key(canon), o.response.epoch);
        const std::string fp = plan_fingerprint(*o.response.plan);
        const auto [it, inserted] = seen.emplace(id, fp);
        if (!inserted) {
          EXPECT_EQ(fp, it->second) << "two responses for one (request, epoch) differ";
          continue;
        }
        const auto world = worlds.find(o.response.epoch);
        ASSERT_NE(world, worlds.end());
        const Plan fresh = tier.shard(0).solve(canon, *world->second);
        EXPECT_EQ(fp, plan_fingerprint(fresh))
            << "tier plan deviates from a fresh solve at epoch " << o.response.epoch;
      }
    }

    // Conservation: outcome classes partition the requests, per-shard sums
    // equal the aggregate, and the two front doors account for every entry.
    const ShardedStats stats = tier.stats();
    const auto total = static_cast<std::uint64_t>(kWorkers * kItersPerWorker);
    EXPECT_EQ(stats.total.requests, total);
    EXPECT_EQ(stats.routed + stats.sprayed, total);
    EXPECT_EQ(stats.total.hits + stats.total.solves + stats.total.dedup_joins +
                  stats.total.sheds,
              stats.total.requests);
    EXPECT_EQ(stats.total.sheds, 0u);
    std::uint64_t sum_requests = 0;
    for (const ServiceStats& shard : stats.per_shard) sum_requests += shard.requests;
    EXPECT_EQ(sum_requests, stats.total.requests);

    // Guarantee 2 — only when chaos didn't legitimately break the economy.
    if (expect_one_solve_economy) {
      EXPECT_EQ(stats.duplicate_solves, 0u);
      EXPECT_EQ(stats.total.solves, static_cast<std::uint64_t>(tier.distinct_solves()));
    } else {
      EXPECT_EQ(stats.total.solves,
                static_cast<std::uint64_t>(tier.distinct_solves()) + stats.duplicate_solves);
    }
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/2.0,
                                   /*step_hours=*/0.25, /*seed=*/7);
  double baseline_h_ = OnDemandSelector(&catalog_, &est_).baseline(paper_profile("BT")).t_h;
};

TEST_F(ShardedStressTest, MixedSprayedLoadAcrossEpochBumps) {
  ShardedPlanService tier(&catalog_, &est_, market_, stress_config());
  run_churn(tier, nullptr, /*expect_one_solve_economy=*/true);
}

TEST_F(ShardedStressTest, SurvivesCacheWipeChaosMidFlight) {
  ShardedPlanService tier(&catalog_, &est_, market_, stress_config());
  // After every bump, kill a rotating shard's whole cache — current epoch
  // included. Fingerprint correctness must hold anyway; the one-solve
  // economy is legitimately waived (the ledger still balances the books).
  run_churn(
      tier, [&](int b) { tier.shard(static_cast<std::size_t>(b) % kShards).wipe_cache(); },
      /*expect_one_solve_economy=*/false);
}

// ---------------------------------------------------------------------------
// AsyncBatchService: harvest completeness under concurrency.

TEST_F(ShardedStressTest, BatchHarvestsEveryTicketExactlyOnceUnderChurn) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 75;  // 300 submissions through a 32-deep queue
  ShardedPlanService tier(&catalog_, &est_, market_, stress_config());
  AsyncBatchService batch(&tier, {.workers = 4, .queue_capacity = 32, .spray = true});

  std::mutex tickets_mutex;
  std::set<std::uint64_t> submitted;
  std::atomic<int> live_producers{kProducers};

  std::thread bumper([&] {
    for (int b = 0; b < kEpochBumps && live_producers.load() > 0; ++b) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      const double price = 0.03 + 0.01 * b;
      tier.fanout().ingest({PriceUpdate{{0, 0}, {price}}});
    }
  });

  // A concurrent harvester drains completions WHILE submissions continue —
  // exactly-once must hold against partial harvests, not just a final one.
  std::set<std::uint64_t> harvested;
  std::atomic<std::uint64_t> double_harvests{0};
  std::thread harvester([&] {
    while (live_producers.load() > 0) {
      for (const BatchCompletion& c : batch.harvest(8))
        if (!harvested.insert(c.ticket).second) double_harvests.fetch_add(1);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t ticket = batch.submit(request((p + i) % kDistinctRequests));
        std::lock_guard<std::mutex> lock(tickets_mutex);
        submitted.insert(ticket);
      }
      live_producers.fetch_add(-1);
    });
  }
  for (auto& th : producers) th.join();
  harvester.join();
  bumper.join();
  batch.drain();
  for (const BatchCompletion& c : batch.harvest())
    if (!harvested.insert(c.ticket).second) double_harvests.fetch_add(1);

  // Guarantee 4: the harvested set IS the submitted set, exactly once each.
  EXPECT_EQ(double_harvests.load(), 0u);
  EXPECT_EQ(harvested, submitted);
  EXPECT_EQ(submitted.size(), static_cast<std::size_t>(kProducers * kPerProducer));

  const AsyncBatchService::Stats stats = batch.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.harvested, stats.submitted);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_LE(stats.max_queue_depth, 32u);  // backpressure actually bounded the queue
  EXPECT_EQ(tier.duplicate_solves(), 0u);
}

TEST_F(ShardedStressTest, BatchHarvestCompletenessHoldsUnderShedPressure) {
  // A deliberately starved tier: one solve slot, zero queue slots. Many
  // tickets will shed — every one of them must still come back as a normal
  // completion, exactly once.
  ShardedConfig config = stress_config();
  config.service.max_concurrent_solves = 1;
  config.service.max_queued_solves = 0;
  ShardedPlanService tier(&catalog_, &est_, market_, config);
  AsyncBatchService batch(&tier, {.workers = 6, .queue_capacity = 16});

  constexpr int kSubmissions = 60;
  std::vector<std::uint64_t> tickets;
  tickets.reserve(kSubmissions);
  for (int i = 0; i < kSubmissions; ++i)
    tickets.push_back(batch.submit(request(i % kDistinctRequests)));
  batch.drain();

  const std::vector<BatchCompletion> done = batch.harvest();
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kSubmissions));
  std::set<std::uint64_t> seen;
  std::uint64_t sheds = 0;
  for (const BatchCompletion& c : done) {
    EXPECT_TRUE(seen.insert(c.ticket).second) << "ticket harvested twice";
    EXPECT_TRUE(c.error.empty()) << c.error;  // sheds are data, not errors
    if (c.response.outcome == PlanOutcome::kShed)
      ++sheds;
    else
      EXPECT_NE(c.response.plan, nullptr);
  }
  for (const std::uint64_t t : tickets) EXPECT_EQ(seen.count(t), 1u);

  const ShardedStats stats = tier.stats();
  EXPECT_EQ(stats.total.sheds, sheds);
  EXPECT_EQ(stats.total.hits + stats.total.solves + stats.total.dedup_joins + sheds,
            static_cast<std::uint64_t>(kSubmissions));
}

}  // namespace
}  // namespace sompi
