#include "sim/replay.h"

#include <gtest/gtest.h>

#include "core/schedule.h"

namespace sompi {
namespace {

class ReplayTest : public ::testing::Test {
 protected:
  /// Builds a single-type, single-zone catalog-free market: the paper
  /// catalog with every trace replaced by a hand-crafted series.
  Market make_market(std::vector<double> prices_for_group00, double step_h = 0.25,
                     double other_price = 0.05) {
    std::vector<SpotTrace> traces;
    const std::size_t n = prices_for_group00.size();
    for (std::size_t i = 0; i < catalog_.types().size() * catalog_.zones().size(); ++i) {
      if (i == 0) {
        traces.emplace_back(step_h, prices_for_group00);
      } else {
        traces.emplace_back(step_h, std::vector<double>(n, other_price));
      }
    }
    return Market(&catalog_, std::move(traces));
  }

  static Plan base_plan() {
    Plan plan;
    plan.app = "unit";
    plan.step_hours = 0.25;
    plan.deadline_h = 100.0;
    plan.state_gb = 10.0;
    plan.od.t_h = 8.0;
    plan.od.instances = 4;
    plan.od.rate_usd_h = 4.0;
    plan.od.feasible = true;
    return plan;
  }

  static GroupPlan group00(int t_steps, int f_steps, double bid, double o_steps = 0.2,
                           int instances = 2) {
    GroupPlan g;
    g.spec = {0, 0};
    g.name = "m1.small@us-east-1a";
    g.instances = instances;
    g.t_steps = t_steps;
    g.o_steps = o_steps;
    g.r_steps = 0.4;
    g.bid_usd = bid;
    g.f_steps = f_steps;
    return g;
  }

  Catalog catalog_ = paper_catalog();
};

TEST_F(ReplayTest, OnDemandOnlyPlan) {
  const Market market = make_market(std::vector<double>(100, 0.05));
  const ReplayEngine engine(&market);
  const Plan plan = base_plan();
  const ReplayResult r = engine.replay(plan, 0.0);
  EXPECT_FALSE(r.completed_on_spot);
  EXPECT_TRUE(r.used_od_recovery);
  EXPECT_DOUBLE_EQ(r.recovered_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.cost_usd, 4.0 * 8.0);
  EXPECT_DOUBLE_EQ(r.time_h, 8.0);
}

TEST_F(ReplayTest, CalmMarketCompletesAtExactCost) {
  const Market market = make_market(std::vector<double>(200, 0.02));
  const ReplayEngine engine(&market);
  Plan plan = base_plan();
  plan.groups.push_back(group00(/*T=*/20, /*F=*/5, /*bid=*/0.1));
  const ReplayResult r = engine.replay(plan, 0.0);

  const GroupSchedule sched(20, 5, 0.2, 0.4);
  EXPECT_TRUE(r.completed_on_spot);
  EXPECT_FALSE(r.used_od_recovery);
  EXPECT_NEAR(r.time_h, sched.wall_duration() * 0.25, 1e-9);
  // Billed at the actual price for the exact wall duration.
  EXPECT_NEAR(r.spot_cost_usd, 0.02 * 2 * sched.wall_duration() * 0.25, 1e-9);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_TRUE(r.groups[0].completed);
  EXPECT_EQ(r.groups[0].checkpoints, sched.checkpoints_full_run());
  EXPECT_GT(r.storage_cost_usd, 0.0);
  // Paper §4.4: checkpoint storage is far below 0.1% of the compute bill.
  EXPECT_LT(r.storage_cost_usd, 0.001 * r.spot_cost_usd + 0.01);
}

TEST_F(ReplayTest, SpikeKillsGroupAndRecoversFromCheckpoint) {
  // Low price for 12 steps, then a spike above the bid.
  std::vector<double> prices(12, 0.02);
  prices.resize(300, 5.0);
  const Market market = make_market(std::move(prices));
  const ReplayEngine engine(&market);
  Plan plan = base_plan();
  plan.groups.push_back(group00(/*T=*/20, /*F=*/5, /*bid=*/0.1));
  const ReplayResult r = engine.replay(plan, 0.0);

  EXPECT_FALSE(r.completed_on_spot);
  EXPECT_TRUE(r.used_od_recovery);
  ASSERT_EQ(r.groups.size(), 1u);
  EXPECT_TRUE(r.groups[0].killed);
  // Killed at step 12: two full cycles (5+0.2 each) completed → saved 10.
  const GroupSchedule sched(20, 5, 0.2, 0.4);
  EXPECT_DOUBLE_EQ(r.groups[0].saved_fraction, 0.5);
  EXPECT_DOUBLE_EQ(r.recovered_ratio, sched.ratio_at(12.0));
  // Spot paid for 12 steps; od pays ratio × T_od at the od rate.
  EXPECT_NEAR(r.spot_cost_usd, 0.02 * 2 * 12 * 0.25, 1e-9);
  EXPECT_NEAR(r.od_cost_usd, 4.0 * 8.0 * sched.ratio_at(12.0), 1e-9);
  EXPECT_NEAR(r.time_h, 12 * 0.25 + 8.0 * sched.ratio_at(12.0), 1e-9);
}

TEST_F(ReplayTest, InstantDeathWithoutCheckpointFullRerun) {
  const Market market = make_market(std::vector<double>(100, 9.0));
  const ReplayEngine engine(&market);
  Plan plan = base_plan();
  plan.groups.push_back(group00(20, 20, /*bid=*/0.1));
  const ReplayResult r = engine.replay(plan, 0.0);
  EXPECT_TRUE(r.groups[0].killed);
  EXPECT_DOUBLE_EQ(r.groups[0].lifetime_h, 0.0);
  EXPECT_DOUBLE_EQ(r.spot_cost_usd, 0.0);
  EXPECT_DOUBLE_EQ(r.recovered_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.od_cost_usd, 32.0);
}

TEST_F(ReplayTest, FirstCompletionTerminatesOtherReplicas) {
  // Group (0,0) is slow (T=40); group (0,1) is fast (T=12); both calm.
  const Market market = make_market(std::vector<double>(400, 0.02));
  const ReplayEngine engine(&market);
  Plan plan = base_plan();
  plan.groups.push_back(group00(40, 10, 0.1));
  GroupPlan fast = group00(12, 4, 0.1);
  fast.spec = {0, 1};
  fast.name = "m1.small@us-east-1b";
  plan.groups.push_back(fast);

  const ReplayResult r = engine.replay(plan, 0.0);
  EXPECT_TRUE(r.completed_on_spot);
  const GroupSchedule fast_sched(12, 4, 0.2, 0.4);
  EXPECT_NEAR(r.time_h, fast_sched.wall_duration() * 0.25, 1e-9);
  // The slow replica was cut off at the winner's completion and billed only
  // through then.
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_FALSE(r.groups[0].completed);
  EXPECT_FALSE(r.groups[0].killed);
  EXPECT_LE(r.groups[0].lifetime_h, r.time_h + 0.25);
  EXPECT_TRUE(r.groups[1].completed);
}

TEST_F(ReplayTest, WindowReplayReportsDurableProgress) {
  const Market market = make_market(std::vector<double>(400, 0.02));
  const ReplayEngine engine(&market);
  Plan plan = base_plan();
  plan.groups.push_back(group00(40, 10, 0.1));

  // A 2.5 h window = 10 steps: one cycle (10+0.2) not yet complete → the
  // boundary checkpoint captures in-flight progress (10 of 40 productive).
  const WindowOutcome out = engine.replay_window(plan, 0.0, 2.5);
  EXPECT_FALSE(out.completed);
  EXPECT_NEAR(out.fraction_done, 10.0 / 40.0, 1e-9);
  EXPECT_NEAR(out.hours_used, 2.5, 1e-9);
  EXPECT_GT(out.cost_usd, 0.0);
}

TEST_F(ReplayTest, WindowReplayDetectsCompletion) {
  const Market market = make_market(std::vector<double>(400, 0.02));
  const ReplayEngine engine(&market);
  Plan plan = base_plan();
  plan.groups.push_back(group00(8, 4, 0.1));
  const WindowOutcome out = engine.replay_window(plan, 0.0, 24.0);
  EXPECT_TRUE(out.completed);
  EXPECT_DOUBLE_EQ(out.fraction_done, 1.0);
  const GroupSchedule sched(8, 4, 0.2, 0.4);
  EXPECT_NEAR(out.hours_used, sched.wall_duration() * 0.25, 1e-9);
}

TEST_F(ReplayTest, WindowReplayAllDeadEndsEarly) {
  std::vector<double> prices(4, 0.02);
  prices.resize(400, 9.0);
  const Market market = make_market(std::move(prices));
  const ReplayEngine engine(&market);
  Plan plan = base_plan();
  plan.groups.push_back(group00(40, 10, 0.1));
  const WindowOutcome out = engine.replay_window(plan, 0.0, 10.0);
  EXPECT_FALSE(out.completed);
  EXPECT_DOUBLE_EQ(out.fraction_done, 0.0);  // died before the first dump
  EXPECT_NEAR(out.hours_used, 4 * 0.25, 1e-6);
}

TEST_F(ReplayTest, StartOffsetShiftsTheTimeline) {
  // Spike at steps [0, 4); starting after it survives.
  std::vector<double> prices(4, 9.0);
  prices.resize(400, 0.02);
  const Market market = make_market(std::move(prices));
  const ReplayEngine engine(&market);
  Plan plan = base_plan();
  plan.groups.push_back(group00(20, 5, 0.1));
  EXPECT_FALSE(engine.replay(plan, 0.0).completed_on_spot);
  EXPECT_TRUE(engine.replay(plan, 1.0).completed_on_spot);
}

TEST_F(ReplayTest, HourlyBillingRoundsUpPerLifetime) {
  const Market market = make_market(std::vector<double>(400, 0.02));
  ReplayConfig cfg;
  cfg.billing = BillingModel::kHourlyRoundUp;
  const ReplayEngine engine(&market, cfg);
  Plan plan = base_plan();
  // 21 productive steps, no checkpoints → 5.25 h lifetime → billed 6 h.
  plan.groups.push_back(group00(21, 21, 0.1));
  const ReplayResult r = engine.replay(plan, 0.0);
  EXPECT_NEAR(r.spot_cost_usd, 0.02 * 2 * 6.0, 1e-9);
  // An exact-hour lifetime is billed exactly (20 steps = 5 h).
  Plan exact = base_plan();
  exact.groups.push_back(group00(20, 20, 0.1));
  EXPECT_NEAR(engine.replay(exact, 0.0).spot_cost_usd, 0.02 * 2 * 5.0, 1e-9);
}

TEST_F(ReplayTest, ProviderKillRefundsPartialHour) {
  // Low for 13 steps (3.25 h) then spiked: killed at 3.25 h → provider-kill
  // billing charges only the 3 full hours.
  std::vector<double> prices(13, 0.02);
  prices.resize(400, 9.0);
  const Market market = make_market(std::move(prices));
  ReplayConfig cfg;
  cfg.billing = BillingModel::kHourlyProviderKillFree;
  const ReplayEngine engine(&market, cfg);
  Plan plan = base_plan();
  plan.groups.push_back(group00(40, 40, 0.1));
  const ReplayResult r = engine.replay(plan, 0.0);
  EXPECT_NEAR(r.spot_cost_usd, 0.02 * 2 * 3.0, 1e-9);
}

TEST_F(ReplayTest, OracleHistoryEndsAtNow) {
  const Market market = make_market(std::vector<double>(400, 0.02));
  MarketReplayOracle oracle(&market);
  const Market hist = oracle.history_at(10.0, 5.0);
  EXPECT_EQ(hist.trace({0, 0}).steps(), static_cast<std::size_t>(5.0 / 0.25));
  // Early history is clamped at the trace start.
  const Market early = oracle.history_at(1.0, 5.0);
  EXPECT_EQ(early.trace({0, 0}).steps(), 4u);
}

}  // namespace
}  // namespace sompi
