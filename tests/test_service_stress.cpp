// TSan-targeted stress for the plan-serving subsystem: 8+ worker threads
// hammer one PlanService with a mix of identical and distinct requests while
// a bumper thread advances the market epoch underneath them. Run under
// -DSOMPI_SANITIZE=thread this exercises every lock-ordering and wakeup path
// (cache shards, single-flight table, admission queue, epoch sweeps).
//
// The assertions encode the subsystem's three hard guarantees:
//   1. no lost wakeups — every request terminates with a definite outcome
//      (the test itself would hang, and CI time out, otherwise);
//   2. at most ONE optimizer run per (canonical request, epoch), counted at
//      the solve hook, across concurrent identical requests AND epoch bumps
//      racing the sweep;
//   3. every plan handed out — hit, solved or joined — is bit-identical
//      (plan_fingerprint) to a fresh solve against the exact market that was
//      current at the plan's epoch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "profile/paper_profiles.h"
#include "service/plan_service.h"

namespace sompi {
namespace {

class ServiceStressTest : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 8;
  static constexpr int kItersPerWorker = 24;
  static constexpr int kEpochBumps = 4;
  static constexpr int kDistinctRequests = 4;

  ServiceConfig stress_config() {
    ServiceConfig c;
    c.cache = {.shards = 4, .capacity = 256};  // ample: eviction can't fake a re-solve
    c.max_concurrent_solves = 4;
    c.max_queued_solves = 64;  // roomy queue: sheds would hide dedup coverage
    c.opt.max_candidates = 2;
    c.opt.max_groups = 2;
    c.opt.setup.log_levels = 2;
    c.opt.setup.failure.samples = 200;
    c.opt.ratio_bins = 16;
    return c;
  }

  PlanRequest request(int which) const {
    PlanRequest r;
    r.app = paper_profile("BT");
    r.deadline_h = baseline_h_ * (1.5 + 0.25 * which);
    return r;
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/2.0,
                                   /*step_hours=*/0.25, /*seed=*/7);
  MarketBoard board_{market_};
  double baseline_h_ = OnDemandSelector(&catalog_, &est_).baseline(paper_profile("BT")).t_h;
};

TEST_F(ServiceStressTest, ConcurrentMixedLoadAcrossEpochBumps) {
  // Solve-per-(request, epoch) ledger, fed by the solve hook.
  std::mutex ledger_mutex;
  std::map<std::pair<std::string, std::uint64_t>, int> solve_counts;

  ServiceConfig cfg = stress_config();
  cfg.solve_hook = [&](const std::string& key, std::uint64_t epoch) {
    std::lock_guard<std::mutex> lock(ledger_mutex);
    ++solve_counts[{key, epoch}];
  };
  PlanService service(&catalog_, &est_, &board_, cfg);

  // The market that was current at each epoch, for after-the-fact fresh
  // solves. Epoch 1 is the initial board state; the bumper records the rest.
  std::mutex worlds_mutex;
  std::map<std::uint64_t, std::shared_ptr<const Market>> worlds;
  worlds[1] = board_.snapshot().market;

  std::atomic<int> remaining_workers{kWorkers};
  std::thread bumper([&] {
    for (int b = 0; b < kEpochBumps && remaining_workers.load() > 0; ++b) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      const double price = 0.02 + 0.01 * b;
      const std::uint64_t epoch =
          board_.ingest({PriceUpdate{{0, 0}, {price, price}},
                         PriceUpdate{{1, 1}, {price * 2.0, price * 2.0}}});
      std::lock_guard<std::mutex> lock(worlds_mutex);
      worlds[epoch] = board_.snapshot().market;
    }
  });

  struct Observed {
    PlanRequest request;
    PlanResponse response;
  };
  std::vector<std::vector<Observed>> per_worker(kWorkers);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      // Deterministic per-worker request mix; a cheap LCG keeps workers
      // independent without touching any shared RNG.
      std::uint64_t lcg = 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(w + 1);
      for (int i = 0; i < kItersPerWorker; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        const int which = static_cast<int>((lcg >> 33) % kDistinctRequests);
        const PlanRequest r = request(which);
        const PlanResponse response = service.serve(r);
        ASSERT_NE(response.plan, nullptr);  // queue is roomy: no sheds expected
        per_worker[w].push_back({r, response});
      }
      remaining_workers.fetch_add(-1);
    });
  }
  for (auto& th : workers) th.join();
  bumper.join();

  // Guarantee 2: the burst dedup is exact — one solve per (request, epoch).
  for (const auto& [key, count] : solve_counts)
    EXPECT_EQ(count, 1) << "duplicate solve for epoch " << key.second;

  // Guarantee 3: every response is bit-identical to a fresh solve against
  // the world at its epoch. Deduplicate before re-solving: the fingerprint
  // is a pure function of (request, epoch).
  std::map<std::pair<std::string, std::uint64_t>, std::string> seen;
  for (const auto& observations : per_worker) {
    for (const Observed& o : observations) {
      const PlanRequest canon = canonicalized(o.request);
      const auto id = std::make_pair(canonical_key(canon), o.response.epoch);
      const std::string fp = plan_fingerprint(*o.response.plan);
      const auto [it, inserted] = seen.emplace(id, fp);
      if (!inserted) {
        EXPECT_EQ(fp, it->second) << "two responses for one (request, epoch) differ";
        continue;
      }
      const auto world = worlds.find(o.response.epoch);
      ASSERT_NE(world, worlds.end());
      const Plan fresh = service.solve(canon, *world->second);
      EXPECT_EQ(fp, plan_fingerprint(fresh))
          << "cached/joined plan deviates from a fresh solve at epoch "
          << o.response.epoch;
    }
  }

  // Bookkeeping sanity: every request is accounted for exactly once.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kWorkers * kItersPerWorker));
  EXPECT_EQ(stats.hits + stats.solves + stats.dedup_joins + stats.sheds, stats.requests);
  EXPECT_EQ(stats.sheds, 0u);
  EXPECT_EQ(stats.solves, static_cast<std::uint64_t>(solve_counts.size()));
  EXPECT_GE(stats.epoch, 1u);
}

// A tight burst at one epoch: N identical requests arriving together must
// produce exactly one solve and N−1 hits/joins, even with nothing else
// running — the acceptance shape of the dedup counter.
TEST_F(ServiceStressTest, IdenticalBurstYieldsExactlyOneSolve) {
  std::atomic<int> solves{0};
  ServiceConfig cfg = stress_config();
  cfg.solve_hook = [&](const std::string&, std::uint64_t) { solves.fetch_add(1); };
  PlanService service(&catalog_, &est_, &board_, cfg);

  constexpr int kBurst = 12;
  std::vector<std::thread> threads;
  std::vector<PlanResponse> responses(kBurst);
  for (int t = 0; t < kBurst; ++t)
    threads.emplace_back([&, t] { responses[t] = service.serve(request(0)); });
  for (auto& th : threads) th.join();

  EXPECT_EQ(solves.load(), 1);
  EXPECT_EQ(service.stats().solves, 1u);
  for (const PlanResponse& r : responses) {
    ASSERT_NE(r.plan, nullptr);
    EXPECT_EQ(plan_fingerprint(*r.plan), plan_fingerprint(*responses[0].plan));
  }
}

TEST_F(ServiceStressTest, RapidEpochChurnNeverServesStalePlans) {
  // MarketBoard + PlanCache under rapid epoch churn: one publisher bumps the
  // epoch kChurnPublishes times while kWorkers threads look up / insert
  // continuously. Every plan a lookup returns must carry exactly the epoch
  // it was requested at (the epoch is baked into Plan::app at insert), and
  // the cache's hit-rate counters must tally on the quiescent snapshot.
  constexpr int kChurnPublishes = 200;
  constexpr int kKeys = 6;
  PlanCache cache({.shards = 4, .capacity = 64});
  MarketBoard board(market_);

  auto make_plan = [](std::uint64_t epoch) {
    auto plan = std::make_shared<Plan>();
    plan->app = "epoch-" + std::to_string(epoch);  // the staleness tag
    return std::shared_ptr<const Plan>(std::move(plan));
  };

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> stale_served{0};
  std::atomic<std::uint64_t> lookups_done{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key = "req-" + std::to_string((w + local) % kKeys);
        const std::uint64_t epoch = board.epoch();
        if (const auto plan = cache.lookup(key, epoch)) {
          if (plan->app != "epoch-" + std::to_string(epoch))
            stale_served.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.insert(key, epoch, make_plan(epoch));
        }
        ++local;
      }
      lookups_done.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (int i = 0; i < kChurnPublishes; ++i) {
    board.ingest({});  // epoch bump
    cache.erase_older_than(board.epoch());
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();

  EXPECT_EQ(stale_served.load(), 0u);
  EXPECT_GT(lookups_done.load(), 0u);
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.lookups, lookups_done.load());
  EXPECT_LE(s.hits, s.lookups);
  // Every insertion was preceded by a miss; racing misses on one (key,
  // epoch) collapse to a single insertion (the second is a replace).
  EXPECT_GT(s.insertions, 0u);
  EXPECT_LE(s.insertions, s.lookups - s.hits);
  // Nothing vanishes silently: entries are either live, evicted by LRU
  // pressure, or reclaimed by the stale sweeps.
  EXPECT_EQ(cache.size() + s.evictions + s.stale_dropped, s.insertions);
  EXPECT_GT(board.epoch(), static_cast<std::uint64_t>(kChurnPublishes));
}

}  // namespace
}  // namespace sompi
