// Platform/network cost model subsystem (DESIGN.md §12): the battery.
//
//   * Flat anchor — Platform::flat(catalog) must reproduce the catalog
//     constants BIT-exactly: effective() fields, every estimator output,
//     every SetupBuilder profile, and full optimizer plan fingerprints at
//     one and at eight threads are 0 ULP from the legacy catalog-only path.
//   * Heterogeneity — the committed example platform (slow-network zone,
//     shared uplinks) must change the plan fingerprint, and the changed
//     plan must itself be bit-identical across thread counts.
//   * Model properties — p2p/bcast/allreduce formulas, fair-share
//     contention, compute derating, disk/uplink checkpoint paths.
//   * Lenient parser — one unit test per corruption class, mirroring the
//     common/csv skip-with-counter contract.
//   * Adapters — PlatformOpCoster billing mini-MPI sends, and
//     PlatformTransferModel billing multi-level checkpoint traffic.
#include "platform/platform.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "checkpoint/multilevel.h"
#include "checkpoint/storage.h"
#include "cloud/catalog.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/ondemand.h"
#include "core/optimizer.h"
#include "core/setup_builder.h"
#include "minimpi/runtime.h"
#include "platform/examples.h"
#include "platform/models.h"
#include "platform/parser.h"
#include "profile/estimator.h"
#include "profile/paper_profiles.h"
#include "service/request.h"
#include "trace/market.h"

namespace sompi {
namespace {

using platform::EffectiveSpec;
using platform::Link;
using platform::NetworkModel;
using platform::Platform;
using platform::PlatformParseStats;

/// Bit pattern of a double — the comparisons below are 0-ULP, not approximate.
std::uint64_t bits(double v) {
  std::uint64_t b;
  static_assert(sizeof(b) == sizeof(v));
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// --- Flat anchor: bit-exact reproduction of the catalog ----------------------

TEST(PlatformFlat, EffectiveSpecIsBitExactToCatalogColumns) {
  const Catalog catalog = paper_catalog();
  const Platform flat = Platform::flat(catalog);
  for (const InstanceType& type : catalog.types()) {
    for (const Zone& zone : catalog.zones()) {
      for (const int flows : {1, 7, 64, 4096}) {
        const EffectiveSpec s = flat.effective(type, zone.name, flows);
        EXPECT_EQ(s.cores, type.cores);
        EXPECT_EQ(bits(s.gips_per_core), bits(type.gips_per_core));
        EXPECT_EQ(bits(s.net_gbps), bits(type.net_gbps));
        EXPECT_EQ(bits(s.net_latency_us), bits(type.net_latency_us));
        EXPECT_EQ(bits(s.io_mbps), bits(type.io_mbps));
        EXPECT_EQ(bits(s.uplink_gbps), bits(type.net_gbps));
        EXPECT_EQ(bits(s.uplink_latency_us), bits(0.0));
      }
    }
  }
}

TEST(PlatformFlat, UnknownTypeAndZoneFallBackToCatalogColumns) {
  const Catalog catalog = paper_catalog();
  const Platform empty({}, {Link{"l", 1.0, 0.0, false}}, {});
  const InstanceType& type = catalog.type(0);
  const EffectiveSpec s = empty.effective(type, "nowhere-1x", 3);
  EXPECT_EQ(bits(s.gips_per_core), bits(type.gips_per_core));
  EXPECT_EQ(bits(s.net_gbps), bits(type.net_gbps));
  EXPECT_EQ(bits(s.net_latency_us), bits(type.net_latency_us));
  EXPECT_EQ(bits(s.io_mbps), bits(type.io_mbps));
  EXPECT_EQ(bits(s.uplink_gbps), bits(type.net_gbps));
}

TEST(PlatformFlat, EstimatorZoneOverloadsAreZeroUlpFromLegacy) {
  const Catalog catalog = paper_catalog();
  const Platform flat = Platform::flat(catalog);
  const ExecTimeEstimator legacy;
  const ExecTimeEstimator with_flat(&flat);
  const ExecTimeEstimator with_null(nullptr);
  for (const AppProfile& app : paper_profiles()) {
    for (const InstanceType& type : catalog.types()) {
      const TimeBreakdown want = legacy.estimate(app, type);
      const CheckpointCosts want_ck = legacy.checkpoint_costs(app, type);
      for (const Zone& zone : catalog.zones()) {
        for (const ExecTimeEstimator* est : {&with_flat, &with_null}) {
          const TimeBreakdown got = est->estimate(app, type, zone.name);
          EXPECT_EQ(bits(got.cpu_h), bits(want.cpu_h));
          EXPECT_EQ(bits(got.net_h), bits(want.net_h));
          EXPECT_EQ(bits(got.io_h), bits(want.io_h));
          EXPECT_EQ(bits(est->hours(app, type, zone.name)), bits(want.total_h()));
          const CheckpointCosts ck = est->checkpoint_costs(app, type, zone.name);
          EXPECT_EQ(bits(ck.checkpoint_h), bits(want_ck.checkpoint_h));
          EXPECT_EQ(bits(ck.recovery_h), bits(want_ck.recovery_h));
        }
      }
    }
  }
}

TEST(PlatformFlat, SetupBuilderProfilesAreZeroUlpFromLegacy) {
  const Catalog catalog = paper_catalog();
  const Platform flat = Platform::flat(catalog);
  const ExecTimeEstimator legacy;
  const ExecTimeEstimator platform_est(&flat);
  Rng rng(20260808);
  const Market market =
      generate_market(catalog, random_market_profile(catalog, rng), 1.0, 0.25, 7);
  const AppProfile app = paper_profile("SP");

  const SetupConfig config;
  const auto legacy_setups =
      SetupBuilder(&catalog, &legacy).build_candidates(app, market, config, 1e9);
  const auto platform_setups =
      SetupBuilder(&catalog, &platform_est).build_candidates(app, market, config, 1e9);
  ASSERT_EQ(legacy_setups.size(), platform_setups.size());
  for (std::size_t i = 0; i < legacy_setups.size(); ++i) {
    EXPECT_EQ(legacy_setups[i].t_steps, platform_setups[i].t_steps);
    EXPECT_EQ(bits(legacy_setups[i].o_steps), bits(platform_setups[i].o_steps));
    EXPECT_EQ(bits(legacy_setups[i].r_steps), bits(platform_setups[i].r_steps));
    EXPECT_EQ(legacy_setups[i].instances, platform_setups[i].instances);
  }
}

// --- Full-stack fingerprints: flat identity, hetero divergence ---------------

OptimizerConfig small_config(unsigned threads) {
  OptimizerConfig config;
  config.max_candidates = 4;
  config.max_groups = 2;
  config.setup.log_levels = 3;
  config.setup.failure.samples = 400;
  config.ratio_bins = 32;
  config.threads = threads;
  return config;
}

std::string solve_fingerprint(const ExecTimeEstimator& estimator, unsigned threads,
                              std::uint64_t market_seed) {
  const Catalog catalog = paper_catalog();
  Rng rng(market_seed);
  const Market market =
      generate_market(catalog, random_market_profile(catalog, rng), 1.5, 0.25, market_seed);
  const AppProfile app = paper_profile("BT");
  // The deadline derives from the LEGACY baseline for every estimator, so a
  // hetero-platform fingerprint difference indicts the per-group profiles,
  // never a shifted deadline.
  const ExecTimeEstimator legacy;
  const double deadline_h =
      OnDemandSelector(&catalog, &legacy).baseline(app).t_h * 1.5;
  const SompiOptimizer optimizer(&catalog, &estimator, small_config(threads));
  return plan_fingerprint(optimizer.optimize(app, market, deadline_h));
}

TEST(PlatformPlans, FlatPlatformPlanFingerprintsMatchLegacyAtOneAndEightThreads) {
  const Catalog catalog = paper_catalog();
  const Platform flat = Platform::flat(catalog);
  const ExecTimeEstimator legacy;
  const ExecTimeEstimator platform_est(&flat);
  for (const std::uint64_t seed : {97ull, 1729ull}) {
    const std::string want = solve_fingerprint(legacy, 1, seed);
    EXPECT_EQ(solve_fingerprint(platform_est, 1, seed), want);
    EXPECT_EQ(solve_fingerprint(platform_est, 8, seed), want);
  }
}

TEST(PlatformPlans, HeteroPlatformDivergesFromFlatAndIsThreadCountInvariant) {
  const Catalog catalog = paper_catalog();
  const Platform hetero = platform::example_hetero_platform();
  const ExecTimeEstimator legacy;
  const ExecTimeEstimator hetero_est(&hetero);
  const std::string flat_fp = solve_fingerprint(legacy, 1, 97);
  const std::string hetero_fp = solve_fingerprint(hetero_est, 1, 97);
  EXPECT_NE(hetero_fp, flat_fp);
  EXPECT_EQ(solve_fingerprint(hetero_est, 8, 97), hetero_fp);
}

TEST(PlatformPlans, SlowZoneProfilesAreStrictlyWorse) {
  // In the example platform us-east-1c derates compute and throttles both
  // links, so every per-group profile there must be >= the 1a profile, and
  // the checkpoint overhead strictly larger (slower shared uplink).
  const Catalog catalog = paper_catalog();
  const Platform hetero = platform::example_hetero_platform();
  const ExecTimeEstimator est(&hetero);
  for (const AppProfile& app : paper_profiles()) {
    for (const InstanceType& type : catalog.types()) {
      EXPECT_GT(est.hours(app, type, "us-east-1c"), est.hours(app, type, "us-east-1a"));
      const CheckpointCosts fast = est.checkpoint_costs(app, type, "us-east-1a");
      const CheckpointCosts slow = est.checkpoint_costs(app, type, "us-east-1c");
      EXPECT_GT(slow.checkpoint_h, fast.checkpoint_h);
      EXPECT_GT(slow.recovery_h, fast.recovery_h);
    }
  }
}

// --- Network/compute model properties ----------------------------------------

TEST(PlatformModels, P2pIsLatencyPlusBytesOverFairShare) {
  const Platform hetero = platform::example_hetero_platform();
  const NetworkModel net(&hetero);
  const Catalog catalog = paper_catalog();
  const InstanceType& type = *[&]() -> const InstanceType* {
    for (const InstanceType& t : catalog.types())
      if (t.name == "cc2.8xlarge") return &t;
    return nullptr;
  }();

  // us-east-1a fabric-fast: dedicated 100 Gbit/s, link latency 0 — the NIC
  // (10 Gbit/s, 60 us) is the bottleneck at any flow count.
  const double expected_fast = 60.0 * 1e-6 + 1e6 * 8.0 / (10.0 * 1e9);
  EXPECT_DOUBLE_EQ(net.p2p_seconds(type, "us-east-1a", 1000000, 1), expected_fast);
  EXPECT_EQ(bits(net.p2p_seconds(type, "us-east-1a", 1000000, 32)),
            bits(net.p2p_seconds(type, "us-east-1a", 1000000, 1)));

  // us-east-1c fabric-slow: shared 0.35 Gbit/s, 400 us — 4 flows quarter the
  // share, and the NIC latency adds to the fabric latency.
  const double share = 0.35 / 4.0;
  const double expected_slow = (60.0 + 400.0) * 1e-6 + 1e6 * 8.0 / (share * 1e9);
  EXPECT_DOUBLE_EQ(net.p2p_seconds(type, "us-east-1c", 1000000, 4), expected_slow);
  EXPECT_GT(net.p2p_seconds(type, "us-east-1c", 1000000, 4),
            net.p2p_seconds(type, "us-east-1c", 1000000, 1));
}

TEST(PlatformModels, BcastIsTreeRoundsAndAllreduceIsTwice) {
  const Platform hetero = platform::example_hetero_platform();
  const NetworkModel net(&hetero);
  const Catalog catalog = paper_catalog();
  const InstanceType& type = catalog.type(0);

  EXPECT_EQ(net.bcast_seconds(type, "us-east-1c", 4096, 1), 0.0);
  // n=8: informed doubles 1→2→4→8; round transfer counts 1, 2, 4.
  const double expected = net.p2p_seconds(type, "us-east-1c", 4096, 1) +
                          net.p2p_seconds(type, "us-east-1c", 4096, 2) +
                          net.p2p_seconds(type, "us-east-1c", 4096, 4);
  EXPECT_DOUBLE_EQ(net.bcast_seconds(type, "us-east-1c", 4096, 8), expected);
  // n=5: counts 1, 2, 1 (only n - informed ranks still need the value).
  const double expected5 = 2.0 * net.p2p_seconds(type, "us-east-1c", 4096, 1) +
                           net.p2p_seconds(type, "us-east-1c", 4096, 2);
  EXPECT_DOUBLE_EQ(net.bcast_seconds(type, "us-east-1c", 4096, 5), expected5);
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(type, "us-east-1c", 4096, 8), 2.0 * expected);
}

TEST(PlatformModels, ComputeDeratingScalesKernelSeconds) {
  const Platform hetero = platform::example_hetero_platform();
  const platform::ComputeModel compute(&hetero);
  const Catalog catalog = paper_catalog();
  const InstanceType& type = catalog.type(0);
  const double fast = compute.kernel_seconds(type, "us-east-1a", 100.0, 16);
  const double slow = compute.kernel_seconds(type, "us-east-1c", 100.0, 16);
  EXPECT_DOUBLE_EQ(fast, 100.0 / (16.0 * type.gips_per_core));
  EXPECT_DOUBLE_EQ(slow, 100.0 / (16.0 * type.gips_per_core * 0.92));
}

TEST(PlatformModels, CheckpointPathsUseDiskAndUplink) {
  const Platform hetero = platform::example_hetero_platform();
  const NetworkModel net(&hetero);
  const Catalog catalog = paper_catalog();
  const InstanceType& type = catalog.type(0);  // m1.small: disk 40 MB/s, NIC 0.10

  // Cache writes: instances split the bytes across their local disks.
  const std::uint64_t total = 80u * 1000 * 1000;
  EXPECT_DOUBLE_EQ(net.cache_write_seconds(type, "us-east-1a", total, 2),
                   (total / 2.0) / (40.0 * 1e6));
  // Flush: per-instance share through the fair-shared uplink (8/2 = 4 Gbit/s
  // exceeds the 0.10 Gbit/s NIC, so the NIC clamps), plus the link latency.
  EXPECT_DOUBLE_EQ(net.flush_seconds(type, "us-east-1a", total, 2),
                   120.0 * 1e-6 + (total / 2.0) * 8.0 / (0.10 * 1e9));
  // Restores select the matching path.
  EXPECT_EQ(bits(net.restore_seconds(type, "us-east-1a", total, 2, true)),
            bits(net.cache_write_seconds(type, "us-east-1a", total, 2)));
  EXPECT_EQ(bits(net.restore_seconds(type, "us-east-1a", total, 2, false)),
            bits(net.flush_seconds(type, "us-east-1a", total, 2)));
}

// --- Lenient parser: one test per corruption class ---------------------------

Platform parse(const std::string& text, PlatformParseStats& stats) {
  return platform::parse_platform(text, &stats);
}

TEST(PlatformParser, ParsesTheCommittedExampleCleanly) {
  PlatformParseStats stats;
  const Platform p = parse(platform::example_hetero_platform_text(), stats);
  EXPECT_EQ(stats.hosts_parsed, 5u);
  EXPECT_EQ(stats.links_parsed, 4u);
  EXPECT_EQ(stats.zones_parsed, 3u);
  EXPECT_EQ(stats.skipped(), 0u);
  ASSERT_NE(p.zone("us-east-1c"), nullptr);
  EXPECT_DOUBLE_EQ(p.zone("us-east-1c")->compute_scale, 0.92);
  ASSERT_NE(p.host("cc2.8xlarge"), nullptr);
  EXPECT_DOUBLE_EQ(p.host("cc2.8xlarge")->nic_gbps, 10.0);
  EXPECT_TRUE(p.link(p.zone("us-east-1c")->intra_link).shared);
  EXPECT_FALSE(p.link(p.zone("us-east-1a")->intra_link).shared);
}

TEST(PlatformParser, CommittedExampleFileIsByteIdenticalToTheLibraryText) {
  const std::string path =
      std::string(SOMPI_SOURCE_DIR) + "/examples/platforms/hetero_slow_zone.plat";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << path;
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str(), platform::example_hetero_platform_text());
}

TEST(PlatformParser, UnknownDirectiveIsSkippedAndCounted) {
  PlatformParseStats stats;
  const Platform p = parse("router r1 gbps=1\nhost a gips=1 nic_gbps=1 lat_us=0 disk_mbps=1\n",
                           stats);
  EXPECT_EQ(stats.unknown_directive, 1u);
  EXPECT_EQ(stats.hosts_parsed, 1u);
  EXPECT_EQ(stats.skipped(), 1u);
  EXPECT_NE(p.host("a"), nullptr);
}

TEST(PlatformParser, MissingNameIsSkippedAndCounted) {
  PlatformParseStats stats;
  parse("host\nlink gbps=1\nzone\n", stats);
  // "link gbps=1": the name slot holds a k=v token, i.e. the name is absent.
  EXPECT_EQ(stats.missing_name, 3u);
  EXPECT_EQ(stats.skipped(), 3u);
}

TEST(PlatformParser, MissingRequiredFieldIsSkippedAndCounted) {
  PlatformParseStats stats;
  parse(
      "host a gips=1 nic_gbps=1 lat_us=0\n"  // no disk_mbps
      "link l lat_us=5\n"                    // no gbps
      "zone z intra=l\n",                    // no uplink
      stats);
  EXPECT_EQ(stats.missing_field, 3u);
  EXPECT_EQ(stats.hosts_parsed, 0u);
  EXPECT_EQ(stats.links_parsed, 0u);
  EXPECT_EQ(stats.zones_parsed, 0u);
}

TEST(PlatformParser, BadFieldValuesAreSkippedAndCounted) {
  PlatformParseStats stats;
  parse(
      "host a gips=fast nic_gbps=1 lat_us=0 disk_mbps=1\n"  // unparsable
      "host b gips=-2 nic_gbps=1 lat_us=0 disk_mbps=1\n"    // non-positive
      "host c gips=1 nic_gbps=1 lat_us=0 disk_mbps=1 color=red\n"  // unknown key
      "link l gbps=\n",                                     // dangling '='
      stats);
  EXPECT_EQ(stats.bad_field, 4u);
  EXPECT_EQ(stats.hosts_parsed, 0u);
  EXPECT_EQ(stats.links_parsed, 0u);
}

TEST(PlatformParser, DuplicateNamesFirstWins) {
  PlatformParseStats stats;
  const Platform p = parse(
      "host a gips=1 nic_gbps=1 lat_us=0 disk_mbps=1\n"
      "host a gips=9 nic_gbps=9 lat_us=9 disk_mbps=9\n"
      "link l gbps=1\nlink l gbps=9\n"
      "zone z intra=l uplink=l\nzone z intra=l uplink=l compute_scale=0.5\n",
      stats);
  EXPECT_EQ(stats.duplicate_name, 3u);
  EXPECT_DOUBLE_EQ(p.host("a")->gips_per_core, 1.0);
  EXPECT_DOUBLE_EQ(p.link(0).gbps, 1.0);
  EXPECT_DOUBLE_EQ(p.zone("z")->compute_scale, 1.0);
}

TEST(PlatformParser, ZoneReferencingUndeclaredLinkIsDangling) {
  PlatformParseStats stats;
  const Platform p = parse(
      "link l gbps=1\n"
      "zone ok intra=l uplink=l\n"
      "zone bad intra=l uplink=nosuch\n",
      stats);
  EXPECT_EQ(stats.dangling_link, 1u);
  EXPECT_EQ(stats.zones_parsed, 1u);
  EXPECT_NE(p.zone("ok"), nullptr);
  EXPECT_EQ(p.zone("bad"), nullptr);
}

TEST(PlatformParser, ZonesMayPrecedeTheirLinks) {
  PlatformParseStats stats;
  const Platform p = parse("zone z intra=l uplink=l\nlink l gbps=2\n", stats);
  EXPECT_EQ(stats.skipped(), 0u);
  ASSERT_NE(p.zone("z"), nullptr);
  EXPECT_DOUBLE_EQ(p.link(p.zone("z")->intra_link).gbps, 2.0);
}

TEST(PlatformParser, CommentsAndBlankLinesAreFree) {
  PlatformParseStats stats;
  parse("# full comment\n\n   \nhost a gips=1 nic_gbps=1 lat_us=0 disk_mbps=1 # trailing\n",
        stats);
  EXPECT_EQ(stats.hosts_parsed, 1u);
  EXPECT_EQ(stats.skipped(), 0u);
}

TEST(PlatformParser, ReadPlatformFileThrowsOnUnreadablePath) {
  EXPECT_THROW(platform::read_platform_file("/nonexistent/x.plat"), IoError);
}

// --- PlatformOpCoster: billing mini-MPI sends --------------------------------

TEST(PlatformOpCoster, ChargesEveryEagerSendDeterministically) {
  const Platform hetero = platform::example_hetero_platform();
  const Catalog catalog = paper_catalog();
  const InstanceType& type = catalog.type(0);
  const platform::PlatformOpCoster coster(&hetero, type, "us-east-1c", /*flows=*/4);

  const int ranks = 4;
  const std::size_t payload = 1024;
  mpi::RunResult results[2];
  for (int run = 0; run < 2; ++run) {
    mpi::Runtime runtime(ranks);
    runtime.set_op_coster(&coster);
    runtime.launch([&](mpi::Comm& comm) {
      const std::vector<std::byte> data(payload);
      // A ring: every rank sends exactly one message of `payload` bytes.
      comm.send_bytes((comm.rank() + 1) % comm.size(), 5, data);
      (void)comm.recv_bytes((comm.rank() + comm.size() - 1) % comm.size(), 5);
    });
    results[run] = runtime.join();
    ASSERT_TRUE(results[run].completed);
  }
  const double expected = ranks * coster.message_seconds(payload);
  EXPECT_EQ(bits(results[0].total_stats().model_net_seconds), bits(expected));
  // Determinism contract: identical bits run-to-run.
  EXPECT_EQ(bits(results[1].total_stats().model_net_seconds),
            bits(results[0].total_stats().model_net_seconds));
}

TEST(PlatformOpCoster, NoCosterChargesNothing) {
  const mpi::RunResult result = mpi::Runtime::run(3, [](mpi::Comm& comm) {
    std::vector<int> v{comm.rank()};
    comm.bcast(v, 0);
  });
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(bits(result.total_stats().model_net_seconds), bits(0.0));
}

// --- PlatformTransferModel: billing multi-level checkpoint traffic -----------

TEST(PlatformTransferModel, BillsCacheWritesFlushesAndRestores) {
  const Platform hetero = platform::example_hetero_platform();
  const Catalog catalog = paper_catalog();
  const InstanceType& type = catalog.type(0);
  const platform::PlatformTransferModel transfer(&hetero, type, "us-east-1a",
                                                 /*instances=*/2);

  MemoryStore remote;
  MemoryStore cache;
  MultiLevelConfig config;
  config.cache = &cache;
  config.transfer = &transfer;
  MultiLevelCheckpointer ml(&remote, "run", config);

  const int ranks = 2;
  const std::size_t blob_len = 4096;
  std::uint64_t flushed = 0;
  mpi::RunResult result = mpi::Runtime::run(ranks, [&](mpi::Comm& comm) {
    const std::vector<std::byte> state(blob_len, std::byte{7});
    ml.save(comm, state);
    (void)ml.load_latest(comm);  // served from cache
  });
  ASSERT_TRUE(result.completed);
  flushed = ml.flush_stats().bytes_flushed;
  ASSERT_GT(flushed, 0u);

  const double want_cache = ranks * transfer.cache_write_seconds(blob_len);
  EXPECT_EQ(bits(ml.flush_stats().model_cache_write_seconds), bits(want_cache));
  EXPECT_EQ(bits(ml.flush_stats().model_flush_seconds),
            bits(transfer.flush_seconds(flushed)));
  const double want_restore = ranks * transfer.restore_seconds(blob_len, true);
  EXPECT_EQ(bits(ml.recovery_stats().model_restore_seconds), bits(want_restore));
}

TEST(PlatformTransferModel, NullTransferModelBillsNothing) {
  MemoryStore remote;
  MemoryStore cache;
  MultiLevelConfig config;
  config.cache = &cache;
  MultiLevelCheckpointer ml(&remote, "run", config);
  const mpi::RunResult result = mpi::Runtime::run(2, [&](mpi::Comm& comm) {
    const std::vector<std::byte> state(256, std::byte{1});
    ml.save(comm, state);
    (void)ml.load_latest(comm);
  });
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(bits(ml.flush_stats().model_cache_write_seconds), bits(0.0));
  EXPECT_EQ(bits(ml.flush_stats().model_flush_seconds), bits(0.0));
  EXPECT_EQ(bits(ml.recovery_stats().model_restore_seconds), bits(0.0));
}

}  // namespace
}  // namespace sompi
