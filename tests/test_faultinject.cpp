// Unit tests for the fault-injection subsystem itself (src/faultinject/).
// The scenario-level properties live in tests/fuzz_scenarios.cpp; these pin
// down the building blocks: decision-stream determinism, the fault budget,
// torn-upload semantics, and the InjectedFault/ordinary-error separation.
#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/storage.h"
#include "faultinject/fault_plan.h"
#include "faultinject/faulty_store.h"
#include "faultinject/injector.h"
#include "faultinject/scenario.h"

namespace sompi::fi {
namespace {

FaultPlan plan_with_seed(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  return plan;
}

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

TEST(FaultInjector, SameSeedSameDecisionStream) {
  FaultPlan plan = plan_with_seed(42);
  plan.p_put_error = 0.5;
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(a.fires(Channel::kStoragePut, "ckpt/r0"),
              b.fires(Channel::kStoragePut, "ckpt/r0"))
        << "decision " << i << " diverged between identical injectors";
}

TEST(FaultInjector, DistinctKeysAndChannelsAreIndependentStreams) {
  FaultPlan plan = plan_with_seed(7);
  plan.p_put_error = 0.5;
  plan.p_get_error = 0.5;
  FaultInjector a(plan);
  FaultInjector b(plan);
  // Interleaving ops on other streams must not shift the "ckpt/r0" stream.
  std::vector<bool> plain;
  for (int i = 0; i < 100; ++i) plain.push_back(a.fires(Channel::kStoragePut, "ckpt/r0"));
  std::vector<bool> interleaved;
  for (int i = 0; i < 100; ++i) {
    (void)b.fires(Channel::kStoragePut, "ckpt/r1");
    (void)b.fires(Channel::kStorageGet, "ckpt/r0");
    interleaved.push_back(b.fires(Channel::kStoragePut, "ckpt/r0"));
  }
  EXPECT_EQ(plain, interleaved);
}

TEST(FaultInjector, QuiesceStopsInjectionButKeepsStreamPosition) {
  FaultPlan plan = plan_with_seed(11);
  plan.p_put_error = 1.0;  // every roll wants to fire
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.quiesced());
  int fired = 0;
  for (int i = 0; i < 5; ++i)
    if (inj.fires(Channel::kStoragePut, "k")) ++fired;
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(inj.injected_count(), 5u);

  inj.quiesce();
  EXPECT_TRUE(inj.quiesced());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(inj.fires(Channel::kStoragePut, "k"));
  EXPECT_NO_THROW(inj.protocol_point(Channel::kCkptPreBlob, "k"));
  EXPECT_EQ(inj.injected_count(), 5u);

  // Quiesced streams keep advancing: a live twin consuming the same ops
  // sees the same op indices, so quiescing never shifts later decisions.
  FaultInjector live(plan);
  for (int i = 0; i < 10; ++i) (void)live.fires(Channel::kStoragePut, "k");
  std::uint64_t op_quiesced = 0;
  std::uint64_t op_live = 0;
  (void)inj.fires(Channel::kStoragePut, "k", &op_quiesced);
  (void)live.fires(Channel::kStoragePut, "k", &op_live);
  EXPECT_EQ(op_quiesced, op_live);

  // kSpotKill models the market, not a fault burst: quiesce leaves it alone.
  FaultPlan kills = plan_with_seed(12);
  kills.p_spot_kill = 1.0;
  FaultInjector market(kills);
  market.quiesce();
  EXPECT_TRUE(market.spot_kill("g", 0));
}

TEST(FaultInjector, SpotKillIsStatelessAndPure) {
  FaultPlan plan = plan_with_seed(99);
  plan.p_spot_kill = 0.5;
  FaultInjector a(plan);
  const FaultInjector b(plan);
  bool any_kill = false;
  bool any_survive = false;
  for (std::size_t step = 0; step < 200; ++step) {
    const bool first = a.spot_kill("circle-0", step);
    // Re-asking the same (group, step) must answer identically — the replay
    // engine asks once per simulated run, and runs replay bit-identically.
    EXPECT_EQ(first, a.spot_kill("circle-0", step));
    EXPECT_EQ(first, b.spot_kill("circle-0", step));
    any_kill = any_kill || first;
    any_survive = any_survive || !first;
  }
  EXPECT_TRUE(any_kill);
  EXPECT_TRUE(any_survive);
}

TEST(FaultInjector, TornLengthIsAStrictPrefix) {
  FaultPlan plan = plan_with_seed(5);
  FaultInjector inj(plan);
  for (std::size_t size : {std::size_t{1}, std::size_t{2}, std::size_t{64},
                           std::size_t{4096}})
    for (std::uint64_t op = 0; op < 32; ++op) {
      const std::size_t keep = inj.torn_length("blob", op, size);
      EXPECT_LT(keep, size);
      EXPECT_EQ(keep, inj.torn_length("blob", op, size));
    }
}

TEST(FaultInjector, EpochBumpScheduleIsExact) {
  FaultPlan plan = plan_with_seed(3);
  plan.epoch_bump_solves = {2, 5, 9};
  FaultInjector inj(plan);
  for (std::uint64_t i = 0; i < 12; ++i)
    EXPECT_EQ(inj.epoch_bump_at(i), i == 2 || i == 5 || i == 9) << "solve " << i;
}

TEST(FaultInjector, LatencyAccumulatesWithoutSleeping) {
  FaultPlan plan = plan_with_seed(1);
  plan.latency_ms = 7.5;
  FaultInjector inj(plan);
  inj.add_latency(plan.latency_ms);
  inj.add_latency(plan.latency_ms);
  EXPECT_DOUBLE_EQ(inj.simulated_latency_ms(), 15.0);
}

TEST(InjectedFault, DescribesSeparatesChaosFromRealErrors) {
  const InjectedFault fault(Channel::kStoragePut, "ckpt/r0/v3", 4);
  EXPECT_TRUE(InjectedFault::describes(fault.what()));
  EXPECT_EQ(fault.channel(), Channel::kStoragePut);
  EXPECT_NE(std::string(fault.what()).find("ckpt/r0/v3"), std::string::npos);
  EXPECT_FALSE(InjectedFault::describes("cannot write json results to /tmp/x"));
  EXPECT_FALSE(InjectedFault::describes("deadline exceeded"));
}

TEST(FaultPlan, FromSeedIsDeterministicAndSeedSensitive) {
  const FaultPlan a = FaultPlan::from_seed(1234);
  const FaultPlan b = FaultPlan::from_seed(1234);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.p_put_error, b.p_put_error);
  EXPECT_EQ(a.p_spot_kill, b.p_spot_kill);
  EXPECT_EQ(a.kill_after_ticks, b.kill_after_ticks);
  EXPECT_EQ(a.epoch_bump_solves, b.epoch_bump_solves);
  EXPECT_EQ(a.max_faults, b.max_faults);

  // Different seeds should (essentially always) produce different mixtures.
  bool any_difference = false;
  for (std::uint64_t s = 0; s < 8 && !any_difference; ++s) {
    const FaultPlan other = FaultPlan::from_seed(5678 + s);
    any_difference = other.p_put_error != a.p_put_error ||
                     other.kill_after_ticks != a.kill_after_ticks ||
                     other.max_faults != a.max_faults;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, QuietInjectsNothing) {
  FaultInjector inj(FaultPlan::quiet(77));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.fires(Channel::kStoragePut, "k"));
    EXPECT_FALSE(inj.spot_kill("g", static_cast<std::size_t>(i)));
  }
  EXPECT_EQ(inj.injected_count(), 0u);
}

TEST(FaultyStore, TornPutWritesStrictPrefixThenThrows) {
  FaultPlan plan = plan_with_seed(21);
  plan.p_put_torn = 1.0;
  FaultInjector inj(plan);
  MemoryStore inner;
  FaultyStore store(&inner, &inj);

  const std::vector<std::byte> payload = bytes_of("0123456789abcdef");
  EXPECT_THROW(store.put("blob", payload), InjectedFault);

  const auto torn = inner.get("blob");
  ASSERT_TRUE(torn.has_value());
  ASSERT_LT(torn->size(), payload.size());
  EXPECT_TRUE(std::equal(torn->begin(), torn->end(), payload.begin()));
}

TEST(FaultyStore, PutErrorWritesNothing) {
  FaultPlan plan = plan_with_seed(22);
  plan.p_put_error = 1.0;
  FaultInjector inj(plan);
  MemoryStore inner;
  FaultyStore store(&inner, &inj);
  EXPECT_THROW(store.put("blob", bytes_of("payload")), InjectedFault);
  EXPECT_FALSE(inner.exists("blob"));
}

TEST(FaultyStore, QuietPlanIsATransparentPassthrough) {
  FaultInjector inj(FaultPlan::quiet(1));
  MemoryStore inner;
  FaultyStore store(&inner, &inj);
  const std::vector<std::byte> payload = bytes_of("payload");
  store.put("a/blob", payload);
  EXPECT_TRUE(store.exists("a/blob"));
  const auto back = store.get("a/blob");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  EXPECT_EQ(store.list("a/").size(), 1u);
  store.remove("a/blob");
  EXPECT_FALSE(store.exists("a/blob"));
}

TEST(Scenario, DigestIsReproducible) {
  // One seed per scenario kind (seed % 6 selects the kind).
  for (std::uint64_t seed : {6ull, 7ull, 8ull, 9ull, 10ull, 11ull}) {
    const ScenarioOutcome first = run_scenario(seed);
    const ScenarioOutcome second = run_scenario(seed);
    EXPECT_FALSE(first.failed) << first.kind << ": " << first.detail;
    EXPECT_EQ(first.digest, second.digest) << "seed " << seed;
    EXPECT_EQ(first.kind, second.kind);
  }
}

}  // namespace
}  // namespace sompi::fi
