#include "common/combinatorics.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sompi {
namespace {

TEST(Combinations, CountsMatchBinomial) {
  for (std::size_t n = 1; n <= 8; ++n) {
    for (std::size_t k = 1; k <= n; ++k) {
      std::size_t count = 0;
      for_each_combination(n, k, [&](const std::vector<std::size_t>&) { ++count; });
      EXPECT_DOUBLE_EQ(static_cast<double>(count), binomial(n, k)) << n << " choose " << k;
    }
  }
}

TEST(Combinations, LexicographicAndStrictlyIncreasing) {
  std::vector<std::vector<std::size_t>> seen;
  for_each_combination(4, 2, [&](const std::vector<std::size_t>& c) { seen.push_back(c); });
  const std::vector<std::vector<std::size_t>> expected{{0, 1}, {0, 2}, {0, 3},
                                                       {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(seen, expected);
}

TEST(Combinations, FullAndEmptySubset) {
  std::size_t count = 0;
  for_each_combination(3, 3, [&](const std::vector<std::size_t>& c) {
    ++count;
    EXPECT_EQ(c, (std::vector<std::size_t>{0, 1, 2}));
  });
  EXPECT_EQ(count, 1u);
  count = 0;
  for_each_combination(3, 0, [&](const std::vector<std::size_t>& c) {
    ++count;
    EXPECT_TRUE(c.empty());
  });
  EXPECT_EQ(count, 1u);
}

TEST(Combinations, RejectsKGreaterThanN) {
  EXPECT_THROW(for_each_combination(2, 3, [](const std::vector<std::size_t>&) {}),
               PreconditionError);
}

TEST(Tuples, EnumeratesFullProduct) {
  std::size_t count = 0;
  std::vector<std::size_t> last;
  for_each_tuple({2, 3, 2}, [&](const std::vector<std::size_t>& t) {
    ++count;
    last = t;
    EXPECT_LT(t[0], 2u);
    EXPECT_LT(t[1], 3u);
    EXPECT_LT(t[2], 2u);
  });
  EXPECT_EQ(count, 12u);
  EXPECT_EQ(last, (std::vector<std::size_t>{1, 2, 1}));
}

TEST(Tuples, SinglePosition) {
  std::size_t count = 0;
  for_each_tuple({5}, [&](const std::vector<std::size_t>&) { ++count; });
  EXPECT_EQ(count, 5u);
}

TEST(TupleOdometer, LexOrderAndChangeIndices) {
  // Last digit fastest; changed_from is the lowest index that differs from
  // the previous tuple (0 for the first).
  std::vector<std::vector<std::size_t>> seen;
  std::vector<std::size_t> changes;
  for_each_tuple_lex({2, 3}, [&](const std::vector<std::size_t>& t, std::size_t c) {
    seen.push_back(t);
    changes.push_back(c);
  });
  const std::vector<std::vector<std::size_t>> expected{{0, 0}, {0, 1}, {0, 2},
                                                       {1, 0}, {1, 1}, {1, 2}};
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(changes, (std::vector<std::size_t>{0, 1, 1, 0, 1, 1}));
}

TEST(TupleOdometer, VisitsSameSetAsColexEnumeration) {
  std::vector<std::vector<std::size_t>> lex, colex;
  const std::vector<std::size_t> radices{3, 2, 4};
  for_each_tuple_lex(radices,
                     [&](const std::vector<std::size_t>& t, std::size_t) { lex.push_back(t); });
  for_each_tuple(radices, [&](const std::vector<std::size_t>& t) { colex.push_back(t); });
  std::sort(lex.begin(), lex.end());
  std::sort(colex.begin(), colex.end());
  EXPECT_EQ(lex, colex);
}

TEST(TupleOdometer, SkipFromCutsExactlyTheSubtree) {
  // Cutting at level 0 from {1, 0, 0} skips every {1, *, *} tuple.
  TupleOdometer od({3, 2, 2});
  std::size_t advanced = 0;
  while (!od.done() && od.digits()[0] == 0) {
    od.advance();
    ++advanced;
  }
  EXPECT_EQ(advanced, 4u);  // {0,*,*} exhausted
  EXPECT_EQ(od.digits(), (std::vector<std::size_t>{1, 0, 0}));
  EXPECT_DOUBLE_EQ(od.subtree_size(0), 4.0);
  const std::size_t changed = od.skip_from(0);
  EXPECT_EQ(changed, 0u);
  EXPECT_EQ(od.digits(), (std::vector<std::size_t>{2, 0, 0}));
  // Skipping the last root subtree exhausts the enumeration.
  od.skip_from(0);
  EXPECT_TRUE(od.done());
}

TEST(TupleOdometer, SkipFromDeepestLevelIsAdvance) {
  TupleOdometer a({2, 3});
  TupleOdometer b({2, 3});
  a.advance();
  b.skip_from(1);
  EXPECT_EQ(a.digits(), b.digits());
}

TEST(Binomial, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial(12, 4), 495.0);
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(3, 5), 0.0);
}

}  // namespace
}  // namespace sompi
