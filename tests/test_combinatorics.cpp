#include "common/combinatorics.h"

#include <gtest/gtest.h>

namespace sompi {
namespace {

TEST(Combinations, CountsMatchBinomial) {
  for (std::size_t n = 1; n <= 8; ++n) {
    for (std::size_t k = 1; k <= n; ++k) {
      std::size_t count = 0;
      for_each_combination(n, k, [&](const std::vector<std::size_t>&) { ++count; });
      EXPECT_DOUBLE_EQ(static_cast<double>(count), binomial(n, k)) << n << " choose " << k;
    }
  }
}

TEST(Combinations, LexicographicAndStrictlyIncreasing) {
  std::vector<std::vector<std::size_t>> seen;
  for_each_combination(4, 2, [&](const std::vector<std::size_t>& c) { seen.push_back(c); });
  const std::vector<std::vector<std::size_t>> expected{{0, 1}, {0, 2}, {0, 3},
                                                       {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(seen, expected);
}

TEST(Combinations, FullAndEmptySubset) {
  std::size_t count = 0;
  for_each_combination(3, 3, [&](const std::vector<std::size_t>& c) {
    ++count;
    EXPECT_EQ(c, (std::vector<std::size_t>{0, 1, 2}));
  });
  EXPECT_EQ(count, 1u);
  count = 0;
  for_each_combination(3, 0, [&](const std::vector<std::size_t>& c) {
    ++count;
    EXPECT_TRUE(c.empty());
  });
  EXPECT_EQ(count, 1u);
}

TEST(Combinations, RejectsKGreaterThanN) {
  EXPECT_THROW(for_each_combination(2, 3, [](const std::vector<std::size_t>&) {}),
               PreconditionError);
}

TEST(Tuples, EnumeratesFullProduct) {
  std::size_t count = 0;
  std::vector<std::size_t> last;
  for_each_tuple({2, 3, 2}, [&](const std::vector<std::size_t>& t) {
    ++count;
    last = t;
    EXPECT_LT(t[0], 2u);
    EXPECT_LT(t[1], 3u);
    EXPECT_LT(t[2], 2u);
  });
  EXPECT_EQ(count, 12u);
  EXPECT_EQ(last, (std::vector<std::size_t>{1, 2, 1}));
}

TEST(Tuples, SinglePosition) {
  std::size_t count = 0;
  for_each_tuple({5}, [&](const std::vector<std::size_t>&) { ++count; });
  EXPECT_EQ(count, 5u);
}

TEST(Binomial, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial(12, 4), 495.0);
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(3, 5), 0.0);
}

}  // namespace
}  // namespace sompi
