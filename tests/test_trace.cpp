#include "trace/spot_trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>

#include "common/error.h"

namespace sompi {
namespace {

SpotTrace make_trace() { return SpotTrace(0.5, {1.0, 2.0, 0.5, 3.0, 1.5}); }

TEST(SpotTrace, BasicQueries) {
  const SpotTrace t = make_trace();
  EXPECT_EQ(t.steps(), 5u);
  EXPECT_DOUBLE_EQ(t.step_hours(), 0.5);
  EXPECT_DOUBLE_EQ(t.span_hours(), 2.5);
  EXPECT_DOUBLE_EQ(t.price(3), 3.0);
  EXPECT_DOUBLE_EQ(t.max_price(), 3.0);
  EXPECT_DOUBLE_EQ(t.min_price(), 0.5);
}

TEST(SpotTrace, PriceAtHoursMapsToSteps) {
  const SpotTrace t = make_trace();
  EXPECT_DOUBLE_EQ(t.price_at_hours(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.price_at_hours(0.49), 1.0);
  EXPECT_DOUBLE_EQ(t.price_at_hours(0.5), 2.0);
  // Past the end clamps to the last step.
  EXPECT_DOUBLE_EQ(t.price_at_hours(100.0), 1.5);
}

TEST(SpotTrace, MeanBelowBid) {
  const SpotTrace t = make_trace();
  EXPECT_DOUBLE_EQ(t.mean_below(1.0), 0.75);       // {1.0, 0.5}
  EXPECT_DOUBLE_EQ(t.mean_below(10.0), 8.0 / 5.0); // all
  EXPECT_DOUBLE_EQ(t.mean_below(0.1), 0.0);        // none
}

TEST(SpotTrace, Availability) {
  const SpotTrace t = make_trace();
  EXPECT_DOUBLE_EQ(t.availability(1.5), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(t.availability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.availability(3.0), 1.0);
}

TEST(SpotTrace, FirstExceed) {
  const SpotTrace t = make_trace();
  EXPECT_EQ(t.first_exceed(0, 1.5), 1u);  // price 2.0 at step 1
  EXPECT_EQ(t.first_exceed(2, 1.5), 1u);  // price 3.0 at step 3, offset 1
  EXPECT_EQ(t.first_exceed(0, 3.0), SpotTrace::kNever);
  EXPECT_EQ(t.first_exceed(4, 2.0), SpotTrace::kNever);
}

TEST(SpotTrace, WindowAndTail) {
  const SpotTrace t = make_trace();
  const SpotTrace w = t.window(1, 2);
  EXPECT_EQ(w.steps(), 2u);
  EXPECT_DOUBLE_EQ(w.price(0), 2.0);
  // Window clamps to the end.
  EXPECT_EQ(t.window(4, 10).steps(), 1u);
  // Tail of 1 hour = 2 steps of 0.5 h.
  const SpotTrace tail = t.tail_hours(1.0);
  EXPECT_EQ(tail.steps(), 2u);
  EXPECT_DOUBLE_EQ(tail.price(0), 3.0);
  // A tail longer than the trace returns everything.
  EXPECT_EQ(t.tail_hours(100.0).steps(), 5u);
}

TEST(SpotTrace, Append) {
  SpotTrace t = make_trace();
  t.append(SpotTrace(0.5, {9.0}));
  EXPECT_EQ(t.steps(), 6u);
  EXPECT_DOUBLE_EQ(t.max_price(), 9.0);
  EXPECT_THROW(t.append(SpotTrace(1.0, {1.0})), PreconditionError);
}

TEST(SpotTrace, RejectsNegativePricesAndBadStep) {
  EXPECT_THROW(SpotTrace(0.5, {-1.0}), PreconditionError);
  EXPECT_THROW(SpotTrace(0.0, {1.0}), PreconditionError);
}

// --- Lazy sorted-index queries vs the naive O(n) scans. ---

double naive_mean_below(const SpotTrace& t, double bid) {
  double sum = 0.0;
  std::size_t n = 0;
  for (double p : t.prices())
    if (p <= bid) {
      sum += p;
      ++n;
    }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

TEST(SpotTraceIndex, MeanBelowMatchesNaiveScanBitwise) {
  // The indexed fast path must return the naive scan's exact bits — the
  // failure model's expected prices feed golden-pinned plan fingerprints.
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> price(0.0, 2.0);
  for (int round = 0; round < 20; ++round) {
    std::vector<double> prices(257);
    for (double& p : prices) p = price(rng);
    if (round % 3 == 0)  // duplicate-heavy traces stress the tie handling
      for (std::size_t i = 0; i + 1 < prices.size(); i += 2) prices[i] = prices[i + 1];
    const SpotTrace t(0.25, prices);
    for (int q = 0; q < 50; ++q) {
      // Mix arbitrary bids with exact price points (threshold ties).
      const double bid = q % 2 == 0 ? price(rng) : prices[rng() % prices.size()];
      const double fast = t.mean_below(bid);
      const double naive = naive_mean_below(t, bid);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(fast), std::bit_cast<std::uint64_t>(naive))
          << "round " << round << " bid " << bid;
      EXPECT_DOUBLE_EQ(t.availability(bid),
                       static_cast<double>(std::count_if(
                           prices.begin(), prices.end(),
                           [&](double p) { return p <= bid; })) /
                           static_cast<double>(prices.size()));
    }
    EXPECT_DOUBLE_EQ(t.max_price(), *std::max_element(prices.begin(), prices.end()));
    EXPECT_DOUBLE_EQ(t.min_price(), *std::min_element(prices.begin(), prices.end()));
  }
}

TEST(SpotTraceIndex, AppendInvalidatesTheIndex) {
  SpotTrace t(0.5, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(t.mean_below(1.5), 1.0);  // builds the index
  t.append(SpotTrace(0.5, {0.5}));
  EXPECT_DOUBLE_EQ(t.mean_below(1.5), 0.75);  // sees the appended step
  EXPECT_DOUBLE_EQ(t.max_price(), 2.0);
  EXPECT_DOUBLE_EQ(t.min_price(), 0.5);
}

TEST(SpotTraceIndex, CopiesQueryIndependently) {
  SpotTrace t(0.5, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.mean_below(10.0), 2.0);  // builds the index
  SpotTrace copy = t;                         // copies drop the cache
  EXPECT_DOUBLE_EQ(copy.mean_below(1.0), 1.0);
  copy = SpotTrace(0.5, {5.0});
  EXPECT_DOUBLE_EQ(copy.max_price(), 5.0);
  EXPECT_DOUBLE_EQ(t.mean_below(10.0), 2.0);  // original unaffected
}

TEST(SpotTraceIndex, PointAppendMatchesFreshTraceBitwise) {
  // The feed pipeline's hot path: point appends interleaved with queries.
  // After every append the trace must answer exactly like one constructed
  // from scratch over the same series — stale index or memo bits would leak
  // into the failure model's expected prices and shift plan fingerprints.
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> price(0.0, 2.0);
  std::vector<double> prices;
  SpotTrace live(0.25, {});
  for (int i = 0; i < 200; ++i) {
    const double p = price(rng);
    prices.push_back(p);
    live.append(p);
    if (i % 7 != 0) continue;  // query (and warm the index) on a subset
    const SpotTrace fresh(0.25, prices);
    const double bid = i % 2 == 0 ? price(rng) : prices[rng() % prices.size()];
    EXPECT_EQ(std::bit_cast<std::uint64_t>(live.mean_below(bid)),
              std::bit_cast<std::uint64_t>(fresh.mean_below(bid)))
        << "after append " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(live.availability(bid)),
              std::bit_cast<std::uint64_t>(fresh.availability(bid)));
    EXPECT_DOUBLE_EQ(live.max_price(), fresh.max_price());
    EXPECT_DOUBLE_EQ(live.min_price(), fresh.min_price());
  }
  EXPECT_EQ(live.steps(), prices.size());
}

TEST(SpotTraceIndex, BatchAppendInvalidatesWarmIndex) {
  SpotTrace t(0.5, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(t.mean_below(2.5), 1.5);  // warms index + memo
  t.append(std::vector<double>{0.5, 4.0});
  EXPECT_DOUBLE_EQ(t.mean_below(2.5), (1.0 + 2.0 + 0.5) / 3.0);
  EXPECT_DOUBLE_EQ(t.max_price(), 4.0);
  EXPECT_DOUBLE_EQ(t.min_price(), 0.5);
  EXPECT_THROW(t.append(-0.1), PreconditionError);
  EXPECT_THROW(t.append(std::vector<double>{1.0, -2.0}), PreconditionError);
}

TEST(SpotTrace, HistogramCoversPrices) {
  const SpotTrace t = make_trace();
  const Histogram h = t.histogram(0.0, 4.0, 4);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 1u);  // 0.5
  EXPECT_EQ(h.count(1), 2u);  // 1.0, 1.5
  EXPECT_EQ(h.count(2), 1u);  // 2.0
  EXPECT_EQ(h.count(3), 1u);  // 3.0
}

}  // namespace
}  // namespace sompi
