#include "trace/spot_trace.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace sompi {
namespace {

SpotTrace make_trace() { return SpotTrace(0.5, {1.0, 2.0, 0.5, 3.0, 1.5}); }

TEST(SpotTrace, BasicQueries) {
  const SpotTrace t = make_trace();
  EXPECT_EQ(t.steps(), 5u);
  EXPECT_DOUBLE_EQ(t.step_hours(), 0.5);
  EXPECT_DOUBLE_EQ(t.span_hours(), 2.5);
  EXPECT_DOUBLE_EQ(t.price(3), 3.0);
  EXPECT_DOUBLE_EQ(t.max_price(), 3.0);
  EXPECT_DOUBLE_EQ(t.min_price(), 0.5);
}

TEST(SpotTrace, PriceAtHoursMapsToSteps) {
  const SpotTrace t = make_trace();
  EXPECT_DOUBLE_EQ(t.price_at_hours(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.price_at_hours(0.49), 1.0);
  EXPECT_DOUBLE_EQ(t.price_at_hours(0.5), 2.0);
  // Past the end clamps to the last step.
  EXPECT_DOUBLE_EQ(t.price_at_hours(100.0), 1.5);
}

TEST(SpotTrace, MeanBelowBid) {
  const SpotTrace t = make_trace();
  EXPECT_DOUBLE_EQ(t.mean_below(1.0), 0.75);       // {1.0, 0.5}
  EXPECT_DOUBLE_EQ(t.mean_below(10.0), 8.0 / 5.0); // all
  EXPECT_DOUBLE_EQ(t.mean_below(0.1), 0.0);        // none
}

TEST(SpotTrace, Availability) {
  const SpotTrace t = make_trace();
  EXPECT_DOUBLE_EQ(t.availability(1.5), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(t.availability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.availability(3.0), 1.0);
}

TEST(SpotTrace, FirstExceed) {
  const SpotTrace t = make_trace();
  EXPECT_EQ(t.first_exceed(0, 1.5), 1u);  // price 2.0 at step 1
  EXPECT_EQ(t.first_exceed(2, 1.5), 1u);  // price 3.0 at step 3, offset 1
  EXPECT_EQ(t.first_exceed(0, 3.0), SpotTrace::kNever);
  EXPECT_EQ(t.first_exceed(4, 2.0), SpotTrace::kNever);
}

TEST(SpotTrace, WindowAndTail) {
  const SpotTrace t = make_trace();
  const SpotTrace w = t.window(1, 2);
  EXPECT_EQ(w.steps(), 2u);
  EXPECT_DOUBLE_EQ(w.price(0), 2.0);
  // Window clamps to the end.
  EXPECT_EQ(t.window(4, 10).steps(), 1u);
  // Tail of 1 hour = 2 steps of 0.5 h.
  const SpotTrace tail = t.tail_hours(1.0);
  EXPECT_EQ(tail.steps(), 2u);
  EXPECT_DOUBLE_EQ(tail.price(0), 3.0);
  // A tail longer than the trace returns everything.
  EXPECT_EQ(t.tail_hours(100.0).steps(), 5u);
}

TEST(SpotTrace, Append) {
  SpotTrace t = make_trace();
  t.append(SpotTrace(0.5, {9.0}));
  EXPECT_EQ(t.steps(), 6u);
  EXPECT_DOUBLE_EQ(t.max_price(), 9.0);
  EXPECT_THROW(t.append(SpotTrace(1.0, {1.0})), PreconditionError);
}

TEST(SpotTrace, RejectsNegativePricesAndBadStep) {
  EXPECT_THROW(SpotTrace(0.5, {-1.0}), PreconditionError);
  EXPECT_THROW(SpotTrace(0.0, {1.0}), PreconditionError);
}

TEST(SpotTrace, HistogramCoversPrices) {
  const SpotTrace t = make_trace();
  const Histogram h = t.histogram(0.0, 4.0, 4);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 1u);  // 0.5
  EXPECT_EQ(h.count(1), 2u);  // 1.0, 1.5
  EXPECT_EQ(h.count(2), 1u);  // 2.0
  EXPECT_EQ(h.count(3), 1u);  // 3.0
}

}  // namespace
}  // namespace sompi
