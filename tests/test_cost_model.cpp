#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "core/schedule.h"
#include "trace/generator.h"

namespace sompi {
namespace {

FailureEstimationConfig fe_config(std::size_t horizon) {
  FailureEstimationConfig c;
  c.samples = 4000;
  c.horizon_steps = horizon;
  return c;
}

GroupSetup make_group(const SpotTrace& trace, std::vector<double> bids, int t_steps,
                      double o_steps, double r_steps, int instances,
                      std::size_t horizon = 64) {
  return GroupSetup{
      .spec = {0, 0},
      .instances = instances,
      .t_steps = t_steps,
      .o_steps = o_steps,
      .r_steps = r_steps,
      .failure = FailureModel(trace, std::move(bids), fe_config(horizon)),
  };
}

OnDemandChoice make_od() {
  OnDemandChoice od;
  od.type_index = 0;
  od.t_h = 10.0;
  od.instances = 4;
  od.rate_usd_h = 8.0;
  od.feasible = true;
  return od;
}

SpotTrace periodic_trace(int low_steps, int period, double low = 0.05, double high = 1.0) {
  std::vector<double> prices;
  for (int rep = 0; rep < 2000 / period; ++rep)
    for (int i = 0; i < period; ++i) prices.push_back(i < low_steps ? low : high);
  return SpotTrace(0.25, std::move(prices));
}

TEST(CostModel, ImmortalGroupCostsExactly) {
  // Constant price below the bid: the group always completes; no od cost.
  const SpotTrace trace(0.25, std::vector<double>(500, 0.05));
  const GroupSetup g = make_group(trace, {0.1}, /*T=*/20, /*O=*/0.2, /*R=*/0.4, /*M=*/8);
  const CostModel model({&g}, make_od(), {.step_hours = 0.25, .ratio_bins = 256});

  const GroupSchedule sched(20, 5, 0.2, 0.4);
  const Expectation e = model.evaluate({{0, 5}});
  EXPECT_NEAR(e.p_complete_on_spot, 1.0, 1e-12);
  EXPECT_NEAR(e.od_cost_usd, 0.0, 1e-12);
  EXPECT_NEAR(e.e_min_ratio, 0.0, 1e-12);
  // Spot cost = S × M × wall × h = 0.05 × 8 × 20.6 × 0.25.
  EXPECT_NEAR(e.spot_cost_usd, 0.05 * 8 * sched.wall_duration() * 0.25, 1e-9);
  EXPECT_NEAR(e.spot_time_h, sched.wall_duration() * 0.25, 0.25 + 1e-9);
  EXPECT_NEAR(e.time_h, e.spot_time_h, 1e-12);
}

TEST(CostModel, DoomedGroupFallsBackEntirelyToOnDemand) {
  // Price always above the bid: instant death, full on-demand recovery.
  const SpotTrace trace(0.25, std::vector<double>(500, 0.5));
  const GroupSetup g = make_group(trace, {0.1}, 20, 0.2, 0.4, 8);
  const CostModel model({&g}, make_od(), {.step_hours = 0.25, .ratio_bins = 256});
  const Expectation e = model.evaluate({{0, 20}});
  EXPECT_NEAR(e.p_complete_on_spot, 0.0, 1e-12);
  EXPECT_NEAR(e.spot_cost_usd, 0.0, 1e-12);
  EXPECT_NEAR(e.e_min_ratio, 1.0, 1.0 / 256 + 1e-9);
  EXPECT_NEAR(e.od_cost_usd, 8.0 * 10.0 * e.e_min_ratio, 1e-9);
}

TEST(CostModel, DecomposedMatchesJointExactSingleGroup) {
  const SpotTrace trace = periodic_trace(12, 16);
  const GroupSetup g = make_group(trace, {0.5}, /*T=*/10, /*O=*/0.3, /*R=*/0.6, /*M=*/4);
  const CostModel model({&g}, make_od(), {.step_hours = 0.25, .ratio_bins = 512});
  for (int f : {1, 2, 5, 10}) {
    const Expectation fast = model.evaluate({{0, f}});
    const Expectation exact = model.evaluate_joint_exact({{0, f}});
    EXPECT_NEAR(fast.spot_cost_usd, exact.spot_cost_usd, 1e-9) << "F=" << f;
    EXPECT_NEAR(fast.od_cost_usd, exact.od_cost_usd, exact.od_cost_usd * 0.02 + 0.05)
        << "F=" << f;
    // E[max lifetime] via the integer grid overestimates by < 1 step.
    EXPECT_NEAR(fast.spot_time_h, exact.spot_time_h, 0.25 + 1e-9) << "F=" << f;
    EXPECT_NEAR(fast.p_complete_on_spot, exact.p_complete_on_spot, 1e-9) << "F=" << f;
  }
}

TEST(CostModel, DecomposedMatchesJointExactTwoGroups) {
  Rng rng(7);
  const SpotTrace t1 = periodic_trace(12, 16);
  const SpotTrace t2 =
      generate_trace(regime_params_for(VolatilityClass::kModerate, 0.1), 2000, 0.25, rng);
  const GroupSetup g1 = make_group(t1, {0.2, 0.5}, 8, 0.2, 0.4, 4);
  const GroupSetup g2 = make_group(t2, logarithmic_bid_grid(t2.max_price(), 3), 12, 0.4, 0.8, 2);
  const CostModel model({&g1, &g2}, make_od(), {.step_hours = 0.25, .ratio_bins = 512});

  for (std::size_t b1 : {0u, 1u}) {
    for (std::size_t b2 : {0u, 2u}) {
      const std::vector<GroupDecision> d{{b1, 4}, {b2, 6}};
      const Expectation fast = model.evaluate(d);
      const Expectation exact = model.evaluate_joint_exact(d);
      EXPECT_NEAR(fast.spot_cost_usd, exact.spot_cost_usd, 1e-9);
      EXPECT_NEAR(fast.od_cost_usd, exact.od_cost_usd, exact.od_cost_usd * 0.03 + 0.05);
      EXPECT_NEAR(fast.spot_time_h, exact.spot_time_h, 0.25 + 1e-9);
      EXPECT_NEAR(fast.p_complete_on_spot, exact.p_complete_on_spot, 1e-9);
      EXPECT_NEAR(fast.e_min_ratio, exact.e_min_ratio, 0.02);
    }
  }
}

TEST(CostModel, ReplicationReducesRecoveryExposure) {
  // Two replicas on independent bursty markets → lower E[min Ratio] and a
  // higher completion probability than either alone.
  const SpotTrace t1 = periodic_trace(12, 16);
  const SpotTrace t2 = periodic_trace(13, 18);
  const GroupSetup g1 = make_group(t1, {0.5}, 10, 0.3, 0.5, 4);
  const GroupSetup g2 = make_group(t2, {0.5}, 10, 0.3, 0.5, 4);
  const OnDemandChoice od = make_od();
  const CostModel::Config cfg{.step_hours = 0.25, .ratio_bins = 256};

  const Expectation solo = CostModel({&g1}, od, cfg).evaluate({{0, 5}});
  const Expectation duo = CostModel({&g1, &g2}, od, cfg).evaluate({{0, 5}, {0, 5}});
  EXPECT_LT(duo.e_min_ratio, solo.e_min_ratio);
  EXPECT_GT(duo.p_complete_on_spot, solo.p_complete_on_spot);
  EXPECT_LT(duo.od_cost_usd, solo.od_cost_usd);
  // But replication burns more spot dollars.
  EXPECT_GT(duo.spot_cost_usd, solo.spot_cost_usd);
}

TEST(CostModel, CheckpointsReduceRecoveryRatio) {
  const SpotTrace trace = periodic_trace(12, 16);
  const GroupSetup g = make_group(trace, {0.5}, 12, 0.1, 0.2, 4);
  const CostModel model({&g}, make_od(), {.step_hours = 0.25, .ratio_bins = 256});
  const Expectation without = model.evaluate({{0, 12}});  // F = T: no checkpoints
  const Expectation with = model.evaluate({{0, 3}});
  EXPECT_LT(with.e_min_ratio, without.e_min_ratio);
  EXPECT_LT(with.od_cost_usd, without.od_cost_usd);
}

TEST(CostModel, HigherBidRaisesExpectedSpotPriceButSurvival) {
  Rng rng(9);
  const SpotTrace trace =
      generate_trace(regime_params_for(VolatilityClass::kSpiky, 0.05), 4000, 0.25, rng);
  const auto bids = logarithmic_bid_grid(trace.max_price(), 6);
  const GroupSetup g = make_group(trace, bids, 12, 0.2, 0.4, 4, 64);
  const CostModel model({&g}, make_od(), {.step_hours = 0.25, .ratio_bins = 256});
  Expectation prev = model.evaluate({{0, 4}});
  for (std::size_t b = 1; b < bids.size(); ++b) {
    const Expectation cur = model.evaluate({{b, 4}});
    EXPECT_GE(cur.p_complete_on_spot, prev.p_complete_on_spot - 1e-9);
    prev = cur;
  }
}

TEST(CostModel, RejectsMismatchedDecisions) {
  const SpotTrace trace(0.25, std::vector<double>(100, 0.05));
  const GroupSetup g = make_group(trace, {0.1}, 10, 0.1, 0.1, 1);
  const CostModel model({&g}, make_od(), {});
  EXPECT_THROW(model.evaluate({}), PreconditionError);
  EXPECT_THROW(model.evaluate({{0, 5}, {0, 5}}), PreconditionError);
}

TEST(CostModel, HorizonTooShortIsRejected) {
  const SpotTrace trace(0.25, std::vector<double>(100, 0.05));
  // Horizon 8 < wall duration of T=20.
  const GroupSetup g = make_group(trace, {0.1}, 20, 0.5, 0.5, 1, /*horizon=*/8);
  const CostModel model({&g}, make_od(), {});
  EXPECT_THROW(model.evaluate({{0, 5}}), PreconditionError);
}

}  // namespace
}  // namespace sompi
