// End-to-end pipeline tests: market → optimizer → replay Monte Carlo,
// checking the paper's headline orderings on a controlled synthetic market.
#include <gtest/gtest.h>

#include "baselines/ablations.h"
#include "baselines/baselines.h"
#include "profile/paper_profiles.h"
#include "sim/monte_carlo.h"

namespace sompi {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static OptimizerConfig fast_opt() {
    OptimizerConfig c;
    c.max_candidates = 5;
    c.max_groups = 3;
    c.setup.log_levels = 5;
    c.setup.failure.samples = 600;
    c.ratio_bins = 64;
    return c;
  }

  static SetupConfig fast_setup() {
    SetupConfig s;
    s.failure.samples = 600;
    return s;
  }

  MonteCarloStats run_sompi_static(const AppProfile& app, double deadline) const {
    const SompiOptimizer opt(&catalog_, &est_, fast_opt());
    return mc().run_planned(
        [&](const Market& history, double dl) { return opt.optimize(app, history, dl); },
        deadline);
  }

  MonteCarloRunner mc() const {
    MonteCarloConfig cfg;
    cfg.runs = 12;
    cfg.reserve_h = 72.0;
    return MonteCarloRunner(&market_, {}, cfg);
  }

  double baseline_h(const AppProfile& app) const {
    return OnDemandSelector(&catalog_, &est_).baseline(app).t_h;
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/12.0,
                                   /*step_hours=*/0.25, /*seed=*/99);
};

TEST_F(IntegrationTest, SompiBeatsOnDemandAndMaratheOnCompute) {
  const AppProfile bt = paper_profile("BT");
  const double deadline = baseline_h(bt) * 1.5;

  const BaselineFactory factory(&catalog_, &est_, fast_setup());
  const auto od = mc().run_plan(factory.on_demand_only(bt, deadline), deadline);
  const auto marathe = mc().run_planned(
      [&](const Market& h, double dl) { return factory.marathe(bt, h, dl, false); }, deadline);
  const auto sompi = run_sompi_static(bt, deadline);

  // The paper's headline ordering: SOMPI < Marathe < On-demand.
  EXPECT_LT(sompi.cost.mean, marathe.cost.mean);
  EXPECT_LT(sompi.cost.mean, od.cost.mean);
  // And substantial savings vs on-demand (paper: ~70% average for comp).
  EXPECT_LT(sompi.cost.mean, 0.6 * od.cost.mean);
}

TEST_F(IntegrationTest, SompiMeetsDeadlinesInReplay) {
  const AppProfile lu = paper_profile("LU");
  const double deadline = baseline_h(lu) * 1.5;
  const auto stats = run_sompi_static(lu, deadline);
  EXPECT_LE(stats.deadline_miss_rate, 0.2);
}

TEST_F(IntegrationTest, CombinedFaultToleranceBeatsSingleMechanisms) {
  // §5.4.2: w/o-RP and w/o-CK each lose to full SOMPI — the combined
  // mechanism space lets the optimizer pick whichever guard is cheaper.
  const AppProfile bt = paper_profile("BT");
  const double deadline = baseline_h(bt) * 1.5;

  auto run_with = [&](const OptimizerConfig& base) {
    OptimizerConfig cfg = base;
    cfg.max_candidates = 5;
    cfg.setup.log_levels = 5;
    cfg.setup.failure.samples = 600;
    cfg.ratio_bins = 64;
    AdaptiveConfig ad;
    ad.opt = cfg;
    const AdaptiveEngine engine(&catalog_, &est_, ad);
    MonteCarloConfig mc_cfg;
    mc_cfg.runs = 10;
    mc_cfg.reserve_h = 72.0;
    return MonteCarloRunner(&market_, {}, mc_cfg).run_adaptive(engine, bt, deadline);
  };

  const auto full = run_with(sompi_optimizer_config());
  const auto no_rp = run_with(without_replication_config());
  const auto no_ck = run_with(without_checkpoint_config());
  EXPECT_LE(full.cost.mean, no_rp.cost.mean * 1.10);
  EXPECT_LE(full.cost.mean, no_ck.cost.mean * 1.10);
}

TEST_F(IntegrationTest, SpotInfRidesSpikesOnVolatileMarkets) {
  // §5.3.2 observation (3): "when the price becomes much larger than [the]
  // on-demand instance, the infinite bidding strategy could not save the
  // money." On an all-spiky market Spot-Inf's worst case far exceeds its
  // median, while SOMPI's bid cap bounds the worst case.
  const MarketProfile all_spiky(catalog_.types().size() * catalog_.zones().size(),
                                VolatilityClass::kSpiky);
  const Market volatile_market = generate_market(catalog_, all_spiky, 12.0, 0.25, 7);
  MonteCarloConfig mc_cfg;
  // Enough independent start points that at least one window straddles a
  // spike (the counter-based per-run reseeding makes each draw independent).
  mc_cfg.runs = 60;
  mc_cfg.reserve_h = 72.0;
  const MonteCarloRunner runner(&volatile_market, {}, mc_cfg);

  const AppProfile bt = paper_profile("BT");
  const double deadline = baseline_h(bt) * 1.5;
  const BaselineFactory factory(&catalog_, &est_, fast_setup());
  const auto inf = runner.run_planned(
      [&](const Market& h, double dl) { return factory.spot_inf(bt, h, dl); }, deadline);
  EXPECT_GT(inf.cost.max, 2.0 * inf.cost.p50);
}

TEST_F(IntegrationTest, ModelExpectationTracksReplayMonteCarlo) {
  // §5.4.1 "Accuracy of Model": Formula 1 vs trace-replay Monte Carlo.
  // Like the paper, fit and replay over the same distribution (the same
  // trace): the residual gap is then pure model simplification.
  const AppProfile bt = paper_profile("BT");
  const double deadline = baseline_h(bt) * 1.5;
  const SompiOptimizer opt(&catalog_, &est_, fast_opt());
  const Plan plan = opt.optimize(bt, market_, deadline);
  ASSERT_TRUE(plan.uses_spot());

  MonteCarloConfig cfg;
  cfg.runs = 60;
  cfg.reserve_h = 72.0;
  const MonteCarloRunner runner(&market_, {}, cfg);
  const auto stats = runner.run_plan(plan, deadline);
  // The paper reports relative differences up to ~15%; allow headroom for
  // the coarser Monte Carlo here.
  EXPECT_NEAR(stats.cost.mean, plan.expected.cost_usd,
              0.35 * plan.expected.cost_usd + 1.0);
}

}  // namespace
}  // namespace sompi
