// Concurrency and chaos stress for the wire serving front end — meant to run
// under TSan in CI. Eight clients with eight submitting threads hammer one
// PlanServerLoop; the invariants are the exactly-once completeness law
// (every submitted request id gets exactly one completion — plan, explicit
// shed, or error — nothing lost, nothing duplicated, nothing blocked
// forever) and the equivalence contract (every plan that does come back is
// fingerprint-byte-identical to the in-process oracle), with and without
// seeded connection-drop chaos in the pipes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "faultinject/injector.h"
#include "net/client.h"
#include "net/server.h"
#include "profile/paper_profiles.h"
#include "service/request.h"
#include "service/sharded/sharded_service.h"

namespace sompi::net {
namespace {

class WireStress : public ::testing::Test {
 protected:
  static ServiceConfig fast_config() {
    ServiceConfig c;
    c.cache = {.shards = 4, .capacity = 64};
    c.max_concurrent_solves = 2;
    c.max_queued_solves = 256;
    c.opt.max_candidates = 3;
    c.opt.max_groups = 2;
    c.opt.setup.log_levels = 3;
    c.opt.setup.failure.samples = 400;
    c.opt.ratio_bins = 32;
    return c;
  }

  ShardedConfig tier_config(std::size_t shards) const {
    ShardedConfig c;
    c.shards = shards;
    c.vnodes = 32;
    c.salt = 0xD15EA5EULL;
    c.service = fast_config();
    return c;
  }

  PlanRequest request(double factor) const {
    PlanRequest r;
    r.app = paper_profile("BT");
    r.deadline_h = baseline_h_ * factor;
    return r;
  }

  /// Oracle fingerprints for the distinct factors the stress streams use
  /// (all at epoch 1 — the stress applies no bumps, so every response must
  /// match regardless of interleaving).
  std::map<std::string, std::string> oracle_fingerprints(const std::vector<double>& factors) {
    ShardedPlanService oracle(&catalog_, &est_, market_, tier_config(1));
    std::map<std::string, std::string> want;
    for (const double factor : factors) {
      const PlanRequest r = request(factor);
      want[canonical_key(canonicalized(r))] = plan_fingerprint(*oracle.serve(r).plan);
    }
    return want;
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/3.0,
                                   /*step_hours=*/0.25, /*seed=*/42);
  double baseline_h_ = OnDemandSelector(&catalog_, &est_).baseline(paper_profile("BT")).t_h;
};

TEST_F(WireStress, EightClientsEightThreadsServeOnlyOracleIdenticalPlans) {
  const std::vector<double> factors = {1.30, 1.45, 1.60, 1.75};
  const std::map<std::string, std::string> want = oracle_fingerprints(factors);

  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(4));
  PlanServerLoop server(&tier, {.workers = 4});

  std::vector<std::unique_ptr<PlanClient>> clients;
  for (std::size_t i = 0; i < 8; ++i)
    clients.push_back(std::make_unique<PlanClient>(
        &server, i % 2 == 0 ? ClientMode::kRouted : ClientMode::kSpray));

  std::atomic<std::uint64_t> served{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      // Thread t drives client t: 8 blocking round trips over the shared
      // factor set — every response must be the oracle's plan, whatever the
      // global interleaving of hits, solves and dedup joins.
      PlanClient& client = *clients[t];
      for (std::size_t i = 0; i < 8; ++i) {
        const PlanRequest r = request(factors[(t + i) % factors.size()]);
        const PlanResponse response = client.plan(r);
        if (response.plan == nullptr ||
            plan_fingerprint(*response.plan) != want.at(canonical_key(canonicalized(r)))) {
          failures.fetch_add(1);
          return;
        }
        served.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(served.load(), 64u);
  const WireTierStats stats = server.stats();
  EXPECT_EQ(stats.requests, 64u);
  EXPECT_EQ(stats.sheds, 0u);
  EXPECT_EQ(stats.frames_rejected, 0u);
  EXPECT_EQ(stats.wire_errors, 0u);
  // Half the clients are router-aware and half spray, yet the one-solve
  // economy holds tier-wide: one solve per distinct key, ever.
  EXPECT_EQ(stats.solves, factors.size());
  EXPECT_EQ(stats.duplicate_solves, 0u);
  for (auto& client : clients) EXPECT_EQ(client->codec_stats().rejects(), 0u);
}

TEST_F(WireStress, ConnectionDropChaosNeverBreaksTheCompletenessLaw) {
  const std::vector<double> factors = {1.35, 1.50, 1.65};
  const std::map<std::string, std::string> want = oracle_fingerprints(factors);

  // Chaos on every pipe: drops, torn writes and maximal read fragmentation.
  // Probabilities are high enough that drops reliably happen across 8
  // clients, low enough that some requests survive to verify equivalence.
  fi::FaultPlan plan;
  plan.seed = 0xC0FFEEull;
  plan.p_wire_drop = 0.05;
  plan.p_wire_torn = 0.05;
  plan.p_wire_short_read = 0.5;
  fi::FaultInjector injector(plan);

  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(4));
  PlanServerLoop server(&tier, {.workers = 4, .faults = &injector});

  std::vector<std::unique_ptr<PlanClient>> clients;
  for (std::size_t i = 0; i < 8; ++i)
    clients.push_back(std::make_unique<PlanClient>(&server, ClientMode::kRouted));

  // One submitting thread per client: fire a burst of async submissions,
  // then drain — under chaos a completion may be a plan, a shed, or an
  // error ("connection dropped"), but every id must appear exactly once.
  std::atomic<int> violations{0};
  std::atomic<std::uint64_t> plans_checked{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      PlanClient& client = *clients[t];
      std::map<std::uint64_t, std::string> expect;  // id → oracle fingerprint
      for (std::size_t i = 0; i < 8; ++i) {
        const PlanRequest r = request(factors[(t + i) % factors.size()]);
        expect[client.submit(r)] = want.at(canonical_key(canonicalized(r)));
      }
      client.drain();
      std::set<std::uint64_t> seen;
      for (const ClientCompletion& completion : client.harvest()) {
        if (!seen.insert(completion.request_id).second ||
            expect.count(completion.request_id) == 0) {
          violations.fetch_add(1);  // duplicated or unknown id
          continue;
        }
        if (!completion.error.empty()) continue;  // chaos casualty: allowed
        if (completion.response.plan == nullptr) {
          if (completion.response.outcome != PlanOutcome::kShed) violations.fetch_add(1);
          continue;
        }
        if (plan_fingerprint(*completion.response.plan) !=
            expect.at(completion.request_id)) {
          violations.fetch_add(1);  // survived the wire but came back wrong
          continue;
        }
        plans_checked.fetch_add(1);
      }
      if (seen.size() != expect.size()) violations.fetch_add(1);  // lost ids
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(violations.load(), 0);
  // With p_drop = p_torn = 0.05 on 8 pipes, plenty of requests survive; a
  // zero here would mean the chaos config drowned the test's other half.
  EXPECT_GT(plans_checked.load(), 0u);
  EXPECT_GT(injector.injected_count(), 0u);
}

}  // namespace
}  // namespace sompi::net
