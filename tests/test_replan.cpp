// Warm-start re-optimization tests (DESIGN.md §14): the replan config hash's
// cover/ignore split, the CostTableStore's exact-match invalidation and
// byte-cap eviction, artifact sharing across optimizer instances, the
// warm-vs-cold differential oracle at several thread counts, the
// PlanService re-plan counters, delta-precise feed publication conservation,
// and the MarketBoard's per-group version semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cost_table_store.h"
#include "core/ondemand.h"
#include "core/optimizer.h"
#include "core/setup_builder.h"
#include "feed/pipeline.h"
#include "profile/paper_profiles.h"
#include "service/plan_service.h"
#include "trace/market.h"

namespace sompi {
namespace {

OptimizerConfig tiny_config() {
  OptimizerConfig c;
  c.max_candidates = 3;
  c.max_groups = 2;
  c.setup.log_levels = 3;
  c.setup.failure.samples = 400;
  c.ratio_bins = 32;
  return c;
}

// ---------------------------------------------------------------------------
// replan_config_hash: content knobs in, selection-only knobs out.

class ReplanHashTest : public ::testing::Test {
 protected:
  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  AppProfile app_ = paper_profile("BT");
  double deadline_h_ = OnDemandSelector(&catalog_, &est_).baseline(app_).t_h * 1.5;
  OnDemandChoice od_ = OnDemandSelector(&catalog_, &est_).select(app_, deadline_h_, 0.2);
};

TEST_F(ReplanHashTest, DeterministicAndCoversContentKnobs) {
  const OptimizerConfig base = tiny_config();
  const std::uint64_t h = replan_config_hash(base, app_, od_, deadline_h_);
  EXPECT_EQ(h, replan_config_hash(base, app_, od_, deadline_h_));

  // Every knob that shapes artifact CONTENT must move the hash: the deadline
  // (guard tables), the bid grid, the failure estimator, the integration
  // resolution, and the policy set.
  EXPECT_NE(h, replan_config_hash(base, app_, od_, deadline_h_ * 1.01));
  OptimizerConfig c = base;
  c.setup.log_levels = base.setup.log_levels + 1;  // different bid grid
  EXPECT_NE(h, replan_config_hash(c, app_, od_, deadline_h_));
  c = base;
  c.setup.failure.samples = base.setup.failure.samples + 1;
  EXPECT_NE(h, replan_config_hash(c, app_, od_, deadline_h_));
  c = base;
  c.ratio_bins = base.ratio_bins * 2;
  EXPECT_NE(h, replan_config_hash(c, app_, od_, deadline_h_));
  c = base;
  c.worst_case_guard = !base.worst_case_guard;
  EXPECT_NE(h, replan_config_hash(c, app_, od_, deadline_h_));
  c = base;
  c.ckpt_policies = {CkptPolicy{}, CkptPolicy{}};
  EXPECT_NE(h, replan_config_hash(c, app_, od_, deadline_h_));
}

TEST_F(ReplanHashTest, IgnoresSelectionOnlyKnobs) {
  // Threads, engine, pruning and the candidate/subset bounds change which
  // work runs, never what any per-group artifact contains — two configs
  // differing only there must share a store.
  const OptimizerConfig base = tiny_config();
  const std::uint64_t h = replan_config_hash(base, app_, od_, deadline_h_);
  OptimizerConfig c = base;
  c.threads = 8;
  EXPECT_EQ(h, replan_config_hash(c, app_, od_, deadline_h_));
  c = base;
  c.engine = SearchEngine::kReference;
  EXPECT_EQ(h, replan_config_hash(c, app_, od_, deadline_h_));
  c = base;
  c.prune = !base.prune;
  EXPECT_EQ(h, replan_config_hash(c, app_, od_, deadline_h_));
  c = base;
  c.max_candidates = 1;
  c.max_groups = 1;
  c.enumerate_smaller_subsets = false;
  EXPECT_EQ(h, replan_config_hash(c, app_, od_, deadline_h_));
}

TEST_F(ReplanHashTest, EmptyPolicyListHashesAsDegenerateS3) {
  OptimizerConfig empty = tiny_config();
  empty.ckpt_policies = {};
  OptimizerConfig degenerate = tiny_config();
  degenerate.ckpt_policies = {CkptPolicy{}};
  EXPECT_EQ(replan_config_hash(empty, app_, od_, deadline_h_),
            replan_config_hash(degenerate, app_, od_, deadline_h_));
}

// ---------------------------------------------------------------------------
// CostTableStore: exact-match invalidation and byte-cap eviction.

class CostTableStoreTest : public ::testing::Test {
 protected:
  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/1.0,
                                   /*step_hours=*/0.25, /*seed=*/13);
  AppProfile app_ = paper_profile("BT");

  std::shared_ptr<GroupArtifact> artifact(std::uint64_t version) {
    SetupBuilder builder(&catalog_, &est_);
    SetupConfig cfg = tiny_config().setup;
    cfg.failure.samples = 64;  // keep the Monte-Carlo cheap: only keys matter
    return std::make_shared<GroupArtifact>(version,
                                           builder.build(app_, {0, 0}, market_, cfg));
  }
};

TEST_F(CostTableStoreTest, ExactVersionMatchRequiredInBothDirections) {
  CostTableStore store;
  const CircleGroupSpec spec{0, 0};
  store.store("scope", spec, /*config_hash=*/7, artifact(/*version=*/5));
  EXPECT_NE(store.lookup("scope", spec, 5, 7), nullptr);

  // A NEWER version invalidates, and so does an OLDER one — after a version
  // wraparound/reset the stored stamp is ahead of the live one, and a stale
  // hit there would serve tables for a different history.
  EXPECT_EQ(store.lookup("scope", spec, 6, 7), nullptr);
  CostTableStore::Stats s = store.stats();
  EXPECT_EQ(s.invalidated, 1u);
  EXPECT_EQ(s.entries, 0u);  // mismatch drops the entry
  store.store("scope", spec, 7, artifact(6));
  EXPECT_EQ(store.lookup("scope", spec, 5, 7), nullptr);
  EXPECT_EQ(store.stats().invalidated, 2u);
}

TEST_F(CostTableStoreTest, ConfigHashMismatchInvalidates) {
  // A changed bid grid reaches the store as a changed config hash: the old
  // artifact must not survive even though the history version matches.
  CostTableStore store;
  const CircleGroupSpec spec{0, 0};
  store.store("scope", spec, /*config_hash=*/100, artifact(3));
  EXPECT_EQ(store.lookup("scope", spec, 3, /*config_hash=*/200), nullptr);
  EXPECT_EQ(store.stats().invalidated, 1u);
  EXPECT_EQ(store.lookup("scope", spec, 3, 100), nullptr);  // dropped, plain miss
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST_F(CostTableStoreTest, ByteCapEvictsColdScopesNeverTheTouchedOne) {
  CostTableStore store(CostTableStore::Config{/*max_bytes=*/1});
  store.store("a", {0, 0}, 1, artifact(1));
  store.note_plan("a", std::make_shared<const Plan>());
  EXPECT_EQ(store.stats().scopes, 1u);  // over cap, but the touched scope stays
  EXPECT_EQ(store.stats().evictions, 0u);

  store.store("b", {0, 0}, 1, artifact(1));
  const CostTableStore::Stats s = store.stats();
  EXPECT_EQ(s.scopes, 1u);  // "a" evicted wholesale, "b" survives
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(store.lookup("a", {0, 0}, 1, 1), nullptr);
  EXPECT_EQ(store.last_plan("a"), nullptr);  // the incumbent dies with its scope
  EXPECT_NE(store.lookup("b", {0, 0}, 1, 1), nullptr);
}

TEST_F(CostTableStoreTest, ClearDropsScopesButKeepsMonotoneCounters) {
  CostTableStore store;
  store.store("scope", {0, 0}, 1, artifact(1));
  EXPECT_NE(store.lookup("scope", {0, 0}, 1, 1), nullptr);
  store.clear();
  const CostTableStore::Stats s = store.stats();
  EXPECT_EQ(s.scopes, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.hits, 1u);
}

// ---------------------------------------------------------------------------
// Warm solves: artifact sharing, invalidation granularity, bit-identity.

class WarmStartTest : public ::testing::Test {
 protected:
  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/2.0,
                                   /*step_hours=*/0.25, /*seed=*/42);
  MarketBoard board_{market_};
  AppProfile app_ = paper_profile("BT");
  double deadline_h_ = OnDemandSelector(&catalog_, &est_).baseline(app_).t_h * 1.5;

  ReplanContext context(CostTableStore* store, const MarketSnapshot& snap,
                        std::shared_ptr<const Plan> incumbent = nullptr) const {
    ReplanContext ctx;
    ctx.store = store;
    ctx.scope = "scope";
    ctx.versions = snap.versions;
    ctx.incumbent = std::move(incumbent);
    return ctx;
  }
};

TEST_F(WarmStartTest, ArtifactsSharedAcrossOptimizerConfigInstances) {
  // Two solver instances differing only in a selection-only knob (threads)
  // share one store: the second solve rebuilds nothing and still lands on
  // the bit-identical plan, with the incumbent seed accepted.
  CostTableStore store;
  const MarketSnapshot snap = board_.snapshot();
  OptimizerConfig c1 = tiny_config();
  OptimizerConfig c8 = tiny_config();
  c8.threads = 8;

  const Plan cold = SompiOptimizer(&catalog_, &est_, c1).optimize(app_, *snap.market,
                                                                  deadline_h_);
  ReplanContext fill = context(&store, snap);
  const Plan first = SompiOptimizer(&catalog_, &est_, c1).optimize(app_, *snap.market,
                                                                   deadline_h_, &fill);
  EXPECT_EQ(first.stats.tables_reused, 0u);
  EXPECT_GT(first.stats.tables_built, 0u);
  EXPECT_EQ(first.stats.warm_seeds, 0u);  // no incumbent offered

  ReplanContext warm = context(&store, snap, std::make_shared<const Plan>(first));
  const Plan second = SompiOptimizer(&catalog_, &est_, c8).optimize(app_, *snap.market,
                                                                    deadline_h_, &warm);
  EXPECT_EQ(second.stats.tables_built, 0u);
  EXPECT_EQ(second.stats.tables_reused, first.stats.tables_built);
  EXPECT_EQ(second.stats.warm_seeds, cold.uses_spot() ? 1u : 0u);
  EXPECT_EQ(plan_fingerprint(first), plan_fingerprint(cold));
  EXPECT_EQ(plan_fingerprint(second), plan_fingerprint(cold));
}

TEST_F(WarmStartTest, DirtyGroupsInvalidatePreciselyAndPlansStayColdIdentical) {
  CostTableStore store;
  const SompiOptimizer opt(&catalog_, &est_, tiny_config());

  MarketSnapshot snap = board_.snapshot();
  ReplanContext fill = context(&store, snap);
  const Plan first = opt.optimize(app_, *snap.market, deadline_h_, &fill);
  const std::uint64_t span = first.stats.tables_built;
  ASSERT_GT(span, 0u);

  // One dirty group: at most one table rebuilds (the dirty group, if it is
  // still a kept candidate; a ranking flip can at most swap one slot), the
  // span is conserved, and the plan is bit-identical to the cold solve of
  // the new market.
  board_.ingest({PriceUpdate{{0, 0}, {0.31, 0.29}}});
  snap = board_.snapshot();
  ReplanContext delta = context(&store, snap, std::make_shared<const Plan>(first));
  const Plan warm = opt.optimize(app_, *snap.market, deadline_h_, &delta);
  EXPECT_EQ(warm.stats.tables_reused + warm.stats.tables_built, span);
  EXPECT_GE(warm.stats.tables_reused, span - 1);
  const Plan cold = opt.optimize(app_, *snap.market, deadline_h_);
  EXPECT_EQ(plan_fingerprint(warm), plan_fingerprint(cold));

  // Every group dirty: nothing survives invalidation.
  std::vector<PriceUpdate> all;
  for (const CircleGroupSpec& g : catalog_.all_groups())
    all.push_back(PriceUpdate{g, {0.4}});
  board_.ingest(all);
  snap = board_.snapshot();
  ReplanContext storm = context(&store, snap, std::make_shared<const Plan>(warm));
  const Plan rebuilt = opt.optimize(app_, *snap.market, deadline_h_, &storm);
  EXPECT_EQ(rebuilt.stats.tables_reused, 0u);
  EXPECT_EQ(rebuilt.stats.tables_built, span);
  EXPECT_EQ(plan_fingerprint(rebuilt),
            plan_fingerprint(opt.optimize(app_, *snap.market, deadline_h_)));
}

TEST_F(WarmStartTest, ForcedEpochBumpReusesEveryTable) {
  CostTableStore store;
  const SompiOptimizer opt(&catalog_, &est_, tiny_config());
  MarketSnapshot snap = board_.snapshot();
  ReplanContext fill = context(&store, snap);
  const Plan first = opt.optimize(app_, *snap.market, deadline_h_, &fill);

  // An empty ingest bumps the epoch but moves no history: the versions
  // vector is the SAME object, and a warm re-plan rebuilds nothing.
  const auto versions_before = snap.versions;
  board_.ingest({});
  snap = board_.snapshot();
  EXPECT_EQ(snap.versions.get(), versions_before.get());
  ReplanContext warm = context(&store, snap, std::make_shared<const Plan>(first));
  const Plan replan = opt.optimize(app_, *snap.market, deadline_h_, &warm);
  EXPECT_EQ(replan.stats.tables_built, 0u);
  EXPECT_EQ(replan.stats.tables_reused, first.stats.tables_built);
  EXPECT_EQ(plan_fingerprint(replan), plan_fingerprint(first));
}

// ---------------------------------------------------------------------------
// PlanService: the serve() warm path and its counters.

TEST(PlanServiceReplan, ServeRePlansWarmWithExactCountersAndColdIdentity) {
  Catalog catalog = paper_catalog();
  ExecTimeEstimator est;
  Market market = generate_market(catalog, paper_market_profile(catalog), /*days=*/2.0,
                                  /*step_hours=*/0.25, /*seed=*/42);
  MarketBoard board(market);
  ServiceConfig cfg;
  cfg.cache = {.shards = 2, .capacity = 8};
  cfg.opt = tiny_config();
  PlanService service(&catalog, &est, &board, cfg);

  PlanRequest r;
  r.app = paper_profile("BT");
  r.deadline_h = OnDemandSelector(&catalog, &est).baseline(r.app).t_h * 1.5;

  const PlanResponse first = service.serve(r);
  ASSERT_EQ(first.outcome, PlanOutcome::kSolved);
  const std::uint64_t span = first.plan->stats.tables_built;
  ASSERT_GT(span, 0u);
  EXPECT_EQ(service.stats().replan_count, 0u);  // first solve had no incumbent

  // Forced bump: the re-plan must reuse every table, count as a replan, and
  // still be bit-identical to the cold oracle at the new snapshot.
  board.ingest({});
  const MarketSnapshot snap = board.snapshot();
  const PlanResponse second = service.serve(r);
  ASSERT_EQ(second.outcome, PlanOutcome::kSolved);
  EXPECT_EQ(second.plan->stats.tables_built, 0u);
  EXPECT_EQ(second.plan->stats.tables_reused, span);
  const Plan cold = service.solve(canonicalized(r), *snap.market);
  EXPECT_EQ(plan_fingerprint(*second.plan), plan_fingerprint(cold));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solves, 2u);
  EXPECT_EQ(stats.replan_count, 1u);
  EXPECT_EQ(stats.replan_table_hits, span);
  EXPECT_EQ(stats.replan_table_misses, span);  // the cold fill's builds
  EXPECT_EQ(stats.warm_seeds, second.plan->uses_spot() ? 1u : 0u);
  EXPECT_GT(stats.replan_p99_ms, 0.0);
  EXPECT_GE(service.table_store_stats().hits, stats.replan_table_hits);
}

TEST(PlanServiceReplan, WarmReplanOffFallsBackToColdSolves) {
  Catalog catalog = paper_catalog();
  ExecTimeEstimator est;
  Market market = generate_market(catalog, paper_market_profile(catalog), /*days=*/2.0,
                                  /*step_hours=*/0.25, /*seed=*/42);
  MarketBoard board(market);
  ServiceConfig cfg;
  cfg.cache = {.shards = 2, .capacity = 8};
  cfg.opt = tiny_config();
  cfg.warm_replan = false;
  PlanService service(&catalog, &est, &board, cfg);

  PlanRequest r;
  r.app = paper_profile("BT");
  r.deadline_h = OnDemandSelector(&catalog, &est).baseline(r.app).t_h * 1.5;
  ASSERT_EQ(service.serve(r).outcome, PlanOutcome::kSolved);
  board.ingest({});
  const PlanResponse second = service.serve(r);
  ASSERT_EQ(second.outcome, PlanOutcome::kSolved);
  EXPECT_EQ(second.plan->stats.tables_reused, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.replan_count, 0u);
  EXPECT_EQ(stats.replan_table_hits, 0u);
  EXPECT_EQ(service.table_store_stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Feed delta publication: changed ∪ withheld covers the catalog, silent
// groups' board histories never move, empty deltas bump nothing.

TEST(FeedDeltaConservation, ChangedAndWithheldColumnsPartitionEveryBatch) {
  Catalog catalog{{InstanceType{.name = "t1", .ondemand_usd_h = 1.0}},
                  {Zone{"z1"}, Zone{"z2"}}};
  MarketBoard board{Market(&catalog, {SpotTrace(1.0, {1.0, 2.0}),
                                      SpotTrace(1.0, {1.0, 2.0})})};
  feed::FeedConfig cfg;
  cfg.window_steps = 4;
  cfg.publish_every = 2;
  cfg.late_horizon = 3;
  cfg.estimate = false;
  feed::FeedPipeline pipe(&board, cfg);

  const auto tick = [](std::uint64_t step, std::size_t zone, double price) {
    feed::Tick t;
    t.group = CircleGroupSpec{0, zone};
    t.step = step;
    t.seq = feed::canonical_seq(step, zone, 2);
    t.price = price;
    return t;
  };
  // Group 0 speaks in batches {2,3} and {6,7}; group 1 only at step 2.
  pipe.offer(tick(2, 0, 3.0));
  pipe.offer(tick(2, 1, 7.0));
  pipe.offer(tick(3, 0, 4.0));
  pipe.offer(tick(6, 0, 5.0));
  pipe.offer(tick(7, 0, 6.0));
  pipe.flush();

  const feed::FeedStats s = pipe.stats();
  EXPECT_EQ(s.committed_steps, 6u);  // rows 2..7
  EXPECT_EQ(s.epochs_published, 2u);
  EXPECT_EQ(s.batches_suppressed, 1u);  // rows {4,5}: both columns all-gap
  EXPECT_EQ(s.columns_withheld, 3u);    // {4,5}×2 plus group 1 in {6,7}
  EXPECT_EQ(s.committed_values + s.gaps_filled, s.committed_steps * 2);

  // Conservation: per record the changed set is a non-empty catalog subset,
  // and changed + withheld columns account for every committed batch column.
  const std::vector<feed::PublishRecord> log = pipe.publish_log();
  ASSERT_EQ(log.size(), 2u);
  std::uint64_t accounted = 0;
  for (const feed::PublishRecord& rec : log) {
    ASSERT_FALSE(rec.changed_groups.empty());
    for (const CircleGroupSpec& g : rec.changed_groups) {
      EXPECT_EQ(g.type_index, 0u);
      EXPECT_LT(g.zone_index, 2u);
    }
    accounted += 2 - rec.changed_groups.size();
  }
  EXPECT_EQ(accounted + 2 * s.batches_suppressed, s.columns_withheld);
  EXPECT_EQ(log[0].changed_groups.size(), 2u);  // both groups ticked in {2,3}
  EXPECT_EQ(log[1].changed_groups.size(), 1u);  // only group 0 in {6,7}

  // Board effects: suppressed batch = no epoch; withheld column = history
  // and version frozen. Group 0 was stamped at both publishes, group 1 only
  // at the first.
  const MarketSnapshot snap = board.snapshot();
  EXPECT_EQ(snap.epoch, 3u);  // 1 (prime) + 2 publishes, none for {4,5}
  EXPECT_EQ(snap.market->trace({0, 0}).steps(), 6u);
  EXPECT_EQ(snap.market->trace({0, 1}).steps(), 4u);
  ASSERT_NE(snap.versions, nullptr);
  EXPECT_EQ((*snap.versions)[0], 3u);
  EXPECT_EQ((*snap.versions)[1], 2u);
}

// ---------------------------------------------------------------------------
// MarketBoard version semantics — the warm-start invalidation key.

TEST(MarketBoardVersions, IngestStampsNamedGroupsOnlyAndEmptyIngestKeepsThem) {
  Catalog catalog = paper_catalog();
  Market market = generate_market(catalog, paper_market_profile(catalog), /*days=*/1.0,
                                  /*step_hours=*/0.25, /*seed=*/5);
  MarketBoard board(market);
  const std::size_t zones = catalog.zones().size();

  const auto v1 = board.group_versions();
  for (const std::uint64_t v : *v1) EXPECT_EQ(v, 1u);  // ctor stamps all

  board.ingest({PriceUpdate{{1, 0}, {0.5}}});
  const auto v2 = board.group_versions();
  for (std::size_t i = 0; i < v2->size(); ++i)
    EXPECT_EQ((*v2)[i], i == 1 * zones + 0 ? 2u : 1u);

  // Forced bump: same versions OBJECT — downstream warm re-plans can prove
  // "nothing moved" by pointer identity alone.
  board.ingest({});
  EXPECT_EQ(board.epoch(), 3u);
  EXPECT_EQ(board.group_versions().get(), v2.get());

  board.publish(market);  // reconnect: everything is suspect again
  for (const std::uint64_t v : *board.group_versions()) EXPECT_EQ(v, 4u);
}

}  // namespace
}  // namespace sompi
