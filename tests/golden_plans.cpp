// Golden-file regression harness for the optimizer (ISSUE 3 satellite).
//
// Four canned spot-price markets — fully determined by hard-coded seeds —
// are solved with a fixed optimizer configuration, and the resulting plan
// fingerprints are diffed against committed golden files. Any drift in trace
// generation, the cost model, or the optimizer search shows up as a failing
// tier-1 test with a precise diff, instead of silently shifting costs.
//
//   golden_plans --golden-dir DIR [--update-golden]
//
// Each golden file records the market digest separately from the plan
// fingerprint, so a failure says *which* layer drifted: a changed market
// digest means trace generation moved (the optimizer never saw the old
// inputs); a changed fingerprint under an identical market indicts the
// optimizer/cost-model stack itself.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cloud/catalog.h"
#include "common/rng.h"
#include "core/ondemand.h"
#include "core/optimizer.h"
#include "platform/platform.h"
#include "profile/estimator.h"
#include "profile/paper_profiles.h"
#include "service/request.h"
#include "trace/market.h"

namespace {

using namespace sompi;

struct GoldenCase {
  const char* name;       // golden file stem
  const char* app;        // paper profile name
  double deadline_factor; // × the on-demand baseline time
  double days;            // market history length
  std::uint64_t seed;     // trace-generation (and profile) seed
  bool paper_profile;     // paper volatility zoo vs seeded random profile
  bool multilevel;        // enumerate checkpoint-level policies (DESIGN.md §11)
};

// Four regimes: a calm paper market with a loose deadline (replication is
// cheap), a random market under a moderate deadline, a random market under a
// deadline tight enough to force the worst-case guard to matter, and the
// moderate market re-solved with the multi-level checkpoint policies
// enumerated — pinning which level policy the optimizer picks per group.
constexpr GoldenCase kCases[] = {
    {"paper_calm_bt", "BT", 2.0, 2.0, 11, true, false},
    {"random_mid_sp", "SP", 1.5, 1.5, 1729, false, false},
    {"random_tight_ft", "FT", 1.15, 3.0, 42, false, false},
    {"multilevel_mid_sp", "SP", 1.5, 1.5, 1729, false, true},
};

/// FNV-1a over every price bit-pattern of every group trace, in catalog
/// group order — a stable digest of exactly what the optimizer saw.
std::uint64_t market_digest(const Catalog& catalog, const Market& market) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  for (const CircleGroupSpec& spec : catalog.all_groups()) {
    const SpotTrace& trace = market.trace(spec);
    mix(static_cast<std::uint64_t>(trace.steps()));
    for (const double p : trace.prices()) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(p));
      std::memcpy(&bits, &p, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

/// Small but non-trivial search: two groups over four candidates keeps a
/// full tier-1 sweep under a second while still exercising subset
/// enumeration, φ-tying, and the deadline guard.
OptimizerConfig golden_config() {
  OptimizerConfig config;
  config.max_candidates = 4;
  config.max_groups = 2;
  config.setup.log_levels = 3;
  config.setup.failure.samples = 800;
  config.ratio_bins = 64;
  config.threads = 1;
  return config;
}

std::string render_case_with(const GoldenCase& c, const ExecTimeEstimator& estimator,
                             unsigned threads) {
  const Catalog catalog = paper_catalog();
  Rng rng(c.seed);
  const MarketProfile profile =
      c.paper_profile ? paper_market_profile(catalog) : random_market_profile(catalog, rng);
  const Market market = generate_market(catalog, profile, c.days, 0.25, c.seed);

  const AppProfile app = paper_profile(c.app);
  const double deadline_h =
      OnDemandSelector(&catalog, &estimator).baseline(app).t_h * c.deadline_factor;

  OptimizerConfig config = golden_config();
  config.threads = threads;
  if (c.multilevel)
    config.ckpt_policies = {CkptPolicy::single_s3(), CkptPolicy::cache_s3(),
                            CkptPolicy::cache_xor_s3()};
  const SompiOptimizer optimizer(&catalog, &estimator, config);
  const Plan plan = optimizer.optimize(app, market, deadline_h);

  std::ostringstream os;
  os << "case=" << c.name << "\n";
  os << "market=" << std::hex << market_digest(catalog, market) << std::dec << "\n";
  os << "fingerprint=" << plan_fingerprint(plan) << "\n";
  return os.str();
}

std::string render_case(const GoldenCase& c) {
  return render_case_with(c, ExecTimeEstimator(), 1);
}

std::string golden_path(const std::string& dir, const GoldenCase& c) {
  return dir + "/" + c.name + ".golden";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  out = os.str();
  return true;
}

/// Reports the first differing line — enough to tell a market drift from an
/// optimizer drift at a glance.
void print_diff(const std::string& name, const std::string& want, const std::string& got) {
  std::istringstream ws(want), gs(got);
  std::string wline, gline;
  for (int line = 1;; ++line) {
    const bool w_ok = static_cast<bool>(std::getline(ws, wline));
    const bool g_ok = static_cast<bool>(std::getline(gs, gline));
    if (!w_ok && !g_ok) break;
    if (!w_ok) wline = "<end of file>";
    if (!g_ok) gline = "<end of file>";
    if (wline != gline) {
      std::printf("  %s line %d differs:\n    golden: %s\n    actual: %s\n", name.c_str(),
                  line, wline.c_str(), gline.c_str());
      return;
    }
    if (!w_ok || !g_ok) break;
  }
}

/// Flat-anchor invariant (DESIGN.md §12): re-solving every golden case with
/// the flat-platform estimator must reproduce the catalog-only render byte
/// for byte, at one and at eight worker threads. Returns failures.
int verify_flat_anchor(const GoldenCase& c, const std::string& want) {
  const Catalog catalog = paper_catalog();
  const platform::Platform flat = platform::Platform::flat(catalog);
  const ExecTimeEstimator estimator(&flat);
  int failures = 0;
  for (const unsigned threads : {1u, 8u}) {
    const std::string got = render_case_with(c, estimator, threads);
    if (got != want) {
      std::printf("FAIL %s: flat-platform re-solve drifted (%u threads)\n", c.name, threads);
      print_diff(c.name, want, got);
      ++failures;
    } else {
      std::printf("ok %s (flat platform, %u threads)\n", c.name, threads);
    }
  }
  return failures;
}

[[noreturn]] void usage_error(const char* argv0) {
  std::fprintf(stderr, "usage: %s --golden-dir DIR [--update-golden]\n", argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool update = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--golden-dir") == 0 && i + 1 < argc) {
      dir = argv[++i];
    } else if (std::strcmp(argv[i], "--update-golden") == 0) {
      update = true;
    } else {
      usage_error(argv[0]);
    }
  }
  if (dir.empty()) usage_error(argv[0]);

  int failures = 0;
  for (const GoldenCase& c : kCases) {
    const std::string actual = render_case(c);
    const std::string path = golden_path(dir, c);
    if (update) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "golden_plans: cannot write %s\n", path.c_str());
        return 2;
      }
      out << actual;
      std::printf("updated %s\n", path.c_str());
      continue;
    }
    std::string want;
    if (!read_file(path, want)) {
      std::printf("FAIL %s: golden file missing (%s)\n", c.name, path.c_str());
      std::printf("  regenerate: golden_plans --golden-dir %s --update-golden\n", dir.c_str());
      ++failures;
      continue;
    }
    if (want != actual) {
      std::printf("FAIL %s: plan drifted from golden file\n", c.name);
      print_diff(c.name, want, actual);
      std::printf("  accept the new plan: golden_plans --golden-dir %s --update-golden\n",
                  dir.c_str());
      ++failures;
      continue;
    }
    std::printf("ok %s\n", c.name);
    failures += verify_flat_anchor(c, actual);
  }
  if (failures > 0) {
    std::printf("golden_plans: %d of %zu cases drifted\n", failures, std::size(kCases));
    return 1;
  }
  return 0;
}
