// Shard-equivalence battery for the sharded plan-serving tier
// (src/service/sharded): the consistent-hash router's purity and ring
// stability, the fan-out's replicated epoch publication, and the headline
// differential contract — for any request stream, an N-shard tier's plan
// fingerprints are bit-identical to the single-shard oracle's, its counters
// obey the conservation laws, and a tier-wide burst of identical requests
// solves exactly once. The multi-threaded epoch-churn chaos stress lives in
// test_sharded_stress.cpp.
#include "service/sharded/sharded_service.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "profile/paper_profiles.h"
#include "service/sharded/batch.h"

namespace sompi {
namespace {

// ---------------------------------------------------------------------------
// ShardRouter: pure function, full coverage, ring stability.

std::vector<std::string> synthetic_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    keys.push_back("app=BT|deadline=" + std::to_string(17.0 + 0.001 * static_cast<double>(i)));
  return keys;
}

TEST(ShardRouter, IndependentlyBuiltRoutersAgreeOnEveryKey) {
  const RouterConfig config{.shards = 8, .vnodes = 64, .salt = 0xFEEDULL};
  const ShardRouter a(config);
  const ShardRouter b(config);
  for (const std::string& key : synthetic_keys(2000))
    EXPECT_EQ(a.route(key), b.route(key)) << key;
}

TEST(ShardRouter, EveryShardOwnsASliceOfTheKeySpace) {
  const ShardRouter router({.shards = 8, .vnodes = 64, .salt = 7});
  std::vector<std::size_t> owned(8, 0);
  for (const std::string& key : synthetic_keys(4000)) {
    const std::size_t shard = router.route(key);
    ASSERT_LT(shard, 8u);
    ++owned[shard];
  }
  for (std::size_t s = 0; s < owned.size(); ++s) {
    // 4000 keys over 8 shards: mean 500. vnodes=64 keeps the worst shard
    // well within [1/4x, 4x] of the mean — loose enough to never flake, tight
    // enough to catch a broken ring (one shard owning everything or nothing).
    EXPECT_GT(owned[s], 125u) << "shard " << s << " owns almost nothing";
    EXPECT_LT(owned[s], 2000u) << "shard " << s << " owns almost everything";
  }
}

TEST(ShardRouter, AddingAShardMovesOnlyItsShareOfKeys) {
  const std::vector<std::string> keys = synthetic_keys(4000);
  for (const std::size_t n : {2u, 4u, 8u}) {
    const ShardRouter before({.shards = n, .vnodes = 64, .salt = 99});
    const ShardRouter after({.shards = n + 1, .vnodes = 64, .salt = 99});
    std::size_t moved = 0;
    for (const std::string& key : keys) {
      const std::size_t to = after.route(key);
      if (to != before.route(key)) {
        ++moved;
        // Consistent hashing moves keys only TOWARD the new shard — an old
        // shard's points never change, so no key moves between old shards.
        EXPECT_EQ(to, n) << key;
      }
    }
    // Expectation: K/(n+1) keys move. Allow 2x for hash variance.
    EXPECT_LT(moved, 2 * keys.size() / (n + 1)) << "ring reshuffled at n=" << n;
    EXPECT_GT(moved, 0u) << "new shard owns nothing at n=" << n;
  }
}

TEST(ShardRouter, RemovingAShardIsTheMirrorImage) {
  const std::vector<std::string> keys = synthetic_keys(3000);
  const ShardRouter eight({.shards = 8, .vnodes = 64, .salt = 3});
  const ShardRouter seven({.shards = 7, .vnodes = 64, .salt = 3});
  for (const std::string& key : keys) {
    // Keys not owned by the removed shard (id 7) must not move at all.
    if (eight.route(key) != 7) EXPECT_EQ(seven.route(key), eight.route(key)) << key;
  }
}

TEST(ShardRouter, RejectsDegenerateConfigs) {
  EXPECT_THROW(ShardRouter({.shards = 0, .vnodes = 64, .salt = 0}), PreconditionError);
  EXPECT_THROW(ShardRouter({.shards = 4, .vnodes = 0, .salt = 0}), PreconditionError);
}

// ---------------------------------------------------------------------------
// BoardFanout: replicated epoch publication.

class BoardFanoutTest : public ::testing::Test {
 protected:
  Catalog catalog_ = paper_catalog();
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/2.0,
                                   /*step_hours=*/0.25, /*seed=*/11);
};

TEST_F(BoardFanoutTest, IngestBumpsEveryReplicaToTheSameEpochAndContent) {
  MarketBoard a(market_), b(market_), c(market_);
  BoardFanout fanout({&a, &b, &c});
  EXPECT_EQ(fanout.epoch(), 1u);
  EXPECT_EQ(fanout.replica_count(), 3u);

  const std::uint64_t epoch =
      fanout.ingest({PriceUpdate{{0, 0}, {0.011, 0.022}}, PriceUpdate{{1, 1}, {0.033}}});
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(a.epoch(), 2u);
  EXPECT_EQ(b.epoch(), 2u);
  EXPECT_EQ(c.epoch(), 2u);
  EXPECT_EQ(fanout.publications(), 1u);

  // Bit-identical content on every replica: same trace lengths and prices.
  const auto sa = a.snapshot(), sb = b.snapshot(), sc = c.snapshot();
  const SpotTrace& ta = sa.market->trace({0, 0});
  const SpotTrace& tb = sb.market->trace({0, 0});
  const SpotTrace& tc = sc.market->trace({0, 0});
  ASSERT_EQ(ta.steps(), tb.steps());
  ASSERT_EQ(ta.steps(), tc.steps());
  EXPECT_EQ(ta.price(ta.steps() - 1), tb.price(tb.steps() - 1));
  EXPECT_EQ(ta.price(ta.steps() - 1), tc.price(tc.steps() - 1));
}

TEST_F(BoardFanoutTest, RejectsReplicasAtDivergentEpochs) {
  MarketBoard a(market_), b(market_);
  b.ingest({});  // push b to epoch 2 behind the fan-out's back
  EXPECT_THROW(BoardFanout({&a, &b}), PreconditionError);
  EXPECT_THROW(BoardFanout({}), PreconditionError);
}

// ---------------------------------------------------------------------------
// ShardedPlanService: the differential battery.

class ShardedServiceTest : public ::testing::Test {
 protected:
  static ServiceConfig fast_config() {
    ServiceConfig c;
    c.cache = {.shards = 4, .capacity = 64};
    c.max_concurrent_solves = 2;
    c.max_queued_solves = 64;  // roomy: differential streams must never shed
    c.opt.max_candidates = 3;
    c.opt.max_groups = 2;
    c.opt.setup.log_levels = 3;
    c.opt.setup.failure.samples = 400;
    c.opt.ratio_bins = 32;
    return c;
  }

  ShardedConfig tier_config(std::size_t shards) const {
    ShardedConfig c;
    c.shards = shards;
    c.vnodes = 32;
    c.salt = 0xD15EA5EULL;
    c.service = fast_config();
    return c;
  }

  PlanRequest request(double factor, std::vector<std::string> types = {}) const {
    PlanRequest r;
    r.app = paper_profile("BT");
    r.deadline_h = baseline_h_ * factor;
    r.allowed_types = std::move(types);
    return r;
  }

  // One scripted step of the differential stream: either a request (served
  // routed, or sprayed onto `landing % shard_count`) or an epoch bump.
  struct Step {
    enum Kind { kServe, kSpray, kBump } kind = kServe;
    double factor = 1.5;
    std::size_t landing = 0;
    std::vector<double> prices;  // kBump: appended to group {0, 0}
  };

  struct StreamResult {
    std::vector<std::string> outcomes;      // outcome label per request step
    std::vector<std::string> fingerprints;  // "-" for shed
    ShardedStats stats;
    std::size_t distinct_solves = 0;
  };

  StreamResult run_stream(ShardedPlanService& tier, const std::vector<Step>& steps) const {
    StreamResult result;
    for (const Step& step : steps) {
      if (step.kind == Step::kBump) {
        tier.fanout().ingest({PriceUpdate{{0, 0}, step.prices}});
        continue;
      }
      const PlanRequest r = request(step.factor);
      const PlanResponse response =
          step.kind == Step::kSpray
              ? tier.serve_on(step.landing % tier.shard_count(), r)
              : tier.serve(r);
      result.outcomes.push_back(outcome_label(response.outcome));
      result.fingerprints.push_back(response.plan ? plan_fingerprint(*response.plan) : "-");
    }
    result.stats = tier.stats();
    result.distinct_solves = tier.distinct_solves();
    return result;
  }

  static std::vector<Step> scripted_stream() {
    // Three epochs, six distinct requests, repeats for hits, sprays landing
    // on deliberately wrong shards — every outcome class except shed.
    return {
        {Step::kServe, 1.3}, {Step::kServe, 1.5},  {Step::kSpray, 1.3, 3},
        {Step::kServe, 1.7}, {Step::kSpray, 1.5, 5}, {Step::kServe, 1.3},
        {Step::kBump, 0, 0, {0.021, 0.027}},
        {Step::kServe, 1.3}, {Step::kSpray, 1.7, 1}, {Step::kServe, 1.9},
        {Step::kSpray, 1.9, 6}, {Step::kServe, 1.5},
        {Step::kBump, 0, 0, {0.024}},
        {Step::kSpray, 1.3, 2}, {Step::kServe, 1.9}, {Step::kServe, 1.3},
    };
  }

  Catalog catalog_ = paper_catalog();
  ExecTimeEstimator est_;
  Market market_ = generate_market(catalog_, paper_market_profile(catalog_), /*days=*/3.0,
                                   /*step_hours=*/0.25, /*seed=*/42);
  double baseline_h_ = OnDemandSelector(&catalog_, &est_).baseline(paper_profile("BT")).t_h;
};

TEST_F(ShardedServiceTest, FingerprintsAndCountersMatchTheSingleShardOracle) {
  const std::vector<Step> steps = scripted_stream();
  ShardedPlanService oracle(&catalog_, &est_, market_, tier_config(1));
  const StreamResult want = run_stream(oracle, steps);
  ASSERT_EQ(want.stats.total.sheds, 0u);

  for (const std::size_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedPlanService tier(&catalog_, &est_, market_, tier_config(shards));
    const StreamResult got = run_stream(tier, steps);

    // The headline invariant: bit-identical fingerprints, step for step.
    EXPECT_EQ(got.fingerprints, want.fingerprints);
    // Sequential stream + global-budget cache split: even the hit/solve
    // classification per step is identical, not just the plans.
    EXPECT_EQ(got.outcomes, want.outcomes);

    EXPECT_EQ(got.stats.total.requests, want.stats.total.requests);
    EXPECT_EQ(got.stats.total.hits, want.stats.total.hits);
    EXPECT_EQ(got.stats.total.solves, want.stats.total.solves);
    EXPECT_EQ(got.stats.total.sheds, 0u);
    EXPECT_EQ(got.distinct_solves, want.distinct_solves);
    EXPECT_EQ(got.stats.duplicate_solves, 0u);

    // Conservation: per-shard counters sum to the aggregate, and the four
    // outcome classes partition the requests.
    std::uint64_t sum_requests = 0, sum_hits = 0, sum_solves = 0, sum_joins = 0,
                  sum_sheds = 0;
    for (const ServiceStats& shard : got.stats.per_shard) {
      sum_requests += shard.requests;
      sum_hits += shard.hits;
      sum_solves += shard.solves;
      sum_joins += shard.dedup_joins;
      sum_sheds += shard.sheds;
    }
    EXPECT_EQ(sum_requests, got.stats.total.requests);
    EXPECT_EQ(sum_hits + sum_solves + sum_joins + sum_sheds, sum_requests);
    EXPECT_EQ(got.stats.routed + got.stats.sprayed, got.stats.total.requests);

    // Every replica ended on the oracle's epoch.
    EXPECT_EQ(got.stats.total.epoch, want.stats.total.epoch);
    for (std::size_t i = 0; i < tier.shard_count(); ++i)
      EXPECT_EQ(tier.board(i).epoch(), want.stats.total.epoch);
  }
}

TEST_F(ShardedServiceTest, SingleShardTierMatchesABarePlanService) {
  MarketBoard board(market_);
  PlanService bare(&catalog_, &est_, &board, fast_config());
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(1));

  for (const double factor : {1.3, 1.5, 1.3, 1.7, 1.5}) {
    const PlanResponse a = bare.serve(request(factor));
    const PlanResponse b = tier.serve(request(factor));
    EXPECT_EQ(a.outcome, b.outcome);
    ASSERT_NE(a.plan, nullptr);
    ASSERT_NE(b.plan, nullptr);
    EXPECT_EQ(plan_fingerprint(*a.plan), plan_fingerprint(*b.plan));
  }
  EXPECT_EQ(bare.stats().solves, tier.stats().total.solves);
  EXPECT_EQ(bare.stats().hits, tier.stats().total.hits);
}

TEST_F(ShardedServiceTest, RequestsRouteToTheirRingHomeAndOnlyThere) {
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(8));
  const PlanRequest r = request(1.4);
  const std::size_t home = tier.home_shard(r);
  ASSERT_LT(home, 8u);
  EXPECT_EQ(home, tier.home_shard_for_key(canonical_key(canonicalized(r))));

  (void)tier.serve(r);
  (void)tier.serve_on((home + 3) % 8, r);  // sprayed onto the wrong shard
  const ShardedStats stats = tier.stats();
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(stats.per_shard[i].requests, i == home ? 2u : 0u) << "shard " << i;
  EXPECT_EQ(stats.forwarded, 1u);
  EXPECT_EQ(stats.total.solves, 1u);
  EXPECT_EQ(stats.total.hits, 1u);
}

TEST_F(ShardedServiceTest, ConcurrentIdenticalBurstAcrossAllShardsSolvesOnce) {
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(8));

  // One identical request lands on every shard simultaneously — the dedup
  // tier must collapse the whole burst onto a single optimizer run.
  std::vector<PlanResponse> responses(8);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (std::size_t i = 0; i < 8; ++i)
    threads.emplace_back([&, i] { responses[i] = tier.serve_on(i, request(1.45)); });
  for (std::thread& t : threads) t.join();

  const ShardedStats stats = tier.stats();
  EXPECT_EQ(stats.total.requests, 8u);
  EXPECT_EQ(stats.total.solves, 1u);
  EXPECT_EQ(stats.total.sheds, 0u);
  EXPECT_EQ(stats.total.hits + stats.total.dedup_joins, 7u);
  EXPECT_EQ(stats.duplicate_solves, 0u);
  EXPECT_EQ(tier.distinct_solves(), 1u);
  EXPECT_EQ(stats.sprayed, 8u);
  EXPECT_EQ(stats.forwarded, 7u);  // exactly one landing was already home

  ASSERT_NE(responses[0].plan, nullptr);
  const std::string fp = plan_fingerprint(*responses[0].plan);
  for (const PlanResponse& r : responses) {
    ASSERT_NE(r.plan, nullptr);
    EXPECT_EQ(plan_fingerprint(*r.plan), fp);
  }
}

TEST_F(ShardedServiceTest, TierCacheSplitNeverShrinksBelowTheTierBudget) {
  // The split rule itself: ceil, never floor, never zero.
  EXPECT_EQ(ShardedPlanService::per_shard_cache_capacity(64, 8), 8u);
  EXPECT_EQ(ShardedPlanService::per_shard_cache_capacity(65, 8), 9u);
  EXPECT_EQ(ShardedPlanService::per_shard_cache_capacity(3, 8), 1u);
  EXPECT_EQ(ShardedPlanService::per_shard_cache_capacity(64, 1), 64u);

  ShardedConfig config = tier_config(8);
  ShardedPlanService tier(&catalog_, &est_, market_, config);
  for (std::size_t i = 0; i < tier.shard_count(); ++i)
    EXPECT_EQ(tier.shard(i).config().cache.capacity,
              ShardedPlanService::per_shard_cache_capacity(config.service.cache.capacity, 8));
}

TEST_F(ShardedServiceTest, WipedShardReSolvesToTheIdenticalPlan) {
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(4));
  const PlanRequest r = request(1.55);
  const PlanResponse first = tier.serve(r);
  ASSERT_EQ(first.outcome, PlanOutcome::kSolved);

  const std::size_t home = tier.home_shard(r);
  EXPECT_GE(tier.shard(home).wipe_cache(), 1u);

  const PlanResponse again = tier.serve(r);
  EXPECT_EQ(again.outcome, PlanOutcome::kSolved);  // cache gone, solves again
  EXPECT_EQ(plan_fingerprint(*again.plan), plan_fingerprint(*first.plan));
  // The wipe legitimately broke the one-solve economy — the ledger says so.
  EXPECT_EQ(tier.duplicate_solves(), 1u);
}

TEST_F(ShardedServiceTest, RejectsZeroShardsAndOutOfRangeLanding) {
  EXPECT_THROW(ShardedPlanService(&catalog_, &est_, market_, tier_config(0)),
               PreconditionError);
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(2));
  EXPECT_THROW(tier.serve_on(2, request(1.5)), PreconditionError);
}

// ---------------------------------------------------------------------------
// AsyncBatchService: basic semantics (the concurrent completeness stress is
// in test_sharded_stress.cpp).

TEST_F(ShardedServiceTest, BatchSubmitHarvestReturnsEveryTicketOnce) {
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(4));
  AsyncBatchService batch(&tier, {.workers = 3, .queue_capacity = 16, .spray = true});

  std::vector<PlanRequest> requests;
  for (int i = 0; i < 12; ++i) requests.push_back(request(1.3 + 0.1 * (i % 3)));
  const std::vector<std::uint64_t> tickets = batch.submit_batch(requests);
  ASSERT_EQ(tickets.size(), 12u);

  batch.drain();
  const std::vector<BatchCompletion> done = batch.harvest();
  ASSERT_EQ(done.size(), 12u);

  std::set<std::uint64_t> seen;
  for (const BatchCompletion& c : done) {
    EXPECT_TRUE(seen.insert(c.ticket).second) << "ticket harvested twice";
    EXPECT_TRUE(c.error.empty()) << c.error;
    ASSERT_NE(c.response.plan, nullptr);
  }
  for (const std::uint64_t t : tickets) EXPECT_EQ(seen.count(t), 1u);

  EXPECT_TRUE(batch.harvest().empty());  // nothing left behind
  const AsyncBatchService::Stats stats = batch.stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.harvested, 12u);
  EXPECT_EQ(stats.errors, 0u);
  // Three distinct requests over a shared tier: the dedup economy holds end
  // to end even through the batch front door.
  EXPECT_EQ(tier.stats().total.solves, 3u);
  EXPECT_EQ(tier.duplicate_solves(), 0u);
}

TEST_F(ShardedServiceTest, BatchReportsSolverFailuresAsErrorCompletions) {
  ShardedPlanService tier(&catalog_, &est_, market_, tier_config(2));
  AsyncBatchService batch(&tier, {.workers = 2, .queue_capacity = 8});

  PlanRequest bad = request(1.5);
  bad.allowed_types = {"no-such-type"};  // validation throws inside serve()
  const std::uint64_t bad_ticket = batch.submit(bad);
  const std::uint64_t good_ticket = batch.submit(request(1.5));

  batch.drain();
  const std::vector<BatchCompletion> done = batch.harvest();
  ASSERT_EQ(done.size(), 2u);
  for (const BatchCompletion& c : done) {
    if (c.ticket == bad_ticket) {
      EXPECT_FALSE(c.error.empty());
      EXPECT_EQ(c.response.plan, nullptr);
    } else {
      EXPECT_EQ(c.ticket, good_ticket);
      EXPECT_TRUE(c.error.empty());
      EXPECT_NE(c.response.plan, nullptr);
    }
  }
  EXPECT_EQ(batch.stats().errors, 1u);
  batch.stop();
  EXPECT_THROW(batch.submit(request(1.5)), PreconditionError);
}

}  // namespace
}  // namespace sompi
