// Declarative platform model (DESIGN.md §12) — the SMPI/surf-style answer to
// "where do kernel time, checkpoint overhead and restart cost come from?".
//
// The paper treats every instance type as a catalog row of flat constants
// (gips/core, NIC Gbit/s, latency, disk MB/s). SimGrid's SMPI shows the
// alternative: describe the *platform* — hosts with flop rates and disk
// bandwidth, links with latency/bandwidth, a zone topology with fair-share
// contention on shared links — and derive every timing from it. This module
// is that description plus the derivation:
//
//   Host      — per-instance-type capability template (rates only; the
//               catalog keeps ownership of cores and prices).
//   Link      — latency + bandwidth; `shared` links split bandwidth fairly
//               among concurrent flows (SimGrid's MAX-MIN fair sharing,
//               restricted to the symmetric case, where it is exact).
//   ZoneNode  — one availability zone: an intra-zone fabric link for MPI
//               traffic, an uplink for checkpoint/object-storage traffic,
//               and a compute derating factor.
//
//   Platform::effective(type, zone, flows) folds the three into the
//   EffectiveSpec the execution-time estimator consumes.
//
// Flat-anchor invariant: Platform::flat(catalog) reproduces the catalog
// constants BIT-EXACTLY — effective() returns doubles identical to the
// InstanceType fields (the folds are ×1.0, +0.0 and min-against-huge, all
// exact in IEEE arithmetic), so every golden plan, fuzz digest and bench
// counter is unchanged with the platform layer active. Heterogeneity is
// opt-in per zone/host, never a tax on the flat path.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "cloud/catalog.h"

namespace sompi::platform {

/// Capability template for one instance type. Rates only: core counts and
/// prices stay in the Catalog so M_i and billing cannot drift from the
/// platform description.
struct Host {
  std::string type;            ///< catalog instance-type name
  double gips_per_core = 1.0;  ///< flop (instruction) rate per core
  double nic_gbps = 1.0;       ///< per-instance NIC bandwidth
  double nic_latency_us = 0.0; ///< one-way small-message latency
  double disk_mbps = 50.0;     ///< local disk bandwidth (checkpoint cache)
};

/// One network link. A `shared` link splits its bandwidth fairly among the
/// concurrent flows crossing it; a dedicated link gives every flow the full
/// rate (a switch with per-port capacity).
struct Link {
  std::string name;
  double gbps = 1.0;
  double latency_us = 0.0;
  bool shared = false;
};

/// One availability zone of the topology.
struct ZoneNode {
  std::string name;
  std::size_t intra_link = 0;  ///< index into links(): instance<->instance
  std::size_t uplink = 0;      ///< index into links(): zone <-> object store
  double compute_scale = 1.0;  ///< host derating in this zone (1.0 = none)
};

/// What one instance of a type effectively gets in a zone once the zone's
/// links and derating are folded in. Field-compatible with the InstanceType
/// capability columns so the estimator arithmetic is shared verbatim.
struct EffectiveSpec {
  int cores = 1;
  double gips_per_core = 1.0;
  double net_gbps = 1.0;        ///< intra-zone effective bandwidth per instance
  double net_latency_us = 0.0;  ///< NIC + fabric one-way latency
  double io_mbps = 50.0;        ///< local disk bandwidth
  double uplink_gbps = 1.0;     ///< per-instance share of the storage path
  /// Storage-request latency: the uplink link's latency alone (the NIC's
  /// microseconds are noise against an object-store round trip), so the flat
  /// anchor's zero-latency link folds to exactly 0.0.
  double uplink_latency_us = 0.0;
};

class Platform {
 public:
  Platform(std::vector<Host> hosts, std::vector<Link> links, std::vector<ZoneNode> zones);

  /// The regression anchor: one host per catalog type copying its capability
  /// columns, one dedicated infinite-bandwidth zero-latency link, every
  /// catalog zone wired to it. effective() is bit-exact to the catalog.
  static Platform flat(const Catalog& catalog);

  const std::vector<Host>& hosts() const { return hosts_; }
  const std::vector<Link>& links() const { return links_; }
  const std::vector<ZoneNode>& zones() const { return zones_; }

  /// Host template for a type name; nullptr when the platform does not model
  /// it (effective() then falls back to the catalog columns).
  const Host* host(std::string_view type_name) const;
  /// Zone by name; nullptr when absent (effective() falls back to flat).
  const ZoneNode* zone(std::string_view zone_name) const;
  const Link& link(std::size_t index) const;

  /// Effective capability of one instance of `type` in `zone_name` when
  /// `flows` concurrent flows (normally the group's instance count) share
  /// the zone's links. Unknown types/zones fall back to the catalog columns
  /// — a partial platform degrades to flat, never throws.
  EffectiveSpec effective(const InstanceType& type, std::string_view zone_name,
                          int flows) const;

  /// Fair-share bandwidth one of `flows` concurrent flows gets through a
  /// link, before the NIC clamp.
  static double link_share_gbps(const Link& link, int flows);

 private:
  std::vector<Host> hosts_;
  std::vector<Link> links_;
  std::vector<ZoneNode> zones_;
};

}  // namespace sompi::platform
