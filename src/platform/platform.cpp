#include "platform/platform.h"

#include <algorithm>

#include "common/error.h"

namespace sompi::platform {

namespace {

/// Effectively-infinite link rate for the flat anchor: large enough that the
/// fair share of any realistic flow count still exceeds every NIC (so the
/// min() clamp returns the NIC rate bit-exactly), small enough that the
/// division cannot overflow.
constexpr double kUnconstrainedGbps = 1e18;

}  // namespace

Platform::Platform(std::vector<Host> hosts, std::vector<Link> links,
                   std::vector<ZoneNode> zones)
    : hosts_(std::move(hosts)), links_(std::move(links)), zones_(std::move(zones)) {
  for (const Host& h : hosts_) {
    SOMPI_REQUIRE_MSG(!h.type.empty(), "platform host needs a type name");
    SOMPI_REQUIRE_MSG(h.gips_per_core > 0.0 && h.nic_gbps > 0.0 && h.disk_mbps > 0.0 &&
                          h.nic_latency_us >= 0.0,
                      "platform host rates must be positive: " + h.type);
  }
  for (const Link& l : links_) {
    SOMPI_REQUIRE_MSG(!l.name.empty(), "platform link needs a name");
    SOMPI_REQUIRE_MSG(l.gbps > 0.0 && l.latency_us >= 0.0,
                      "platform link rates must be positive: " + l.name);
  }
  for (const ZoneNode& z : zones_) {
    SOMPI_REQUIRE_MSG(!z.name.empty(), "platform zone needs a name");
    SOMPI_REQUIRE_MSG(z.intra_link < links_.size() && z.uplink < links_.size(),
                      "platform zone references an unknown link: " + z.name);
    SOMPI_REQUIRE_MSG(z.compute_scale > 0.0,
                      "platform zone compute_scale must be positive: " + z.name);
  }
}

Platform Platform::flat(const Catalog& catalog) {
  std::vector<Host> hosts;
  hosts.reserve(catalog.types().size());
  for (const InstanceType& t : catalog.types())
    hosts.push_back(Host{t.name, t.gips_per_core, t.net_gbps, t.net_latency_us, t.io_mbps});
  std::vector<Link> links = {Link{"flat", kUnconstrainedGbps, 0.0, /*shared=*/false}};
  std::vector<ZoneNode> zones;
  zones.reserve(catalog.zones().size());
  for (const Zone& z : catalog.zones()) zones.push_back(ZoneNode{z.name, 0, 0, 1.0});
  return Platform(std::move(hosts), std::move(links), std::move(zones));
}

const Host* Platform::host(std::string_view type_name) const {
  for (const Host& h : hosts_)
    if (h.type == type_name) return &h;
  return nullptr;
}

const ZoneNode* Platform::zone(std::string_view zone_name) const {
  for (const ZoneNode& z : zones_)
    if (z.name == zone_name) return &z;
  return nullptr;
}

const Link& Platform::link(std::size_t index) const {
  SOMPI_REQUIRE(index < links_.size());
  return links_[index];
}

double Platform::link_share_gbps(const Link& link, int flows) {
  SOMPI_REQUIRE(flows >= 1);
  return link.shared ? link.gbps / static_cast<double>(flows) : link.gbps;
}

EffectiveSpec Platform::effective(const InstanceType& type, std::string_view zone_name,
                                  int flows) const {
  SOMPI_REQUIRE(flows >= 1);
  const Host* h = host(type.name);
  EffectiveSpec s;
  s.cores = type.cores;  // topology-independent; the catalog owns it
  const double gips = h != nullptr ? h->gips_per_core : type.gips_per_core;
  const double nic = h != nullptr ? h->nic_gbps : type.net_gbps;
  const double lat = h != nullptr ? h->nic_latency_us : type.net_latency_us;
  s.io_mbps = h != nullptr ? h->disk_mbps : type.io_mbps;

  const ZoneNode* z = zone(zone_name);
  if (z == nullptr) {
    // Unmodeled zone: the flat view of the host rates.
    s.gips_per_core = gips;
    s.net_gbps = nic;
    s.net_latency_us = lat;
    s.uplink_gbps = nic;
    s.uplink_latency_us = 0.0;
    return s;
  }

  // Every fold below is bit-exact for the flat anchor: ×1.0, +0.0 and
  // min(x, huge) all return their operand unchanged in IEEE arithmetic.
  s.gips_per_core = gips * z->compute_scale;
  const Link& intra = link(z->intra_link);
  s.net_gbps = std::min(nic, link_share_gbps(intra, flows));
  s.net_latency_us = lat + intra.latency_us;
  const Link& up = link(z->uplink);
  s.uplink_gbps = std::min(nic, link_share_gbps(up, flows));
  s.uplink_latency_us = up.latency_us;
  return s;
}

}  // namespace sompi::platform
