// Deterministic op-level cost models over a Platform (DESIGN.md §12).
//
// ComputeModel and NetworkModel turn the declarative platform description
// into per-operation timings: kernel seconds from host flop rates, mini-MPI
// point-to-point and tree-shaped collective costs from link latency +
// bytes/bandwidth with fair-share contention, and checkpoint I/O from the
// snapshot bytes pushed through the host disk (cache level) or the zone
// uplink (S3-sim level). Everything is a pure function of (platform, type,
// zone, sizes) — no clocks, no randomness — so the numbers are bit-identical
// across machines and thread counts and can be gated exactly in CI.
//
// Two adapters feed the models into the execution layers:
//   PlatformOpCoster     — mpi::OpCoster: charges each eager p2p message to
//                          the sending rank's modeled-network-seconds counter.
//   PlatformTransferModel — CkptTransferModel: bills MultiLevelCheckpointer
//                          cache writes, remote flushes and restores.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "checkpoint/multilevel.h"
#include "cloud/catalog.h"
#include "minimpi/types.h"
#include "platform/platform.h"

namespace sompi::platform {

/// Kernel (CPU) time through the platform's host flop rates.
class ComputeModel {
 public:
  /// The platform is borrowed and must outlive the model.
  explicit ComputeModel(const Platform* platform);

  /// Seconds to execute `instr_gi` giga-instructions spread over `processes`
  /// ranks, one rank per core of `type` in `zone`.
  double kernel_seconds(const InstanceType& type, std::string_view zone, double instr_gi,
                        int processes) const;

 private:
  const Platform* platform_;
};

/// Network + checkpoint-I/O time through the platform's links.
class NetworkModel {
 public:
  /// The platform is borrowed and must outlive the model.
  explicit NetworkModel(const Platform* platform);

  const Platform& platform() const { return *platform_; }

  /// One eager point-to-point message of `bytes` between two instances of
  /// `type` in `zone`, with `flows` concurrent flows sharing the fabric:
  /// latency + bytes/bandwidth, the bandwidth fair-shared on shared links.
  double p2p_seconds(const InstanceType& type, std::string_view zone, std::size_t bytes,
                     int flows = 1) const;

  /// Tree-shaped broadcast to `ranks` participants: ceil(log2 n) rounds; in
  /// round r, min(2^r, n - 2^r) transfers cross the fabric concurrently and
  /// contend on shared links.
  double bcast_seconds(const InstanceType& type, std::string_view zone, std::size_t bytes,
                       int ranks) const;

  /// Tree reduce up + tree broadcast down (how mini-MPI composes allreduce).
  double allreduce_seconds(const InstanceType& type, std::string_view zone,
                           std::size_t bytes, int ranks) const;

  /// Snapshot write to the node-local cache level: bytes through the host
  /// disk, instances writing in parallel.
  double cache_write_seconds(const InstanceType& type, std::string_view zone,
                             std::uint64_t total_bytes, int instances) const;

  /// Snapshot flush to remote object storage: bytes through the zone uplink,
  /// fair-shared across the group's instances.
  double flush_seconds(const InstanceType& type, std::string_view zone,
                       std::uint64_t total_bytes, int instances) const;

  /// Snapshot restore: from the cache level (disk read) or from remote
  /// storage (uplink, fair-shared).
  double restore_seconds(const InstanceType& type, std::string_view zone,
                         std::uint64_t total_bytes, int instances, bool from_cache) const;

 private:
  const Platform* platform_;
};

/// mpi::OpCoster over a fixed (type, zone, flows) context: every message is
/// costed as one p2p transfer. Attach with World::set_op_coster so a
/// mini-MPI run accumulates platform-modeled network seconds per rank.
class PlatformOpCoster final : public mpi::OpCoster {
 public:
  PlatformOpCoster(const Platform* platform, const InstanceType& type, std::string zone,
                   int flows = 1);

  double message_seconds(std::size_t bytes) const override;

 private:
  // Folded once at construction: per-message latency and effective rate.
  double latency_s_ = 0.0;
  double gbps_ = 1.0;
};

/// CkptTransferModel over a fixed (type, zone, instances) context: bills the
/// multi-level checkpointer's cache writes, flushes and restores through the
/// platform's disk and uplink — the cache-vs-S3 levels get different
/// platform-derived latencies, which is exactly the asymmetry the level
/// policies trade on.
class PlatformTransferModel final : public CkptTransferModel {
 public:
  PlatformTransferModel(const Platform* platform, const InstanceType& type, std::string zone,
                        int instances = 1);

  double cache_write_seconds(std::uint64_t bytes) const override;
  double flush_seconds(std::uint64_t bytes) const override;
  double restore_seconds(std::uint64_t bytes, bool from_cache) const override;

 private:
  NetworkModel net_;
  InstanceType type_;
  std::string zone_;
  int instances_;
};

}  // namespace sompi::platform
