#include "platform/examples.h"

#include "platform/parser.h"

namespace sompi::platform {

const std::string& example_hetero_platform_text() {
  // Keep byte-identical to examples/platforms/hetero_slow_zone.plat —
  // tests/test_platform.cpp pins the file against this string.
  static const std::string text = R"(# Heterogeneous example platform: a slow-network zone (us-east-1c).
#
# Hosts carry the catalog capability columns of the paper's instance types;
# us-east-1a/1b keep a fast dedicated fabric but share an 8 Gbit/s storage
# uplink, while us-east-1c sits behind a congested shared fabric and a slow
# shared uplink with derated compute. Groups placed in 1c therefore get
# longer kernel, checkpoint and restart profiles, and the optimizer routes
# around the zone (or re-bids inside it).

host m1.small    gips=2.8  nic_gbps=0.10 lat_us=350 disk_mbps=40
host m1.medium   gips=2.9  nic_gbps=0.15 lat_us=300 disk_mbps=50
host m1.large    gips=2.85 nic_gbps=0.25 lat_us=250 disk_mbps=60
host c3.xlarge   gips=3.3  nic_gbps=0.55 lat_us=150 disk_mbps=80
host cc2.8xlarge gips=3.6  nic_gbps=10   lat_us=60  disk_mbps=200

link fabric-fast gbps=100  lat_us=0
link s3-shared   gbps=8    lat_us=120 shared
link fabric-slow gbps=0.35 lat_us=400 shared
link s3-slow     gbps=0.25 lat_us=900 shared

zone us-east-1a intra=fabric-fast uplink=s3-shared
zone us-east-1b intra=fabric-fast uplink=s3-shared
zone us-east-1c intra=fabric-slow uplink=s3-slow compute_scale=0.92
)";
  return text;
}

Platform example_hetero_platform() {
  PlatformParseStats stats;
  Platform p = parse_platform(example_hetero_platform_text(), &stats);
  // The example must stay pristine: any skipped line is a programming error.
  SOMPI_REQUIRE_MSG(stats.skipped() == 0, "example platform text has malformed lines");
  return p;
}

}  // namespace sompi::platform
