#include "platform/models.h"

#include <algorithm>

#include "common/error.h"

namespace sompi::platform {

namespace {

/// latency + bytes/bandwidth, the primitive every transfer reduces to.
double transfer_seconds(double latency_us, double gbps, double bytes) {
  return latency_us * 1e-6 + bytes * 8.0 / (gbps * 1e9);
}

/// Disk transfers have no modeled latency term: the checkpoint path's fixed
/// costs live in the estimator's kCheckpointFixedH / kRecoveryFixedH.
double disk_seconds(double mbps, double bytes) { return bytes / (mbps * 1e6); }

}  // namespace

// --- ComputeModel -----------------------------------------------------------

ComputeModel::ComputeModel(const Platform* platform) : platform_(platform) {
  SOMPI_REQUIRE(platform_ != nullptr);
}

double ComputeModel::kernel_seconds(const InstanceType& type, std::string_view zone,
                                    double instr_gi, int processes) const {
  SOMPI_REQUIRE(processes >= 1);
  const EffectiveSpec s = platform_->effective(type, zone, /*flows=*/1);
  return instr_gi / (static_cast<double>(processes) * s.gips_per_core);
}

// --- NetworkModel -----------------------------------------------------------

NetworkModel::NetworkModel(const Platform* platform) : platform_(platform) {
  SOMPI_REQUIRE(platform_ != nullptr);
}

double NetworkModel::p2p_seconds(const InstanceType& type, std::string_view zone,
                                 std::size_t bytes, int flows) const {
  const EffectiveSpec s = platform_->effective(type, zone, flows);
  return transfer_seconds(s.net_latency_us, s.net_gbps, static_cast<double>(bytes));
}

double NetworkModel::bcast_seconds(const InstanceType& type, std::string_view zone,
                                   std::size_t bytes, int ranks) const {
  SOMPI_REQUIRE(ranks >= 1);
  double total = 0.0;
  // Round r doubles the informed set: min(informed, n - informed) transfers
  // cross the fabric concurrently.
  for (int informed = 1; informed < ranks; informed *= 2) {
    const int transfers = std::min(informed, ranks - informed);
    total += p2p_seconds(type, zone, bytes, transfers);
  }
  return total;
}

double NetworkModel::allreduce_seconds(const InstanceType& type, std::string_view zone,
                                       std::size_t bytes, int ranks) const {
  // Binomial-tree reduce mirrors the bcast tree's rounds, then the result is
  // broadcast back down — mini-MPI's composition (comm.h allreduce).
  return bcast_seconds(type, zone, bytes, ranks) * 2.0;
}

double NetworkModel::cache_write_seconds(const InstanceType& type, std::string_view zone,
                                         std::uint64_t total_bytes, int instances) const {
  SOMPI_REQUIRE(instances >= 1);
  const EffectiveSpec s = platform_->effective(type, zone, instances);
  // Instances write their shares to local disk in parallel.
  return disk_seconds(s.io_mbps,
                      static_cast<double>(total_bytes) / static_cast<double>(instances));
}

double NetworkModel::flush_seconds(const InstanceType& type, std::string_view zone,
                                   std::uint64_t total_bytes, int instances) const {
  SOMPI_REQUIRE(instances >= 1);
  const EffectiveSpec s = platform_->effective(type, zone, instances);
  // Every instance pushes its share through its uplink allocation in
  // parallel; a shared uplink has already been fair-shared by effective().
  return transfer_seconds(s.uplink_latency_us, s.uplink_gbps,
                          static_cast<double>(total_bytes) / static_cast<double>(instances));
}

double NetworkModel::restore_seconds(const InstanceType& type, std::string_view zone,
                                     std::uint64_t total_bytes, int instances,
                                     bool from_cache) const {
  return from_cache ? cache_write_seconds(type, zone, total_bytes, instances)
                    : flush_seconds(type, zone, total_bytes, instances);
}

// --- PlatformOpCoster -------------------------------------------------------

PlatformOpCoster::PlatformOpCoster(const Platform* platform, const InstanceType& type,
                                   std::string zone, int flows) {
  SOMPI_REQUIRE(platform != nullptr);
  const EffectiveSpec s = platform->effective(type, zone, flows);
  latency_s_ = s.net_latency_us * 1e-6;
  gbps_ = s.net_gbps;
}

double PlatformOpCoster::message_seconds(std::size_t bytes) const {
  return latency_s_ + static_cast<double>(bytes) * 8.0 / (gbps_ * 1e9);
}

// --- PlatformTransferModel --------------------------------------------------

PlatformTransferModel::PlatformTransferModel(const Platform* platform,
                                             const InstanceType& type, std::string zone,
                                             int instances)
    : net_(platform), type_(type), zone_(std::move(zone)), instances_(instances) {
  SOMPI_REQUIRE(instances_ >= 1);
}

double PlatformTransferModel::cache_write_seconds(std::uint64_t bytes) const {
  return net_.cache_write_seconds(type_, zone_, bytes, instances_);
}

double PlatformTransferModel::flush_seconds(std::uint64_t bytes) const {
  return net_.flush_seconds(type_, zone_, bytes, instances_);
}

double PlatformTransferModel::restore_seconds(std::uint64_t bytes, bool from_cache) const {
  return net_.restore_seconds(type_, zone_, bytes, instances_, from_cache);
}

}  // namespace sompi::platform
