// Lenient platform-file parser (DESIGN.md §12).
//
// Line-oriented declarative format, '#' comments, whitespace-separated
// key=value fields:
//
//   host <type>  gips=<g/core> nic_gbps=<bw> lat_us=<l> disk_mbps=<bw>
//   link <name>  gbps=<bw> lat_us=<l> [shared]
//   zone <name>  intra=<link> uplink=<link> [compute_scale=<s>]
//
// Required fields: hosts must declare all four rates (a partially-described
// host would silently mix file and catalog numbers); links must declare
// gbps; zones must declare both intra= and uplink=. Links default lat_us=0
// and dedicated; zones default compute_scale=1. Types/zones the file does
// not mention at all fall back to the catalog columns in
// Platform::effective — a partial platform degrades to flat per entry.
//
// Error handling follows the common/csv lenient pattern: a malformed line is
// skipped and counted by corruption class instead of aborting the parse —
// externally produced platform files (ops dumps, generators) keep every
// well-formed declaration. The per-class counters make the damage visible
// and unit-testable (tests/test_platform.cpp covers each class).
#pragma once

#include <cstddef>
#include <string>

#include "platform/platform.h"

namespace sompi::platform {

/// Per-parse corruption accounting, one counter per corruption class.
struct PlatformParseStats {
  std::size_t hosts_parsed = 0;
  std::size_t links_parsed = 0;
  std::size_t zones_parsed = 0;
  std::size_t unknown_directive = 0;  ///< first token not host/link/zone
  std::size_t missing_name = 0;       ///< directive without a name token
  std::size_t missing_field = 0;      ///< required key absent (host rates, link gbps, zone links)
  std::size_t bad_field = 0;          ///< unparsable/non-positive value or unknown key
  std::size_t duplicate_name = 0;     ///< host/link/zone redefined (first wins)
  std::size_t dangling_link = 0;      ///< zone referencing an undeclared link

  std::size_t skipped() const {
    return unknown_directive + missing_name + missing_field + bad_field + duplicate_name +
           dangling_link;
  }
};

/// Parses platform text leniently. Malformed lines are skipped and counted;
/// only an unusable *result* throws (a platform needs at least one link when
/// any zone parsed — Platform's constructor invariants still hold).
Platform parse_platform(const std::string& text, PlatformParseStats* stats = nullptr);

/// Reads and parses a platform file. Throws IoError when unreadable.
Platform read_platform_file(const std::string& path, PlatformParseStats* stats = nullptr);

}  // namespace sompi::platform
