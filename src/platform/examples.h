// Built-in example platforms (DESIGN.md §12).
//
// The heterogeneous example models the scenario the paper could not run:
// us-east-1c sits behind a congested shared fabric and a slow object-storage
// uplink, and every zone's storage path is a shared (contended) link rather
// than a dedicated one. Against the flat anchor this platform makes the
// optimizer re-cost every candidate circle group — slow-network zones get
// longer kernel/checkpoint/restart profiles — and the chosen plan's
// fingerprint diverges from the flat plan while staying bit-identical at
// any thread count (the §12 acceptance gate).
//
// The committed file `examples/platforms/hetero_slow_zone.plat` holds
// exactly example_hetero_platform_text(); tests pin the two together.
#pragma once

#include <string>

#include "platform/platform.h"

namespace sompi::platform {

/// The platform-file text of the heterogeneous example (parseable by
/// parse_platform with zero skipped lines).
const std::string& example_hetero_platform_text();

/// Parsed form of example_hetero_platform_text().
Platform example_hetero_platform();

}  // namespace sompi::platform
