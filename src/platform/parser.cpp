#include "platform/parser.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"

namespace sompi::platform {

namespace {

/// Splits one line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line.substr(0, line.find('#')));
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

/// Accumulates key=value fields for one directive line; flags ("shared")
/// are keys without '='.
struct Fields {
  std::vector<std::pair<std::string, std::string>> kv;
  std::vector<std::string> flags;
  bool malformed = false;  ///< a token that is neither k=v nor a bare flag

  static Fields parse(const std::vector<std::string>& tokens, std::size_t first) {
    Fields f;
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const std::string& t = tokens[i];
      const std::size_t eq = t.find('=');
      if (eq == std::string::npos) {
        f.flags.push_back(t);
      } else if (eq == 0 || eq + 1 >= t.size()) {
        f.malformed = true;  // "=x" or "k="
      } else {
        f.kv.emplace_back(t.substr(0, eq), t.substr(eq + 1));
      }
    }
    return f;
  }

  const std::string* value(const std::string& key) const {
    for (const auto& [k, v] : kv)
      if (k == key) return &v;
    return nullptr;
  }

  bool flag(const std::string& name) const {
    for (const std::string& f : flags)
      if (f == name) return true;
    return false;
  }
};

/// Strict positive-number field parse (csv_number rejects trailing junk).
std::optional<double> positive_number(const Fields& f, const std::string& key) {
  const std::string* cell = f.value(key);
  if (cell == nullptr) return std::nullopt;
  double v = 0.0;
  if (!csv_number(*cell, &v) || v <= 0.0) return std::nullopt;
  return v;
}

/// Non-negative variant (latencies may be zero).
std::optional<double> nonneg_number(const Fields& f, const std::string& key) {
  const std::string* cell = f.value(key);
  if (cell == nullptr) return std::nullopt;
  double v = 0.0;
  if (!csv_number(*cell, &v) || v < 0.0) return std::nullopt;
  return v;
}

bool known_keys(const Fields& f, std::initializer_list<const char*> keys,
                std::initializer_list<const char*> flags) {
  for (const auto& [k, v] : f.kv) {
    bool ok = false;
    for (const char* key : keys) ok = ok || k == key;
    if (!ok) return false;
  }
  for (const std::string& flag : f.flags) {
    bool ok = false;
    for (const char* name : flags) ok = ok || flag == name;
    if (!ok) return false;
  }
  return true;
}

}  // namespace

Platform parse_platform(const std::string& text, PlatformParseStats* stats) {
  PlatformParseStats local;
  PlatformParseStats& s = stats != nullptr ? *stats : local;
  s = PlatformParseStats{};

  std::vector<Host> hosts;
  std::vector<Link> links;
  struct PendingZone {
    std::string name;
    std::string intra;
    std::string uplink;
    double compute_scale = 1.0;
  };
  std::vector<PendingZone> pending_zones;

  const auto find_link = [&links](const std::string& name) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < links.size(); ++i)
      if (links[i].name == name) return i;
    return std::nullopt;
  };

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;  // blank / comment
    const std::string& directive = tokens[0];

    if (directive != "host" && directive != "link" && directive != "zone") {
      ++s.unknown_directive;
      continue;
    }
    if (tokens.size() < 2 || tokens[1].find('=') != std::string::npos) {
      ++s.missing_name;
      continue;
    }
    const std::string& name = tokens[1];
    const Fields f = Fields::parse(tokens, 2);

    if (directive == "host") {
      if (f.malformed || !known_keys(f, {"gips", "nic_gbps", "lat_us", "disk_mbps"}, {})) {
        ++s.bad_field;
        continue;
      }
      const auto gips = positive_number(f, "gips");
      const auto nic = positive_number(f, "nic_gbps");
      const auto lat = nonneg_number(f, "lat_us");
      const auto disk = positive_number(f, "disk_mbps");
      // Distinguish "key absent" (missing_field) from "key present but
      // unusable" (bad_field): a host must declare all four rates.
      if (f.value("gips") == nullptr || f.value("nic_gbps") == nullptr ||
          f.value("lat_us") == nullptr || f.value("disk_mbps") == nullptr) {
        ++s.missing_field;
        continue;
      }
      if (!gips || !nic || !lat || !disk) {
        ++s.bad_field;
        continue;
      }
      bool duplicate = false;
      for (const Host& h : hosts) duplicate = duplicate || h.type == name;
      if (duplicate) {
        ++s.duplicate_name;
        continue;
      }
      hosts.push_back(Host{name, *gips, *nic, *lat, *disk});
      ++s.hosts_parsed;
    } else if (directive == "link") {
      if (f.malformed || !known_keys(f, {"gbps", "lat_us"}, {"shared"})) {
        ++s.bad_field;
        continue;
      }
      if (f.value("gbps") == nullptr) {
        ++s.missing_field;
        continue;
      }
      const auto gbps = positive_number(f, "gbps");
      const auto lat = f.value("lat_us") != nullptr ? nonneg_number(f, "lat_us")
                                                    : std::optional<double>(0.0);
      if (!gbps || !lat) {
        ++s.bad_field;
        continue;
      }
      if (find_link(name)) {
        ++s.duplicate_name;
        continue;
      }
      links.push_back(Link{name, *gbps, *lat, f.flag("shared")});
      ++s.links_parsed;
    } else {  // zone
      if (f.malformed || !known_keys(f, {"intra", "uplink", "compute_scale"}, {})) {
        ++s.bad_field;
        continue;
      }
      if (f.value("intra") == nullptr || f.value("uplink") == nullptr) {
        ++s.missing_field;
        continue;
      }
      const auto scale = f.value("compute_scale") != nullptr
                             ? positive_number(f, "compute_scale")
                             : std::optional<double>(1.0);
      if (!scale) {
        ++s.bad_field;
        continue;
      }
      bool duplicate = false;
      for (const PendingZone& z : pending_zones) duplicate = duplicate || z.name == name;
      if (duplicate) {
        ++s.duplicate_name;
        continue;
      }
      pending_zones.push_back(PendingZone{name, *f.value("intra"), *f.value("uplink"), *scale});
    }
  }

  // Zones resolve after all links are known, so declaration order is free.
  std::vector<ZoneNode> zones;
  for (const PendingZone& z : pending_zones) {
    const auto intra = find_link(z.intra);
    const auto uplink = find_link(z.uplink);
    if (!intra || !uplink) {
      ++s.dangling_link;
      continue;
    }
    zones.push_back(ZoneNode{z.name, *intra, *uplink, z.compute_scale});
    ++s.zones_parsed;
  }

  return Platform(std::move(hosts), std::move(links), std::move(zones));
}

Platform read_platform_file(const std::string& path, PlatformParseStats* stats) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot read platform file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_platform(buffer.str(), stats);
}

}  // namespace sompi::platform
