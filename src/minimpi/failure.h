// Failure injection: models an out-of-bid event, which terminates every
// instance of a circle group at once (the paper's coordinated-termination
// property that makes coordinated checkpointing the right protocol, §2.2).
#pragma once

#include <atomic>
#include <cstdint>

namespace sompi::mpi {

class FailureController {
 public:
  /// Kills the whole world: every rank unblocks with KilledError at its next
  /// runtime interaction. Idempotent; callable from any thread.
  void kill() { killed_.store(true, std::memory_order_release); }

  bool killed() const { return killed_.load(std::memory_order_acquire); }

  /// Arms a deterministic kill after `ticks` calls to on_tick() summed over
  /// all ranks (0 disarms). Applications tick once per iteration, so this
  /// maps an out-of-bid step from a trace replay onto an app iteration.
  void arm_after_ticks(std::uint64_t ticks) {
    tick_budget_.store(ticks, std::memory_order_release);
    ticks_.store(0, std::memory_order_release);
  }

  /// Called by the runtime on rank progress; fires the armed kill.
  void on_tick() {
    const std::uint64_t budget = tick_budget_.load(std::memory_order_acquire);
    if (budget == 0) return;
    if (ticks_.fetch_add(1, std::memory_order_acq_rel) + 1 >= budget) kill();
  }

 private:
  std::atomic<bool> killed_{false};
  std::atomic<std::uint64_t> tick_budget_{0};
  std::atomic<std::uint64_t> ticks_{0};
};

}  // namespace sompi::mpi
