// Failure injection: models an out-of-bid event, which terminates every
// instance of a circle group at once (the paper's coordinated-termination
// property that makes coordinated checkpointing the right protocol, §2.2).
#pragma once

#include <atomic>
#include <cstdint>

namespace sompi::mpi {

class FailureController {
 public:
  /// Kills the whole world: every rank unblocks with KilledError at its next
  /// runtime interaction. Idempotent; callable from any thread.
  void kill() { killed_.store(true, std::memory_order_release); }

  bool killed() const { return killed_.load(std::memory_order_acquire); }

  /// Arms a deterministic kill after `ticks` calls to on_tick() summed over
  /// all ranks (0 disarms). Applications tick once per iteration, so this
  /// maps an out-of-bid step from a trace replay onto an app iteration.
  /// Re-arming resets the single-shot fire latch.
  void arm_after_ticks(std::uint64_t ticks) {
    tick_budget_.store(ticks, std::memory_order_release);
    ticks_.store(0, std::memory_order_release);
    fired_.store(false, std::memory_order_release);
  }

  /// Called by the runtime on rank progress; fires the armed kill.
  /// Single-shot: several ranks can cross the budget concurrently (each
  /// fetch_add past the threshold satisfies the comparison), but only the
  /// rank that wins the compare-exchange on the fire latch enters kill().
  void on_tick() {
    const std::uint64_t budget = tick_budget_.load(std::memory_order_acquire);
    if (budget == 0) return;
    if (ticks_.fetch_add(1, std::memory_order_acq_rel) + 1 >= budget) {
      bool expected = false;
      if (fired_.compare_exchange_strong(expected, true, std::memory_order_acq_rel))
        kill();
    }
  }

  /// Whether an armed tick budget has fired (kill() on its own never sets
  /// this). Observability hook for the single-shot contract.
  bool fired() const { return fired_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> killed_{false};
  std::atomic<bool> fired_{false};
  std::atomic<std::uint64_t> tick_budget_{0};
  std::atomic<std::uint64_t> ticks_{0};
};

}  // namespace sompi::mpi
