// Shared message-passing primitives for the mini-MPI runtime.
//
// mini-MPI is the substrate substituting for OpenMPI in this reproduction:
// an in-process, thread-per-rank message-passing runtime. Applications
// written against sompi::mpi::Comm really exchange messages, really block on
// collectives, can really be killed by an out-of-bid event injected through
// FailureController, and really restart from a coordinated checkpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace sompi::mpi {

/// Wildcards for recv matching (like MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Thrown inside every rank when the runtime's failure controller fires —
/// models the instant termination of all instances of a circle group on an
/// out-of-bid event. Caught by Runtime::run, never by applications.
class KilledError : public std::runtime_error {
 public:
  KilledError() : std::runtime_error("rank killed by failure injection") {}
};

/// One in-flight message.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Per-rank traffic counters — the profiling hook behind the paper's
/// <#instr, Data_send, Data_recv, ...> application profile (§4.4).
struct RankStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;

  void merge(const RankStats& other) {
    messages_sent += other.messages_sent;
    bytes_sent += other.bytes_sent;
    messages_received += other.messages_received;
    bytes_received += other.bytes_received;
  }
};

/// Reduction operators for reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

}  // namespace sompi::mpi
