// Shared message-passing primitives for the mini-MPI runtime.
//
// mini-MPI is the substrate substituting for OpenMPI in this reproduction:
// an in-process, thread-per-rank message-passing runtime. Applications
// written against sompi::mpi::Comm really exchange messages, really block on
// collectives, can really be killed by an out-of-bid event injected through
// FailureController, and really restart from a coordinated checkpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace sompi::mpi {

/// Wildcards for recv matching (like MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Thrown inside every rank when the runtime's failure controller fires —
/// models the instant termination of all instances of a circle group on an
/// out-of-bid event. Caught by Runtime::run, never by applications.
class KilledError : public std::runtime_error {
 public:
  KilledError() : std::runtime_error("rank killed by failure injection") {}
};

/// One in-flight message.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Per-operation simulated-time charge source. Implemented by the platform
/// layer (platform::PlatformOpCoster costs each message as one transfer
/// through the zone fabric: latency + bytes/bandwidth with fair-share
/// contention); declared here so mini-MPI needs no platform dependency.
class OpCoster {
 public:
  virtual ~OpCoster() = default;
  /// Modeled seconds one eager point-to-point message of `bytes` occupies
  /// the sending instance's NIC. Must be a pure function of `bytes`.
  virtual double message_seconds(std::size_t bytes) const = 0;
};

/// Per-rank traffic counters — the profiling hook behind the paper's
/// <#instr, Data_send, Data_recv, ...> application profile (§4.4).
struct RankStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  /// Platform-modeled network seconds charged to this rank's sends (zero
  /// unless an OpCoster is attached to the world). Deterministic: each
  /// rank's send sequence is a pure function of its own execution, and the
  /// charge is a pure function of the message size.
  double model_net_seconds = 0.0;

  void merge(const RankStats& other) {
    messages_sent += other.messages_sent;
    bytes_sent += other.bytes_sent;
    messages_received += other.messages_received;
    bytes_received += other.bytes_received;
    model_net_seconds += other.model_net_seconds;
  }
};

/// Reduction operators for reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

}  // namespace sompi::mpi
