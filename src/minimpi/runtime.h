// The mini-MPI runtime: spawns one thread per rank, wires them to a shared
// World, and harvests their fates (completed / killed / errored).
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "faultinject/fault_plan.h"
#include "minimpi/comm.h"

namespace sompi::mpi {

/// Outcome of one world execution.
struct RunResult {
  /// Every rank returned normally.
  bool completed = false;
  /// The world was killed (out-of-bid injection) before completion.
  bool killed = false;
  /// First application error per failed rank ("rank 3: ...").
  std::vector<std::string> errors;
  /// Per-rank traffic counters (profiling input).
  std::vector<RankStats> stats;
  double elapsed_seconds = 0.0;

  RankStats total_stats() const {
    RankStats total;
    for (const auto& s : stats) total.merge(s);
    return total;
  }
};

/// One world of ranks. Construct, launch, optionally kill, then join.
/// The object must outlive the join() call; not reusable after join().
class Runtime {
 public:
  using RankFn = std::function<void(Comm&)>;

  explicit Runtime(int world_size);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int world_size() const { return world_size_; }
  FailureController& failures() { return failures_; }

  /// Attaches a platform op coster (borrowed) before launch(): every send is
  /// charged to the sender's RankStats::model_net_seconds, so
  /// RunResult::total_stats() reports platform-modeled network time.
  void set_op_coster(const OpCoster* coster) { world_.set_op_coster(coster); }

  /// Starts every rank running fn(comm). Call exactly once.
  void launch(RankFn fn);

  /// Injects an out-of-bid event: every rank unwinds with KilledError.
  /// Safe from any thread, any time after launch().
  void kill();

  /// Waits for all ranks and returns the aggregate outcome.
  RunResult join();

  /// Convenience: launch + join.
  static RunResult run(int world_size, const RankFn& fn);

  /// Convenience: launch, kill after all ranks together performed
  /// `kill_after_ticks` Comm::tick() calls, join.
  static RunResult run_with_kill(int world_size, const RankFn& fn,
                                 std::uint64_t kill_after_ticks);

  /// Convenience: run under a fault plan — arms the failure controller with
  /// the plan's kill tick (0 leaves it disarmed), so a seeded chaos schedule
  /// drives the world without per-call plumbing.
  static RunResult run_with_plan(int world_size, const RankFn& fn,
                                 const fi::FaultPlan& plan);

 private:
  int world_size_;
  FailureController failures_;
  World world_;
  std::vector<std::thread> threads_;
  std::vector<std::string> errors_;  // sized world_size_, "" = ok
  // One byte per rank (vector<bool> would race on shared words).
  std::vector<unsigned char> rank_killed_;
  std::chrono::steady_clock::time_point start_;
  bool launched_ = false;
  bool joined_ = false;
};

}  // namespace sompi::mpi
