// The communicator: every mini-MPI application is a function of one Comm.
//
// Point-to-point sends are buffered (eager) and non-blocking; receives block
// with (source, tag) matching. Collectives are built on point-to-point
// (binomial-tree reduce; root-direct bcast, chosen for deterministic failure
// semantics) and use a reserved tag space sequenced per collective call, so
// user traffic can never be matched against collective traffic.
//
// Failure determinism: sends always complete and deliveries always land — a
// kill is only observable at protocol points (tick, barrier) and at receives
// whose sender rank has exited. This keeps each rank's progress under a kill
// a pure function of the deterministic fault schedule rather than of how the
// kill signal raced in-flight traffic (see DESIGN.md, fault injection).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.h"
#include "minimpi/failure.h"
#include "minimpi/mailbox.h"
#include "minimpi/types.h"

namespace sompi::mpi {

/// Shared state of one world of ranks. Owned by Runtime; applications only
/// ever see Comm.
class World {
 public:
  World(int size, FailureController* failures);

  int size() const { return static_cast<int>(mailboxes_.size()); }
  Mailbox& mailbox(int rank);
  RankStats& stats(int rank);
  FailureController& failures() { return *failures_; }

  /// Attaches a platform op coster (borrowed; must outlive the world): every
  /// send is charged to the sender's RankStats::model_net_seconds. Call
  /// before launching ranks; nullptr (the default) charges nothing.
  void set_op_coster(const OpCoster* coster) { op_coster_ = coster; }
  const OpCoster* op_coster() const { return op_coster_; }

  /// Throws KilledError (after announcing the kill to barrier waiters) when
  /// the failure controller has fired. Called at protocol points only
  /// (tick, barrier entry) — never per message, so a kill cannot change how
  /// far a rank's already-determined message traffic gets.
  void check_failure();

  /// Sense-reversing central barrier; kill-aware.
  void barrier_wait();

  /// Records that a rank's thread has exited (normally or by exception) and
  /// wakes every blocked receiver: a receive waiting on a departed rank can
  /// never be satisfied and throws KilledError. Deaths cascade through
  /// receive dependencies deterministically — "will that message ever come?"
  /// depends only on how far the sender got, not on kill-signal timing.
  void mark_departed(int rank);
  bool departed(int rank) const;

  /// Soft kill announcement: barrier waiters unblock with KilledError.
  /// Receives are deliberately NOT aborted — they resolve through the
  /// departed-rank cascade, preserving in-flight delivery. Idempotent.
  void announce_kill();

  /// Hard kill (external kill() / teardown): announce_kill() plus a mailbox
  /// abort, so even receives whose senders are alive unwind promptly.
  void propagate_kill();

 private:
  FailureController* failures_;
  const OpCoster* op_coster_ = nullptr;
  std::vector<Mailbox> mailboxes_;
  std::vector<RankStats> stats_;
  std::vector<std::atomic<bool>> departed_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool kill_propagated_ = false;
};

class Comm;

/// Handle for a nonblocking operation (MPI_Request analogue). Sends are
/// eager-buffered and complete immediately; receives match lazily.
class Request {
 public:
  /// True when the operation can complete without blocking.
  bool test();
  /// Blocks until completion; for receives, returns the message.
  Message wait();
  bool is_receive() const { return receive_; }

 private:
  friend class Comm;
  Request(Comm* comm, int source, int tag)  // pending receive
      : comm_(comm), source_(source), tag_(tag), receive_(true) {}
  Request() = default;  // completed send

  Comm* comm_ = nullptr;
  int source_ = 0;
  int tag_ = 0;
  bool receive_ = false;
  bool done_ = false;
  Message message_;
};

class Comm {
 public:
  /// The world communicator over all ranks.
  Comm(World* world, int rank);

  /// Sub-communicator rank (== world rank for the world communicator).
  int rank() const { return rank_; }
  int size() const {
    return to_world_.empty() ? world_->size() : static_cast<int>(to_world_.size());
  }

  /// Splits this communicator: ranks with equal `color` form a new
  /// communicator, ordered by (key, rank) — MPI_Comm_split. Collective.
  /// Requires color >= 0 (every rank participates).
  Comm split(int color, int key);

  // --- Point-to-point -----------------------------------------------------
  // User tags must be in [0, 2^18) — the upper bits carry the communicator
  // context so split() traffic never crosses communicators.

  void send_bytes(int dest, int tag, std::span<const std::byte> payload);
  /// Blocking receive; wildcards kAnySource/kAnyTag allowed.
  Message recv_message(int source, int tag);
  std::vector<std::byte> recv_bytes(int source, int tag);
  /// Non-blocking check for a queued matching message.
  bool probe(int source, int tag);

  /// Nonblocking send: buffered eagerly, the request is already complete.
  Request isend_bytes(int dest, int tag, std::span<const std::byte> payload);
  /// Nonblocking receive: matching is deferred to test()/wait().
  Request irecv(int source, int tag);
  /// Combined send + receive (halo-exchange convenience; deadlock-free
  /// because sends are buffered).
  Message sendrecv_bytes(int dest, int send_tag, std::span<const std::byte> payload,
                         int source, int recv_tag);

  template <typename T>
  void send(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(std::span<const T, 1>(&value, 1)));
  }

  template <typename T>
  T recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = recv_bytes(source, tag);
    SOMPI_ASSERT_MSG(bytes.size() == sizeof(T), "typed recv size mismatch");
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    return value;
  }

  template <typename T>
  void send_vec(int dest, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(values));
  }

  template <typename T>
  void send_vec(int dest, int tag, const std::vector<T>& values) {
    send_vec<T>(dest, tag, std::span<const T>(values));
  }

  template <typename T>
  std::vector<T> recv_vec(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = recv_bytes(source, tag);
    SOMPI_ASSERT_MSG(bytes.size() % sizeof(T) == 0, "typed recv_vec size mismatch");
    std::vector<T> values(bytes.size() / sizeof(T));
    if (!bytes.empty()) std::memcpy(values.data(), bytes.data(), bytes.size());
    return values;
  }

  // --- Collectives (must be called by all ranks in the same order) --------

  void barrier();

  /// Binomial-tree broadcast of a byte buffer from root.
  void bcast_bytes(std::vector<std::byte>& data, int root);

  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(data.size() * sizeof(T));
    if (rank_ == root && !bytes.empty()) std::memcpy(bytes.data(), data.data(), bytes.size());
    bcast_bytes(bytes, root);
    data.resize(bytes.size() / sizeof(T));
    if (!bytes.empty()) std::memcpy(data.data(), bytes.data(), bytes.size());
  }

  template <typename T>
  void bcast(T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> one{value};
    bcast(one, root);
    value = one.at(0);
  }

  /// Binomial-tree reduction; the result is valid on root only.
  template <typename T>
  T reduce(T value, ReduceOp op, int root) {
    static_assert(std::is_arithmetic_v<T>);
    const int tag = next_collective_tag(1);
    const int n = size();
    const int rel = (rank_ - root + n) % n;
    T acc = value;
    for (int mask = 1; mask < n; mask <<= 1) {
      if (rel & mask) {
        const int parent = ((rel - mask) + root) % n;
        send(parent, tag, acc);
        break;
      }
      if (rel + mask < n) {
        const int child = ((rel + mask) + root) % n;
        acc = combine(acc, recv<T>(child, tag), op);
      }
    }
    return acc;
  }

  template <typename T>
  T allreduce(T value, ReduceOp op) {
    T result = reduce(value, op, /*root=*/0);
    bcast(result, /*root=*/0);
    return result;
  }

  /// Root's chunks[i] goes to rank i; returns this rank's chunk
  /// (MPI_Scatter with per-rank payloads). chunks ignored on non-roots.
  template <typename T>
  std::vector<T> scatter(const std::vector<std::vector<T>>& chunks, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = next_collective_tag(4);
    if (rank_ == root) {
      SOMPI_REQUIRE(static_cast<int>(chunks.size()) == size());
      for (int r = 0; r < size(); ++r)
        if (r != root) send_vec<T>(r, tag, chunks[static_cast<std::size_t>(r)]);
      return chunks[static_cast<std::size_t>(root)];
    }
    return recv_vec<T>(root, tag);
  }

  /// Root receives one value per rank, in rank order; non-roots get {}.
  template <typename T>
  std::vector<T> gather(const T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = next_collective_tag(2);
    if (rank_ != root) {
      send(root, tag, value);
      return {};
    }
    std::vector<T> all(size());
    all[static_cast<std::size_t>(root)] = value;
    for (int r = 0; r < size(); ++r)
      if (r != root) all[static_cast<std::size_t>(r)] = recv<T>(r, tag);
    return all;
  }

  template <typename T>
  std::vector<T> allgather(const T& value) {
    std::vector<T> all = gather(value, /*root=*/0);
    bcast(all, /*root=*/0);
    return all;
  }

  /// Personalized all-to-all: send[i] goes to rank i; returns one vector per
  /// source rank. send.size() must equal size().
  template <typename T>
  std::vector<std::vector<T>> alltoall(const std::vector<std::vector<T>>& send_bufs) {
    static_assert(std::is_trivially_copyable_v<T>);
    SOMPI_REQUIRE(static_cast<int>(send_bufs.size()) == size());
    const int tag = next_collective_tag(3);
    std::vector<std::vector<T>> recv_bufs(send_bufs.size());
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) {
        recv_bufs[static_cast<std::size_t>(r)] = send_bufs[static_cast<std::size_t>(r)];
      } else {
        send_vec<T>(r, tag, send_bufs[static_cast<std::size_t>(r)]);
      }
    }
    for (int r = 0; r < size(); ++r)
      if (r != rank_) recv_bufs[static_cast<std::size_t>(r)] = recv_vec<T>(r, tag);
    return recv_bufs;
  }

  // --- Runtime hooks -------------------------------------------------------

  /// Progress marker for deterministic failure injection (one per app
  /// iteration). Throws KilledError when the controller fires.
  void tick();

  /// Throws KilledError if the world has been killed.
  void check_failure() { world_->check_failure(); }

  const RankStats& stats() const;

 private:
  friend class Request;

  static constexpr int kCollectiveTagBase = 1 << 30;
  static constexpr int kMaxUserTag = 1 << 18;
  static constexpr int kContextBits = 10;

  /// Sub-communicator constructor (split()).
  Comm(World* world, int rank, std::vector<int> to_world, int context);

  template <typename T>
  static T combine(T a, T b, ReduceOp op) {
    switch (op) {
      case ReduceOp::kSum: return a + b;
      case ReduceOp::kMin: return a < b ? a : b;
      case ReduceOp::kMax: return a > b ? a : b;
    }
    throw PreconditionError("unknown reduce op");
  }

  /// A fresh tag per collective call; all ranks issue collectives in the
  /// same order, so sequences agree across the communicator.
  int next_collective_tag(int op_id);

  /// Folds the communicator context into a user tag.
  int mangle(int tag) const;
  /// World rank of a communicator rank (identity for the world comm).
  int world_rank(int r) const;
  /// Communicator rank of a world rank; -1 when not a member.
  int sub_rank(int world_r) const;

  World* world_;
  int rank_;
  std::vector<int> to_world_;  // empty = world communicator (identity)
  int context_ = 0;
  int collective_seq_ = 0;
  int split_seq_ = 0;
};

}  // namespace sompi::mpi
