// Turns a mini-MPI run into the paper's application profile tuple (§4.4):
// run the application once on the runtime, read the aggregated traffic
// counters, and combine them with caller-supplied compute/I/O estimates.
#pragma once

#include "minimpi/runtime.h"
#include "profile/app_profile.h"

namespace sompi::mpi {

/// Builds an AppProfile from a completed run's counters. `instr_gi` and the
/// I/O volumes cannot be observed by the message layer and are supplied by
/// the caller (TAU would sample them on real hardware); `scale` multiplies
/// every volume, mirroring the paper's "run each application 100–200 times"
/// long-job construction.
AppProfile profile_from_run(const std::string& name, AppCategory category, int processes,
                            const RunResult& run, double instr_gi, double io_seq_gb,
                            double io_rand_gb, double state_gb, double scale = 1.0);

}  // namespace sompi::mpi
