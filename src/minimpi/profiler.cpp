#include "minimpi/profiler.h"

#include "common/error.h"

namespace sompi::mpi {

AppProfile profile_from_run(const std::string& name, AppCategory category, int processes,
                            const RunResult& run, double instr_gi, double io_seq_gb,
                            double io_rand_gb, double state_gb, double scale) {
  SOMPI_REQUIRE(processes >= 1);
  SOMPI_REQUIRE(scale > 0.0);
  const RankStats total = run.total_stats();

  AppProfile p;
  p.name = name;
  p.category = category;
  p.processes = processes;
  p.instr_gi = instr_gi * scale;
  p.comm_gb = static_cast<double>(total.bytes_sent) / 1e9 * scale;
  p.msgs_per_rank =
      static_cast<double>(total.messages_sent) / static_cast<double>(processes) * scale;
  p.io_seq_gb = io_seq_gb * scale;
  p.io_rand_gb = io_rand_gb * scale;
  p.state_gb = state_gb;
  return p;
}

}  // namespace sompi::mpi
