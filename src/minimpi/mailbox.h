// Per-rank mailbox with (source, tag) matching and kill-aware blocking.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "minimpi/types.h"

namespace sompi::mpi {

class Mailbox {
 public:
  /// Enqueues a message; no-op after abort().
  void deliver(Message message);

  /// Blocks until a message matching (source, tag) arrives, honoring
  /// kAnySource / kAnyTag wildcards. Messages from the same source with the
  /// same tag are delivered in send order (MPI non-overtaking rule).
  /// Throws KilledError if the mailbox is aborted while waiting.
  Message receive(int source, int tag);

  /// True when a matching message is already queued (non-blocking probe).
  bool probe(int source, int tag);

  /// Wakes all waiters with KilledError and drops subsequent deliveries.
  void abort();

  bool aborted() const;

 private:
  bool matches(const Message& m, int source, int tag) const {
    return (source == kAnySource || m.source == source) && (tag == kAnyTag || m.tag == tag);
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_ = false;
};

}  // namespace sompi::mpi
