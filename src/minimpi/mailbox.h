// Per-rank mailbox with (source, tag) matching and kill-aware blocking.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

#include "minimpi/types.h"

namespace sompi::mpi {

class Mailbox {
 public:
  /// Enqueues a message unconditionally. Delivery never depends on kill
  /// timing: a message sent before its sender died was "in flight" and still
  /// arrives, exactly like a real network. Undrained messages simply die
  /// with the world.
  void deliver(Message message);

  /// Blocks until a message matching (source, tag) arrives, honoring
  /// kAnySource / kAnyTag wildcards. Messages from the same source with the
  /// same tag are delivered in send order (MPI non-overtaking rule).
  ///
  /// Unblock rules, in priority order:
  ///   1. a queued matching message is always returned (drain-first);
  ///   2. throws KilledError when the awaited sender can never send one —
  ///      its rank has exited (see set_sender_gone);
  ///   3. throws KilledError after a hard abort() (external kill/teardown).
  /// Rule 2 is what makes fault replay deterministic: whether a message
  /// exists is decided by how far the *sender* got before dying — which is a
  /// deterministic property of the sender's own execution — never by how a
  /// global kill signal raced this receive.
  Message receive(int source, int tag);

  /// True when a matching message is already queued (non-blocking probe).
  bool probe(int source, int tag);

  /// Installs the "has this source rank exited?" oracle consulted by
  /// receive(). The World wires this to its per-rank departure flags; it is
  /// called with the mailbox mutex held and must not block. Set once, before
  /// any rank runs.
  void set_sender_gone(std::function<bool(int source)> oracle);

  /// Wakes blocked receivers so they re-evaluate the sender-gone oracle.
  /// Acquires the mailbox mutex, so a receiver can never check the oracle,
  /// miss the update, and then sleep through the wake.
  void poke();

  /// Hard unblock: wakes all waiters with KilledError once the queue has no
  /// match for them. Used for external kills and teardown only — organic
  /// rank deaths propagate through the sender-gone oracle instead.
  void abort();

  bool aborted() const;

 private:
  bool matches(const Message& m, int source, int tag) const {
    return (source == kAnySource || m.source == source) && (tag == kAnyTag || m.tag == tag);
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::function<bool(int)> sender_gone_;
  bool aborted_ = false;
};

}  // namespace sompi::mpi
