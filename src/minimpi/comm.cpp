#include "minimpi/comm.h"

namespace sompi::mpi {

World::World(int size, FailureController* failures)
    : failures_(failures), mailboxes_(static_cast<std::size_t>(size)),
      stats_(static_cast<std::size_t>(size)), departed_(static_cast<std::size_t>(size)) {
  SOMPI_REQUIRE(size >= 1);
  SOMPI_REQUIRE(failures_ != nullptr);
  for (int r = 0; r < size; ++r) {
    // Rank r's receives give up only when the awaited sender has exited;
    // kAnySource gives up once every other rank has.
    mailboxes_[static_cast<std::size_t>(r)].set_sender_gone([this, r](int source) {
      if (source != kAnySource) return departed(source);
      for (int s = 0; s < this->size(); ++s)
        if (s != r && !departed(s)) return false;
      return true;
    });
  }
}

Mailbox& World::mailbox(int rank) {
  SOMPI_REQUIRE(rank >= 0 && rank < size());
  return mailboxes_[static_cast<std::size_t>(rank)];
}

RankStats& World::stats(int rank) {
  SOMPI_REQUIRE(rank >= 0 && rank < size());
  return stats_[static_cast<std::size_t>(rank)];
}

void World::check_failure() {
  if (!failures_->killed()) return;
  announce_kill();
  throw KilledError();
}

void World::mark_departed(int rank) {
  SOMPI_REQUIRE(rank >= 0 && rank < size());
  departed_[static_cast<std::size_t>(rank)].store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) mb.poke();
}

bool World::departed(int rank) const {
  return departed_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
}

void World::announce_kill() {
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    kill_propagated_ = true;
  }
  barrier_cv_.notify_all();
}

void World::propagate_kill() {
  announce_kill();
  for (auto& mb : mailboxes_) mb.abort();
}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  if (kill_propagated_) throw KilledError();
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_count_ == size()) {
    barrier_count_ = 0;
    ++barrier_generation_;
    lock.unlock();
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] {
    return barrier_generation_ != my_generation || kill_propagated_;
  });
  if (barrier_generation_ == my_generation && kill_propagated_) throw KilledError();
}

Comm::Comm(World* world, int rank) : world_(world), rank_(rank) {
  SOMPI_REQUIRE(world_ != nullptr);
  SOMPI_REQUIRE(rank >= 0 && rank < world_->size());
}

Comm::Comm(World* world, int rank, std::vector<int> to_world, int context)
    : world_(world), rank_(rank), to_world_(std::move(to_world)), context_(context) {
  SOMPI_REQUIRE(world_ != nullptr);
  SOMPI_REQUIRE(rank >= 0 && rank < static_cast<int>(to_world_.size()));
}

int Comm::mangle(int tag) const {
  SOMPI_REQUIRE_MSG(tag >= 0 && tag < kMaxUserTag, "user tags must be in [0, 2^18)");
  return (context_ << 18) | tag;
}

int Comm::world_rank(int r) const {
  if (to_world_.empty()) return r;
  SOMPI_REQUIRE(r >= 0 && r < static_cast<int>(to_world_.size()));
  return to_world_[static_cast<std::size_t>(r)];
}

int Comm::sub_rank(int world_r) const {
  if (to_world_.empty()) return world_r;
  for (std::size_t i = 0; i < to_world_.size(); ++i)
    if (to_world_[i] == world_r) return static_cast<int>(i);
  return -1;
}

namespace {
/// Roster entry exchanged during split().
struct SplitEntry {
  int color;
  int key;
  int world_rank;
};
}  // namespace

Comm Comm::split(int color, int key) {
  SOMPI_REQUIRE_MSG(color >= 0, "every rank must pick a non-negative color");
  const SplitEntry mine{color, key, world_rank(rank_)};
  const auto roster = allgather(mine);

  // Members of my color, ordered by (key, world rank).
  std::vector<SplitEntry> members;
  for (const auto& e : roster)
    if (e.color == color) members.push_back(e);
  std::sort(members.begin(), members.end(), [](const SplitEntry& a, const SplitEntry& b) {
    return a.key != b.key ? a.key < b.key : a.world_rank < b.world_rank;
  });

  std::vector<int> to_world;
  int my_sub = -1;
  for (const auto& e : members) {
    if (e.world_rank == mine.world_rank) my_sub = static_cast<int>(to_world.size());
    to_world.push_back(e.world_rank);
  }
  SOMPI_ASSERT(my_sub >= 0);

  // All participants derive the same child context deterministically from
  // the parent context and the per-comm split sequence (all ranks call
  // split in the same order). Disjoint colors may share a context — their
  // member (world-rank) sets are disjoint, so traffic cannot cross anyway.
  ++split_seq_;
  const int child_context = ((context_ * 131 + split_seq_) % ((1 << kContextBits) - 1)) + 1;
  return Comm(world_, my_sub, std::move(to_world), child_context);
}

void Comm::send_bytes(int dest, int tag, std::span<const std::byte> payload) {
  SOMPI_REQUIRE(dest >= 0 && dest < size());
  const int wire_tag = tag >= kCollectiveTagBase ? tag : mangle(tag);
  // No kill check: sends always complete. A dying rank's sends all precede
  // its death in program order, and a survivor's sends must not be cut short
  // by how another rank's death raced this call — either way, the set of
  // messages actually sent stays a deterministic function of each rank's own
  // execution.
  const int w_dest = world_rank(dest);
  Message m;
  m.source = world_rank(rank_);
  m.tag = wire_tag;
  m.payload.assign(payload.begin(), payload.end());
  auto& st = world_->stats(world_rank(rank_));
  ++st.messages_sent;
  st.bytes_sent += payload.size();
  if (const OpCoster* coster = world_->op_coster(); coster != nullptr)
    st.model_net_seconds += coster->message_seconds(payload.size());
  world_->mailbox(w_dest).deliver(std::move(m));
}

Message Comm::recv_message(int source, int tag) {
  // A tag wildcard on a split communicator could match another
  // communicator's traffic: the context lives in the tag bits.
  SOMPI_REQUIRE_MSG(context_ == 0 || tag != kAnyTag,
                    "kAnyTag is not supported on split communicators");
  const int wire_tag =
      tag == kAnyTag ? kAnyTag : (tag >= kCollectiveTagBase ? tag : mangle(tag));
  const int wire_source = source == kAnySource ? kAnySource : world_rank(source);
  // No kill check here either: the mailbox drains queued matches first and
  // throws KilledError only once the awaited sender rank has exited, so an
  // in-flight message is consumed (and the code after the recv runs) in
  // every schedule or in none.
  Message m = world_->mailbox(world_rank(rank_)).receive(wire_source, wire_tag);
  auto& st = world_->stats(world_rank(rank_));
  ++st.messages_received;
  st.bytes_received += m.payload.size();
  // Translate back into this communicator's coordinates.
  const int sub = sub_rank(m.source);
  SOMPI_ASSERT_MSG(sub >= 0, "message crossed communicator boundaries");
  m.source = sub;
  if (m.tag < kCollectiveTagBase) m.tag &= (kMaxUserTag - 1);
  return m;
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag) {
  return recv_message(source, tag).payload;
}

bool Comm::probe(int source, int tag) {
  SOMPI_REQUIRE_MSG(context_ == 0 || tag != kAnyTag,
                    "kAnyTag is not supported on split communicators");
  const int wire_tag =
      tag == kAnyTag ? kAnyTag : (tag >= kCollectiveTagBase ? tag : mangle(tag));
  const int wire_source = source == kAnySource ? kAnySource : world_rank(source);
  world_->check_failure();
  return world_->mailbox(world_rank(rank_)).probe(wire_source, wire_tag);
}

Request Comm::isend_bytes(int dest, int tag, std::span<const std::byte> payload) {
  send_bytes(dest, tag, payload);  // eager buffering: completes immediately
  return Request{};
}

Request Comm::irecv(int source, int tag) { return Request(this, source, tag); }

Message Comm::sendrecv_bytes(int dest, int send_tag, std::span<const std::byte> payload,
                             int source, int recv_tag) {
  send_bytes(dest, send_tag, payload);
  return recv_message(source, recv_tag);
}

bool Request::test() {
  if (done_ || !receive_) return true;
  if (!comm_->probe(source_, tag_)) return false;
  message_ = comm_->recv_message(source_, tag_);
  done_ = true;
  return true;
}

Message Request::wait() {
  if (!receive_ || done_) return std::move(message_);
  message_ = comm_->recv_message(source_, tag_);
  done_ = true;
  return std::move(message_);
}

void Comm::barrier() {
  world_->check_failure();
  if (to_world_.empty()) {
    world_->barrier_wait();  // world barrier: central sense-reversing
    return;
  }
  // Sub-communicator barrier: a zero-byte allgather over the members.
  (void)allgather<char>(0);
}

void Comm::bcast_bytes(std::vector<std::byte>& data, int root) {
  SOMPI_REQUIRE(root >= 0 && root < size());
  const int tag = next_collective_tag(0);
  // Root-direct fan-out rather than a binomial tree — a deliberate choice
  // for deterministic failure semantics, not a simplification. Every copy's
  // sender is the root, so whether a rank's copy exists depends only on how
  // far the root itself got before dying — one sender, one deterministic
  // answer. A tree routes copies through intermediate ranks, so a receiver's
  // fate would additionally hinge on each relay's fate; keeping the
  // dependency chain one deep keeps the failure analysis trivial. At the
  // rank counts this runtime simulates (threads in one process), the tree's
  // latency advantage is irrelevant.
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send_bytes(r, tag, data);
  } else {
    data = recv_bytes(root, tag);
  }
}

void Comm::tick() {
  world_->failures().on_tick();
  world_->check_failure();
}

const RankStats& Comm::stats() const { return world_->stats(world_rank(rank_)); }

int Comm::next_collective_tag(int op_id) {
  SOMPI_ASSERT(op_id >= 0 && op_id < 16);
  // Layout: base | context (10 bits) | sequence (16 bits) | op (4 bits).
  SOMPI_ASSERT_MSG(collective_seq_ < (1 << 16), "collective sequence exhausted");
  const int tag = kCollectiveTagBase + (context_ << 20) + collective_seq_ * 16 + op_id;
  ++collective_seq_;
  return tag;
}

}  // namespace sompi::mpi
