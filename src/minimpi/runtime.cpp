#include "minimpi/runtime.h"

#include <chrono>

#include "common/error.h"

namespace sompi::mpi {

Runtime::Runtime(int world_size)
    : world_size_(world_size), world_(world_size, &failures_),
      errors_(static_cast<std::size_t>(world_size)),
      rank_killed_(static_cast<std::size_t>(world_size), false) {
  SOMPI_REQUIRE(world_size >= 1);
}

Runtime::~Runtime() {
  if (launched_ && !joined_) {
    // Never leak running rank threads: force unwind and reap.
    kill();
    for (auto& t : threads_)
      if (t.joinable()) t.join();
  }
}

void Runtime::launch(RankFn fn) {
  SOMPI_REQUIRE_MSG(!launched_, "Runtime::launch may be called once");
  launched_ = true;
  start_ = std::chrono::steady_clock::now();
  threads_.reserve(static_cast<std::size_t>(world_size_));
  for (int r = 0; r < world_size_; ++r) {
    threads_.emplace_back([this, fn, r] {
      Comm comm(&world_, r);
      try {
        fn(comm);
      } catch (const KilledError&) {
        rank_killed_[static_cast<std::size_t>(r)] = 1;
        // A killed rank can never complete the world; make sure ranks parked
        // in a barrier learn that even when the kill arrived through a
        // departed-sender receive rather than the failure controller.
        failures_.kill();
        world_.announce_kill();
      } catch (const std::exception& e) {
        errors_[static_cast<std::size_t>(r)] = e.what();
        // Fail fast: one broken rank deadlocks the world otherwise. The
        // soft announcement (not a mailbox abort) keeps surviving ranks'
        // in-flight traffic deterministic; their own unwind happens at the
        // next protocol point or departed-sender receive.
        failures_.kill();
        world_.announce_kill();
      }
      // Always recorded, even on normal return: receivers still waiting on
      // this rank would otherwise block forever.
      world_.mark_departed(r);
    });
  }
}

void Runtime::kill() {
  failures_.kill();
  world_.propagate_kill();
}

RunResult Runtime::join() {
  SOMPI_REQUIRE_MSG(launched_ && !joined_, "join() requires a launched, unjoined runtime");
  joined_ = true;
  for (auto& t : threads_) t.join();

  RunResult result;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  bool any_killed = false;
  for (int r = 0; r < world_size_; ++r) {
    if (!errors_[static_cast<std::size_t>(r)].empty())
      result.errors.push_back("rank " + std::to_string(r) + ": " +
                              errors_[static_cast<std::size_t>(r)]);
    any_killed = any_killed || rank_killed_[static_cast<std::size_t>(r)] != 0;
    result.stats.push_back(world_.stats(r));
  }
  result.killed = any_killed && result.errors.empty();
  result.completed = !any_killed && result.errors.empty();
  return result;
}

RunResult Runtime::run(int world_size, const RankFn& fn) {
  Runtime rt(world_size);
  rt.launch(fn);
  return rt.join();
}

RunResult Runtime::run_with_kill(int world_size, const RankFn& fn,
                                 std::uint64_t kill_after_ticks) {
  Runtime rt(world_size);
  rt.failures().arm_after_ticks(kill_after_ticks);
  rt.launch(fn);
  return rt.join();
}

RunResult Runtime::run_with_plan(int world_size, const RankFn& fn,
                                 const fi::FaultPlan& plan) {
  if (plan.kill_after_ticks == 0) return run(world_size, fn);
  return run_with_kill(world_size, fn, plan.kill_after_ticks);
}

}  // namespace sompi::mpi
