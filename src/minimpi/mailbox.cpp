#include "minimpi/mailbox.h"

#include <algorithm>

namespace sompi::mpi {

void Mailbox::deliver(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (aborted_) return;
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (aborted_) throw KilledError();
    const auto it = std::find_if(queue_.begin(), queue_.end(),
                                 [&](const Message& m) { return matches(m, source, tag); });
    if (it != queue_.end()) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Message& m) { return matches(m, source, tag); });
}

void Mailbox::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::aborted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aborted_;
}

}  // namespace sompi::mpi
