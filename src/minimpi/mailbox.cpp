#include "minimpi/mailbox.h"

#include <algorithm>
#include <utility>

namespace sompi::mpi {

void Mailbox::deliver(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = std::find_if(queue_.begin(), queue_.end(),
                                 [&](const Message& m) { return matches(m, source, tag); });
    if (it != queue_.end()) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
    if (sender_gone_ && sender_gone_(source)) throw KilledError();
    if (aborted_) throw KilledError();
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Message& m) { return matches(m, source, tag); });
}

void Mailbox::set_sender_gone(std::function<bool(int)> oracle) {
  std::lock_guard<std::mutex> lock(mutex_);
  sender_gone_ = std::move(oracle);
}

void Mailbox::poke() {
  // Empty critical section on purpose: it fences against a receiver that
  // already evaluated its predicates and is about to wait — once we hold the
  // mutex, that receiver is parked in cv_.wait and will see the notify.
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
}

void Mailbox::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::aborted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aborted_;
}

}  // namespace sompi::mpi
