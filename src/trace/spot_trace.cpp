#include "trace/spot_trace.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sompi {

SpotTrace::SpotTrace(double step_hours, std::vector<double> prices)
    : step_hours_(step_hours), prices_(std::move(prices)) {
  SOMPI_REQUIRE(step_hours_ > 0.0);
  for (double p : prices_) SOMPI_REQUIRE_MSG(p >= 0.0, "spot price must be non-negative");
}

double SpotTrace::price(std::size_t i) const {
  SOMPI_REQUIRE(i < prices_.size());
  return prices_[i];
}

double SpotTrace::price_at_hours(double hours) const {
  SOMPI_REQUIRE(hours >= 0.0);
  auto i = static_cast<std::size_t>(hours / step_hours_);
  i = std::min(i, prices_.size() - 1);
  return price(i);
}

void SpotTrace::ensure_index_locked() const {
  if (index_built_) return;
  sorted_ = prices_;
  std::sort(sorted_.begin(), sorted_.end());
  mean_memo_.assign(prices_.size() + 1, std::numeric_limits<double>::quiet_NaN());
  index_built_ = true;
}

double SpotTrace::max_price() const {
  SOMPI_REQUIRE(!prices_.empty());
  std::lock_guard<std::mutex> lock(index_mutex_);
  ensure_index_locked();
  return sorted_.back();
}

double SpotTrace::min_price() const {
  SOMPI_REQUIRE(!prices_.empty());
  std::lock_guard<std::mutex> lock(index_mutex_);
  ensure_index_locked();
  return sorted_.front();
}

double SpotTrace::mean_below(double bid) const {
  if (prices_.empty()) return 0.0;
  std::lock_guard<std::mutex> lock(index_mutex_);
  ensure_index_locked();
  // The admitted count determines the admitted multiset (the j smallest
  // prices, duplicates included), so the mean is memoized per count. The
  // memoized value comes from the same trace-order scan the naive version
  // runs — summing in sorted order would change the bits.
  const std::size_t j = static_cast<std::size_t>(
      std::upper_bound(sorted_.begin(), sorted_.end(), bid) - sorted_.begin());
  if (j == 0) return 0.0;
  double& memo = mean_memo_[j];
  if (std::isnan(memo)) {
    const double threshold = sorted_[j - 1];
    double sum = 0.0;
    std::size_t n = 0;
    for (double p : prices_) {
      if (p <= threshold) {
        sum += p;
        ++n;
      }
    }
    memo = sum / static_cast<double>(n);
  }
  return memo;
}

double SpotTrace::availability(double bid) const {
  if (prices_.empty()) return 0.0;
  std::lock_guard<std::mutex> lock(index_mutex_);
  ensure_index_locked();
  const std::size_t n = static_cast<std::size_t>(
      std::upper_bound(sorted_.begin(), sorted_.end(), bid) - sorted_.begin());
  return static_cast<double>(n) / static_cast<double>(prices_.size());
}

std::size_t SpotTrace::first_exceed(std::size_t start, double bid) const {
  for (std::size_t i = start; i < prices_.size(); ++i)
    if (prices_[i] > bid) return i - start;
  return kNever;
}

Histogram SpotTrace::histogram(double lo, double hi, std::size_t bins) const {
  Histogram h(lo, hi, bins);
  h.add_all(prices_);
  return h;
}

SpotTrace SpotTrace::window(std::size_t start, std::size_t len) const {
  SOMPI_REQUIRE(start <= prices_.size());
  const std::size_t end = std::min(start + len, prices_.size());
  return SpotTrace(step_hours_,
                   std::vector<double>(prices_.begin() + static_cast<std::ptrdiff_t>(start),
                                       prices_.begin() + static_cast<std::ptrdiff_t>(end)));
}

SpotTrace SpotTrace::tail_hours(double hours) const {
  SOMPI_REQUIRE(hours >= 0.0);
  const auto want = static_cast<std::size_t>(std::ceil(hours / step_hours_));
  const std::size_t start = prices_.size() > want ? prices_.size() - want : 0;
  return window(start, prices_.size() - start);
}

void SpotTrace::append(const SpotTrace& more) {
  SOMPI_REQUIRE_MSG(more.step_hours_ == step_hours_ || prices_.empty(),
                    "appended trace must use the same step size");
  if (prices_.empty()) step_hours_ = more.step_hours_;
  prices_.insert(prices_.end(), more.prices_.begin(), more.prices_.end());
  invalidate_index();
}

void SpotTrace::append(double price) {
  SOMPI_REQUIRE_MSG(price >= 0.0, "spot price must be non-negative");
  prices_.push_back(price);
  invalidate_index();
}

void SpotTrace::append(const std::vector<double>& prices) {
  for (double p : prices) SOMPI_REQUIRE_MSG(p >= 0.0, "spot price must be non-negative");
  prices_.insert(prices_.end(), prices.begin(), prices.end());
  invalidate_index();
}

}  // namespace sompi
