// A "market" bundles one spot-price trace per circle group (type × zone).
//
// The default profile assignment reproduces the paper's spatial observations
// (§2.1): the same instance type behaves differently across zones, zones are
// independent, and at least one (type, zone) pair is quiet while another is
// spiky.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cloud/catalog.h"
#include "common/rng.h"
#include "trace/generator.h"
#include "trace/spot_trace.h"

namespace sompi {

/// Spot-price traces for every circle group in a catalog.
class Market {
 public:
  Market(const Catalog* catalog, std::vector<SpotTrace> traces);

  const Catalog& catalog() const { return *catalog_; }

  /// Trace for a circle group; groups are indexed as type*zones+zone.
  const SpotTrace& trace(const CircleGroupSpec& group) const;
  SpotTrace& mutable_trace(const CircleGroupSpec& group);

  std::size_t group_count() const { return traces_.size(); }

  /// Sub-market containing only the trailing `hours` of each trace — what
  /// the adaptive optimizer sees at a window boundary.
  Market tail_hours(double hours) const;

  /// Sub-market with steps [start, start+len) of each trace.
  Market window(std::size_t start, std::size_t len) const;

 private:
  std::size_t index(const CircleGroupSpec& group) const;

  const Catalog* catalog_;
  std::vector<SpotTrace> traces_;
};

/// Per-group volatility assignment. Entry [t*zones+z] gives the class of
/// type t in zone z.
using MarketProfile = std::vector<VolatilityClass>;

/// The hand-calibrated profile reproducing Figure 1's zoo for the paper
/// catalog: us-east-1a spiky for the m1 family, us-east-1b quiet, 1c mixed.
MarketProfile paper_market_profile(const Catalog& catalog);

/// Uniformly seeded random profile (robustness studies).
MarketProfile random_market_profile(const Catalog& catalog, Rng& rng);

/// Base CALM spot price for a type: its spot_discount × on-demand price.
double base_spot_price(const InstanceType& type);

/// Generates a market: one trace per (type, zone) with per-group params.
/// `days` of history at `step_hours` resolution.
Market generate_market(const Catalog& catalog, const MarketProfile& profile, double days,
                       double step_hours, std::uint64_t seed);

}  // namespace sompi
