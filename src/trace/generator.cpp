#include "trace/generator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sompi {

RegimeParams regime_params_for(VolatilityClass volatility, double base_usd) {
  SOMPI_REQUIRE(base_usd > 0.0);
  // Spikes are rare but EXTREME in every class — the 2014 market regularly
  // priced m1.medium at ~$10 against an $0.087 on-demand rate (Figure 1a),
  // i.e. >100× the calm level. Classes differ in how often that happens and
  // how much mid-scale volatility surrounds it, not in whether it happens.
  RegimeParams p;
  p.base_usd = base_usd;
  switch (volatility) {
    case VolatilityClass::kQuiet:
      p.calm_jitter = 0.01;
      p.p_calm_to_volatile = 0.008;
      p.p_volatile_to_calm = 0.20;
      p.p_volatile_to_spike = 0.008;
      p.p_spike_to_calm = 0.25;
      p.p_calm_to_spike = 0.001;
      p.spike_lo = 30.0;
      p.spike_hi = 300.0;
      break;
    case VolatilityClass::kModerate:
      p.calm_jitter = 0.02;
      p.p_calm_to_volatile = 0.012;
      p.p_volatile_to_calm = 0.12;
      p.p_volatile_to_spike = 0.005;
      p.p_spike_to_calm = 0.22;
      p.p_calm_to_spike = 0.0006;
      p.spike_lo = 40.0;
      p.spike_hi = 400.0;
      break;
    case VolatilityClass::kSpiky:
      p.calm_jitter = 0.04;
      p.p_calm_to_volatile = 0.03;
      p.p_volatile_to_calm = 0.15;
      p.p_volatile_to_spike = 0.012;
      p.p_spike_to_calm = 0.20;
      p.p_calm_to_spike = 0.0015;
      p.spike_lo = 60.0;
      p.spike_hi = 700.0;  // $0.013 base → ~$9 peaks, as in Fig 1a
      break;
  }
  return p;
}

namespace {
enum class Regime { kCalm, kVolatile, kSpike };
}  // namespace

SpotTrace generate_trace(const RegimeParams& params, std::size_t steps, double step_hours,
                         Rng& rng) {
  SOMPI_REQUIRE(steps > 0);
  SOMPI_REQUIRE(step_hours > 0.0);

  std::vector<double> prices;
  prices.reserve(steps);

  Regime regime = Regime::kCalm;
  double walk = params.base_usd;  // VOLATILE random-walk state

  for (std::size_t i = 0; i < steps; ++i) {
    // Regime transition first, then price draw for the step.
    const double u = rng.uniform();
    switch (regime) {
      case Regime::kCalm:
        if (u < params.p_calm_to_spike) {
          regime = Regime::kSpike;
        } else if (u < params.p_calm_to_spike + params.p_calm_to_volatile) {
          regime = Regime::kVolatile;
          walk = params.base_usd;
        }
        break;
      case Regime::kVolatile:
        if (u < params.p_volatile_to_spike) {
          regime = Regime::kSpike;
        } else if (u < params.p_volatile_to_spike + params.p_volatile_to_calm) {
          regime = Regime::kCalm;
        }
        break;
      case Regime::kSpike:
        if (u < params.p_spike_to_calm) regime = Regime::kCalm;
        break;
    }

    double price = params.base_usd;
    switch (regime) {
      case Regime::kCalm:
        price = params.base_usd * (1.0 + params.calm_jitter * rng.normal());
        break;
      case Regime::kVolatile:
        walk *= std::exp(params.volatile_sigma * rng.normal());
        walk = std::clamp(walk, 0.2 * params.base_usd, params.volatile_cap * params.base_usd);
        price = walk;
        break;
      case Regime::kSpike:
        price = params.base_usd * rng.uniform(params.spike_lo, params.spike_hi);
        break;
    }
    prices.push_back(std::max(price, 0.001));
  }
  return SpotTrace(step_hours, std::move(prices));
}

RegimeStationary stationary_distribution(const RegimeParams& p) {
  // Solve πQ = π for the 3-state chain by normalizing the left eigenvector.
  // Transition matrix rows: calm, volatile, spike.
  const double c2v = p.p_calm_to_volatile;
  const double c2s = p.p_calm_to_spike;
  const double v2c = p.p_volatile_to_calm;
  const double v2s = p.p_volatile_to_spike;
  const double s2c = p.p_spike_to_calm;

  // Balance equations (spike only returns to calm):
  //   π_v (v2c) + π_s (s2c) = π_c (c2v + c2s)
  //   π_c (c2v)             = π_v (v2c + v2s)
  // Fix π_c = 1 and normalize.
  const double pi_c = 1.0;
  const double pi_v = c2v / (v2c + v2s);
  const double pi_s = (pi_c * c2s + pi_v * v2s) / s2c;
  const double z = pi_c + pi_v + pi_s;
  return {pi_c / z, pi_v / z, pi_s / z};
}

}  // namespace sompi
