// Analytic first-passage probabilities for the regime-switching generator —
// the closed-form oracle behind the empirical (histogram/Monte-Carlo)
// failure-rate estimator of §4.4.
//
// For a bid above the CALM band and the VOLATILE cap but below the spike
// floor, the price exceeds the bid exactly when the chain is in SPIKE (for
// bids inside the spike range, with probability q = P[spike price > bid]).
// The (CALM, VOLATILE, not-exceeding-SPIKE) sub-chain is then absorbing-
// Markov, and survival(t) follows from powers of its sub-stochastic
// transition matrix. Used as a test oracle and an ablation: how much does
// the empirical estimator lose against the ground truth it samples from?
#pragma once

#include <cstddef>
#include <vector>

#include "trace/generator.h"

namespace sompi {

class AnalyticFirstPassage {
 public:
  /// `bid` must clear the volatile band (>= volatile_cap × base); below
  /// that the walk's continuous state breaks the small-matrix analysis.
  AnalyticFirstPassage(const RegimeParams& params, double bid);

  /// P[first passage >= t] starting from the chain's stationary mix.
  double survival(std::size_t t) const;

  /// P[first passage == t].
  double pmf(std::size_t t) const;

  /// Expected first-passage time, conditioned/censored at `horizon` like
  /// FailureModel::mtbf.
  double mtbf(std::size_t horizon) const;

  /// Probability a spike's price exceeds the bid (uniform spike law).
  double spike_exceed_probability() const { return q_; }

 private:
  /// Advances the sub-stochastic state one step; returns surviving mass.
  void step(double& calm, double& volatile_state, double& spike) const;

  RegimeParams params_;
  double q_;  // P[price > bid | SPIKE]
  // Initial (stationary) occupancy.
  double pi_calm_;
  double pi_volatile_;
  double pi_spike_;
};

}  // namespace sompi
