// Synthetic spot-price generation.
//
// We cannot replay Amazon's 2014 traces (not redistributable), so we generate
// traces from a three-state regime-switching model calibrated to the paper's
// qualitative trace study (§2.1, Figures 1–2):
//   * CALM     — price sits at a low base with tiny jitter, long dwell times
//                ("the spot price can be unchanged for some time").
//   * VOLATILE — multiplicative random walk around the base
//                ("changing dramatically for some other time").
//   * SPIKE    — price jumps far above on-demand for a short burst
//                (m1.medium us-east-1a reaching ~$10 in Figure 1a).
// State dwell times are geometric, so the short-horizon price distribution is
// stationary — the property (Figure 2) the whole SOMPI model relies on.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "trace/spot_trace.h"

namespace sompi {

/// Volatility character of one circle group's market.
enum class VolatilityClass {
  kQuiet,     ///< almost always CALM (us-east-1b style in Figure 1)
  kModerate,  ///< occasional volatility, rare small spikes
  kSpiky,     ///< frequent volatility and large spikes (us-east-1a m1.medium)
};

/// Full parameter set of the regime-switching model.
struct RegimeParams {
  double base_usd = 0.03;      ///< CALM price level (≈ 0.35 × on-demand)
  double calm_jitter = 0.02;   ///< relative sigma of CALM jitter
  double volatile_sigma = 0.25;///< per-step log-sigma of the VOLATILE walk
  double volatile_cap = 4.0;   ///< VOLATILE walk capped at base × cap
  double spike_lo = 5.0;       ///< spike multiplier lower bound (× base)
  double spike_hi = 40.0;      ///< spike multiplier upper bound (× base)
  // Per-step transition probabilities (row-stochastic remainder stays put).
  double p_calm_to_volatile = 0.01;
  double p_volatile_to_calm = 0.08;
  double p_volatile_to_spike = 0.02;
  double p_spike_to_calm = 0.30;
  double p_calm_to_spike = 0.0005;
};

/// Canonical parameters for a volatility class at a given CALM base price.
RegimeParams regime_params_for(VolatilityClass volatility, double base_usd);

/// Generates `steps` price steps of length `step_hours` each.
SpotTrace generate_trace(const RegimeParams& params, std::size_t steps, double step_hours,
                         Rng& rng);

/// Analytic stationary distribution of the regime chain
/// (P[CALM], P[VOLATILE], P[SPIKE]) — used as a test oracle.
struct RegimeStationary {
  double calm = 0.0;
  double volatile_ = 0.0;
  double spike = 0.0;
};
RegimeStationary stationary_distribution(const RegimeParams& params);

}  // namespace sompi
