#include "trace/market.h"

#include <cmath>

#include "common/error.h"

namespace sompi {

Market::Market(const Catalog* catalog, std::vector<SpotTrace> traces)
    : catalog_(catalog), traces_(std::move(traces)) {
  SOMPI_REQUIRE(catalog_ != nullptr);
  SOMPI_REQUIRE_MSG(traces_.size() == catalog_->types().size() * catalog_->zones().size(),
                    "one trace per (type, zone) required");
}

std::size_t Market::index(const CircleGroupSpec& group) const {
  SOMPI_REQUIRE(group.type_index < catalog_->types().size());
  SOMPI_REQUIRE(group.zone_index < catalog_->zones().size());
  return group.type_index * catalog_->zones().size() + group.zone_index;
}

const SpotTrace& Market::trace(const CircleGroupSpec& group) const {
  return traces_[index(group)];
}

SpotTrace& Market::mutable_trace(const CircleGroupSpec& group) { return traces_[index(group)]; }

Market Market::tail_hours(double hours) const {
  std::vector<SpotTrace> tails;
  tails.reserve(traces_.size());
  for (const auto& t : traces_) tails.push_back(t.tail_hours(hours));
  return Market(catalog_, std::move(tails));
}

Market Market::window(std::size_t start, std::size_t len) const {
  std::vector<SpotTrace> parts;
  parts.reserve(traces_.size());
  for (const auto& t : traces_) parts.push_back(t.window(start, len));
  return Market(catalog_, std::move(parts));
}

MarketProfile paper_market_profile(const Catalog& catalog) {
  const std::size_t zones = catalog.zones().size();
  MarketProfile profile(catalog.types().size() * zones, VolatilityClass::kModerate);
  auto set = [&](const std::string& type, std::size_t zone, VolatilityClass v) {
    profile[catalog.type_index(type) * zones + zone] = v;
  };
  // Figure 1 observations: the m1 family in us-east-1a is spiky; us-east-1b
  // is quiet across the board; us-east-1c sits in between. Compute-optimized
  // types see moderate variation in 1a.
  for (std::size_t t = 0; t < catalog.types().size(); ++t) {
    if (zones > 1) profile[t * zones + 1] = VolatilityClass::kQuiet;
    if (zones > 2) profile[t * zones + 2] = VolatilityClass::kModerate;
  }
  set("m1.medium", 0, VolatilityClass::kSpiky);
  set("m1.small", 0, VolatilityClass::kSpiky);
  if (zones > 2) set("m1.medium", 2, VolatilityClass::kQuiet);
  return profile;
}

MarketProfile random_market_profile(const Catalog& catalog, Rng& rng) {
  MarketProfile profile(catalog.types().size() * catalog.zones().size(),
                        VolatilityClass::kModerate);
  for (auto& v : profile) {
    switch (rng.uniform_index(3)) {
      case 0: v = VolatilityClass::kQuiet; break;
      case 1: v = VolatilityClass::kModerate; break;
      default: v = VolatilityClass::kSpiky; break;
    }
  }
  return profile;
}

double base_spot_price(const InstanceType& type) {
  SOMPI_REQUIRE(type.spot_discount > 0.0);
  return type.ondemand_usd_h * type.spot_discount;
}

Market generate_market(const Catalog& catalog, const MarketProfile& profile, double days,
                       double step_hours, std::uint64_t seed) {
  SOMPI_REQUIRE(days > 0.0);
  SOMPI_REQUIRE(step_hours > 0.0);
  SOMPI_REQUIRE(profile.size() == catalog.types().size() * catalog.zones().size());

  const auto steps = static_cast<std::size_t>(std::ceil(days * 24.0 / step_hours));
  Rng master(seed);
  std::vector<SpotTrace> traces;
  traces.reserve(profile.size());
  for (std::size_t t = 0; t < catalog.types().size(); ++t) {
    for (std::size_t z = 0; z < catalog.zones().size(); ++z) {
      Rng group_rng = master.split();
      const auto params =
          regime_params_for(profile[t * catalog.zones().size() + z],
                            base_spot_price(catalog.types()[t]));
      traces.push_back(generate_trace(params, steps, step_hours, group_rng));
    }
  }
  return Market(&catalog, std::move(traces));
}

}  // namespace sompi
