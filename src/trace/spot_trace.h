// Spot-price history for one circle group (one instance type in one zone).
//
// A trace is a step series: price is constant within a step of fixed length
// `step_hours`. Amazon updated spot prices periodically; the paper's model
// likewise discretizes failure times to integer steps (§3.2.1).
#pragma once

#include <cstddef>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"

namespace sompi {

class SpotTrace {
 public:
  /// Sentinel returned by first_exceed when the price never exceeds the bid.
  static constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

  SpotTrace() = default;

  /// Requires step_hours > 0 and all prices >= 0.
  SpotTrace(double step_hours, std::vector<double> prices);

  // Copies and moves carry only the series; the lazy query index (see
  // below) is rebuilt on first use so a window/tail copy stays O(n).
  SpotTrace(const SpotTrace& o) : step_hours_(o.step_hours_), prices_(o.prices_) {}
  SpotTrace& operator=(const SpotTrace& o) {
    if (this != &o) {
      step_hours_ = o.step_hours_;
      prices_ = o.prices_;
      invalidate_index();
    }
    return *this;
  }
  SpotTrace(SpotTrace&& o) noexcept
      : step_hours_(o.step_hours_), prices_(std::move(o.prices_)) {}
  SpotTrace& operator=(SpotTrace&& o) noexcept {
    if (this != &o) {
      step_hours_ = o.step_hours_;
      prices_ = std::move(o.prices_);
      invalidate_index();
    }
    return *this;
  }

  /// Appends a single price step — the feed pipeline's per-tick hot path.
  /// Invalidates the lazy index and memoized means under the index lock, so
  /// the next query sees exactly the state a freshly constructed trace would.
  void append(double price);

  /// Appends a batch of price steps (same invalidation semantics).
  void append(const std::vector<double>& prices);

  std::size_t steps() const { return prices_.size(); }
  bool empty() const { return prices_.empty(); }
  double step_hours() const { return step_hours_; }
  /// Total trace span in hours.
  double span_hours() const { return step_hours_ * static_cast<double>(steps()); }

  /// Price during step `i`.
  double price(std::size_t i) const;
  /// Price at absolute time `hours` from the start of the trace.
  double price_at_hours(double hours) const;
  const std::vector<double>& prices() const { return prices_; }

  /// Highest price seen — the paper's H_i, the upper bound of the bid range.
  /// O(1) after the first price query (lazy sorted index).
  double max_price() const;
  /// Lowest price seen. O(1) after the first price query.
  double min_price() const;

  /// Mean of all prices that are <= bid — the paper's expected spot price
  /// S_i(P). Returns 0 when no historical price is below the bid (the group
  /// would never launch and never accrue cost).
  ///
  /// O(log n) per distinct selection: the lazy sorted index locates how many
  /// prices the bid admits, and the mean for that selection is memoized. The
  /// memoized value is computed by the same trace-order scan the naive
  /// implementation performs, so results are bit-identical to it — sorted
  /// prefix sums would re-associate the additions and drift the failure
  /// model's expected prices by ulps, which the golden plans would catch.
  double mean_below(double bid) const;

  /// Fraction of steps whose price is <= bid (instant availability).
  /// O(log n) via the sorted index; the count is exact, so the result is the
  /// same division the naive scan performs.
  double availability(double bid) const;

  /// First step at or after `start` whose price strictly exceeds `bid`,
  /// expressed as an offset from `start`; kNever when none.
  std::size_t first_exceed(std::size_t start, double bid) const;

  /// Histogram of prices over [lo, hi) with `bins` bins.
  Histogram histogram(double lo, double hi, std::size_t bins) const;

  /// Copy of steps [start, start+len); clamped to the trace end.
  SpotTrace window(std::size_t start, std::size_t len) const;

  /// Copy of the trailing `hours` of history (the adaptive algorithm feeds
  /// the optimizer the previous window's trace).
  SpotTrace tail_hours(double hours) const;

  /// Appends another trace recorded with the same step size.
  void append(const SpotTrace& more);

 private:
  /// Builds the sorted index on first use; caller must hold index_mutex_.
  void ensure_index_locked() const;
  /// Drops the index and memos; takes index_mutex_ so appends on a trace
  /// whose index was already warmed cannot race a concurrent query into
  /// serving stale memoized means.
  void invalidate_index() {
    std::lock_guard<std::mutex> lock(index_mutex_);
    index_built_ = false;
    sorted_.clear();
    mean_memo_.clear();
  }

  double step_hours_ = 1.0;
  std::vector<double> prices_;
  // Lazy query index. Mutable + mutex-protected so the price queries stay
  // usable from const shared traces (market snapshots are read concurrently);
  // the first query pays the O(n log n) sort, later ones O(log n) or O(1).
  mutable std::mutex index_mutex_;
  mutable bool index_built_ = false;
  mutable std::vector<double> sorted_;     ///< prices, ascending
  mutable std::vector<double> mean_memo_;  ///< by admitted count; NaN = unset
};

}  // namespace sompi
