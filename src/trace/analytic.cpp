#include "trace/analytic.h"

#include <algorithm>

#include "common/error.h"

namespace sompi {

AnalyticFirstPassage::AnalyticFirstPassage(const RegimeParams& params, double bid)
    : params_(params) {
  SOMPI_REQUIRE_MSG(bid >= params.volatile_cap * params.base_usd,
                    "analytic model needs the bid to clear the volatile band");
  // P[spike price > bid] under the uniform spike law on [lo, hi] × base.
  const double m = bid / params.base_usd;
  q_ = std::clamp((params.spike_hi - m) / (params.spike_hi - params.spike_lo), 0.0, 1.0);

  const RegimeStationary pi = stationary_distribution(params);
  pi_calm_ = pi.calm;
  pi_volatile_ = pi.volatile_;
  pi_spike_ = pi.spike;
}

void AnalyticFirstPassage::step(double& calm, double& volatile_state, double& spike) const {
  const auto& p = params_;
  const double c = calm, v = volatile_state, s = spike;
  calm = c * (1.0 - p.p_calm_to_volatile - p.p_calm_to_spike) + v * p.p_volatile_to_calm +
         s * p.p_spike_to_calm;
  volatile_state = c * p.p_calm_to_volatile + v * (1.0 - p.p_volatile_to_calm - p.p_volatile_to_spike);
  spike = c * p.p_calm_to_spike + v * p.p_volatile_to_spike + s * (1.0 - p.p_spike_to_calm);
}

double AnalyticFirstPassage::survival(std::size_t t) const {
  // State at a uniformly random trace offset is stationary; each step the
  // SPIKE mass is thinned by the per-step exceed probability, then the
  // surviving mass transitions.
  double c = pi_calm_, v = pi_volatile_, s = pi_spike_;
  for (std::size_t i = 0; i < t; ++i) {
    s *= (1.0 - q_);  // survive step i
    step(c, v, s);
  }
  return c + v + s;
}

double AnalyticFirstPassage::pmf(std::size_t t) const {
  return survival(t) - survival(t + 1);
}

double AnalyticFirstPassage::mtbf(std::size_t horizon) const {
  double e = 0.0;
  for (std::size_t t = 0; t < horizon; ++t) e += pmf(t) * static_cast<double>(t);
  e += survival(horizon) * static_cast<double>(horizon);
  return e;
}

}  // namespace sompi
