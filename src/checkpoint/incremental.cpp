#include "checkpoint/incremental.h"

#include <algorithm>

#include "checkpoint/state_buffer.h"
#include "common/error.h"

namespace sompi {

namespace {

/// FNV-1a over a block — fast, deterministic, good enough for
/// change detection (a collision merely skips an upload of an identical-
/// hash block; we additionally require equal length).
std::uint64_t hash_block(std::span<const std::byte> block) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::byte b : block) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h ^ block.size();
}

}  // namespace

IncrementalCheckpointer::IncrementalCheckpointer(StorageBackend* store, std::string run_id,
                                                 std::size_t block_size,
                                                 fi::FaultInjector* faults)
    : store_(store), run_id_(std::move(run_id)), block_size_(block_size), faults_(faults) {
  SOMPI_REQUIRE(store_ != nullptr);
  SOMPI_REQUIRE(!run_id_.empty());
  SOMPI_REQUIRE_MSG(run_id_.find('/') == std::string::npos, "run_id must not contain '/'");
  SOMPI_REQUIRE(block_size_ >= 64);
}

std::string IncrementalCheckpointer::version_prefix(int version) const {
  return run_id_ + "/v" + std::to_string(version) + "/";
}

std::string IncrementalCheckpointer::meta_key(int version, int rank) const {
  return version_prefix(version) + "meta" + std::to_string(rank);
}

std::string IncrementalCheckpointer::block_key(int version, int rank,
                                               std::size_t block) const {
  return version_prefix(version) + "rank" + std::to_string(rank) + "/b" +
         std::to_string(block);
}

std::string IncrementalCheckpointer::commit_key(int version) const {
  return version_prefix(version) + "COMMIT";
}

int IncrementalCheckpointer::latest_version() const {
  int latest = -1;
  for (const std::string& key : store_->list(run_id_ + "/v")) {
    if (key.size() < 7 || key.compare(key.size() - 7, 7, "/COMMIT") != 0) continue;
    const std::size_t v_begin = run_id_.size() + 2;
    latest = std::max(latest, std::stoi(key.substr(v_begin, key.size() - 7 - v_begin)));
  }
  return latest;
}

bool IncrementalCheckpointer::has_snapshot() const {
  const int version = latest_version();
  return version >= 0 && store_->exists(commit_key(version));
}

bool IncrementalCheckpointer::has_snapshot(mpi::Comm& comm) const {
  int found = 0;
  if (comm.rank() == 0) found = has_snapshot() ? 1 : 0;
  comm.bcast(found, /*root=*/0);
  return found != 0;
}

int IncrementalCheckpointer::save(mpi::Comm& comm, std::span<const std::byte> rank_state) {
  comm.barrier();
  int version = 0;
  if (comm.rank() == 0) version = latest_version() + 1;
  comm.bcast(version, /*root=*/0);

  if (faults_ != nullptr)
    faults_->protocol_point(fi::Channel::kCkptPreBlob, meta_key(version, comm.rank()));

  const std::size_t blocks = (rank_state.size() + block_size_ - 1) / block_size_;

  // Previous manifest for this rank (absent after a restart or on v0).
  std::vector<std::int32_t> block_version(blocks, static_cast<std::int32_t>(version));
  std::vector<std::uint64_t> hashes(blocks, 0);
  std::vector<std::int32_t> prev_manifest;
  bool have_prev = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = prev_hashes_.find(comm.rank());
    // Hashes are only usable when they belong to exactly the previous
    // version — a torn save leaves a version gap and forces a full upload.
    have_prev = it != prev_hashes_.end() && it->second.version == version - 1 &&
                it->second.hashes.size() == blocks;
  }
  if (have_prev) {
    // The previous version's manifest tells where each unchanged block lives.
    const auto blob = store_->get(meta_key(version - 1, comm.rank()));
    if (blob) {
      StateReader reader(*blob);
      (void)reader.read<std::uint64_t>();  // total size
      (void)reader.read<std::uint64_t>();  // block size
      prev_manifest = reader.read_vec<std::int32_t>();
      have_prev = prev_manifest.size() == blocks;
    } else {
      have_prev = false;
    }
  }

  std::uint64_t uploaded_now = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& prev = prev_hashes_[comm.rank()];
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t off = b * block_size_;
      const auto len = std::min(block_size_, rank_state.size() - off);
      const auto block = rank_state.subspan(off, len);
      hashes[b] = hash_block(block);
      if (have_prev && b < prev.hashes.size() && prev.hashes[b] == hashes[b]) {
        block_version[b] = prev_manifest[b];  // unchanged: reference back
      } else {
        store_->put(block_key(version, comm.rank(), b), block);
        uploaded_now += len;
      }
    }
    prev.version = version;
    prev.hashes = std::move(hashes);
    logical_ += rank_state.size();
    uploaded_ += uploaded_now;
  }

  // Manifest: total size, block size, per-block source version.
  StateWriter writer;
  writer.write<std::uint64_t>(rank_state.size());
  writer.write<std::uint64_t>(block_size_);
  writer.write_vec(block_version);
  store_->put(meta_key(version, comm.rank()), writer.take());

  comm.barrier();
  if (comm.rank() == 0) {
    if (faults_ != nullptr)
      faults_->protocol_point(fi::Channel::kCkptPreCommit, commit_key(version));
    static constexpr std::byte kMark{1};
    store_->put(commit_key(version), std::span<const std::byte>(&kMark, 1));
    if (faults_ != nullptr)
      faults_->protocol_point(fi::Channel::kCkptPostCommit, commit_key(version));
  }
  comm.barrier();
  return version;
}

std::optional<std::vector<std::byte>> IncrementalCheckpointer::load_latest(mpi::Comm& comm) {
  int version = -1;
  if (comm.rank() == 0) version = latest_version();
  comm.bcast(version, /*root=*/0);
  if (version < 0) return std::nullopt;

  if (faults_ != nullptr)
    faults_->protocol_point(fi::Channel::kCkptPreLoad, meta_key(version, comm.rank()));
  const auto meta = store_->get(meta_key(version, comm.rank()));
  if (!meta) throw IoError("incremental checkpoint missing manifest for rank");
  StateReader reader(*meta);
  const auto total = reader.read<std::uint64_t>();
  const auto bs = reader.read<std::uint64_t>();
  const auto manifest = reader.read_vec<std::int32_t>();
  SOMPI_ASSERT(bs == block_size_);

  std::vector<std::byte> state(total);
  for (std::size_t b = 0; b < manifest.size(); ++b) {
    const auto blob = store_->get(block_key(manifest[b], comm.rank(), b));
    if (!blob) throw IoError("incremental checkpoint missing block");
    const std::size_t off = b * block_size_;
    SOMPI_ASSERT(off + blob->size() <= total);
    std::copy(blob->begin(), blob->end(), state.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return state;
}

std::uint64_t IncrementalCheckpointer::bytes_logical() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return logical_;
}

std::uint64_t IncrementalCheckpointer::bytes_uploaded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return uploaded_;
}

}  // namespace sompi
