// Coordinated checkpointing over mini-MPI — the BLCR substitute.
//
// The paper (§2.2) argues for coordinated checkpointing because an
// out-of-bid event terminates every process of a circle group at the same
// instant: there is no need for message logging, only for a globally
// consistent cut. Applications call Checkpointer::save at an iteration
// boundary (no in-flight messages), which makes the barrier-bracketed
// protocol below sufficient:
//
//   barrier → every rank uploads its state blob → barrier →
//   rank 0 writes the commit marker → barrier.
//
// A kill at ANY point leaves either a fully committed snapshot or an
// uncommitted (ignored) one — never a torn restart.
#pragma once

#include <optional>
#include <string>

#include "checkpoint/storage.h"
#include "faultinject/injector.h"
#include "minimpi/comm.h"

namespace sompi {

/// Abstract surface of a coordinated checkpointer — what the apps' restore
/// guards and the replay simulator actually depend on. Implemented by the
/// flat S3-style Checkpointer, the block-dedup IncrementalCheckpointer, and
/// the SCR-style MultiLevelCheckpointer (DESIGN.md §11), so the choice of
/// hierarchy is invisible to the kernels.
class CoordinatedCheckpointing {
 public:
  virtual ~CoordinatedCheckpointing() = default;

  /// Collective: saves one coordinated snapshot; every rank passes its own
  /// serialized state. Returns the committed version number.
  virtual int save(mpi::Comm& comm, std::span<const std::byte> rank_state) = 0;

  /// Collective: loads this rank's blob from the latest committed snapshot;
  /// nullopt when no snapshot exists.
  virtual std::optional<std::vector<std::byte>> load_latest(mpi::Comm& comm) = 0;

  /// Latest committed version, -1 when none. Non-collective.
  virtual int latest_version() const = 0;

  /// True when a committed snapshot exists; must not download blob bytes.
  virtual bool has_snapshot() const = 0;

  /// Collective variant: rank 0 probes, everyone gets the same answer.
  virtual bool has_snapshot(mpi::Comm& comm) const = 0;
};

class Checkpointer : public CoordinatedCheckpointing {
 public:
  /// `store` is borrowed and must outlive the checkpointer. `run_id`
  /// namespaces keys, so several applications can share one store.
  /// `faults`, when given, arms the checkpoint-protocol crash points
  /// (pre-blob / pre-commit / post-commit / pre-load); it is borrowed too.
  Checkpointer(StorageBackend* store, std::string run_id,
               fi::FaultInjector* faults = nullptr);

  /// Collective: saves one coordinated snapshot; every rank passes its own
  /// serialized state. Returns the committed version number.
  int save(mpi::Comm& comm, std::span<const std::byte> rank_state) override;

  /// Collective: loads this rank's blob from the latest committed snapshot;
  /// nullopt when no snapshot exists.
  std::optional<std::vector<std::byte>> load_latest(mpi::Comm& comm) override;

  /// Latest committed version, -1 when none. Non-collective.
  int latest_version() const override;

  /// True when a committed snapshot exists. Non-collective; probes the
  /// commit marker with StorageBackend::exists, so no blob is downloaded.
  bool has_snapshot() const override;

  /// Collective variant: rank 0 probes, everyone gets the same answer.
  /// Restore paths guard on this instead of attempting a load, so a cold
  /// start costs one existence probe rather than a load round-trip.
  bool has_snapshot(mpi::Comm& comm) const override;

  /// Deletes all but the latest committed snapshot (bounded storage).
  /// Non-collective; call from a single rank (e.g. rank 0 after save).
  void garbage_collect();

  const std::string& run_id() const { return run_id_; }

 private:
  std::string version_prefix(int version) const;
  std::string rank_key(int version, int rank) const;
  std::string commit_key(int version) const;

  StorageBackend* store_;
  std::string run_id_;
  fi::FaultInjector* faults_;
};

}  // namespace sompi
