// SCR-style multi-level coordinated checkpointing (DESIGN.md §11).
//
// The paper writes every checkpoint straight to S3 (§4.4); LLNL SCR showed
// that a hierarchy is strictly better: a node-local cache level absorbs the
// checkpoint write at memory/disk speed, a partner/XOR redundancy level lets
// the circle group rebuild any single lost rank from its peers, and an
// asynchronous flush drains committed cache snapshots to remote storage
// while the application keeps computing. The levels, cheapest first:
//
//   L0 cache   — this group's node-local StorageBackend; dies with a node.
//   L1 peers   — redundancy shards (partner copy or rotated XOR parity)
//                stored next to the cache blobs; any single-rank loss (and,
//                for partner, any non-adjacent loss set) is rebuilt without
//                touching remote storage.
//   L2 remote  — the paper's S3-sim level, written by the flush; survives
//                whole-group out-of-bid kills.
//
// Restore walks committed versions newest-first and each version down that
// ladder, so the most advanced recoverable snapshot always wins and a stale
// cache version can never shadow a newer flushed one: save() assigns
// versions above the max committed version across ALL levels, and the
// restore candidate order is by version first, level second.
//
// The degenerate configuration (no cache level) delegates verbatim to the
// flat Checkpointer over the remote store — identical keys, identical
// billing, bit-identical behaviour to the pre-multilevel path. That is the
// anchor the differential tests in tests/test_multilevel_ckpt.cpp pin.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/checkpointer.h"
#include "checkpoint/compress.h"
#include "checkpoint/redundancy.h"
#include "checkpoint/storage.h"
#include "cloud/billing.h"
#include "faultinject/injector.h"
#include "minimpi/comm.h"

namespace sompi {

/// Per-transfer simulated-time source for checkpoint I/O. Implemented by the
/// platform layer (platform::PlatformTransferModel routes cache writes
/// through the host disk and flush/remote traffic through the zone uplink);
/// declared here so the checkpoint layer needs no platform dependency. Every
/// method must be a pure function of its arguments.
class CkptTransferModel {
 public:
  virtual ~CkptTransferModel() = default;
  /// Modeled seconds one rank's `bytes` blob takes to land in the L0 cache.
  virtual double cache_write_seconds(std::uint64_t bytes) const = 0;
  /// Modeled seconds `bytes` of wire data take to drain cache→remote.
  virtual double flush_seconds(std::uint64_t bytes) const = 0;
  /// Modeled seconds one rank's `bytes` restore read takes; `from_cache`
  /// selects the disk path (L0/L1) vs the uplink path (L2).
  virtual double restore_seconds(std::uint64_t bytes, bool from_cache) const = 0;
};

/// Configuration of the hierarchy. The default (no cache store) is the
/// degenerate single-S3-level setup.
struct MultiLevelConfig {
  /// Node-local cache level; nullptr disables L0/L1 entirely (degenerate).
  /// Borrowed; must outlive the checkpointer.
  StorageBackend* cache = nullptr;
  /// Peer redundancy encoded into the cache level (needs `cache`).
  RedundancyScheme redundancy = RedundancyScheme::kNone;
  /// Compression applied to blobs on the remote flush path.
  CompressionSpec compression;
  /// Drain cache→remote on a background thread, overlapping compute.
  bool async_flush = false;
  /// Platform transfer model billing modeled seconds for cache writes,
  /// flushes and restores into the stats below. Borrowed; nullptr (the
  /// default) charges nothing and leaves behaviour byte-identical.
  const CkptTransferModel* transfer = nullptr;
};

struct FlushStats {
  std::uint64_t flushes_started = 0;
  std::uint64_t flushes_completed = 0;
  std::uint64_t flushes_killed = 0;  ///< aborted by an injected kFlushKill
  std::uint64_t bytes_before_compression = 0;
  std::uint64_t bytes_flushed = 0;
  double compression_cpu_seconds = 0.0;
  /// Platform-modeled seconds for L0 cache writes (sum over ranks) and for
  /// wire bytes drained through the zone uplink; zero without a transfer
  /// model.
  double model_cache_write_seconds = 0.0;
  double model_flush_seconds = 0.0;
};

struct RecoveryStats {
  std::uint64_t cache_loads = 0;    ///< rank blobs served from L0
  std::uint64_t peer_rebuilds = 0;  ///< rank blobs rebuilt from L1 shards
  std::uint64_t remote_loads = 0;   ///< rank blobs fetched from L2
  /// Platform-modeled seconds spent reading restore bytes (disk for L0/L1,
  /// uplink for L2); zero without a transfer model.
  double model_restore_seconds = 0.0;
};

class MultiLevelCheckpointer : public CoordinatedCheckpointing {
 public:
  /// `remote` is the durable (S3-sim) level; borrowed, like every store.
  MultiLevelCheckpointer(StorageBackend* remote, std::string run_id,
                         MultiLevelConfig config = {},
                         fi::FaultInjector* faults = nullptr);
  ~MultiLevelCheckpointer() override;

  MultiLevelCheckpointer(const MultiLevelCheckpointer&) = delete;
  MultiLevelCheckpointer& operator=(const MultiLevelCheckpointer&) = delete;

  int save(mpi::Comm& comm, std::span<const std::byte> rank_state) override;
  std::optional<std::vector<std::byte>> load_latest(mpi::Comm& comm) override;

  /// Max committed version across all levels, -1 when none.
  int latest_version() const override;
  bool has_snapshot() const override;
  bool has_snapshot(mpi::Comm& comm) const override;

  /// Blocks until every queued async flush has drained (no-op when flushing
  /// synchronously). Call before tearing down the remote store or reading
  /// flush-dependent billing.
  void wait_flush();

  FlushStats flush_stats() const;
  RecoveryStats recovery_stats() const;

  /// Compression CPU billed as compute time through src/cloud/billing —
  /// the CPU-seconds-vs-bytes knob's cost side.
  double compression_cost_usd(BillingModel model, double usd_per_hour,
                              int instances = 1) const;

  const std::string& run_id() const { return run_id_; }
  bool degenerate() const { return config_.cache == nullptr; }

 private:
  struct FlushJob {
    int version = 0;
    std::vector<std::vector<std::byte>> blobs;  // one per rank
  };

  std::string cache_prefix(int version) const;
  std::string cache_rank_key(int version, int rank) const;
  std::string cache_commit_key(int version) const;
  std::string shard_key(int version, int rank) const;
  std::string remote_prefix(int version) const;
  std::string remote_rank_key(int version, int rank) const;
  std::string remote_commit_key(int version) const;

  /// Committed versions in a namespace, via list() (no GET billing).
  std::vector<int> committed_versions(const StorageBackend* store,
                                      const std::string& list_prefix,
                                      std::size_t v_begin) const;
  int cache_latest() const;
  int remote_latest() const;

  /// Runs one flush job to completion (or injected kill). Called from the
  /// worker thread or inline when async_flush is off.
  void run_flush(const FlushJob& job);
  void flush_worker();

  /// Collective cache+peer restore of `version`; nullopt when the ladder
  /// cannot rebuild every rank (fall through to remote / older versions).
  std::optional<std::vector<std::byte>> try_cache_level(mpi::Comm& comm, int version);
  /// Collective remote restore; nullopt when not committed there.
  std::optional<std::vector<std::byte>> try_remote_level(mpi::Comm& comm, int version);

  StorageBackend* remote_;
  std::string run_id_;
  MultiLevelConfig config_;
  fi::FaultInjector* faults_;

  /// The degenerate path: a plain Checkpointer over the remote store with
  /// the same run id — byte-identical keys and billing.
  Checkpointer inner_;

  mutable std::mutex mutex_;  // stats + rank-0 version bookkeeping
  FlushStats flush_stats_;
  RecoveryStats recovery_stats_;

  // Async flush machinery (rank 0 enqueues, one worker drains).
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  std::deque<FlushJob> flush_queue_;
  bool flush_stop_ = false;
  bool flush_busy_ = false;
  std::thread flush_thread_;
};

}  // namespace sompi
