// Incremental coordinated checkpointing — an extension over the paper's
// full-state BLCR+S3 scheme. Rank state is split into fixed-size blocks;
// a snapshot uploads only the blocks that changed since the previous
// snapshot plus a small manifest mapping each block to the version that
// last wrote it. For iterative solvers whose state drifts slowly this cuts
// the upload volume (the model's O_i) by the unchanged fraction, at the
// price of restore reads spanning several versions.
//
// The commit protocol is the same barrier-bracketed one as Checkpointer:
// a kill at any point leaves a fully committed snapshot or an ignored
// partial one.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "checkpoint/checkpointer.h"
#include "checkpoint/storage.h"
#include "faultinject/injector.h"
#include "minimpi/comm.h"

namespace sompi {

class IncrementalCheckpointer : public CoordinatedCheckpointing {
 public:
  /// `store` is borrowed. Blocks of `block_size` bytes (the last block of a
  /// state may be shorter). `faults`, when given, arms the protocol crash
  /// points (pre-blob / pre-commit / post-commit / pre-load); borrowed too.
  IncrementalCheckpointer(StorageBackend* store, std::string run_id,
                          std::size_t block_size = 64 * 1024,
                          fi::FaultInjector* faults = nullptr);

  /// Collective: saves a snapshot, uploading only changed blocks. Returns
  /// the committed version.
  int save(mpi::Comm& comm, std::span<const std::byte> rank_state) override;

  /// Collective: reconstructs this rank's latest committed state (blocks
  /// may be fetched from older versions). nullopt when none exists.
  std::optional<std::vector<std::byte>> load_latest(mpi::Comm& comm) override;

  /// Latest committed version, -1 when none.
  int latest_version() const override;

  /// True when a committed snapshot exists — probes the commit marker with
  /// StorageBackend::exists (non-collective / collective; see Checkpointer).
  bool has_snapshot() const override;
  bool has_snapshot(mpi::Comm& comm) const override;

  /// Logical state bytes passed to save() so far (this process).
  std::uint64_t bytes_logical() const;
  /// Block bytes actually uploaded (this process) — the dedup win is
  /// 1 − uploaded/logical.
  std::uint64_t bytes_uploaded() const;

  std::size_t block_size() const { return block_size_; }

 private:
  std::string version_prefix(int version) const;
  std::string meta_key(int version, int rank) const;
  std::string block_key(int version, int rank, std::size_t block) const;
  std::string commit_key(int version) const;

  StorageBackend* store_;
  std::string run_id_;
  std::size_t block_size_;
  fi::FaultInjector* faults_;

  // Per-rank hashes of the previously saved blocks, tagged with the version
  // they were saved as (this process only; a restarted process re-uploads
  // everything, which is safe). The version tag prevents pairing stale
  // hashes with the wrong manifest after an interrupted save.
  struct RankHashes {
    int version = -1;
    std::vector<std::uint64_t> hashes;
  };
  mutable std::mutex mutex_;
  std::map<int, RankHashes> prev_hashes_;
  std::uint64_t logical_ = 0;
  std::uint64_t uploaded_ = 0;
};

}  // namespace sompi
