#include "checkpoint/checkpointer.h"

#include <algorithm>

#include "common/error.h"

namespace sompi {

Checkpointer::Checkpointer(StorageBackend* store, std::string run_id,
                           fi::FaultInjector* faults)
    : store_(store), run_id_(std::move(run_id)), faults_(faults) {
  SOMPI_REQUIRE(store_ != nullptr);
  SOMPI_REQUIRE(!run_id_.empty());
  SOMPI_REQUIRE_MSG(run_id_.find('/') == std::string::npos, "run_id must not contain '/'");
}

std::string Checkpointer::version_prefix(int version) const {
  return run_id_ + "/v" + std::to_string(version) + "/";
}

std::string Checkpointer::rank_key(int version, int rank) const {
  return version_prefix(version) + "rank" + std::to_string(rank);
}

std::string Checkpointer::commit_key(int version) const {
  return version_prefix(version) + "COMMIT";
}

int Checkpointer::latest_version() const {
  int latest = -1;
  for (const std::string& key : store_->list(run_id_ + "/v")) {
    // Keys look like "<run>/v<N>/COMMIT".
    if (key.size() < 7 || key.compare(key.size() - 7, 7, "/COMMIT") != 0) continue;
    const std::size_t v_begin = run_id_.size() + 2;  // past "<run>/v"
    const int version = std::stoi(key.substr(v_begin, key.size() - 7 - v_begin));
    latest = std::max(latest, version);
  }
  return latest;
}

bool Checkpointer::has_snapshot() const {
  const int version = latest_version();
  return version >= 0 && store_->exists(commit_key(version));
}

bool Checkpointer::has_snapshot(mpi::Comm& comm) const {
  int found = 0;
  if (comm.rank() == 0) found = has_snapshot() ? 1 : 0;
  comm.bcast(found, /*root=*/0);
  return found != 0;
}

int Checkpointer::save(mpi::Comm& comm, std::span<const std::byte> rank_state) {
  // Quiesce: applications call at iteration boundaries, the barrier makes
  // the cut globally consistent.
  comm.barrier();

  // Rank 0 assigns the version and broadcasts it.
  int version = 0;
  if (comm.rank() == 0) version = latest_version() + 1;
  comm.bcast(version, /*root=*/0);

  if (faults_ != nullptr)
    faults_->protocol_point(fi::Channel::kCkptPreBlob, rank_key(version, comm.rank()));
  store_->put(rank_key(version, comm.rank()), rank_state);

  // All blobs durable before the commit marker exists.
  comm.barrier();
  if (comm.rank() == 0) {
    if (faults_ != nullptr)
      faults_->protocol_point(fi::Channel::kCkptPreCommit, commit_key(version));
    static constexpr std::byte kMark{1};
    store_->put(commit_key(version), std::span<const std::byte>(&kMark, 1));
    if (faults_ != nullptr)
      faults_->protocol_point(fi::Channel::kCkptPostCommit, commit_key(version));
  }
  // Nobody proceeds until the snapshot is committed.
  comm.barrier();
  return version;
}

std::optional<std::vector<std::byte>> Checkpointer::load_latest(mpi::Comm& comm) {
  int version = -1;
  if (comm.rank() == 0) version = latest_version();
  comm.bcast(version, /*root=*/0);
  if (version < 0) return std::nullopt;

  if (faults_ != nullptr)
    faults_->protocol_point(fi::Channel::kCkptPreLoad, rank_key(version, comm.rank()));
  auto blob = store_->get(rank_key(version, comm.rank()));
  if (!blob)
    throw IoError("committed checkpoint missing rank blob: " + rank_key(version, comm.rank()));
  return blob;
}

void Checkpointer::garbage_collect() {
  const int keep = latest_version();
  if (keep < 0) return;
  for (const std::string& key : store_->list(run_id_ + "/v")) {
    const std::size_t v_begin = run_id_.size() + 2;
    const std::size_t slash = key.find('/', v_begin);
    if (slash == std::string::npos) continue;
    const int version = std::stoi(key.substr(v_begin, slash - v_begin));
    if (version != keep) store_->remove(key);
  }
}

}  // namespace sompi
