#include "checkpoint/multilevel.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace sompi {
namespace {

// p2p tags for the shard/rebuild traffic (user tag space, < 2^18). Saves and
// loads are collective and issued in the same order on every rank, so plain
// (source, tag) matching is unambiguous.
constexpr int kTagBlobToRoot = 7101;
constexpr int kTagShardFromRoot = 7102;
constexpr int kTagRebuildBlob = 7103;
constexpr int kTagRebuildShard = 7104;
constexpr int kTagRebuiltToRank = 7105;

std::vector<std::byte> pack_optional(const std::optional<std::vector<std::byte>>& blob) {
  // 1 presence byte + payload: an absent blob is distinguishable from an
  // empty one.
  std::vector<std::byte> out;
  out.reserve(1 + (blob ? blob->size() : 0));
  out.push_back(std::byte(blob.has_value() ? 1 : 0));
  if (blob) out.insert(out.end(), blob->begin(), blob->end());
  return out;
}

std::optional<std::vector<std::byte>> unpack_optional(const std::vector<std::byte>& wire) {
  SOMPI_ASSERT(!wire.empty());
  if (std::to_integer<std::uint8_t>(wire[0]) == 0) return std::nullopt;
  return std::vector<std::byte>(wire.begin() + 1, wire.end());
}

}  // namespace

MultiLevelCheckpointer::MultiLevelCheckpointer(StorageBackend* remote, std::string run_id,
                                               MultiLevelConfig config,
                                               fi::FaultInjector* faults)
    : remote_(remote),
      run_id_(std::move(run_id)),
      config_(config),
      faults_(faults),
      inner_(remote, run_id_, faults) {
  SOMPI_REQUIRE(remote_ != nullptr);
  SOMPI_REQUIRE_MSG(config_.redundancy == RedundancyScheme::kNone || config_.cache != nullptr,
                    "peer redundancy requires a cache level");
  SOMPI_REQUIRE_MSG(!config_.async_flush || config_.cache != nullptr,
                    "async flush requires a cache level");
  if (config_.async_flush) flush_thread_ = std::thread([this] { flush_worker(); });
}

MultiLevelCheckpointer::~MultiLevelCheckpointer() {
  if (flush_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flush_mutex_);
      flush_stop_ = true;
    }
    flush_cv_.notify_all();
    flush_thread_.join();
  }
}

// --- key scheme ---------------------------------------------------------------
// Cache keys live under "<run>/l0/", shards under "<run>/l1/", remote keys are
// exactly the flat Checkpointer's "<run>/v<N>/..." — so flushed snapshots are
// readable by a plain Checkpointer and the degenerate config's keys (and
// therefore its S3-sim bill) are byte-identical to the pre-multilevel path.
// Distinct prefixes also mean a prefix scan of one level can never pick up
// another level's keys — the namespace-collision bug this PR's regression
// test pins down.

std::string MultiLevelCheckpointer::cache_prefix(int version) const {
  return run_id_ + "/l0/v" + std::to_string(version) + "/";
}
std::string MultiLevelCheckpointer::cache_rank_key(int version, int rank) const {
  return cache_prefix(version) + "rank" + std::to_string(rank);
}
std::string MultiLevelCheckpointer::cache_commit_key(int version) const {
  return cache_prefix(version) + "COMMIT";
}
std::string MultiLevelCheckpointer::shard_key(int version, int rank) const {
  return run_id_ + "/l1/v" + std::to_string(version) + "/shard" + std::to_string(rank);
}
std::string MultiLevelCheckpointer::remote_prefix(int version) const {
  return run_id_ + "/v" + std::to_string(version) + "/";
}
std::string MultiLevelCheckpointer::remote_rank_key(int version, int rank) const {
  return remote_prefix(version) + "rank" + std::to_string(rank);
}
std::string MultiLevelCheckpointer::remote_commit_key(int version) const {
  return remote_prefix(version) + "COMMIT";
}

std::vector<int> MultiLevelCheckpointer::committed_versions(const StorageBackend* store,
                                                            const std::string& list_prefix,
                                                            std::size_t v_begin) const {
  std::vector<int> versions;
  for (const std::string& key : store->list(list_prefix)) {
    if (key.size() < 7 || key.compare(key.size() - 7, 7, "/COMMIT") != 0) continue;
    if (key.size() <= v_begin || key[v_begin - 1] != 'v') continue;
    versions.push_back(std::stoi(key.substr(v_begin, key.size() - 7 - v_begin)));
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

int MultiLevelCheckpointer::cache_latest() const {
  if (config_.cache == nullptr) return -1;
  const auto v = committed_versions(config_.cache, run_id_ + "/l0/v", run_id_.size() + 5);
  return v.empty() ? -1 : v.back();
}

int MultiLevelCheckpointer::remote_latest() const {
  const auto v = committed_versions(remote_, run_id_ + "/v", run_id_.size() + 2);
  return v.empty() ? -1 : v.back();
}

int MultiLevelCheckpointer::latest_version() const {
  // Max across ALL level namespaces — never let a stale cache version (or a
  // cache that missed flushed progress) shadow the true frontier.
  return std::max(cache_latest(), remote_latest());
}

bool MultiLevelCheckpointer::has_snapshot() const {
  if (degenerate()) return inner_.has_snapshot();
  return latest_version() >= 0;
}

bool MultiLevelCheckpointer::has_snapshot(mpi::Comm& comm) const {
  if (degenerate()) return inner_.has_snapshot(comm);
  int found = 0;
  if (comm.rank() == 0) found = has_snapshot() ? 1 : 0;
  comm.bcast(found, /*root=*/0);
  return found != 0;
}

// --- save ---------------------------------------------------------------------

int MultiLevelCheckpointer::save(mpi::Comm& comm, std::span<const std::byte> rank_state) {
  if (degenerate()) return inner_.save(comm, rank_state);

  comm.barrier();
  int version = 0;
  if (comm.rank() == 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    version = latest_version() + 1;
  }
  comm.bcast(version, /*root=*/0);

  // L0: every rank writes its blob to the node-local cache.
  if (faults_ != nullptr)
    faults_->protocol_point(fi::Channel::kCkptPreBlob, cache_rank_key(version, comm.rank()));
  config_.cache->put(cache_rank_key(version, comm.rank()), rank_state);
  if (config_.transfer != nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    flush_stats_.model_cache_write_seconds +=
        config_.transfer->cache_write_seconds(rank_state.size());
  }

  // L1 + flush staging: rank 0 gathers the blobs, encodes redundancy shards
  // and hands each rank its shard; the gathered copies also feed the flush,
  // so the flush never re-reads the cache (it may be wiped meanwhile).
  std::vector<std::vector<std::byte>> blobs;
  if (comm.rank() == 0) {
    blobs.resize(static_cast<std::size_t>(comm.size()));
    blobs[0].assign(rank_state.begin(), rank_state.end());
    for (int r = 1; r < comm.size(); ++r)
      blobs[static_cast<std::size_t>(r)] = comm.recv_bytes(r, kTagBlobToRoot);
  } else {
    comm.send_bytes(0, kTagBlobToRoot, rank_state);
  }
  if (config_.redundancy != RedundancyScheme::kNone) {
    std::vector<std::byte> my_shard;
    if (comm.rank() == 0) {
      const auto shards = redundancy_encode(config_.redundancy, blobs);
      for (int r = 1; r < comm.size(); ++r)
        comm.send_bytes(r, kTagShardFromRoot, shards[static_cast<std::size_t>(r)]);
      my_shard = shards[0];
    } else {
      my_shard = comm.recv_bytes(0, kTagShardFromRoot);
    }
    config_.cache->put(shard_key(version, comm.rank()), my_shard);
    if (config_.transfer != nullptr) {
      std::lock_guard<std::mutex> lock(mutex_);
      flush_stats_.model_cache_write_seconds +=
          config_.transfer->cache_write_seconds(my_shard.size());
    }
  }

  // Cache commit: same barrier-bracketed protocol as the flat Checkpointer.
  comm.barrier();
  if (comm.rank() == 0) {
    if (faults_ != nullptr)
      faults_->protocol_point(fi::Channel::kCkptPreCommit, cache_commit_key(version));
    static constexpr std::byte kMark{1};
    config_.cache->put(cache_commit_key(version), std::span<const std::byte>(&kMark, 1));
    if (faults_ != nullptr)
      faults_->protocol_point(fi::Channel::kCkptPostCommit, cache_commit_key(version));

    // L2: drain to remote — inline, or queued for the flush worker so the
    // app's next iterations overlap the upload.
    FlushJob job;
    job.version = version;
    job.blobs = std::move(blobs);
    if (config_.async_flush) {
      {
        std::lock_guard<std::mutex> lock(flush_mutex_);
        flush_queue_.push_back(std::move(job));
      }
      flush_cv_.notify_one();
    } else {
      run_flush(job);
    }
  }
  comm.barrier();
  return version;
}

// --- flush --------------------------------------------------------------------

void MultiLevelCheckpointer::run_flush(const FlushJob& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++flush_stats_.flushes_started;
  }
  // An injected spot kill mid-flush: the remote COMMIT is never written, so
  // the half-flushed version is invisible to restores — the cache (if it
  // survives) or an older remote version serves instead.
  const bool killed =
      faults_ != nullptr && faults_->fires(fi::Channel::kFlushKill, remote_commit_key(job.version));

  double cpu_seconds = 0.0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t flushed_bytes = 0;
  std::size_t uploaded = 0;
  for (std::size_t r = 0; r < job.blobs.size(); ++r) {
    if (killed && r >= job.blobs.size() / 2) break;  // kill lands mid-upload
    const std::vector<std::byte>& blob = job.blobs[r];
    raw_bytes += blob.size();
    cpu_seconds += compression_cpu_seconds(config_.compression, blob.size());
    const std::vector<std::byte> wire = compress_bytes(config_.compression.mode, blob);
    remote_->put(remote_rank_key(job.version, static_cast<int>(r)), wire);
    flushed_bytes += wire.size();
    ++uploaded;
  }
  if (!killed && uploaded == job.blobs.size()) {
    static constexpr std::byte kMark{1};
    remote_->put(remote_commit_key(job.version), std::span<const std::byte>(&kMark, 1));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  flush_stats_.bytes_before_compression += raw_bytes;
  flush_stats_.bytes_flushed += flushed_bytes;
  flush_stats_.compression_cpu_seconds += cpu_seconds;
  if (config_.transfer != nullptr)
    flush_stats_.model_flush_seconds += config_.transfer->flush_seconds(flushed_bytes);
  if (killed) {
    ++flush_stats_.flushes_killed;
  } else {
    ++flush_stats_.flushes_completed;
  }
}

void MultiLevelCheckpointer::flush_worker() {
  std::unique_lock<std::mutex> lock(flush_mutex_);
  for (;;) {
    flush_cv_.wait(lock, [this] { return flush_stop_ || !flush_queue_.empty(); });
    if (flush_queue_.empty()) {
      if (flush_stop_) return;
      continue;
    }
    const FlushJob job = std::move(flush_queue_.front());
    flush_queue_.pop_front();
    flush_busy_ = true;
    lock.unlock();
    run_flush(job);
    lock.lock();
    flush_busy_ = false;
    flush_cv_.notify_all();  // wake wait_flush()
  }
}

void MultiLevelCheckpointer::wait_flush() {
  if (!config_.async_flush) return;
  std::unique_lock<std::mutex> lock(flush_mutex_);
  flush_cv_.wait(lock, [this] { return flush_queue_.empty() && !flush_busy_; });
}

// --- load ---------------------------------------------------------------------

std::optional<std::vector<std::byte>> MultiLevelCheckpointer::try_cache_level(mpi::Comm& comm,
                                                                              int version) {
  // Every rank probes its own cache blob; one allreduce decides whether the
  // whole group can be served without rebuilds.
  std::optional<std::vector<std::byte>> mine =
      config_.cache->get(cache_rank_key(version, comm.rank()));
  const int missing = comm.allreduce(mine.has_value() ? 0 : 1, mpi::ReduceOp::kSum);
  if (missing == 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++recovery_stats_.cache_loads;
    if (config_.transfer != nullptr)
      recovery_stats_.model_restore_seconds +=
          config_.transfer->restore_seconds(mine->size(), /*from_cache=*/true);
    return mine;
  }
  if (config_.redundancy == RedundancyScheme::kNone) return std::nullopt;

  // Peer rebuild: rank 0 collects surviving blobs and shards, runs the
  // decoder for each lost rank, and returns the rebuilt blobs to their
  // owners. Decode failures (torn shard, second loss in a chunk group)
  // surface as nullopt and the caller falls further down the ladder.
  const std::optional<std::vector<std::byte>> shard =
      config_.cache->get(shard_key(version, comm.rank()));
  std::optional<std::vector<std::byte>> rebuilt;
  if (comm.rank() == 0) {
    const std::size_t k = static_cast<std::size_t>(comm.size());
    std::vector<std::optional<std::vector<std::byte>>> blobs(k), shards(k);
    blobs[0] = mine;
    shards[0] = shard;
    for (int r = 1; r < comm.size(); ++r) {
      blobs[static_cast<std::size_t>(r)] = unpack_optional(comm.recv_bytes(r, kTagRebuildBlob));
      shards[static_cast<std::size_t>(r)] = unpack_optional(comm.recv_bytes(r, kTagRebuildShard));
    }
    bool all_ok = true;
    std::size_t rebuilds = 0;
    for (std::size_t i = 0; i < k && all_ok; ++i) {
      if (blobs[i].has_value()) continue;
      auto decoded = redundancy_decode(config_.redundancy, blobs, shards, i);
      if (!decoded.has_value()) {
        all_ok = false;
        break;
      }
      blobs[i] = std::move(decoded);
      ++rebuilds;
    }
    for (int r = 1; r < comm.size(); ++r)
      comm.send_bytes(r, kTagRebuiltToRank,
                      pack_optional(all_ok ? blobs[static_cast<std::size_t>(r)] : std::nullopt));
    if (all_ok) {
      rebuilt = blobs[0];
      std::lock_guard<std::mutex> lock(mutex_);
      recovery_stats_.peer_rebuilds += rebuilds;
      recovery_stats_.cache_loads += k - rebuilds;
      if (config_.transfer != nullptr)
        for (const auto& b : blobs)
          recovery_stats_.model_restore_seconds +=
              config_.transfer->restore_seconds(b->size(), /*from_cache=*/true);
    }
  } else {
    comm.send_bytes(0, kTagRebuildBlob, pack_optional(mine));
    comm.send_bytes(0, kTagRebuildShard, pack_optional(shard));
    rebuilt = unpack_optional(comm.recv_bytes(0, kTagRebuiltToRank));
  }
  return rebuilt;
}

std::optional<std::vector<std::byte>> MultiLevelCheckpointer::try_remote_level(mpi::Comm& comm,
                                                                               int version) {
  if (faults_ != nullptr)
    faults_->protocol_point(fi::Channel::kCkptPreLoad, remote_rank_key(version, comm.rank()));
  const auto wire = remote_->get(remote_rank_key(version, comm.rank()));
  if (!wire)
    throw IoError("committed checkpoint missing rank blob: " +
                  remote_rank_key(version, comm.rank()));
  auto blob = decompress_bytes(config_.compression.mode, *wire);
  if (!blob)
    throw IoError("committed checkpoint blob failed to decompress: " +
                  remote_rank_key(version, comm.rank()));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++recovery_stats_.remote_loads;
    if (config_.transfer != nullptr)
      recovery_stats_.model_restore_seconds +=
          config_.transfer->restore_seconds(wire->size(), /*from_cache=*/false);
  }
  return blob;
}

std::optional<std::vector<std::byte>> MultiLevelCheckpointer::load_latest(mpi::Comm& comm) {
  if (degenerate()) return inner_.load_latest(comm);

  // Rank 0 plans the candidate list: committed versions from every level,
  // newest first, each tagged with where it is committed. Version order
  // before level order is what makes a newer flushed snapshot always beat a
  // stale cache one.
  std::vector<int> candidates;  // encoded as version*4 + (cache?1:0)*2 + (remote?1:0)
  if (comm.rank() == 0) {
    const auto cache_v =
        committed_versions(config_.cache, run_id_ + "/l0/v", run_id_.size() + 5);
    const auto remote_v = committed_versions(remote_, run_id_ + "/v", run_id_.size() + 2);
    std::set<int, std::greater<int>> all(cache_v.begin(), cache_v.end());
    all.insert(remote_v.begin(), remote_v.end());
    for (const int v : all) {
      const bool in_cache = std::binary_search(cache_v.begin(), cache_v.end(), v);
      const bool in_remote = std::binary_search(remote_v.begin(), remote_v.end(), v);
      candidates.push_back(v * 4 + (in_cache ? 2 : 0) + (in_remote ? 1 : 0));
    }
  }
  comm.bcast(candidates, /*root=*/0);

  for (const int encoded : candidates) {
    const int version = encoded / 4;
    const bool in_cache = (encoded & 2) != 0;
    const bool in_remote = (encoded & 1) != 0;
    if (in_cache) {
      auto blob = try_cache_level(comm, version);
      // try_cache_level is collective and agrees across ranks by
      // construction (rank 0 decides, everyone gets its verdict).
      if (blob.has_value()) return blob;
    }
    if (in_remote) return try_remote_level(comm, version);
  }
  return std::nullopt;
}

// --- stats --------------------------------------------------------------------

FlushStats MultiLevelCheckpointer::flush_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flush_stats_;
}

RecoveryStats MultiLevelCheckpointer::recovery_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovery_stats_;
}

double MultiLevelCheckpointer::compression_cost_usd(BillingModel model, double usd_per_hour,
                                                    int instances) const {
  double cpu_seconds = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cpu_seconds = flush_stats_.compression_cpu_seconds;
  }
  return billed_cost(model, usd_per_hour, cpu_seconds / 3600.0, instances);
}

}  // namespace sompi
