// Partner/XOR redundancy encoding across the ranks of a circle group
// (the SCR-style "level 1" of the multi-level checkpoint hierarchy,
// DESIGN.md §11).
//
// The paper stores every checkpoint in S3; LLNL SCR shows that most
// failures lose only part of a group (a node's local cache), and that a
// small redundancy shard stored by each peer lets the group rebuild the
// lost snapshot without touching remote storage at all. We provide two
// schemes as pure functions over the group's rank blobs:
//
//   kPartner — rank i stores a full copy of rank (i-1 mod k)'s blob.
//     Any loss set with no two adjacent ranks (in particular any single
//     rank) is recoverable; storage overhead is 1x.
//   kXor — RAID-5 style rotated parity. Each blob is split into k-1
//     chunks; rank m stores the parity  p_m = XOR_{j != m} chunk_{(j-m) mod
//     k - 1}(blob_j).  Any single-rank loss is recoverable from the k-1
//     surviving blobs plus their parities; storage overhead is 1/(k-1)x
//     (for k = 2 the scheme degenerates to a partner copy).
//
// Every shard carries a header recording the group size, the scheme, and
// the length + FNV-1a checksum of every rank's blob. decode() verifies the
// rebuilt blob against that checksum and the headers against each other, so
// a torn or corrupted shard (FaultyStore truncates uploads) can never yield
// a decodable-but-wrong snapshot — the failure is detected and the caller
// falls down the recovery ladder instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace sompi {

enum class RedundancyScheme : int {
  kNone = 0,     ///< no peer redundancy (cache + remote only)
  kPartner = 1,  ///< full copy at the next rank
  kXor = 2,      ///< rotated XOR parity across the group
};

const char* redundancy_scheme_label(RedundancyScheme scheme);

/// FNV-1a over a byte span — the blob checksum recorded in shard headers.
std::uint64_t redundancy_checksum(std::span<const std::byte> bytes);

/// Encodes the group's rank blobs (`blobs[i]` is rank i's snapshot) into one
/// shard per rank; rank i stores `result[i]` next to its own blob. kNone
/// returns empty shards. Requires blobs.size() >= 1.
std::vector<std::vector<std::byte>> redundancy_encode(
    RedundancyScheme scheme, const std::vector<std::vector<std::byte>>& blobs);

/// Rebuilds rank `lost`'s blob from the surviving blobs and shards (nullopt
/// entries are lost along with the rank). Returns nullopt when the loss set
/// is unrecoverable under the scheme or when any integrity check fails —
/// never bytes that differ from the encoded snapshot.
std::optional<std::vector<std::byte>> redundancy_decode(
    RedundancyScheme scheme,
    const std::vector<std::optional<std::vector<std::byte>>>& blobs,
    const std::vector<std::optional<std::vector<std::byte>>>& shards,
    std::size_t lost);

}  // namespace sompi
