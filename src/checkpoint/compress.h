// Optional checkpoint compression — the CPU-seconds-vs-bytes knob.
//
// Multi-level checkpointing changes the economics of compression: a cache
// put is nearly free, but every byte flushed to S3-sim is billed per-PUT and
// per-GB-month, so spending simulated CPU seconds shrinking the blob before
// the flush can pay for itself. We ship a deliberately simple byte-wise RLE
// codec — HPC snapshots (zero-initialized halos, repeated doubles) compress
// well under it, adversarial data costs one framing byte per 127-byte run —
// framed so decompression is always exact and self-describing.
//
// The knob is CompressionSpec::cpu_seconds_per_gb: the simulated CPU time
// charged per input gigabyte, which the multilevel checkpointer converts to
// instance-hours through src/cloud/billing. kNone is the degenerate setting
// and is byte-transparent (the blob is stored untouched, no frame added), so
// the single-level configuration stays bit-identical to the pre-multilevel
// path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace sompi {

enum class CompressionMode : int {
  kNone = 0,  ///< byte-transparent (no frame, zero CPU)
  kRle = 1,   ///< framed run-length encoding
};

const char* compression_mode_label(CompressionMode mode);

struct CompressionSpec {
  CompressionMode mode = CompressionMode::kNone;
  /// Simulated CPU seconds charged per input GB (both directions). The
  /// multilevel checkpointer accumulates this and bills it as compute time.
  double cpu_seconds_per_gb = 0.0;
};

/// Compresses `input` under `mode`. kNone returns the input verbatim; kRle
/// returns a self-describing frame (magic + mode + original length + runs).
std::vector<std::byte> compress_bytes(CompressionMode mode, std::span<const std::byte> input);

/// Inverse of compress_bytes. For kNone the bytes are returned verbatim; for
/// kRle a malformed/truncated frame yields nullopt, never wrong bytes.
std::optional<std::vector<std::byte>> decompress_bytes(CompressionMode mode,
                                                       std::span<const std::byte> input);

/// Simulated CPU seconds to run `mode` over `bytes` input bytes at the given
/// knob setting. Deterministic — a pure function of the sizes, never wall
/// clock — so plans and billing stay bit-identical across thread counts.
double compression_cpu_seconds(const CompressionSpec& spec, std::size_t bytes);

}  // namespace sompi
