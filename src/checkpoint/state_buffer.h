// Rank-state serialization for checkpoints: a flat, versionless binary
// format (POD fields and POD vectors written in a fixed order and read back
// in the same order).
#pragma once

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.h"

namespace sompi {

class StateWriter {
 public:
  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void write_vec(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    write<std::uint64_t>(values.size());
    if (values.empty()) return;  // .data() may be null for an empty vector
    const auto* p = reinterpret_cast<const std::byte*>(values.data());
    buf_.insert(buf_.end(), p, p + values.size() * sizeof(T));
  }

  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

class StateReader {
 public:
  explicit StateReader(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    SOMPI_REQUIRE_MSG(pos_ + sizeof(T) <= data_.size(), "state buffer underrun");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> read_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = read<std::uint64_t>();
    SOMPI_REQUIRE_MSG(pos_ + n * sizeof(T) <= data_.size(), "state buffer underrun");
    std::vector<T> values(n);
    if (n != 0) std::memcpy(values.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return values;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace sompi
