#include "checkpoint/redundancy.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace sompi {
namespace {

// Shard layout (all integers little-endian fixed-width):
//
//   u32 magic       'S','R','D','1'
//   u32 scheme      RedundancyScheme
//   u32 k           group size
//   u32 owner       rank that stores this shard
//   u64 chunk_size  XOR parity chunk size (0 for partner/none)
//   k × { u64 length, u64 checksum }   per-rank blob metadata
//   payload bytes
//
// The per-rank metadata table is what makes torn shards detectable: a
// truncated payload fails the length check, a corrupted one fails the
// checksum of the rebuilt blob, and shards from different encode calls
// disagree on the metadata table and are rejected before any XOR happens.
constexpr std::uint32_t kMagic = 0x31445253u;  // "SRD1"

struct ShardHeader {
  RedundancyScheme scheme = RedundancyScheme::kNone;
  std::uint32_t k = 0;
  std::uint32_t owner = 0;
  std::uint64_t chunk_size = 0;
  std::vector<std::uint64_t> lengths;
  std::vector<std::uint64_t> checksums;
};

std::size_t header_bytes(std::size_t k) { return 4u * 4u + 8u + k * 16u; }

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::byte((v >> (8 * i)) & 0xFF));
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::byte((v >> (8 * i)) & 0xFF));
}

std::uint32_t read_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(std::to_integer<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

std::uint64_t read_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(std::to_integer<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

std::vector<std::byte> serialize_header(const ShardHeader& h) {
  std::vector<std::byte> out;
  out.reserve(header_bytes(h.k));
  append_u32(out, kMagic);
  append_u32(out, static_cast<std::uint32_t>(h.scheme));
  append_u32(out, h.k);
  append_u32(out, h.owner);
  append_u64(out, h.chunk_size);
  for (std::uint32_t i = 0; i < h.k; ++i) {
    append_u64(out, h.lengths[i]);
    append_u64(out, h.checksums[i]);
  }
  return out;
}

std::optional<ShardHeader> parse_header(const std::vector<std::byte>& shard,
                                        RedundancyScheme want_scheme, std::size_t want_k,
                                        std::size_t want_owner) {
  if (shard.size() < header_bytes(want_k)) return std::nullopt;
  const std::byte* p = shard.data();
  if (read_u32(p) != kMagic) return std::nullopt;
  ShardHeader h;
  h.scheme = static_cast<RedundancyScheme>(read_u32(p + 4));
  h.k = read_u32(p + 8);
  h.owner = read_u32(p + 12);
  h.chunk_size = read_u64(p + 16);
  if (h.scheme != want_scheme || h.k != want_k || h.owner != want_owner) return std::nullopt;
  h.lengths.resize(h.k);
  h.checksums.resize(h.k);
  for (std::uint32_t i = 0; i < h.k; ++i) {
    h.lengths[i] = read_u64(p + 24 + 16 * i);
    h.checksums[i] = read_u64(p + 32 + 16 * i);
  }
  return h;
}

/// Chunk index of blob j's contribution stored in rank m's parity shard:
/// the rotation ((j - m) mod k) - 1 walks every chunk 0..k-2 exactly once
/// as m ranges over the ranks != j, so each chunk of blob j lives in exactly
/// one parity shard.
std::size_t xor_chunk_index(std::size_t j, std::size_t m, std::size_t k) {
  return (j + k - m) % k - 1;
}

/// XORs chunk `c` of `blob` (zero-padded to chunk_size) into dst.
void xor_chunk_into(std::byte* dst, const std::vector<std::byte>& blob, std::size_t c,
                    std::size_t chunk_size) {
  const std::size_t begin = c * chunk_size;
  if (begin >= blob.size()) return;
  const std::size_t n = std::min(chunk_size, blob.size() - begin);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= blob[begin + i];
}

}  // namespace

const char* redundancy_scheme_label(RedundancyScheme scheme) {
  switch (scheme) {
    case RedundancyScheme::kNone: return "none";
    case RedundancyScheme::kPartner: return "partner";
    case RedundancyScheme::kXor: return "xor";
  }
  return "?";
}

std::uint64_t redundancy_checksum(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::byte b : bytes) {
    h ^= std::to_integer<std::uint8_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::vector<std::vector<std::byte>> redundancy_encode(
    RedundancyScheme scheme, const std::vector<std::vector<std::byte>>& blobs) {
  const std::size_t k = blobs.size();
  SOMPI_REQUIRE(k >= 1);
  if (scheme == RedundancyScheme::kNone)
    return std::vector<std::vector<std::byte>>(k);

  ShardHeader h;
  h.scheme = scheme;
  h.k = static_cast<std::uint32_t>(k);
  h.lengths.resize(k);
  h.checksums.resize(k);
  std::size_t max_len = 0;
  for (std::size_t i = 0; i < k; ++i) {
    h.lengths[i] = blobs[i].size();
    h.checksums[i] = redundancy_checksum(blobs[i]);
    max_len = std::max(max_len, blobs[i].size());
  }

  // XOR needs k >= 2 to have peers; with k == 1 (or a 2-rank XOR group,
  // where one chunk of parity IS the partner blob) fall back to partner
  // semantics. The header still says what was requested so decode agrees.
  const bool xor_mode = scheme == RedundancyScheme::kXor && k >= 3;
  h.chunk_size = xor_mode ? (max_len + (k - 2)) / (k - 1) : 0;

  std::vector<std::vector<std::byte>> shards(k);
  for (std::size_t m = 0; m < k; ++m) {
    h.owner = static_cast<std::uint32_t>(m);
    shards[m] = serialize_header(h);
    if (k == 1) continue;  // no peer to protect
    if (!xor_mode) {
      // Partner copy: rank m keeps the previous rank's full blob.
      const std::vector<std::byte>& src = blobs[(m + k - 1) % k];
      shards[m].insert(shards[m].end(), src.begin(), src.end());
    } else {
      const std::size_t base = shards[m].size();
      shards[m].resize(base + h.chunk_size, std::byte{0});
      for (std::size_t j = 0; j < k; ++j) {
        if (j == m) continue;
        xor_chunk_into(shards[m].data() + base, blobs[j], xor_chunk_index(j, m, k),
                       h.chunk_size);
      }
    }
  }
  return shards;
}

std::optional<std::vector<std::byte>> redundancy_decode(
    RedundancyScheme scheme,
    const std::vector<std::optional<std::vector<std::byte>>>& blobs,
    const std::vector<std::optional<std::vector<std::byte>>>& shards,
    std::size_t lost) {
  const std::size_t k = blobs.size();
  SOMPI_REQUIRE(k >= 1 && shards.size() == k && lost < k);
  if (scheme == RedundancyScheme::kNone || k == 1) return std::nullopt;

  // Parse every surviving shard; all must agree on the metadata table (they
  // were written by one encode call) or the decode is unsafe.
  std::optional<ShardHeader> meta;
  std::vector<std::optional<ShardHeader>> headers(k);
  for (std::size_t m = 0; m < k; ++m) {
    if (m == lost || !shards[m].has_value()) continue;
    headers[m] = parse_header(*shards[m], scheme, k, m);
    if (!headers[m].has_value()) continue;
    if (!meta.has_value()) {
      meta = headers[m];
    } else if (headers[m]->lengths != meta->lengths ||
               headers[m]->checksums != meta->checksums ||
               headers[m]->chunk_size != meta->chunk_size) {
      return std::nullopt;  // mixed-generation shards — refuse to guess
    }
  }
  if (!meta.has_value()) return std::nullopt;

  const std::uint64_t want_len = meta->lengths[lost];
  const std::uint64_t want_sum = meta->checksums[lost];
  const auto verified = [&](std::vector<std::byte> blob) -> std::optional<std::vector<std::byte>> {
    if (blob.size() != want_len || redundancy_checksum(blob) != want_sum) return std::nullopt;
    return blob;
  };

  const bool xor_mode = scheme == RedundancyScheme::kXor && k >= 3;
  if (!xor_mode) {
    // Partner: the next rank holds a full copy after the header.
    const std::size_t holder = (lost + 1) % k;
    if (holder == lost) return std::nullopt;
    const auto& hh = headers[holder];
    if (!hh.has_value() || !shards[holder].has_value()) return std::nullopt;
    const std::vector<std::byte>& s = *shards[holder];
    const std::size_t base = header_bytes(k);
    if (s.size() != base + want_len) return std::nullopt;  // torn copy
    return verified(std::vector<std::byte>(s.begin() + base, s.end()));
  }

  // XOR: chunk ((lost - m) mod k) - 1 of the lost blob is rebuilt from rank
  // m's parity by XORing back every survivor's contribution. Every m != lost
  // contributes exactly one distinct chunk, so all k-1 chunks are covered.
  const std::size_t chunk_size = meta->chunk_size;
  if (chunk_size == 0) return std::nullopt;
  std::vector<std::byte> out((k - 1) * chunk_size, std::byte{0});
  for (std::size_t m = 0; m < k; ++m) {
    if (m == lost) continue;
    if (!headers[m].has_value() || !shards[m].has_value()) return std::nullopt;
    const std::vector<std::byte>& s = *shards[m];
    const std::size_t base = header_bytes(k);
    if (s.size() != base + chunk_size) return std::nullopt;  // torn parity
    const std::size_t c = xor_chunk_index(lost, m, k);
    std::byte* dst = out.data() + c * chunk_size;
    std::memcpy(dst, s.data() + base, chunk_size);
    for (std::size_t j = 0; j < k; ++j) {
      if (j == m || j == lost) continue;
      if (!blobs[j].has_value()) return std::nullopt;  // second loss — out of reach
      if (blobs[j]->size() != meta->lengths[j] ||
          redundancy_checksum(*blobs[j]) != meta->checksums[j])
        return std::nullopt;  // survivor doesn't match the encoded generation
      xor_chunk_into(dst, *blobs[j], xor_chunk_index(j, m, k), chunk_size);
    }
  }
  out.resize(want_len);
  return verified(std::move(out));
}

}  // namespace sompi
