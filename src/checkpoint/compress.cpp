#include "checkpoint/compress.h"

#include "common/error.h"

namespace sompi {
namespace {

// RLE frame: u32 magic "SCZ1", u32 mode, u64 original length, then tokens.
// Token: u8 header. header & 0x80 → run of (header & 0x7F) + 1 copies of the
// next byte; else literal block of header + 1 raw bytes. Runs ≥ 3 are
// encoded as runs, shorter repeats ride in literals.
constexpr std::uint32_t kMagic = 0x315A4353u;  // "SCZ1"
constexpr std::size_t kFrameHeader = 4 + 4 + 8;
constexpr std::size_t kMaxRun = 128;
constexpr std::size_t kMaxLiteral = 128;

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::byte((v >> (8 * i)) & 0xFF));
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::byte((v >> (8 * i)) & 0xFF));
}

std::uint32_t read_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(std::to_integer<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

std::uint64_t read_u64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(std::to_integer<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

}  // namespace

const char* compression_mode_label(CompressionMode mode) {
  switch (mode) {
    case CompressionMode::kNone: return "none";
    case CompressionMode::kRle: return "rle";
  }
  return "?";
}

std::vector<std::byte> compress_bytes(CompressionMode mode, std::span<const std::byte> input) {
  if (mode == CompressionMode::kNone) return {input.begin(), input.end()};

  std::vector<std::byte> out;
  out.reserve(kFrameHeader + input.size() / 2 + 16);
  append_u32(out, kMagic);
  append_u32(out, static_cast<std::uint32_t>(mode));
  append_u64(out, input.size());

  std::size_t i = 0;
  std::size_t literal_begin = 0;
  const auto flush_literals = [&](std::size_t end) {
    while (literal_begin < end) {
      const std::size_t n = std::min(kMaxLiteral, end - literal_begin);
      out.push_back(std::byte(n - 1));
      out.insert(out.end(), input.begin() + literal_begin, input.begin() + literal_begin + n);
      literal_begin += n;
    }
  };
  while (i < input.size()) {
    std::size_t run = 1;
    while (i + run < input.size() && run < kMaxRun && input[i + run] == input[i]) ++run;
    if (run >= 3) {
      flush_literals(i);
      out.push_back(std::byte(0x80 | (run - 1)));
      out.push_back(input[i]);
      i += run;
      literal_begin = i;
    } else {
      i += run;
    }
  }
  flush_literals(input.size());
  return out;
}

std::optional<std::vector<std::byte>> decompress_bytes(CompressionMode mode,
                                                       std::span<const std::byte> input) {
  if (mode == CompressionMode::kNone)
    return std::vector<std::byte>(input.begin(), input.end());

  if (input.size() < kFrameHeader) return std::nullopt;
  if (read_u32(input.data()) != kMagic) return std::nullopt;
  if (read_u32(input.data() + 4) != static_cast<std::uint32_t>(mode)) return std::nullopt;
  const std::uint64_t orig_len = read_u64(input.data() + 8);

  std::vector<std::byte> out;
  out.reserve(orig_len);
  std::size_t i = kFrameHeader;
  while (i < input.size()) {
    const std::uint8_t header = std::to_integer<std::uint8_t>(input[i++]);
    if (header & 0x80) {
      if (i >= input.size()) return std::nullopt;  // truncated run
      const std::size_t n = (header & 0x7F) + 1u;
      out.insert(out.end(), n, input[i++]);
    } else {
      const std::size_t n = header + 1u;
      if (i + n > input.size()) return std::nullopt;  // truncated literal
      out.insert(out.end(), input.begin() + i, input.begin() + i + n);
      i += n;
    }
    if (out.size() > orig_len) return std::nullopt;  // overflow vs declared length
  }
  if (out.size() != orig_len) return std::nullopt;
  return out;
}

double compression_cpu_seconds(const CompressionSpec& spec, std::size_t bytes) {
  if (spec.mode == CompressionMode::kNone) return 0.0;
  return spec.cpu_seconds_per_gb * (static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
}

}  // namespace sompi
