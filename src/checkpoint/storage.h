// Checkpoint storage backends.
//
// The paper stores BLCR checkpoints in Amazon S3 (§4.4): durable across
// out-of-bid kills, ~$0.03/GB-month, negligible next to the compute bill.
// We provide a thread-safe in-memory store (unit tests, simulations), a
// directory-backed store (survives process restarts, used by the BTIO
// kernel's output too) and an S3 simulator that adds the cost accounting.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sompi {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Durably stores `data` under `key`, replacing any previous value.
  virtual void put(const std::string& key, std::span<const std::byte> data) = 0;

  /// Reads a key; nullopt when absent.
  virtual std::optional<std::vector<std::byte>> get(const std::string& key) const = 0;

  /// True when `key` is present. The base implementation is a full read;
  /// backends override it with a cheap probe (map lookup, stat, HEAD) so
  /// restore paths can check for a snapshot without paying a download.
  virtual bool exists(const std::string& key) const { return get(key).has_value(); }

  /// All keys with the given prefix, sorted.
  virtual std::vector<std::string> list(const std::string& prefix) const = 0;

  /// Deletes a key (no-op when absent).
  virtual void remove(const std::string& key) = 0;

  /// Bytes currently stored.
  virtual std::uint64_t bytes_stored() const = 0;
};

/// Thread-safe in-memory store.
class MemoryStore : public StorageBackend {
 public:
  void put(const std::string& key, std::span<const std::byte> data) override;
  std::optional<std::vector<std::byte>> get(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  void remove(const std::string& key) override;
  std::uint64_t bytes_stored() const override;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<std::byte>> blobs_;
};

/// Directory-backed store: each key is a file under `root`; '/' in keys maps
/// to subdirectories. Survives process restarts.
class DiskStore : public StorageBackend {
 public:
  explicit DiskStore(std::string root);

  void put(const std::string& key, std::span<const std::byte> data) override;
  std::optional<std::vector<std::byte>> get(const std::string& key) const override;
  bool exists(const std::string& key) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  void remove(const std::string& key) override;
  std::uint64_t bytes_stored() const override;

 private:
  std::string path_for(const std::string& key) const;
  std::string root_;
};

/// S3 simulator: an in-memory store plus the 2014 S3 cost model —
/// storage $/GB-month, per-request fee, and transfer accounting.
class S3Sim : public StorageBackend {
 public:
  struct Pricing {
    double storage_usd_gb_month = 0.03;
    double put_usd_per_1000 = 0.005;
    double get_usd_per_10000 = 0.004;
  };

  S3Sim() : S3Sim(Pricing{}) {}
  explicit S3Sim(Pricing pricing) : pricing_(pricing) {}

  void put(const std::string& key, std::span<const std::byte> data) override;
  std::optional<std::vector<std::byte>> get(const std::string& key) const override;
  /// HEAD-style probe: billed as a GET request, transfers no bytes.
  bool exists(const std::string& key) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  void remove(const std::string& key) override;
  std::uint64_t bytes_stored() const override;

  std::uint64_t put_count() const;
  std::uint64_t get_count() const;
  std::uint64_t bytes_uploaded() const;
  std::uint64_t bytes_downloaded() const;

  /// Total cost of the observed usage assuming the current contents were
  /// retained for `hours`.
  double cost_usd(double hours) const;

 private:
  Pricing pricing_;
  MemoryStore inner_;
  mutable std::mutex mutex_;
  std::uint64_t puts_ = 0;
  mutable std::uint64_t gets_ = 0;
  std::uint64_t up_bytes_ = 0;
  mutable std::uint64_t down_bytes_ = 0;
};

}  // namespace sompi
