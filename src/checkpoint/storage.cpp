#include "checkpoint/storage.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace sompi {

namespace fs = std::filesystem;

// --- MemoryStore -----------------------------------------------------------

void MemoryStore::put(const std::string& key, std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_[key].assign(data.begin(), data.end());
}

std::optional<std::vector<std::byte>> MemoryStore::get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blobs_.find(key);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

bool MemoryStore::exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blobs_.count(key) != 0;
}

std::vector<std::string> MemoryStore::list(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  for (auto it = blobs_.lower_bound(prefix); it != blobs_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

void MemoryStore::remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  blobs_.erase(key);
}

std::uint64_t MemoryStore::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [k, v] : blobs_) total += v.size();
  return total;
}

// --- DiskStore ---------------------------------------------------------------

DiskStore::DiskStore(std::string root) : root_(std::move(root)) {
  SOMPI_REQUIRE(!root_.empty());
  fs::create_directories(root_);
}

std::string DiskStore::path_for(const std::string& key) const {
  SOMPI_REQUIRE_MSG(key.find("..") == std::string::npos, "key must not contain '..'");
  return root_ + "/" + key;
}

void DiskStore::put(const std::string& key, std::span<const std::byte> data) {
  const fs::path path = path_for(key);
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("DiskStore: cannot write " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw IoError("DiskStore: short write to " + path.string());
}

std::optional<std::vector<std::byte>> DiskStore::get(const std::string& key) const {
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::vector<std::byte> data(raw.size());
  if (!raw.empty()) std::memcpy(data.data(), raw.data(), raw.size());
  return data;
}

bool DiskStore::exists(const std::string& key) const {
  return fs::is_regular_file(path_for(key));
}

std::vector<std::string> DiskStore::list(const std::string& prefix) const {
  std::vector<std::string> keys;
  if (!fs::exists(root_)) return keys;
  for (const auto& entry : fs::recursive_directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const std::string key = fs::relative(entry.path(), root_).generic_string();
    if (key.compare(0, prefix.size(), prefix) == 0) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void DiskStore::remove(const std::string& key) {
  std::error_code ec;
  fs::remove(path_for(key), ec);
}

std::uint64_t DiskStore::bytes_stored() const {
  std::uint64_t total = 0;
  if (!fs::exists(root_)) return total;
  for (const auto& entry : fs::recursive_directory_iterator(root_))
    if (entry.is_regular_file()) total += entry.file_size();
  return total;
}

// --- S3Sim -------------------------------------------------------------------

void S3Sim::put(const std::string& key, std::span<const std::byte> data) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++puts_;
    up_bytes_ += data.size();
  }
  inner_.put(key, data);
}

std::optional<std::vector<std::byte>> S3Sim::get(const std::string& key) const {
  auto blob = inner_.get(key);
  std::lock_guard<std::mutex> lock(mutex_);
  ++gets_;
  if (blob) down_bytes_ += blob->size();
  return blob;
}

bool S3Sim::exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ++gets_;  // HEAD is billed like a GET, but nothing is transferred
  return inner_.exists(key);
}

std::vector<std::string> S3Sim::list(const std::string& prefix) const {
  return inner_.list(prefix);
}

void S3Sim::remove(const std::string& key) { inner_.remove(key); }

std::uint64_t S3Sim::bytes_stored() const { return inner_.bytes_stored(); }

std::uint64_t S3Sim::put_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return puts_;
}

std::uint64_t S3Sim::get_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gets_;
}

std::uint64_t S3Sim::bytes_uploaded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return up_bytes_;
}

std::uint64_t S3Sim::bytes_downloaded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return down_bytes_;
}

double S3Sim::cost_usd(double hours) const {
  SOMPI_REQUIRE(hours >= 0.0);
  const double gb = static_cast<double>(inner_.bytes_stored()) / 1e9;
  std::lock_guard<std::mutex> lock(mutex_);
  return gb * pricing_.storage_usd_gb_month * (hours / (30.0 * 24.0)) +
         static_cast<double>(puts_) / 1000.0 * pricing_.put_usd_per_1000 +
         static_cast<double>(gets_) / 10000.0 * pricing_.get_usd_per_10000;
}

}  // namespace sompi
