#include "core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"

namespace sompi {

namespace {
/// Windows are bounded: progress is monotone and every window consumes wall
/// time, but guard against a degenerate oracle anyway.
constexpr int kMaxWindows = 4096;
constexpr double kMinProgress = 1e-9;
}  // namespace

AdaptiveEngine::AdaptiveEngine(const Catalog* catalog, const ExecTimeEstimator* estimator,
                               AdaptiveConfig config)
    : catalog_(catalog), estimator_(estimator), config_(std::move(config)) {
  SOMPI_REQUIRE(catalog_ != nullptr && estimator_ != nullptr);
  SOMPI_REQUIRE(config_.window_h > 0.0);
  SOMPI_REQUIRE(config_.lookback_h > 0.0);
  SOMPI_REQUIRE(config_.fallback_margin >= 1.0);
}

AdaptiveResult AdaptiveEngine::run(const AppProfile& app, ExecutionOracle& oracle,
                                   double start_h, double deadline_h) const {
  SOMPI_REQUIRE(deadline_h > 0.0);
  const SompiOptimizer optimizer(catalog_, estimator_, config_.opt);
  const OnDemandSelector od_selector(catalog_, estimator_);

  AdaptiveResult result;
  double remaining = 1.0;  // fraction of the application still to run
  double now = start_h;

  Plan sticky_plan;  // reused across windows when update maintenance is off
  bool have_sticky = false;

  while (remaining > kMinProgress && result.windows < kMaxWindows) {
    if (config_.window_hook) config_.window_hook(result.windows, now);
    const double elapsed = now - start_h;
    const double left = deadline_h - elapsed;
    const AppProfile residual = scale_profile(app, remaining);

    // On-demand completion time for the residual work — the fallback floor.
    const OnDemandChoice od_fast = od_selector.baseline(residual);
    const double od_needed = od_fast.t_h * config_.fallback_margin;

    // Algorithm 1 line 7: once the leftover deadline cannot cover even the
    // residual on-demand runtime, speculation is over — finish on demand
    // (the fastest guaranteed option, even if the deadline is already
    // blown). While speculating, the within-deadline guarantee is the
    // paper's expectation-level one: every per-window plan must satisfy
    // E[Time] <= leftover deadline.
    const double window = std::min(config_.window_h, left);
    if (left <= od_needed || window < config_.opt.setup.step_hours) {
      const OnDemandChoice od =
          left > 0.0 ? od_selector.select(residual, left, 0.0) : od_fast;
      result.cost_usd += od.rate_usd_h * od.t_h;
      now += od.t_h;
      result.fell_back_to_ondemand = true;
      result.completed = true;
      remaining = 0.0;
      break;
    }

    // Re-optimize the residual work with fresh history (update maintenance).
    Plan plan;
    if (config_.update_maintenance || !have_sticky) {
      const Market history = oracle.history_at(now, config_.lookback_h);
      plan = optimizer.optimize(residual, history, left);
      result.optimize_seconds += plan.optimize_seconds;
      result.model_evaluations += plan.model_evaluations;
      if (!config_.update_maintenance) {
        sticky_plan = plan;
        have_sticky = true;
      }
    } else {
      // w/o-MT: keep the stale configuration, only rescale the work volume.
      plan = sticky_plan;
      const double shrink = remaining;
      for (auto& g : plan.groups) {
        g.t_steps = std::max(1, static_cast<int>(std::lround(g.t_steps * shrink)));
        g.f_steps = std::min(g.f_steps, g.t_steps);
      }
    }

    if (!plan.uses_spot()) {
      // The optimizer itself decided on-demand is the best remaining move.
      result.cost_usd += plan.od.rate_usd_h * plan.od.t_h;
      now += plan.od.t_h;
      result.fell_back_to_ondemand = true;
      result.completed = true;
      remaining = 0.0;
      ++result.windows;
      break;
    }

    const WindowOutcome out = oracle.run_window(plan, now, window);
    ++result.windows;
    result.cost_usd += out.cost_usd;
    // Time always advances at least one model step, even if every group
    // died instantly.
    now += std::max(out.hours_used, plan.step_hours);
    remaining *= (1.0 - std::clamp(out.fraction_done, 0.0, 1.0));
    if (out.completed || remaining <= kMinProgress) {
      result.completed = true;
      remaining = 0.0;
    }
  }

  result.hours = now - start_h;
  result.met_deadline = result.completed && result.hours <= deadline_h + 1e-9;
  log_debug("adaptive ", app.name, ": $", result.cost_usd, " in ", result.hours, "h over ",
            result.windows, " windows");
  return result;
}

}  // namespace sompi
