// The adaptive optimization loop (paper §4.3, Algorithm 1).
//
// Execution is sliced into optimization windows of T_m hours. At every
// window boundary the engine re-estimates the failure-rate functions from
// the spot-price history of the previous window(s), re-optimizes the
// residual work under the leftover deadline, and executes one window of the
// resulting plan. The final checkpoint of a window is the next window's
// start point. If at any boundary the leftover deadline can no longer
// accommodate a safe on-demand fallback, the engine abandons spot and
// finishes the run on the pre-selected on-demand tier.
#pragma once

#include <functional>

#include "core/optimizer.h"

namespace sompi {

/// What actually happened when one window of a plan ran against the market.
struct WindowOutcome {
  /// Durable progress through the *plan's* residual work, in [0, 1]
  /// (1 = the plan's application completed in some circle group; otherwise
  /// the best checkpointed fraction across groups).
  double fraction_done = 0.0;
  /// Spot dollars spent during the window.
  double cost_usd = 0.0;
  /// Wall-clock hours consumed (≤ the window length; shorter when the app
  /// completed or every group died early).
  double hours_used = 0.0;
  bool completed = false;
};

/// How the adaptive engine touches the world. Implemented by the trace-
/// replay simulator (sim/replay.h) and by the live mini-MPI executor.
class ExecutionOracle {
 public:
  virtual ~ExecutionOracle() = default;

  /// Runs `plan` against the market starting at absolute time `start_h`,
  /// for at most `window_h` wall-clock hours.
  virtual WindowOutcome run_window(const Plan& plan, double start_h, double window_h) = 0;

  /// Spot-price history visible at `now_h`: the `lookback_h` hours before it.
  virtual Market history_at(double now_h, double lookback_h) = 0;
};

struct AdaptiveConfig {
  /// T_m — the optimization window, hours (paper sweet spot ≈ 15 h, §5.2).
  double window_h = 15.0;
  /// History used for failure-rate estimation (paper: previous two days).
  double lookback_h = 48.0;
  /// Safety factor on the on-demand fallback reservation. 1.0 reserves
  /// exactly the residual on-demand runtime: the deadline guarantee is then
  /// the paper's expectation-level guarantee (E[Time] ≤ Deadline enforced by
  /// the per-window optimization), with Algorithm 1's line-7 guard switching
  /// to on-demand the moment speculation would endanger even that.
  double fallback_margin = 1.0;
  /// Disable to get the w/o-MT ablation: the initial plan is never
  /// re-optimized as the market drifts.
  bool update_maintenance = true;
  /// Called at every window boundary, before any market history is read —
  /// (window_index, now_h). A live-feed driver uses this to advance its
  /// ingestion pipeline to `now_h`, so the re-estimation below plans against
  /// ticks the feed has actually committed. Unset in pure replay runs.
  std::function<void(int window_index, double now_h)> window_hook;
  OptimizerConfig opt;
};

struct AdaptiveResult {
  double cost_usd = 0.0;
  double hours = 0.0;          ///< total wall-clock time to completion
  bool completed = false;
  bool met_deadline = false;
  bool fell_back_to_ondemand = false;
  int windows = 0;
  double optimize_seconds = 0.0;      ///< total optimization overhead
  std::size_t model_evaluations = 0;
};

class AdaptiveEngine {
 public:
  AdaptiveEngine(const Catalog* catalog, const ExecTimeEstimator* estimator,
                 AdaptiveConfig config);

  /// Runs `app` to completion (or deadline overrun) starting at absolute
  /// market time `start_h` with the given deadline.
  AdaptiveResult run(const AppProfile& app, ExecutionOracle& oracle, double start_h,
                     double deadline_h) const;

 private:
  const Catalog* catalog_;
  const ExecTimeEstimator* estimator_;
  AdaptiveConfig config_;
};

}  // namespace sompi
