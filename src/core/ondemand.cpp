#include "core/ondemand.h"

#include <limits>

#include "common/error.h"

namespace sompi {

OnDemandSelector::OnDemandSelector(const Catalog* catalog, const ExecTimeEstimator* estimator)
    : catalog_(catalog), estimator_(estimator) {
  SOMPI_REQUIRE(catalog_ != nullptr && estimator_ != nullptr);
}

OnDemandChoice OnDemandSelector::describe(std::size_t type_index, const AppProfile& app) const {
  const InstanceType& type = catalog_->type(type_index);
  OnDemandChoice c;
  c.type_index = type_index;
  c.t_h = estimator_->hours(app, type);
  c.instances = catalog_->instances_for(type_index, app.processes);
  c.rate_usd_h = type.ondemand_usd_h * c.instances;
  return c;
}

OnDemandChoice OnDemandSelector::select(const AppProfile& app, double deadline_h,
                                        double slack) const {
  SOMPI_REQUIRE(deadline_h > 0.0);
  SOMPI_REQUIRE(slack >= 0.0 && slack < 1.0);
  const double budget_h = deadline_h * (1.0 - slack);

  OnDemandChoice best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < catalog_->types().size(); ++d) {
    OnDemandChoice c = describe(d, app);
    if (c.t_h > budget_h) continue;
    c.feasible = true;
    if (c.full_cost_usd() < best_cost) {
      best_cost = c.full_cost_usd();
      best = c;
    }
  }
  if (best.feasible) return best;
  // Nothing fits: return the fastest tier, marked infeasible.
  OnDemandChoice fastest = baseline(app);
  fastest.feasible = false;
  return fastest;
}

OnDemandChoice OnDemandSelector::baseline(const AppProfile& app) const {
  OnDemandChoice best;
  double best_t = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < catalog_->types().size(); ++d) {
    OnDemandChoice c = describe(d, app);
    if (c.t_h < best_t) {
      best_t = c.t_h;
      best = c;
      best.feasible = true;
    }
  }
  return best;
}

}  // namespace sompi
