#include "core/schedule.h"

#include <algorithm>
#include <cmath>

namespace sompi {

GroupSchedule::GroupSchedule(int t_steps, int f_steps, double o_steps, double r_steps)
    : t_(t_steps), f_(f_steps), o_(o_steps), r_(r_steps) {
  SOMPI_REQUIRE(t_ >= 1);
  SOMPI_REQUIRE(f_ >= 1 && f_ <= t_);
  SOMPI_REQUIRE(o_ >= 0.0);
  SOMPI_REQUIRE(r_ >= 0.0);
}

int GroupSchedule::checkpoints_full_run() const {
  // ceil(T/F) cycles; the final cycle ends in completion, not a checkpoint.
  return (t_ + f_ - 1) / f_ - 1;
}

double GroupSchedule::wall_duration() const {
  return static_cast<double>(t_) + o_ * checkpoints_full_run();
}

int GroupSchedule::checkpoints_by(double t) const {
  if (t <= 0.0) return 0;
  const double cycle = static_cast<double>(f_) + o_;
  // Checkpoint j completes at time j*cycle; count completed ones.
  const int k = static_cast<int>(std::floor(t / cycle));
  return std::min(k, checkpoints_full_run());
}

int GroupSchedule::saved_by(double t) const { return std::min(checkpoints_by(t) * f_, t_); }

double GroupSchedule::progress_by(double t) const {
  if (t <= 0.0) return 0.0;
  if (t >= wall_duration()) return static_cast<double>(t_);
  const double cycle = static_cast<double>(f_) + o_;
  const int k = checkpoints_by(t);
  const double into_cycle = t - k * cycle;
  // Within a cycle, the first F steps are productive, the rest is the dump.
  const double productive = static_cast<double>(k) * f_ + std::min(into_cycle, static_cast<double>(f_));
  return std::min(productive, static_cast<double>(t_));
}

double GroupSchedule::ratio_at(double t) const {
  if (t >= wall_duration()) return 0.0;  // completed: nothing left to redo
  const int saved = saved_by(t);
  const double remaining = static_cast<double>(t_ - saved) + (saved > 0 ? r_ : 0.0);
  return std::clamp(remaining / static_cast<double>(t_), 0.0, 1.0);
}

}  // namespace sompi
