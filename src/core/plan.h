// The optimizer's output: a complete execution plan for one MPI application —
// which circle groups to launch, each group's bid price and checkpoint
// interval, and the on-demand recovery tier. Plans are consumed by the
// replay simulator (src/sim) and the live mini-MPI executor.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/problem.h"

namespace sompi {

/// One circle group's share of a plan.
struct GroupPlan {
  CircleGroupSpec spec;
  std::string name;       ///< "type@zone", for reports
  int instances = 0;      ///< M_i
  int t_steps = 0;        ///< T_i (productive steps)
  double o_steps = 0.0;   ///< O_i — effective, under the chosen level policy
  double r_steps = 0.0;   ///< R_i — effective, under the chosen level policy
  double bid_usd = 0.0;   ///< P_i
  int f_steps = 0;        ///< F_i (== t_steps means no checkpoints)
  /// Checkpoint-level policy name; "s3" is the flat pre-multilevel path
  /// (and is omitted from the plan fingerprint, keeping degenerate plans
  /// byte-identical to their pre-multilevel fingerprints).
  std::string ckpt_policy = "s3";
};

/// Search-work accounting for one optimize() call. Unlike
/// Plan::model_evaluations (the *logical* evaluation count of the exhaustive
/// scan, which is deterministic and part of the plan fingerprint), these
/// count the work the engine *actually* performed: with branch-and-bound
/// enabled the prune counters depend on how fast the cross-thread incumbent
/// tightened, so they are reproducible only at threads = 1 and are
/// deliberately excluded from the plan fingerprint.
struct PlanStats {
  std::size_t evaluations = 0;       ///< cost-model evaluations performed
  std::size_t tuples_visited = 0;    ///< bid tuples reached by the odometer
  std::size_t tuples_pruned = 0;     ///< tuples skipped without evaluation
  std::size_t subtrees_pruned = 0;   ///< odometer subtree cuts taken
  std::size_t subsets_pruned = 0;    ///< whole subsets skipped by their bound
  std::size_t subsets_searched = 0;  ///< subsets actually enumerated
  // Warm-start accounting (DESIGN.md §14). Incremental engine only: how many
  // per-group cost-table blocks this solve reused from a CostTableStore vs
  // built fresh, and whether the previous plan seeded the B&B incumbent.
  // Like the prune counters these never enter the plan fingerprint — a warm
  // plan is bit-identical to a cold one, only its work accounting differs.
  std::size_t tables_reused = 0;
  std::size_t tables_built = 0;
  std::size_t warm_seeds = 0;

  PlanStats& operator+=(const PlanStats& o) {
    evaluations += o.evaluations;
    tuples_visited += o.tuples_visited;
    tuples_pruned += o.tuples_pruned;
    subtrees_pruned += o.subtrees_pruned;
    subsets_pruned += o.subsets_pruned;
    subsets_searched += o.subsets_searched;
    tables_reused += o.tables_reused;
    tables_built += o.tables_built;
    warm_seeds += o.warm_seeds;
    return *this;
  }
};

/// A full plan plus the model's expectation for it and optimizer statistics.
struct Plan {
  std::string app;
  double step_hours = 0.25;
  double deadline_h = 0.0;
  /// Checkpoint state volume (GB), for storage-cost accounting in replay.
  double state_gb = 0.0;
  OnDemandChoice od;
  /// Spot replicas; empty = run on demand only.
  std::vector<GroupPlan> groups;
  /// Model expectation at the chosen decisions (for an on-demand-only plan:
  /// cost = the od full-run cost, time = the od runtime).
  Expectation expected;
  /// True when at least one spot configuration met the deadline in the model.
  bool spot_feasible = false;

  // Optimizer accounting (the paper's "optimization overhead" metric).
  // model_evaluations is the logical count of the exhaustive scan — it is
  // invariant under engine choice, pruning, and thread count, and is part of
  // the plan fingerprint. stats holds what the engine actually did.
  std::size_t model_evaluations = 0;
  PlanStats stats;
  double optimize_seconds = 0.0;

  bool uses_spot() const { return !groups.empty(); }
};

}  // namespace sompi
