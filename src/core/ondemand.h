// On-demand instance-type selection (paper §4.1, Formulas 12–13).
//
// The on-demand cost is independent of the spot decisions, so the choice of
// recovery tier d* decouples from the bid/checkpoint search: pick the type
// with the smallest full-run cost whose runtime fits Deadline × (1 − Slack),
// the slack being the time reserved for checkpointing and recovery.
#pragma once

#include "cloud/catalog.h"
#include "core/problem.h"
#include "profile/app_profile.h"
#include "profile/estimator.h"

namespace sompi {

class OnDemandSelector {
 public:
  OnDemandSelector(const Catalog* catalog, const ExecTimeEstimator* estimator);

  /// Builds the OnDemandChoice for one candidate type.
  OnDemandChoice describe(std::size_t type_index, const AppProfile& app) const;

  /// The paper's d*: cheapest full-run cost subject to
  /// T_d <= deadline × (1 − slack). When no type fits, returns the fastest
  /// type with feasible = false (the optimizer then falls back to it anyway —
  /// there is no better option).
  OnDemandChoice select(const AppProfile& app, double deadline_h, double slack) const;

  /// The paper's Baseline: the on-demand type with the minimal execution
  /// time, regardless of cost (§5.1 "Comparisons").
  OnDemandChoice baseline(const AppProfile& app) const;

 private:
  const Catalog* catalog_;
  const ExecTimeEstimator* estimator_;
};

}  // namespace sompi
