// SOMPI's two-level optimizer (paper §4).
//
// Level 0 (decoupled): pick the on-demand recovery tier d* (§4.1).
// Level 1 (dimension reduction): tie each group's checkpoint interval to its
//   bid, F_i = φ_i(P_i) (§4.2.2, Theorem 1), so the search runs over bids only.
// Level 2 (logarithmic search): enumerate bid tuples over the logarithmic
//   grid for every k-of-K circle-group subset (§4.2.2, §4.4) and keep the
//   cheapest configuration whose expected time meets the deadline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ckpt_interval.h"
#include "core/cost_table_store.h"
#include "core/ondemand.h"
#include "core/plan.h"
#include "core/setup_builder.h"

namespace sompi {

/// Level-2 search engine selection.
enum class SearchEngine {
  /// Precomputed per-(group, bid) tables + odometer-incremental evaluation
  /// + branch-and-bound pruning (DESIGN.md "Optimizer fast path"). Returns
  /// plans bit-identical to kReference.
  kIncremental,
  /// The literal pre-optimization scan: a fresh CostModel::evaluate per
  /// tuple, no pruning. Retained as the differential oracle and the
  /// benchmark baseline.
  kReference,
};

struct OptimizerConfig {
  /// Fraction of the deadline reserved for checkpoint/recovery when picking
  /// the on-demand tier (paper default 20%, §5.2).
  double slack = 0.20;
  /// The paper's k: circle groups running in parallel (default 4, §5.2).
  int max_groups = 4;
  /// Also consider subsets smaller than max_groups (fewer replicas can be
  /// cheaper when the market is calm).
  bool enumerate_smaller_subsets = true;
  /// Candidate circle groups kept after pruning by expected full-run spot
  /// cost; bounds the C(K, k) enumeration.
  std::size_t max_candidates = 8;
  /// Problem-construction knobs (step size, bid grid, failure estimation).
  SetupConfig setup;
  /// min-Ratio integration resolution.
  std::size_t ratio_bins = 200;
  /// φ mode (numeric by default; Young/Daly for the ablation).
  PhiMode phi_mode = PhiMode::kNumeric;
  /// Deadline guard beyond E[Time] <= Deadline. A plan passes when either
  ///   (a) its joint worst case fits: even if every group is killed at its
  ///       most damaging instant, time <= max_i max_t (t + Ratio_i(t)·T_od)
  ///       stays within the deadline — dense checkpoints achieve this; or
  ///   (b) the model's P[every replica fails] <= miss_tolerance —
  ///       replication achieves this.
  /// This is what makes checkpointing and replication adaptively necessary
  /// rather than optional (paper §1, §5.4.2).
  bool worst_case_guard = true;
  /// Acceptable all-replicas-fail probability under alternative (b).
  double miss_tolerance = 0.05;
  /// Worker threads for the Level-2 subset × bid-tuple enumeration:
  /// 0 = hardware concurrency, 1 = serial. The chosen plan is bit-identical
  /// at any setting — per-subset searches are independent and the reduction
  /// breaks cost ties by enumeration order, exactly like the serial scan.
  unsigned threads = 1;
  /// Level-2 engine. Both settings return bit-identical plans (enforced by
  /// the golden-plan tests and tests/test_cost_model_fast.cpp).
  SearchEngine engine = SearchEngine::kIncremental;
  /// Branch-and-bound pruning in the incremental engine. The admissible
  /// bound only discards tuples provably worse than the incumbent, so the
  /// chosen plan is unchanged; Plan::stats prune counters become nonzero.
  bool prune = true;
  /// Checkpoint-level policies enumerated per group as a third decision
  /// dimension next to bid and interval (DESIGN.md §11). Empty means the
  /// degenerate single-policy set {CkptPolicy::single_s3()}, whose plans are
  /// bit-identical to the pre-multilevel optimizer; listing several policies
  /// can only lower the optimum, since the search is exact over the
  /// enlarged choice set (the fuzzer's dominance gate).
  std::vector<CkptPolicy> ckpt_policies = {};
};

/// Warm-start context for one optimize() call (DESIGN.md §14). The store is
/// borrowed for the duration of the call. With a null context (or a context
/// missing its store or versions) the optimizer runs the cold path exactly;
/// with a usable one it reuses cached per-group artifacts whose history
/// version still matches and seeds the branch-and-bound incumbent with the
/// previous plan. The chosen plan is bit-identical either way — warm starts
/// change only the work accounting (PlanStats), never the plan.
struct ReplanContext {
  CostTableStore* store = nullptr;
  /// Artifact namespace — typically the canonical request key: it pins app,
  /// deadline and constraints, so one scope shares one config hash.
  std::string scope;
  /// Per-group history versions of the market snapshot being solved, indexed
  /// by catalog ordinal (MarketBoard::group_versions()).
  std::shared_ptr<const std::vector<std::uint64_t>> versions;
  /// Previous winning plan for this scope; seeds the incumbent bound. Any
  /// seed that maps onto the current search space is admissible — the true
  /// winner costs no more than an acceptable tuple's engine-exact cost, and
  /// pruning is strictly-above — so a stale or unmappable seed degrades to
  /// a cold search, never to a wrong plan.
  std::shared_ptr<const Plan> incumbent;

  bool usable() const { return store != nullptr && versions != nullptr; }
};

/// Hash of every optimizer/app/od/deadline input that can change a cached
/// per-group artifact's CONTENT. Deliberately excludes knobs that are
/// bit-neutral for artifacts — threads, engine, prune (determinism
/// contract), max_groups / max_candidates / enumerate_smaller_subsets
/// (select which artifacts are used, not what they hold) and miss_tolerance
/// (evaluation-time acceptance only) — so artifacts survive across solver
/// variants that share the same problem. False mismatches only cost a
/// rebuild; false matches are impossible for inputs the hash covers.
std::uint64_t replan_config_hash(const OptimizerConfig& config, const AppProfile& app,
                                 const OnDemandChoice& od, double deadline_h);

class SompiOptimizer {
 public:
  SompiOptimizer(const Catalog* catalog, const ExecTimeEstimator* estimator,
                 OptimizerConfig config);

  const OptimizerConfig& config() const { return config_; }

  /// Produces the cost-minimizing plan for `app` under `deadline_h`, using
  /// `history` as the spot-price history (the model's only market input).
  Plan optimize(const AppProfile& app, const Market& history, double deadline_h) const;
  /// Warm-start variant: reuses `ctx`'s cached artifacts for groups whose
  /// history version matches and stores back what it builds. nullptr (or an
  /// unusable context) is exactly the cold overload.
  Plan optimize(const AppProfile& app, const Market& history, double deadline_h,
                ReplanContext* ctx) const;

  /// Like optimize(), but over a fixed candidate-group list (used by the
  /// adaptive engine for residual work and by ablation baselines).
  Plan optimize_over(const AppProfile& app, std::vector<GroupSetup> candidates,
                     const OnDemandChoice& od, double deadline_h) const;
  Plan optimize_over(const AppProfile& app, std::vector<GroupSetup> candidates,
                     const OnDemandChoice& od, double deadline_h, ReplanContext* ctx) const;

  /// The per-group unit of SetupBuilder::build_candidates with warm setup
  /// reuse: returns the cached GroupSetup when `ctx` holds an artifact for
  /// `spec` at its current history version (skipping the Monte-Carlo failure
  /// estimation), otherwise builds one and stores a setup-only artifact so
  /// even groups later pruned from the search never rebuild it. Callers
  /// that restrict the candidate list (e.g. the service's constraint path)
  /// apply their own filters and deadline cutoff around this.
  GroupSetup setup_for(const AppProfile& app, const CircleGroupSpec& spec,
                       const Market& history, const OnDemandChoice& od, double deadline_h,
                       ReplanContext* ctx) const;

 private:
  const Catalog* catalog_;
  const ExecTimeEstimator* estimator_;
  OptimizerConfig config_;
};

}  // namespace sompi
