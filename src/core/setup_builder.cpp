#include "core/setup_builder.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sompi {

SetupBuilder::SetupBuilder(const Catalog* catalog, const ExecTimeEstimator* estimator)
    : catalog_(catalog), estimator_(estimator) {
  SOMPI_REQUIRE(catalog_ != nullptr && estimator_ != nullptr);
}

GroupSetup SetupBuilder::build(const AppProfile& app, const CircleGroupSpec& spec,
                               const Market& history, const SetupConfig& config) const {
  const SpotTrace& trace = history.trace(spec);
  SOMPI_REQUIRE(config.max_bid_over_ondemand > 0.0);
  const double ceiling =
      catalog_->type(spec.type_index).ondemand_usd_h * config.max_bid_over_ondemand;
  const double top = std::min(trace.max_price(), ceiling);
  std::vector<double> bids = config.bid_grid == BidGridKind::kLogarithmic
                                 ? logarithmic_bid_grid(top, config.log_levels)
                                 : uniform_bid_grid(top, config.uniform_points);
  return build_with_bids(app, spec, history, config, std::move(bids));
}

GroupSetup SetupBuilder::build_with_bids(const AppProfile& app, const CircleGroupSpec& spec,
                                         const Market& history, const SetupConfig& config,
                                         std::vector<double> bids) const {
  SOMPI_REQUIRE(config.step_hours > 0.0);
  const InstanceType& type = catalog_->type(spec.type_index);
  // Zone-qualified estimates: with a platform-aware estimator the group's
  // zone folds its fabric/uplink into T_i, O_i and R_i (flat platforms and
  // the catalog-only estimator reproduce the zone-less numbers bit-exactly).
  const std::string& zone = catalog_->zone(spec.zone_index).name;

  const double t_h = estimator_->hours(app, type, zone);
  const int t_steps = std::max(1, static_cast<int>(std::ceil(t_h / config.step_hours)));

  const CheckpointCosts ck = estimator_->checkpoint_costs(app, type, zone);
  const double o_steps = ck.checkpoint_h / config.step_hours;
  const double r_steps = ck.recovery_h / config.step_hours;

  // Horizon: the densest schedule (F = 1) checkpoints after every step, so
  // the wall duration is at most T·(1 + O) plus rounding headroom.
  FailureEstimationConfig fec = config.failure;
  fec.horizon_steps = static_cast<std::size_t>(
      std::ceil(static_cast<double>(t_steps) * (1.0 + o_steps))) + 2;

  return GroupSetup{
      .spec = spec,
      .instances = catalog_->instances_for(spec.type_index, app.processes),
      .t_steps = t_steps,
      .o_steps = o_steps,
      .r_steps = r_steps,
      .failure = FailureModel(history.trace(spec), std::move(bids), fec),
  };
}

std::vector<GroupSetup> SetupBuilder::build_candidates(const AppProfile& app,
                                                       const Market& history,
                                                       const SetupConfig& config,
                                                       double max_hours) const {
  std::vector<GroupSetup> out;
  for (const CircleGroupSpec& spec : catalog_->all_groups()) {
    const double t_h = estimator_->hours(app, catalog_->type(spec.type_index),
                                         catalog_->zone(spec.zone_index).name);
    if (t_h > max_hours) continue;  // cannot complete before the deadline
    out.push_back(build(app, spec, history, config));
  }
  return out;
}

}  // namespace sompi
