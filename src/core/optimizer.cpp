#include "core/optimizer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <optional>

#include "common/combinatorics.h"
#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/schedule.h"

namespace sompi {

namespace {

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL);
  h = splitmix64(s);
}

void hash_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  hash_mix(h, bits);
}

void hash_string(std::uint64_t& h, const std::string& s) {
  hash_mix(h, s.size());
  for (const char c : s) hash_mix(h, static_cast<unsigned char>(c));
}

}  // namespace

std::uint64_t replan_config_hash(const OptimizerConfig& config, const AppProfile& app,
                                 const OnDemandChoice& od, double deadline_h) {
  std::uint64_t h = 0x7AB1E5EEDULL;
  hash_double(h, deadline_h);
  // The app profile: T_i/O_i/R_i derive from it through the estimator. A
  // store must only be shared across solvers with the same catalog and
  // estimator — those are identities, not values, so they are the caller's
  // contract rather than part of the hash.
  hash_string(h, app.name);
  hash_mix(h, static_cast<std::uint64_t>(app.category));
  hash_mix(h, static_cast<std::uint64_t>(app.processes));
  hash_double(h, app.instr_gi);
  hash_double(h, app.comm_gb);
  hash_double(h, app.msgs_per_rank);
  hash_double(h, app.io_seq_gb);
  hash_double(h, app.io_rand_gb);
  hash_double(h, app.state_gb);
  // The on-demand tier: φ and the guard tables see it.
  hash_mix(h, od.type_index);
  hash_double(h, od.t_h);
  hash_mix(h, static_cast<std::uint64_t>(od.instances));
  hash_double(h, od.rate_usd_h);
  hash_mix(h, od.feasible ? 1 : 0);
  hash_double(h, config.slack);
  // Problem-construction knobs (the bid grid and the failure estimator).
  hash_double(h, config.setup.step_hours);
  hash_mix(h, static_cast<std::uint64_t>(config.setup.bid_grid));
  hash_mix(h, config.setup.log_levels);
  hash_mix(h, config.setup.uniform_points);
  hash_double(h, config.setup.max_bid_over_ondemand);
  hash_mix(h, config.setup.failure.samples);
  hash_mix(h, config.setup.failure.horizon_steps);
  hash_mix(h, config.setup.failure.seed);
  hash_mix(h, config.setup.failure.wrap ? 1 : 0);
  // Search knobs that shape artifact content.
  hash_mix(h, config.ratio_bins);
  hash_mix(h, static_cast<std::uint64_t>(config.phi_mode));
  hash_mix(h, config.worst_case_guard ? 1 : 0);
  // The EFFECTIVE policy list: an empty config means the degenerate {s3}.
  std::vector<CkptPolicy> policies = config.ckpt_policies;
  if (policies.empty()) policies.push_back(CkptPolicy{});
  hash_mix(h, policies.size());
  for (const CkptPolicy& pol : policies) {
    hash_string(h, pol.name);
    hash_double(h, pol.o_scale);
    hash_double(h, pol.r_scale);
  }
  return h;
}

SompiOptimizer::SompiOptimizer(const Catalog* catalog, const ExecTimeEstimator* estimator,
                               OptimizerConfig config)
    : catalog_(catalog), estimator_(estimator), config_(std::move(config)) {
  SOMPI_REQUIRE(catalog_ != nullptr && estimator_ != nullptr);
  SOMPI_REQUIRE(config_.max_groups >= 1);
  SOMPI_REQUIRE(config_.max_candidates >= 1);
}

Plan SompiOptimizer::optimize(const AppProfile& app, const Market& history,
                              double deadline_h) const {
  return optimize(app, history, deadline_h, nullptr);
}

Plan SompiOptimizer::optimize(const AppProfile& app, const Market& history, double deadline_h,
                              ReplanContext* ctx) const {
  SOMPI_REQUIRE(deadline_h > 0.0);
  // The on-demand tier first: it depends only on (app, deadline, slack), and
  // the warm setup lookup hashes it.
  const OnDemandSelector od_selector(catalog_, estimator_);
  const OnDemandChoice od = od_selector.select(app, deadline_h, config_.slack);

  // SetupBuilder::build_candidates, with the per-group build routed through
  // the warm store: same specs, same order, same deadline cutoff.
  std::vector<GroupSetup> candidates;
  for (const CircleGroupSpec& spec : catalog_->all_groups()) {
    const double t_h = estimator_->hours(app, catalog_->type(spec.type_index),
                                         catalog_->zone(spec.zone_index).name);
    if (t_h > deadline_h) continue;  // cannot complete before the deadline
    candidates.push_back(setup_for(app, spec, history, od, deadline_h, ctx));
  }

  return optimize_over(app, std::move(candidates), od, deadline_h, ctx);
}

GroupSetup SompiOptimizer::setup_for(const AppProfile& app, const CircleGroupSpec& spec,
                                     const Market& history, const OnDemandChoice& od,
                                     double deadline_h, ReplanContext* ctx) const {
  const SetupBuilder builder(catalog_, estimator_);
  if (ctx == nullptr || !ctx->usable()) return builder.build(app, spec, history, config_.setup);

  const std::size_t zones = catalog_->zones().size();
  const std::uint64_t version = ctx->versions->at(spec.type_index * zones + spec.zone_index);
  const std::uint64_t chash = replan_config_hash(config_, app, od, deadline_h);
  if (const auto art = ctx->store->lookup(ctx->scope, spec, version, chash))
    return art->setup;

  // Store a setup-only artifact immediately: even if this group is pruned
  // from the search below max_candidates, the next epoch skips its
  // Monte-Carlo failure estimation — the dominant cold-solve cost.
  auto art = std::make_shared<GroupArtifact>(version, builder.build(app, spec, history,
                                                                   config_.setup));
  GroupSetup setup = art->setup;
  ctx->store->store(ctx->scope, spec, chash, std::move(art));
  return setup;
}

Plan SompiOptimizer::optimize_over(const AppProfile& app, std::vector<GroupSetup> candidates,
                                   const OnDemandChoice& od, double deadline_h) const {
  return optimize_over(app, std::move(candidates), od, deadline_h, nullptr);
}

Plan SompiOptimizer::optimize_over(const AppProfile& app, std::vector<GroupSetup> candidates,
                                   const OnDemandChoice& od, double deadline_h,
                                   ReplanContext* ctx) const {
  const auto t_begin = std::chrono::steady_clock::now();

  Plan plan;
  plan.app = app.name;
  plan.step_hours = config_.setup.step_hours;
  plan.deadline_h = deadline_h;
  plan.state_gb = app.state_gb;
  plan.od = od;

  // Prune the candidate pool: keep the groups with the lowest expected
  // full-run spot cost (expected price at the top bid × instances × T_i).
  if (candidates.size() > config_.max_candidates) {
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    auto score = [&](std::size_t i) {
      const auto& g = candidates[i];
      const std::size_t top = g.failure.bid_count() - 1;
      return g.failure.expected_price(top) * g.instances * g.t_steps;
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return score(a) < score(b); });
    std::vector<GroupSetup> kept;
    kept.reserve(config_.max_candidates);
    for (std::size_t i = 0; i < config_.max_candidates; ++i)
      kept.push_back(std::move(candidates[order[i]]));
    candidates = std::move(kept);
  }

  // Checkpoint-level policies (DESIGN.md §11). An empty config list is the
  // degenerate single-policy set {s3}. Each group's composite choice index is
  //   c = p · bid_count(g) + b,
  // so with one policy c == b: enumeration order, tuple radices, colex ranks
  // and logical evaluation counts all coincide with the pre-multilevel scan.
  std::vector<CkptPolicy> policies = config_.ckpt_policies;
  if (policies.empty()) policies.push_back(CkptPolicy{});
  const std::size_t n_pol = policies.size();
  const auto choice_count = [&](std::size_t g) {
    return n_pol * candidates[g].failure.bid_count();
  };
  const auto decode = [&](std::size_t g, std::size_t c,
                          const std::vector<std::vector<int>>& f_of) {
    const std::size_t bids = candidates[g].failure.bid_count();
    const std::size_t p = c / bids;
    return GroupDecision{c % bids, f_of[g][c], policies[p].o_scale,
                         policies[p].r_scale, p};
  };

  // Warm start (DESIGN.md §14): resolve each kept candidate's cached
  // artifact. A hit whose shape matches the current composite choice space
  // lets every derived table below — φ intervals, guard tables, and (for the
  // incremental engine) the GroupCostTable block — be reused bit-identically
  // instead of recomputed; everything else is computed as on the cold path
  // and stored back for the next epoch.
  const bool warm = ctx != nullptr && ctx->usable();
  const std::uint64_t chash = warm ? replan_config_hash(config_, app, od, deadline_h) : 0;
  const std::size_t zone_count = catalog_->zones().size();
  const auto version_of = [&](const CircleGroupSpec& spec) {
    return ctx->versions->at(spec.type_index * zone_count + spec.zone_index);
  };
  std::vector<std::shared_ptr<const GroupArtifact>> arts(candidates.size());
  if (warm)
    for (std::size_t g = 0; g < candidates.size(); ++g)
      arts[g] = ctx->store->lookup(ctx->scope, candidates[g].spec,
                                   version_of(candidates[g].spec), chash);
  const auto derived_ok = [&](std::size_t g) {
    const auto& a = arts[g];
    return a != nullptr && a->has_derived() && a->f_of.size() == choice_count(g) &&
           a->f_guard_max.size() == n_pol && a->fits.size() == choice_count(g) &&
           a->surv_ok.size() == choice_count(g);
  };

  // Dimension reduction: F_i = φ_i(P_i), precomputed per composite
  // (group, policy, bid) choice — φ sees the policy's effective O/R.
  CheckpointPlanner::Config phi_cfg;
  phi_cfg.mode = config_.phi_mode;
  phi_cfg.step_hours = config_.setup.step_hours;
  phi_cfg.ratio_bins = config_.ratio_bins;
  const CheckpointPlanner phi(phi_cfg);
  std::vector<std::vector<int>> f_of(candidates.size());
  parallel_for(candidates.size(), config_.threads, [&](std::size_t i) {
    if (warm && derived_ok(i)) {
      f_of[i] = arts[i]->f_of;
      return;
    }
    const std::size_t bids = candidates[i].failure.bid_count();
    f_of[i].resize(n_pol * bids);
    for (std::size_t c = 0; c < f_of[i].size(); ++c) {
      const CkptPolicy& pol = policies[c / bids];
      f_of[i][c] = phi.choose(candidates[i], c % bids, od, pol.o_scale, pol.r_scale);
    }
  });

  const CostModel::Config model_cfg{.step_hours = config_.setup.step_hours,
                                    .ratio_bins = config_.ratio_bins};
  const double step_h = config_.setup.step_hours;

  // Worst-case completion time of a group killed at its most damaging
  // instant, recovering from its last checkpoint on the on-demand tier:
  // max over t of (t + Ratio(t)·T_od). The max over all groups bounds the
  // joint worst case of any plan: if every group dies at time t_i,
  //   Time <= max_i t_i + T_od·min_i Ratio_i(t_i) <= max_i (t_i + T_od·Ratio_i(t_i)).
  const auto group_worst_h = [&](const GroupSetup& g, int f_steps, double o_scale,
                                 double r_scale) {
    const GroupSchedule sched(g.t_steps, f_steps, g.o_steps * o_scale,
                              g.r_steps * r_scale);
    const double w = sched.wall_duration();
    double worst = w * step_h;  // clean completion
    for (std::size_t t = 0; t < static_cast<std::size_t>(std::ceil(w)); ++t) {
      const double candidate =
          static_cast<double>(t) * step_h + sched.ratio_at(static_cast<double>(t)) * od.t_h;
      worst = std::max(worst, candidate);
    }
    return worst;
  };

  // Largest checkpoint interval whose worst case still fits the deadline —
  // the guard-clamped alternative tried for single-group plans. worst(F) is
  // monotone in F (fewer checkpoints → more redone work), so binary search.
  // The clamp depends on the policy's effective O/R, so it is per (group,
  // policy), indexed g·n_pol + p.
  std::vector<int> f_guard_max(candidates.size() * n_pol, 0);
  if (config_.worst_case_guard) {
    parallel_for(candidates.size() * n_pol, config_.threads, [&](std::size_t idx) {
      if (warm && derived_ok(idx / n_pol)) {
        f_guard_max[idx] = arts[idx / n_pol]->f_guard_max[idx % n_pol];
        return;
      }
      const GroupSetup& g = candidates[idx / n_pol];
      const CkptPolicy& pol = policies[idx % n_pol];
      if (group_worst_h(g, 1, pol.o_scale, pol.r_scale) > deadline_h)
        return;  // even F = 1 unsafe
      int lo = 1, hi = g.t_steps;
      while (lo < hi) {
        const int mid = lo + (hi - lo + 1) / 2;
        if (group_worst_h(g, mid, pol.o_scale, pol.r_scale) <= deadline_h) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      f_guard_max[idx] = lo;
    });
  }

  const std::size_t k_max =
      std::min<std::size_t>(config_.max_groups, candidates.size());
  const std::size_t k_min = config_.enumerate_smaller_subsets ? 1 : k_max;

  // Materialize the k-of-K subsets in enumeration order so they can be
  // searched independently. The per-subset bid-tuple scan below is the
  // serial algorithm verbatim; the cross-subset winner is reduced with a
  // total order (cost, then enumeration rank), so the chosen plan does not
  // depend on how the subsets were scheduled across threads.
  std::vector<std::vector<std::size_t>> subsets;
  for (std::size_t k = k_min; k <= k_max; ++k)
    for_each_combination(candidates.size(), k,
                         [&](const std::vector<std::size_t>& s) { subsets.push_back(s); });

  struct SubsetBest {
    double cost = std::numeric_limits<double>::infinity();
    std::size_t order = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> subset;
    std::vector<GroupDecision> decisions;
    Expectation expectation;
    /// Logical evaluation count of the exhaustive scan — invariant under
    /// engine/pruning/threads, feeds Plan::model_evaluations (fingerprint).
    std::size_t evaluations = 0;
    /// What the engine actually did (Plan::stats; fingerprint-excluded).
    PlanStats stats;
  };

  // Per-(group, composite-choice) guard tables, hoisted out of the tuple
  // loop: the reference scan recomputes group_worst_h (an O(wall) scan) per
  // tuple per group; both the deadline-fit and the survival-vs-0.5 test
  // depend only on the (group, policy, bid) triple once F is tied to them.
  std::vector<std::size_t> choice_off(candidates.size() + 1, 0);
  for (std::size_t g = 0; g < candidates.size(); ++g)
    choice_off[g + 1] = choice_off[g] + choice_count(g);
  std::vector<unsigned char> fits(choice_off.back(), 1);
  std::vector<unsigned char> surv_ok(choice_off.back(), 1);
  if (config_.worst_case_guard) {
    parallel_for(candidates.size(), config_.threads, [&](std::size_t g) {
      if (warm && derived_ok(g)) {
        std::copy(arts[g]->fits.begin(), arts[g]->fits.end(), fits.begin() + choice_off[g]);
        std::copy(arts[g]->surv_ok.begin(), arts[g]->surv_ok.end(),
                  surv_ok.begin() + choice_off[g]);
        return;
      }
      const GroupSetup& grp = candidates[g];
      const std::size_t bids = grp.failure.bid_count();
      for (std::size_t c = 0; c < choice_count(g); ++c) {
        const CkptPolicy& pol = policies[c / bids];
        const GroupSchedule sched(grp.t_steps, f_of[g][c],
                                  grp.o_steps * pol.o_scale,
                                  grp.r_steps * pol.r_scale);
        fits[choice_off[g] + c] =
            group_worst_h(grp, f_of[g][c], pol.o_scale, pol.r_scale) <= deadline_h;
        surv_ok[choice_off[g] + c] =
            !(grp.failure.survival_at(c % bids, sched.wall_duration()) < 0.5);
      }
    });
  }

  // Exhaustive-scan evaluation count for one subset, in closed form. The
  // reference engine evaluates (a) every all-fit tuple, (b) for k >= 2,
  // every tuple with some unfit digit whose groups all pass the survival
  // test, and (c) for k == 1, the guard-clamped second shot per bid where
  // the clamp is active. With the guard off, every tuple is evaluated.
  const auto logical_evaluations = [&](const std::vector<std::size_t>& subset) {
    if (!config_.worst_case_guard) {
      std::size_t n = 1;
      for (std::size_t g : subset) n *= choice_count(g);
      return n;
    }
    std::size_t n_fit = 1, n_surv = 1, n_surv_fit = 1;
    for (std::size_t g : subset) {
      std::size_t fit = 0, surv = 0, both = 0;
      for (std::size_t c = 0; c < choice_count(g); ++c) {
        fit += fits[choice_off[g] + c];
        surv += surv_ok[choice_off[g] + c];
        both += fits[choice_off[g] + c] & surv_ok[choice_off[g] + c];
      }
      n_fit *= fit;
      n_surv *= surv;
      n_surv_fit *= both;
    }
    std::size_t n = n_fit;
    if (subset.size() >= 2) n += n_surv - n_surv_fit;
    if (subset.size() == 1 && config_.phi_mode != PhiMode::kDisabled) {
      const std::size_t g = subset[0];
      const std::size_t bids = candidates[g].failure.bid_count();
      for (std::size_t c = 0; c < choice_count(g); ++c) {
        const int clamp = f_guard_max[g * n_pol + c / bids];
        n += clamp >= 1 && clamp < f_of[g][c];
      }
    }
    return n;
  };

  const auto eval_subset_reference = [&](std::size_t task) {
    const std::vector<std::size_t>& subset = subsets[task];
    const std::size_t k = subset.size();
    SubsetBest best;
    best.order = task;
    best.stats.subsets_searched = 1;

    std::vector<const GroupSetup*> view;
    std::vector<std::size_t> radices;
    view.reserve(k);
    radices.reserve(k);
    for (std::size_t i : subset) {
      view.push_back(&candidates[i]);
      radices.push_back(n_pol * candidates[i].failure.bid_count());
    }
    const CostModel model(std::move(view), od, model_cfg);

    std::vector<GroupDecision> decisions(k);
    const auto consider = [&](const std::vector<GroupDecision>& d) {
      if (config_.worst_case_guard) {
        double worst = 0.0;
        for (std::size_t i = 0; i < k; ++i)
          worst = std::max(worst, group_worst_h(candidates[subset[i]], d[i].f_steps,
                                                d[i].o_scale, d[i].r_scale));
        if (worst > deadline_h) {
          // Worst case does not fit: only GENUINE replication may stand in
          // — at least two replicas, each individually likely to finish
          // (no phantom replicas whose bid dies on arrival), with the
          // joint wipeout below the tolerance. A lone group must not pass
          // here: a short history window can miss rare spikes entirely
          // and report survival 1.0.
          if (k < 2) return;
          for (std::size_t i = 0; i < k; ++i) {
            const GroupSetup& g = candidates[subset[i]];
            const GroupSchedule sched(g.t_steps, d[i].f_steps,
                                      g.o_steps * d[i].o_scale,
                                      g.r_steps * d[i].r_scale);
            if (g.failure.survival_at(d[i].bid_index, sched.wall_duration()) < 0.5) return;
          }
          const Expectation e = model.evaluate(d);
          ++best.evaluations;
          ++best.stats.evaluations;
          const double p_all_fail = 1.0 - e.p_complete_on_spot;
          if (p_all_fail > config_.miss_tolerance) return;
          if (e.time_h <= deadline_h && e.cost_usd < best.cost) {
            best.cost = e.cost_usd;
            best.subset = subset;
            best.decisions = d;
            best.expectation = e;
          }
          return;
        }
      }
      const Expectation e = model.evaluate(d);
      ++best.evaluations;
      ++best.stats.evaluations;
      if (e.time_h <= deadline_h && e.cost_usd < best.cost) {
        best.cost = e.cost_usd;
        best.subset = subset;
        best.decisions = d;
        best.expectation = e;
      }
    };

    for_each_tuple(radices, [&](const std::vector<std::size_t>& digits) {
      ++best.stats.tuples_visited;
      for (std::size_t i = 0; i < k; ++i)
        decisions[i] = decode(subset[i], digits[i], f_of);
      consider(decisions);

      // Single-group plans get a second shot with the guard-clamped
      // interval: denser checkpoints buy worst-case deadline safety.
      // (Not when checkpointing is ablated away — the clamp would
      // silently re-enable it.)
      if (config_.worst_case_guard && k == 1 && config_.phi_mode != PhiMode::kDisabled) {
        const int clamp = f_guard_max[subset[0] * n_pol + decisions[0].policy_index];
        if (clamp >= 1 && clamp < decisions[0].f_steps) {
          std::vector<GroupDecision> clamped = decisions;
          clamped[0].f_steps = clamp;
          consider(clamped);
        }
      }
    });
    return best;
  };

  // --- Incremental engine (DESIGN.md "Optimizer fast path"). ---
  // Per-(group, bid) kernels precomputed once over the full candidate list;
  // per-subset searches walk a lex-order odometer with per-prefix cached
  // fold state and cut subtrees whose admissible cost bound exceeds the
  // cross-subset incumbent. Plans are bit-identical to the reference scan.
  std::optional<CostTables> tables;
  std::size_t tables_reused = 0;
  std::size_t tables_built = 0;
  if (config_.engine == SearchEngine::kIncremental && !candidates.empty()) {
    // Per-group table blocks: a warm artifact's block is adopted as-is (it
    // is a pure function of inputs the version + config hash pin), the rest
    // are built exactly as on the cold path. Reuse is decided up front so
    // the counters stay exact and the parallel build races nothing.
    std::vector<unsigned char> reuse(candidates.size(), 0);
    for (std::size_t g = 0; g < candidates.size(); ++g) {
      reuse[g] = warm && derived_ok(g) && arts[g]->table != nullptr &&
                 arts[g]->table->choice_count() == choice_count(g);
      reuse[g] ? ++tables_reused : ++tables_built;
    }
    std::vector<std::shared_ptr<const GroupCostTable>> blocks(candidates.size());
    parallel_for(candidates.size(), config_.threads, [&](std::size_t g) {
      if (reuse[g]) {
        blocks[g] = arts[g]->table;
        return;
      }
      const std::size_t bids = candidates[g].failure.bid_count();
      std::vector<ChoiceSpec> choices(choice_count(g));
      for (std::size_t c = 0; c < choices.size(); ++c) {
        const std::size_t p = c / bids;
        choices[c] = ChoiceSpec{c % bids, f_of[g][c], policies[p].o_scale,
                                policies[p].r_scale, p};
      }
      blocks[g] = std::make_shared<const GroupCostTable>(candidates[g], od, model_cfg, choices);
    });
    tables.emplace(candidates, od, model_cfg, std::move(blocks));
  }

  // Store back every artifact this solve had to (re)build, so the next
  // epoch's clean groups start fully warm. Incremental solves store the
  // table block too; reference solves leave it null (a later incremental
  // solve rebuilds just the block from the cached setup).
  if (warm) {
    for (std::size_t g = 0; g < candidates.size(); ++g) {
      const bool fully_cached =
          derived_ok(g) && (!tables.has_value() || arts[g]->table != nullptr);
      if (fully_cached) continue;
      auto art = std::make_shared<GroupArtifact>(version_of(candidates[g].spec), candidates[g]);
      art->f_of = f_of[g];
      art->f_guard_max.assign(f_guard_max.begin() + static_cast<std::ptrdiff_t>(g * n_pol),
                              f_guard_max.begin() + static_cast<std::ptrdiff_t>((g + 1) * n_pol));
      art->fits.assign(fits.begin() + static_cast<std::ptrdiff_t>(choice_off[g]),
                       fits.begin() + static_cast<std::ptrdiff_t>(choice_off[g + 1]));
      art->surv_ok.assign(surv_ok.begin() + static_cast<std::ptrdiff_t>(choice_off[g]),
                          surv_ok.begin() + static_cast<std::ptrdiff_t>(choice_off[g + 1]));
      if (tables.has_value()) art->table = tables->block(g);
      ctx->store->store(ctx->scope, candidates[g].spec, chash, std::move(art));
    }
  }

  // Best accepted cost seen by any subset so far. Any accepted candidate's
  // cost upper-bounds the final plan cost, so pruning strictly above it is
  // safe no matter how threads interleave; only the prune *counters* are
  // schedule-dependent (hence Plan::stats is fingerprint-excluded).
  std::atomic<double> incumbent{std::numeric_limits<double>::infinity()};
  const auto offer_incumbent = [&incumbent](double cost) {
    double cur = incumbent.load(std::memory_order_relaxed);
    while (cost < cur &&
           !incumbent.compare_exchange_weak(cur, cost, std::memory_order_relaxed)) {
    }
  };

  // Incumbent seeding: re-cost the previous epoch's winning plan under the
  // CURRENT tables and, if it is still an acceptable tuple of the current
  // search space, start the incumbent there instead of at infinity. Safe by
  // admissibility: the true winner costs at most the seed (the seed tuple is
  // itself enumerated and acceptable), bounds never exceed true costs, and
  // pruning is strictly-above-incumbent — so the winner's subtree is never
  // cut and equal-cost ties resolve through the untouched acceptance logic.
  // Any mapping failure (group no longer a candidate, bid fell off the grid,
  // guard-clamped interval, policy set changed) just skips the seed.
  std::size_t warm_seeds = 0;
  if (warm && ctx->incumbent != nullptr && ctx->incumbent->uses_spot() &&
      config_.prune && tables.has_value()) {
    const Plan& prev = *ctx->incumbent;
    const std::size_t k = prev.groups.size();
    bool ok = k >= k_min && k <= k_max;
    std::vector<std::pair<std::size_t, std::size_t>> mapped;  // (candidate, choice)
    for (const GroupPlan& gp : prev.groups) {
      if (!ok) break;
      std::size_t ci = candidates.size();
      for (std::size_t i = 0; i < candidates.size(); ++i)
        if (candidates[i].spec.type_index == gp.spec.type_index &&
            candidates[i].spec.zone_index == gp.spec.zone_index) {
          ci = i;
          break;
        }
      if (ci == candidates.size()) {
        ok = false;
        break;
      }
      const GroupSetup& g = candidates[ci];
      std::size_t p = n_pol;
      for (std::size_t q = 0; q < n_pol; ++q)
        if (policies[q].name == gp.ckpt_policy) {
          p = q;
          break;
        }
      const std::size_t bids = g.failure.bid_count();
      std::size_t b = bids;
      for (std::size_t j = 0; j < bids; ++j)
        if (g.failure.bid(j) == gp.bid_usd) {
          b = j;
          break;
        }
      // Every field must match the tuple EXACTLY (bit-exact doubles): the
      // seed must be a tuple the engine itself would evaluate from the
      // tables, or its cost could undercut every real tuple and prune the
      // true winner.
      if (p == n_pol || b == bids || g.instances != gp.instances ||
          g.t_steps != gp.t_steps || f_of[ci][p * bids + b] != gp.f_steps ||
          g.o_steps * policies[p].o_scale != gp.o_steps ||
          g.r_steps * policies[p].r_scale != gp.r_steps) {
        ok = false;
        break;
      }
      mapped.emplace_back(ci, p * bids + b);
    }
    if (ok) {
      std::sort(mapped.begin(), mapped.end());
      for (std::size_t i = 0; i + 1 < mapped.size(); ++i)
        if (mapped[i].first == mapped[i + 1].first) ok = false;
    }
    if (ok) {
      std::vector<std::size_t> members(k), digits(k);
      for (std::size_t i = 0; i < k; ++i) {
        members[i] = mapped[i].first;
        digits[i] = mapped[i].second;
      }
      // The engine's guard predicates, verbatim: the seed must be a tuple
      // the search would ACCEPT, not merely evaluate.
      bool guard_branch = false;
      bool guard_reject = false;
      if (config_.worst_case_guard) {
        for (std::size_t i = 0; i < k; ++i)
          if (!fits[choice_off[members[i]] + digits[i]]) {
            guard_branch = true;
            break;
          }
        if (guard_branch) {
          if (k < 2) {
            guard_reject = true;
          } else {
            for (std::size_t i = 0; i < k; ++i)
              if (!surv_ok[choice_off[members[i]] + digits[i]]) {
                guard_reject = true;
                break;
              }
          }
        }
      }
      if (!guard_reject) {
        SubsetEvaluator seed_ev(*tables, members);
        const Expectation& e = seed_ev.evaluate(digits);
        const bool miss =
            guard_branch && 1.0 - e.p_complete_on_spot > config_.miss_tolerance;
        if (!miss && e.time_h <= deadline_h) {
          offer_incumbent(e.cost_usd);
          warm_seeds = 1;
        }
      }
    }
  }

  const auto eval_subset_fast = [&](std::size_t task) {
    const std::vector<std::size_t>& subset = subsets[task];
    const std::size_t k = subset.size();
    SubsetBest best;
    best.order = task;
    best.evaluations = logical_evaluations(subset);

    std::vector<std::size_t> radices;
    radices.reserve(k);
    std::size_t total_tuples = 1;
    for (std::size_t g : subset) {
      radices.push_back(choice_count(g));
      total_tuples *= radices.back();
    }

    // The reference scan visits tuples digit-0-fastest (colex) and accepts
    // strict improvements only, so among equal-cost tuples it keeps the one
    // with the lowest colex rank. The odometer visits in lex order; breaking
    // cost ties by colex rank reproduces the reference winner exactly
    // instead of relying on costs never tying.
    std::vector<std::uint64_t> colex_w(k);
    std::uint64_t w = 1;
    for (std::size_t i = 0; i < k; ++i) {
      colex_w[i] = w;
      w *= radices[i];
    }
    const auto colex_rank = [&](const std::vector<std::size_t>& bids) {
      std::uint64_t r = 0;
      for (std::size_t i = 0; i < k; ++i) r += colex_w[i] * bids[i];
      return r;
    };
    std::uint64_t best_rank = std::numeric_limits<std::uint64_t>::max();

    // Guard-clamped second shots exist only for single-group subsets and use
    // an interval outside the precomputed tables, where spot-term
    // monotonicity in F is not bitwise-guaranteed — so k == 1 subsets (only
    // O(bid_count) tuples) are searched unpruned.
    const bool prune = config_.prune && k >= 2;

    SubsetEvaluator ev(*tables, subset);
    if (prune) {
      const double inc = incumbent.load(std::memory_order_relaxed);
      if (inc < std::numeric_limits<double>::infinity() &&
          ev.subset_cost_bound() > inc) {
        best.stats.subsets_pruned = 1;
        best.stats.tuples_pruned = total_tuples;
        return best;
      }
    }
    best.stats.subsets_searched = 1;

    std::optional<CostModel> clamp_model;  // lazy; k == 1 second shots only
    std::vector<GroupDecision> decisions(k);
    const auto accept = [&](const Expectation& e, const std::vector<GroupDecision>& d,
                            std::uint64_t rank) {
      if (!(e.time_h <= deadline_h)) return;
      if (e.cost_usd < best.cost || (e.cost_usd == best.cost && rank < best_rank)) {
        best.cost = e.cost_usd;
        best_rank = rank;
        best.subset = subset;
        best.decisions = d;
        best.expectation = e;
        offer_incumbent(e.cost_usd);
      }
    };

    TupleOdometer odo(radices);
    std::size_t changed = 0;
    while (!odo.done()) {
      const std::vector<std::size_t>& bids = odo.digits();
      ev.note_change(changed);
      if (prune) {
        const double inc =
            std::min(best.cost, incumbent.load(std::memory_order_relaxed));
        if (inc < std::numeric_limits<double>::infinity()) {
          // After advance/skip the digits below `changed` are zero, so the
          // current tuple is the first of the subtree rooted at its prefix
          // [0, changed] — one cut abandons the whole subtree.
          if (changed + 1 < k && ev.cost_lower_bound(bids, changed) > inc) {
            ++best.stats.subtrees_pruned;
            best.stats.tuples_pruned +=
                static_cast<std::size_t>(odo.subtree_size(changed));
            changed = odo.skip_from(changed);
            continue;
          }
          if (ev.cost_lower_bound(bids, k - 1) > inc) {
            ++best.stats.tuples_pruned;
            changed = odo.advance();
            continue;
          }
        }
      }
      ++best.stats.tuples_visited;

      for (std::size_t i = 0; i < k; ++i)
        decisions[i] = decode(subset[i], bids[i], f_of);

      // Guard filter, table-driven (same predicates the reference scan
      // computes per tuple): a tuple whose worst case misses the deadline is
      // evaluated only when genuine replication can stand in.
      bool guard_branch = false;  // some digit's worst case misses
      bool guard_reject = false;  // ... and replication cannot stand in
      if (config_.worst_case_guard) {
        for (std::size_t i = 0; i < k; ++i)
          if (!fits[choice_off[subset[i]] + bids[i]]) {
            guard_branch = true;
            break;
          }
        if (guard_branch) {
          if (k < 2) {
            guard_reject = true;
          } else {
            for (std::size_t i = 0; i < k; ++i)
              if (!surv_ok[choice_off[subset[i]] + bids[i]]) {
                guard_reject = true;
                break;
              }
          }
        }
      }
      if (!guard_reject) {
        const Expectation& e = ev.evaluate(bids);
        ++best.stats.evaluations;
        const bool miss =
            guard_branch && 1.0 - e.p_complete_on_spot > config_.miss_tolerance;
        if (!miss) accept(e, decisions, colex_rank(bids));
      }

      // Single-group second shot with the guard-clamped interval, exactly as
      // in the reference scan. The clamped interval is not in the tables, so
      // it goes through the naive evaluator (bit-identical by definition).
      if (config_.worst_case_guard && k == 1 && config_.phi_mode != PhiMode::kDisabled) {
        const int clamp = f_guard_max[subset[0] * n_pol + decisions[0].policy_index];
        if (clamp >= 1 && clamp < decisions[0].f_steps) {
          if (!clamp_model)
            clamp_model.emplace(
                std::vector<const GroupSetup*>{&candidates[subset[0]]}, od, model_cfg);
          std::vector<GroupDecision> clamped = decisions;
          clamped[0].f_steps = clamp;
          const Expectation e = clamp_model->evaluate(clamped);
          ++best.stats.evaluations;
          // worst(clamp) fits the deadline by the binary-search invariant,
          // so the reference takes the plain acceptance branch here too.
          accept(e, clamped, colex_rank(bids));
        }
      }

      changed = odo.advance();
    }
    return best;
  };

  const auto eval_subset = [&](std::size_t task) {
    return config_.engine == SearchEngine::kIncremental ? eval_subset_fast(task)
                                                        : eval_subset_reference(task);
  };

  // Strict-improvement acceptance inside a subset plus the (cost, order)
  // tie-break across subsets reproduce the serial scan's winner exactly.
  const SubsetBest best = parallel_reduce(
      subsets.size(), config_.threads, SubsetBest{}, eval_subset,
      [](SubsetBest a, SubsetBest b) {
        const bool b_wins = b.cost < a.cost || (b.cost == a.cost && b.order < a.order);
        PlanStats stats = a.stats;
        stats += b.stats;
        SubsetBest& winner = b_wins ? b : a;
        winner.evaluations = a.evaluations + b.evaluations;
        winner.stats = stats;
        return std::move(winner);
      });

  const double best_cost = best.cost;
  const std::vector<std::size_t>& best_subset = best.subset;
  const std::vector<GroupDecision>& best_decisions = best.decisions;
  const Expectation& best_expectation = best.expectation;
  const std::size_t evaluations = best.evaluations;

  plan.model_evaluations = evaluations;
  plan.stats = best.stats;
  plan.stats.tables_reused = tables_reused;
  plan.stats.tables_built = tables_built;
  plan.stats.warm_seeds = warm_seeds;
  plan.spot_feasible = best_cost < std::numeric_limits<double>::infinity();

  // Fall back to on-demand when no spot configuration fits the deadline or
  // when running on demand is outright cheaper than the best hybrid.
  if (!plan.spot_feasible || best_cost >= od.full_cost_usd()) {
    plan.groups.clear();
    plan.expected = Expectation{};
    plan.expected.cost_usd = plan.expected.od_cost_usd = od.full_cost_usd();
    plan.expected.time_h = plan.expected.od_time_h = od.t_h;
    plan.expected.e_min_ratio = 1.0;
  } else {
    for (std::size_t i = 0; i < best_subset.size(); ++i) {
      const GroupSetup& g = candidates[best_subset[i]];
      const GroupDecision& d = best_decisions[i];
      plan.groups.push_back(GroupPlan{
          .spec = g.spec,
          .name = catalog_->group_name(g.spec),
          .instances = g.instances,
          .t_steps = g.t_steps,
          .o_steps = g.o_steps * d.o_scale,
          .r_steps = g.r_steps * d.r_scale,
          .bid_usd = g.failure.bid(d.bid_index),
          .f_steps = d.f_steps,
          .ckpt_policy = policies[d.policy_index].name,
      });
    }
    plan.expected = best_expectation;
  }

  plan.optimize_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin).count();
  log_debug("optimize ", app.name, ": ", evaluations, " logical evaluations (",
            plan.stats.evaluations, " performed, ", plan.stats.tuples_pruned,
            " tuples pruned, ", plan.stats.subtrees_pruned, " subtree cuts, ",
            plan.stats.subsets_pruned, " subsets pruned) in ", plan.optimize_seconds,
            "s, expected $", plan.expected.cost_usd);
  return plan;
}

}  // namespace sompi
