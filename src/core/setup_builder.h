// Builds GroupSetup problem instances (T_i, M_i, O_i, R_i, failure model)
// from an application profile and a market history. Shared by the SOMPI
// optimizer and every baseline so they all see the same problem.
#pragma once

#include <vector>

#include "cloud/catalog.h"
#include "core/problem.h"
#include "profile/app_profile.h"
#include "profile/estimator.h"
#include "trace/market.h"

namespace sompi {

/// Which bid grid the failure models are built over.
enum class BidGridKind { kLogarithmic, kUniform };

struct SetupConfig {
  double step_hours = 0.25;
  BidGridKind bid_grid = BidGridKind::kLogarithmic;
  /// Levels of the logarithmic grid (bids per group).
  std::size_t log_levels = 7;
  /// Points of the uniform grid (ablation; the paper's example uses 100).
  std::size_t uniform_points = 16;
  /// Bid-grid ceiling as a multiple of the type's on-demand price. Bidding
  /// above on-demand is economically irrational — on-demand is a guaranteed
  /// alternative at that price — and makes the group a cost-variance bomb
  /// when a spike passes under a historical-maximum bid. The grid top is
  /// min(historical max, on-demand × this factor).
  double max_bid_over_ondemand = 1.0;
  FailureEstimationConfig failure;
};

class SetupBuilder {
 public:
  SetupBuilder(const Catalog* catalog, const ExecTimeEstimator* estimator);

  /// Builds the setup for one circle group from its price history.
  /// The failure-model horizon automatically covers the densest possible
  /// checkpoint schedule (F = 1).
  GroupSetup build(const AppProfile& app, const CircleGroupSpec& spec, const Market& history,
                   const SetupConfig& config) const;

  /// Like build(), but over an explicit bid grid (baselines that fix the bid
  /// by policy — e.g. "the on-demand price" — rather than by search).
  GroupSetup build_with_bids(const AppProfile& app, const CircleGroupSpec& spec,
                             const Market& history, const SetupConfig& config,
                             std::vector<double> bids) const;

  /// Builds setups for every (type, zone) group whose productive runtime
  /// fits within `max_hours` (pass the deadline; infinity keeps all).
  std::vector<GroupSetup> build_candidates(const AppProfile& app, const Market& history,
                                           const SetupConfig& config, double max_hours) const;

  const Catalog& catalog() const { return *catalog_; }
  const ExecTimeEstimator& estimator() const { return *estimator_; }

 private:
  const Catalog* catalog_;
  const ExecTimeEstimator* estimator_;
};

}  // namespace sompi
