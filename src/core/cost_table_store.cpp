#include "core/cost_table_store.h"

#include <limits>

#include "common/error.h"

namespace sompi {

std::size_t GroupArtifact::bytes() const {
  std::size_t n = sizeof(GroupArtifact);
  // The FailureModel's histogram tables dominate the setup: one survival /
  // expected-price row per bid across the horizon.
  n += setup.failure.bid_count() * (setup.failure.horizon() + 2) * sizeof(double);
  n += f_of.capacity() * sizeof(int);
  n += f_guard_max.capacity() * sizeof(int);
  n += fits.capacity() + surv_ok.capacity();
  if (table) n += table->bytes();
  return n;
}

CostTableStore::CostTableStore(Config config) : config_(config) {
  SOMPI_REQUIRE(config_.max_bytes > 0);
}

void CostTableStore::touch_locked(Scope& scope) { scope.touched = ++tick_; }

void CostTableStore::drop_entry_locked(Scope& scope,
                                       std::map<SpecKey, Entry>::iterator it) {
  const std::size_t b = it->second.artifact->bytes();
  scope.bytes -= b;
  total_bytes_ -= b;
  scope.entries.erase(it);
}

void CostTableStore::evict_locked(const std::string& keep) {
  while (total_bytes_ > config_.max_bytes && scopes_.size() > 1) {
    auto victim = scopes_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = scopes_.begin(); it != scopes_.end(); ++it) {
      if (it->first == keep) continue;
      if (it->second.touched < oldest) {
        oldest = it->second.touched;
        victim = it;
      }
    }
    if (victim == scopes_.end()) return;  // only `keep` is left
    total_bytes_ -= victim->second.bytes;
    scopes_.erase(victim);
    ++counters_.evictions;
  }
}

std::shared_ptr<const GroupArtifact> CostTableStore::lookup(const std::string& scope,
                                                            const CircleGroupSpec& spec,
                                                            std::uint64_t version,
                                                            std::uint64_t config_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto sit = scopes_.find(scope);
  if (sit == scopes_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  touch_locked(sit->second);
  const auto it = sit->second.entries.find(SpecKey{spec.type_index, spec.zone_index});
  if (it == sit->second.entries.end()) {
    ++counters_.misses;
    return nullptr;
  }
  if (it->second.config_hash != config_hash || it->second.artifact->version != version) {
    // Stale: the group's history moved (or the solver config changed under
    // the scope). It can never match again — versions of a live scope only
    // move forward — so reclaim the bytes now.
    ++counters_.invalidated;
    drop_entry_locked(sit->second, it);
    return nullptr;
  }
  ++counters_.hits;
  return it->second.artifact;
}

void CostTableStore::store(const std::string& scope, const CircleGroupSpec& spec,
                           std::uint64_t config_hash,
                           std::shared_ptr<const GroupArtifact> artifact) {
  SOMPI_REQUIRE(artifact != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  Scope& s = scopes_[scope];
  touch_locked(s);
  Entry& e = s.entries[SpecKey{spec.type_index, spec.zone_index}];
  if (e.artifact != nullptr) {
    const std::size_t b = e.artifact->bytes();
    s.bytes -= b;
    total_bytes_ -= b;
  }
  e.config_hash = config_hash;
  e.artifact = std::move(artifact);
  const std::size_t b = e.artifact->bytes();
  s.bytes += b;
  total_bytes_ += b;
  evict_locked(scope);
}

std::shared_ptr<const Plan> CostTableStore::last_plan(const std::string& scope) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto sit = scopes_.find(scope);
  return sit == scopes_.end() ? nullptr : sit->second.last_plan;
}

void CostTableStore::note_plan(const std::string& scope, std::shared_ptr<const Plan> plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  Scope& s = scopes_[scope];
  touch_locked(s);
  s.last_plan = std::move(plan);
}

void CostTableStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  scopes_.clear();
  total_bytes_ = 0;
}

CostTableStore::Stats CostTableStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = counters_;
  s.scopes = scopes_.size();
  s.bytes = total_bytes_;
  for (const auto& [name, scope] : scopes_) s.entries += scope.entries.size();
  return s;
}

}  // namespace sompi
