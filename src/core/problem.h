// Problem-instance types shared by the cost model, the optimizers and the
// baselines: one GroupSetup per candidate circle group, one OnDemandChoice
// for the recovery tier, and the per-group decisions (bid, checkpoint
// interval) the optimizer searches over.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cloud/catalog.h"
#include "core/failure_model.h"

namespace sompi {

/// A checkpoint-level policy: which storage hierarchy a group's checkpoints
/// use (DESIGN.md §11). In the cost model a policy acts as a pair of exact
/// multipliers on the group's base overheads — O_i and R_i become per-level
/// quantities O_i·o_scale and R_i·r_scale — so the level choice joins bid
/// price and checkpoint interval as an optimizer decision dimension. The
/// default policy is the paper's flat S3 path with both scales exactly 1.0:
/// multiplying by 1.0 is bit-exact in IEEE arithmetic, so every degenerate
/// evaluation is bit-identical to the pre-multilevel code path.
struct CkptPolicy {
  std::string name = "s3";
  /// Multiplier on O_i: what a checkpoint write costs under this hierarchy.
  double o_scale = 1.0;
  /// Multiplier on R_i (and the redo Ratio): what recovery costs.
  double r_scale = 1.0;

  bool degenerate() const { return o_scale == 1.0 && r_scale == 1.0; }

  /// The paper's flat S3 path — the bit-identity anchor.
  static CkptPolicy single_s3() { return {}; }
  /// Node-local cache + async S3 flush: writes land at cache speed (the
  /// flush overlaps compute), but a whole-group kill recovers from the
  /// possibly-lagging remote copy through the ladder — slightly dearer R.
  static CkptPolicy cache_s3() { return {"cache+s3", 0.45, 1.10}; }
  /// Cache + XOR peer redundancy + async flush: encoding shards costs extra
  /// on the write path, but single-node losses rebuild from peers without
  /// touching remote storage — cheaper R.
  static CkptPolicy cache_xor_s3() { return {"cache+xor+s3", 0.60, 0.90}; }
};

/// Everything fixed about one circle group once the application and the
/// market history are known.
struct GroupSetup {
  CircleGroupSpec spec;
  /// M_i — instances in the group (one rank per core).
  int instances = 0;
  /// T_i — productive execution time of the app in this group, in steps.
  int t_steps = 0;
  /// O_i — per-checkpoint overhead, fractional steps.
  double o_steps = 0.0;
  /// R_i — recovery overhead, fractional steps.
  double r_steps = 0.0;
  /// f_i(P, t) and S_i(P), estimated from this group's price history.
  FailureModel failure;
};

/// The optimizer's per-group decision: which bid level, which checkpoint
/// interval, and which checkpoint-level policy to use. The policy enters the
/// model as exact O/R multipliers; the defaults (1.0, policy 0) reproduce
/// the pre-multilevel two-field decision bit-for-bit, so existing positional
/// initializers `{bid, f}` keep their old meaning.
struct GroupDecision {
  std::size_t bid_index = 0;  ///< into GroupSetup::failure.bids()
  int f_steps = 1;            ///< F_i in [1, T_i]; F_i == T_i disables checkpoints
  double o_scale = 1.0;       ///< CkptPolicy::o_scale of the chosen level policy
  double r_scale = 1.0;       ///< CkptPolicy::r_scale of the chosen level policy
  std::size_t policy_index = 0;  ///< into OptimizerConfig::ckpt_policies
};

/// The selected on-demand recovery tier d* (paper §4.1).
struct OnDemandChoice {
  std::size_t type_index = 0;
  double t_h = 0.0;         ///< T_d — full-application runtime on this tier, hours
  int instances = 0;        ///< M_d
  double rate_usd_h = 0.0;  ///< D_d × M_d — whole-cluster burn rate
  bool feasible = false;    ///< meets Deadline × (1 - Slack)

  /// Cost of running the whole application on demand (Formula 12).
  double full_cost_usd() const { return rate_usd_h * t_h; }
};

}  // namespace sompi
