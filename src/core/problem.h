// Problem-instance types shared by the cost model, the optimizers and the
// baselines: one GroupSetup per candidate circle group, one OnDemandChoice
// for the recovery tier, and the per-group decisions (bid, checkpoint
// interval) the optimizer searches over.
#pragma once

#include <cstddef>
#include <vector>

#include "cloud/catalog.h"
#include "core/failure_model.h"

namespace sompi {

/// Everything fixed about one circle group once the application and the
/// market history are known.
struct GroupSetup {
  CircleGroupSpec spec;
  /// M_i — instances in the group (one rank per core).
  int instances = 0;
  /// T_i — productive execution time of the app in this group, in steps.
  int t_steps = 0;
  /// O_i — per-checkpoint overhead, fractional steps.
  double o_steps = 0.0;
  /// R_i — recovery overhead, fractional steps.
  double r_steps = 0.0;
  /// f_i(P, t) and S_i(P), estimated from this group's price history.
  FailureModel failure;
};

/// The optimizer's per-group decision: which bid level and which checkpoint
/// interval to use.
struct GroupDecision {
  std::size_t bid_index = 0;  ///< into GroupSetup::failure.bids()
  int f_steps = 1;            ///< F_i in [1, T_i]; F_i == T_i disables checkpoints
};

/// The selected on-demand recovery tier d* (paper §4.1).
struct OnDemandChoice {
  std::size_t type_index = 0;
  double t_h = 0.0;         ///< T_d — full-application runtime on this tier, hours
  int instances = 0;        ///< M_d
  double rate_usd_h = 0.0;  ///< D_d × M_d — whole-cluster burn rate
  bool feasible = false;    ///< meets Deadline × (1 - Slack)

  /// Cost of running the whole application on demand (Formula 12).
  double full_cost_usd() const { return rate_usd_h * t_h; }
};

}  // namespace sompi
