// The expected-cost / expected-time model (paper §3.2, Formulas 1–11).
//
// The paper evaluates E[Cost] and E[Time] by summing over the joint failure-
// time vector, which is O(prod T_i). Because group failures are independent
// (§3.1.2) and every term is either additive per group (spot cost), a max
// (spot time, Formula 10) or a min (recovery ratio, Formulas 6/11), the same
// expectations factor into per-group survival curves and can be computed in
// O(K × horizon) — we implement that decomposition, and keep the literal
// joint enumeration as a test oracle (evaluate_joint_exact).
//
// The model operates on a *subset view*: a vector of pointers into the
// optimizer's candidate-group table, so the k-of-K subset search never
// copies failure-model tables.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/problem.h"

namespace sompi {

/// One evaluation of the model at a decision vector.
struct Expectation {
  double cost_usd = 0.0;        ///< E[Cost] (Formula 2)
  double time_h = 0.0;          ///< E[Time] (Formula 8)
  double spot_cost_usd = 0.0;   ///< E[Cost^s] (Formula 5)
  double od_cost_usd = 0.0;     ///< E[Cost^od] (Formula 6/16)
  double spot_time_h = 0.0;     ///< E[Time^s] (Formula 10)
  double od_time_h = 0.0;       ///< E[Time^od] (Formula 11/17)
  double p_complete_on_spot = 0.0;  ///< P[some circle group finishes]
  double e_min_ratio = 0.0;     ///< E[min_i Ratio(t_i, F_i)]
};

class CostModel {
 public:
  struct Config {
    /// Length of one model step, hours (the trace step).
    double step_hours = 0.25;
    /// Resolution of the min-Ratio integration grid.
    std::size_t ratio_bins = 200;
  };

  /// The group pointers are borrowed; the pointees must outlive the model.
  /// Every group's failure-model horizon must cover its longest possible
  /// wall duration.
  CostModel(std::vector<const GroupSetup*> groups, const OnDemandChoice& od, Config config);

  std::size_t group_count() const { return groups_.size(); }
  const GroupSetup& group(std::size_t i) const { return *groups_.at(i); }
  const OnDemandChoice& od() const { return od_; }
  const Config& config() const { return config_; }

  /// Evaluates E[Cost], E[Time] and components for one decision per group
  /// (decisions.size() must equal the group count). O(K × horizon).
  /// Reuses internal scratch buffers: not thread-safe.
  Expectation evaluate(const std::vector<GroupDecision>& decisions) const;

  /// Literal sum over the joint failure-time grid (Formula 2/8). Exponential
  /// in the group count — use only as a test oracle on small instances.
  Expectation evaluate_joint_exact(const std::vector<GroupDecision>& decisions) const;

 private:
  std::vector<const GroupSetup*> groups_;
  OnDemandChoice od_;
  Config config_;
  // Scratch buffers reused across evaluate() calls (single-threaded use).
  mutable std::vector<double> min_ratio_ccdf_;
  mutable std::vector<double> ratio_bucket_;
  mutable std::vector<double> max_life_cdf_;
  mutable std::vector<double> walls_;
};

// ---------------------------------------------------------------------------
// Optimizer fast path (DESIGN.md "Optimizer fast path").
//
// CostModel::evaluate rebuilds every per-group lifetime CDF and Ratio-tail
// vector from scratch on each decision vector — O(k·(wall + ratio_bins))
// redundant work per tuple, the dominant cost of the Level-2 bid-tuple
// enumeration. Because the checkpoint interval is tied to the bid
// (F_i = φ_i(P_i), §4.2.2), every tuple-independent term depends only on the
// (group, bid) pair: CostTables hoists them all into SoA tables built once
// per optimizer run, and SubsetEvaluator folds the precomputed vectors with
// per-prefix cached state so a tuple whose digits changed from index c
// onward costs O((k−c)·(wall + ratio_bins)) — O(wall + ratio_bins) for the
// common last-digit step — instead of a full rebuild.
//
// Bit-identity contract: SubsetEvaluator::evaluate performs exactly the same
// floating-point operations, in exactly the same order, as
// CostModel::evaluate at the same decisions (the factor vectors are
// precomputed but each was produced by the identical expression, and the
// prefix cache only memoizes the left-to-right fold the naive code performs
// anyway). Differential tests assert 0-ULP agreement on every Expectation
// field (tests/test_cost_model_fast.cpp).
// ---------------------------------------------------------------------------

/// One enumerable choice of a group: a bid level plus its tied checkpoint
/// interval plus the checkpoint-level policy's exact O/R multipliers. The
/// degenerate choice (scales 1.0, policy 0) is the pre-multilevel (bid, F)
/// pair — CostTables built from it are bit-identical to the bid-only tables.
struct ChoiceSpec {
  std::size_t bid_index = 0;
  int f_steps = 1;
  double o_scale = 1.0;
  double r_scale = 1.0;
  std::size_t policy_index = 0;
};

/// The immutable per-group block of precomputed (choice → kernel) tables:
/// every value depends only on (group setup, that group's choice list, od,
/// config), never on the other groups, so a block built for one solve can be
/// reused bit-identically by any later solve whose group inputs are
/// unchanged — the unit the warm-start CostTableStore caches. Non-copyable
/// and held by shared_ptr: cell pointers into the pools stay valid for the
/// block's lifetime and the block is safe to share across solver threads.
class GroupCostTable {
 public:
  struct Cell {
    double wall = 0.0;                 ///< W(F) in fractional steps
    std::size_t w_ceil = 0;            ///< ceil(W)
    int f_steps = 1;                   ///< the tied interval φ(P)
    double spot_term = 0.0;            ///< S·M·E[min(fp, W)]·h (Formula 5)
    double one_minus_complete = 1.0;   ///< 1 − P[group finishes on spot]
    const double* life = nullptr;      ///< lifetime factors, w_ceil entries
    const double* tail = nullptr;      ///< Ratio tails, ratio_bins entries
    ChoiceSpec choice;                 ///< the decoded decision of this cell
  };

  /// `choices` enumerates the group's (bid, F, policy) choices in
  /// enumeration order.
  GroupCostTable(const GroupSetup& group, const OnDemandChoice& od,
                 CostModel::Config config, const std::vector<ChoiceSpec>& choices);
  GroupCostTable(const GroupCostTable&) = delete;
  GroupCostTable& operator=(const GroupCostTable&) = delete;

  std::size_t choice_count() const { return cells_.size(); }
  const Cell& cell(std::size_t c) const { return cells_[c]; }
  double min_spot_term() const { return min_spot_term_; }
  const double* min_ratio_tail() const { return min_tail_.data(); }
  std::size_t max_w_ceil() const { return max_w_ceil_; }
  std::size_t ratio_bins() const { return ratio_bins_; }
  /// Resident size of the block, for the store's byte-cap accounting.
  std::size_t bytes() const {
    return sizeof(GroupCostTable) + cells_.size() * sizeof(Cell) +
           (life_pool_.size() + tail_pool_.size() + min_tail_.size()) * sizeof(double);
  }

 private:
  std::size_t ratio_bins_ = 0;
  std::vector<Cell> cells_;
  std::vector<double> life_pool_;
  std::vector<double> tail_pool_;
  double min_spot_term_ = 0.0;
  std::vector<double> min_tail_;
  std::size_t max_w_ceil_ = 0;
};

/// Per-(group, choice) precomputed kernels over a candidate-group list,
/// where a choice is a (bid, tied interval, level policy) triple — the
/// bid-only construction is the degenerate single-policy case. Composes one
/// GroupCostTable block per group (built here, or reused from a
/// CostTableStore via the block-composing constructor). Groups are
/// borrowed; the pointees must outlive the tables. Read-only after
/// construction and therefore safe to share across optimizer threads.
class CostTables {
 public:
  using Cell = GroupCostTable::Cell;

  /// Generalized form: choices[g] enumerates the (bid, F, policy) choices of
  /// group g, in enumeration order.
  CostTables(const std::vector<GroupSetup>& groups, const OnDemandChoice& od,
             CostModel::Config config,
             const std::vector<std::vector<ChoiceSpec>>& choices);

  /// Bid-only convenience (the pre-multilevel surface): one choice per bid
  /// with the interval tied via f_of[g][b] and degenerate scales.
  CostTables(const std::vector<GroupSetup>& groups, const OnDemandChoice& od,
             CostModel::Config config, const std::vector<std::vector<int>>& f_of);

  /// Warm path: composes pre-built per-group blocks (one per group, each
  /// built from the identical (setup, choices, od, config) inputs) without
  /// recomputing anything — the composed tables are bit-identical to a
  /// fresh build because blocks carry no cross-group state.
  CostTables(const std::vector<GroupSetup>& groups, const OnDemandChoice& od,
             CostModel::Config config,
             std::vector<std::shared_ptr<const GroupCostTable>> blocks);

  std::size_t group_count() const { return groups_->size(); }
  /// Enumerable choices of group g (== bid count in the degenerate case).
  std::size_t choice_count(std::size_t g) const { return blocks_[g]->choice_count(); }
  std::size_t bid_count(std::size_t g) const;
  const GroupSetup& group(std::size_t g) const { return (*groups_)[g]; }
  const OnDemandChoice& od() const { return od_; }
  const CostModel::Config& config() const { return config_; }

  const Cell& cell(std::size_t g, std::size_t b) const {
    return blocks_[g]->cell(b);
  }
  /// P[lifetime ≤ t+1] factors for t in [0, w_ceil) — the multiplicands of
  /// the cross-group max-lifetime CDF product (Formula 10).
  const double* life_factors(const Cell& c) const { return c.life; }
  /// P[Ratio > r_j] per integration bin — the multiplicands of the
  /// min-Ratio complementary-CDF product (Formulas 6/7/11).
  const double* ratio_tail(const Cell& c) const { return c.tail; }

  /// min over the group's bids of spot_term — the admissible per-group
  /// spot-cost marginal used by the branch-and-bound lower bounds.
  double min_spot_term(std::size_t g) const { return blocks_[g]->min_spot_term(); }
  /// Per-bin min over the group's bids of ratio_tail — lower-bounds the
  /// group's factor in the min-Ratio product for any bid choice.
  const double* min_ratio_tail(std::size_t g) const {
    return blocks_[g]->min_ratio_tail();
  }
  /// max over the group's bids of w_ceil (sizes the common lifetime grid).
  std::size_t max_w_ceil(std::size_t g) const { return blocks_[g]->max_w_ceil(); }

  /// Group g's block, shareable with a CostTableStore (and future solves).
  const std::shared_ptr<const GroupCostTable>& block(std::size_t g) const {
    return blocks_[g];
  }

 private:
  const std::vector<GroupSetup>* groups_;
  OnDemandChoice od_;
  CostModel::Config config_;
  std::vector<std::shared_ptr<const GroupCostTable>> blocks_;
};

/// Incremental evaluator for one k-of-K subset: caches the left-to-right
/// fold state after every group position so that re-evaluating a tuple whose
/// digits changed only from index c re-runs the fold from level c, not from
/// scratch — bit-identical to CostModel::evaluate by construction (see the
/// contract above). Not thread-safe; one instance per subset search.
class SubsetEvaluator {
 public:
  /// `members` indexes into the tables' candidate list, in subset order.
  SubsetEvaluator(const CostTables& tables, std::vector<std::size_t> members);

  std::size_t size() const { return members_.size(); }

  /// Declares that digits at positions >= level changed since the last
  /// evaluate() call; cached fold levels above it are invalidated.
  void note_change(std::size_t level) { valid_ = std::min(valid_, level); }

  /// Evaluates the tuple (bid per member, interval tied via the tables'
  /// f_of). Resumes the fold at the lowest invalidated level. The returned
  /// reference is into internal scratch, valid until the next call.
  const Expectation& evaluate(const std::vector<std::size_t>& bids);

  /// Rigorous lower bound on evaluate(b').cost_usd for ANY tuple b' agreeing
  /// with `bids` on positions [0, level]: the exact spot-term prefix folded
  /// with each remaining group's min spot term (in group order), plus the
  /// subset's on-demand floor. Because every term is non-negative, term-wise
  /// ≤ the real terms, and IEEE rounding is monotone, the bound never
  /// exceeds the cost evaluate() actually computes — pruning on it can only
  /// discard provably-worse tuples (admissibility proof sketch in DESIGN.md
  /// "Optimizer fast path"). O(k) scalar work.
  double cost_lower_bound(const std::vector<std::size_t>& bids, std::size_t level) const;

  /// Rigorous lower bound on the cost of every tuple of this subset: min
  /// spot terms plus the irreducible on-demand floor (min-Ratio tails folded
  /// from the per-group bid minima). Computed once at construction.
  double subset_cost_bound() const { return subset_bound_; }

 private:
  const CostTables* tables_;
  std::vector<std::size_t> members_;
  std::size_t grid_len_ = 0;   ///< common lifetime-grid length
  std::size_t valid_ = 0;      ///< fold levels [0, valid_] are current
  // Level-indexed fold state: level i holds the accumulators after folding
  // members [0, i). Vectors are flattened (level-major).
  std::vector<double> life_state_;   ///< (k+1) × grid_len_
  std::vector<double> ratio_state_;  ///< (k+1) × ratio_bins
  std::vector<double> spot_sum_;     ///< (k+1)
  std::vector<double> all_fail_;     ///< (k+1)
  double od_floor_ = 0.0;      ///< on-demand floor from per-group min tails
  double subset_bound_ = 0.0;
  Expectation scratch_;
};

}  // namespace sompi
