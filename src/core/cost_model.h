// The expected-cost / expected-time model (paper §3.2, Formulas 1–11).
//
// The paper evaluates E[Cost] and E[Time] by summing over the joint failure-
// time vector, which is O(prod T_i). Because group failures are independent
// (§3.1.2) and every term is either additive per group (spot cost), a max
// (spot time, Formula 10) or a min (recovery ratio, Formulas 6/11), the same
// expectations factor into per-group survival curves and can be computed in
// O(K × horizon) — we implement that decomposition, and keep the literal
// joint enumeration as a test oracle (evaluate_joint_exact).
//
// The model operates on a *subset view*: a vector of pointers into the
// optimizer's candidate-group table, so the k-of-K subset search never
// copies failure-model tables.
#pragma once

#include <cstddef>
#include <vector>

#include "core/problem.h"

namespace sompi {

/// One evaluation of the model at a decision vector.
struct Expectation {
  double cost_usd = 0.0;        ///< E[Cost] (Formula 2)
  double time_h = 0.0;          ///< E[Time] (Formula 8)
  double spot_cost_usd = 0.0;   ///< E[Cost^s] (Formula 5)
  double od_cost_usd = 0.0;     ///< E[Cost^od] (Formula 6/16)
  double spot_time_h = 0.0;     ///< E[Time^s] (Formula 10)
  double od_time_h = 0.0;       ///< E[Time^od] (Formula 11/17)
  double p_complete_on_spot = 0.0;  ///< P[some circle group finishes]
  double e_min_ratio = 0.0;     ///< E[min_i Ratio(t_i, F_i)]
};

class CostModel {
 public:
  struct Config {
    /// Length of one model step, hours (the trace step).
    double step_hours = 0.25;
    /// Resolution of the min-Ratio integration grid.
    std::size_t ratio_bins = 200;
  };

  /// The group pointers are borrowed; the pointees must outlive the model.
  /// Every group's failure-model horizon must cover its longest possible
  /// wall duration.
  CostModel(std::vector<const GroupSetup*> groups, const OnDemandChoice& od, Config config);

  std::size_t group_count() const { return groups_.size(); }
  const GroupSetup& group(std::size_t i) const { return *groups_.at(i); }
  const OnDemandChoice& od() const { return od_; }
  const Config& config() const { return config_; }

  /// Evaluates E[Cost], E[Time] and components for one decision per group
  /// (decisions.size() must equal the group count). O(K × horizon).
  /// Reuses internal scratch buffers: not thread-safe.
  Expectation evaluate(const std::vector<GroupDecision>& decisions) const;

  /// Literal sum over the joint failure-time grid (Formula 2/8). Exponential
  /// in the group count — use only as a test oracle on small instances.
  Expectation evaluate_joint_exact(const std::vector<GroupDecision>& decisions) const;

 private:
  std::vector<const GroupSetup*> groups_;
  OnDemandChoice od_;
  Config config_;
  // Scratch buffers reused across evaluate() calls (single-threaded use).
  mutable std::vector<double> min_ratio_ccdf_;
  mutable std::vector<double> ratio_bucket_;
  mutable std::vector<double> max_life_cdf_;
  mutable std::vector<double> walls_;
};

}  // namespace sompi
