// Checkpoint-cycle arithmetic for one circle group.
//
// Time is discretized to trace steps (the paper floors failure times to
// integers, §3.2.1). A group needs T productive steps; with a checkpoint
// interval of F steps and a per-checkpoint overhead of O steps (fractional —
// checkpoints are much shorter than a step), the wall-clock layout is
//
//   [F productive][O dump][F productive][O dump] ... [tail productive]
//
// checkpoint j completes at wall time j*(F+O). No checkpoint is taken at the
// very end of the run, so a full run takes W = T + O*(ceil(T/F)-1) wall steps.
#pragma once

#include "common/error.h"

namespace sompi {

class GroupSchedule {
 public:
  /// Requires T >= 1 productive steps, F in [1, T], O >= 0, R >= 0
  /// (checkpoint and recovery overheads in fractional steps). F == T means
  /// "no checkpoints" (the paper's convention, §3.2).
  GroupSchedule(int t_steps, int f_steps, double o_steps, double r_steps);

  int t_steps() const { return t_; }
  int f_steps() const { return f_; }
  double o_steps() const { return o_; }
  double r_steps() const { return r_; }

  /// Checkpoints taken during a complete run.
  int checkpoints_full_run() const;

  /// Wall-clock duration of a complete run, in (fractional) steps.
  double wall_duration() const;

  /// Checkpoints completed by wall time `t` (capped at the full-run count).
  int checkpoints_by(double t) const;

  /// Productive steps durably saved by wall time `t` (k checkpoints save
  /// k*F steps, capped at T).
  int saved_by(double t) const;

  /// Productive steps actually executed by wall time `t` (saved progress
  /// plus work in the current, not-yet-checkpointed cycle). Used by the
  /// replay simulator.
  double progress_by(double t) const;

  /// The paper's Ratio(t, F) (Formula 7): fraction of the application that
  /// must be redone on on-demand instances if this group dies at wall time
  /// `t`, including the recovery overhead R; 0 when the group completed
  /// (t >= wall_duration()). Clamped to [0, 1].
  double ratio_at(double t) const;

 private:
  int t_;
  int f_;
  double o_;
  double r_;
};

}  // namespace sompi
