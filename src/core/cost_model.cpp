#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "core/schedule.h"

namespace sompi {

CostModel::CostModel(std::vector<const GroupSetup*> groups, const OnDemandChoice& od,
                     Config config)
    : groups_(std::move(groups)), od_(od), config_(config) {
  SOMPI_REQUIRE(!groups_.empty());
  for (const auto* g : groups_) SOMPI_REQUIRE(g != nullptr);
  SOMPI_REQUIRE(config_.step_hours > 0.0);
  SOMPI_REQUIRE(config_.ratio_bins >= 8);
  SOMPI_REQUIRE(od_.t_h > 0.0 && od_.rate_usd_h > 0.0);
}

Expectation CostModel::evaluate(const std::vector<GroupDecision>& decisions) const {
  SOMPI_REQUIRE(decisions.size() == groups_.size());
  const std::size_t k = groups_.size();
  const std::size_t bins = config_.ratio_bins;

  Expectation e;

  // min-Ratio integration grid: P[min_i Ratio_i > r] at bin midpoints
  // r_j = (j + 0.5) / bins, accumulated multiplicatively across groups.
  min_ratio_ccdf_.assign(bins, 1.0);

  // Wall durations first, to size the common lifetime grid (Formula 10).
  walls_.resize(k);
  std::size_t max_wall = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto& g = *groups_[i];
    const GroupSchedule sched(g.t_steps, decisions[i].f_steps, g.o_steps, g.r_steps);
    walls_[i] = sched.wall_duration();
    SOMPI_REQUIRE_MSG(walls_[i] <= static_cast<double>(g.failure.horizon()),
                      "failure-model horizon too short for group wall duration");
    max_wall = std::max(max_wall, static_cast<std::size_t>(std::ceil(walls_[i])));
  }
  // P[max lifetime <= t] accumulates as a product over groups.
  max_life_cdf_.assign(max_wall, 1.0);

  double p_all_fail = 1.0;

  for (std::size_t i = 0; i < k; ++i) {
    const auto& g = *groups_[i];
    const auto& d = decisions[i];
    const GroupSchedule sched(g.t_steps, d.f_steps, g.o_steps, g.r_steps);
    const double w = walls_[i];
    const auto b = d.bid_index;

    // --- Spot cost (Formula 5): S_i × M_i × E[lifetime]. ---
    const double s_price = g.failure.expected_price(b);
    const double e_life = g.failure.expected_lifetime(b, w);
    e.spot_cost_usd += s_price * g.instances * e_life * config_.step_hours;

    const double p_complete = g.failure.survival_at(b, w);
    p_all_fail *= (1.0 - p_complete);

    // --- Lifetime CDF on the common grid (Formula 10 via product). ---
    // lifetime = min(first-passage, w); P[lifetime <= t] for integer t is
    // 1 - P[fp >= t+1] below w and 1 at or above w.
    const auto w_ceil = static_cast<std::size_t>(std::ceil(w));
    for (std::size_t t = 0; t < std::min(w_ceil, max_wall); ++t)
      max_life_cdf_[t] *= 1.0 - g.failure.survival(b, t + 1);

    // --- Ratio complementary CDF (Formulas 6/7/11 via product). ---
    // Failure at step t is an atom of pmf(t) at ratio_at(t). An atom at v
    // raises P[Ratio > r] for midpoints r_j < v, i.e. bins j < v·bins − 0.5;
    // bucket the atom at its top bin and suffix-sum once.
    ratio_bucket_.assign(bins, 0.0);
    for (std::size_t t = 0; t < w_ceil; ++t) {
      const double p = g.failure.pmf(b, t);
      if (p <= 0.0) continue;
      const double v = sched.ratio_at(static_cast<double>(t));
      const auto j_top = static_cast<std::ptrdiff_t>(
          std::ceil(v * static_cast<double>(bins) - 0.5));
      if (j_top >= 1)
        ratio_bucket_[static_cast<std::size_t>(
            std::min<std::ptrdiff_t>(j_top, static_cast<std::ptrdiff_t>(bins)) - 1)] += p;
    }
    double suffix = 0.0;
    for (std::size_t j = bins; j-- > 0;) {
      suffix += ratio_bucket_[j];
      min_ratio_ccdf_[j] *= suffix;
    }
  }

  // E[max lifetime] = Σ_t (1 − P[max <= t]); exact for integer lifetimes,
  // a ≤ 1-step overestimate for the fractional completion atom at W_i.
  double e_max_life = 0.0;
  for (std::size_t t = 0; t < max_wall; ++t) e_max_life += 1.0 - max_life_cdf_[t];
  e.spot_time_h = e_max_life * config_.step_hours;

  // E[min Ratio] = ∫ P[min > r] dr over [0, 1], midpoint rule.
  double e_min_ratio = 0.0;
  for (std::size_t j = 0; j < bins; ++j) e_min_ratio += min_ratio_ccdf_[j];
  e_min_ratio /= static_cast<double>(bins);

  e.e_min_ratio = e_min_ratio;
  e.p_complete_on_spot = 1.0 - p_all_fail;
  e.od_cost_usd = od_.rate_usd_h * od_.t_h * e_min_ratio;   // Formula 16
  e.od_time_h = od_.t_h * e_min_ratio;                      // Formula 17
  e.cost_usd = e.spot_cost_usd + e.od_cost_usd;             // Formula 4
  e.time_h = e.spot_time_h + e.od_time_h;                   // Formula 9
  return e;
}

Expectation CostModel::evaluate_joint_exact(const std::vector<GroupDecision>& decisions) const {
  SOMPI_REQUIRE(decisions.size() == groups_.size());
  const std::size_t k = groups_.size();

  std::vector<GroupSchedule> scheds;
  std::vector<std::size_t> outcomes(k);  // wall_ceil failure slots + completion
  scheds.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto& g = *groups_[i];
    scheds.emplace_back(g.t_steps, decisions[i].f_steps, g.o_steps, g.r_steps);
    outcomes[i] = static_cast<std::size_t>(std::ceil(scheds[i].wall_duration())) + 1;
  }

  Expectation e;
  std::vector<std::size_t> t(k, 0);  // outcome index per group; last = completion
  double p_all_fail_acc = 0.0;
  for (;;) {
    double p = 1.0;
    double max_life = 0.0;
    double min_ratio = 1.0;
    bool any_complete = false;
    double spot_cost = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const auto& g = *groups_[i];
      const auto b = decisions[i].bid_index;
      const double w = scheds[i].wall_duration();
      const bool complete = (t[i] + 1 == outcomes[i]);
      double life;
      double ratio;
      if (complete) {
        p *= g.failure.survival_at(b, w);
        life = w;
        ratio = 0.0;
        any_complete = true;
      } else {
        p *= g.failure.pmf(b, t[i]);
        life = static_cast<double>(t[i]);
        ratio = scheds[i].ratio_at(life);
      }
      spot_cost += g.failure.expected_price(b) * g.instances * life * config_.step_hours;
      max_life = std::max(max_life, life);
      min_ratio = std::min(min_ratio, ratio);
    }
    if (p > 0.0) {
      e.spot_cost_usd += p * spot_cost;
      e.spot_time_h += p * max_life * config_.step_hours;
      e.od_cost_usd += p * od_.rate_usd_h * od_.t_h * min_ratio;
      e.od_time_h += p * od_.t_h * min_ratio;
      e.e_min_ratio += p * min_ratio;
      if (!any_complete) p_all_fail_acc += p;
    }

    // Advance the mixed-radix counter over joint outcomes.
    std::size_t i = 0;
    while (i < k && ++t[i] == outcomes[i]) t[i++] = 0;
    if (i == k) break;
  }

  e.p_complete_on_spot = 1.0 - p_all_fail_acc;
  e.cost_usd = e.spot_cost_usd + e.od_cost_usd;
  e.time_h = e.spot_time_h + e.od_time_h;
  return e;
}

}  // namespace sompi
