#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/error.h"
#include "core/schedule.h"

namespace sompi {

CostModel::CostModel(std::vector<const GroupSetup*> groups, const OnDemandChoice& od,
                     Config config)
    : groups_(std::move(groups)), od_(od), config_(config) {
  SOMPI_REQUIRE(!groups_.empty());
  for (const auto* g : groups_) SOMPI_REQUIRE(g != nullptr);
  SOMPI_REQUIRE(config_.step_hours > 0.0);
  SOMPI_REQUIRE(config_.ratio_bins >= 8);
  SOMPI_REQUIRE(od_.t_h > 0.0 && od_.rate_usd_h > 0.0);
}

Expectation CostModel::evaluate(const std::vector<GroupDecision>& decisions) const {
  SOMPI_REQUIRE(decisions.size() == groups_.size());
  const std::size_t k = groups_.size();
  const std::size_t bins = config_.ratio_bins;

  Expectation e;

  // min-Ratio integration grid: P[min_i Ratio_i > r] at bin midpoints
  // r_j = (j + 0.5) / bins, accumulated multiplicatively across groups.
  min_ratio_ccdf_.assign(bins, 1.0);

  // Wall durations first, to size the common lifetime grid (Formula 10).
  walls_.resize(k);
  std::size_t max_wall = 0;
  // The decision's level-policy scales multiply O_i/R_i; the degenerate
  // scales are exactly 1.0 and IEEE multiplication by 1.0 is exact, so the
  // pre-multilevel decisions take a bit-identical path through here.
  for (std::size_t i = 0; i < k; ++i) {
    const auto& g = *groups_[i];
    const GroupSchedule sched(g.t_steps, decisions[i].f_steps,
                              g.o_steps * decisions[i].o_scale,
                              g.r_steps * decisions[i].r_scale);
    walls_[i] = sched.wall_duration();
    SOMPI_REQUIRE_MSG(walls_[i] <= static_cast<double>(g.failure.horizon()),
                      "failure-model horizon too short for group wall duration");
    max_wall = std::max(max_wall, static_cast<std::size_t>(std::ceil(walls_[i])));
  }
  // P[max lifetime <= t] accumulates as a product over groups.
  max_life_cdf_.assign(max_wall, 1.0);

  double p_all_fail = 1.0;

  for (std::size_t i = 0; i < k; ++i) {
    const auto& g = *groups_[i];
    const auto& d = decisions[i];
    const GroupSchedule sched(g.t_steps, d.f_steps, g.o_steps * d.o_scale,
                              g.r_steps * d.r_scale);
    const double w = walls_[i];
    const auto b = d.bid_index;

    // --- Spot cost (Formula 5): S_i × M_i × E[lifetime]. ---
    const double s_price = g.failure.expected_price(b);
    const double e_life = g.failure.expected_lifetime(b, w);
    e.spot_cost_usd += s_price * g.instances * e_life * config_.step_hours;

    const double p_complete = g.failure.survival_at(b, w);
    p_all_fail *= (1.0 - p_complete);

    // --- Lifetime CDF on the common grid (Formula 10 via product). ---
    // lifetime = min(first-passage, w); P[lifetime <= t] for integer t is
    // 1 - P[fp >= t+1] below w and 1 at or above w.
    const auto w_ceil = static_cast<std::size_t>(std::ceil(w));
    for (std::size_t t = 0; t < std::min(w_ceil, max_wall); ++t)
      max_life_cdf_[t] *= 1.0 - g.failure.survival(b, t + 1);

    // --- Ratio complementary CDF (Formulas 6/7/11 via product). ---
    // Failure at step t is an atom of pmf(t) at ratio_at(t). An atom at v
    // raises P[Ratio > r] for midpoints r_j < v, i.e. bins j < v·bins − 0.5;
    // bucket the atom at its top bin and suffix-sum once.
    ratio_bucket_.assign(bins, 0.0);
    for (std::size_t t = 0; t < w_ceil; ++t) {
      const double p = g.failure.pmf(b, t);
      if (p <= 0.0) continue;
      const double v = sched.ratio_at(static_cast<double>(t));
      const auto j_top = static_cast<std::ptrdiff_t>(
          std::ceil(v * static_cast<double>(bins) - 0.5));
      if (j_top >= 1)
        ratio_bucket_[static_cast<std::size_t>(
            std::min<std::ptrdiff_t>(j_top, static_cast<std::ptrdiff_t>(bins)) - 1)] += p;
    }
    double suffix = 0.0;
    for (std::size_t j = bins; j-- > 0;) {
      suffix += ratio_bucket_[j];
      min_ratio_ccdf_[j] *= suffix;
    }
  }

  // E[max lifetime] = Σ_t (1 − P[max <= t]); exact for integer lifetimes,
  // a ≤ 1-step overestimate for the fractional completion atom at W_i.
  double e_max_life = 0.0;
  for (std::size_t t = 0; t < max_wall; ++t) e_max_life += 1.0 - max_life_cdf_[t];
  e.spot_time_h = e_max_life * config_.step_hours;

  // E[min Ratio] = ∫ P[min > r] dr over [0, 1], midpoint rule.
  double e_min_ratio = 0.0;
  for (std::size_t j = 0; j < bins; ++j) e_min_ratio += min_ratio_ccdf_[j];
  e_min_ratio /= static_cast<double>(bins);

  e.e_min_ratio = e_min_ratio;
  e.p_complete_on_spot = 1.0 - p_all_fail;
  e.od_cost_usd = od_.rate_usd_h * od_.t_h * e_min_ratio;   // Formula 16
  e.od_time_h = od_.t_h * e_min_ratio;                      // Formula 17
  e.cost_usd = e.spot_cost_usd + e.od_cost_usd;             // Formula 4
  e.time_h = e.spot_time_h + e.od_time_h;                   // Formula 9
  return e;
}

Expectation CostModel::evaluate_joint_exact(const std::vector<GroupDecision>& decisions) const {
  SOMPI_REQUIRE(decisions.size() == groups_.size());
  const std::size_t k = groups_.size();

  std::vector<GroupSchedule> scheds;
  std::vector<std::size_t> outcomes(k);  // wall_ceil failure slots + completion
  scheds.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto& g = *groups_[i];
    scheds.emplace_back(g.t_steps, decisions[i].f_steps, g.o_steps * decisions[i].o_scale,
                        g.r_steps * decisions[i].r_scale);
    outcomes[i] = static_cast<std::size_t>(std::ceil(scheds[i].wall_duration())) + 1;
  }

  Expectation e;
  std::vector<std::size_t> t(k, 0);  // outcome index per group; last = completion
  double p_all_fail_acc = 0.0;
  for (;;) {
    double p = 1.0;
    double max_life = 0.0;
    double min_ratio = 1.0;
    bool any_complete = false;
    double spot_cost = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const auto& g = *groups_[i];
      const auto b = decisions[i].bid_index;
      const double w = scheds[i].wall_duration();
      const bool complete = (t[i] + 1 == outcomes[i]);
      double life;
      double ratio;
      if (complete) {
        p *= g.failure.survival_at(b, w);
        life = w;
        ratio = 0.0;
        any_complete = true;
      } else {
        p *= g.failure.pmf(b, t[i]);
        life = static_cast<double>(t[i]);
        ratio = scheds[i].ratio_at(life);
      }
      spot_cost += g.failure.expected_price(b) * g.instances * life * config_.step_hours;
      max_life = std::max(max_life, life);
      min_ratio = std::min(min_ratio, ratio);
    }
    if (p > 0.0) {
      e.spot_cost_usd += p * spot_cost;
      e.spot_time_h += p * max_life * config_.step_hours;
      e.od_cost_usd += p * od_.rate_usd_h * od_.t_h * min_ratio;
      e.od_time_h += p * od_.t_h * min_ratio;
      e.e_min_ratio += p * min_ratio;
      if (!any_complete) p_all_fail_acc += p;
    }

    // Advance the mixed-radix counter over joint outcomes.
    std::size_t i = 0;
    while (i < k && ++t[i] == outcomes[i]) t[i++] = 0;
    if (i == k) break;
  }

  e.p_complete_on_spot = 1.0 - p_all_fail_acc;
  e.cost_usd = e.spot_cost_usd + e.od_cost_usd;
  e.time_h = e.spot_time_h + e.od_time_h;
  return e;
}

// ---------------------------------------------------------------------------
// CostTables: every expression below is copied verbatim from
// CostModel::evaluate so the precomputed factors carry the exact bits the
// naive evaluator would produce in place.
// ---------------------------------------------------------------------------

CostTables::CostTables(const std::vector<GroupSetup>& groups, const OnDemandChoice& od,
                       CostModel::Config config, const std::vector<std::vector<int>>& f_of)
    : CostTables(groups, od, config, [&] {
        // Degenerate lowering: one choice per bid, scales exactly 1.0 — the
        // generic constructor then performs the identical operations in the
        // identical order as the pre-multilevel bid-only build.
        std::vector<std::vector<ChoiceSpec>> choices(f_of.size());
        for (std::size_t g = 0; g < f_of.size(); ++g) {
          choices[g].resize(f_of[g].size());
          for (std::size_t b = 0; b < f_of[g].size(); ++b) {
            choices[g][b].bid_index = b;
            choices[g][b].f_steps = f_of[g][b];
          }
        }
        return choices;
      }()) {
  for (std::size_t g = 0; g < groups.size(); ++g)
    SOMPI_REQUIRE(f_of[g].size() == groups[g].failure.bid_count());
}

GroupCostTable::GroupCostTable(const GroupSetup& grp, const OnDemandChoice& od,
                               CostModel::Config config,
                               const std::vector<ChoiceSpec>& choices)
    : ratio_bins_(config.ratio_bins) {
  SOMPI_REQUIRE(!choices.empty());
  SOMPI_REQUIRE(config.step_hours > 0.0);
  SOMPI_REQUIRE(config.ratio_bins >= 8);
  SOMPI_REQUIRE(od.t_h > 0.0 && od.rate_usd_h > 0.0);

  const std::size_t bins = config.ratio_bins;
  min_tail_.assign(bins, std::numeric_limits<double>::infinity());
  cells_.resize(choices.size());
  // Pool offsets are recorded locally and resolved to pointers only after
  // both pools stop growing, so every Cell::life/tail stays valid.
  std::vector<std::size_t> life_off(choices.size());
  std::vector<std::size_t> tail_off(choices.size());

  std::vector<double> bucket(bins);
  double min_spot = std::numeric_limits<double>::infinity();
  for (std::size_t ci = 0; ci < choices.size(); ++ci) {
    Cell& c = cells_[ci];
    c.choice = choices[ci];
    const std::size_t b = c.choice.bid_index;
    SOMPI_REQUIRE(b < grp.failure.bid_count());
    c.f_steps = c.choice.f_steps;
    const GroupSchedule sched(grp.t_steps, c.f_steps, grp.o_steps * c.choice.o_scale,
                              grp.r_steps * c.choice.r_scale);
    const double w = sched.wall_duration();
    SOMPI_REQUIRE_MSG(w <= static_cast<double>(grp.failure.horizon()),
                      "failure-model horizon too short for group wall duration");
    c.wall = w;
    c.w_ceil = static_cast<std::size_t>(std::ceil(w));
    max_w_ceil_ = std::max(max_w_ceil_, c.w_ceil);

    const double s_price = grp.failure.expected_price(b);
    const double e_life = grp.failure.expected_lifetime(b, w);
    c.spot_term = s_price * grp.instances * e_life * config.step_hours;
    min_spot = std::min(min_spot, c.spot_term);

    c.one_minus_complete = 1.0 - grp.failure.survival_at(b, w);

    life_off[ci] = life_pool_.size();
    for (std::size_t t = 0; t < c.w_ceil; ++t)
      life_pool_.push_back(1.0 - grp.failure.survival(b, t + 1));

    std::fill(bucket.begin(), bucket.end(), 0.0);
    for (std::size_t t = 0; t < c.w_ceil; ++t) {
      const double p = grp.failure.pmf(b, t);
      if (p <= 0.0) continue;
      const double v = sched.ratio_at(static_cast<double>(t));
      const auto j_top = static_cast<std::ptrdiff_t>(
          std::ceil(v * static_cast<double>(bins) - 0.5));
      if (j_top >= 1)
        bucket[static_cast<std::size_t>(
            std::min<std::ptrdiff_t>(j_top, static_cast<std::ptrdiff_t>(bins)) - 1)] += p;
    }
    tail_off[ci] = tail_pool_.size();
    tail_pool_.resize(tail_off[ci] + bins);
    double suffix = 0.0;
    for (std::size_t j = bins; j-- > 0;) {
      suffix += bucket[j];
      tail_pool_[tail_off[ci] + j] = suffix;
    }
    for (std::size_t j = 0; j < bins; ++j)
      min_tail_[j] = std::min(min_tail_[j], tail_pool_[tail_off[ci] + j]);
  }
  min_spot_term_ = min_spot;

  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    cells_[ci].life = life_pool_.data() + life_off[ci];
    cells_[ci].tail = tail_pool_.data() + tail_off[ci];
  }
}

CostTables::CostTables(const std::vector<GroupSetup>& groups, const OnDemandChoice& od,
                       CostModel::Config config,
                       const std::vector<std::vector<ChoiceSpec>>& choices)
    : groups_(&groups), od_(od), config_(config) {
  SOMPI_REQUIRE(!groups.empty());
  SOMPI_REQUIRE(choices.size() == groups.size());
  SOMPI_REQUIRE(config_.step_hours > 0.0);
  SOMPI_REQUIRE(config_.ratio_bins >= 8);
  SOMPI_REQUIRE(od_.t_h > 0.0 && od_.rate_usd_h > 0.0);

  blocks_.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g)
    blocks_.push_back(
        std::make_shared<const GroupCostTable>(groups[g], od_, config_, choices[g]));
}

CostTables::CostTables(const std::vector<GroupSetup>& groups, const OnDemandChoice& od,
                       CostModel::Config config,
                       std::vector<std::shared_ptr<const GroupCostTable>> blocks)
    : groups_(&groups), od_(od), config_(config), blocks_(std::move(blocks)) {
  SOMPI_REQUIRE(!groups.empty());
  SOMPI_REQUIRE(blocks_.size() == groups.size());
  SOMPI_REQUIRE(config_.step_hours > 0.0);
  SOMPI_REQUIRE(config_.ratio_bins >= 8);
  SOMPI_REQUIRE(od_.t_h > 0.0 && od_.rate_usd_h > 0.0);
  for (const auto& blk : blocks_) {
    SOMPI_REQUIRE(blk != nullptr);
    SOMPI_REQUIRE(blk->ratio_bins() == config_.ratio_bins);
  }
}

std::size_t CostTables::bid_count(std::size_t g) const {
  return (*groups_)[g].failure.bid_count();
}

SubsetEvaluator::SubsetEvaluator(const CostTables& tables, std::vector<std::size_t> members)
    : tables_(&tables), members_(std::move(members)) {
  SOMPI_REQUIRE(!members_.empty());
  const std::size_t k = members_.size();
  const std::size_t bins = tables.config().ratio_bins;
  for (std::size_t g : members_) {
    SOMPI_REQUIRE(g < tables.group_count());
    grid_len_ = std::max(grid_len_, tables.max_w_ceil(g));
  }
  // Level 0 holds the fold identities; the naive evaluator starts from the
  // same values (all-ones CDF/CCDF grids, zero spot cost, unit all-fail).
  life_state_.assign((k + 1) * grid_len_, 1.0);
  ratio_state_.assign((k + 1) * bins, 1.0);
  spot_sum_.assign(k + 1, 0.0);
  all_fail_.assign(k + 1, 1.0);

  // Subset-level admissible bound: min spot terms folded in group order,
  // plus the on-demand floor from the per-bin min tails — the same
  // association order evaluate() uses, so rounding monotonicity applies.
  double spot_lb = 0.0;
  for (std::size_t g : members_) spot_lb += tables.min_spot_term(g);
  std::vector<double> ccdf_lb(bins, 1.0);
  for (std::size_t g : members_) {
    const double* mt = tables.min_ratio_tail(g);
    for (std::size_t j = 0; j < bins; ++j) ccdf_lb[j] *= mt[j];
  }
  double ratio_lb = 0.0;
  for (std::size_t j = 0; j < bins; ++j) ratio_lb += ccdf_lb[j];
  ratio_lb /= static_cast<double>(bins);
  od_floor_ = tables.od().rate_usd_h * tables.od().t_h * ratio_lb;
  subset_bound_ = spot_lb + od_floor_;
}

const Expectation& SubsetEvaluator::evaluate(const std::vector<std::size_t>& bids) {
  const std::size_t k = members_.size();
  SOMPI_REQUIRE(bids.size() == k);
  const std::size_t bins = tables_->config().ratio_bins;

  for (std::size_t i = valid_; i < k; ++i) {
    const CostTables::Cell& c = tables_->cell(members_[i], bids[i]);
    // Lifetime CDF product on the common grid. Entries at or beyond this
    // tuple's max wall stay exactly 1.0 and contribute an exact +0.0 to the
    // expectation sum below, so the wider grid cannot perturb any bit.
    const double* in_life = life_state_.data() + i * grid_len_;
    double* out_life = life_state_.data() + (i + 1) * grid_len_;
    const double* lf = tables_->life_factors(c);
    std::size_t t = 0;
    for (; t < c.w_ceil; ++t) out_life[t] = in_life[t] * lf[t];
    for (; t < grid_len_; ++t) out_life[t] = in_life[t];

    const double* in_r = ratio_state_.data() + i * bins;
    double* out_r = ratio_state_.data() + (i + 1) * bins;
    const double* tail = tables_->ratio_tail(c);
    for (std::size_t j = 0; j < bins; ++j) out_r[j] = in_r[j] * tail[j];

    spot_sum_[i + 1] = spot_sum_[i] + c.spot_term;
    all_fail_[i + 1] = all_fail_[i] * c.one_minus_complete;
  }
  valid_ = k;

  Expectation e;
  const double* life = life_state_.data() + k * grid_len_;
  double e_max_life = 0.0;
  for (std::size_t t = 0; t < grid_len_; ++t) e_max_life += 1.0 - life[t];
  e.spot_time_h = e_max_life * tables_->config().step_hours;

  const double* ccdf = ratio_state_.data() + k * bins;
  double e_min_ratio = 0.0;
  for (std::size_t j = 0; j < bins; ++j) e_min_ratio += ccdf[j];
  e_min_ratio /= static_cast<double>(bins);

  const OnDemandChoice& od = tables_->od();
  e.e_min_ratio = e_min_ratio;
  e.spot_cost_usd = spot_sum_[k];
  e.p_complete_on_spot = 1.0 - all_fail_[k];
  e.od_cost_usd = od.rate_usd_h * od.t_h * e_min_ratio;
  e.od_time_h = od.t_h * e_min_ratio;
  e.cost_usd = e.spot_cost_usd + e.od_cost_usd;
  e.time_h = e.spot_time_h + e.od_time_h;
  scratch_ = e;
  return scratch_;
}

double SubsetEvaluator::cost_lower_bound(const std::vector<std::size_t>& bids,
                                         std::size_t level) const {
  double s = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i)
    s += i <= level ? tables_->cell(members_[i], bids[i]).spot_term
                    : tables_->min_spot_term(members_[i]);
  return s + od_floor_;
}

}  // namespace sompi
