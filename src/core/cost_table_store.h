// CostTableStore — the warm-start re-optimization cache (DESIGN.md §14).
//
// One solve derives, per candidate group, a stack of artifacts that depend
// only on (that group's price history, the optimizer config, the app, the
// deadline, the on-demand tier): the GroupSetup with its Monte-Carlo
// FailureModel — the dominant cold-solve cost — plus the φ-tied checkpoint
// intervals, the guard tables and the incremental engine's GroupCostTable
// block. All of it is a pure function of those inputs, so when an epoch bump
// moves only SOME groups' histories, the clean groups' artifacts can be
// reused bit-identically instead of rebuilt.
//
// The store keys artifacts two ways:
//   * the *scope* — the canonical request key, which pins app, deadline and
//     constraints, so every artifact in a scope shares one config hash;
//   * within a scope, the group spec, guarded by an exact
//     (history version, config hash) match. The version comes from
//     MarketBoard::group_versions(): equal versions mean bit-identical
//     traces. Exact equality (not >=) makes wraparound/reset safe — any
//     mismatch invalidates.
//
// Memory is bounded by a byte cap with scope-granularity LRU eviction: a
// scope's artifacts live and die together (partial scopes would only
// re-miss), and the scope just touched is never the victim.
//
// Thread-safe; artifacts are immutable and handed out by shared_ptr, so
// readers never block on a concurrent solve's store-backs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cloud/catalog.h"
#include "core/cost_model.h"
#include "core/plan.h"
#include "core/problem.h"

namespace sompi {

/// Everything one solve derives for one candidate group. A *setup-only*
/// artifact (has_derived() == false) carries just the GroupSetup — enough to
/// skip the Monte-Carlo failure estimation — and is enriched to a full
/// artifact the first time the group survives candidate pruning inside a
/// search. `table` stays null under the reference engine (which builds no
/// tables); an incremental solve that hits such an artifact rebuilds only
/// the table block.
struct GroupArtifact {
  /// FailureModel (inside GroupSetup) has no default state, so an artifact
  /// is born setup-only and enriched by assigning the derived fields.
  GroupArtifact(std::uint64_t version, GroupSetup setup)
      : version(version), setup(std::move(setup)) {}

  /// Group history version (MarketBoard::group_versions()) at build time.
  std::uint64_t version = 0;
  GroupSetup setup;
  /// φ-tied checkpoint interval per composite (policy, bid) choice.
  std::vector<int> f_of;
  /// Guard-clamped max interval per policy (g·n_pol row of the solve).
  std::vector<int> f_guard_max;
  /// Per-choice guard bits: worst case fits the deadline / survival >= 0.5.
  std::vector<unsigned char> fits;
  std::vector<unsigned char> surv_ok;
  /// Incremental-engine per-(choice) cost table block; may be null.
  std::shared_ptr<const GroupCostTable> table;

  bool has_derived() const { return !f_of.empty(); }
  /// Approximate footprint for the store's byte accounting.
  std::size_t bytes() const;
};

class CostTableStore {
 public:
  struct Config {
    /// Byte cap across all scopes; scope-LRU evicted. The most recently
    /// touched scope is never evicted, so one working set may exceed the
    /// cap rather than thrash.
    std::size_t max_bytes = 64ull << 20;
  };

  /// Monotonic counters plus a point-in-time size snapshot.
  struct Stats {
    std::uint64_t hits = 0;         ///< lookups served from the store
    std::uint64_t misses = 0;       ///< lookups with no entry for the spec
    std::uint64_t invalidated = 0;  ///< entries dropped on version/config mismatch
    std::uint64_t evictions = 0;    ///< scopes evicted by the byte cap
    std::size_t scopes = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  CostTableStore() : CostTableStore(Config()) {}
  explicit CostTableStore(Config config);

  /// Returns the artifact for (scope, spec) iff its recorded history version
  /// and config hash match EXACTLY; a mismatched entry is dropped (counted
  /// as invalidated) and nullptr returned.
  std::shared_ptr<const GroupArtifact> lookup(const std::string& scope,
                                              const CircleGroupSpec& spec,
                                              std::uint64_t version,
                                              std::uint64_t config_hash);

  /// Inserts or replaces the artifact for (scope, spec), then enforces the
  /// byte cap (evicting least-recently-touched OTHER scopes).
  void store(const std::string& scope, const CircleGroupSpec& spec,
             std::uint64_t config_hash, std::shared_ptr<const GroupArtifact> artifact);

  /// The last plan note_plan()ed for this scope — the warm incumbent seed.
  /// Null until a plan lands or after the scope was evicted.
  std::shared_ptr<const Plan> last_plan(const std::string& scope) const;
  void note_plan(const std::string& scope, std::shared_ptr<const Plan> plan);

  /// Drops every scope. Counters survive (they are monotone).
  void clear();

  Stats stats() const;
  const Config& config() const { return config_; }

 private:
  using SpecKey = std::pair<std::size_t, std::size_t>;  // (type_index, zone_index)
  struct Entry {
    std::uint64_t config_hash = 0;
    std::shared_ptr<const GroupArtifact> artifact;
  };
  struct Scope {
    std::map<SpecKey, Entry> entries;
    std::shared_ptr<const Plan> last_plan;
    std::uint64_t touched = 0;  ///< LRU tick
    std::size_t bytes = 0;
  };

  void touch_locked(Scope& scope);
  void drop_entry_locked(Scope& scope, std::map<SpecKey, Entry>::iterator it);
  void evict_locked(const std::string& keep);

  mutable std::mutex mutex_;
  Config config_;
  std::map<std::string, Scope> scopes_;
  std::uint64_t tick_ = 0;
  std::size_t total_bytes_ = 0;
  Stats counters_;  ///< hits/misses/invalidated/evictions only
};

}  // namespace sompi
