#include "core/failure_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace sompi {

FailureModel::FailureModel(const SpotTrace& history, std::vector<double> bids,
                           const FailureEstimationConfig& config)
    : bids_(std::move(bids)), horizon_(config.horizon_steps) {
  SOMPI_REQUIRE(!history.empty());
  SOMPI_REQUIRE(!bids_.empty());
  SOMPI_REQUIRE(std::is_sorted(bids_.begin(), bids_.end()));
  SOMPI_REQUIRE_MSG(bids_.front() > 0.0, "bids must be positive");
  SOMPI_REQUIRE(config.samples > 0);
  SOMPI_REQUIRE(horizon_ > 0);

  max_price_ = history.max_price();

  expected_price_.reserve(bids_.size());
  for (double b : bids_) expected_price_.push_back(history.mean_below(b));

  // failures[b][t]: samples whose first passage for bid b lands exactly at t.
  const std::size_t width = horizon_ + 1;
  std::vector<std::size_t> failures(bids_.size() * width, 0);
  std::vector<std::size_t> never(bids_.size(), 0);  // alive through the horizon

  // Start points come from one sequential stream, independent of the thread
  // count, so the fitted curves are identical to the serial estimator's.
  Rng rng(config.seed);
  const std::size_t n = history.steps();
  std::vector<std::size_t> starts(config.samples);
  for (std::size_t s = 0; s < config.samples; ++s) starts[s] = rng.uniform_index(n);

  // The horizon scans dominate; fan them out over fixed-size sample chunks.
  // Each chunk owns private count arrays, merged serially in chunk order —
  // integer sums, so any grouping gives the same totals anyway.
  struct Counts {
    std::vector<std::size_t> failures;
    std::vector<std::size_t> never;
  };
  constexpr std::size_t kGrain = 256;
  const std::size_t chunks = (config.samples + kGrain - 1) / kGrain;
  std::vector<Counts> parts(chunks);
  parallel_for(chunks, config.threads, [&](std::size_t c) {
    Counts& part = parts[c];
    part.failures.assign(bids_.size() * width, 0);
    part.never.assign(bids_.size(), 0);
    const std::size_t lo = c * kGrain;
    const std::size_t hi = std::min<std::size_t>(config.samples, lo + kGrain);
    for (std::size_t s = lo; s < hi; ++s) {
      const std::size_t start = starts[s];
      // One running-max pass kills bids in ascending order: once the running
      // max exceeds bids_[next], that bid's first passage is the current step.
      std::size_t next = 0;  // lowest still-alive bid index
      double run_max = 0.0;
      for (std::size_t t = 0; t <= horizon_ && next < bids_.size(); ++t) {
        std::size_t idx = start + t;
        if (idx >= n) {
          if (!config.wrap) break;
          idx %= n;
        }
        run_max = std::max(run_max, history.price(idx));
        while (next < bids_.size() && bids_[next] < run_max) {
          part.failures[next * width + t] += 1;
          ++next;
        }
      }
      for (std::size_t b = next; b < bids_.size(); ++b) ++part.never[b];
    }
  });
  for (const Counts& part : parts) {
    for (std::size_t i = 0; i < failures.size(); ++i) failures[i] += part.failures[i];
    for (std::size_t b = 0; b < never.size(); ++b) never[b] += part.never[b];
  }

  // Convert counts to survival curves: survival(t) = P[fp >= t].
  survival_.assign(bids_.size() * width, 0.0);
  const auto g = static_cast<double>(config.samples);
  for (std::size_t b = 0; b < bids_.size(); ++b) {
    double alive = g;
    for (std::size_t t = 0; t < width; ++t) {
      survival_[b * width + t] = alive / g;
      alive -= static_cast<double>(failures[b * width + t]);
    }
    SOMPI_ASSERT(alive >= -1e-9);
    SOMPI_ASSERT(std::abs(alive - static_cast<double>(never[b])) < 0.5);
  }
}

double FailureModel::survival(std::size_t b, std::size_t t) const {
  SOMPI_REQUIRE(b < bids_.size());
  t = std::min(t, horizon_);
  return survival_[b * (horizon_ + 1) + t];
}

double FailureModel::survival_at(std::size_t b, double x) const {
  if (x <= 0.0) return 1.0;
  return survival(b, static_cast<std::size_t>(std::ceil(x)));
}

double FailureModel::pmf(std::size_t b, std::size_t t) const {
  SOMPI_REQUIRE(t <= horizon_);
  const double next = t == horizon_ ? 0.0 : survival(b, t + 1);
  return std::max(0.0, survival(b, t) - next);
}

double FailureModel::expected_lifetime(std::size_t b, double w) const {
  SOMPI_REQUIRE(w >= 0.0);
  // E[min(fp, w)] = sum_{t=1..floor(w)} P[fp >= t] + frac(w) * P[fp >= ceil(w)]
  // (first passage is integer-valued).
  const double capped = std::min(w, static_cast<double>(horizon_));
  const auto whole = static_cast<std::size_t>(std::floor(capped));
  double e = 0.0;
  for (std::size_t t = 1; t <= whole; ++t) e += survival(b, t);
  const double frac = capped - static_cast<double>(whole);
  if (frac > 0.0) e += frac * survival(b, whole + 1);
  return e;
}

double FailureModel::mtbf(std::size_t b) const {
  const double p_never = survival(b, horizon_);
  if (p_never >= 1.0 - 1e-12) return static_cast<double>(horizon_);
  double e = 0.0;
  for (std::size_t t = 0; t < horizon_; ++t) e += pmf(b, t) * static_cast<double>(t);
  // Condition on failing within the horizon; censored mass sits at the edge.
  e += p_never * static_cast<double>(horizon_);
  return e;
}

std::vector<double> logarithmic_bid_grid(double max_price, std::size_t levels) {
  SOMPI_REQUIRE(max_price > 0.0);
  SOMPI_REQUIRE(levels >= 1);
  std::vector<double> grid;
  grid.reserve(levels);
  for (std::size_t l = levels; l-- > 0;) grid.push_back(max_price / std::pow(2.0, l));
  return grid;  // ascending: H/2^(levels-1), ..., H/2, H
}

std::vector<double> uniform_bid_grid(double max_price, std::size_t points) {
  SOMPI_REQUIRE(max_price > 0.0);
  SOMPI_REQUIRE(points >= 1);
  std::vector<double> grid;
  grid.reserve(points);
  for (std::size_t j = 1; j <= points; ++j)
    grid.push_back(max_price * static_cast<double>(j) / static_cast<double>(points));
  return grid;
}

}  // namespace sompi
