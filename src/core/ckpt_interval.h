// The checkpoint-interval function F = φ(P) (paper §4.2.2 "Reducing problem
// dimension", Theorem 1).
//
// Checkpointing is independent per circle group, so the optimal interval for
// a group depends only on that group's bid: minimizing the group's own
// expected-cost contribution
//
//   J_i(F) = S_i·M_i·h·E[lifetime(F)]  +  od_rate·od_T·E[Ratio(F)]
//
// yields φ_i(P_i). We offer the paper's numeric minimization over a small
// interval grid, and the Young/Daly closed form sqrt(2·O·MTBF(P)) cited by
// the paper ([10]) as a cross-check/ablation.
#pragma once

#include <vector>

#include "core/problem.h"

namespace sompi {

enum class PhiMode {
  kNumeric,    ///< minimize J_i(F) over a candidate grid (default)
  kYoungDaly,  ///< closed form sqrt(2·O_i·MTBF_i(P_i))
  kDisabled,   ///< F_i = T_i: never checkpoint (the w/o-CK ablation)
};

class CheckpointPlanner {
 public:
  struct Config {
    PhiMode mode = PhiMode::kNumeric;
    /// Interval candidates for the numeric mode (geometric grid over [1, T]
    /// plus the Young/Daly point and T itself).
    std::size_t grid_points = 24;
    double step_hours = 0.25;
    std::size_t ratio_bins = 200;
  };

  explicit CheckpointPlanner(Config config) : config_(config) {}

  /// Young/Daly interval in steps, clamped to [1, T_i]. `o_scale` is the
  /// checkpoint-level policy's O multiplier (1.0 = the flat S3 path; exact).
  static int young_daly(const GroupSetup& group, std::size_t bid_index,
                        double o_scale = 1.0);

  /// φ_i(P_i): the checkpoint interval for `group` at the given bid level.
  /// `od` supplies the recovery price used by the numeric objective. The
  /// optional scales evaluate φ under a checkpoint-level policy's effective
  /// O_i/R_i; the defaults multiply by exactly 1.0 and are bit-identical to
  /// the unscaled form.
  int choose(const GroupSetup& group, std::size_t bid_index, const OnDemandChoice& od,
             double o_scale = 1.0, double r_scale = 1.0) const;

  /// The single-group objective J_i(F) — exposed for tests and the φ
  /// optimality property check.
  double objective(const GroupSetup& group, std::size_t bid_index, int f_steps,
                   const OnDemandChoice& od, double o_scale = 1.0,
                   double r_scale = 1.0) const;

  /// The numeric mode's candidate grid for a given T (deduplicated,
  /// ascending, always contains 1 and T).
  std::vector<int> candidate_intervals(int t_steps, int young) const;

 private:
  Config config_;
};

}  // namespace sompi
