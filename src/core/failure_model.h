// The paper's failure-rate function f_i(P_i, t_i) and expected spot price
// S_i(P_i), estimated from spot-price history (§4.4 "Obtaining Failure Rate
// Function").
//
// For a bid P, the group's first-passage time is the first step at which the
// spot price exceeds P. Following the paper, we estimate its distribution in
// a histogram-based way: start from G random points in the recent history,
// record when the price first exceeds P, and normalize the counts. One pass
// of the running maximum per sampled start point yields the first-passage
// time for EVERY candidate bid simultaneously.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/spot_trace.h"

namespace sompi {

/// Estimation knobs.
struct FailureEstimationConfig {
  /// Number of sampled start points G (paper: "G is sufficiently large").
  std::size_t samples = 2000;
  /// Steps of look-ahead; must cover the longest group wall duration.
  std::size_t horizon_steps = 400;
  /// Deterministic seed for the start-point sampler.
  std::uint64_t seed = 0x50C1A1;
  /// Wrap around the history window when a sampled run hits its end.
  bool wrap = true;
  /// Worker threads for the first-passage scans: 0 = hardware concurrency,
  /// 1 = serial. Start points come from one sequential stream regardless,
  /// and per-chunk failure counts are merged in chunk order, so the fitted
  /// curves are bit-identical at any thread count (and to the pre-parallel
  /// estimator).
  unsigned threads = 1;
};

class FailureModel {
 public:
  /// Builds the model over the given candidate bid levels (ascending, all
  /// positive) from the price history. The trace must be non-empty.
  FailureModel(const SpotTrace& history, std::vector<double> bids,
               const FailureEstimationConfig& config);

  /// Candidate bid levels, ascending.
  const std::vector<double>& bids() const { return bids_; }
  std::size_t bid_count() const { return bids_.size(); }
  double bid(std::size_t b) const { return bids_.at(b); }

  std::size_t horizon() const { return horizon_; }

  /// P[first-passage >= t]: the group survives (at least) the first t steps.
  /// survival(b, 0) == 1. t is clamped to the horizon.
  double survival(std::size_t b, std::size_t t) const;

  /// P[first-passage >= x] for fractional x (first-passage is step-valued).
  double survival_at(std::size_t b, double x) const;

  /// P[first-passage == t]: the paper's f_i(P, t) for a failure at step t.
  double pmf(std::size_t b, std::size_t t) const;

  /// E[min(first-passage, w)]: expected lifetime of a group whose complete
  /// run lasts w wall steps. Beyond the horizon the group is assumed alive.
  double expected_lifetime(std::size_t b, double w) const;

  /// Mean time before failure, conditioned on failing within the horizon;
  /// horizon when the group never failed in any sample (drives Young/Daly).
  double mtbf(std::size_t b) const;

  /// The paper's expected spot price S_i(P): mean of historical prices <= P.
  double expected_price(std::size_t b) const { return expected_price_[b]; }

  /// Highest historical price H_i (upper end of the bid range).
  double max_price() const { return max_price_; }

 private:
  std::vector<double> bids_;
  std::size_t horizon_;
  // survival_[b * (horizon_+1) + t] = P[fp >= t]
  std::vector<double> survival_;
  std::vector<double> expected_price_;
  double max_price_ = 0.0;
};

/// The paper's logarithmic bid grid over (0, H]: the search points are
/// H/2^l for l = levels-1 .. 0, ascending — dense near zero where the
/// failure-rate function moves fastest, sparse near H where it is flat
/// (§4.2.2 "logarithmic searching method").
std::vector<double> logarithmic_bid_grid(double max_price, std::size_t levels);

/// Uniform grid of `points` bids over (0, H] — the ablation comparator.
std::vector<double> uniform_bid_grid(double max_price, std::size_t points);

}  // namespace sompi
