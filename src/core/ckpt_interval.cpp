#include "core/ckpt_interval.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "core/schedule.h"

namespace sompi {

int CheckpointPlanner::young_daly(const GroupSetup& group, std::size_t bid_index,
                                  double o_scale) {
  const double mtbf = group.failure.mtbf(bid_index);
  const double o = group.o_steps * o_scale;
  if (o <= 0.0) return 1;  // free checkpoints: checkpoint every step
  const double f = std::sqrt(2.0 * o * mtbf);
  return std::clamp(static_cast<int>(std::lround(f)), 1, group.t_steps);
}

std::vector<int> CheckpointPlanner::candidate_intervals(int t_steps, int young) const {
  SOMPI_REQUIRE(t_steps >= 1);
  std::vector<int> grid;
  grid.push_back(1);
  // Geometric sweep 1..T; the objective is smooth enough between knots.
  const double ratio = std::pow(static_cast<double>(t_steps),
                                1.0 / static_cast<double>(std::max<std::size_t>(config_.grid_points, 2)));
  double x = 1.0;
  while (grid.back() < t_steps) {
    x *= ratio;
    const int next = std::max(grid.back() + 1, static_cast<int>(std::lround(x)));
    grid.push_back(std::min(next, t_steps));
  }
  grid.push_back(std::clamp(young, 1, t_steps));
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

double CheckpointPlanner::objective(const GroupSetup& group, std::size_t bid_index, int f_steps,
                                    const OnDemandChoice& od, double o_scale,
                                    double r_scale) const {
  const GroupSchedule sched(group.t_steps, f_steps, group.o_steps * o_scale,
                            group.r_steps * r_scale);
  const double w = sched.wall_duration();
  const auto& fm = group.failure;

  const double spot_cost = fm.expected_price(bid_index) * group.instances *
                           fm.expected_lifetime(bid_index, w) * config_.step_hours;

  // E[Ratio] for this group alone (completion contributes ratio 0). Clamp
  // to the estimation horizon: survival beyond it counts as completion,
  // matching expected_lifetime's censoring.
  double e_ratio = 0.0;
  const auto w_ceil = std::min(static_cast<std::size_t>(std::ceil(w)), fm.horizon());
  for (std::size_t t = 0; t < w_ceil; ++t) {
    const double p = fm.pmf(bid_index, t);
    if (p > 0.0) e_ratio += p * sched.ratio_at(static_cast<double>(t));
  }
  return spot_cost + od.rate_usd_h * od.t_h * e_ratio;
}

int CheckpointPlanner::choose(const GroupSetup& group, std::size_t bid_index,
                              const OnDemandChoice& od, double o_scale,
                              double r_scale) const {
  if (config_.mode == PhiMode::kDisabled) return group.t_steps;
  const int young = young_daly(group, bid_index, o_scale);
  if (config_.mode == PhiMode::kYoungDaly) return young;

  int best_f = group.t_steps;
  double best_j = std::numeric_limits<double>::infinity();
  for (int f : candidate_intervals(group.t_steps, young)) {
    const double j = objective(group, bid_index, f, od, o_scale, r_scale);
    if (j < best_j) {
      best_j = j;
      best_f = f;
    }
  }
  return best_f;
}

}  // namespace sompi
