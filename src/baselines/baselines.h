// The comparison approaches of the paper's evaluation (§5.3):
//
//   On-demand    — cheapest on-demand type meeting the deadline, no spot.
//   Marathe      — Marathe et al. [30], the state of the art: replicate ONE
//                  instance type (cc2.8xlarge by default) across availability
//                  zones, bid at the on-demand price, Young/Daly checkpoints.
//   Marathe-Opt  — Marathe with the replicated type chosen per application.
//   Spot-Inf     — one spot group, effectively infinite bid ($999), no fault
//                  tolerance (§5.3.2).
//   Spot-Avg     — one spot group, bid = historical average price, no fault
//                  tolerance (§5.3.2).
//
// The ablations of §5.4.2 (All-Unable, w/o-RP, w/o-CK, w/o-MT) are SOMPI
// itself with parts disabled and are expressed through OptimizerConfig /
// AdaptiveConfig knobs (see ablations.h).
#pragma once

#include "core/optimizer.h"
#include "trace/market.h"

namespace sompi {

class BaselineFactory {
 public:
  /// `marathe_replicas` is Marathe's replication degree: how many
  /// availability zones carry a replica (their dual-redundancy default is
  /// 2; capped at the catalog's zone count).
  BaselineFactory(const Catalog* catalog, const ExecTimeEstimator* estimator,
                  SetupConfig setup, int marathe_replicas = 2);

  /// Cheapest on-demand tier that meets the deadline (no slack reservation —
  /// nothing to checkpoint or recover).
  Plan on_demand_only(const AppProfile& app, double deadline_h) const;

  /// Marathe et al.: `optimize_type` false pins cc2.8xlarge (their default),
  /// true picks the replicated type with the lowest expected cost that meets
  /// the deadline (Marathe-Opt).
  Plan marathe(const AppProfile& app, const Market& history, double deadline_h,
               bool optimize_type) const;

  /// Single spot group, bid so high it is never out-of-bid, no checkpoints.
  Plan spot_inf(const AppProfile& app, const Market& history, double deadline_h) const;

  /// Single spot group, bid = the group's historical average price, no
  /// checkpoints.
  Plan spot_avg(const AppProfile& app, const Market& history, double deadline_h) const;

 private:
  /// Builds a plan that replicates `type_index` across every zone with the
  /// given bid policy; returns the plan plus its model expectation.
  Plan replicate_type(const AppProfile& app, const Market& history, double deadline_h,
                      std::size_t type_index, double bid_usd, bool checkpoints) const;

  /// Single-group plan on the given spec with an explicit bid.
  Plan single_group(const AppProfile& app, const Market& history, double deadline_h,
                    const CircleGroupSpec& spec, double bid_usd) const;

  const Catalog* catalog_;
  const ExecTimeEstimator* estimator_;
  SetupConfig setup_;
  int marathe_replicas_;
};

}  // namespace sompi
