// The individual-fault-tolerance ablations of §5.4.2, expressed as SOMPI
// configuration variants so each differs from the full system in exactly
// one mechanism:
//
//   All-Unable — no replication (one circle group) and no checkpoints.
//   w/o-RP     — checkpoints only: the subset search is capped at one group.
//   w/o-CK     — replication only: φ is pinned to F_i = T_i.
//   w/o-MT     — full SOMPI but the adaptive engine never refreshes the
//                plan with new price history (update maintenance off).
#pragma once

#include "core/adaptive.h"
#include "core/optimizer.h"

namespace sompi {

/// The full-SOMPI defaults used across the evaluation (slack 20%, k = 4,
/// T_m = 15 h — the paper's §5.2 parameter study).
inline OptimizerConfig sompi_optimizer_config() { return OptimizerConfig{}; }

inline AdaptiveConfig sompi_adaptive_config() { return AdaptiveConfig{}; }

inline OptimizerConfig without_replication_config() {
  OptimizerConfig c;
  c.max_groups = 1;
  return c;
}

inline OptimizerConfig without_checkpoint_config() {
  OptimizerConfig c;
  c.phi_mode = PhiMode::kDisabled;
  return c;
}

inline OptimizerConfig all_unable_config() {
  OptimizerConfig c;
  c.max_groups = 1;
  c.phi_mode = PhiMode::kDisabled;
  // No fault tolerance also means no worst-case deadline guard: the
  // application simply runs on spot and hopes (the paper's strawman).
  c.worst_case_guard = false;
  return c;
}

inline AdaptiveConfig without_maintenance_config() {
  AdaptiveConfig c;
  c.update_maintenance = false;
  return c;
}

}  // namespace sompi
