#include "baselines/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "core/ckpt_interval.h"
#include "core/ondemand.h"

namespace sompi {

namespace {
/// A bid no historical price can exceed — the paper's "$999".
constexpr double kInfiniteBid = 999.0;
}  // namespace

BaselineFactory::BaselineFactory(const Catalog* catalog, const ExecTimeEstimator* estimator,
                                 SetupConfig setup, int marathe_replicas)
    : catalog_(catalog), estimator_(estimator), setup_(std::move(setup)),
      marathe_replicas_(marathe_replicas) {
  SOMPI_REQUIRE(catalog_ != nullptr && estimator_ != nullptr);
  SOMPI_REQUIRE(marathe_replicas_ >= 1);
}

Plan BaselineFactory::on_demand_only(const AppProfile& app, double deadline_h) const {
  const OnDemandSelector selector(catalog_, estimator_);
  Plan plan;
  plan.app = app.name;
  plan.step_hours = setup_.step_hours;
  plan.deadline_h = deadline_h;
  plan.state_gb = app.state_gb;
  plan.od = selector.select(app, deadline_h, /*slack=*/0.0);
  plan.expected.cost_usd = plan.expected.od_cost_usd = plan.od.full_cost_usd();
  plan.expected.time_h = plan.expected.od_time_h = plan.od.t_h;
  plan.expected.e_min_ratio = 1.0;
  return plan;
}

Plan BaselineFactory::replicate_type(const AppProfile& app, const Market& history,
                                     double deadline_h, std::size_t type_index, double bid_usd,
                                     bool checkpoints) const {
  const SetupBuilder builder(catalog_, estimator_);
  const OnDemandSelector selector(catalog_, estimator_);

  Plan plan;
  plan.app = app.name;
  plan.step_hours = setup_.step_hours;
  plan.deadline_h = deadline_h;
  plan.state_gb = app.state_gb;
  plan.od = selector.select(app, deadline_h, /*slack=*/0.2);

  std::vector<GroupSetup> setups;
  std::vector<GroupDecision> decisions;
  CheckpointPlanner::Config phi_cfg;
  phi_cfg.mode = checkpoints ? PhiMode::kYoungDaly : PhiMode::kDisabled;
  phi_cfg.step_hours = setup_.step_hours;
  const CheckpointPlanner phi(phi_cfg);

  const std::size_t replicas =
      std::min<std::size_t>(static_cast<std::size_t>(marathe_replicas_),
                            catalog_->zones().size());
  for (std::size_t z = 0; z < replicas; ++z) {
    const CircleGroupSpec spec{type_index, z};
    GroupSetup g = builder.build_with_bids(app, spec, history, setup_, {bid_usd});
    const int f = phi.choose(g, /*bid_index=*/0, plan.od);
    decisions.push_back({0, f});
    setups.push_back(std::move(g));
  }

  std::vector<const GroupSetup*> view;
  for (const auto& g : setups) view.push_back(&g);
  const CostModel model(std::move(view), plan.od,
                        {.step_hours = setup_.step_hours, .ratio_bins = 200});
  plan.expected = model.evaluate(decisions);
  plan.spot_feasible = plan.expected.time_h <= deadline_h;

  for (std::size_t i = 0; i < setups.size(); ++i) {
    const auto& g = setups[i];
    plan.groups.push_back(GroupPlan{
        .spec = g.spec,
        .name = catalog_->group_name(g.spec),
        .instances = g.instances,
        .t_steps = g.t_steps,
        .o_steps = g.o_steps,
        .r_steps = g.r_steps,
        .bid_usd = bid_usd,
        .f_steps = decisions[i].f_steps,
    });
  }
  return plan;
}

Plan BaselineFactory::marathe(const AppProfile& app, const Market& history, double deadline_h,
                              bool optimize_type) const {
  if (!optimize_type) {
    const std::size_t cc2 = catalog_->type_index("cc2.8xlarge");
    return replicate_type(app, history, deadline_h, cc2,
                          catalog_->type(cc2).ondemand_usd_h, /*checkpoints=*/true);
  }
  // Marathe-Opt: evaluate their algorithm per candidate type, keep the
  // cheapest expectation that meets the deadline.
  Plan best;
  double best_cost = std::numeric_limits<double>::infinity();
  Plan fastest;
  double fastest_time = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < catalog_->types().size(); ++d) {
    Plan p = replicate_type(app, history, deadline_h, d, catalog_->type(d).ondemand_usd_h,
                            /*checkpoints=*/true);
    if (p.expected.time_h < fastest_time) {
      fastest_time = p.expected.time_h;
      fastest = p;
    }
    if (!p.spot_feasible) continue;
    if (p.expected.cost_usd < best_cost) {
      best_cost = p.expected.cost_usd;
      best = std::move(p);
    }
  }
  // Nothing met the deadline: fall back to the fastest replicated setup.
  return best_cost < std::numeric_limits<double>::infinity() ? best : fastest;
}

Plan BaselineFactory::single_group(const AppProfile& app, const Market& history,
                                   double deadline_h, const CircleGroupSpec& spec,
                                   double bid_usd) const {
  const SetupBuilder builder(catalog_, estimator_);
  const OnDemandSelector selector(catalog_, estimator_);

  Plan plan;
  plan.app = app.name;
  plan.step_hours = setup_.step_hours;
  plan.deadline_h = deadline_h;
  plan.state_gb = app.state_gb;
  plan.od = selector.select(app, deadline_h, /*slack=*/0.2);

  GroupSetup g = builder.build_with_bids(app, spec, history, setup_, {bid_usd});
  const std::vector<GroupDecision> decisions{{0, g.t_steps}};  // no checkpoints
  const CostModel model({&g}, plan.od, {.step_hours = setup_.step_hours, .ratio_bins = 200});
  plan.expected = model.evaluate(decisions);
  plan.spot_feasible = plan.expected.time_h <= deadline_h;
  plan.groups.push_back(GroupPlan{
      .spec = g.spec,
      .name = catalog_->group_name(g.spec),
      .instances = g.instances,
      .t_steps = g.t_steps,
      .o_steps = g.o_steps,
      .r_steps = g.r_steps,
      .bid_usd = bid_usd,
      .f_steps = g.t_steps,
  });
  return plan;
}

Plan BaselineFactory::spot_inf(const AppProfile& app, const Market& history,
                               double deadline_h) const {
  // At an unbeatable bid the expected running price is the overall mean;
  // choose the (type, zone) with the cheapest expected full-run cost among
  // those meeting the deadline.
  const CircleGroupSpec* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  const auto groups = catalog_->all_groups();
  for (const auto& spec : groups) {
    const InstanceType& type = catalog_->type(spec.type_index);
    const double t_h = estimator_->hours(app, type);
    if (t_h > deadline_h) continue;
    const SpotTrace& trace = history.trace(spec);
    const double mean_price = trace.mean_below(trace.max_price());
    const double cost = mean_price * catalog_->instances_for(spec.type_index, app.processes) * t_h;
    if (cost < best_cost) {
      best_cost = cost;
      best = &spec;
    }
  }
  SOMPI_REQUIRE_MSG(best != nullptr, "no instance type meets the deadline");
  return single_group(app, history, deadline_h, *best, kInfiniteBid);
}

Plan BaselineFactory::spot_avg(const AppProfile& app, const Market& history,
                               double deadline_h) const {
  // Bid the historical average; expected running price is the mean of
  // prices below that bid.
  const CircleGroupSpec* best = nullptr;
  double best_bid = 0.0;
  double best_cost = std::numeric_limits<double>::infinity();
  const auto groups = catalog_->all_groups();
  for (const auto& spec : groups) {
    const InstanceType& type = catalog_->type(spec.type_index);
    const double t_h = estimator_->hours(app, type);
    if (t_h > deadline_h) continue;
    const SpotTrace& trace = history.trace(spec);
    const double avg = trace.mean_below(trace.max_price());
    const double cost =
        trace.mean_below(avg) * catalog_->instances_for(spec.type_index, app.processes) * t_h;
    if (cost < best_cost) {
      best_cost = cost;
      best = &spec;
      best_bid = avg;
    }
  }
  SOMPI_REQUIRE_MSG(best != nullptr, "no instance type meets the deadline");
  return single_group(app, history, deadline_h, *best, best_bid);
}

}  // namespace sompi
