// Canned profiles for the paper's evaluation workloads (§5.1): the NPB 2.4
// kernels BT, SP, LU (computation-intensive), FT, IS (communication-
// intensive), BTIO (I/O-intensive) and LAMMPS at a configurable process
// count. Magnitudes are scaled the way the paper runs them — "we run each of
// the applications multiple times (100 to 200 times) to extend to large
// scale computing" — so that baseline executions span tens of hours and
// hour-scale checkpoint intervals are meaningful.
#pragma once

#include <vector>

#include "profile/app_profile.h"

namespace sompi {

/// Profile of one NPB kernel at 128 processes, repeated to long-job scale.
AppProfile paper_profile(const std::string& app_name);

/// All NPB evaluation workloads: BT, SP, LU, FT, IS, BTIO.
std::vector<AppProfile> paper_profiles();

/// LAMMPS-like MD profile at `processes` ranks with the total problem size
/// fixed: per-rank compute shrinks and the communication share grows as the
/// process count rises (the paper's §5.3.1 LAMMPS discussion).
AppProfile lammps_profile(int processes);

}  // namespace sompi
