// Execution-time estimation (paper §4.4).
//
// "We estimate the execution time as the summation of its CPU, networking
//  and I/O time": CPU from the instruction count and the per-core speed,
// networking from the inter-instance traffic through each NIC (traffic
// between ranks on the same instance uses shared memory and is free — the
// effect that makes cc2.8xlarge the winner for communication-bound codes),
// I/O from the aggregate disk bandwidth of all instances (more instances =
// more I/O parallelism — the effect that favours the m1 family for BTIO).
#pragma once

#include "cloud/catalog.h"
#include "profile/app_profile.h"

namespace sompi {

/// Component breakdown of an execution-time estimate, in hours.
struct TimeBreakdown {
  double cpu_h = 0.0;
  double net_h = 0.0;
  double io_h = 0.0;

  double total_h() const { return cpu_h + net_h + io_h; }
};

/// Checkpoint/recovery overheads for one app on one instance type, hours.
struct CheckpointCosts {
  double checkpoint_h = 0.0;  ///< the paper's O_i
  double recovery_h = 0.0;    ///< the paper's R_i
};

class ExecTimeEstimator {
 public:
  /// Random I/O achieves this fraction of sequential bandwidth.
  static constexpr double kRandomIoPenalty = 4.0;
  /// Coordination barrier + metadata cost of one checkpoint, hours.
  static constexpr double kCheckpointFixedH = 0.002;
  /// Restart (relaunch + rebuild communicators) fixed cost, hours.
  static constexpr double kRecoveryFixedH = 0.01;

  /// Fraction of a rank's traffic that crosses the network when `cores`
  /// ranks share an instance out of `n` total (uniform partner model).
  static double inter_instance_fraction(int cores, int n);

  /// Estimates the productive execution time of `app` on instances of
  /// `type` (one rank per core).
  TimeBreakdown estimate(const AppProfile& app, const InstanceType& type) const;

  /// Convenience: total hours only.
  double hours(const AppProfile& app, const InstanceType& type) const;

  /// Checkpoint overhead O and recovery overhead R: the full application
  /// state is pushed to (pulled from) object storage through the NICs.
  CheckpointCosts checkpoint_costs(const AppProfile& app, const InstanceType& type) const;
};

}  // namespace sompi
