// Execution-time estimation (paper §4.4).
//
// "We estimate the execution time as the summation of its CPU, networking
//  and I/O time": CPU from the instruction count and the per-core speed,
// networking from the inter-instance traffic through each NIC (traffic
// between ranks on the same instance uses shared memory and is free — the
// effect that makes cc2.8xlarge the winner for communication-bound codes),
// I/O from the aggregate disk bandwidth of all instances (more instances =
// more I/O parallelism — the effect that favours the m1 family for BTIO).
//
// Two sources feed the arithmetic:
//   - the legacy catalog view: InstanceType capability columns, used by the
//     zone-less overloads (and by the zone overloads when no platform is
//     attached) — exactly the paper's flat-constant model;
//   - a platform::Platform: the zone-qualified overloads fold the zone's
//     fabric/uplink links and compute derating into an EffectiveSpec first
//     (DESIGN.md §12). Platform::flat() reproduces the catalog bit-exactly,
//     so attaching the flat platform changes no estimate by even one ULP.
#pragma once

#include <string_view>

#include "cloud/catalog.h"
#include "platform/platform.h"
#include "profile/app_profile.h"

namespace sompi {

/// Component breakdown of an execution-time estimate, in hours.
struct TimeBreakdown {
  double cpu_h = 0.0;
  double net_h = 0.0;
  double io_h = 0.0;

  double total_h() const { return cpu_h + net_h + io_h; }
};

/// Checkpoint/recovery overheads for one app on one instance type, hours.
struct CheckpointCosts {
  double checkpoint_h = 0.0;  ///< the paper's O_i
  double recovery_h = 0.0;    ///< the paper's R_i
};

class ExecTimeEstimator {
 public:
  /// Random I/O achieves this fraction of sequential bandwidth.
  static constexpr double kRandomIoPenalty = 4.0;
  /// Coordination barrier + metadata cost of one checkpoint, hours.
  static constexpr double kCheckpointFixedH = 0.002;
  /// Restart (relaunch + rebuild communicators) fixed cost, hours.
  static constexpr double kRecoveryFixedH = 0.01;

  /// Catalog-only estimator (the paper's flat-constant model).
  ExecTimeEstimator() = default;
  /// Platform-aware estimator: the zone-qualified overloads derive their
  /// numbers from `platform` (borrowed; must outlive the estimator). nullptr
  /// behaves exactly like the default constructor.
  explicit ExecTimeEstimator(const platform::Platform* platform) : platform_(platform) {}

  const platform::Platform* platform() const { return platform_; }

  /// Fraction of a rank's traffic that crosses the network when `cores`
  /// ranks share an instance out of `n` total (uniform partner model).
  static double inter_instance_fraction(int cores, int n);

  /// Estimates the productive execution time of `app` on instances of
  /// `type` (one rank per core), from the flat catalog columns.
  TimeBreakdown estimate(const AppProfile& app, const InstanceType& type) const;

  /// Convenience: total hours only.
  double hours(const AppProfile& app, const InstanceType& type) const;

  /// Checkpoint overhead O and recovery overhead R: the full application
  /// state is pushed to (pulled from) object storage through the NICs.
  CheckpointCosts checkpoint_costs(const AppProfile& app, const InstanceType& type) const;

  /// Zone-qualified variants: the attached platform folds `zone_name`'s
  /// links and derating in (the group's instance count is the flow count on
  /// shared links). Without a platform they equal the flat overloads.
  TimeBreakdown estimate(const AppProfile& app, const InstanceType& type,
                         std::string_view zone_name) const;
  double hours(const AppProfile& app, const InstanceType& type,
               std::string_view zone_name) const;
  CheckpointCosts checkpoint_costs(const AppProfile& app, const InstanceType& type,
                                   std::string_view zone_name) const;

 private:
  /// The one arithmetic path: every overload builds an EffectiveSpec and
  /// lands here, so catalog and platform estimates cannot drift.
  TimeBreakdown estimate_spec(const AppProfile& app,
                              const platform::EffectiveSpec& spec) const;
  CheckpointCosts checkpoint_costs_spec(const AppProfile& app,
                                        const platform::EffectiveSpec& spec) const;
  /// Spec the zone overloads use: platform-derived, or the flat type view.
  platform::EffectiveSpec spec_for(const AppProfile& app, const InstanceType& type,
                                   std::string_view zone_name) const;
  /// The catalog capability columns copied verbatim (uplink = NIC).
  static platform::EffectiveSpec type_spec(const InstanceType& type);

  const platform::Platform* platform_ = nullptr;
};

}  // namespace sompi
