// Application profiles — the paper's 5-tuple
//   <#instr, Data_send, Data_recv, IO_seq, IO_rand>        (§4.4 "Profiling")
// plus the extra quantities our estimator and checkpoint model need
// (message count, checkpoint state size).
#pragma once

#include <string>

namespace sompi {

/// Coarse workload category (drives the paper's per-category discussion).
enum class AppCategory { kComputation, kCommunication, kIo };

/// Profile of one MPI application at a fixed process count.
///
/// Obtained either from the built-in table of paper workloads
/// (paper_profiles.h) or measured live by profiling a mini-MPI run
/// (profiler in src/minimpi + profile/estimator.h).
struct AppProfile {
  std::string name;
  AppCategory category = AppCategory::kComputation;
  /// Number of MPI processes N; fixed for the whole execution (paper §3.1.1).
  int processes = 0;
  /// Total instructions across all ranks, in giga-instructions.
  double instr_gi = 0.0;
  /// Total bytes sent by all ranks over MPI, in GB. (Send and receive totals
  /// are symmetric for our workloads, so one field covers the pair.)
  double comm_gb = 0.0;
  /// MPI messages issued per rank over the whole run (latency term).
  double msgs_per_rank = 0.0;
  /// Sequential I/O volume, GB.
  double io_seq_gb = 0.0;
  /// Random-access I/O volume, GB.
  double io_rand_gb = 0.0;
  /// Total checkpoint state across all ranks, GB (drives O_i and R_i).
  double state_gb = 0.0;
};

/// Human-readable category label ("comp" / "comm" / "io").
std::string category_label(AppCategory category);

/// The residual application after completing (1 - fraction) of the work:
/// all volume fields scale linearly, the process count stays fixed.
/// Requires fraction in (0, 1].
AppProfile scale_profile(const AppProfile& app, double fraction);

}  // namespace sompi
