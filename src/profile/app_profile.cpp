#include "profile/app_profile.h"

#include "common/error.h"

namespace sompi {

AppProfile scale_profile(const AppProfile& app, double fraction) {
  SOMPI_REQUIRE(fraction > 0.0 && fraction <= 1.0);
  AppProfile scaled = app;
  scaled.instr_gi *= fraction;
  scaled.comm_gb *= fraction;
  scaled.msgs_per_rank *= fraction;
  scaled.io_seq_gb *= fraction;
  scaled.io_rand_gb *= fraction;
  // The working-set (checkpoint state) size does not shrink with progress.
  return scaled;
}

std::string category_label(AppCategory category) {
  switch (category) {
    case AppCategory::kComputation: return "comp";
    case AppCategory::kCommunication: return "comm";
    case AppCategory::kIo: return "io";
  }
  return "?";
}

}  // namespace sompi
