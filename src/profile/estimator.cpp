#include "profile/estimator.h"

#include <algorithm>

#include "common/error.h"

namespace sompi {

double ExecTimeEstimator::inter_instance_fraction(int cores, int n) {
  SOMPI_REQUIRE(cores >= 1);
  SOMPI_REQUIRE(n >= 1);
  if (n <= cores || n == 1) return 0.0;  // whole job fits on one instance
  return static_cast<double>(n - cores) / static_cast<double>(n - 1);
}

TimeBreakdown ExecTimeEstimator::estimate(const AppProfile& app,
                                          const InstanceType& type) const {
  SOMPI_REQUIRE_MSG(app.processes >= 1, "profile needs a process count");
  const int n = app.processes;
  const int cores_used = std::min(type.cores, n);

  TimeBreakdown b;

  // CPU: all N ranks compute in parallel, one rank per core.
  b.cpu_h = app.instr_gi / (static_cast<double>(n) * type.gips_per_core) / 3600.0;

  // Network: each instance pushes its ranks' inter-instance share of the
  // total traffic through its own NIC; instances transmit concurrently.
  const double frac = inter_instance_fraction(type.cores, n);
  const double egress_gbit_per_inst =
      app.comm_gb * 8.0 * (static_cast<double>(cores_used) / n) * frac;
  const double bw_s = egress_gbit_per_inst / type.net_gbps;
  // Latency: a rank's messages are issued sequentially.
  const double lat_s = app.msgs_per_rank * frac * type.net_latency_us * 1e-6;
  b.net_h = (bw_s + lat_s) / 3600.0;

  // I/O: aggregate bandwidth scales with the instance count.
  const int instances = (n + type.cores - 1) / type.cores;
  const double agg_io_gb_s = static_cast<double>(instances) * type.io_mbps / 1000.0;
  const double io_s =
      (app.io_seq_gb + app.io_rand_gb * kRandomIoPenalty) / agg_io_gb_s;
  b.io_h = io_s / 3600.0;

  return b;
}

double ExecTimeEstimator::hours(const AppProfile& app, const InstanceType& type) const {
  return estimate(app, type).total_h();
}

CheckpointCosts ExecTimeEstimator::checkpoint_costs(const AppProfile& app,
                                                    const InstanceType& type) const {
  SOMPI_REQUIRE(app.processes >= 1);
  const int instances = (app.processes + type.cores - 1) / type.cores;
  // State is uploaded to object storage through every NIC in parallel.
  const double transfer_s =
      app.state_gb * 8.0 / (static_cast<double>(instances) * type.net_gbps);
  CheckpointCosts c;
  c.checkpoint_h = transfer_s / 3600.0 + kCheckpointFixedH;
  c.recovery_h = transfer_s / 3600.0 + kRecoveryFixedH;
  return c;
}

}  // namespace sompi
