#include "profile/estimator.h"

#include <algorithm>

#include "common/error.h"

namespace sompi {

double ExecTimeEstimator::inter_instance_fraction(int cores, int n) {
  SOMPI_REQUIRE(cores >= 1);
  SOMPI_REQUIRE(n >= 1);
  if (n <= cores || n == 1) return 0.0;  // whole job fits on one instance
  return static_cast<double>(n - cores) / static_cast<double>(n - 1);
}

platform::EffectiveSpec ExecTimeEstimator::type_spec(const InstanceType& type) {
  platform::EffectiveSpec s;
  s.cores = type.cores;
  s.gips_per_core = type.gips_per_core;
  s.net_gbps = type.net_gbps;
  s.net_latency_us = type.net_latency_us;
  s.io_mbps = type.io_mbps;
  s.uplink_gbps = type.net_gbps;
  s.uplink_latency_us = 0.0;  // the paper's S3 path bills bandwidth only
  return s;
}

platform::EffectiveSpec ExecTimeEstimator::spec_for(const AppProfile& app,
                                                    const InstanceType& type,
                                                    std::string_view zone_name) const {
  if (platform_ == nullptr) return type_spec(type);
  SOMPI_REQUIRE_MSG(app.processes >= 1, "profile needs a process count");
  // Each instance of the group is one flow on the zone's shared links.
  const int instances = (app.processes + type.cores - 1) / type.cores;
  platform::EffectiveSpec s = platform_->effective(type, zone_name, instances);
  // Flat platforms carry zero extra uplink latency, so this spec (and every
  // estimate below) stays bit-identical to type_spec().
  return s;
}

TimeBreakdown ExecTimeEstimator::estimate_spec(const AppProfile& app,
                                               const platform::EffectiveSpec& spec) const {
  SOMPI_REQUIRE_MSG(app.processes >= 1, "profile needs a process count");
  const int n = app.processes;
  const int cores_used = std::min(spec.cores, n);

  TimeBreakdown b;

  // CPU: all N ranks compute in parallel, one rank per core.
  b.cpu_h = app.instr_gi / (static_cast<double>(n) * spec.gips_per_core) / 3600.0;

  // Network: each instance pushes its ranks' inter-instance share of the
  // total traffic through its own NIC; instances transmit concurrently.
  const double frac = inter_instance_fraction(spec.cores, n);
  const double egress_gbit_per_inst =
      app.comm_gb * 8.0 * (static_cast<double>(cores_used) / n) * frac;
  const double bw_s = egress_gbit_per_inst / spec.net_gbps;
  // Latency: a rank's messages are issued sequentially.
  const double lat_s = app.msgs_per_rank * frac * spec.net_latency_us * 1e-6;
  b.net_h = (bw_s + lat_s) / 3600.0;

  // I/O: aggregate bandwidth scales with the instance count.
  const int instances = (n + spec.cores - 1) / spec.cores;
  const double agg_io_gb_s = static_cast<double>(instances) * spec.io_mbps / 1000.0;
  const double io_s =
      (app.io_seq_gb + app.io_rand_gb * kRandomIoPenalty) / agg_io_gb_s;
  b.io_h = io_s / 3600.0;

  return b;
}

CheckpointCosts ExecTimeEstimator::checkpoint_costs_spec(
    const AppProfile& app, const platform::EffectiveSpec& spec) const {
  SOMPI_REQUIRE(app.processes >= 1);
  const int instances = (app.processes + spec.cores - 1) / spec.cores;
  // State is uploaded to object storage through every NIC in parallel; the
  // zone uplink (fair-shared across the group's instances) can clamp the
  // per-instance rate below the NIC. The latency term is 0 for the flat
  // view, so adding it is exact there.
  const double transfer_s =
      app.state_gb * 8.0 / (static_cast<double>(instances) * spec.uplink_gbps) +
      spec.uplink_latency_us * 1e-6;
  CheckpointCosts c;
  c.checkpoint_h = transfer_s / 3600.0 + kCheckpointFixedH;
  c.recovery_h = transfer_s / 3600.0 + kRecoveryFixedH;
  return c;
}

TimeBreakdown ExecTimeEstimator::estimate(const AppProfile& app,
                                          const InstanceType& type) const {
  return estimate_spec(app, type_spec(type));
}

double ExecTimeEstimator::hours(const AppProfile& app, const InstanceType& type) const {
  return estimate(app, type).total_h();
}

CheckpointCosts ExecTimeEstimator::checkpoint_costs(const AppProfile& app,
                                                    const InstanceType& type) const {
  return checkpoint_costs_spec(app, type_spec(type));
}

TimeBreakdown ExecTimeEstimator::estimate(const AppProfile& app, const InstanceType& type,
                                          std::string_view zone_name) const {
  return estimate_spec(app, spec_for(app, type, zone_name));
}

double ExecTimeEstimator::hours(const AppProfile& app, const InstanceType& type,
                                std::string_view zone_name) const {
  return estimate(app, type, zone_name).total_h();
}

CheckpointCosts ExecTimeEstimator::checkpoint_costs(const AppProfile& app,
                                                    const InstanceType& type,
                                                    std::string_view zone_name) const {
  return checkpoint_costs_spec(app, spec_for(app, type, zone_name));
}

}  // namespace sompi
