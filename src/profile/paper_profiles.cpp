#include "profile/paper_profiles.h"

#include <cmath>

#include "common/error.h"

namespace sompi {

namespace {

// Magnitudes are calibrated against the paper catalog so the per-category
// observations of §5.3 hold (see DESIGN.md "calibration"):
//   * BT/SP/LU: CPU-bound everywhere; slower types remain within ~1.45× of
//     cc2.8xlarge so they become eligible as the deadline loosens (Fig 7a).
//   * FT/IS: network-bound on the m1 family; only cc2.8xlarge (10GbE, 32
//     ranks sharing memory per instance) and marginally c3.xlarge stay near
//     the baseline time, so every optimizer converges on cc2.8xlarge.
//   * BTIO: aggregate disk bandwidth scales with the instance count, so
//     m1.medium (128 spindles) beats cc2.8xlarge (4) outright.
const AppProfile kPaperProfiles[] = {
    // name  category                  N    instr_gi  comm_gb  msgs/rank  io_seq io_rand state
    {"BT", AppCategory::kComputation, 128, 19.9e6, 12000.0, 1.0e6, 10.0, 0.0, 400.0},
    {"SP", AppCategory::kComputation, 128, 17.5e6, 14000.0, 1.2e6, 8.0, 0.0, 350.0},
    {"LU", AppCategory::kComputation, 128, 22.0e6, 9000.0, 2.0e6, 5.0, 0.0, 300.0},
    {"FT", AppCategory::kCommunication, 128, 9.95e6, 119000.0, 4.0e5, 4.0, 0.0, 500.0},
    {"IS", AppCategory::kCommunication, 128, 4.0e6, 60000.0, 3.0e5, 2.0, 0.0, 200.0},
    {"BTIO", AppCategory::kIo, 128, 15.0e6, 9000.0, 8.0e5, 80000.0, 3000.0, 400.0},
};

}  // namespace

AppProfile paper_profile(const std::string& app_name) {
  for (const auto& p : kPaperProfiles)
    if (p.name == app_name) return p;
  throw PreconditionError("unknown paper workload: " + app_name);
}

std::vector<AppProfile> paper_profiles() {
  return {std::begin(kPaperProfiles), std::end(kPaperProfiles)};
}

AppProfile lammps_profile(int processes) {
  SOMPI_REQUIRE(processes >= 1);
  AppProfile p;
  p.name = "LAMMPS-" + std::to_string(processes);
  p.processes = processes;
  // Fixed total problem: the instruction count does not depend on N, so the
  // per-rank compute share shrinks as N grows, while exchanged ghost-atom
  // data grows super-linearly — the paper's comp→comm transition (§5.3.1).
  p.instr_gi = 14.0e6;
  const double scale = static_cast<double>(processes) / 32.0;
  p.comm_gb = 6000.0 * scale * scale;
  p.msgs_per_rank = 5.0e5;
  p.io_seq_gb = 6.0;
  p.io_rand_gb = 0.0;
  p.state_gb = 100.0;
  p.category = processes >= 96 ? AppCategory::kCommunication : AppCategory::kComputation;
  return p;
}

}  // namespace sompi
