#include "service/plan_cache.h"

#include <functional>

#include "common/error.h"

namespace sompi {

PlanCache::PlanCache(Config config) {
  SOMPI_REQUIRE(config.shards >= 1);
  SOMPI_REQUIRE(config.capacity >= 1);
  per_shard_capacity_ = (config.capacity + config.shards - 1) / config.shards;
  shards_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::string PlanCache::index_key(const std::string& key, std::uint64_t epoch) {
  return key + '@' + std::to_string(epoch);
}

PlanCache::Shard& PlanCache::shard_for(const std::string& key) const {
  // Sharding by request key alone (not epoch) keeps all epochs of one
  // request in one shard, so erase_older_than contends with at most one
  // hit path per request.
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const Plan> PlanCache::lookup(const std::string& key, std::uint64_t epoch) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const auto it = shard.index.find(index_key(key, epoch));
  if (it == shard.index.end()) return nullptr;
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->plan;
}

void PlanCache::insert(const std::string& key, std::uint64_t epoch,
                       std::shared_ptr<const Plan> plan) {
  SOMPI_REQUIRE(plan != nullptr);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::string ik = index_key(key, epoch);
  if (const auto it = shard.index.find(ik); it != shard.index.end()) {
    it->second->plan = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, epoch, std::move(plan)});
  shard.index.emplace(ik, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(index_key(shard.lru.back().key, shard.lru.back().epoch));
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t PlanCache::erase_older_than(std::uint64_t epoch) {
  std::size_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->epoch < epoch) {
        shard->index.erase(index_key(it->key, it->epoch));
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  stale_dropped_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

PlanCache::Stats PlanCache::stats() const {
  Stats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.stale_dropped = stale_dropped_.load(std::memory_order_relaxed);
  return s;
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace sompi
