#include "service/plan_cache.h"

#include <functional>

#include "common/error.h"
#include "common/rng.h"

namespace sompi {

PlanCache::PlanCache(Config config) {
  SOMPI_REQUIRE(config.shards >= 1);
  SOMPI_REQUIRE(config.capacity >= 1);
  capacity_ = config.capacity;
  shards_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::string PlanCache::index_key(const std::string& key, std::uint64_t epoch) {
  return key + '@' + std::to_string(epoch);
}

PlanCache::Shard& PlanCache::shard_for(const std::string& key) const {
  // Sharding by request key alone (not epoch) keeps all epochs of one
  // request in one shard, so erase_older_than contends with at most one
  // hit path per request. The std::hash value is re-mixed through a salted
  // splitmix finalizer before the modulo: a raw `hash % shards` correlates
  // with any outer router partitioning keys by the same obvious formula,
  // funnelling a whole partition into ONE lock shard and serializing its
  // hit path (the capacity half of that failure mode is fixed by the
  // global budget in insert()).
  std::uint64_t state =
      static_cast<std::uint64_t>(std::hash<std::string>{}(key)) ^ 0xCAC4E5A17ULL;
  return *shards_[splitmix64(state) % shards_.size()];
}

std::shared_ptr<const Plan> PlanCache::lookup(const std::string& key, std::uint64_t epoch) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const auto it = shard.index.find(index_key(key, epoch));
  if (it == shard.index.end()) return nullptr;
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->plan;
}

void PlanCache::insert(const std::string& key, std::uint64_t epoch,
                       std::shared_ptr<const Plan> plan) {
  SOMPI_REQUIRE(plan != nullptr);
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::string ik = index_key(key, epoch);
  if (const auto it = shard.index.find(ik); it != shard.index.end()) {
    it->second->plan = std::move(plan);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, epoch, std::move(plan)});
  shard.index.emplace(ik, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  total_size_.fetch_add(1, std::memory_order_relaxed);
  // Enforce the GLOBAL budget, evicting from this shard's own LRU tail (the
  // only one whose lock is held). A fitting key set therefore never evicts,
  // however skewed the shard assignment — see Config::capacity. The
  // `size() > 1` guard keeps the entry just inserted resident even when the
  // excess lives in other shards, so the budget is soft by at most
  // (shards - 1) entries until inserts (or a stale sweep) land there.
  while (total_size_.load(std::memory_order_relaxed) > capacity_ && shard.lru.size() > 1) {
    shard.index.erase(index_key(shard.lru.back().key, shard.lru.back().epoch));
    shard.lru.pop_back();
    total_size_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t PlanCache::erase_older_than(std::uint64_t epoch) {
  std::size_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->epoch < epoch) {
        shard->index.erase(index_key(it->key, it->epoch));
        it = shard->lru.erase(it);
        total_size_.fetch_sub(1, std::memory_order_relaxed);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  stale_dropped_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

PlanCache::Stats PlanCache::stats() const {
  Stats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.stale_dropped = stale_dropped_.load(std::memory_order_relaxed);
  return s;
}

std::size_t PlanCache::size() const {
  return total_size_.load(std::memory_order_relaxed);
}

}  // namespace sompi
