// Planning requests and their canonical form.
//
// The plan cache and the single-flight table key on the *canonical* encoding
// of a request, so two requests that mean the same thing — same profile, same
// deadline, same constraint set in any order — collapse to one cache entry
// and one optimizer run. Doubles are encoded by bit pattern (no decimal
// round-trip), which is what lets the cache promise bit-identical plans: two
// requests share a key iff a fresh solve would see bit-identical inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.h"
#include "profile/app_profile.h"

namespace sompi {

/// One tenant's planning request: what to run, by when, and (optionally)
/// which slice of the catalog it may use.
struct PlanRequest {
  AppProfile app;
  double deadline_h = 0.0;
  /// Instance-type names the plan may use (spot groups AND the on-demand
  /// recovery tier). Empty = the whole catalog.
  std::vector<std::string> allowed_types;
  /// Availability-zone names the spot groups may use. Empty = all zones.
  std::vector<std::string> allowed_zones;
};

/// Canonical form: constraint lists sorted and deduplicated. Requires
/// deadline_h > 0 and app.processes >= 1.
PlanRequest canonicalized(PlanRequest request);

/// Exact cache key of a canonicalized request. Every field that can change
/// the solve is encoded; doubles as hex bit patterns. Requires the request
/// to already be canonical (sorted/deduped constraints).
std::string canonical_key(const PlanRequest& request);

/// Canonical byte-for-byte encoding of everything the optimizer *decided* —
/// groups, bids, checkpoint intervals, the on-demand tier, the model
/// expectation and the evaluation count — excluding only wall-clock
/// accounting (optimize_seconds). Two plans with equal fingerprints are the
/// same plan bit for bit; the service's determinism contract is stated (and
/// tested) in terms of this encoding.
std::string plan_fingerprint(const Plan& plan);

}  // namespace sompi
