#include "service/market_board.h"

#include "common/error.h"

namespace sompi {

namespace {

std::shared_ptr<const std::vector<std::uint64_t>> stamped_versions(const Market& market,
                                                                   std::uint64_t epoch) {
  return std::make_shared<const std::vector<std::uint64_t>>(market.group_count(), epoch);
}

}  // namespace

MarketBoard::MarketBoard(Market initial)
    : epoch_(1), market_(std::make_shared<const Market>(std::move(initial))) {
  versions_ = stamped_versions(*market_, epoch_);
}

MarketSnapshot MarketBoard::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return MarketSnapshot{epoch_, market_, versions_};
}

std::uint64_t MarketBoard::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::shared_ptr<const std::vector<std::uint64_t>> MarketBoard::group_versions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return versions_;
}

std::uint64_t MarketBoard::publish(Market next) {
  auto frozen = std::make_shared<const Market>(std::move(next));
  std::lock_guard<std::mutex> lock(mutex_);
  market_ = std::move(frozen);
  ++epoch_;
  versions_ = stamped_versions(*market_, epoch_);
  return epoch_;
}

std::uint64_t MarketBoard::ingest(const std::vector<PriceUpdate>& updates) {
  // The copy-on-write must happen under the lock: two concurrent ingests
  // that each copied the same base market would lose one another's updates.
  // Readers block on the mutex for the duration of the copy — acceptable
  // because ingest happens once per market step, not once per request.
  std::lock_guard<std::mutex> lock(mutex_);
  Market next = *market_;
  const std::size_t zones = next.catalog().zones().size();
  std::vector<std::uint64_t> vers = *versions_;
  for (const PriceUpdate& update : updates) {
    SpotTrace& trace = next.mutable_trace(update.group);
    SOMPI_REQUIRE_MSG(!trace.empty(), "cannot ingest into an empty trace");
    trace.append(SpotTrace(trace.step_hours(), update.prices));
    vers.at(update.group.type_index * zones + update.group.zone_index) = epoch_ + 1;
  }
  market_ = std::make_shared<const Market>(std::move(next));
  ++epoch_;
  if (!updates.empty())
    versions_ = std::make_shared<const std::vector<std::uint64_t>>(std::move(vers));
  return epoch_;
}

}  // namespace sompi
