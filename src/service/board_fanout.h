// BoardFanout — replicated epoch publication for the sharded serving tier.
//
// One feed pipeline, N per-shard MarketBoard replicas: every publication
// (ingest or whole-market publish) is applied to EVERY replica under one
// serialized critical section — the *versioned barrier*. Consequences:
//
//   * every replica observes exactly the same epoch sequence, in the same
//     order, with bit-identical market content at every epoch (MarketBoard
//     ingestion is deterministic in its inputs);
//   * publication i completes on all replicas before publication i+1 may
//     begin, so at any instant two replicas differ by at most the one
//     publication currently in flight — and at every return from
//     ingest()/publish() all replicas agree on (epoch, market);
//   * the epoch a request observes on its landing shard therefore always
//     names the same frozen market the single-board oracle had at that
//     epoch, which is what makes the sharded tier's fingerprint-equivalence
//     contract (DESIGN.md §13) provable rather than probabilistic.
//
// The barrier is checked, not assumed: after each publication the fan-out
// asserts every replica landed on the same epoch number and raises
// InvariantError on divergence (e.g. a replica that was bumped behind the
// fan-out's back).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "service/market_board.h"

namespace sompi {

class BoardFanout {
 public:
  /// `replicas` are borrowed and must outlive the fan-out; all must be at
  /// the same epoch already (freshly constructed replicas all sit at 1).
  explicit BoardFanout(std::vector<MarketBoard*> replicas);

  /// Applies one batch of price updates to every replica as one barriered
  /// publication; returns the (common) new epoch.
  std::uint64_t ingest(const std::vector<PriceUpdate>& updates);

  /// Replaces the whole market on every replica; returns the new epoch.
  std::uint64_t publish(Market next);

  /// The common epoch (the primary's; equal on every replica between
  /// publications).
  std::uint64_t epoch() const;

  /// Replica 0 — the board a single-shard deployment (or a feed pipeline's
  /// priming read) treats as authoritative.
  MarketBoard* primary() const { return boards_.front(); }

  std::size_t replica_count() const { return boards_.size(); }

  /// Barriered publications completed so far.
  std::uint64_t publications() const;

 private:
  std::uint64_t check_agreement(const std::vector<std::uint64_t>& epochs) const;

  mutable std::mutex mutex_;
  std::vector<MarketBoard*> boards_;
  std::uint64_t publications_ = 0;
};

}  // namespace sompi
