// ShardRouter — consistent-hash ring routing canonical requests to shards.
//
// Each shard owns `vnodes` points on a 64-bit ring; a canonical request key
// hashes to a point and is owned by the first shard point clockwise from it.
// Two properties the sharded tier's equivalence contract leans on:
//
//   * routing is a PURE function of (canonical key, RouterConfig) — the ring
//     uses the repo's own seeded hash (fnv1a + splitmix finalizer), never
//     std::hash, so the mapping is bit-identical across processes, machines
//     and standard libraries, and two independently constructed routers with
//     the same config agree on every key;
//   * adding or removing one shard only reassigns the keys whose successor
//     point belonged to that shard — in expectation K/N of K keys, never a
//     global reshuffle (the ring-stability property test pins a bound).
//
// The salt decorrelates the ring from every other hash in the system —
// in particular from PlanCache's internal lock-shard hash, so a shard's
// key subset still spreads evenly over its cache shards (see the sizing
// note in plan_cache.h).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sompi {

struct RouterConfig {
  std::size_t shards = 1;
  /// Ring points per shard. More points → smoother key balance and smaller
  /// per-shard movement on resize; 64 keeps the worst shard within ~2x of
  /// the mean share.
  std::size_t vnodes = 64;
  /// Deployment-level seed folded into every ring and key hash.
  std::uint64_t salt = 0;
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterConfig config);

  /// The shard owning `canonical_key`. O(log(shards * vnodes)).
  std::size_t route(const std::string& canonical_key) const;

  /// The key's ring position — exposed so tests can reason about movement.
  static std::uint64_t key_point(const std::string& canonical_key, std::uint64_t salt);

  std::size_t shards() const { return config_.shards; }
  const RouterConfig& config() const { return config_; }

  /// The sorted ring: (point, shard) pairs. Test/diagnostic surface.
  const std::vector<std::pair<std::uint64_t, std::uint32_t>>& ring() const { return ring_; }

 private:
  RouterConfig config_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;  ///< sorted by point
};

}  // namespace sompi
