#include "service/sharded/sharded_service.h"

#include <algorithm>

#include "common/error.h"

namespace sompi {

std::size_t ShardedPlanService::per_shard_cache_capacity(std::size_t total,
                                                         std::size_t shards) {
  SOMPI_REQUIRE(shards >= 1);
  // Ceil split of the tier budget. Rounding UP (never down) means the summed
  // per-shard budgets are >= the tier budget, so an evenly routed key set
  // that fits the tier budget also fits its shard-local slices — the cache
  // split must never turn a would-be hit into a miss (regression pinned in
  // test_plan_cache_edges.cpp / test_sharded_service.cpp).
  return std::max<std::size_t>(1, (total + shards - 1) / shards);
}

ShardedPlanService::ShardedPlanService(const Catalog* catalog,
                                       const ExecTimeEstimator* estimator,
                                       const Market& initial, ShardedConfig config)
    : config_(std::move(config)),
      router_(RouterConfig{config_.shards, config_.vnodes, config_.salt}) {
  SOMPI_REQUIRE_MSG(config_.shards >= 1, "sharded tier needs at least one shard");

  boards_.reserve(config_.shards);
  services_.reserve(config_.shards);
  std::vector<MarketBoard*> replicas;
  replicas.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    boards_.push_back(std::make_unique<MarketBoard>(initial));
    replicas.push_back(boards_.back().get());
  }
  fanout_ = std::make_unique<BoardFanout>(std::move(replicas));

  for (std::size_t i = 0; i < config_.shards; ++i) {
    ServiceConfig sc = config_.service;
    sc.cache.capacity =
        per_shard_cache_capacity(config_.service.cache.capacity, config_.shards);
    // Compose the tier's solve ledger UNDER the caller's hook: the ledger
    // sees every solve, the caller's hook still fires exactly as it would on
    // a bare PlanService.
    auto user_hook = config_.service.solve_hook;
    sc.solve_hook = [this, i, user_hook](const std::string& key, std::uint64_t epoch) {
      record_solve(i, key, epoch);
      if (user_hook) user_hook(key, epoch);
    };
    services_.push_back(
        std::make_unique<PlanService>(catalog, estimator, boards_[i].get(), std::move(sc)));
  }
}

std::size_t ShardedPlanService::home_shard_for_key(const std::string& canonical_key) const {
  return router_.route(canonical_key);
}

std::size_t ShardedPlanService::home_shard(const PlanRequest& request) const {
  return router_.route(canonical_key(canonicalized(request)));
}

PlanResponse ShardedPlanService::serve(const PlanRequest& request) {
  routed_.fetch_add(1, std::memory_order_relaxed);
  return services_[home_shard(request)]->serve(request);
}

PlanResponse ShardedPlanService::serve_on(std::size_t landing_shard,
                                          const PlanRequest& request) {
  SOMPI_REQUIRE_MSG(landing_shard < services_.size(),
                    "landing shard out of range: " + std::to_string(landing_shard));
  sprayed_.fetch_add(1, std::memory_order_relaxed);
  // The cross-shard dedup tier in one move: whatever shard the load balancer
  // picked, the request is served at its ring home, where shard-local
  // single-flight merges it with every concurrent identical request — one
  // solve for the whole tier-wide burst.
  const std::size_t home = home_shard(request);
  if (home != landing_shard) forwarded_.fetch_add(1, std::memory_order_relaxed);
  return services_[home]->serve(request);
}

std::optional<PlanResponse> ShardedPlanService::try_serve_hit(std::size_t landing_shard,
                                                              const PlanRequest& request) {
  SOMPI_REQUIRE_MSG(landing_shard < services_.size(),
                    "landing shard out of range: " + std::to_string(landing_shard));
  std::string key;
  std::size_t home = 0;
  try {
    key = canonical_key(canonicalized(request));
    home = router_.route(key);
  } catch (...) {
    return std::nullopt;  // invalid request: the serve path owns the error
  }
  std::optional<PlanResponse> hit = services_[home]->try_cached(key);
  if (!hit.has_value()) return std::nullopt;
  sprayed_.fetch_add(1, std::memory_order_relaxed);
  if (home != landing_shard) forwarded_.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

std::size_t ShardedPlanService::invalidate_stale() {
  std::size_t dropped = 0;
  for (const auto& service : services_) dropped += service->invalidate_stale();
  return dropped;
}

void ShardedPlanService::record_solve(std::size_t /*shard*/, const std::string& key,
                                      std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  if (++solve_counts_[{key, epoch}] > 1) ++duplicate_solves_;
}

std::size_t ShardedPlanService::distinct_solves() const {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  return solve_counts_.size();
}

std::uint64_t ShardedPlanService::duplicate_solves() const {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  return duplicate_solves_;
}

ShardedStats ShardedPlanService::stats() const {
  ShardedStats s;
  s.per_shard.reserve(services_.size());
  for (const auto& service : services_) s.per_shard.push_back(service->stats());
  for (const ServiceStats& shard : s.per_shard) {
    s.total.requests += shard.requests;
    s.total.hits += shard.hits;
    s.total.solves += shard.solves;
    s.total.dedup_joins += shard.dedup_joins;
    s.total.sheds += shard.sheds;
    s.total.stale_evicted += shard.stale_evicted;
    s.total.solve_seconds_total += shard.solve_seconds_total;
    s.total.model_evaluations += shard.model_evaluations;
    s.total.evaluations_performed += shard.evaluations_performed;
    s.total.tuples_pruned += shard.tuples_pruned;
    s.total.subsets_pruned += shard.subsets_pruned;
    s.total.multilevel_plans += shard.multilevel_plans;
    s.total.replan_count += shard.replan_count;
    s.total.warm_seeds += shard.warm_seeds;
    s.total.replan_table_hits += shard.replan_table_hits;
    s.total.replan_table_misses += shard.replan_table_misses;
    s.total.solve_p50_ms = std::max(s.total.solve_p50_ms, shard.solve_p50_ms);
    s.total.solve_p99_ms = std::max(s.total.solve_p99_ms, shard.solve_p99_ms);
    s.total.replan_p50_ms = std::max(s.total.replan_p50_ms, shard.replan_p50_ms);
    s.total.replan_p99_ms = std::max(s.total.replan_p99_ms, shard.replan_p99_ms);
    s.total.cache_entries += shard.cache_entries;
  }
  s.total.epoch = fanout_->epoch();
  s.routed = routed_.load(std::memory_order_relaxed);
  s.sprayed = sprayed_.load(std::memory_order_relaxed);
  s.forwarded = forwarded_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    s.duplicate_solves = duplicate_solves_;
  }
  return s;
}

}  // namespace sompi
