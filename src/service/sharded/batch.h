// AsyncBatchService — bounded asynchronous batch front end for the sharded
// plan tier.
//
// Callers submit requests and get back monotonically increasing tickets;
// a fixed pool of worker threads drains the (bounded) submission queue
// through ShardedPlanService::serve / serve_on and parks each result as a
// BatchCompletion. harvest() hands completions back, each EXACTLY once —
// the harvest-completeness law:
//
//   every submitted ticket appears in exactly one harvest() result,
//   whatever mix of hits, solves, joins, sheds and solver exceptions
//   its request produced.
//
// Sheds are NORMAL completions (outcome kShed, no plan) — overload is data,
// not an error. A solver exception becomes a completion with a non-empty
// `error` and no plan; nothing is ever silently dropped. Backpressure is by
// blocking: submit() waits for queue room instead of failing, so a bursty
// producer is throttled to what the workers drain (admission-control sheds
// inside the tier still bound each worker's latency).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/sharded/sharded_service.h"

namespace sompi {

struct BatchConfig {
  /// Worker threads draining the submission queue.
  std::size_t workers = 4;
  /// Submission-queue bound; submit() blocks while full.
  std::size_t queue_capacity = 1024;
  /// false: workers call serve() (ring-routed). true: workers call
  /// serve_on(ticket % shards) — a round-robin spray that exercises the
  /// cross-shard dedup path on every request.
  bool spray = false;
};

struct BatchCompletion {
  std::uint64_t ticket = 0;
  PlanResponse response;
  /// Non-empty iff the solve threw; response.plan is null then.
  std::string error;
};

class AsyncBatchService {
 public:
  /// `tier` is borrowed and must outlive this service.
  AsyncBatchService(ShardedPlanService* tier, BatchConfig config);
  /// Joins the workers; unharvested completions are discarded with the
  /// object (call drain() + harvest() first if they matter).
  ~AsyncBatchService();

  AsyncBatchService(const AsyncBatchService&) = delete;
  AsyncBatchService& operator=(const AsyncBatchService&) = delete;

  /// Enqueues one request, blocking while the queue is full. Returns the
  /// ticket its completion will carry. Must not be called after stop().
  std::uint64_t submit(const PlanRequest& request);

  /// Enqueues a batch; returns the tickets in request order.
  std::vector<std::uint64_t> submit_batch(const std::vector<PlanRequest>& requests);

  /// Like submit(), but the request is served via serve_on(landing_shard)
  /// regardless of config.spray — the wire server uses this to record which
  /// connection (= which shard's listener) a request physically arrived on,
  /// so the tier's routed/sprayed/forwarded ledger reflects the CLIENT's
  /// routing quality, not the worker pool's.
  std::uint64_t submit_on(std::size_t landing_shard, const PlanRequest& request);

  /// Bulk submit_on: enqueues the whole batch under ONE queue-lock
  /// acquisition and wakes the workers once, instead of once per request —
  /// on a loaded (or single-core) host that is the difference between a
  /// burst costing one context switch and costing N. Returns the tickets in
  /// request order. Blocks in waves if the batch exceeds free queue room.
  std::vector<std::uint64_t> submit_many_on(std::size_t landing_shard,
                                            const std::vector<PlanRequest>& requests);

  /// Takes up to `max` finished completions (0 = all available), in
  /// completion order. Never blocks; each completion is returned once.
  std::vector<BatchCompletion> harvest(std::size_t max = 0);

  /// Blocks until at least one completion is available (or the timeout
  /// passes, or stop() was called and no more can arrive), then harvests as
  /// harvest(max). An empty result after a timeout is normal backpressure.
  std::vector<BatchCompletion> harvest_wait(std::chrono::milliseconds timeout,
                                            std::size_t max = 0);

  /// Blocks until every submitted request has completed (queue empty and no
  /// worker mid-request). Completions then await harvest().
  void drain();

  /// Stops accepting submissions, drains the queue, joins the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t harvested = 0;
    std::uint64_t errors = 0;  ///< completions with non-empty error
    std::size_t max_queue_depth = 0;
  };
  Stats stats() const;

 private:
  struct Pending {
    std::uint64_t ticket = 0;
    PlanRequest request;
    /// Set by submit_on(): serve via serve_on(*landing) instead of the
    /// config-selected path.
    std::optional<std::size_t> landing;
  };

  std::uint64_t enqueue(const PlanRequest& request, std::optional<std::size_t> landing);
  void worker_loop();
  void complete(BatchCompletion completion);

  ShardedPlanService* tier_;
  BatchConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< waits: submit (room), workers (work)
  std::condition_variable idle_cv_;   ///< waits: drain (pending empty, none in flight)
  std::condition_variable done_cv_;   ///< waits: harvest_wait (a completion landed)
  std::deque<Pending> pending_;
  std::vector<BatchCompletion> completed_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t completed_count_ = 0;
  std::uint64_t harvested_count_ = 0;
  std::uint64_t error_count_ = 0;
  std::size_t max_queue_depth_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace sompi
