// ShardedPlanService — a multi-shard deployment simulation of the plan
// serving tier (DESIGN.md §13).
//
//   request ──canonicalize──► ShardRouter (consistent-hash ring)
//                                  │ home shard
//                                  ▼
//        ┌───────────── CrossShardDedup (forward + solve ledger) ─────────┐
//        ▼                         ▼                                      ▼
//   PlanService[0]            PlanService[1]        ...          PlanService[N-1]
//   MarketBoard[0] ◄──────────BoardFanout (one epoch sequence)──► MarketBoard[N-1]
//
// Every shard is a full PlanService over its own MarketBoard replica; one
// BoardFanout publishes every market update to all replicas under a
// versioned barrier, so each epoch names the same frozen market on every
// shard. Requests route to the ring owner of their canonical key — via
// serve() directly, or via serve_on(), which models a load balancer that
// sprayed the request onto an arbitrary shard: the cross-shard dedup tier
// forwards it home, so a burst of identical requests landing on N different
// shards still collapses onto ONE flight (the home shard's single-flight)
// and solves exactly once.
//
// The equivalence contract, enforced by tests rather than convention:
// for ANY request stream and ANY shard count, every response's
// plan_fingerprint is bit-identical to the single-shard oracle's at the
// same epoch, and the aggregate counters obey the conservation laws
//
//   Σ_shard requests == tier requests,    hits + solves + joins + sheds == requests,
//   solves per (canonical key, epoch) == 1   (absent cache-wipe chaos).
//
// The solve ledger that proves the last law is built in: every shard's
// solve hook is wrapped to record (shard, key, epoch) in a tier-level map,
// so duplicate_solves() is an exact census, not a sampled one.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "service/board_fanout.h"
#include "service/plan_service.h"
#include "service/sharded/shard_router.h"

namespace sompi {

struct ShardedConfig {
  std::size_t shards = 1;
  /// Ring points per shard (see RouterConfig::vnodes).
  std::size_t vnodes = 64;
  /// Ring salt; part of the pure routing function.
  std::uint64_t salt = 0;
  /// Per-shard service template. `service.cache.capacity` is the TIER-WIDE
  /// entry budget: each shard gets the even split, rounded up (with affine
  /// routing a shard only ever caches its own key subset, so the ceil split
  /// plus PlanCache's global-budget eviction keeps hit/miss classification
  /// identical to one big cache for evenly routed key sets — the regression
  /// in test_plan_cache_edges.cpp). solve_hook is composed with, not
  /// replaced by, the tier's solve ledger.
  ServiceConfig service;
};

/// Aggregate tier statistics: summed per-shard counters plus the sharding-
/// specific ones.
struct ShardedStats {
  /// Counter-wise sum over shards. solve_p50_ms/p99_ms (and their replan_*
  /// twins) are the WORST shard's percentiles (summing percentiles is
  /// meaningless); epoch is the fan-out's common epoch.
  ServiceStats total;
  std::vector<ServiceStats> per_shard;
  std::uint64_t routed = 0;     ///< serve() calls (ring-routed at the tier door)
  std::uint64_t sprayed = 0;    ///< serve_on() calls (landed on a caller-chosen shard)
  std::uint64_t forwarded = 0;  ///< sprayed calls whose landing shard was not home
  std::uint64_t duplicate_solves = 0;  ///< solves beyond the first per (key, epoch)
};

class ShardedPlanService {
 public:
  /// `catalog` and `estimator` are borrowed and must outlive the tier. Each
  /// shard's MarketBoard replica is primed with a copy of `initial`; all
  /// replicas therefore start at epoch 1 with bit-identical content.
  ShardedPlanService(const Catalog* catalog, const ExecTimeEstimator* estimator,
                     const Market& initial, ShardedConfig config);

  /// Serves at the canonical key's home shard (ring-routed).
  PlanResponse serve(const PlanRequest& request);

  /// Serves a request that a (simulated) load balancer dropped on
  /// `landing_shard`: the dedup tier forwards it to the home shard, where
  /// shard-local single-flight collapses concurrent identical requests from
  /// every landing shard onto one solve.
  PlanResponse serve_on(std::size_t landing_shard, const PlanRequest& request);

  /// Non-blocking warm-hit fast path for front ends (the wire server's
  /// reader threads): if the request's home shard holds an epoch-current
  /// cached plan, serves it — counted exactly like a serve_on() hit
  /// (sprayed, and forwarded when `landing_shard` is not home) — and
  /// returns it. Otherwise returns nullopt with NO counter movement; the
  /// caller falls through to serve_on(), which owns all accounting,
  /// single-flight, shed and error semantics (including invalid requests).
  std::optional<PlanResponse> try_serve_hit(std::size_t landing_shard,
                                            const PlanRequest& request);

  /// The ring owner of a request / an already-canonical key.
  std::size_t home_shard(const PlanRequest& request) const;
  std::size_t home_shard_for_key(const std::string& canonical_key) const;

  /// The single epoch-publication entry point: ingesting here bumps every
  /// shard's replica under the fan-out barrier.
  BoardFanout& fanout() { return *fanout_; }

  std::size_t shard_count() const { return services_.size(); }
  PlanService& shard(std::size_t i) { return *services_[i]; }
  MarketBoard& board(std::size_t i) { return *boards_[i]; }
  const ShardRouter& router() const { return router_; }

  /// Sum of per-shard stale sweeps.
  std::size_t invalidate_stale();

  ShardedStats stats() const;

  /// Distinct (canonical key, epoch) pairs solved anywhere in the tier.
  std::size_t distinct_solves() const;
  /// Solves beyond the first per (key, epoch) — 0 is the dedup-tier
  /// soundness invariant (cache-wipe chaos may legitimately raise it).
  std::uint64_t duplicate_solves() const;

  /// The tier-wide per-shard cache budget for a given total (exposed so
  /// tests can pin the split rule).
  static std::size_t per_shard_cache_capacity(std::size_t total, std::size_t shards);

  const ShardedConfig& config() const { return config_; }

 private:
  void record_solve(std::size_t shard, const std::string& key, std::uint64_t epoch);

  ShardedConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<MarketBoard>> boards_;
  std::vector<std::unique_ptr<PlanService>> services_;
  std::unique_ptr<BoardFanout> fanout_;

  std::atomic<std::uint64_t> routed_{0};
  std::atomic<std::uint64_t> sprayed_{0};
  std::atomic<std::uint64_t> forwarded_{0};

  mutable std::mutex ledger_mutex_;
  std::map<std::pair<std::string, std::uint64_t>, std::uint64_t> solve_counts_;
  std::uint64_t duplicate_solves_ = 0;
};

}  // namespace sompi
