#include "service/sharded/shard_router.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace sompi {

namespace {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t value) {
  std::uint64_t state = value;
  return splitmix64(state);
}

}  // namespace

ShardRouter::ShardRouter(RouterConfig config) : config_(config) {
  SOMPI_REQUIRE(config_.shards >= 1);
  SOMPI_REQUIRE(config_.vnodes >= 1);
  ring_.reserve(config_.shards * config_.vnodes);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    for (std::size_t v = 0; v < config_.vnodes; ++v) {
      // Point = mix(salt, shard, vnode): a shard's points do not move when
      // other shards join or leave — the heart of ring stability.
      const std::uint64_t point =
          mix64(config_.salt ^ (static_cast<std::uint64_t>(s) * 0x9E3779B97F4A7C15ULL) ^
                (static_cast<std::uint64_t>(v) * 0xD1B54A32D192ED03ULL) ^
                0x5CA1AB1E0FULL);
      ring_.emplace_back(point, static_cast<std::uint32_t>(s));
    }
  }
  // Equal points tie-break on shard id so the ring order never depends on
  // insertion order.
  std::sort(ring_.begin(), ring_.end());
}

std::uint64_t ShardRouter::key_point(const std::string& canonical_key, std::uint64_t salt) {
  return mix64(fnv1a64(canonical_key) ^ salt ^ 0x0FF1CE5EEDULL);
}

std::size_t ShardRouter::route(const std::string& canonical_key) const {
  const std::uint64_t point = key_point(canonical_key, config_.salt);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, std::uint32_t{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap past the highest point
  return it->second;
}

}  // namespace sompi
