#include "service/sharded/batch.h"

#include <algorithm>
#include <iterator>

#include "common/error.h"

namespace sompi {

AsyncBatchService::AsyncBatchService(ShardedPlanService* tier, BatchConfig config)
    : tier_(tier), config_(config) {
  SOMPI_REQUIRE(tier_ != nullptr);
  SOMPI_REQUIRE(config_.workers >= 1);
  SOMPI_REQUIRE(config_.queue_capacity >= 1);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

AsyncBatchService::~AsyncBatchService() { stop(); }

std::uint64_t AsyncBatchService::submit(const PlanRequest& request) {
  return enqueue(request, std::nullopt);
}

std::uint64_t AsyncBatchService::submit_on(std::size_t landing_shard,
                                           const PlanRequest& request) {
  SOMPI_REQUIRE(landing_shard < tier_->shard_count());
  return enqueue(request, landing_shard);
}

std::uint64_t AsyncBatchService::enqueue(const PlanRequest& request,
                                         std::optional<std::size_t> landing) {
  std::unique_lock<std::mutex> lock(mutex_);
  queue_cv_.wait(lock, [this] { return stopping_ || pending_.size() < config_.queue_capacity; });
  SOMPI_REQUIRE_MSG(!stopping_, "submit() after stop()");
  const std::uint64_t ticket = next_ticket_++;
  pending_.push_back(Pending{ticket, request, landing});
  max_queue_depth_ = std::max(max_queue_depth_, pending_.size());
  lock.unlock();
  queue_cv_.notify_all();
  return ticket;
}

std::vector<std::uint64_t> AsyncBatchService::submit_many_on(
    std::size_t landing_shard, const std::vector<PlanRequest>& requests) {
  SOMPI_REQUIRE(landing_shard < tier_->shard_count());
  std::vector<std::uint64_t> tickets;
  tickets.reserve(requests.size());
  std::size_t next = 0;
  while (next < requests.size()) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || pending_.size() < config_.queue_capacity; });
      SOMPI_REQUIRE_MSG(!stopping_, "submit_many_on() after stop()");
      while (next < requests.size() && pending_.size() < config_.queue_capacity) {
        const std::uint64_t ticket = next_ticket_++;
        pending_.push_back(Pending{ticket, requests[next], landing_shard});
        tickets.push_back(ticket);
        ++next;
      }
      max_queue_depth_ = std::max(max_queue_depth_, pending_.size());
    }
    queue_cv_.notify_all();
  }
  return tickets;
}

std::vector<std::uint64_t> AsyncBatchService::submit_batch(
    const std::vector<PlanRequest>& requests) {
  std::vector<std::uint64_t> tickets;
  tickets.reserve(requests.size());
  for (const PlanRequest& request : requests) tickets.push_back(submit(request));
  return tickets;
}

void AsyncBatchService::worker_loop() {
  for (;;) {
    Pending work;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping_ and drained
      work = std::move(pending_.front());
      pending_.pop_front();
      ++in_flight_;
    }
    // A pop may have opened queue room for a blocked submitter.
    queue_cv_.notify_all();

    BatchCompletion completion;
    completion.ticket = work.ticket;
    try {
      if (work.landing.has_value())
        completion.response = tier_->serve_on(*work.landing, work.request);
      else
        completion.response =
            config_.spray
                ? tier_->serve_on(static_cast<std::size_t>(work.ticket % tier_->shard_count()),
                                  work.request)
                : tier_->serve(work.request);
    } catch (const std::exception& e) {
      completion.error = e.what();
    } catch (...) {
      completion.error = "unknown solve failure";
    }
    complete(std::move(completion));
  }
}

void AsyncBatchService::complete(BatchCompletion completion) {
  bool idle;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!completion.error.empty()) ++error_count_;
    completed_.push_back(std::move(completion));
    ++completed_count_;
    --in_flight_;
    idle = pending_.empty() && in_flight_ == 0;
  }
  done_cv_.notify_all();
  if (idle) idle_cv_.notify_all();
}

std::vector<BatchCompletion> AsyncBatchService::harvest(std::size_t max) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BatchCompletion> out;
  const std::size_t n =
      (max == 0) ? completed_.size() : std::min(max, completed_.size());
  out.assign(std::make_move_iterator(completed_.begin()),
             std::make_move_iterator(completed_.begin() + static_cast<std::ptrdiff_t>(n)));
  completed_.erase(completed_.begin(), completed_.begin() + static_cast<std::ptrdiff_t>(n));
  harvested_count_ += n;
  return out;
}

std::vector<BatchCompletion> AsyncBatchService::harvest_wait(
    std::chrono::milliseconds timeout, std::size_t max) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait_for(lock, timeout, [this] {
      return !completed_.empty() ||
             (stopping_ && pending_.empty() && in_flight_ == 0);
    });
  }
  return harvest(max);
}

void AsyncBatchService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_.empty() && in_flight_ == 0; });
}

void AsyncBatchService::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
  done_cv_.notify_all();  // unblock harvest_wait: nothing more can arrive
}

AsyncBatchService::Stats AsyncBatchService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.submitted = next_ticket_ - 1;
  s.completed = completed_count_;
  s.harvested = harvested_count_;
  s.errors = error_count_;
  s.max_queue_depth = max_queue_depth_;
  return s;
}

}  // namespace sompi
