#include "service/request.h"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/error.h"

namespace sompi {

namespace {

/// Doubles are keyed by bit pattern: "%.17g" round-trips but is longer and
/// slower, and the key must distinguish values that differ in the last ulp —
/// the optimizer would.
void put_double(std::ostringstream& os, const char* tag, double value) {
  os << tag << '=' << std::hex << std::bit_cast<std::uint64_t>(value) << std::dec << '|';
}

/// Length-prefixed so a name containing '|' or '=' cannot forge field
/// boundaries.
void put_string(std::ostringstream& os, const char* tag, const std::string& value) {
  os << tag << '=' << value.size() << ':' << value << '|';
}

void put_names(std::ostringstream& os, const char* tag,
               const std::vector<std::string>& names) {
  os << tag << '=' << names.size() << '[';
  for (const std::string& name : names) os << name.size() << ':' << name << '|';
  os << ']';
}

void sort_unique(std::vector<std::string>& names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace

PlanRequest canonicalized(PlanRequest request) {
  SOMPI_REQUIRE_MSG(request.deadline_h > 0.0, "PlanRequest.deadline_h must be positive");
  SOMPI_REQUIRE_MSG(request.app.processes >= 1, "PlanRequest.app.processes must be >= 1");
  sort_unique(request.allowed_types);
  sort_unique(request.allowed_zones);
  return request;
}

std::string canonical_key(const PlanRequest& request) {
  std::ostringstream os;
  put_string(os, "app", request.app.name);
  os << "cat=" << static_cast<int>(request.app.category) << '|';
  os << "n=" << request.app.processes << '|';
  put_double(os, "instr", request.app.instr_gi);
  put_double(os, "comm", request.app.comm_gb);
  put_double(os, "msgs", request.app.msgs_per_rank);
  put_double(os, "ioseq", request.app.io_seq_gb);
  put_double(os, "iorand", request.app.io_rand_gb);
  put_double(os, "state", request.app.state_gb);
  put_double(os, "deadline", request.deadline_h);
  put_names(os, "types", request.allowed_types);
  put_names(os, "zones", request.allowed_zones);
  return os.str();
}

std::string plan_fingerprint(const Plan& plan) {
  std::ostringstream os;
  put_string(os, "app", plan.app);
  put_double(os, "step", plan.step_hours);
  put_double(os, "deadline", plan.deadline_h);
  put_double(os, "state", plan.state_gb);
  os << "od=" << plan.od.type_index << ',' << plan.od.instances << ','
     << plan.od.feasible << '|';
  put_double(os, "od_t", plan.od.t_h);
  put_double(os, "od_rate", plan.od.rate_usd_h);
  os << "groups=" << plan.groups.size() << '[';
  for (const GroupPlan& g : plan.groups) {
    os << g.spec.type_index << ',' << g.spec.zone_index << ',';
    put_string(os, "name", g.name);
    os << g.instances << ',' << g.t_steps << ',' << g.f_steps << ',';
    put_double(os, "o", g.o_steps);
    put_double(os, "r", g.r_steps);
    put_double(os, "bid", g.bid_usd);
    // The flat S3 policy is omitted so degenerate plans keep their
    // pre-multilevel fingerprints byte-for-byte.
    if (g.ckpt_policy != "s3") put_string(os, "ckpt", g.ckpt_policy);
  }
  os << ']';
  put_double(os, "ecost", plan.expected.cost_usd);
  put_double(os, "etime", plan.expected.time_h);
  put_double(os, "escost", plan.expected.spot_cost_usd);
  put_double(os, "eocost", plan.expected.od_cost_usd);
  put_double(os, "estime", plan.expected.spot_time_h);
  put_double(os, "eotime", plan.expected.od_time_h);
  put_double(os, "pspot", plan.expected.p_complete_on_spot);
  put_double(os, "eratio", plan.expected.e_min_ratio);
  os << "feasible=" << plan.spot_feasible << '|';
  // model_evaluations is deterministic (same inputs ⇒ same count), so it
  // belongs in the fingerprint; optimize_seconds is wall time and does not.
  os << "evals=" << plan.model_evaluations;
  return os.str();
}

}  // namespace sompi
