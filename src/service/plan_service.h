// PlanService — the long-lived, thread-safe planning front end.
//
// Request flow (see DESIGN.md "Serving layer"):
//
//   serve(request)
//     ├─ canonicalize + validate against the catalog
//     ├─ snapshot the MarketBoard        → (epoch, frozen market)
//     ├─ plan-cache lookup (key, epoch)  → kHit   (O(1), no solve)
//     ├─ join an in-flight solve         → kJoined (blocks on its result)
//     ├─ admission control               → kShed  (queue full — explicit
//     │                                    overload, never silent latency)
//     └─ run the optimizer once          → kSolved (result cached + shared
//                                          with every joiner)
//
// Single-flight: at most ONE optimizer run exists per (canonical request,
// epoch) at any moment; concurrent identical requests block on the owner's
// result instead of duplicating the solve. Combined with the optimizer's
// determinism contract (DESIGN.md §6d) this makes caching invisible: a hit
// returns a plan bit-identical (plan_fingerprint) to a fresh solve at the
// same epoch.
//
// Admission control bounds the solver: at most max_concurrent_solves
// optimizer runs execute at once, at most max_queued_solves callers wait for
// a free slot, and everyone beyond that is shed immediately with
// PlanOutcome::kShed (or OverloadError from plan_or_throw) so overload
// surfaces as an explicit signal instead of unbounded queueing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/optimizer.h"
#include "faultinject/injector.h"
#include "service/market_board.h"
#include "service/plan_cache.h"
#include "service/request.h"

namespace sompi {

/// Thrown by plan_or_throw when admission control sheds the request.
class OverloadError : public std::runtime_error {
 public:
  explicit OverloadError(const std::string& what) : std::runtime_error(what) {}
};

enum class PlanOutcome {
  kHit,     ///< served from the plan cache
  kSolved,  ///< this call ran the optimizer
  kJoined,  ///< deduplicated onto another call's in-flight solve
  kShed,    ///< rejected by admission control; no plan
};

const char* outcome_label(PlanOutcome outcome);

struct PlanResponse {
  PlanOutcome outcome = PlanOutcome::kShed;
  /// Market epoch the plan is valid for (set even when shed).
  std::uint64_t epoch = 0;
  /// Immutable shared plan; nullptr iff shed.
  std::shared_ptr<const Plan> plan;
};

/// Monotonic counters + solve-latency percentiles, snapshotted atomically
/// enough for monitoring (counters are individually exact; the set is not a
/// consistent cut).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t solves = 0;
  std::uint64_t dedup_joins = 0;
  std::uint64_t sheds = 0;
  std::uint64_t stale_evicted = 0;  ///< cache entries reclaimed on epoch bumps
  double solve_seconds_total = 0.0;
  // Cumulative optimizer work across all solves (from Plan::model_evaluations
  // / Plan::stats): how much search the service actually ran, and how much
  // the branch-and-bound fast path avoided.
  std::uint64_t model_evaluations = 0;      ///< logical (exhaustive-scan) count
  std::uint64_t evaluations_performed = 0;  ///< evaluations actually run
  std::uint64_t tuples_pruned = 0;          ///< bid tuples skipped by pruning
  std::uint64_t subsets_pruned = 0;         ///< whole subsets skipped
  /// Solves whose winning plan uses a non-flat checkpoint-level policy in at
  /// least one group (ckpt_policy != "s3") — how often the multi-level
  /// hierarchy actually beat the flat S3 path.
  std::uint64_t multilevel_plans = 0;
  // Warm-start re-planning (ServiceConfig::warm_replan; DESIGN.md §14). A
  // *re-plan* is a solve of a scope that already produced a plan — the case
  // an epoch bump used to turn into a full cold solve.
  std::uint64_t replan_count = 0;
  /// Re-plans whose previous plan seeded the branch-and-bound incumbent.
  std::uint64_t warm_seeds = 0;
  /// Per-group cost-table blocks reused from / rebuilt into the table store
  /// across all solves (incremental engine; exact, not sampled).
  std::uint64_t replan_table_hits = 0;
  std::uint64_t replan_table_misses = 0;
  /// Percentiles over the trailing ServiceConfig::latency_window solves
  /// (0 when nothing has been solved yet).
  double solve_p50_ms = 0.0;
  double solve_p99_ms = 0.0;
  /// Same, over re-plan solves only — the epoch-churn latency the warm
  /// start exists to shrink.
  double replan_p50_ms = 0.0;
  double replan_p99_ms = 0.0;
  std::size_t cache_entries = 0;
  std::uint64_t epoch = 0;
};

struct ServiceConfig {
  PlanCache::Config cache;
  /// Optimizer runs allowed to execute concurrently.
  std::size_t max_concurrent_solves = 2;
  /// Callers allowed to wait for a solve slot; beyond this, requests shed.
  /// (Joiners of an in-flight solve never queue — they hold no slot.)
  std::size_t max_queued_solves = 16;
  /// Trailing solve latencies kept for the p50/p99 snapshot.
  std::size_t latency_window = 512;
  /// Shared by every solve. threads=1 (the default) is the right setting for
  /// a loaded service: parallelism comes from concurrent requests, not from
  /// fanning one solve across the pool.
  OptimizerConfig opt;
  /// Warm-start re-planning (DESIGN.md §14): epoch bumps trigger an
  /// incremental re-plan — per-group cost tables are reused from the scope's
  /// previous solve unless that group's history version moved, and the
  /// previous plan seeds the branch-and-bound incumbent — instead of a
  /// cache-drop-and-cold-solve. Plans stay bit-identical to solve() (the
  /// cold oracle); the knob trades table_store memory for re-plan latency.
  bool warm_replan = true;
  /// Byte cap etc. of the warm-start artifact store.
  CostTableStore::Config table_store;
  /// Test seam: runs on the owning thread right before each optimizer run
  /// with the flight's (canonical key, epoch). Lets tests hold a flight open
  /// (latches) and count solves per key; never set in production.
  std::function<void(const std::string& key, std::uint64_t epoch)> solve_hook;
  /// Chaos hook (borrowed; never set in production): when the injector's
  /// kServiceShed channel fires for a request's canonical key, serve() sheds
  /// it as if admission control had — exercising every caller's overload
  /// path under a seeded schedule.
  fi::FaultInjector* faults = nullptr;
};

class PlanService {
 public:
  /// `catalog`, `estimator` and `board` are borrowed and must outlive the
  /// service.
  PlanService(const Catalog* catalog, const ExecTimeEstimator* estimator,
              MarketBoard* board, ServiceConfig config);

  /// Serves one request; blocks while joining or solving. Overload is
  /// reported as PlanOutcome::kShed. A solve failure (e.g. a precondition
  /// violation inside the optimizer) propagates as an exception to the owner
  /// AND to every joiner of that flight.
  PlanResponse serve(const PlanRequest& request);

  /// Like serve(), but sheds become OverloadError.
  std::shared_ptr<const Plan> plan_or_throw(const PlanRequest& request);

  /// Non-blocking cache probe on an ALREADY-CANONICAL key: if the current
  /// epoch holds a cached plan for it, counts the request as a served hit
  /// and returns it; otherwise returns nullopt WITHOUT touching any counter
  /// — the caller falls through to serve(), which does its own accounting.
  /// Never sheds, joins a flight, or blocks on a solve (injected shed chaos
  /// rolls only on the serve() path). The wire server uses this to answer
  /// warm hits inline in its reader thread instead of paying the worker and
  /// pump handoffs.
  std::optional<PlanResponse> try_cached(const std::string& canonical_key);

  /// Eagerly drops cache entries older than every epoch any in-progress
  /// request could still ask for (the *sweep horizon*: the board's current
  /// epoch, clamped to the oldest epoch registered by a live serve call).
  /// Returns the number dropped. serve() runs this sweep automatically the
  /// first time it observes each new epoch; exposed for drivers that want
  /// deterministic reclamation points.
  std::size_t invalidate_stale();

  /// Chaos seam: drops EVERY cache entry, current epoch included, counting
  /// them as stale_evicted. Correctness-neutral by the cache contract (a
  /// wiped entry re-solves to a bit-identical plan) but it deliberately
  /// breaks the "exactly one solve per (request, epoch)" economy — the
  /// sharded chaos battery uses it to prove the tier survives a shard
  /// losing its cache mid-flight.
  std::size_t wipe_cache();

  ServiceStats stats() const;

  /// The deterministic reference solve behind every flight: exactly what a
  /// cache hit promises to be bit-identical to — and what a warm re-plan
  /// promises too (this is always the COLD path; it never touches the table
  /// store). Public so tests and benches can compare against it.
  Plan solve(const PlanRequest& canonical_request, const Market& market) const;

  /// Counters of the warm-start artifact store (zeroes with warm_replan off).
  CostTableStore::Stats table_store_stats() const { return table_store_.stats(); }

  const ServiceConfig& config() const { return config_; }

 private:
  struct Flight {
    std::promise<std::shared_ptr<const Plan>> promise;
    std::shared_future<std::shared_ptr<const Plan>> future;
  };
  /// RAII registration of a live serve call's epoch floor. While any
  /// registration at epoch e exists, the stale sweep never removes entries
  /// at e or newer — that is what makes "exactly one solve per (request,
  /// epoch)" exact even when epochs bump mid-request: a thread holding a
  /// pre-bump snapshot always finds the flight or the cached plan, never a
  /// swept hole.
  class EpochRegistration;

  void validate_names(const PlanRequest& request) const;
  void note_epoch(std::uint64_t epoch);
  /// board epoch clamped to the oldest registered live epoch.
  std::uint64_t sweep_horizon(std::uint64_t epoch) const;
  /// solve() with an optional warm-start context (nullptr = the cold path;
  /// solve() itself is exactly solve_with(..., nullptr)).
  Plan solve_with(const PlanRequest& canonical_request, const Market& market,
                  ReplanContext* ctx) const;
  void record_solve(double seconds, const Plan& plan, bool replan);
  /// Removes the flight, releases its solve slot, wakes queued waiters.
  void retire_flight(const std::string& flight_key);

  const Catalog* catalog_;
  const ExecTimeEstimator* estimator_;
  MarketBoard* board_;
  ServiceConfig config_;
  SompiOptimizer optimizer_;
  PlanCache cache_;
  /// Warm-start artifacts + last plan per scope. Internally locked; mutable
  /// so the const solve path can feed it through a ReplanContext.
  mutable CostTableStore table_store_;

  std::mutex mutex_;  ///< guards flights_, active_solves_, queued_
  std::condition_variable slot_cv_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
  std::size_t active_solves_ = 0;
  std::size_t queued_ = 0;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> solves_{0};
  std::atomic<std::uint64_t> dedup_joins_{0};
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::uint64_t> stale_evicted_{0};
  std::atomic<std::uint64_t> last_seen_epoch_{0};

  mutable std::mutex active_mutex_;
  std::multiset<std::uint64_t> active_epochs_;

  mutable std::mutex latency_mutex_;  ///< guards the per-solve accounting below
  double solve_seconds_total_ = 0.0;
  std::uint64_t model_evaluations_ = 0;
  std::uint64_t evaluations_performed_ = 0;
  std::uint64_t tuples_pruned_ = 0;
  std::uint64_t subsets_pruned_ = 0;
  std::uint64_t multilevel_plans_ = 0;
  std::uint64_t replan_count_ = 0;
  std::uint64_t warm_seeds_ = 0;
  std::uint64_t replan_table_hits_ = 0;
  std::uint64_t replan_table_misses_ = 0;
  std::vector<double> latency_ring_;
  std::size_t latency_next_ = 0;
  std::vector<double> replan_ring_;
  std::size_t replan_next_ = 0;
};

}  // namespace sompi
