#include "service/board_fanout.h"

#include <string>

#include "common/error.h"

namespace sompi {

BoardFanout::BoardFanout(std::vector<MarketBoard*> replicas) : boards_(std::move(replicas)) {
  SOMPI_REQUIRE_MSG(!boards_.empty(), "fan-out needs at least one replica");
  for (MarketBoard* board : boards_) SOMPI_REQUIRE(board != nullptr);
  const std::uint64_t first = boards_.front()->epoch();
  for (MarketBoard* board : boards_)
    SOMPI_REQUIRE_MSG(board->epoch() == first,
                      "fan-out replicas must start at one common epoch");
}

std::uint64_t BoardFanout::check_agreement(const std::vector<std::uint64_t>& epochs) const {
  for (std::size_t i = 1; i < epochs.size(); ++i)
    SOMPI_ASSERT_MSG(epochs[i] == epochs[0],
                     "replica " + std::to_string(i) + " diverged to epoch " +
                         std::to_string(epochs[i]) + " (primary at " +
                         std::to_string(epochs[0]) + ") — a board was bumped outside "
                         "the fan-out barrier");
  return epochs[0];
}

std::uint64_t BoardFanout::ingest(const std::vector<PriceUpdate>& updates) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> epochs;
  epochs.reserve(boards_.size());
  for (MarketBoard* board : boards_) epochs.push_back(board->ingest(updates));
  ++publications_;
  return check_agreement(epochs);
}

std::uint64_t BoardFanout::publish(Market next) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> epochs;
  epochs.reserve(boards_.size());
  for (MarketBoard* board : boards_) epochs.push_back(board->publish(next));
  ++publications_;
  return check_agreement(epochs);
}

std::uint64_t BoardFanout::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return boards_.front()->epoch();
}

std::uint64_t BoardFanout::publications() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return publications_;
}

}  // namespace sompi
