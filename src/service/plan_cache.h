// Sharded LRU cache of solved plans, keyed on (canonical request, epoch).
//
// The epoch is part of the key, so a market update never returns a stale
// plan — entries from dead epochs simply stop matching and age out of the
// LRU. erase_older_than() additionally reclaims them eagerly (the service
// calls it on epoch bumps) so a burst of updates cannot fill the cache with
// unreachable entries. Sharding keeps the hit path a single short critical
// section per shard instead of one global lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/plan.h"

namespace sompi {

class PlanCache {
 public:
  struct Config {
    /// Independent lock domains; requests hash over them by canonical key.
    std::size_t shards = 8;
    /// Total entry budget, enforced GLOBALLY across the lock shards: an
    /// insert evicts from its own shard's LRU tail only while the summed
    /// size exceeds this budget. The old per-shard even split silently
    /// shrank the effective capacity whenever keys skewed across shards —
    /// fatal once the cache sits behind a shard router, where a whole
    /// tier's key subset is pre-filtered by an outer hash (see
    /// test_plan_cache_edges.cpp). With the global budget, any key set of
    /// size <= capacity classifies hits and misses exactly like one
    /// unsharded cache would, regardless of skew.
    std::size_t capacity = 1024;
  };

  explicit PlanCache(Config config);

  /// The plan cached for (key, epoch), refreshing its LRU position;
  /// nullptr on miss.
  std::shared_ptr<const Plan> lookup(const std::string& key, std::uint64_t epoch);

  /// Caches a plan, evicting the shard's least-recently-used entries over
  /// budget. Re-inserting an existing (key, epoch) replaces the value.
  void insert(const std::string& key, std::uint64_t epoch,
              std::shared_ptr<const Plan> plan);

  /// Drops every entry with epoch < `epoch`; returns how many were dropped.
  std::size_t erase_older_than(std::uint64_t epoch);

  /// Entries currently cached (one atomic across shards; exact on any
  /// quiescent snapshot).
  std::size_t size() const;

  /// Monotonic hit-rate accounting. Each counter is individually exact
  /// (relaxed atomics bumped inside the shard critical sections); the set is
  /// not a consistent cut, but `hits <= lookups` and
  /// `lookups == hits + misses` hold for any quiescent snapshot — which is
  /// what the epoch-churn stress asserts.
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;      ///< LRU capacity evictions
    std::uint64_t stale_dropped = 0;  ///< removed by erase_older_than
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::uint64_t epoch = 0;
    std::shared_ptr<const Plan> plan;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  static std::string index_key(const std::string& key, std::uint64_t epoch);
  Shard& shard_for(const std::string& key) const;

  std::size_t capacity_;
  /// unique_ptr because Shard (mutex) is immovable and the count is dynamic.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Summed shard sizes, maintained inside the shard critical sections; the
  /// global budget is enforced against this (transient overshoot under
  /// concurrent inserts is bounded by the number of inserting threads).
  std::atomic<std::size_t> total_size_{0};

  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> stale_dropped_{0};
};

}  // namespace sompi
