// Sharded LRU cache of solved plans, keyed on (canonical request, epoch).
//
// The epoch is part of the key, so a market update never returns a stale
// plan — entries from dead epochs simply stop matching and age out of the
// LRU. erase_older_than() additionally reclaims them eagerly (the service
// calls it on epoch bumps) so a burst of updates cannot fill the cache with
// unreachable entries. Sharding keeps the hit path a single short critical
// section per shard instead of one global lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/plan.h"

namespace sompi {

class PlanCache {
 public:
  struct Config {
    /// Independent lock domains; requests hash over them by canonical key.
    std::size_t shards = 8;
    /// Total entry budget across all shards (per-shard budget is the even
    /// split, rounded up, so small caches still hold at least one entry per
    /// shard).
    std::size_t capacity = 1024;
  };

  explicit PlanCache(Config config);

  /// The plan cached for (key, epoch), refreshing its LRU position;
  /// nullptr on miss.
  std::shared_ptr<const Plan> lookup(const std::string& key, std::uint64_t epoch);

  /// Caches a plan, evicting the shard's least-recently-used entries over
  /// budget. Re-inserting an existing (key, epoch) replaces the value.
  void insert(const std::string& key, std::uint64_t epoch,
              std::shared_ptr<const Plan> plan);

  /// Drops every entry with epoch < `epoch`; returns how many were dropped.
  std::size_t erase_older_than(std::uint64_t epoch);

  /// Entries currently cached (sums shard sizes; approximate under
  /// concurrent mutation).
  std::size_t size() const;

  /// Monotonic hit-rate accounting. Each counter is individually exact
  /// (relaxed atomics bumped inside the shard critical sections); the set is
  /// not a consistent cut, but `hits <= lookups` and
  /// `lookups == hits + misses` hold for any quiescent snapshot — which is
  /// what the epoch-churn stress asserts.
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;      ///< LRU capacity evictions
    std::uint64_t stale_dropped = 0;  ///< removed by erase_older_than
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::uint64_t epoch = 0;
    std::shared_ptr<const Plan> plan;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  static std::string index_key(const std::string& key, std::uint64_t epoch);
  Shard& shard_for(const std::string& key) const;

  std::size_t per_shard_capacity_;
  /// unique_ptr because Shard (mutex) is immovable and the count is dynamic.
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> stale_dropped_{0};
};

}  // namespace sompi
