#include "service/plan_service.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/error.h"
#include "common/stats.h"

namespace sompi {

const char* outcome_label(PlanOutcome outcome) {
  switch (outcome) {
    case PlanOutcome::kHit: return "hit";
    case PlanOutcome::kSolved: return "solved";
    case PlanOutcome::kJoined: return "joined";
    case PlanOutcome::kShed: return "shed";
  }
  return "?";
}

PlanService::PlanService(const Catalog* catalog, const ExecTimeEstimator* estimator,
                         MarketBoard* board, ServiceConfig config)
    : catalog_(catalog),
      estimator_(estimator),
      board_(board),
      config_(std::move(config)),
      optimizer_(catalog, estimator, config_.opt),
      cache_(config_.cache),
      table_store_(config_.table_store) {
  SOMPI_REQUIRE(catalog_ != nullptr && estimator_ != nullptr && board_ != nullptr);
  SOMPI_REQUIRE(config_.max_concurrent_solves >= 1);
  SOMPI_REQUIRE(config_.latency_window >= 1);
  latency_ring_.reserve(config_.latency_window);
  replan_ring_.reserve(config_.latency_window);
}

void PlanService::validate_names(const PlanRequest& request) const {
  // type_index / zone_index throw with the offending name — fail fast,
  // before the request can occupy a cache slot or a solve slot.
  for (const std::string& name : request.allowed_types) (void)catalog_->type_index(name);
  for (const std::string& name : request.allowed_zones) (void)catalog_->zone_index(name);
}

class PlanService::EpochRegistration {
 public:
  EpochRegistration(PlanService* service, std::uint64_t epoch) : service_(service) {
    std::lock_guard<std::mutex> lock(service_->active_mutex_);
    it_ = service_->active_epochs_.insert(epoch);
  }
  ~EpochRegistration() {
    std::lock_guard<std::mutex> lock(service_->active_mutex_);
    service_->active_epochs_.erase(it_);
  }
  EpochRegistration(const EpochRegistration&) = delete;
  EpochRegistration& operator=(const EpochRegistration&) = delete;

 private:
  PlanService* service_;
  std::multiset<std::uint64_t>::iterator it_;
};

std::uint64_t PlanService::sweep_horizon(std::uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(active_mutex_);
  if (!active_epochs_.empty() && *active_epochs_.begin() < epoch)
    return *active_epochs_.begin();
  return epoch;
}

void PlanService::note_epoch(std::uint64_t epoch) {
  std::uint64_t seen = last_seen_epoch_.load(std::memory_order_relaxed);
  while (epoch > seen) {
    if (last_seen_epoch_.compare_exchange_weak(seen, epoch, std::memory_order_relaxed)) {
      // First request to observe a new epoch sweeps the dead ones — but
      // never past a live request's registered epoch (its entry or flight
      // must survive until it returns). Entries a clamped sweep leaves
      // behind are reclaimed by the next bump's sweep or by LRU pressure.
      stale_evicted_.fetch_add(cache_.erase_older_than(sweep_horizon(epoch)),
                               std::memory_order_relaxed);
      return;
    }
  }
}

std::size_t PlanService::invalidate_stale() {
  const std::size_t dropped = cache_.erase_older_than(sweep_horizon(board_->epoch()));
  stale_evicted_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

std::size_t PlanService::wipe_cache() {
  // Epochs are bounded by the board's (uint64 max is unreachable), so
  // "older than max" is "everything".
  const std::size_t dropped = cache_.erase_older_than(std::numeric_limits<std::uint64_t>::max());
  stale_evicted_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

void PlanService::record_solve(double seconds, const Plan& plan, bool replan) {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  solve_seconds_total_ += seconds;
  model_evaluations_ += plan.model_evaluations;
  evaluations_performed_ += plan.stats.evaluations;
  tuples_pruned_ += plan.stats.tuples_pruned;
  subsets_pruned_ += plan.stats.subsets_pruned;
  replan_table_hits_ += plan.stats.tables_reused;
  replan_table_misses_ += plan.stats.tables_built;
  warm_seeds_ += plan.stats.warm_seeds;
  for (const GroupPlan& g : plan.groups)
    if (g.ckpt_policy != "s3") {
      ++multilevel_plans_;
      break;
    }
  if (latency_ring_.size() < config_.latency_window) {
    latency_ring_.push_back(seconds);
  } else {
    latency_ring_[latency_next_] = seconds;
    latency_next_ = (latency_next_ + 1) % config_.latency_window;
  }
  if (replan) {
    ++replan_count_;
    if (replan_ring_.size() < config_.latency_window) {
      replan_ring_.push_back(seconds);
    } else {
      replan_ring_[replan_next_] = seconds;
      replan_next_ = (replan_next_ + 1) % config_.latency_window;
    }
  }
}

void PlanService::retire_flight(const std::string& flight_key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    flights_.erase(flight_key);
    --active_solves_;
  }
  slot_cv_.notify_all();
}

PlanResponse PlanService::serve(const PlanRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const PlanRequest canon = canonicalized(request);
  validate_names(canon);
  const std::string key = canonical_key(canon);

  // Register an epoch floor BEFORE taking the snapshot: the floor is at most
  // the snapshot's epoch (epochs are monotonic), so from here until return no
  // concurrent sweep can evict the (key, epoch) entry or flight this request
  // may come to depend on. Registering after the snapshot would leave a
  // window where a bump + sweep races ahead of the registration.
  const EpochRegistration registration(this, board_->epoch());
  const MarketSnapshot snap = board_->snapshot();
  note_epoch(snap.epoch);

  // Injected shed pressure: same contract as a real admission-control shed
  // (explicit kShed outcome, epoch reported, no plan).
  if (config_.faults != nullptr && config_.faults->fires(fi::Channel::kServiceShed, key)) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    return {PlanOutcome::kShed, snap.epoch, nullptr};
  }

  if (auto plan = cache_.lookup(key, snap.epoch)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return {PlanOutcome::kHit, snap.epoch, std::move(plan)};
  }

  const std::string flight_key = key + '@' + std::to_string(snap.epoch);
  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (const auto it = flights_.find(flight_key); it != flights_.end()) {
        flight = it->second;
        break;
      }
      // A flight for this key may have finished between the lock-free miss
      // above and acquiring the lock (or while queued): its result is in
      // the cache, and solving again would break single-flight accounting.
      if (auto plan = cache_.lookup(key, snap.epoch)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return {PlanOutcome::kHit, snap.epoch, std::move(plan)};
      }
      if (active_solves_ < config_.max_concurrent_solves) {
        ++active_solves_;
        flight = std::make_shared<Flight>();
        flight->future = flight->promise.get_future().share();
        flights_.emplace(flight_key, flight);
        owner = true;
        break;
      }
      if (queued_ >= config_.max_queued_solves) {
        sheds_.fetch_add(1, std::memory_order_relaxed);
        return {PlanOutcome::kShed, snap.epoch, nullptr};
      }
      ++queued_;
      slot_cv_.wait(lock);
      --queued_;
    }
  }

  if (!owner) {
    dedup_joins_.fetch_add(1, std::memory_order_relaxed);
    // Rethrows the owner's exception if its solve failed.
    auto plan = flight->future.get();
    return {PlanOutcome::kJoined, snap.epoch, std::move(plan)};
  }

  std::shared_ptr<const Plan> result;
  try {
    if (config_.solve_hook) config_.solve_hook(key, snap.epoch);
    // Warm start (DESIGN.md §14): hand the optimizer this scope's cached
    // artifacts, the snapshot's per-group history versions (so only dirty
    // groups rebuild), and the previous plan as the incumbent seed. A
    // *re-plan* is a solve whose scope already produced a plan — exactly
    // the work an epoch bump used to do from scratch.
    ReplanContext ctx;
    bool replan = false;
    if (config_.warm_replan) {
      ctx.store = &table_store_;
      ctx.scope = key;
      ctx.versions = snap.versions;
      ctx.incumbent = table_store_.last_plan(key);
      replan = ctx.incumbent != nullptr;
    }
    const auto t0 = std::chrono::steady_clock::now();
    Plan plan = solve_with(canon, *snap.market, config_.warm_replan ? &ctx : nullptr);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    result = std::make_shared<const Plan>(std::move(plan));
    // Cache BEFORE retiring the flight: at every instant a concurrent
    // identical request finds either the flight or the cached plan, so one
    // (request, epoch) burst can never trigger a second solve.
    cache_.insert(key, snap.epoch, result);
    if (config_.warm_replan) table_store_.note_plan(key, result);
    record_solve(seconds, *result, replan);
    solves_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    flight->promise.set_exception(std::current_exception());
    retire_flight(flight_key);
    throw;
  }
  flight->promise.set_value(result);
  retire_flight(flight_key);
  return {PlanOutcome::kSolved, snap.epoch, std::move(result)};
}

std::optional<PlanResponse> PlanService::try_cached(const std::string& canonical_key) {
  // Same floor-before-snapshot discipline as serve(): while this probe is
  // live no sweep can evict the entry it is about to return.
  const EpochRegistration registration(this, board_->epoch());
  const MarketSnapshot snap = board_->snapshot();
  note_epoch(snap.epoch);
  if (auto plan = cache_.lookup(canonical_key, snap.epoch)) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return PlanResponse{PlanOutcome::kHit, snap.epoch, std::move(plan)};
  }
  return std::nullopt;
}

std::shared_ptr<const Plan> PlanService::plan_or_throw(const PlanRequest& request) {
  PlanResponse response = serve(request);
  if (response.outcome == PlanOutcome::kShed)
    throw OverloadError("plan service overloaded: " + std::to_string(config_.max_queued_solves) +
                        " callers already queued for a solve slot");
  return std::move(response.plan);
}

Plan PlanService::solve(const PlanRequest& canon, const Market& market) const {
  return solve_with(canon, market, nullptr);
}

Plan PlanService::solve_with(const PlanRequest& canon, const Market& market,
                             ReplanContext* ctx) const {
  if (canon.allowed_types.empty() && canon.allowed_zones.empty())
    return optimizer_.optimize(canon.app, market, canon.deadline_h, ctx);

  const auto allowed = [](const std::vector<std::string>& names, const std::string& name) {
    return names.empty() || std::binary_search(names.begin(), names.end(), name);
  };

  // The on-demand recovery tier obeys the type constraint too (zones are a
  // spot-market concept — OnDemandChoice is type-only). Same semantics as
  // OnDemandSelector::select, restricted to the allowed types: cheapest
  // full-run cost within Deadline × (1 − slack), else the fastest allowed
  // tier marked infeasible. Selected before the candidate setups because
  // the warm setup lookup hashes it.
  const OnDemandSelector selector(catalog_, estimator_);
  const double budget_h = canon.deadline_h * (1.0 - config_.opt.slack);
  OnDemandChoice best;
  OnDemandChoice fastest;
  double best_cost = std::numeric_limits<double>::infinity();
  double fastest_t = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < catalog_->types().size(); ++d) {
    if (!allowed(canon.allowed_types, catalog_->type(d).name)) continue;
    OnDemandChoice c = selector.describe(d, canon.app);
    if (c.t_h < fastest_t) {
      fastest_t = c.t_h;
      fastest = c;
    }
    if (c.t_h > budget_h) continue;
    c.feasible = true;
    if (c.full_cost_usd() < best_cost) {
      best_cost = c.full_cost_usd();
      best = c;
    }
  }
  if (!best.feasible) best = fastest;  // describe() leaves feasible = false

  // SetupBuilder::build_candidates filtered to the allowed groups, with each
  // build routed through the warm store: same specs, same catalog order,
  // same deadline cutoff as the cold path (filtering before building is
  // what lets a constrained scope skip disallowed groups' Monte-Carlo).
  std::vector<GroupSetup> candidates;
  for (const CircleGroupSpec& spec : catalog_->all_groups()) {
    if (!allowed(canon.allowed_types, catalog_->type(spec.type_index).name) ||
        !allowed(canon.allowed_zones, catalog_->zone(spec.zone_index).name))
      continue;
    const double t_h = estimator_->hours(canon.app, catalog_->type(spec.type_index),
                                         catalog_->zone(spec.zone_index).name);
    if (t_h > canon.deadline_h) continue;
    candidates.push_back(optimizer_.setup_for(canon.app, spec, market, best,
                                              canon.deadline_h, ctx));
  }

  return optimizer_.optimize_over(canon.app, std::move(candidates), best, canon.deadline_h, ctx);
}

ServiceStats PlanService::stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.solves = solves_.load(std::memory_order_relaxed);
  s.dedup_joins = dedup_joins_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  s.stale_evicted = stale_evicted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    s.solve_seconds_total = solve_seconds_total_;
    s.model_evaluations = model_evaluations_;
    s.evaluations_performed = evaluations_performed_;
    s.tuples_pruned = tuples_pruned_;
    s.subsets_pruned = subsets_pruned_;
    s.multilevel_plans = multilevel_plans_;
    s.replan_count = replan_count_;
    s.warm_seeds = warm_seeds_;
    s.replan_table_hits = replan_table_hits_;
    s.replan_table_misses = replan_table_misses_;
    if (!latency_ring_.empty()) {
      s.solve_p50_ms = percentile(latency_ring_, 0.50) * 1e3;
      s.solve_p99_ms = percentile(latency_ring_, 0.99) * 1e3;
    }
    if (!replan_ring_.empty()) {
      s.replan_p50_ms = percentile(replan_ring_, 0.50) * 1e3;
      s.replan_p99_ms = percentile(replan_ring_, 0.99) * 1e3;
    }
  }
  s.cache_entries = cache_.size();
  s.epoch = board_->epoch();
  return s;
}

}  // namespace sompi
