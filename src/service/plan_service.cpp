#include "service/plan_service.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/error.h"
#include "common/stats.h"

namespace sompi {

const char* outcome_label(PlanOutcome outcome) {
  switch (outcome) {
    case PlanOutcome::kHit: return "hit";
    case PlanOutcome::kSolved: return "solved";
    case PlanOutcome::kJoined: return "joined";
    case PlanOutcome::kShed: return "shed";
  }
  return "?";
}

PlanService::PlanService(const Catalog* catalog, const ExecTimeEstimator* estimator,
                         MarketBoard* board, ServiceConfig config)
    : catalog_(catalog),
      estimator_(estimator),
      board_(board),
      config_(std::move(config)),
      optimizer_(catalog, estimator, config_.opt),
      cache_(config_.cache) {
  SOMPI_REQUIRE(catalog_ != nullptr && estimator_ != nullptr && board_ != nullptr);
  SOMPI_REQUIRE(config_.max_concurrent_solves >= 1);
  SOMPI_REQUIRE(config_.latency_window >= 1);
  latency_ring_.reserve(config_.latency_window);
}

void PlanService::validate_names(const PlanRequest& request) const {
  // type_index / zone_index throw with the offending name — fail fast,
  // before the request can occupy a cache slot or a solve slot.
  for (const std::string& name : request.allowed_types) (void)catalog_->type_index(name);
  for (const std::string& name : request.allowed_zones) (void)catalog_->zone_index(name);
}

class PlanService::EpochRegistration {
 public:
  EpochRegistration(PlanService* service, std::uint64_t epoch) : service_(service) {
    std::lock_guard<std::mutex> lock(service_->active_mutex_);
    it_ = service_->active_epochs_.insert(epoch);
  }
  ~EpochRegistration() {
    std::lock_guard<std::mutex> lock(service_->active_mutex_);
    service_->active_epochs_.erase(it_);
  }
  EpochRegistration(const EpochRegistration&) = delete;
  EpochRegistration& operator=(const EpochRegistration&) = delete;

 private:
  PlanService* service_;
  std::multiset<std::uint64_t>::iterator it_;
};

std::uint64_t PlanService::sweep_horizon(std::uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(active_mutex_);
  if (!active_epochs_.empty() && *active_epochs_.begin() < epoch)
    return *active_epochs_.begin();
  return epoch;
}

void PlanService::note_epoch(std::uint64_t epoch) {
  std::uint64_t seen = last_seen_epoch_.load(std::memory_order_relaxed);
  while (epoch > seen) {
    if (last_seen_epoch_.compare_exchange_weak(seen, epoch, std::memory_order_relaxed)) {
      // First request to observe a new epoch sweeps the dead ones — but
      // never past a live request's registered epoch (its entry or flight
      // must survive until it returns). Entries a clamped sweep leaves
      // behind are reclaimed by the next bump's sweep or by LRU pressure.
      stale_evicted_.fetch_add(cache_.erase_older_than(sweep_horizon(epoch)),
                               std::memory_order_relaxed);
      return;
    }
  }
}

std::size_t PlanService::invalidate_stale() {
  const std::size_t dropped = cache_.erase_older_than(sweep_horizon(board_->epoch()));
  stale_evicted_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

std::size_t PlanService::wipe_cache() {
  // Epochs are bounded by the board's (uint64 max is unreachable), so
  // "older than max" is "everything".
  const std::size_t dropped = cache_.erase_older_than(std::numeric_limits<std::uint64_t>::max());
  stale_evicted_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

void PlanService::record_solve(double seconds, const Plan& plan) {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  solve_seconds_total_ += seconds;
  model_evaluations_ += plan.model_evaluations;
  evaluations_performed_ += plan.stats.evaluations;
  tuples_pruned_ += plan.stats.tuples_pruned;
  subsets_pruned_ += plan.stats.subsets_pruned;
  for (const GroupPlan& g : plan.groups)
    if (g.ckpt_policy != "s3") {
      ++multilevel_plans_;
      break;
    }
  if (latency_ring_.size() < config_.latency_window) {
    latency_ring_.push_back(seconds);
  } else {
    latency_ring_[latency_next_] = seconds;
    latency_next_ = (latency_next_ + 1) % config_.latency_window;
  }
}

void PlanService::retire_flight(const std::string& flight_key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    flights_.erase(flight_key);
    --active_solves_;
  }
  slot_cv_.notify_all();
}

PlanResponse PlanService::serve(const PlanRequest& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const PlanRequest canon = canonicalized(request);
  validate_names(canon);
  const std::string key = canonical_key(canon);

  // Register an epoch floor BEFORE taking the snapshot: the floor is at most
  // the snapshot's epoch (epochs are monotonic), so from here until return no
  // concurrent sweep can evict the (key, epoch) entry or flight this request
  // may come to depend on. Registering after the snapshot would leave a
  // window where a bump + sweep races ahead of the registration.
  const EpochRegistration registration(this, board_->epoch());
  const MarketSnapshot snap = board_->snapshot();
  note_epoch(snap.epoch);

  // Injected shed pressure: same contract as a real admission-control shed
  // (explicit kShed outcome, epoch reported, no plan).
  if (config_.faults != nullptr && config_.faults->fires(fi::Channel::kServiceShed, key)) {
    sheds_.fetch_add(1, std::memory_order_relaxed);
    return {PlanOutcome::kShed, snap.epoch, nullptr};
  }

  if (auto plan = cache_.lookup(key, snap.epoch)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return {PlanOutcome::kHit, snap.epoch, std::move(plan)};
  }

  const std::string flight_key = key + '@' + std::to_string(snap.epoch);
  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (const auto it = flights_.find(flight_key); it != flights_.end()) {
        flight = it->second;
        break;
      }
      // A flight for this key may have finished between the lock-free miss
      // above and acquiring the lock (or while queued): its result is in
      // the cache, and solving again would break single-flight accounting.
      if (auto plan = cache_.lookup(key, snap.epoch)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return {PlanOutcome::kHit, snap.epoch, std::move(plan)};
      }
      if (active_solves_ < config_.max_concurrent_solves) {
        ++active_solves_;
        flight = std::make_shared<Flight>();
        flight->future = flight->promise.get_future().share();
        flights_.emplace(flight_key, flight);
        owner = true;
        break;
      }
      if (queued_ >= config_.max_queued_solves) {
        sheds_.fetch_add(1, std::memory_order_relaxed);
        return {PlanOutcome::kShed, snap.epoch, nullptr};
      }
      ++queued_;
      slot_cv_.wait(lock);
      --queued_;
    }
  }

  if (!owner) {
    dedup_joins_.fetch_add(1, std::memory_order_relaxed);
    // Rethrows the owner's exception if its solve failed.
    auto plan = flight->future.get();
    return {PlanOutcome::kJoined, snap.epoch, std::move(plan)};
  }

  std::shared_ptr<const Plan> result;
  try {
    if (config_.solve_hook) config_.solve_hook(key, snap.epoch);
    const auto t0 = std::chrono::steady_clock::now();
    Plan plan = solve(canon, *snap.market);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    result = std::make_shared<const Plan>(std::move(plan));
    // Cache BEFORE retiring the flight: at every instant a concurrent
    // identical request finds either the flight or the cached plan, so one
    // (request, epoch) burst can never trigger a second solve.
    cache_.insert(key, snap.epoch, result);
    record_solve(seconds, *result);
    solves_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    flight->promise.set_exception(std::current_exception());
    retire_flight(flight_key);
    throw;
  }
  flight->promise.set_value(result);
  retire_flight(flight_key);
  return {PlanOutcome::kSolved, snap.epoch, std::move(result)};
}

std::shared_ptr<const Plan> PlanService::plan_or_throw(const PlanRequest& request) {
  PlanResponse response = serve(request);
  if (response.outcome == PlanOutcome::kShed)
    throw OverloadError("plan service overloaded: " + std::to_string(config_.max_queued_solves) +
                        " callers already queued for a solve slot");
  return std::move(response.plan);
}

Plan PlanService::solve(const PlanRequest& canon, const Market& market) const {
  if (canon.allowed_types.empty() && canon.allowed_zones.empty())
    return optimizer_.optimize(canon.app, market, canon.deadline_h);

  const auto allowed = [](const std::vector<std::string>& names, const std::string& name) {
    return names.empty() || std::binary_search(names.begin(), names.end(), name);
  };

  SetupBuilder builder(catalog_, estimator_);
  std::vector<GroupSetup> candidates =
      builder.build_candidates(canon.app, market, config_.opt.setup, canon.deadline_h);
  std::erase_if(candidates, [&](const GroupSetup& g) {
    return !allowed(canon.allowed_types, catalog_->type(g.spec.type_index).name) ||
           !allowed(canon.allowed_zones, catalog_->zone(g.spec.zone_index).name);
  });

  // The on-demand recovery tier obeys the type constraint too (zones are a
  // spot-market concept — OnDemandChoice is type-only). Same semantics as
  // OnDemandSelector::select, restricted to the allowed types: cheapest
  // full-run cost within Deadline × (1 − slack), else the fastest allowed
  // tier marked infeasible.
  const OnDemandSelector selector(catalog_, estimator_);
  const double budget_h = canon.deadline_h * (1.0 - config_.opt.slack);
  OnDemandChoice best;
  OnDemandChoice fastest;
  double best_cost = std::numeric_limits<double>::infinity();
  double fastest_t = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < catalog_->types().size(); ++d) {
    if (!allowed(canon.allowed_types, catalog_->type(d).name)) continue;
    OnDemandChoice c = selector.describe(d, canon.app);
    if (c.t_h < fastest_t) {
      fastest_t = c.t_h;
      fastest = c;
    }
    if (c.t_h > budget_h) continue;
    c.feasible = true;
    if (c.full_cost_usd() < best_cost) {
      best_cost = c.full_cost_usd();
      best = c;
    }
  }
  if (!best.feasible) best = fastest;  // describe() leaves feasible = false

  return optimizer_.optimize_over(canon.app, std::move(candidates), best, canon.deadline_h);
}

ServiceStats PlanService::stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.solves = solves_.load(std::memory_order_relaxed);
  s.dedup_joins = dedup_joins_.load(std::memory_order_relaxed);
  s.sheds = sheds_.load(std::memory_order_relaxed);
  s.stale_evicted = stale_evicted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    s.solve_seconds_total = solve_seconds_total_;
    s.model_evaluations = model_evaluations_;
    s.evaluations_performed = evaluations_performed_;
    s.tuples_pruned = tuples_pruned_;
    s.subsets_pruned = subsets_pruned_;
    s.multilevel_plans = multilevel_plans_;
    if (!latency_ring_.empty()) {
      s.solve_p50_ms = percentile(latency_ring_, 0.50) * 1e3;
      s.solve_p99_ms = percentile(latency_ring_, 0.99) * 1e3;
    }
  }
  s.cache_entries = cache_.size();
  s.epoch = board_->epoch();
  return s;
}

}  // namespace sompi
