// The serving layer's view of the spot market.
//
// A MarketBoard owns the authoritative Market and versions it with a
// monotonically increasing *market epoch*. Readers take an immutable
// snapshot (epoch + shared_ptr to a frozen Market) and plan against that;
// writers ingest price updates copy-on-write, so a snapshot taken before an
// update keeps planning against exactly the world it saw. The epoch is what
// the plan cache keys on: a plan computed at epoch e is valid for every
// request that arrives while the board is still at e, and silently obsolete
// the moment the market moves.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/market.h"

namespace sompi {

/// New trailing price steps for one circle group, at the market's step size.
struct PriceUpdate {
  CircleGroupSpec group;
  std::vector<double> prices;
};

/// An immutable view of the market at one epoch. The Market behind the
/// pointer is frozen: boards never mutate a published snapshot.
struct MarketSnapshot {
  std::uint64_t epoch = 0;
  std::shared_ptr<const Market> market;
  /// Per-group history versions, indexed by catalog ordinal
  /// (type_index·zones + zone_index); see MarketBoard::group_versions().
  /// Frozen like the market (copy-on-write).
  std::shared_ptr<const std::vector<std::uint64_t>> versions;
};

class MarketBoard {
 public:
  /// Publishes `initial` as epoch 1.
  explicit MarketBoard(Market initial);

  /// Current epoch and market; O(1), never blocks on a solve.
  MarketSnapshot snapshot() const;

  std::uint64_t epoch() const;

  /// Replaces the whole market (e.g. a fresh feed reconnect); returns the
  /// new epoch.
  std::uint64_t publish(Market next);

  /// Appends new price steps to the named groups' traces. One ingest is one
  /// atomic world transition: all updates land under a single epoch bump.
  /// Returns the new epoch. No-op updates (empty list) still bump the epoch
  /// so callers can force invalidation; the group versions stay put in that
  /// case (no history moved), which is exactly what lets a warm re-plan
  /// reuse every cached table across a forced bump.
  std::uint64_t ingest(const std::vector<PriceUpdate>& updates);

  /// Per-group monotone history versions, indexed by catalog ordinal
  /// (type_index·zones + zone_index). A group's version is the epoch at
  /// which its trace content last changed: the constructor and publish()
  /// stamp every group, ingest() stamps only the named groups. Two
  /// snapshots whose versions agree at ordinal g have bit-identical traces
  /// for group g — the invalidation key of the warm-start CostTableStore.
  std::shared_ptr<const std::vector<std::uint64_t>> group_versions() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t epoch_ = 0;
  std::shared_ptr<const Market> market_;
  std::shared_ptr<const std::vector<std::uint64_t>> versions_;
};

}  // namespace sompi
