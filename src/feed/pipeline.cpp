#include "feed/pipeline.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/error.h"
#include "common/rng.h"

namespace sompi::feed {

FeedPipeline::FeedPipeline(MarketBoard* board, FeedConfig config)
    : FeedPipeline(nullptr,
                   std::make_unique<BoardFanout>(std::vector<MarketBoard*>{board}),
                   config) {}

FeedPipeline::FeedPipeline(BoardFanout* fanout, FeedConfig config)
    : FeedPipeline(fanout, nullptr, config) {}

FeedPipeline::FeedPipeline(BoardFanout* fanout, std::unique_ptr<BoardFanout> owned,
                           FeedConfig config)
    : owned_fanout_(std::move(owned)),
      fanout_(fanout != nullptr ? fanout : owned_fanout_.get()),
      config_(config) {
  SOMPI_REQUIRE(fanout_ != nullptr);
  SOMPI_REQUIRE(config_.window_steps > 0);
  SOMPI_REQUIRE(config_.publish_every > 0);
  SOMPI_REQUIRE(config_.late_horizon >= 1);
  SOMPI_REQUIRE(config_.queue_capacity > 0);

  const MarketSnapshot snap = fanout_->primary()->snapshot();
  const Market& market = *snap.market;
  const Catalog& catalog = market.catalog();
  zones_ = catalog.zones().size();
  group_count_ = catalog.types().size() * zones_;
  SOMPI_REQUIRE_MSG(market.group_count() == group_count_,
                    "board market must cover the full catalog");

  // Delta publication withholds all-gap columns, so board traces may have
  // unequal lengths; the feed timeline restarts at the longest one.
  base_step_ = 0;
  for (std::size_t t = 0; t < catalog.types().size(); ++t)
    for (std::size_t z = 0; z < zones_; ++z)
      base_step_ = std::max<std::uint64_t>(base_step_, market.trace({t, z}).steps());
  step_hours_ = market.trace({0, 0}).step_hours();
  groups_.reserve(group_count_);
  for (std::size_t t = 0; t < catalog.types().size(); ++t) {
    for (std::size_t z = 0; z < zones_; ++z) {
      const CircleGroupSpec spec{t, z};
      const SpotTrace& trace = market.trace(spec);
      GroupState g;
      g.group = spec;
      g.know = base_step_;
      g.last_value = trace.empty() ? 0.0 : trace.price(trace.steps() - 1);
      const std::size_t prime = std::min<std::size_t>(config_.window_steps, trace.steps());
      g.window_trace = prime > 0 ? trace.window(trace.steps() - prime, prime)
                                 : SpotTrace(step_hours_, {});
      groups_.push_back(std::move(g));
    }
  }
}

FeedPipeline::~FeedPipeline() { stop(); }

void FeedPipeline::mix(std::uint64_t value) {
  std::uint64_t state = digest_ ^ (value + 0x9E3779B97F4A7C15ULL);
  digest_ = splitmix64(state);
}

std::uint64_t FeedPipeline::ingest(TickSource& source) {
  std::uint64_t count = 0;
  while (std::optional<Tick> tick = source.next()) {
    offer(*tick);
    ++count;
  }
  return count;
}

void FeedPipeline::offer(const Tick& tick) {
  std::lock_guard<std::mutex> lock(mutex_);
  apply_tick_locked(tick);
}

void FeedPipeline::apply_tick_locked(const Tick& tick) {
  SOMPI_REQUIRE_MSG(tick.group.type_index * zones_ + tick.group.zone_index < group_count_,
                    "tick group outside the catalog");
  SOMPI_REQUIRE_MSG(tick.price >= 0.0, "tick price must be non-negative");
  ++stats_.ticks_ingested;
  GroupState& g = groups_[group_ordinal(tick.group, zones_)];
  if (tick.step < base_step_ + g.resolved) {
    // The step already froze (committed or gap-filled): a straggler beyond
    // the late horizon, or a duplicate of an already-resolved observation.
    ++stats_.late_dropped;
    return;
  }
  if (g.pending.count(tick.step) != 0) {
    ++stats_.duplicates_dropped;
    return;
  }
  g.pending.emplace(tick.step, tick.price);
  g.know = std::max(g.know, tick.step + 1);
  resolve_group_locked(g);
  commit_ready_locked();
}

void FeedPipeline::resolve_group_locked(GroupState& g) {
  for (;;) {
    const std::uint64_t s = base_step_ + g.resolved;
    const auto it = g.pending.find(s);
    if (it != g.pending.end()) {
      g.buf.emplace_back(it->second, false);
      g.last_value = it->second;
      g.pending.erase(it);
      ++g.resolved;
    } else if (g.know >= s + config_.late_horizon) {
      // The group's own stream ran late_horizon steps past s without an
      // observation: declare it lost and carry the last value forward. This
      // depends only on the group's stream, never on other groups' arrivals.
      g.buf.emplace_back(g.last_value, true);
      ++g.resolved;
    } else {
      return;
    }
  }
}

void FeedPipeline::commit_ready_locked() {
  for (;;) {
    bool ready = true;
    for (const GroupState& g : groups_)
      if (g.buf.empty()) {
        ready = false;
        break;
      }
    if (!ready) return;

    const std::uint64_t step = base_step_ + stats_.committed_steps;
    for (std::size_t ordinal = 0; ordinal < groups_.size(); ++ordinal) {
      GroupState& g = groups_[ordinal];
      const auto [price, is_gap] = g.buf.front();
      g.buf.pop_front();
      if (is_gap) {
        ++stats_.gaps_filled;
      } else {
        ++stats_.committed_values;
        ++g.accum_real;
      }
      g.window_trace.append(price);
      // Amortized trim: rebuild to the trailing window only when the trace
      // has doubled, keeping the per-commit append O(1) amortized.
      if (g.window_trace.steps() > 2 * config_.window_steps)
        g.window_trace = g.window_trace.window(
            g.window_trace.steps() - config_.window_steps, config_.window_steps);
      g.publish_accum.push_back(price);
      mix(step);
      mix(ordinal);
      mix(std::bit_cast<std::uint64_t>(price));
    }
    ++stats_.committed_steps;
    ++rows_in_batch_;
    if (rows_in_batch_ == config_.publish_every) publish_batch_locked();
  }
}

void FeedPipeline::publish_batch_locked() {
  if (rows_in_batch_ == 0) return;
  const auto started = std::chrono::steady_clock::now();
  // Delta publication: only groups that resolved at least one REAL tick in
  // this batch publish their column. An all-gap column is pure carry-forward
  // — the group heard nothing — and appending it would move that group's
  // board history (changing its failure-model input bits) for no new
  // information, which would defeat warm re-plan table reuse. Whether a
  // column is all-gap depends only on the group's own stream, so the
  // withhold/publish split is deterministic at any producer count.
  std::vector<PriceUpdate> updates;
  std::vector<CircleGroupSpec> changed;
  updates.reserve(groups_.size());
  for (GroupState& g : groups_) {
    if (g.accum_real > 0) {
      changed.push_back(g.group);
      updates.push_back(PriceUpdate{g.group, std::move(g.publish_accum)});
    } else {
      ++stats_.columns_withheld;
    }
    g.publish_accum.clear();
    g.accum_real = 0;
  }
  if (updates.empty()) {
    // Nothing changed anywhere: suppress the batch outright — no epoch bump,
    // no publish record. Suppression is itself deterministic, so skipping
    // the epoch/end_step digest mixes keeps the digest schedule-invariant.
    ++stats_.batches_suppressed;
    rows_in_batch_ = 0;
    return;
  }
  const std::uint64_t epoch = fanout_->ingest(updates);
  ++stats_.epochs_published;
  if (config_.estimate) estimate_locked(epoch);

  PublishRecord record;
  record.epoch = epoch;
  record.rows = rows_in_batch_;
  record.end_step = base_step_ + stats_.committed_steps;
  record.changed_groups = std::move(changed);
  record.publish_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  mix(epoch);
  mix(record.end_step);
  for (const CircleGroupSpec& spec : record.changed_groups)
    mix(group_ordinal(spec, zones_));
  publish_log_.push_back(std::move(record));
  rows_in_batch_ = 0;
}

void FeedPipeline::estimate_locked(std::uint64_t epoch) {
  FeedEstimates out;
  out.epoch = epoch;
  out.window_end_step = base_step_ + stats_.committed_steps;
  out.groups.reserve(groups_.size());
  for (const GroupState& g : groups_) {
    GroupEstimate est;
    est.group = g.group;
    const std::size_t len = g.window_trace.steps();
    const std::size_t want = std::min<std::size_t>(config_.window_steps, len);
    if (want > 0) {
      const SpotTrace win = g.window_trace.window(len - want, want);
      est.window_max_price = win.max_price();
      if (est.window_max_price > 0.0) {
        est.bids = logarithmic_bid_grid(est.window_max_price, config_.estimate_bid_levels);
        const FailureModel model(win, est.bids, config_.estimation);
        est.expected_price.reserve(est.bids.size());
        est.mtbf_steps.reserve(est.bids.size());
        for (std::size_t b = 0; b < est.bids.size(); ++b) {
          est.expected_price.push_back(model.expected_price(b));
          est.mtbf_steps.push_back(model.mtbf(b));
        }
        ++stats_.estimates_computed;
      }
    }
    out.groups.push_back(std::move(est));
  }
  estimates_ = std::move(out);
}

void FeedPipeline::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  SOMPI_REQUIRE_MSG(!running_, "feed pipeline already running");
  queue_ = std::make_unique<TickQueue>(config_.queue_capacity);
  running_ = true;
  consumer_ = std::thread([this] {
    while (std::optional<Tick> tick = queue_->pop()) offer(*tick);
  });
}

bool FeedPipeline::enqueue(const Tick& tick) {
  TickQueue* queue = queue_.get();
  return queue != nullptr && queue->push(tick);
}

bool FeedPipeline::try_enqueue(const Tick& tick) {
  TickQueue* queue = queue_.get();
  return queue != nullptr && queue->try_push(tick);
}

std::uint64_t FeedPipeline::pump(TickSource& source) {
  std::uint64_t pushed = 0;
  while (std::optional<Tick> tick = source.next()) {
    if (!enqueue(*tick)) break;
    ++pushed;
  }
  return pushed;
}

void FeedPipeline::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
  }
  queue_->close();
  consumer_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
  last_queue_stats_ = queue_->stats();
}

bool FeedPipeline::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void FeedPipeline::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  SOMPI_REQUIRE_MSG(!running_, "stop() the pipeline before flush()");
  // Phase 1: force-resolve every pending observation (treat each group's
  // stream as infinitely advanced, so gaps below the last observation fill).
  for (GroupState& g : groups_) {
    while (!g.pending.empty()) {
      const std::uint64_t s = base_step_ + g.resolved;
      const auto it = g.pending.find(s);
      if (it != g.pending.end()) {
        g.buf.emplace_back(it->second, false);
        g.last_value = it->second;
        g.pending.erase(it);
      } else {
        g.buf.emplace_back(g.last_value, true);
      }
      ++g.resolved;
    }
  }
  // Phase 2: equalize — gap-fill short groups up to the longest column so
  // every resolved observation commits. The target is a pure function of the
  // per-group streams, so the flushed tail is deterministic too.
  std::uint64_t target = 0;
  for (const GroupState& g : groups_) target = std::max(target, g.resolved);
  for (GroupState& g : groups_) {
    while (g.resolved < target) {
      g.buf.emplace_back(g.last_value, true);
      ++g.resolved;
    }
  }
  commit_ready_locked();
  publish_batch_locked();
}

FeedStats FeedPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

TickQueue::Stats FeedPipeline::queue_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_ && queue_) return queue_->stats();
  return last_queue_stats_;
}

std::uint64_t FeedPipeline::commit_digest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return digest_;
}

std::vector<PublishRecord> FeedPipeline::publish_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return publish_log_;
}

FeedEstimates FeedPipeline::latest_estimates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return estimates_;
}

std::uint64_t FeedPipeline::frontier_step() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return base_step_ + stats_.committed_steps;
}

}  // namespace sompi::feed
