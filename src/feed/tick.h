// The unit of market ingestion: one spot-price observation for one circle
// group at one trace step.
//
// Ticks carry a *canonical* sequence number derived from their position in
// the market timeline — seq = step * group_count + group_ordinal — not from
// arrival order. Canonical numbering is what lets a sharded replay (one
// producer per group subset) and an unsharded replay assign identical
// sequence numbers to the same observation, which the pipeline's determinism
// contract (DESIGN.md §10) builds on.
#pragma once

#include <cstdint>
#include <optional>

#include "cloud/catalog.h"

namespace sompi::feed {

struct Tick {
  /// Canonical sequence number: step * group_count + ordinal(group).
  std::uint64_t seq = 0;
  CircleGroupSpec group;
  /// Absolute step index on the market timeline (step 0 = trace start).
  std::uint64_t step = 0;
  double price = 0.0;
};

/// Flat index of a circle group in a catalog: type_index * zones + zone_index
/// — the same ordering Market uses for its trace array.
inline std::size_t group_ordinal(const CircleGroupSpec& group, std::size_t zones) {
  return group.type_index * zones + group.zone_index;
}

/// Canonical sequence number for (step, group) in a catalog with
/// `group_count` circle groups.
inline std::uint64_t canonical_seq(std::uint64_t step, std::size_t ordinal,
                                   std::size_t group_count) {
  return step * static_cast<std::uint64_t>(group_count) +
         static_cast<std::uint64_t>(ordinal);
}

/// A pull-based stream of ticks. Sources are single-consumer: next() is not
/// thread-safe, but distinct sources are independent, so a sharded feed runs
/// one source per producer thread.
class TickSource {
 public:
  virtual ~TickSource() = default;

  /// The next tick, or nullopt when the stream is exhausted.
  virtual std::optional<Tick> next() = 0;
};

}  // namespace sompi::feed
