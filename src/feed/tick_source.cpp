#include "feed/tick_source.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/csv.h"
#include "common/error.h"

namespace sompi::feed {

namespace {

std::vector<CircleGroupSpec> groups_or_all(const Catalog& catalog,
                                           std::vector<CircleGroupSpec> groups) {
  if (groups.empty()) return catalog.all_groups();
  return groups;
}

std::string group_key(const CircleGroupSpec& g) {
  return std::to_string(g.type_index) + ':' + std::to_string(g.zone_index);
}

}  // namespace

// --- ReplayTickSource -------------------------------------------------------

ReplayTickSource::ReplayTickSource(const Market* market,
                                   std::vector<CircleGroupSpec> groups,
                                   std::uint64_t start_step, std::uint64_t steps)
    : market_(market),
      groups_(groups_or_all(market->catalog(), std::move(groups))),
      step_(start_step),
      zones_(market->catalog().zones().size()),
      group_count_(market->catalog().types().size() * market->catalog().zones().size()) {
  const std::uint64_t trace_len = market_->trace({0, 0}).steps();
  end_step_ = std::min(trace_len, start_step + steps);
}

std::optional<Tick> ReplayTickSource::next() {
  if (step_ >= end_step_ || groups_.empty()) return std::nullopt;
  const CircleGroupSpec g = groups_[group_cursor_];
  Tick tick;
  tick.group = g;
  tick.step = step_;
  tick.seq = canonical_seq(step_, group_ordinal(g, zones_), group_count_);
  tick.price = market_->trace(g).price(static_cast<std::size_t>(step_));
  if (++group_cursor_ == groups_.size()) {
    group_cursor_ = 0;
    ++step_;
  }
  return tick;
}

// --- SyntheticTickSource ----------------------------------------------------

SyntheticTickSource::SyntheticTickSource(const Catalog* catalog,
                                         std::vector<CircleGroupSpec> groups,
                                         Config config)
    : catalog_(catalog),
      config_(config),
      group_count_(catalog->types().size() * catalog->zones().size()) {
  const std::size_t zones = catalog_->zones().size();
  for (const CircleGroupSpec& g : groups_or_all(*catalog_, std::move(groups))) {
    Walk walk;
    walk.group = g;
    walk.ordinal = group_ordinal(g, zones);
    // Seeded from (seed, ordinal) alone: the walk is the same no matter
    // which shard the group lands in.
    std::uint64_t state =
        config_.seed ^ (0x9E3779B97F4A7C15ULL * (walk.ordinal + 1));
    walk.rng = Rng(splitmix64(state));
    walk.price = base_spot_price(catalog_->type(g.type_index));
    walks_.push_back(std::move(walk));
  }
}

std::optional<Tick> SyntheticTickSource::next() {
  if (emitted_steps_ >= config_.steps || walks_.empty()) return std::nullopt;
  Walk& walk = walks_[group_cursor_];
  const double base = base_spot_price(catalog_->type(walk.group.type_index));
  // Multiplicative walk with mild reversion toward the CALM base; spikes are
  // transient (they do not move the walk state), like real demand bursts.
  walk.price *= std::exp(walk.rng.normal(0.0, config_.sigma));
  walk.price = base * std::pow(walk.price / base, 0.995);
  walk.price = std::clamp(walk.price, 1e-4, 50.0 * base);
  double emitted = walk.price;
  if (walk.rng.bernoulli(config_.spike_p))
    emitted *= walk.rng.uniform(2.0, config_.spike_max_mult);

  Tick tick;
  tick.group = walk.group;
  tick.step = config_.start_step + emitted_steps_;
  tick.seq = canonical_seq(tick.step, walk.ordinal, group_count_);
  tick.price = emitted;
  if (++group_cursor_ == walks_.size()) {
    group_cursor_ = 0;
    ++emitted_steps_;
  }
  return tick;
}

// --- CsvTickSource ----------------------------------------------------------

CsvTickSource::CsvTickSource(const Catalog* catalog, const std::string& csv_text) {
  CsvParseStats parse_stats;
  const CsvTable table = parse_csv_lenient(csv_text, &parse_stats);
  stats_.ragged_skipped = parse_stats.ragged_skipped;
  stats_.rows_total = parse_stats.rows_parsed + parse_stats.ragged_skipped;

  const std::size_t c_step = table.column("step");
  const std::size_t c_type = table.column("type");
  const std::size_t c_zone = table.column("zone");
  const std::size_t c_price = table.column("price");
  const std::size_t zones = catalog->zones().size();
  const std::size_t group_count = catalog->types().size() * zones;

  std::unordered_set<std::uint64_t> seen;
  for (const auto& row : table.rows) {
    double step_value = 0.0;
    double price = 0.0;
    if (!csv_number(row[c_step], &step_value) || step_value < 0.0 ||
        step_value != std::floor(step_value) ||
        !csv_number(row[c_price], &price) || price < 0.0) {
      ++stats_.bad_number;
      continue;
    }
    std::size_t type_index = catalog->types().size();
    for (std::size_t i = 0; i < catalog->types().size(); ++i)
      if (catalog->types()[i].name == row[c_type]) type_index = i;
    std::size_t zone_index = zones;
    for (std::size_t i = 0; i < zones; ++i)
      if (catalog->zones()[i].name == row[c_zone]) zone_index = i;
    if (type_index == catalog->types().size() || zone_index == zones) {
      ++stats_.unknown_group;
      continue;
    }
    Tick tick;
    tick.group = CircleGroupSpec{type_index, zone_index};
    tick.step = static_cast<std::uint64_t>(step_value);
    tick.seq =
        canonical_seq(tick.step, group_ordinal(tick.group, zones), group_count);
    tick.price = price;
    if (!seen.insert(tick.seq).second) {
      ++stats_.duplicate_skipped;
      continue;
    }
    ticks_.push_back(tick);
    ++stats_.ticks_emitted;
  }
}

std::optional<Tick> CsvTickSource::next() {
  if (ticks_.empty()) return std::nullopt;
  Tick tick = ticks_.front();
  ticks_.pop_front();
  return tick;
}

// --- VectorTickSource -------------------------------------------------------

VectorTickSource::VectorTickSource(std::vector<Tick> ticks)
    : ticks_(std::move(ticks)) {}

std::optional<Tick> VectorTickSource::next() {
  if (cursor_ >= ticks_.size()) return std::nullopt;
  return ticks_[cursor_++];
}

// --- ChaosTickSource --------------------------------------------------------

ChaosTickSource::ChaosTickSource(TickSource* inner, fi::FaultInjector* faults)
    : inner_(inner), faults_(faults) {
  SOMPI_REQUIRE(inner_ != nullptr && faults_ != nullptr);
}

std::optional<Tick> ChaosTickSource::next() {
  while (out_.empty()) {
    std::optional<Tick> tick = inner_->next();
    if (!tick) {
      if (held_) {
        out_.push_back(*held_);
        held_.reset();
        break;
      }
      return std::nullopt;
    }
    const std::string key = group_key(tick->group);
    if (faults_->fires(fi::Channel::kFeedDrop, key)) {
      ++stats_.dropped;
      continue;
    }
    // The hold slot is rolled only when free; since each source is consumed
    // by one thread, the roll sequence per (channel, group) stream is still
    // deterministic.
    if (!held_ && faults_->fires(fi::Channel::kFeedLate, key)) {
      held_ = *tick;
      ++stats_.delayed;
      continue;
    }
    out_.push_back(*tick);
    if (faults_->fires(fi::Channel::kFeedDup, key)) {
      out_.push_back(*tick);
      ++stats_.duplicated;
    }
    if (held_) {
      out_.push_back(*held_);
      held_.reset();
    }
  }
  Tick tick = out_.front();
  out_.pop_front();
  return tick;
}

}  // namespace sompi::feed
