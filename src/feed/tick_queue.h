// Bounded MPSC tick queue with explicit backpressure.
//
// Producers either block (push) or get an immediate refusal (try_push) when
// the queue is at capacity — memory stays bounded no matter how far the
// producers outrun the consumer, and shedding is an explicit, counted event
// rather than silent growth. The queue imposes NO cross-producer ordering:
// the pipeline's determinism comes from per-group FIFO delivery (each group's
// ticks pushed by one producer, in stream order), which a mutex-protected
// FIFO preserves per producer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "feed/tick.h"

namespace sompi::feed {

class TickQueue {
 public:
  struct Stats {
    std::uint64_t pushed = 0;          ///< ticks accepted
    std::uint64_t popped = 0;          ///< ticks handed to the consumer
    std::uint64_t rejected_full = 0;   ///< try_push refusals (backpressure)
    std::uint64_t rejected_closed = 0; ///< pushes after close()
    std::uint64_t blocked_pushes = 0;  ///< pushes that had to wait for space
    std::size_t max_depth = 0;         ///< high-water mark
  };

  explicit TickQueue(std::size_t capacity);

  /// Blocks until space is available; false when the queue was closed.
  bool push(const Tick& tick);

  /// Never blocks; false when full (backpressure) or closed.
  bool try_push(const Tick& tick);

  /// Blocks until a tick is available; nullopt once closed AND drained.
  std::optional<Tick> pop();

  /// Wakes every blocked producer/consumer; subsequent pushes fail,
  /// remaining ticks still drain through pop().
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Tick> queue_;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace sompi::feed
