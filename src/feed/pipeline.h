// FeedPipeline — streaming spot-price ingestion driving windowed
// re-estimation and epoch publication (DESIGN.md §10).
//
// Ticks flow in from any mix of sources — synchronously (ingest/offer) or
// through a bounded MPSC queue with a consumer thread (start/enqueue/stop) —
// and are folded into a per-group *resolution frontier*:
//
//   * each group's next unresolved step resolves to its tick price the
//     moment that tick arrives, or to a gap-fill (the group's last resolved
//     price) once the group's own stream has advanced `late_horizon` steps
//     past it;
//   * a market row commits when EVERY group has resolved it; every
//     `publish_every` committed rows the batch is ingested into the
//     MarketBoard as one atomic epoch bump, and the per-group failure /
//     expected-price statistics are re-estimated over the trailing window;
//   * publication is *delta-precise*: only groups with at least one real
//     tick in the batch publish their column (all-gap columns are withheld —
//     a group that heard nothing must not have its board history move, or
//     downstream warm re-plans could not reuse its cached cost tables
//     bit-identically), and a batch in which no group changed is suppressed
//     entirely: no epoch bump, no publish record. Withholding is a pure
//     function of each group's own stream, so determinism is unaffected.
//
// Determinism: a group's resolved column is a pure function of that group's
// post-chaos tick stream (plus late_horizon and the primed last value) —
// never of cross-group arrival interleaving — so the committed price matrix,
// the epoch publication sequence, the re-estimated statistics, and the
// commit digest are bit-identical at any producer count, with or without a
// ChaosTickSource in front, for the same underlying streams.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/failure_model.h"
#include "feed/tick.h"
#include "feed/tick_queue.h"
#include "service/board_fanout.h"
#include "service/market_board.h"

namespace sompi::feed {

struct FeedConfig {
  /// Trailing steps kept per group for re-estimation (the adaptive loop's
  /// lookback, in steps).
  std::size_t window_steps = 96;
  /// Committed rows per epoch publication (the feed's T_m granularity).
  std::size_t publish_every = 16;
  /// Steps a group's stream may run ahead of an unresolved step before that
  /// step is declared lost and gap-filled. Bounds reordering tolerance AND
  /// pending-buffer memory.
  std::size_t late_horizon = 3;
  /// Bounded queue capacity for the concurrent mode.
  std::size_t queue_capacity = 1024;
  /// Re-estimate failure statistics on every publish.
  bool estimate = true;
  /// Bid levels of the per-group logarithmic grid used for estimates.
  std::size_t estimate_bid_levels = 6;
  /// Estimator knobs — deliberately small: this runs on the hot publish path.
  FailureEstimationConfig estimation = {.samples = 256, .horizon_steps = 64};
};

/// Monotonic pipeline counters. After flush() the conservation laws hold:
///   ticks_ingested == committed_values + duplicates_dropped + late_dropped
///   committed_values + gaps_filled == committed_steps * group_count
struct FeedStats {
  std::uint64_t ticks_ingested = 0;
  std::uint64_t duplicates_dropped = 0;  ///< step already pending or duplicate seq
  std::uint64_t late_dropped = 0;        ///< arrived after the step resolved
  std::uint64_t committed_values = 0;    ///< steps committed from a real tick
  std::uint64_t gaps_filled = 0;         ///< steps committed by carry-forward
  std::uint64_t committed_steps = 0;     ///< full market rows committed
  std::uint64_t epochs_published = 0;
  std::uint64_t estimates_computed = 0;  ///< per-group estimate recomputations
  /// All-gap group columns dropped from a batch (the group saw no real tick
  /// in the batch, so its board history must not move).
  std::uint64_t columns_withheld = 0;
  /// Batches where EVERY column was all-gap: no epoch bump at all.
  std::uint64_t batches_suppressed = 0;
};

/// One epoch publication, in order.
struct PublishRecord {
  std::uint64_t epoch = 0;
  std::uint64_t rows = 0;       ///< committed rows in this batch
  std::uint64_t end_step = 0;   ///< absolute market length after the batch
  /// The groups whose columns this epoch published — exactly those with at
  /// least one real tick in the batch. Disjoint from the withheld set and
  /// together with it covers the full catalog (the conservation law the
  /// delta tests assert). Never empty: an empty delta suppresses the batch.
  std::vector<CircleGroupSpec> changed_groups;
  /// Wall seconds spent in board ingest + re-estimation (monitoring only —
  /// never part of the commit digest).
  double publish_seconds = 0.0;
};

/// Windowed failure/price statistics for one group, re-estimated per epoch.
struct GroupEstimate {
  CircleGroupSpec group;
  double window_max_price = 0.0;       ///< H_i over the trailing window
  std::vector<double> bids;            ///< logarithmic grid over (0, H_i]
  std::vector<double> expected_price;  ///< S_i(P) per bid
  std::vector<double> mtbf_steps;      ///< mean time before failure per bid
};

struct FeedEstimates {
  std::uint64_t epoch = 0;          ///< board epoch these were computed for
  std::uint64_t window_end_step = 0;
  std::vector<GroupEstimate> groups;
};

class FeedPipeline {
 public:
  /// `board` is borrowed and must outlive the pipeline. The board's current
  /// market primes the timeline: its length is the first feed step and its
  /// trailing `window_steps` prime the estimation windows.
  FeedPipeline(MarketBoard* board, FeedConfig config);

  /// Replicated mode: one pipeline feeding every shard of a sharded serving
  /// tier. `fanout` is borrowed and must outlive the pipeline; each epoch
  /// publication goes through the fan-out's versioned barrier, so all
  /// replicas see the identical epoch sequence this pipeline commits. The
  /// primary replica primes the timeline exactly as the single-board ctor's
  /// board does.
  FeedPipeline(BoardFanout* fanout, FeedConfig config);

  ~FeedPipeline();

  FeedPipeline(const FeedPipeline&) = delete;
  FeedPipeline& operator=(const FeedPipeline&) = delete;

  // --- synchronous ingestion (no queue, caller's thread) ---

  /// Drains `source` to exhaustion; returns ticks ingested.
  std::uint64_t ingest(TickSource& source);
  /// Applies one tick. Thread-safe (serialized); per-group FIFO delivery is
  /// the caller's responsibility — it is what determinism is defined over.
  void offer(const Tick& tick);

  // --- concurrent ingestion (bounded queue + consumer thread) ---

  /// Starts the consumer thread with a fresh queue. Requires not running.
  void start();
  /// Blocking producer push; false once the pipeline stopped.
  bool enqueue(const Tick& tick);
  /// Non-blocking producer push; false = backpressure or stopped.
  bool try_enqueue(const Tick& tick);
  /// Producer helper: pushes every tick of `source`; returns ticks pushed.
  std::uint64_t pump(TickSource& source);
  /// Closes the queue, drains it, joins the consumer. Idempotent; the
  /// pipeline can be start()ed again afterwards.
  void stop();
  bool running() const;

  /// Force-resolves every pending observation, commits the remaining rows
  /// (gap-filling groups that are short), and publishes the final partial
  /// batch. Call after ingestion ends; not valid while running().
  void flush();

  // --- observation ---

  FeedStats stats() const;
  /// Queue counters from the most recent start()/stop() cycle.
  TickQueue::Stats queue_stats() const;
  /// Order-sensitive digest over every committed (step, group, price) and
  /// every published (epoch, end_step): the determinism gate's fingerprint.
  std::uint64_t commit_digest() const;
  std::vector<PublishRecord> publish_log() const;
  FeedEstimates latest_estimates() const;
  const FeedConfig& config() const { return config_; }
  /// Absolute market steps committed so far (base + committed_steps).
  std::uint64_t frontier_step() const;

 private:
  struct GroupState {
    CircleGroupSpec group;
    std::uint64_t resolved = 0;           ///< steps resolved past base_step_
    std::uint64_t know = 0;               ///< highest (step + 1) applied
    std::map<std::uint64_t, double> pending;  ///< unresolved observations
    std::deque<std::pair<double, bool>> buf;  ///< resolved, uncommitted (price, is_gap)
    double last_value = 0.0;              ///< gap-fill carry
    SpotTrace window_trace;               ///< trailing window for estimation
    std::vector<double> publish_accum;    ///< committed, unpublished prices
    std::uint64_t accum_real = 0;         ///< real (non-gap) values in accum
  };

  /// Delegation target of both public ctors: publish through `fanout`,
  /// which is `owned` when the single-board ctor wrapped its board in a
  /// one-replica fan-out.
  FeedPipeline(BoardFanout* fanout, std::unique_ptr<BoardFanout> owned, FeedConfig config);

  void apply_tick_locked(const Tick& tick);
  void resolve_group_locked(GroupState& g);
  void commit_ready_locked();
  void publish_batch_locked();
  void estimate_locked(std::uint64_t epoch);
  void mix(std::uint64_t value);

  /// Kept alive only by the single-board ctor (a one-replica fan-out
  /// wrapping the caller's board); null in replicated mode.
  std::unique_ptr<BoardFanout> owned_fanout_;
  BoardFanout* fanout_;
  FeedConfig config_;
  std::size_t zones_ = 0;
  std::size_t group_count_ = 0;
  std::uint64_t base_step_ = 0;   ///< board market length at construction
  double step_hours_ = 1.0;

  mutable std::mutex mutex_;      ///< guards everything below
  std::vector<GroupState> groups_;
  FeedStats stats_;
  std::uint64_t digest_ = 0x5eedf00d9e3779b9ULL;
  std::uint64_t rows_in_batch_ = 0;
  std::vector<PublishRecord> publish_log_;
  FeedEstimates estimates_;
  TickQueue::Stats last_queue_stats_;

  std::unique_ptr<TickQueue> queue_;
  std::thread consumer_;
  bool running_ = false;
};

}  // namespace sompi::feed
