#include "feed/tick_queue.h"

#include <algorithm>

#include "common/error.h"

namespace sompi::feed {

TickQueue::TickQueue(std::size_t capacity) : capacity_(capacity) {
  SOMPI_REQUIRE_MSG(capacity > 0, "tick queue capacity must be positive");
}

bool TickQueue::push(const Tick& tick) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.size() >= capacity_ && !closed_) {
    ++stats_.blocked_pushes;
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
  }
  if (closed_) {
    ++stats_.rejected_closed;
    return false;
  }
  queue_.push_back(tick);
  ++stats_.pushed;
  stats_.max_depth = std::max(stats_.max_depth, queue_.size());
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool TickQueue::try_push(const Tick& tick) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      ++stats_.rejected_closed;
      return false;
    }
    if (queue_.size() >= capacity_) {
      ++stats_.rejected_full;
      return false;
    }
    queue_.push_back(tick);
    ++stats_.pushed;
    stats_.max_depth = std::max(stats_.max_depth, queue_.size());
  }
  not_empty_.notify_one();
  return true;
}

std::optional<Tick> TickQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Tick tick = queue_.front();
  queue_.pop_front();
  ++stats_.popped;
  lock.unlock();
  not_full_.notify_one();
  return tick;
}

void TickQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool TickQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t TickQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

TickQueue::Stats TickQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sompi::feed
