// Tick sources: where market observations come from.
//
//   ReplayTickSource    — replays a recorded Market (or a group-shard of it)
//   SyntheticTickSource — deterministic per-group random-walk generator
//   CsvTickSource       — parses a feed dump, skip-with-counter on corruption
//   VectorTickSource    — programmatic push (tests, examples)
//   ChaosTickSource     — FaultInjector decorator: drops / dups / delays
//
// Every source assigns canonical sequence numbers (tick.h), so sharding a
// stream across producers never changes the numbering. Chaos decisions are
// drawn from per-(channel, group) FaultInjector streams: wrapping each
// group's source in its own ChaosTickSource yields the same post-chaos
// per-group stream at any producer count — the determinism gate's hinge.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "faultinject/injector.h"
#include "feed/tick.h"
#include "trace/market.h"

namespace sompi::feed {

/// Replays steps [start_step, start_step + steps) of a recorded market for a
/// subset of its groups, step-major (all groups at step s before any at
/// s + 1). Sequence numbers are canonical for the FULL market, so shards
/// covering disjoint group subsets jointly reproduce the unsharded stream.
class ReplayTickSource final : public TickSource {
 public:
  /// `market` is borrowed and must outlive the source. An empty `groups`
  /// means all groups.
  ReplayTickSource(const Market* market, std::vector<CircleGroupSpec> groups,
                   std::uint64_t start_step, std::uint64_t steps);

  std::optional<Tick> next() override;

 private:
  const Market* market_;
  std::vector<CircleGroupSpec> groups_;
  std::uint64_t step_;
  std::uint64_t end_step_;
  std::size_t group_cursor_ = 0;
  std::size_t zones_;
  std::size_t group_count_;
};

/// Deterministic synthetic feed: every group follows an independent
/// multiplicative random walk around its CALM base price, with occasional
/// demand spikes. Each group's walk is seeded from (seed, ordinal) alone, so
/// the stream content is independent of how groups are sharded.
class SyntheticTickSource final : public TickSource {
 public:
  struct Config {
    std::uint64_t seed = 1;
    std::uint64_t start_step = 0;
    std::uint64_t steps = 0;
    /// Per-step lognormal volatility of the walk.
    double sigma = 0.05;
    /// Probability of a price spike at any step.
    double spike_p = 0.02;
    /// Spike magnitude: price multiplied by uniform(2, this).
    double spike_max_mult = 8.0;
  };

  /// `catalog` is borrowed. An empty `groups` means all groups.
  SyntheticTickSource(const Catalog* catalog, std::vector<CircleGroupSpec> groups,
                      Config config);

  std::optional<Tick> next() override;

 private:
  struct Walk {
    CircleGroupSpec group;
    std::size_t ordinal = 0;
    Rng rng;
    double price = 0.0;
  };

  const Catalog* catalog_;
  Config config_;
  std::vector<Walk> walks_;
  std::uint64_t emitted_steps_ = 0;
  std::size_t group_cursor_ = 0;
  std::size_t group_count_;
};

/// Parses a "step,type,zone,price" CSV dump into a tick stream. Malformed
/// input is skipped and counted, never fatal: ragged rows (via the lenient
/// CSV parser), non-numeric step/price fields, unknown type/zone names,
/// negative prices, and duplicate (step, group) observations each land in
/// their own counter.
class CsvTickSource final : public TickSource {
 public:
  struct Stats {
    std::size_t rows_total = 0;        ///< data rows reaching the parser
    std::size_t ragged_skipped = 0;    ///< truncated / over-wide rows
    std::size_t bad_number = 0;        ///< non-numeric or negative fields
    std::size_t unknown_group = 0;     ///< type/zone not in the catalog
    std::size_t duplicate_skipped = 0; ///< repeated (step, group) rows
    std::size_t ticks_emitted = 0;
  };

  /// `catalog` is borrowed. Parses eagerly; stats are final on return.
  CsvTickSource(const Catalog* catalog, const std::string& csv_text);

  std::optional<Tick> next() override;
  const Stats& stats() const { return stats_; }

 private:
  std::deque<Tick> ticks_;
  Stats stats_;
};

/// A fixed, programmatic tick stream.
class VectorTickSource final : public TickSource {
 public:
  explicit VectorTickSource(std::vector<Tick> ticks);
  std::optional<Tick> next() override;

 private:
  std::vector<Tick> ticks_;
  std::size_t cursor_ = 0;
};

/// FaultInjector decorator over any source: per-(channel, group) seeded
/// decisions drop a tick, duplicate it (same canonical seq), or delay it by
/// holding it in a one-slot buffer until the group's next surviving tick has
/// been emitted (an out-of-order displacement the pipeline's late horizon
/// absorbs). Wrap one chaos source per group shard: decision streams are
/// keyed by group, so the post-chaos stream of each group is a pure function
/// of (plan seed, that group's clean stream) — independent of sharding.
class ChaosTickSource final : public TickSource {
 public:
  struct Stats {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
  };

  /// `inner` and `faults` are borrowed and must outlive the source.
  ChaosTickSource(TickSource* inner, fi::FaultInjector* faults);

  std::optional<Tick> next() override;
  const Stats& stats() const { return stats_; }

 private:
  TickSource* inner_;
  fi::FaultInjector* faults_;
  std::deque<Tick> out_;
  std::optional<Tick> held_;
  Stats stats_;
};

}  // namespace sompi::feed
