#include "feed/board_oracle.h"

#include <algorithm>

#include "common/error.h"

namespace sompi::feed {

FeedHistoryOracle::FeedHistoryOracle(MarketBoard* board, ExecutionOracle* inner)
    : board_(board), inner_(inner) {
  SOMPI_REQUIRE(board_ != nullptr && inner_ != nullptr);
}

WindowOutcome FeedHistoryOracle::run_window(const Plan& plan, double start_h,
                                            double window_h) {
  return inner_->run_window(plan, start_h, window_h);
}

Market FeedHistoryOracle::history_at(double now_h, double lookback_h) {
  SOMPI_REQUIRE(now_h >= 0.0);
  const MarketSnapshot snap = board_->snapshot();
  const Market& market = *snap.market;
  // Mirror MarketReplayOracle::history_at exactly — same truncation, same
  // window call — so a feed-driven adaptive run sees bit-identical history.
  const double step_h = market.trace({0, 0}).step_hours();
  const auto now_step = static_cast<std::size_t>(now_h / step_h);
  const double from_h = std::max(0.0, now_h - lookback_h);
  const auto from_step = static_cast<std::size_t>(from_h / step_h);
  SOMPI_REQUIRE_MSG(now_step <= market.trace({0, 0}).steps(),
                    "feed has not committed history up to now_h");
  return market.window(from_step, now_step - from_step);
}

}  // namespace sompi::feed
