// FeedHistoryOracle — an ExecutionOracle whose market history comes from a
// live MarketBoard instead of a pre-recorded trace.
//
// The adaptive engine asks history_at(now, lookback) at every window
// boundary; this oracle answers from the board's current snapshot using the
// same step arithmetic as MarketReplayOracle, so an adaptive run driven by a
// replayed feed (board primed with the prefix, pipeline committing the tail)
// is bit-identical to one driven by the full recorded market — provided the
// feed has committed up to `now` (the driver advances it via
// AdaptiveConfig::window_hook). Window execution delegates to an inner
// oracle (trace replay in tests; live execution in production).
#pragma once

#include "core/adaptive.h"
#include "service/market_board.h"

namespace sompi::feed {

class FeedHistoryOracle final : public ExecutionOracle {
 public:
  /// Both pointers are borrowed and must outlive the oracle.
  FeedHistoryOracle(MarketBoard* board, ExecutionOracle* inner);

  WindowOutcome run_window(const Plan& plan, double start_h, double window_h) override;

  /// The trailing `lookback_h` before `now_h`, sliced from the board's
  /// current snapshot. Requires the feed to have committed through `now_h`.
  Market history_at(double now_h, double lookback_h) override;

 private:
  MarketBoard* board_;
  ExecutionOracle* inner_;
};

}  // namespace sompi::feed
