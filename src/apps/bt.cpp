#include "apps/bt.h"

#include <cmath>

#include "apps/band_solver.h"
#include "apps/grid_ops.h"
#include "checkpoint/state_buffer.h"
#include "common/error.h"

namespace sompi::apps {

namespace {

/// rhs[l][c] = u[l][c] + λ·(u[l-1][c] − 2u[l][c] + u[l+1][c]) + s
/// over the owned rows of a halo-padded block.
std::vector<double> explicit_cross_term(const std::vector<double>& u_halo, int rows_local,
                                        int n, double lambda, double s) {
  std::vector<double> rhs(static_cast<std::size_t>(rows_local) * n);
  for (int l = 1; l <= rows_local; ++l) {
    for (int c = 0; c < n; ++c) {
      const double up = u_halo[static_cast<std::size_t>((l - 1) * n + c)];
      const double mid = u_halo[static_cast<std::size_t>(l * n + c)];
      const double down = u_halo[static_cast<std::size_t>((l + 1) * n + c)];
      rhs[static_cast<std::size_t>((l - 1) * n + c)] =
          mid + lambda * (up - 2.0 * mid + down) + s;
    }
  }
  return rhs;
}

/// Solves (1 − λδ²) along every row of a rows_local × n block, in place.
void implicit_row_solves(std::vector<double>& block, int rows_local, int n, double lambda) {
  std::vector<double> a(static_cast<std::size_t>(n)), b(static_cast<std::size_t>(n)),
      c(static_cast<std::size_t>(n)), d(static_cast<std::size_t>(n));
  for (int l = 0; l < rows_local; ++l) {
    for (int i = 0; i < n; ++i) {
      a[static_cast<std::size_t>(i)] = -lambda;
      b[static_cast<std::size_t>(i)] = 1.0 + 2.0 * lambda;
      c[static_cast<std::size_t>(i)] = -lambda;
      d[static_cast<std::size_t>(i)] = block[static_cast<std::size_t>(l * n + i)];
    }
    solve_tridiagonal(a, b, c, d);
    for (int i = 0; i < n; ++i) block[static_cast<std::size_t>(l * n + i)] = d[i];
  }
}

}  // namespace

std::vector<double> transpose_block(mpi::Comm& comm, const std::vector<double>& local,
                                     int n) {
  return transpose_block_t<double>(comm, local, n);
}

AppResult bt_run(mpi::Comm& comm, const BtConfig& config, CoordinatedCheckpointing* ck,
                 StorageBackend* io_store) {
  const int p = comm.size();
  SOMPI_REQUIRE(config.n >= p && config.n % p == 0);
  SOMPI_REQUIRE(config.iterations >= 1);
  SOMPI_REQUIRE_MSG(config.io_every == 0 || io_store != nullptr,
                    "BTIO mode needs an io_store");
  const int n = config.n;
  const int m = n / p;  // owned rows
  const double h = 1.0 / (n + 1);
  const double s = h * h * config.source;

  std::vector<double> u(static_cast<std::size_t>(m) * n, 0.0);
  int start_iter = 0;

  AppResult result;
  if (ck != nullptr && ck->has_snapshot(comm)) {
    const auto blob = ck->load_latest(comm);
    StateReader reader(*blob);
    start_iter = reader.read<int>();
    u = reader.read_vec<double>();
    SOMPI_ASSERT(static_cast<int>(u.size()) == m * n);
    result.resumed = true;
  }

  for (int it = start_iter; it < config.iterations; ++it) {
    comm.tick();

    // Half step 1: explicit in y (needs halos), implicit in x (local rows).
    auto padded = pad_with_halo(u, m, n);
    exchange_grid_halos(comm, padded, m, n);
    auto ustar = explicit_cross_term(padded, m, n, config.lambda, s);
    implicit_row_solves(ustar, m, n, config.lambda);

    // Half step 2 in transposed space: explicit in (original) x, implicit
    // in (original) y — both become row operations after the transpose.
    auto v = transpose_block(comm, ustar, n);
    auto v_padded = pad_with_halo(v, m, n);
    exchange_grid_halos(comm, v_padded, m, n);
    auto vnew = explicit_cross_term(v_padded, m, n, config.lambda, s);
    implicit_row_solves(vnew, m, n, config.lambda);
    u = transpose_block(comm, vnew, n);

    ++result.iterations_run;

    if (config.io_every > 0 && (it + 1) % config.io_every == 0) {
      // BTIO dump: every rank writes its block for this snapshot.
      StateWriter writer;
      writer.write<int>(it + 1);
      writer.write_vec(u);
      const auto blob = writer.take();
      io_store->put("btio/it" + std::to_string(it + 1) + "/rank" +
                        std::to_string(comm.rank()),
                    blob);
    }

    if (should_checkpoint(ck, config.checkpoint_every, it, config.iterations)) {
      StateWriter writer;
      writer.write<int>(it + 1);
      writer.write_vec(u);
      ck->save(comm, writer.take());
      ++result.checkpoints_saved;
    }
  }

  result.checksum = global_l2(comm, u);
  return result;
}

double bt_reference(const BtConfig& config) {
  const int n = config.n;
  const double h = 1.0 / (n + 1);
  const double s = h * h * config.source;
  std::vector<double> u(static_cast<std::size_t>(n) * n, 0.0);

  auto transpose_local = [n](const std::vector<double>& x) {
    std::vector<double> t(x.size());
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c)
        t[static_cast<std::size_t>(c * n + r)] = x[static_cast<std::size_t>(r * n + c)];
    return t;
  };

  for (int it = 0; it < config.iterations; ++it) {
    auto padded = pad_with_halo(u, n, n);
    auto ustar = explicit_cross_term(padded, n, n, config.lambda, s);
    implicit_row_solves(ustar, n, n, config.lambda);

    auto v = transpose_local(ustar);
    auto v_padded = pad_with_halo(v, n, n);
    auto vnew = explicit_cross_term(v_padded, n, n, config.lambda, s);
    implicit_row_solves(vnew, n, n, config.lambda);
    u = transpose_local(vnew);
  }

  double sum = 0.0;
  for (double v : u) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace sompi::apps
