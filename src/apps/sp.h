// SP — a scalar penta-diagonal ADI solver in the spirit of the NPB SP
// kernel: like BT, an alternating-direction implicit scheme with a full
// distributed transpose per iteration, but the implicit line operator adds a
// fourth-order artificial-dissipation term, so every line solve is
// pentadiagonal ("scalar penta-diagonal").
#pragma once

#include "apps/app.h"

namespace sompi::apps {

struct SpConfig {
  /// Grid is n × n; n must be divisible by the world size.
  int n = 64;
  int iterations = 20;
  int checkpoint_every = 0;
  double lambda = 0.4;  ///< second-order diffusion number
  double mu = 0.05;     ///< fourth-order dissipation coefficient
  double source = 1.0;
};

AppResult sp_run(mpi::Comm& comm, const SpConfig& config, CoordinatedCheckpointing* ck = nullptr);

double sp_reference(const SpConfig& config);

}  // namespace sompi::apps
