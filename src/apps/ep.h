// EP — the embarrassingly parallel kernel in the spirit of NPB EP: generate
// pairs of uniform deviates, convert the accepted ones to Gaussian pairs via
// the Marsaglia polar method, tally them into annulus bins by magnitude, and
// reduce the counts and sums globally. Communication is a single reduction
// per batch — the pure-compute end of the workload spectrum.
#pragma once

#include "apps/app.h"

namespace sompi::apps {

struct EpConfig {
  /// Uniform pairs per rank per batch.
  int pairs_per_rank = 1 << 14;
  /// Batches ("iterations"): each ends in one global reduction and is the
  /// checkpoint granule.
  int batches = 8;
  int checkpoint_every = 0;
  std::uint64_t seed = 0xE9;
};

/// Distributed EP; the checksum combines the global Gaussian sums and the
/// annulus counts. Deterministic for a given (seed, world size).
AppResult ep_run(mpi::Comm& comm, const EpConfig& config, CoordinatedCheckpointing* ck = nullptr);

/// Sequential oracle at the given world size (generation is per rank).
double ep_reference(const EpConfig& config, int processes);

}  // namespace sompi::apps
