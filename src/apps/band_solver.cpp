#include "apps/band_solver.h"

#include <cmath>

#include "common/error.h"

namespace sompi::apps {

void solve_tridiagonal(std::vector<double>& a, std::vector<double>& b, std::vector<double>& c,
                       std::vector<double>& d) {
  const std::size_t n = d.size();
  SOMPI_REQUIRE(n >= 1);
  SOMPI_REQUIRE(a.size() == n && b.size() == n && c.size() == n);

  // Forward sweep.
  for (std::size_t i = 1; i < n; ++i) {
    SOMPI_REQUIRE_MSG(std::abs(b[i - 1]) > 1e-300, "tridiagonal pivot underflow");
    const double m = a[i] / b[i - 1];
    b[i] -= m * c[i - 1];
    d[i] -= m * d[i - 1];
  }
  // Back substitution.
  d[n - 1] /= b[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) d[i] = (d[i] - c[i] * d[i + 1]) / b[i];
}

void solve_pentadiagonal(std::vector<double>& e, std::vector<double>& a, std::vector<double>& b,
                         std::vector<double>& c, std::vector<double>& f,
                         std::vector<double>& d) {
  const std::size_t n = d.size();
  SOMPI_REQUIRE(n >= 1);
  SOMPI_REQUIRE(e.size() == n && a.size() == n && b.size() == n && c.size() == n &&
                f.size() == n);

  // Forward elimination of the two sub-diagonals using row i-1 as pivot.
  for (std::size_t i = 1; i < n; ++i) {
    SOMPI_REQUIRE_MSG(std::abs(b[i - 1]) > 1e-300, "pentadiagonal pivot underflow");
    const double m1 = a[i] / b[i - 1];
    b[i] -= m1 * c[i - 1];
    c[i] -= m1 * f[i - 1];
    d[i] -= m1 * d[i - 1];

    if (i + 1 < n) {
      const double m2 = e[i + 1] / b[i - 1];
      a[i + 1] -= m2 * c[i - 1];
      b[i + 1] -= m2 * f[i - 1];
      d[i + 1] -= m2 * d[i - 1];
      e[i + 1] = 0.0;
    }
  }
  // Back substitution over the remaining upper-triangular band (b, c, f).
  d[n - 1] /= b[n - 1];
  if (n >= 2) d[n - 2] = (d[n - 2] - c[n - 2] * d[n - 1]) / b[n - 2];
  for (std::size_t i = n - 1; i-- > 0;) {
    if (i + 2 < n) d[i] = (d[i] - c[i] * d[i + 1] - f[i] * d[i + 2]) / b[i];
  }
}

}  // namespace sompi::apps
