#include "apps/fft.h"

#include <cmath>

#include "common/error.h"

namespace sompi::apps {

void fft_inplace(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  SOMPI_REQUIRE_MSG(n > 0 && (n & (n - 1)) == 0, "FFT length must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

std::vector<Complex> dft_reference(const std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * M_PI * static_cast<double>(k * j) / static_cast<double>(n);
      out[k] += data[j] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  if (inverse)
    for (auto& x : out) x /= static_cast<double>(n);
  return out;
}

}  // namespace sompi::apps
