#include "apps/ft.h"

#include <cmath>

#include "apps/fft.h"
#include "apps/grid_ops.h"
#include "checkpoint/state_buffer.h"
#include "common/error.h"
#include "common/rng.h"

namespace sompi::apps {

namespace {

/// Deterministic initial value for global cell (row, col) — every rank can
/// generate its own block without communication.
Complex initial_value(std::uint64_t seed, int row, int col, int n) {
  std::uint64_t s = seed ^ (static_cast<std::uint64_t>(row) * n + static_cast<std::uint64_t>(col));
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  // Map to [-0.5, 0.5) each component.
  const double re = static_cast<double>(a >> 11) * 0x1.0p-53 - 0.5;
  const double im = static_cast<double>(b >> 11) * 0x1.0p-53 - 0.5;
  return {re, im};
}

/// FFT of every local row, in place.
void fft_rows(std::vector<Complex>& block, int rows_local, int n, bool inverse) {
  std::vector<Complex> row(static_cast<std::size_t>(n));
  for (int l = 0; l < rows_local; ++l) {
    std::copy_n(block.begin() + static_cast<std::ptrdiff_t>(l) * n, n, row.begin());
    fft_inplace(row, inverse);
    std::copy_n(row.begin(), n, block.begin() + static_cast<std::ptrdiff_t>(l) * n);
  }
}

/// Signed frequency index of DFT bin k of an n-point transform.
int freq_index(int k, int n) { return k <= n / 2 ? k : k - n; }

/// Spectral evolution: multiply bin (ky, kx) by exp(-alpha·t·(kx² + ky²)).
/// In the transposed layout the local row index is the original column (kx)
/// and the in-row index is ky.
void evolve_spectrum(std::vector<Complex>& transposed, int rows_local, int row0, int n,
                     double alpha, int t) {
  for (int l = 0; l < rows_local; ++l) {
    const int kx = freq_index(row0 + l, n);
    for (int j = 0; j < n; ++j) {
      const int ky = freq_index(j, n);
      const double damp =
          std::exp(-alpha * static_cast<double>(t) * static_cast<double>(kx * kx + ky * ky));
      transposed[static_cast<std::size_t>(l * n + j)] *= damp;
    }
  }
}

double checksum_complex(mpi::Comm& comm, const std::vector<Complex>& block) {
  double local = 0.0;
  for (const auto& z : block) local += std::norm(z);
  return std::sqrt(comm.allreduce(local, mpi::ReduceOp::kSum));
}

}  // namespace

AppResult ft_run(mpi::Comm& comm, const FtConfig& config, CoordinatedCheckpointing* ck) {
  const int p = comm.size();
  const int n = config.n;
  SOMPI_REQUIRE(n >= p && n % p == 0);
  SOMPI_REQUIRE_MSG((n & (n - 1)) == 0, "FT grid size must be a power of two");
  SOMPI_REQUIRE(config.iterations >= 1);
  const int m = n / p;
  const int row0 = comm.rank() * m;

  std::vector<Complex> u(static_cast<std::size_t>(m) * n);
  for (int l = 0; l < m; ++l)
    for (int c = 0; c < n; ++c)
      u[static_cast<std::size_t>(l * n + c)] = initial_value(config.seed, row0 + l, c, n);

  int start_iter = 0;
  AppResult result;
  if (ck != nullptr && ck->has_snapshot(comm)) {
    const auto blob = ck->load_latest(comm);
    StateReader reader(*blob);
    start_iter = reader.read<int>();
    u = reader.read_vec<Complex>();
    SOMPI_ASSERT(static_cast<int>(u.size()) == m * n);
    result.resumed = true;
  }

  for (int it = start_iter; it < config.iterations; ++it) {
    comm.tick();

    // Forward 2D FFT: rows, transpose, rows (leaves data transposed:
    // local rows are original columns).
    fft_rows(u, m, n, /*inverse=*/false);
    u = transpose_block_t<Complex>(comm, u, n);
    fft_rows(u, m, n, /*inverse=*/false);

    evolve_spectrum(u, m, row0, n, config.alpha, it + 1);

    // Inverse 2D FFT back to physical layout.
    fft_rows(u, m, n, /*inverse=*/true);
    u = transpose_block_t<Complex>(comm, u, n);
    fft_rows(u, m, n, /*inverse=*/true);

    ++result.iterations_run;

    if (should_checkpoint(ck, config.checkpoint_every, it, config.iterations)) {
      StateWriter writer;
      writer.write<int>(it + 1);
      writer.write_vec(u);
      ck->save(comm, writer.take());
      ++result.checkpoints_saved;
    }
  }

  result.checksum = checksum_complex(comm, u);
  return result;
}

double ft_reference(const FtConfig& config) {
  const int n = config.n;
  std::vector<Complex> u(static_cast<std::size_t>(n) * n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      u[static_cast<std::size_t>(r * n + c)] = initial_value(config.seed, r, c, n);

  auto transpose_local = [n](std::vector<Complex>& x) {
    std::vector<Complex> t(x.size());
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c)
        t[static_cast<std::size_t>(c * n + r)] = x[static_cast<std::size_t>(r * n + c)];
    x = std::move(t);
  };

  for (int it = 0; it < config.iterations; ++it) {
    fft_rows(u, n, n, false);
    transpose_local(u);
    fft_rows(u, n, n, false);
    evolve_spectrum(u, n, 0, n, config.alpha, it + 1);
    fft_rows(u, n, n, true);
    transpose_local(u);
    fft_rows(u, n, n, true);
  }

  double sum = 0.0;
  for (const auto& z : u) sum += std::norm(z);
  return std::sqrt(sum);
}

}  // namespace sompi::apps
