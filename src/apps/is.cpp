#include "apps/is.h"

#include <algorithm>
#include <cmath>

#include "checkpoint/state_buffer.h"
#include "common/error.h"
#include "common/rng.h"

namespace sompi::apps {

namespace {

/// Keys for (iteration, rank) — deterministic, so reference and distributed
/// runs generate identical global key sets.
std::vector<std::uint32_t> generate_keys(const IsConfig& config, int iteration, int rank) {
  Rng rng(config.seed ^ (static_cast<std::uint64_t>(iteration) << 20) ^
          static_cast<std::uint64_t>(rank));
  std::vector<std::uint32_t> keys(static_cast<std::size_t>(config.keys_per_rank));
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.uniform_index(config.key_range));
  return keys;
}

/// Position-weighted digest of one rank's sorted slice, given the global
/// offset of its first element. Weights make ordering errors visible.
double digest_slice(const std::vector<std::uint32_t>& keys, std::uint64_t offset) {
  double d = 0.0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const double pos = static_cast<double>(offset + i + 1);
    d += static_cast<double>(keys[i]) * std::fmod(pos, 64.0);
  }
  return d;
}

}  // namespace

AppResult is_run(mpi::Comm& comm, const IsConfig& config, CoordinatedCheckpointing* ck) {
  SOMPI_REQUIRE(config.keys_per_rank >= 1 && config.key_range >= 1);
  SOMPI_REQUIRE(config.iterations >= 1);
  const int p = comm.size();

  int start_iter = 0;
  double digest_acc = 0.0;
  AppResult result;
  if (ck != nullptr && ck->has_snapshot(comm)) {
    const auto blob = ck->load_latest(comm);
    StateReader reader(*blob);
    start_iter = reader.read<int>();
    digest_acc = reader.read<double>();
    result.resumed = true;
  }

  for (int it = start_iter; it < config.iterations; ++it) {
    comm.tick();

    const auto keys = generate_keys(config, it, comm.rank());

    // Bucket by key range: bucket b owns [b·range/p, (b+1)·range/p).
    std::vector<std::vector<std::uint32_t>> buckets(static_cast<std::size_t>(p));
    const double inv_width = static_cast<double>(p) / config.key_range;
    for (const auto k : keys) {
      auto b = static_cast<std::size_t>(k * inv_width);
      b = std::min(b, static_cast<std::size_t>(p - 1));
      buckets[b].push_back(k);
    }
    auto exchanged = comm.alltoall(buckets);

    std::vector<std::uint32_t> mine;
    for (auto& part : exchanged) mine.insert(mine.end(), part.begin(), part.end());
    std::sort(mine.begin(), mine.end());

    // Global offsets of each rank's slice.
    const auto counts = comm.allgather<std::uint64_t>(mine.size());
    std::uint64_t offset = 0;
    for (int r = 0; r < comm.rank(); ++r) offset += counts[static_cast<std::size_t>(r)];

    // Verify the global order across rank boundaries: my max <= successor's
    // min (empty slices skipped via sentinel exchange).
    const std::uint32_t my_min = mine.empty() ? config.key_range : mine.front();
    const auto mins = comm.allgather<std::uint32_t>(my_min);
    if (!mine.empty()) {
      for (int r = comm.rank() + 1; r < p; ++r) {
        const auto next_min = mins[static_cast<std::size_t>(r)];
        if (next_min != config.key_range && mine.back() > next_min)
          throw InvariantError("IS: global sort order violated at rank boundary");
      }
    }

    digest_acc += comm.allreduce(digest_slice(mine, offset), mpi::ReduceOp::kSum);
    ++result.iterations_run;

    if (should_checkpoint(ck, config.checkpoint_every, it, config.iterations)) {
      StateWriter writer;
      writer.write<int>(it + 1);
      writer.write<double>(digest_acc);
      ck->save(comm, writer.take());
      ++result.checkpoints_saved;
    }
  }

  result.checksum = digest_acc;
  return result;
}

double is_reference(const IsConfig& config, int processes) {
  SOMPI_REQUIRE(processes >= 1);
  double digest_acc = 0.0;
  for (int it = 0; it < config.iterations; ++it) {
    std::vector<std::uint32_t> all;
    for (int r = 0; r < processes; ++r) {
      const auto keys = generate_keys(config, it, r);
      all.insert(all.end(), keys.begin(), keys.end());
    }
    std::sort(all.begin(), all.end());
    digest_acc += digest_slice(all, 0);
  }
  return digest_acc;
}

}  // namespace sompi::apps
