#include "apps/sp.h"

#include "apps/band_solver.h"
#include "apps/bt.h"  // transpose_block
#include "apps/grid_ops.h"
#include "checkpoint/state_buffer.h"
#include "common/error.h"

namespace sompi::apps {

namespace {

/// rhs = u + λ·δ²_cross(u) + s over owned rows of a halo-padded block.
std::vector<double> cross_term(const std::vector<double>& padded, int rows_local, int n,
                               double lambda, double s) {
  std::vector<double> rhs(static_cast<std::size_t>(rows_local) * n);
  for (int l = 1; l <= rows_local; ++l)
    for (int c = 0; c < n; ++c) {
      const double up = padded[static_cast<std::size_t>((l - 1) * n + c)];
      const double mid = padded[static_cast<std::size_t>(l * n + c)];
      const double down = padded[static_cast<std::size_t>((l + 1) * n + c)];
      rhs[static_cast<std::size_t>((l - 1) * n + c)] =
          mid + lambda * (up - 2.0 * mid + down) + s;
    }
  return rhs;
}

/// Solves (1 − λδ² + μδ⁴) along every row, in place. The δ⁴ term makes the
/// operator pentadiagonal: stencil μ·(1, −4, 6, −4, 1) + λ·(−1, 2, −1) + 1.
void implicit_penta_rows(std::vector<double>& block, int rows_local, int n, double lambda,
                         double mu) {
  std::vector<double> e(static_cast<std::size_t>(n)), a(static_cast<std::size_t>(n)),
      b(static_cast<std::size_t>(n)), c(static_cast<std::size_t>(n)),
      f(static_cast<std::size_t>(n)), d(static_cast<std::size_t>(n));
  for (int l = 0; l < rows_local; ++l) {
    for (int i = 0; i < n; ++i) {
      e[static_cast<std::size_t>(i)] = mu;
      a[static_cast<std::size_t>(i)] = -lambda - 4.0 * mu;
      b[static_cast<std::size_t>(i)] = 1.0 + 2.0 * lambda + 6.0 * mu;
      c[static_cast<std::size_t>(i)] = -lambda - 4.0 * mu;
      f[static_cast<std::size_t>(i)] = mu;
      d[static_cast<std::size_t>(i)] = block[static_cast<std::size_t>(l * n + i)];
    }
    solve_pentadiagonal(e, a, b, c, f, d);
    for (int i = 0; i < n; ++i)
      block[static_cast<std::size_t>(l * n + i)] = d[static_cast<std::size_t>(i)];
  }
}

}  // namespace

AppResult sp_run(mpi::Comm& comm, const SpConfig& config, CoordinatedCheckpointing* ck) {
  const int p = comm.size();
  SOMPI_REQUIRE(config.n >= p && config.n % p == 0);
  SOMPI_REQUIRE(config.iterations >= 1);
  const int n = config.n;
  const int m = n / p;
  const double h = 1.0 / (n + 1);
  const double s = h * h * config.source;

  std::vector<double> u(static_cast<std::size_t>(m) * n, 0.0);
  int start_iter = 0;

  AppResult result;
  if (ck != nullptr && ck->has_snapshot(comm)) {
    const auto blob = ck->load_latest(comm);
    StateReader reader(*blob);
    start_iter = reader.read<int>();
    u = reader.read_vec<double>();
    SOMPI_ASSERT(static_cast<int>(u.size()) == m * n);
    result.resumed = true;
  }

  for (int it = start_iter; it < config.iterations; ++it) {
    comm.tick();

    auto padded = pad_with_halo(u, m, n);
    exchange_grid_halos(comm, padded, m, n);
    auto ustar = cross_term(padded, m, n, config.lambda, s);
    implicit_penta_rows(ustar, m, n, config.lambda, config.mu);

    auto v = transpose_block(comm, ustar, n);
    auto v_padded = pad_with_halo(v, m, n);
    exchange_grid_halos(comm, v_padded, m, n);
    auto vnew = cross_term(v_padded, m, n, config.lambda, s);
    implicit_penta_rows(vnew, m, n, config.lambda, config.mu);
    u = transpose_block(comm, vnew, n);

    ++result.iterations_run;

    if (should_checkpoint(ck, config.checkpoint_every, it, config.iterations)) {
      StateWriter writer;
      writer.write<int>(it + 1);
      writer.write_vec(u);
      ck->save(comm, writer.take());
      ++result.checkpoints_saved;
    }
  }

  result.checksum = global_l2(comm, u);
  return result;
}

double sp_reference(const SpConfig& config) {
  const int n = config.n;
  const double h = 1.0 / (n + 1);
  const double s = h * h * config.source;
  std::vector<double> u(static_cast<std::size_t>(n) * n, 0.0);

  auto transpose_local = [n](const std::vector<double>& x) {
    std::vector<double> t(x.size());
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c)
        t[static_cast<std::size_t>(c * n + r)] = x[static_cast<std::size_t>(r * n + c)];
    return t;
  };

  for (int it = 0; it < config.iterations; ++it) {
    auto padded = pad_with_halo(u, n, n);
    auto ustar = cross_term(padded, n, n, config.lambda, s);
    implicit_penta_rows(ustar, n, n, config.lambda, config.mu);

    auto v = transpose_local(ustar);
    auto v_padded = pad_with_halo(v, n, n);
    auto vnew = cross_term(v_padded, n, n, config.lambda, s);
    implicit_penta_rows(vnew, n, n, config.lambda, config.mu);
    u = transpose_local(vnew);
  }

  double sum = 0.0;
  for (double v : u) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace sompi::apps
