// CG — a conjugate-gradient kernel in the spirit of NPB CG: solve a sparse
// symmetric positive-definite system (a shifted 5-point Laplacian on an
// n × n grid, row-block partitioned). Each iteration costs one distributed
// matvec (halo exchange) and two global dot products (allreduce) — CG's
// signature latency-bound communication pattern.
#pragma once

#include "apps/app.h"

namespace sompi::apps {

struct CgConfig {
  /// Grid is n × n unknowns; n must be >= the world size.
  int n = 48;
  int iterations = 40;
  int checkpoint_every = 0;
  /// Diagonal shift (> 0 keeps the operator well conditioned).
  double shift = 0.1;
  /// Right-hand side is a deterministic pseudo-random vector.
  std::uint64_t seed = 0xC6;
};

/// Distributed CG; the checksum is the solution's L2 norm. All ranks return
/// the same result.
AppResult cg_run(mpi::Comm& comm, const CgConfig& config, CoordinatedCheckpointing* ck = nullptr);

/// Sequential oracle.
double cg_reference(const CgConfig& config);

}  // namespace sompi::apps
