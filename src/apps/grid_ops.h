// Shared distributed-grid helpers for the row-block-partitioned kernels
// (BT, SP, MD): halo exchange, halo padding and the global L2 checksum.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "minimpi/comm.h"

namespace sompi::apps {

inline constexpr int kGridTagHaloUp = 21;
inline constexpr int kGridTagHaloDown = 22;

/// Exchanges the first/last owned row with the rank neighbours. `u` has
/// rows_local+2 rows of n values (halo rows 0 and rows_local+1); absent
/// neighbours leave the halo untouched (zero = Dirichlet boundary).
inline void exchange_grid_halos(mpi::Comm& comm, std::vector<double>& u, int rows_local,
                                int n) {
  const int r = comm.rank();
  const int p = comm.size();
  const auto row = [&](int l) {
    return std::span<const double>(u.data() + static_cast<std::size_t>(l) * n,
                                   static_cast<std::size_t>(n));
  };
  if (r > 0) comm.send_vec<double>(r - 1, kGridTagHaloUp, row(1));
  if (r + 1 < p) comm.send_vec<double>(r + 1, kGridTagHaloDown, row(rows_local));
  if (r + 1 < p) {
    const auto halo = comm.recv_vec<double>(r + 1, kGridTagHaloUp);
    std::copy(halo.begin(), halo.end(),
              u.begin() + static_cast<std::ptrdiff_t>(rows_local + 1) * n);
  }
  if (r > 0) {
    const auto halo = comm.recv_vec<double>(r - 1, kGridTagHaloDown);
    std::copy(halo.begin(), halo.end(), u.begin());
  }
}

/// Pads a rows_local × n block with zeroed halo rows (top and bottom).
inline std::vector<double> pad_with_halo(const std::vector<double>& block, int rows_local,
                                         int n) {
  std::vector<double> padded(static_cast<std::size_t>(rows_local + 2) * n, 0.0);
  std::copy(block.begin(), block.end(), padded.begin() + n);
  return padded;
}

/// Distributed square-matrix transpose: `local` is the calling rank's
/// (n/p) × n row-block; returns the rank's row-block of the transposed
/// matrix. n must be divisible by the world size p. One personalized
/// all-to-all — the dominant communication of the BT/SP/FT kernels.
template <typename T>
std::vector<T> transpose_block_t(mpi::Comm& comm, const std::vector<T>& local, int n) {
  const int p = comm.size();
  SOMPI_REQUIRE_MSG(n % p == 0, "transpose requires n divisible by world size");
  const int m = n / p;  // rows per rank == columns per rank
  SOMPI_REQUIRE(static_cast<int>(local.size()) == m * n);

  // Piece for rank j: my m rows restricted to j's column range, stored
  // column-major so the receiver can copy rows contiguously.
  std::vector<std::vector<T>> send(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    auto& buf = send[static_cast<std::size_t>(j)];
    buf.resize(static_cast<std::size_t>(m) * m);
    for (int c = 0; c < m; ++c)
      for (int r = 0; r < m; ++r)
        buf[static_cast<std::size_t>(c * m + r)] =
            local[static_cast<std::size_t>(r * n + j * m + c)];
  }
  const auto recv = comm.alltoall(send);

  // New row-block: my rows are the original columns [rank*m, rank*m+m).
  std::vector<T> out(static_cast<std::size_t>(m) * n);
  for (int i = 0; i < p; ++i) {
    const auto& buf = recv[static_cast<std::size_t>(i)];
    SOMPI_ASSERT(static_cast<int>(buf.size()) == m * m);
    for (int c = 0; c < m; ++c)    // my local row index (original column)
      for (int r = 0; r < m; ++r)  // original row within rank i's block
        out[static_cast<std::size_t>(c * n + i * m + r)] =
            buf[static_cast<std::size_t>(c * m + r)];
  }
  return out;
}

/// √(Σ v²) over all ranks' blocks — the kernels' common checksum.
inline double global_l2(mpi::Comm& comm, const std::vector<double>& block) {
  double local = 0.0;
  for (double v : block) local += v * v;
  return std::sqrt(comm.allreduce(local, mpi::ReduceOp::kSum));
}

}  // namespace sompi::apps
