#include "apps/lu.h"

#include <cmath>

#include "checkpoint/state_buffer.h"
#include "common/error.h"

namespace sompi::apps {

namespace {

/// Rows [begin, end) of the interior owned by `rank`.
struct RowRange {
  int begin = 0;
  int end = 0;
  int count() const { return end - begin; }
};

RowRange rows_for(int rank, int size, int ny) {
  const int base = ny / size;
  const int rem = ny % size;
  RowRange r;
  r.begin = rank * base + std::min(rank, rem);
  r.end = r.begin + base + (rank < rem ? 1 : 0);
  return r;
}

/// One red-black color sweep over the local rows. `u` holds count()+2 rows
/// of nx values (halo row 0 and halo row count()+1). Global row index of
/// local row l is range.begin + l - 1.
void sweep_color(std::vector<double>& u, const RowRange& range, int nx, int color,
                 double h2f) {
  for (int l = 1; l <= range.count(); ++l) {
    const int gy = range.begin + l - 1;
    for (int x = 0; x < nx; ++x) {
      if ((gy + x) % 2 != color) continue;
      const double up = u[static_cast<std::size_t>((l - 1) * nx + x)];
      const double down = u[static_cast<std::size_t>((l + 1) * nx + x)];
      const double left = x > 0 ? u[static_cast<std::size_t>(l * nx + x - 1)] : 0.0;
      const double right = x + 1 < nx ? u[static_cast<std::size_t>(l * nx + x + 1)] : 0.0;
      u[static_cast<std::size_t>(l * nx + x)] = 0.25 * (up + down + left + right + h2f);
    }
  }
}

constexpr int kTagUp = 11;    ///< halo flowing to the lower-rank neighbour
constexpr int kTagDown = 12;  ///< halo flowing to the higher-rank neighbour

void exchange_halos(mpi::Comm& comm, std::vector<double>& u, const RowRange& range, int nx) {
  const int r = comm.rank();
  const int n = comm.size();
  const auto row = [&](int l) {
    return std::span<const double>(u.data() + static_cast<std::size_t>(l) * nx,
                                   static_cast<std::size_t>(nx));
  };
  if (r > 0) comm.send_vec<double>(r - 1, kTagUp, row(1));
  if (r + 1 < n) comm.send_vec<double>(r + 1, kTagDown, row(range.count()));
  if (r + 1 < n) {
    const auto halo = comm.recv_vec<double>(r + 1, kTagUp);
    std::copy(halo.begin(), halo.end(),
              u.begin() + static_cast<std::ptrdiff_t>(range.count() + 1) * nx);
  }
  if (r > 0) {
    const auto halo = comm.recv_vec<double>(r - 1, kTagDown);
    std::copy(halo.begin(), halo.end(), u.begin());
  }
}

}  // namespace

AppResult lu_run(mpi::Comm& comm, const LuConfig& config, CoordinatedCheckpointing* ck) {
  SOMPI_REQUIRE(config.nx >= 1 && config.ny >= comm.size());
  SOMPI_REQUIRE(config.iterations >= 1);

  const RowRange range = rows_for(comm.rank(), comm.size(), config.ny);
  const double h = 1.0 / (config.ny + 1);
  const double h2f = h * h * config.source;

  // count()+2 rows: top halo, owned rows, bottom halo. Boundaries stay 0.
  std::vector<double> u(static_cast<std::size_t>(range.count() + 2) * config.nx, 0.0);
  int start_iter = 0;

  AppResult result;
  if (ck != nullptr && ck->has_snapshot(comm)) {
    const auto blob = ck->load_latest(comm);
    StateReader reader(*blob);
    start_iter = reader.read<int>();
    u = reader.read_vec<double>();
    SOMPI_ASSERT(u.size() == static_cast<std::size_t>(range.count() + 2) * config.nx);
    result.resumed = true;
  }

  for (int it = start_iter; it < config.iterations; ++it) {
    comm.tick();
    exchange_halos(comm, u, range, config.nx);
    sweep_color(u, range, config.nx, /*color=*/0, h2f);
    exchange_halos(comm, u, range, config.nx);
    sweep_color(u, range, config.nx, /*color=*/1, h2f);
    ++result.iterations_run;

    if (should_checkpoint(ck, config.checkpoint_every, it, config.iterations)) {
      StateWriter writer;
      writer.write<int>(it + 1);
      writer.write_vec(u);
      ck->save(comm, writer.take());
      ++result.checkpoints_saved;
    }
  }

  // Order-stable checksum: sum of squares over owned rows.
  double local = 0.0;
  for (int l = 1; l <= range.count(); ++l)
    for (int x = 0; x < config.nx; ++x) {
      const double v = u[static_cast<std::size_t>(l * config.nx + x)];
      local += v * v;
    }
  result.checksum = std::sqrt(comm.allreduce(local, mpi::ReduceOp::kSum));
  return result;
}

double lu_reference(const LuConfig& config) {
  SOMPI_REQUIRE(config.nx >= 1 && config.ny >= 1);
  const double h = 1.0 / (config.ny + 1);
  const double h2f = h * h * config.source;
  // One "rank" owning all rows: reuse the parallel sweep verbatim.
  const RowRange all{0, config.ny};
  std::vector<double> u(static_cast<std::size_t>(config.ny + 2) * config.nx, 0.0);
  for (int it = 0; it < config.iterations; ++it) {
    sweep_color(u, all, config.nx, 0, h2f);
    sweep_color(u, all, config.nx, 1, h2f);
  }
  double sum = 0.0;
  for (int l = 1; l <= config.ny; ++l)
    for (int x = 0; x < config.nx; ++x) {
      const double v = u[static_cast<std::size_t>(l * config.nx + x)];
      sum += v * v;
    }
  return std::sqrt(sum);
}

}  // namespace sompi::apps
