// IS — the integer-sort kernel in the spirit of NPB IS: each iteration
// generates a fresh batch of uniform keys, buckets them by range, exchanges
// buckets with a personalized all-to-all, sorts locally, and verifies the
// global order. Communication-intensive: (almost) the whole key volume
// crosses the network every iteration.
#pragma once

#include "apps/app.h"

namespace sompi::apps {

struct IsConfig {
  /// Keys per rank per iteration.
  int keys_per_rank = 1 << 12;
  /// Keys are uniform in [0, key_range).
  std::uint32_t key_range = 1u << 19;
  int iterations = 10;
  int checkpoint_every = 0;
  std::uint64_t seed = 0x15;
};

/// Distributed sort; the checksum is a position-weighted digest of the
/// globally sorted sequence accumulated across iterations. Throws if any
/// iteration produces an incorrectly sorted global sequence.
AppResult is_run(mpi::Comm& comm, const IsConfig& config, CoordinatedCheckpointing* ck = nullptr);

/// Sequential oracle: identical generation and digest, std::sort as sorter.
/// `processes` mirrors the world size (generation is per-rank).
double is_reference(const IsConfig& config, int processes);

}  // namespace sompi::apps
