// Iterative radix-2 complex FFT — the numerical core of the FT kernel.
#pragma once

#include <complex>
#include <vector>

namespace sompi::apps {

using Complex = std::complex<double>;

/// In-place forward (inverse = true for backward) FFT. Length must be a
/// power of two. The inverse includes the 1/N normalization, so
/// fft(fft(x), inverse) == x up to rounding.
void fft_inplace(std::vector<Complex>& data, bool inverse);

/// Naive O(n²) DFT — the test oracle for fft_inplace.
std::vector<Complex> dft_reference(const std::vector<Complex>& data, bool inverse);

}  // namespace sompi::apps
