// BT — a tri-diagonal ADI solver in the spirit of the NPB BT kernel:
// Peaceman–Rachford alternating-direction-implicit time stepping of a 2D
// diffusion problem. Each iteration solves one tridiagonal system per grid
// line in both directions; the y-direction solves are made local by a full
// distributed transpose (personalized all-to-all), which is where BT's
// communication volume comes from.
//
// BTIO is BT plus periodic solution dumps to a storage backend — the NPB
// BTIO I/O-subtype stand-in. The dump volume is what makes it I/O-bound.
#pragma once

#include "apps/app.h"
#include "checkpoint/storage.h"

namespace sompi::apps {

struct BtConfig {
  /// Grid is n × n; n must be divisible by the world size.
  int n = 64;
  int iterations = 20;
  int checkpoint_every = 0;
  /// Diffusion number λ = σ·dt/h² per half step.
  double lambda = 0.4;
  /// Constant volumetric source.
  double source = 1.0;
  /// BTIO: dump the solution every `io_every` iterations (0 = plain BT).
  int io_every = 0;
};

/// Distributed ADI run; all ranks return the same checksum. `io_store`
/// receives BTIO dumps when config.io_every > 0.
AppResult bt_run(mpi::Comm& comm, const BtConfig& config, CoordinatedCheckpointing* ck = nullptr,
                 StorageBackend* io_store = nullptr);

/// Sequential oracle.
double bt_reference(const BtConfig& config);

/// Distributed square-matrix transpose (building block, exposed for tests):
/// `local` is the calling rank's `rows_local × n` row-block; returns the
/// rank's row-block of the transposed matrix. n must be divisible by the
/// world size.
std::vector<double> transpose_block(mpi::Comm& comm, const std::vector<double>& local, int n);

}  // namespace sompi::apps
