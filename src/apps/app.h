// Common surface of the mini-NPB kernels.
//
// Every kernel is a real message-passing program over sompi::mpi::Comm with
// (a) a sequential reference implementation used by the tests as an oracle,
// (b) optional coordinated checkpointing at a configurable iteration cadence,
// (c) a checksum summarizing the final state, comparable across run/restart
//     boundaries and against the reference.
#pragma once

#include "checkpoint/checkpointer.h"
#include "minimpi/comm.h"

namespace sompi::apps {

struct AppResult {
  /// Order-independent digest of the final state.
  double checksum = 0.0;
  /// Iterations executed in THIS run (after any restore).
  int iterations_run = 0;
  /// The run resumed from a committed checkpoint.
  bool resumed = false;
  /// Checkpoints saved during this run.
  int checkpoints_saved = 0;
};

/// Shared checkpoint cadence logic: checkpoint after iteration `it`
/// (0-based) when a checkpointer is present, the cadence is positive, the
/// boundary is hit, and this is not the final iteration (the paper's model
/// never checkpoints at the very end of a run). Kernels accept any
/// CoordinatedCheckpointing implementation — the flat S3 Checkpointer, the
/// incremental one, or the multi-level hierarchy — through one interface.
inline bool should_checkpoint(const CoordinatedCheckpointing* ck, int checkpoint_every,
                              int it, int total_iterations) {
  return ck != nullptr && checkpoint_every > 0 && (it + 1) % checkpoint_every == 0 &&
         it + 1 < total_iterations;
}

}  // namespace sompi::apps
