#include "apps/md.h"

#include <algorithm>
#include <cmath>

#include "checkpoint/state_buffer.h"
#include "common/error.h"
#include "common/rng.h"

namespace sompi::apps {

namespace {

constexpr int kTagGhostUp = 31;
constexpr int kTagGhostDown = 32;
constexpr int kTagMigrateUp = 33;
constexpr int kTagMigrateDown = 34;

double wrap(double x, double box) {
  x = std::fmod(x, box);
  return x < 0.0 ? x + box : x;
}

/// Minimum-image displacement in one periodic dimension.
double min_image(double d, double box) {
  if (d > 0.5 * box) return d - box;
  if (d < -0.5 * box) return d + box;
  return d;
}

/// LJ force magnitude / r and pair potential at squared distance r2 (σ=ε=1),
/// shifted so the potential is 0 at the cutoff.
struct LjResult {
  double f_over_r = 0.0;
  double potential = 0.0;
};
LjResult lj(double r2, double cutoff2, double shift) {
  LjResult out;
  if (r2 >= cutoff2 || r2 <= 0.0) return out;
  const double inv_r2 = 1.0 / r2;
  const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
  out.f_over_r = 24.0 * inv_r6 * (2.0 * inv_r6 - 1.0) * inv_r2;
  out.potential = 4.0 * inv_r6 * (inv_r6 - 1.0) - shift;
  return out;
}

std::vector<Particle> initial_particles(const MdConfig& config) {
  Rng rng(config.seed);
  std::vector<Particle> all;
  all.reserve(static_cast<std::size_t>(config.cells) * config.cells);
  std::int32_t id = 0;
  for (int iy = 0; iy < config.cells; ++iy)
    for (int ix = 0; ix < config.cells; ++ix) {
      Particle p;
      p.x = (ix + 0.5) * config.spacing + config.jitter * (rng.uniform() - 0.5);
      p.y = (iy + 0.5) * config.spacing + config.jitter * (rng.uniform() - 0.5);
      p.vx = 0.0;
      p.vy = 0.0;
      p.id = id++;
      all.push_back(p);
    }
  return all;
}

/// Force/potential accumulation between `owners` and a neighbour list.
/// Pairs inside `owners` count once; owner-vs-ghost pairs contribute half
/// the pair potential to this rank (the other half is counted by the
/// ghost's owner).
struct Forces {
  std::vector<double> fx, fy;
  double potential = 0.0;
};
Forces compute_forces(const std::vector<Particle>& owners, const std::vector<Particle>& ghosts,
                      double box, double cutoff) {
  const double cutoff2 = cutoff * cutoff;
  const double inv_c6 = 1.0 / (cutoff2 * cutoff2 * cutoff2);
  const double shift = 4.0 * inv_c6 * (inv_c6 - 1.0);
  Forces f;
  f.fx.assign(owners.size(), 0.0);
  f.fy.assign(owners.size(), 0.0);

  for (std::size_t i = 0; i < owners.size(); ++i) {
    for (std::size_t j = i + 1; j < owners.size(); ++j) {
      const double dx = min_image(owners[i].x - owners[j].x, box);
      const double dy = min_image(owners[i].y - owners[j].y, box);
      const auto r = lj(dx * dx + dy * dy, cutoff2, shift);
      f.fx[i] += r.f_over_r * dx;
      f.fy[i] += r.f_over_r * dy;
      f.fx[j] -= r.f_over_r * dx;
      f.fy[j] -= r.f_over_r * dy;
      f.potential += r.potential;
    }
    for (const auto& g : ghosts) {
      const double dx = min_image(owners[i].x - g.x, box);
      const double dy = min_image(owners[i].y - g.y, box);
      const auto r = lj(dx * dx + dy * dy, cutoff2, shift);
      f.fx[i] += r.f_over_r * dx;
      f.fy[i] += r.f_over_r * dy;
      f.potential += 0.5 * r.potential;
    }
  }
  return f;
}

}  // namespace

AppResult md_run(mpi::Comm& comm, const MdConfig& config, CoordinatedCheckpointing* ck) {
  const int p = comm.size();
  SOMPI_REQUIRE(config.cells >= p && config.cells % p == 0);
  SOMPI_REQUIRE(config.iterations >= 1);
  const double box = config.cells * config.spacing;
  const double slab = box / p;
  SOMPI_REQUIRE_MSG(slab >= config.cutoff, "slab narrower than the cutoff");
  const double y_lo = comm.rank() * slab;
  const double y_hi = y_lo + slab;

  // Owned particles: those whose y falls in [y_lo, y_hi).
  std::vector<Particle> mine;
  for (const auto& part : initial_particles(config))
    if (part.y >= y_lo && part.y < y_hi) mine.push_back(part);

  int start_iter = 0;
  AppResult result;
  if (ck != nullptr && ck->has_snapshot(comm)) {
    const auto blob = ck->load_latest(comm);
    StateReader reader(*blob);
    start_iter = reader.read<int>();
    mine = reader.read_vec<Particle>();
    result.resumed = true;
  }

  const int up = (comm.rank() + 1) % p;          // neighbour above (wraps)
  const int down = (comm.rank() + p - 1) % p;    // neighbour below (wraps)

  double potential = 0.0;
  for (int it = start_iter; it < config.iterations; ++it) {
    comm.tick();

    // 1. Ghost exchange: boundary strips of width cutoff to both
    //    neighbours (periodic wrap).
    std::vector<Particle> to_up, to_down;
    for (const auto& part : mine) {
      if (part.y >= y_hi - config.cutoff) to_up.push_back(part);
      if (part.y < y_lo + config.cutoff) to_down.push_back(part);
    }
    std::vector<Particle> ghosts;
    if (p > 1) {
      comm.send_vec<Particle>(up, kTagGhostUp, to_up);
      comm.send_vec<Particle>(down, kTagGhostDown, to_down);
      const auto from_down = comm.recv_vec<Particle>(down, kTagGhostUp);
      const auto from_up = comm.recv_vec<Particle>(up, kTagGhostDown);
      ghosts.insert(ghosts.end(), from_down.begin(), from_down.end());
      ghosts.insert(ghosts.end(), from_up.begin(), from_up.end());
      // With two slabs (up == down) a narrow neighbour can appear in both
      // strips; minimum image makes the duplicates identical pair terms, so
      // deduplicate by id.
      std::sort(ghosts.begin(), ghosts.end(),
                [](const Particle& a, const Particle& b) { return a.id < b.id; });
      ghosts.erase(std::unique(ghosts.begin(), ghosts.end(),
                               [](const Particle& a, const Particle& b) {
                                 return a.id == b.id;
                               }),
                   ghosts.end());
    }

    // 2. Forces + velocity Verlet (single force evaluation per step —
    //    leapfrog-style kick-drift).
    const auto f = compute_forces(mine, ghosts, box, config.cutoff);
    potential = f.potential;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i].vx += f.fx[i] * config.dt;
      mine[i].vy += f.fy[i] * config.dt;
      mine[i].x = wrap(mine[i].x + mine[i].vx * config.dt, box);
      mine[i].y = wrap(mine[i].y + mine[i].vy * config.dt, box);
    }

    // 3. Migration: particles that left the slab move to a neighbour
    //    (at most one slab per step for sane dt).
    if (p > 1) {
      std::vector<Particle> stay, go_up, go_down;
      for (const auto& part : mine) {
        if (part.y >= y_lo && part.y < y_hi) {
          stay.push_back(part);
        } else {
          // Periodic distance decides the direction.
          const double d = min_image(part.y - (y_lo + 0.5 * slab), box);
          SOMPI_ASSERT_MSG(std::abs(d) < 1.5 * slab, "particle moved more than one slab");
          (d > 0 ? go_up : go_down).push_back(part);
        }
      }
      comm.send_vec<Particle>(up, kTagMigrateUp, go_up);
      comm.send_vec<Particle>(down, kTagMigrateDown, go_down);
      const auto in_down = comm.recv_vec<Particle>(down, kTagMigrateUp);
      const auto in_up = comm.recv_vec<Particle>(up, kTagMigrateDown);
      mine = std::move(stay);
      mine.insert(mine.end(), in_down.begin(), in_down.end());
      mine.insert(mine.end(), in_up.begin(), in_up.end());
    }

    ++result.iterations_run;

    if (should_checkpoint(ck, config.checkpoint_every, it, config.iterations)) {
      StateWriter writer;
      writer.write<int>(it + 1);
      writer.write_vec(mine);
      ck->save(comm, writer.take());
      ++result.checkpoints_saved;
    }
  }

  double kinetic = 0.0;
  for (const auto& part : mine)
    kinetic += 0.5 * (part.vx * part.vx + part.vy * part.vy);
  const double total_pe = comm.allreduce(potential, mpi::ReduceOp::kSum);
  const double total_ke = comm.allreduce(kinetic, mpi::ReduceOp::kSum);
  result.checksum = total_pe + total_ke;
  return result;
}

double md_reference(const MdConfig& config) {
  const double box = config.cells * config.spacing;
  auto mine = initial_particles(config);
  double potential = 0.0;
  for (int it = 0; it < config.iterations; ++it) {
    const auto f = compute_forces(mine, /*ghosts=*/{}, box, config.cutoff);
    potential = f.potential;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i].vx += f.fx[i] * config.dt;
      mine[i].vy += f.fy[i] * config.dt;
      mine[i].x = wrap(mine[i].x + mine[i].vx * config.dt, box);
      mine[i].y = wrap(mine[i].y + mine[i].vy * config.dt, box);
    }
  }
  double kinetic = 0.0;
  for (const auto& part : mine)
    kinetic += 0.5 * (part.vx * part.vx + part.vy * part.vy);
  return potential + kinetic;
}

}  // namespace sompi::apps
