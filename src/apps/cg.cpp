#include "apps/cg.h"

#include <cmath>

#include "apps/grid_ops.h"
#include "checkpoint/state_buffer.h"
#include "common/error.h"
#include "common/rng.h"

namespace sompi::apps {

namespace {

/// Rows [begin, end) owned by `rank` (same block rule as the LU kernel).
struct RowRange {
  int begin = 0;
  int end = 0;
  int count() const { return end - begin; }
};

RowRange rows_for(int rank, int size, int n) {
  const int base = n / size;
  const int rem = n % size;
  RowRange r;
  r.begin = rank * base + std::min(rank, rem);
  r.end = r.begin + base + (rank < rem ? 1 : 0);
  return r;
}

/// Deterministic RHS entry for global cell (row, col).
double rhs_value(std::uint64_t seed, int row, int col, int n) {
  std::uint64_t s = seed ^ (static_cast<std::uint64_t>(row) * n + static_cast<std::uint64_t>(col));
  return static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53 - 0.5;
}

constexpr int kTagCgUp = 41;
constexpr int kTagCgDown = 42;

/// y = A x over the owned rows, where A = (4 + shift) I − adjacency of the
/// 5-point Laplacian; `x` is halo-padded (count+2 rows of n).
void matvec(const std::vector<double>& x_halo, std::vector<double>& y, const RowRange& range,
            int n, double shift) {
  for (int l = 1; l <= range.count(); ++l) {
    for (int c = 0; c < n; ++c) {
      const double up = x_halo[static_cast<std::size_t>((l - 1) * n + c)];
      const double down = x_halo[static_cast<std::size_t>((l + 1) * n + c)];
      const double left = c > 0 ? x_halo[static_cast<std::size_t>(l * n + c - 1)] : 0.0;
      const double right = c + 1 < n ? x_halo[static_cast<std::size_t>(l * n + c + 1)] : 0.0;
      const double mid = x_halo[static_cast<std::size_t>(l * n + c)];
      y[static_cast<std::size_t>((l - 1) * n + c)] =
          (4.0 + shift) * mid - up - down - left - right;
    }
  }
}

/// Halo exchange tailored to CG's tags (LU uses the shared grid tags; CG
/// runs its own so both kernels can share a world in tests).
void exchange(mpi::Comm& comm, std::vector<double>& x_halo, int rows_local, int n) {
  const int r = comm.rank();
  const int p = comm.size();
  const auto row = [&](int l) {
    return std::span<const double>(x_halo.data() + static_cast<std::size_t>(l) * n,
                                   static_cast<std::size_t>(n));
  };
  if (r > 0) comm.send_vec<double>(r - 1, kTagCgUp, row(1));
  if (r + 1 < p) comm.send_vec<double>(r + 1, kTagCgDown, row(rows_local));
  if (r + 1 < p) {
    const auto halo = comm.recv_vec<double>(r + 1, kTagCgUp);
    std::copy(halo.begin(), halo.end(),
              x_halo.begin() + static_cast<std::ptrdiff_t>(rows_local + 1) * n);
  }
  if (r > 0) {
    const auto halo = comm.recv_vec<double>(r - 1, kTagCgDown);
    std::copy(halo.begin(), halo.end(), x_halo.begin());
  }
}

double dot_local(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

AppResult cg_run(mpi::Comm& comm, const CgConfig& config, CoordinatedCheckpointing* ck) {
  SOMPI_REQUIRE(config.n >= comm.size());
  SOMPI_REQUIRE(config.iterations >= 1);
  SOMPI_REQUIRE(config.shift > 0.0);
  const int n = config.n;
  const RowRange range = rows_for(comm.rank(), comm.size(), n);
  const auto local = static_cast<std::size_t>(range.count()) * n;

  // CG state: solution x, residual r, direction p (owned rows only).
  std::vector<double> x(local, 0.0), res(local), dir(local);
  for (int l = 0; l < range.count(); ++l)
    for (int c = 0; c < n; ++c)
      res[static_cast<std::size_t>(l * n + c)] = rhs_value(config.seed, range.begin + l, c, n);
  dir = res;
  double rho = comm.allreduce(dot_local(res, res), mpi::ReduceOp::kSum);

  int start_iter = 0;
  AppResult result;
  if (ck != nullptr && ck->has_snapshot(comm)) {
    const auto blob = ck->load_latest(comm);
    StateReader reader(*blob);
    start_iter = reader.read<int>();
    rho = reader.read<double>();
    x = reader.read_vec<double>();
    res = reader.read_vec<double>();
    dir = reader.read_vec<double>();
    SOMPI_ASSERT(x.size() == local);
    result.resumed = true;
  }

  std::vector<double> padded(static_cast<std::size_t>(range.count() + 2) * n);
  std::vector<double> q(local);
  for (int it = start_iter; it < config.iterations; ++it) {
    comm.tick();

    // q = A p (halo exchange + local stencil).
    std::fill(padded.begin(), padded.end(), 0.0);
    std::copy(dir.begin(), dir.end(), padded.begin() + n);
    exchange(comm, padded, range.count(), n);
    matvec(padded, q, range, n, config.shift);

    const double pq = comm.allreduce(dot_local(dir, q), mpi::ReduceOp::kSum);
    SOMPI_ASSERT_MSG(pq > 0.0, "CG direction lost positive definiteness");
    const double alpha = rho / pq;
    for (std::size_t i = 0; i < local; ++i) {
      x[i] += alpha * dir[i];
      res[i] -= alpha * q[i];
    }
    const double rho_next = comm.allreduce(dot_local(res, res), mpi::ReduceOp::kSum);
    const double beta = rho_next / rho;
    rho = rho_next;
    for (std::size_t i = 0; i < local; ++i) dir[i] = res[i] + beta * dir[i];

    ++result.iterations_run;

    if (should_checkpoint(ck, config.checkpoint_every, it, config.iterations)) {
      StateWriter writer;
      writer.write<int>(it + 1);
      writer.write<double>(rho);
      writer.write_vec(x);
      writer.write_vec(res);
      writer.write_vec(dir);
      ck->save(comm, writer.take());
      ++result.checkpoints_saved;
    }
  }

  result.checksum = global_l2(comm, x);
  return result;
}

double cg_reference(const CgConfig& config) {
  const int n = config.n;
  const RowRange all{0, n};
  const auto local = static_cast<std::size_t>(n) * n;
  std::vector<double> x(local, 0.0), res(local), dir(local), q(local);
  for (int row = 0; row < n; ++row)
    for (int c = 0; c < n; ++c)
      res[static_cast<std::size_t>(row * n + c)] = rhs_value(config.seed, row, c, n);
  dir = res;
  double rho = dot_local(res, res);

  std::vector<double> padded(static_cast<std::size_t>(n + 2) * n);
  for (int it = 0; it < config.iterations; ++it) {
    std::fill(padded.begin(), padded.end(), 0.0);
    std::copy(dir.begin(), dir.end(), padded.begin() + n);
    matvec(padded, q, all, n, config.shift);
    const double pq = dot_local(dir, q);
    const double alpha = rho / pq;
    for (std::size_t i = 0; i < local; ++i) {
      x[i] += alpha * dir[i];
      res[i] -= alpha * q[i];
    }
    const double rho_next = dot_local(res, res);
    const double beta = rho_next / rho;
    rho = rho_next;
    for (std::size_t i = 0; i < local; ++i) dir[i] = res[i] + beta * dir[i];
  }
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace sompi::apps
