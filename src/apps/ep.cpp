#include "apps/ep.h"

#include <array>
#include <cmath>

#include "checkpoint/state_buffer.h"
#include "common/error.h"
#include "common/rng.h"

namespace sompi::apps {

namespace {

constexpr int kBins = 10;

struct BatchTally {
  double sum_x = 0.0;
  double sum_y = 0.0;
  std::array<std::int64_t, kBins> bins{};
};

/// One rank's batch: Marsaglia polar sampling with a per-(seed, batch, rank)
/// stream so the distributed and sequential runs generate identical numbers.
BatchTally run_batch(const EpConfig& config, int batch, int rank) {
  Rng rng(config.seed ^ (static_cast<std::uint64_t>(batch) << 24) ^
          static_cast<std::uint64_t>(rank));
  BatchTally t;
  for (int i = 0; i < config.pairs_per_rank; ++i) {
    const double u = 2.0 * rng.uniform() - 1.0;
    const double v = 2.0 * rng.uniform() - 1.0;
    const double s = u * u + v * v;
    if (s >= 1.0 || s == 0.0) continue;  // rejected pair
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    const double gx = u * f;
    const double gy = v * f;
    t.sum_x += gx;
    t.sum_y += gy;
    const auto bin = static_cast<std::size_t>(std::min(
        static_cast<int>(std::max(std::abs(gx), std::abs(gy))), kBins - 1));
    ++t.bins[bin];
  }
  return t;
}

double digest(double sum_x, double sum_y, const std::array<std::int64_t, kBins>& bins) {
  double d = sum_x + 2.0 * sum_y;
  for (int b = 0; b < kBins; ++b) d += static_cast<double>(bins[static_cast<std::size_t>(b)]) * 1e-6 * (b + 1);
  return d;
}

}  // namespace

AppResult ep_run(mpi::Comm& comm, const EpConfig& config, CoordinatedCheckpointing* ck) {
  SOMPI_REQUIRE(config.pairs_per_rank >= 1 && config.batches >= 1);

  int start_batch = 0;
  double sum_x = 0.0, sum_y = 0.0;
  std::array<std::int64_t, kBins> bins{};

  AppResult result;
  if (ck != nullptr && ck->has_snapshot(comm)) {
    const auto blob = ck->load_latest(comm);
    StateReader reader(*blob);
    start_batch = reader.read<int>();
    sum_x = reader.read<double>();
    sum_y = reader.read<double>();
    const auto saved = reader.read_vec<std::int64_t>();
    SOMPI_ASSERT(saved.size() == kBins);
    std::copy(saved.begin(), saved.end(), bins.begin());
    result.resumed = true;
  }

  for (int batch = start_batch; batch < config.batches; ++batch) {
    comm.tick();
    const BatchTally local = run_batch(config, batch, comm.rank());

    // One reduction per batch: the kernel's entire communication.
    sum_x += comm.allreduce(local.sum_x, mpi::ReduceOp::kSum);
    sum_y += comm.allreduce(local.sum_y, mpi::ReduceOp::kSum);
    for (int b = 0; b < kBins; ++b)
      bins[static_cast<std::size_t>(b)] += comm.allreduce(
          local.bins[static_cast<std::size_t>(b)], mpi::ReduceOp::kSum);

    ++result.iterations_run;

    if (should_checkpoint(ck, config.checkpoint_every, batch, config.batches)) {
      StateWriter writer;
      writer.write<int>(batch + 1);
      writer.write<double>(sum_x);
      writer.write<double>(sum_y);
      writer.write_vec(std::vector<std::int64_t>(bins.begin(), bins.end()));
      ck->save(comm, writer.take());
      ++result.checkpoints_saved;
    }
  }

  result.checksum = digest(sum_x, sum_y, bins);
  return result;
}

double ep_reference(const EpConfig& config, int processes) {
  SOMPI_REQUIRE(processes >= 1);
  double sum_x = 0.0, sum_y = 0.0;
  std::array<std::int64_t, kBins> bins{};
  for (int batch = 0; batch < config.batches; ++batch) {
    for (int r = 0; r < processes; ++r) {
      const BatchTally t = run_batch(config, batch, r);
      sum_x += t.sum_x;
      sum_y += t.sum_y;
      for (int b = 0; b < kBins; ++b)
        bins[static_cast<std::size_t>(b)] += t.bins[static_cast<std::size_t>(b)];
    }
  }
  return digest(sum_x, sum_y, bins);
}

}  // namespace sompi::apps
