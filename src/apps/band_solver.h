// Banded linear solvers shared by the BT/SP-style kernels:
//   * Thomas algorithm for tridiagonal systems (BT's line solves),
//   * Gaussian elimination without pivoting for symmetric-structure
//     pentadiagonal systems (SP is the "Scalar Penta-diagonal" solver).
// Both assume diagonally dominant systems, which our stencils guarantee.
#pragma once

#include <vector>

namespace sompi::apps {

/// Solves the tridiagonal system with sub-diagonal `a`, diagonal `b`,
/// super-diagonal `c` and right-hand side `d`, in place; the solution is
/// returned in `d`. All vectors have length n (a[0] and c[n-1] are unused).
/// Requires a diagonally dominant system.
void solve_tridiagonal(std::vector<double>& a, std::vector<double>& b, std::vector<double>& c,
                       std::vector<double>& d);

/// Solves a pentadiagonal system with bands (e, a, b, c, f) — second sub,
/// sub, main, super, second super — and right-hand side d, in place.
/// All vectors have length n; out-of-range band entries are unused.
void solve_pentadiagonal(std::vector<double>& e, std::vector<double>& a, std::vector<double>& b,
                         std::vector<double>& c, std::vector<double>& f,
                         std::vector<double>& d);

}  // namespace sompi::apps
