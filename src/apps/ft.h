// FT — the communication-intensive spectral kernel in the spirit of NPB FT:
// repeated 2D FFTs of a complex field with a spectral evolution step in
// between. The 2D FFT is row FFTs + distributed transpose + row FFTs, so the
// kernel is dominated by the full all-to-all transposes (two per iteration).
#pragma once

#include "apps/app.h"

namespace sompi::apps {

struct FtConfig {
  /// Field is n × n complex; n must be a power of two divisible by the
  /// world size.
  int n = 64;
  int iterations = 10;
  int checkpoint_every = 0;
  /// Spectral decay coefficient of the evolution operator.
  double alpha = 1e-4;
  /// Seed of the deterministic initial field.
  std::uint64_t seed = 0xF7;
};

AppResult ft_run(mpi::Comm& comm, const FtConfig& config, CoordinatedCheckpointing* ck = nullptr);

double ft_reference(const FtConfig& config);

}  // namespace sompi::apps
