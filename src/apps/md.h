// MD — the LAMMPS stand-in: a 2D Lennard-Jones fluid integrated with
// velocity Verlet under periodic boundaries, decomposed into y-slabs with
// ghost-particle exchange and inter-slab migration — the classic MD
// communication pattern ("simulating the movement, position and other
// attributes of atoms with interaction forces exerted on one another").
#pragma once

#include "apps/app.h"

namespace sompi::apps {

struct MdConfig {
  /// Particles are initialized on a cells × cells lattice; cells must be
  /// divisible by the world size.
  int cells = 16;
  /// Lattice spacing (controls density); box side L = cells · spacing.
  double spacing = 1.3;
  int iterations = 20;
  int checkpoint_every = 0;
  double dt = 0.004;
  double cutoff = 2.5;
  /// Jitter magnitude of the initial lattice displacement.
  double jitter = 0.05;
  std::uint64_t seed = 0x3D;
};

/// One particle (POD for serialization and messaging).
struct Particle {
  double x = 0.0, y = 0.0;
  double vx = 0.0, vy = 0.0;
  /// Stable global id (diagnostics and determinism checks).
  std::int32_t id = 0;
  std::int32_t pad = 0;
};

/// Distributed MD run; the checksum is the total energy (KE + PE).
AppResult md_run(mpi::Comm& comm, const MdConfig& config, CoordinatedCheckpointing* ck = nullptr);

/// Sequential oracle: all-pairs forces with minimum image in both
/// dimensions, same integrator, same initial condition.
double md_reference(const MdConfig& config);

}  // namespace sompi::apps
