// LU — a computation-intensive iterative solver in the spirit of the NPB LU
// kernel: red-black Gauss–Seidel relaxation of a 2D Poisson problem on a
// row-block-partitioned grid with nearest-neighbour halo exchange. The
// parallel sweep is mathematically identical to the sequential red-black
// sweep, so lu_reference is an exact oracle (up to reduction order).
#pragma once

#include "apps/app.h"

namespace sompi::apps {

struct LuConfig {
  int nx = 64;           ///< interior columns
  int ny = 64;           ///< interior rows (must be >= world size)
  int iterations = 50;
  int checkpoint_every = 0;  ///< iterations between checkpoints; 0 = never
  double source = 1.0;       ///< constant right-hand side
};

/// Runs the distributed solver; all ranks return the same checksum.
AppResult lu_run(mpi::Comm& comm, const LuConfig& config, CoordinatedCheckpointing* ck = nullptr);

/// Sequential oracle: same sweep on one grid.
double lu_reference(const LuConfig& config);

}  // namespace sompi::apps
