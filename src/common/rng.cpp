#include "common/rng.h"

#include <cmath>

namespace sompi {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits give a uniform double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SOMPI_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  SOMPI_REQUIRE(n > 0);
  // Rejection sampling over the largest multiple of n below 2^64.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SOMPI_REQUIRE(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  // Box–Muller; discard the second variate to keep the stream stateless.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double sigma) {
  SOMPI_REQUIRE(sigma >= 0.0);
  return mean + sigma * normal();
}

double Rng::exponential(double lambda) {
  SOMPI_REQUIRE(lambda > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::bernoulli(double p) {
  SOMPI_REQUIRE(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    SOMPI_REQUIRE_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  SOMPI_REQUIRE_MSG(total > 0.0, "categorical needs a positive weight");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // guard against floating-point underrun
}

Rng Rng::split() {
  // Two raw outputs mixed through SplitMix64 give an independent stream.
  std::uint64_t mix = (*this)() ^ 0xD1B54A32D192ED03ULL;
  const std::uint64_t derived = splitmix64(mix) ^ (*this)();
  return Rng(derived);
}

}  // namespace sompi
