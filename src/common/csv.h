// Minimal CSV reading/writing for spot-price traces and experiment logs.
// Supports the subset we emit ourselves: no quoting, comma separated,
// '#'-prefixed comment lines.
#pragma once

#include <string>
#include <vector>

namespace sompi {

/// One parsed CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws PreconditionError when absent.
  std::size_t column(const std::string& name) const;
};

/// Parses CSV text. Throws IoError on ragged rows.
CsvTable parse_csv(const std::string& text);

/// Reads and parses a CSV file. Throws IoError when unreadable.
CsvTable read_csv_file(const std::string& path);

/// Serializes a table back to CSV text.
std::string to_csv(const CsvTable& table);

/// Writes CSV text to a file. Throws IoError on failure.
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace sompi
