// Minimal CSV reading/writing for spot-price traces and experiment logs.
// Supports the subset we emit ourselves: no quoting, comma separated,
// '#'-prefixed comment lines.
#pragma once

#include <string>
#include <vector>

namespace sompi {

/// One parsed CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws PreconditionError when absent.
  std::size_t column(const std::string& name) const;
};

/// Parses CSV text. Throws IoError on ragged rows.
CsvTable parse_csv(const std::string& text);

/// Per-parse corruption accounting for the lenient parser.
struct CsvParseStats {
  std::size_t rows_parsed = 0;     ///< data rows kept
  std::size_t ragged_skipped = 0;  ///< truncated/over-wide rows dropped
};

/// Lenient variant for externally produced files (market-feed dumps):
/// rows whose width does not match the header are skipped and counted
/// instead of aborting the whole parse. The header row itself must parse.
CsvTable parse_csv_lenient(const std::string& text, CsvParseStats* stats = nullptr);

/// Strict full-cell numeric parse: true iff the entire cell is one finite
/// double (no trailing junk, no empty cell). Feed ingestion uses this to
/// skip-with-counter rows whose numeric fields are corrupt.
bool csv_number(const std::string& cell, double* out);

/// Reads and parses a CSV file. Throws IoError when unreadable.
CsvTable read_csv_file(const std::string& path);

/// Serializes a table back to CSV text.
std::string to_csv(const CsvTable& table);

/// Writes CSV text to a file. Throws IoError on failure.
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace sompi
