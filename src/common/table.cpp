#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace sompi {

void Table::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void Table::row(std::vector<std::string> cells) {
  SOMPI_REQUIRE_MSG(header_.empty() || cells.size() == header_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::ostringstream os;
  auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i] << std::string(widths[i] - cells[i].size(), ' ');
      if (i + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (widths.empty() ? 0 : widths.size() - 1);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace sompi
