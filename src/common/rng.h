// Deterministic pseudo-random number generation.
//
// Experiments must be bit-reproducible across runs and platforms, so we ship
// our own xoshiro256** generator and our own distribution transforms instead
// of relying on implementation-defined std::*_distribution behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace sompi {

/// xoshiro256** 1.0 generator (Blackman & Vigna), seeded via SplitMix64.
///
/// Satisfies UniformRandomBitGenerator so it can also drive std algorithms,
/// but all sompi code uses the explicit member distributions below.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state deterministically from a single 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid bias.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential with the given rate lambda > 0.
  double exponential(double lambda);

  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with probability p in [0, 1].
  bool bernoulli(double p);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Derives an independent child generator; use to give each simulation
  /// stream its own seed without correlating streams.
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step — exposed for deterministic seed derivation in tests.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace sompi
