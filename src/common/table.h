// ASCII table rendering for benchmark reports: every bench binary prints the
// same rows/series the paper's table or figure reports, via this printer.
#pragma once

#include <string>
#include <vector>

namespace sompi {

/// Column-aligned ASCII table with a header row and optional title.
///
/// Usage:
///   Table t{"Fig 5 — normalized monetary cost (loose deadline)"};
///   t.header({"App", "On-demand", "Marathe", "Marathe-Opt", "SOMPI"});
///   t.row({"BT", "1.00", "0.83", "0.61", "0.49"});
///   std::cout << t.render();
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Formats a double with the given precision — convenience for row().
  static std::string num(double value, int precision = 3);

  /// Renders the table; pads every column to its widest cell.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sompi
