#include "common/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace sompi {

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  throw PreconditionError("csv column not found: " + name);
}

namespace {
std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}
}  // namespace

namespace {
CsvTable parse_csv_impl(const std::string& text, bool lenient, CsvParseStats* stats) {
  CsvTable table;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto cells = split_line(line);
    if (table.header.empty()) {
      table.header = std::move(cells);
    } else {
      if (cells.size() != table.header.size()) {
        if (!lenient)
          throw IoError("csv row width mismatch: got " + std::to_string(cells.size()) +
                        " cells, expected " + std::to_string(table.header.size()));
        if (stats != nullptr) ++stats->ragged_skipped;
        continue;
      }
      table.rows.push_back(std::move(cells));
      if (stats != nullptr) ++stats->rows_parsed;
    }
  }
  return table;
}
}  // namespace

CsvTable parse_csv(const std::string& text) {
  return parse_csv_impl(text, /*lenient=*/false, nullptr);
}

CsvTable parse_csv_lenient(const std::string& text, CsvParseStats* stats) {
  return parse_csv_impl(text, /*lenient=*/true, stats);
}

bool csv_number(const std::string& cell, double* out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size()) return false;
  if (!std::isfinite(v)) return false;
  if (out != nullptr) *out = v;
  return true;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open csv file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

std::string to_csv(const CsvTable& table) {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(table.header);
  for (const auto& r : table.rows) emit(r);
  return os.str();
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write csv file: " + path);
  out << to_csv(table);
  if (!out) throw IoError("write failed: " + path);
}

}  // namespace sompi
