// Subset and mixed-radix enumeration helpers for the optimizer's k-of-K
// circle-group search and the bid-tuple product grids.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace sompi {

/// Calls fn(indices) for every size-k subset of {0, ..., n-1}, in
/// lexicographic order. indices is reused across calls.
template <typename Fn>
void for_each_combination(std::size_t n, std::size_t k, Fn&& fn) {
  SOMPI_REQUIRE(k <= n);
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  if (k == 0) {
    fn(idx);
    return;
  }
  for (;;) {
    fn(idx);
    // Advance: find the rightmost index that can still move right.
    std::size_t i = k;
    while (i-- > 0) {
      if (idx[i] + (k - i) < n) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

/// Calls fn(digits) for every tuple in the mixed-radix product space with
/// the given per-position radices. digits is reused across calls.
template <typename Fn>
void for_each_tuple(const std::vector<std::size_t>& radices, Fn&& fn) {
  for (std::size_t r : radices) SOMPI_REQUIRE(r >= 1);
  std::vector<std::size_t> digits(radices.size(), 0);
  for (;;) {
    fn(digits);
    std::size_t i = 0;
    while (i < radices.size() && ++digits[i] == radices[i]) digits[i++] = 0;
    if (i == radices.size()) return;
  }
}

/// Binomial coefficient C(n, k) in floating point (sizing estimates only).
inline double binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  double r = 1.0;
  for (std::size_t i = 0; i < k; ++i)
    r = r * static_cast<double>(n - i) / static_cast<double>(i + 1);
  return r;
}

}  // namespace sompi
